package dvsreject

// The benchmark harness: one BenchmarkExpN per reconstructed table/figure
// (E1..E15 in DESIGN.md §4), each running the experiment in quick mode so
// `go test -bench=.` regenerates every result series, plus microbenchmarks
// of the individual solvers and substrates. For full-size tables use
// `go run ./cmd/experiments`.

import (
	"fmt"
	"math/rand"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/dormant"
	"dvsreject/internal/exper"
	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/online"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(exper.Options{Quick: true, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkExp1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkExp2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkExp3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkExp4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkExp5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkExp6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkExp7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkExp8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkExp9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkExp10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkExp11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkExp12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkExp13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkExp14(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkExp15(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkExp16(b *testing.B) { benchExperiment(b, "E16") }

// benchInstance builds one deterministic contested instance.
func benchInstance(b *testing.B, n int, load float64) core.Instance {
	b.Helper()
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: load, Deadline: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
}

func benchSolver(b *testing.B, s core.Solver, n int) {
	in := benchInstance(b, n, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverDP(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.DP{}, n) })
	}
}

func BenchmarkSolverApproxDP(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.ApproxDP{Eps: 0.1}, n) })
	}
}

func BenchmarkSolverGreedyDensity(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.GreedyDensity{}, n) })
	}
}

func BenchmarkSolverGreedyMarginal(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.GreedyMarginal{}, n) })
	}
}

func BenchmarkSolverExhaustive(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.Exhaustive{Workers: 1}, n) })
	}
}

func BenchmarkSolverExhaustiveParallel(b *testing.B) {
	for _, n := range []int{16, 20} {
		// Workers = 0 fans the subtree search out to GOMAXPROCS workers.
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSolver(b, core.Exhaustive{}, n) })
	}
}

func BenchmarkSolverRandomAdmission(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSolver(b, core.RandomAdmission{Seed: 1, Restarts: 32, Workers: 1}, n)
		})
	}
}

func BenchmarkSolverRandomAdmissionParallel(b *testing.B) {
	for _, n := range []int{100, 1000} {
		// Workers = 0 runs the restarts on a GOMAXPROCS-wide pool; the
		// result is identical to the serial run for the same seed.
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSolver(b, core.RandomAdmission{Seed: 1, Restarts: 32}, n)
		})
	}
}

func BenchmarkMultiprocLTFRejectLS(b *testing.B) {
	// Total load scales with M so every processor sees load 1.5, the E9
	// regime (M=4 reproduces the former fixed-shape benchmark).
	for _, m := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{N: 64, Load: 1.5 * float64(m), Deadline: 1000})
			if err != nil {
				b.Fatal(err)
			}
			in := multiproc.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: m}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (multiproc.LTFRejectLS{}).Solve(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMultiprocExhaustive(b *testing.B) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{N: 10, Load: 3, Deadline: 1000})
	if err != nil {
		b.Fatal(err)
	}
	in := multiproc.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (multiproc.Exhaustive{}).Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStorm builds one deterministic online arrival storm.
func benchStorm(b *testing.B, n int, load, span float64) []online.Job {
	b.Helper()
	return online.RandomStorm(rand.New(rand.NewSource(42)), online.StormConfig{N: n, Load: load, Span: span})
}

func BenchmarkOnlineSimulate(b *testing.B) {
	jobs := benchStorm(b, 64, 1.5, 0)
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Simulate(jobs, proc, online.MarginalCost{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDormantCompare(b *testing.B) {
	// Light-load storm on a dormant-enable processor, the E14 regime;
	// infeasible draws are redrawn exactly as the experiment does.
	rng := rand.New(rand.NewSource(42))
	proc := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4}
	var jobs []edf.Job
	var horizon float64
	for {
		storm := online.RandomStorm(rng, online.StormConfig{N: 64, Load: 0.4, Span: 200})
		jobs, horizon = jobs[:0], 0
		for _, j := range storm {
			jobs = append(jobs, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
			if j.Deadline > horizon {
				horizon = j.Deadline
			}
		}
		if _, _, err := dormant.Compare(jobs, 1, horizon, proc); err == nil {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dormant.Compare(jobs, 1, horizon, proc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEDFSimulate(b *testing.B) {
	ps, err := gen.Periodic(rand.New(rand.NewSource(42)), gen.PeriodicConfig{N: 20, Utilization: 0.9})
	if err != nil {
		b.Fatal(err)
	}
	l, err := ps.Hyperperiod()
	if err != nil {
		b.Fatal(err)
	}
	jobs := edf.PeriodicJobs(ps, l)
	profile := speed.Constant(0.95, 0, float64(l))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := edf.Simulate(jobs, profile)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Feasible() {
			b.Fatal("infeasible bench schedule")
		}
	}
}

func BenchmarkSpeedAssignDiscrete(b *testing.B) {
	proc := XScaleProcessor(true, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := proc.Assign(float64(i%900)+1, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	in := benchInstance(b, 100, 1.2)
	ids := make([]int, 0, 50)
	for i := 0; i < 50; i++ {
		ids = append(ids, in.Tasks.Tasks[i].ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(in, ids); err != nil {
			b.Fatal(err)
		}
	}
}
