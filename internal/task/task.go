// Package task defines the real-time task model shared by the whole
// repository: frame-based task sets (all tasks arrive at time 0 and share a
// common deadline D) and periodic task sets with implicit deadlines.
//
// Workloads are measured in worst-case execution cycles (integers), the
// convention of the DATE-era DVS scheduling literature: the number of cycles
// executed in an interval is linear in the processor speed, so time and
// energy for a workload follow directly from the chosen speed.
package task

import (
	"fmt"
	"math"
	"sync"
)

// Task is one frame-based real-time task.
type Task struct {
	ID      int     // caller-chosen identifier, unique within a set
	Cycles  int64   // worst-case execution cycles, > 0
	Penalty float64 // cost of rejecting the task, ≥ 0
	// Rho is the task's dynamic power coefficient relative to the
	// processor's base model (heterogeneous power characteristics).
	// Zero means "unset" and is treated as 1 (homogeneous).
	Rho float64
}

// PowerCoeff returns the task's effective dynamic power coefficient,
// treating the zero value as the homogeneous coefficient 1.
func (t Task) PowerCoeff() float64 {
	if t.Rho == 0 {
		return 1
	}
	return t.Rho
}

// Validate reports whether the task parameters are in their legal ranges.
func (t Task) Validate() error {
	switch {
	case t.Cycles <= 0:
		return fmt.Errorf("task %d: cycles = %d, want > 0", t.ID, t.Cycles)
	case math.IsNaN(t.Penalty) || math.IsInf(t.Penalty, 0) || t.Penalty < 0:
		return fmt.Errorf("task %d: penalty = %v, want finite ≥ 0", t.ID, t.Penalty)
	case math.IsNaN(t.Rho) || t.Rho < 0:
		return fmt.Errorf("task %d: rho = %v, want ≥ 0", t.ID, t.Rho)
	}
	return nil
}

// Set is a frame-based task set with common arrival time 0 and common
// deadline (frame length) Deadline.
type Set struct {
	Tasks    []Task
	Deadline float64 // frame length D, > 0
}

// Validate checks the frame and every task, including ID uniqueness.
// seenPool recycles the ID-uniqueness sets across Validate calls: solvers
// re-validate their instance on every Solve, and the per-call map was the
// dominant steady-state allocation of the pooled DP solvers. grown tracks
// the largest set a pooled map has served: clear() walks a map's whole
// bucket array (its high-water capacity, not its length), so a map that
// once validated a 100k-task set would tax every later small Validate with
// an O(100k) clear. Maps grown far past the current need are dropped and
// reallocated at the right size instead.
type seenSet struct {
	m     map[int]bool
	grown int
}

var seenPool = sync.Pool{New: func() any { return &seenSet{m: make(map[int]bool)} }}

func (s Set) Validate() error {
	if math.IsNaN(s.Deadline) || math.IsInf(s.Deadline, 0) || s.Deadline <= 0 {
		return fmt.Errorf("task set: deadline = %v, want finite > 0", s.Deadline)
	}
	ss := seenPool.Get().(*seenSet)
	if n := len(s.Tasks); ss.grown > 4*n+1024 {
		ss.m = make(map[int]bool, n)
		ss.grown = n
	} else {
		clear(ss.m)
		if n > ss.grown {
			ss.grown = n
		}
	}
	seen := ss.m
	defer seenPool.Put(ss)
	for _, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("task set: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// TotalCycles returns the summed worst-case cycles of all tasks.
func (s Set) TotalCycles() int64 {
	var sum int64
	for _, t := range s.Tasks {
		sum += t.Cycles
	}
	return sum
}

// TotalPenalty returns the summed rejection penalties of all tasks.
func (s Set) TotalPenalty() float64 {
	var sum float64
	for _, t := range s.Tasks {
		sum += t.Penalty
	}
	return sum
}

// Load returns the system load ΣCycles / (smax·D): a load above 1 means the
// set is infeasible even at top speed and rejection is mandatory.
func (s Set) Load(smax float64) float64 {
	return float64(s.TotalCycles()) / (smax * s.Deadline)
}

// ByID returns the task with the given ID and whether it exists. One-off
// lookups scan linearly; callers resolving many IDs should build an Index
// once and look positions up in O(1) instead of paying an O(n) scan per ID.
func (s Set) ByID(id int) (Task, bool) {
	for _, t := range s.Tasks {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

// Columns is a struct-of-arrays mirror of a Set's per-task fields:
// position-aligned contiguous slices for the solver loops that scan one
// field across every task (penalty sums, capacity sweeps) and would waste
// most of each cache line walking []Task at large n. Values are copied
// verbatim; the columns stay valid until the set is mutated.
type Columns struct {
	Cycles    []int64
	Penalties []float64
}

// AppendColumns fills c with the set's tasks in position order, reusing
// the slices' backing arrays when they are large enough (callers pass
// c.Cycles[:0] style slices to recycle buffers across solves).
func (s Set) AppendColumns(c Columns) Columns {
	for _, t := range s.Tasks {
		c.Cycles = append(c.Cycles, t.Cycles)
		c.Penalties = append(c.Penalties, t.Penalty)
	}
	return c
}

// Index returns a map from task ID to the task's position in Tasks. It is
// built in O(n) and turns repeated ByID scans (O(n) each) into O(1) map
// lookups on hot paths such as solution evaluation. When duplicate IDs are
// present (an invalid set), the last occurrence wins; Validate rejects such
// sets.
func (s Set) Index() map[int]int {
	m := make(map[int]int, len(s.Tasks))
	for i, t := range s.Tasks {
		m[t.ID] = i
	}
	return m
}
