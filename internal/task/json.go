package task

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the on-disk interchange format shared by the CLIs: a
// frame-based instance with its processor parameters. The processor fields
// live here (rather than in Set) so one file fully describes a solvable
// problem.
type instanceJSON struct {
	Deadline float64    `json:"deadline"`
	SMin     float64    `json:"smin,omitempty"`
	SMax     float64    `json:"smax"`
	Tasks    []taskJSON `json:"tasks"`
}

type taskJSON struct {
	ID      int     `json:"id"`
	Cycles  int64   `json:"cycles"`
	Penalty float64 `json:"penalty"`
	Rho     float64 `json:"rho,omitempty"`
}

// Instance bundles a frame-based task set with the processor speed range it
// is to be scheduled on. It is the unit of CLI interchange.
type Instance struct {
	Set  Set
	SMin float64
	SMax float64
}

// Validate checks the set and the speed range.
func (in Instance) Validate() error {
	if err := in.Set.Validate(); err != nil {
		return err
	}
	if in.SMax <= 0 {
		return fmt.Errorf("instance: smax = %v, want > 0", in.SMax)
	}
	if in.SMin < 0 || in.SMin > in.SMax {
		return fmt.Errorf("instance: smin = %v, want 0 ≤ smin ≤ smax = %v", in.SMin, in.SMax)
	}
	return nil
}

// WriteJSON encodes the instance to w with indentation.
func (in Instance) WriteJSON(w io.Writer) error {
	out := instanceJSON{
		Deadline: in.Set.Deadline,
		SMin:     in.SMin,
		SMax:     in.SMax,
		Tasks:    make([]taskJSON, 0, len(in.Set.Tasks)),
	}
	for _, t := range in.Set.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// periodicJSON is the on-disk interchange format for periodic instances.
type periodicJSON struct {
	Type  string             `json:"type"` // must be "periodic"
	SMin  float64            `json:"smin,omitempty"`
	SMax  float64            `json:"smax"`
	Tasks []periodicTaskJSON `json:"tasks"`
}

type periodicTaskJSON struct {
	ID      int     `json:"id"`
	Cycles  int64   `json:"cycles"`
	Period  int64   `json:"period"`
	Penalty float64 `json:"penalty"`
	Rho     float64 `json:"rho,omitempty"`
}

// PeriodicInstance bundles a periodic task set with the processor speed
// range, for CLI interchange.
type PeriodicInstance struct {
	Set  PeriodicSet
	SMin float64
	SMax float64
}

// Validate checks the set and the speed range.
func (pi PeriodicInstance) Validate() error {
	if err := pi.Set.Validate(); err != nil {
		return err
	}
	if len(pi.Set.Tasks) == 0 {
		return fmt.Errorf("periodic instance: no tasks")
	}
	if pi.SMax <= 0 {
		return fmt.Errorf("periodic instance: smax = %v, want > 0", pi.SMax)
	}
	if pi.SMin < 0 || pi.SMin > pi.SMax {
		return fmt.Errorf("periodic instance: smin = %v, want 0 ≤ smin ≤ smax = %v", pi.SMin, pi.SMax)
	}
	return nil
}

// WriteJSON encodes the periodic instance to w with indentation.
func (pi PeriodicInstance) WriteJSON(w io.Writer) error {
	out := periodicJSON{
		Type:  "periodic",
		SMin:  pi.SMin,
		SMax:  pi.SMax,
		Tasks: make([]periodicTaskJSON, 0, len(pi.Set.Tasks)),
	}
	for _, t := range pi.Set.Tasks {
		out.Tasks = append(out.Tasks, periodicTaskJSON{
			ID: t.ID, Cycles: t.Cycles, Period: t.Period, Penalty: t.Penalty, Rho: t.Rho,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPeriodicJSON decodes and validates a periodic instance from r.
func ReadPeriodicJSON(r io.Reader) (PeriodicInstance, error) {
	var raw periodicJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return PeriodicInstance{}, fmt.Errorf("task: decoding periodic instance: %w", err)
	}
	if raw.Type != "periodic" {
		return PeriodicInstance{}, fmt.Errorf("task: instance type %q, want \"periodic\"", raw.Type)
	}
	pi := PeriodicInstance{SMin: raw.SMin, SMax: raw.SMax}
	for _, t := range raw.Tasks {
		pi.Set.Tasks = append(pi.Set.Tasks, Periodic{
			ID: t.ID, Cycles: t.Cycles, Period: t.Period, Penalty: t.Penalty, Rho: t.Rho,
		})
	}
	if err := pi.Validate(); err != nil {
		return PeriodicInstance{}, err
	}
	return pi, nil
}

// ReadJSON decodes and validates an instance from r.
func ReadJSON(r io.Reader) (Instance, error) {
	var raw instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return Instance{}, fmt.Errorf("task: decoding instance: %w", err)
	}
	in := Instance{
		Set:  Set{Deadline: raw.Deadline, Tasks: make([]Task, 0, len(raw.Tasks))},
		SMin: raw.SMin,
		SMax: raw.SMax,
	}
	for _, t := range raw.Tasks {
		in.Set.Tasks = append(in.Set.Tasks, Task{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
	}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}
