package task

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts the frame-instance decoder never panics and that
// everything it accepts re-encodes to something it accepts again.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"deadline":10,"smax":1,"tasks":[{"id":1,"cycles":4,"penalty":2}]}`)
	f.Add(`{"deadline":1,"smax":0.5,"smin":0.1,"tasks":[]}`)
	f.Add(`{"deadline":-1,"smax":1,"tasks":[{"id":1,"cycles":0}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"deadline":1e308,"smax":1e308,"tasks":[{"id":1,"cycles":9223372036854775807}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		in, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted instances must validate and round-trip.
		if err := in.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzReadPeriodicJSON mirrors FuzzReadJSON for periodic instances.
func FuzzReadPeriodicJSON(f *testing.F) {
	f.Add(`{"type":"periodic","smax":1,"tasks":[{"id":1,"cycles":5,"period":20,"penalty":3}]}`)
	f.Add(`{"type":"frame","smax":1,"tasks":[]}`)
	f.Add(`{"type":"periodic","smax":1,"tasks":[{"id":1,"cycles":5,"period":0}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		pi, err := ReadPeriodicJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := pi.Validate(); err != nil {
			t.Fatalf("ReadPeriodicJSON accepted an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := pi.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadPeriodicJSON(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
