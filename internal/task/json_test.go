package task

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	in := Instance{
		Set: Set{
			Deadline: 12.5,
			Tasks: []Task{
				{ID: 1, Cycles: 100, Penalty: 3.5},
				{ID: 2, Cycles: 250, Penalty: 0, Rho: 1.5},
			},
		},
		SMin: 0.1,
		SMax: 1,
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, in)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"syntax", "{", "decoding"},
		{"unknown field", `{"deadline":1,"smax":1,"bogus":2,"tasks":[]}`, "bogus"},
		{"zero deadline", `{"deadline":0,"smax":1,"tasks":[]}`, "deadline"},
		{"zero smax", `{"deadline":1,"smax":0,"tasks":[]}`, "smax"},
		{"smin above smax", `{"deadline":1,"smin":2,"smax":1,"tasks":[]}`, "smin"},
		{"bad task", `{"deadline":1,"smax":1,"tasks":[{"id":1,"cycles":0}]}`, "cycles"},
		{"duplicate ids", `{"deadline":1,"smax":1,"tasks":[{"id":1,"cycles":5},{"id":1,"cycles":6}]}`, "duplicate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tt.in))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("ReadJSON() error = %v, want containing %q", err, tt.want)
			}
		})
	}
}

// Property: any valid instance survives a JSON round trip bit-exactly.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(cycles []uint16, deadline uint16) bool {
		if len(cycles) == 0 {
			return true
		}
		in := Instance{
			Set:  Set{Deadline: 1 + float64(deadline%1000)},
			SMax: 1,
		}
		for i, c := range cycles {
			in.Set.Tasks = append(in.Set.Tasks, Task{
				ID:      i,
				Cycles:  1 + int64(c),
				Penalty: float64(c%97) / 7,
			})
		}
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		return err == nil && reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicJSONRoundTrip(t *testing.T) {
	pi := PeriodicInstance{
		Set: PeriodicSet{Tasks: []Periodic{
			{ID: 1, Cycles: 5, Period: 20, Penalty: 3},
			{ID: 2, Cycles: 9, Period: 30, Penalty: 2.5, Rho: 1.5},
		}},
		SMin: 0.1,
		SMax: 1,
	}
	var buf bytes.Buffer
	if err := pi.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPeriodicJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pi) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, pi)
	}
}

func TestReadPeriodicJSONRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"wrong type", `{"type":"frame","smax":1,"tasks":[{"id":1,"cycles":5,"period":10}]}`, "type"},
		{"missing type", `{"smax":1,"tasks":[{"id":1,"cycles":5,"period":10}]}`, "type"},
		{"no tasks", `{"type":"periodic","smax":1,"tasks":[]}`, "no tasks"},
		{"zero period", `{"type":"periodic","smax":1,"tasks":[{"id":1,"cycles":5,"period":0}]}`, "period"},
		{"zero smax", `{"type":"periodic","smax":0,"tasks":[{"id":1,"cycles":5,"period":10}]}`, "smax"},
		{"unknown field", `{"type":"periodic","smax":1,"bogus":1,"tasks":[]}`, "bogus"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadPeriodicJSON(strings.NewReader(tt.in))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("ReadPeriodicJSON() error = %v, want containing %q", err, tt.want)
			}
		})
	}
}
