package task

import (
	"math"
	"strings"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    Task
		wantErr bool
	}{
		{"valid", Task{ID: 1, Cycles: 100, Penalty: 2}, false},
		{"valid zero penalty", Task{ID: 1, Cycles: 1, Penalty: 0}, false},
		{"valid rho", Task{ID: 1, Cycles: 1, Penalty: 0, Rho: 2.5}, false},
		{"zero cycles", Task{ID: 1, Cycles: 0, Penalty: 1}, true},
		{"negative cycles", Task{ID: 1, Cycles: -5, Penalty: 1}, true},
		{"negative penalty", Task{ID: 1, Cycles: 1, Penalty: -1}, true},
		{"nan penalty", Task{ID: 1, Cycles: 1, Penalty: math.NaN()}, true},
		{"inf penalty", Task{ID: 1, Cycles: 1, Penalty: math.Inf(1)}, true},
		{"negative rho", Task{ID: 1, Cycles: 1, Rho: -1}, true},
		{"nan rho", Task{ID: 1, Cycles: 1, Rho: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.task.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPowerCoeffDefault(t *testing.T) {
	if got := (Task{}).PowerCoeff(); got != 1 {
		t.Errorf("zero Rho PowerCoeff() = %v, want 1", got)
	}
	if got := (Task{Rho: 2.5}).PowerCoeff(); got != 2.5 {
		t.Errorf("PowerCoeff() = %v, want 2.5", got)
	}
	if got := (Periodic{}).PowerCoeff(); got != 1 {
		t.Errorf("zero Rho periodic PowerCoeff() = %v, want 1", got)
	}
}

func TestSetValidate(t *testing.T) {
	valid := Set{
		Deadline: 10,
		Tasks:    []Task{{ID: 1, Cycles: 5, Penalty: 1}, {ID: 2, Cycles: 3, Penalty: 2}},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid set: %v", err)
	}

	tests := []struct {
		name string
		set  Set
		want string
	}{
		{"zero deadline", Set{Deadline: 0}, "deadline"},
		{"negative deadline", Set{Deadline: -1}, "deadline"},
		{"inf deadline", Set{Deadline: math.Inf(1)}, "deadline"},
		{"duplicate IDs", Set{Deadline: 1, Tasks: []Task{{ID: 7, Cycles: 1}, {ID: 7, Cycles: 2}}}, "duplicate"},
		{"bad task", Set{Deadline: 1, Tasks: []Task{{ID: 1, Cycles: 0}}}, "cycles"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.set.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

func TestSetAggregates(t *testing.T) {
	s := Set{
		Deadline: 10,
		Tasks: []Task{
			{ID: 1, Cycles: 6, Penalty: 1.5},
			{ID: 2, Cycles: 4, Penalty: 2.5},
		},
	}
	if got := s.TotalCycles(); got != 10 {
		t.Errorf("TotalCycles() = %d, want 10", got)
	}
	if got := s.TotalPenalty(); got != 4 {
		t.Errorf("TotalPenalty() = %v, want 4", got)
	}
	if got := s.Load(1); got != 1 {
		t.Errorf("Load(1) = %v, want 1", got)
	}
	if got := s.Load(2); got != 0.5 {
		t.Errorf("Load(2) = %v, want 0.5", got)
	}
}

func TestByID(t *testing.T) {
	s := Set{Deadline: 1, Tasks: []Task{{ID: 3, Cycles: 9}}}
	got, ok := s.ByID(3)
	if !ok || got.Cycles != 9 {
		t.Errorf("ByID(3) = (%v, %v)", got, ok)
	}
	if _, ok := s.ByID(4); ok {
		t.Error("ByID(4) found a nonexistent task")
	}
}

func TestPeriodicValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Periodic
		wantErr bool
	}{
		{"valid", Periodic{ID: 1, Cycles: 3, Period: 10, Penalty: 1}, false},
		{"zero period", Periodic{ID: 1, Cycles: 3, Period: 0}, true},
		{"zero cycles", Periodic{ID: 1, Cycles: 0, Period: 10}, true},
		{"negative penalty", Periodic{ID: 1, Cycles: 1, Period: 1, Penalty: -1}, true},
		{"nan rho", Periodic{ID: 1, Cycles: 1, Period: 1, Rho: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPeriodicSet(t *testing.T) {
	ps := PeriodicSet{Tasks: []Periodic{
		{ID: 1, Cycles: 1, Period: 2, Penalty: 1},
		{ID: 2, Cycles: 2, Period: 5, Penalty: 1},
	}}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's running example: p1 = 2, p2 = 5 → hyper-period 10,
	// utilization 1/2 + 2/5 = 0.9.
	l, err := ps.Hyperperiod()
	if err != nil || l != 10 {
		t.Errorf("Hyperperiod() = (%d, %v), want (10, nil)", l, err)
	}
	if got := ps.Utilization(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Utilization() = %v, want 0.9", got)
	}
}

func TestPeriodicSetDuplicateIDs(t *testing.T) {
	ps := PeriodicSet{Tasks: []Periodic{
		{ID: 1, Cycles: 1, Period: 2},
		{ID: 1, Cycles: 1, Period: 3},
	}}
	if err := ps.Validate(); err == nil {
		t.Error("Validate() accepted duplicate IDs")
	}
}

func TestHyperperiodEdgeCases(t *testing.T) {
	if _, err := (PeriodicSet{}).Hyperperiod(); err == nil {
		t.Error("Hyperperiod() of empty set must error")
	}
	// Coprime large periods overflow int64.
	big := PeriodicSet{Tasks: []Periodic{
		{ID: 1, Cycles: 1, Period: math.MaxInt64 / 2},
		{ID: 2, Cycles: 1, Period: math.MaxInt64/2 - 1},
	}}
	if _, err := big.Hyperperiod(); err == nil {
		t.Error("Hyperperiod() must detect overflow")
	}
	// Identical periods: hyper-period equals the period.
	same := PeriodicSet{Tasks: []Periodic{
		{ID: 1, Cycles: 1, Period: 42},
		{ID: 2, Cycles: 1, Period: 42},
	}}
	if l, err := same.Hyperperiod(); err != nil || l != 42 {
		t.Errorf("Hyperperiod() = (%d, %v), want (42, nil)", l, err)
	}
}

func TestGCDLCM(t *testing.T) {
	tests := []struct{ a, b, g, l int64 }{
		{2, 5, 1, 10},
		{4, 6, 2, 12},
		{7, 7, 7, 7},
		{1, 9, 1, 9},
		{12, 18, 6, 36},
	}
	for _, tt := range tests {
		if got := gcd(tt.a, tt.b); got != tt.g {
			t.Errorf("gcd(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.g)
		}
		if got, err := lcm(tt.a, tt.b); err != nil || got != tt.l {
			t.Errorf("lcm(%d, %d) = (%d, %v), want (%d, nil)", tt.a, tt.b, got, err, tt.l)
		}
	}
}
