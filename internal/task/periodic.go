package task

import (
	"fmt"
	"math"
)

// Periodic is one periodic real-time task with an implicit deadline: the
// j-th job of the task arrives at (j−1)·Period and must complete by
// j·Period. Periods are integers so that hyper-periods are exact.
type Periodic struct {
	ID      int
	Cycles  int64   // worst-case execution cycles per job, > 0
	Period  int64   // period = relative deadline, > 0
	Penalty float64 // cost of rejecting ONE job of the task, ≥ 0
	Rho     float64 // dynamic power coefficient; 0 means 1 (see Task.Rho)
}

// PowerCoeff returns the task's effective dynamic power coefficient.
func (p Periodic) PowerCoeff() float64 {
	if p.Rho == 0 {
		return 1
	}
	return p.Rho
}

// Utilization returns Cycles/Period, the task's cycle utilization: the
// minimum constant speed dedicated entirely to this task that meets its
// deadlines.
func (p Periodic) Utilization() float64 {
	return float64(p.Cycles) / float64(p.Period)
}

// Validate reports whether the task parameters are in their legal ranges.
func (p Periodic) Validate() error {
	switch {
	case p.Cycles <= 0:
		return fmt.Errorf("periodic task %d: cycles = %d, want > 0", p.ID, p.Cycles)
	case p.Period <= 0:
		return fmt.Errorf("periodic task %d: period = %d, want > 0", p.ID, p.Period)
	case math.IsNaN(p.Penalty) || math.IsInf(p.Penalty, 0) || p.Penalty < 0:
		return fmt.Errorf("periodic task %d: penalty = %v, want finite ≥ 0", p.ID, p.Penalty)
	case math.IsNaN(p.Rho) || p.Rho < 0:
		return fmt.Errorf("periodic task %d: rho = %v, want ≥ 0", p.ID, p.Rho)
	}
	return nil
}

// PeriodicSet is a set of independent periodic tasks scheduled by EDF on one
// processor.
type PeriodicSet struct {
	Tasks []Periodic
}

// Validate checks every task and ID uniqueness.
func (ps PeriodicSet) Validate() error {
	seen := make(map[int]bool, len(ps.Tasks))
	for _, t := range ps.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("periodic set: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Utilization returns the summed cycle utilization Σ Cycles/Period.
func (ps PeriodicSet) Utilization() float64 {
	var u float64
	for _, t := range ps.Tasks {
		u += t.Utilization()
	}
	return u
}

// Hyperperiod returns the least common multiple of all periods, the length
// of the repeating schedule window. It returns an error on overflow (LCMs
// of unrelated periods grow fast) or on an empty set.
func (ps PeriodicSet) Hyperperiod() (int64, error) {
	if len(ps.Tasks) == 0 {
		return 0, fmt.Errorf("periodic set: hyperperiod of empty set")
	}
	l := int64(1)
	for _, t := range ps.Tasks {
		var err error
		l, err = lcm(l, t.Period)
		if err != nil {
			return 0, err
		}
	}
	return l, nil
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple of two positive integers, guarding
// against int64 overflow.
func lcm(a, b int64) (int64, error) {
	g := gcd(a, b)
	q := a / g
	if q != 0 && b > math.MaxInt64/q {
		return 0, fmt.Errorf("task: hyperperiod overflows int64 (lcm of %d and %d)", a, b)
	}
	return q * b, nil
}
