package task

import "testing"

// TestIndex pins the id→index map: one entry per task, pointing at its
// position in Tasks, for arbitrary (non-contiguous, unordered) IDs.
func TestIndex(t *testing.T) {
	s := Set{
		Deadline: 100,
		Tasks: []Task{
			{ID: 7, Cycles: 10, Penalty: 1},
			{ID: 2, Cycles: 20, Penalty: 2},
			{ID: 42, Cycles: 30, Penalty: 3},
			{ID: 0, Cycles: 40, Penalty: 4},
		},
	}
	idx := s.Index()
	if len(idx) != len(s.Tasks) {
		t.Fatalf("Index has %d entries, want %d", len(idx), len(s.Tasks))
	}
	for i, task := range s.Tasks {
		got, ok := idx[task.ID]
		if !ok {
			t.Errorf("ID %d missing from Index", task.ID)
			continue
		}
		if got != i {
			t.Errorf("Index[%d] = %d, want %d", task.ID, got, i)
		}
		// Index must agree with the linear ByID lookup.
		byID, ok := s.ByID(task.ID)
		if !ok || byID.ID != task.ID {
			t.Errorf("ByID(%d) = %+v, %v", task.ID, byID, ok)
		}
	}
	if _, ok := idx[999]; ok {
		t.Error("Index contains an ID that is not in the set")
	}
}

func TestIndexEmptySet(t *testing.T) {
	if idx := (Set{Deadline: 1}).Index(); len(idx) != 0 {
		t.Errorf("empty set Index = %v, want empty", idx)
	}
}
