package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"dvsreject/internal/serve"
	"dvsreject/internal/wire"
)

// ShedError is a 429 from the admission controller, carrying the server's
// backoff hint.
type ShedError struct {
	RetryAfter time.Duration
	Msg        string
}

func (e *ShedError) Error() string { return e.Msg }

// RemoteError is any other error frame: a solver rejection (422), a bad
// request (400) or a timeout (504) reported by the peer.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("remote %d: %s", e.Code, e.Msg) }

// WireClient is a client for one node's binary-protocol port. It keeps a
// single persistent connection; a broken connection is redialed once per
// call. Calls are serialized — the protocol answers frames in order, so
// one connection carries one request at a time. Use one client per worker
// for concurrency.
type WireClient struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
}

// NewWireClient returns a client for addr; the connection is dialed
// lazily.
func NewWireClient(addr string) *WireClient {
	return &WireClient{addr: addr}
}

// Close drops the connection; the client remains usable (it redials).
func (c *WireClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Solve runs one request against the peer, returning the decoded result.
// Error frames surface as *ShedError (429) or *RemoteError (anything
// else); transport failures return the underlying error after one redial
// attempt.
func (c *WireClient) Solve(req serve.Request) (wire.Result, error) {
	payload := wire.EncodeRequest(toWireRequest(req))
	c.mu.Lock()
	defer c.mu.Unlock()
	t, resp, err := c.roundTrip(wire.FrameSolve, payload)
	if err != nil {
		return wire.Result{}, err
	}
	switch t {
	case wire.FrameSolution:
		return wire.DecodeResult(resp)
	case wire.FrameError:
		werr, err := wire.DecodeError(resp)
		if err != nil {
			return wire.Result{}, err
		}
		if werr.Code == http.StatusTooManyRequests {
			return wire.Result{}, &ShedError{RetryAfter: werr.RetryAfter, Msg: werr.Msg}
		}
		return wire.Result{}, &RemoteError{Code: werr.Code, Msg: werr.Msg}
	default:
		c.drop()
		return wire.Result{}, fmt.Errorf("wire: unexpected reply frame type %d", t)
	}
}

// Push writes one one-way frame (replication). No reply is read.
func (c *WireClient) Push(t wire.FrameType, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.write(t, payload)
}

// roundTrip writes a frame and reads the in-order reply. Callers hold mu.
func (c *WireClient) roundTrip(t wire.FrameType, payload []byte) (wire.FrameType, []byte, error) {
	if err := c.write(t, payload); err != nil {
		return 0, nil, err
	}
	rt, resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		c.drop()
		return 0, nil, err
	}
	return rt, resp, nil
}

// write sends one frame, dialing if needed and redialing once on a write
// error (the peer restarted, the idle connection was reset). Callers hold
// mu.
func (c *WireClient) write(t wire.FrameType, payload []byte) error {
	if c.conn == nil {
		if err := c.dial(); err != nil {
			return err
		}
		return c.writeOnce(t, payload)
	}
	if err := c.writeOnce(t, payload); err != nil {
		c.drop()
		if derr := c.dial(); derr != nil {
			return derr
		}
		return c.writeOnce(t, payload)
	}
	return nil
}

func (c *WireClient) writeOnce(t wire.FrameType, payload []byte) error {
	err := wire.WriteFrame(c.conn, t, payload)
	if err != nil {
		c.drop()
	}
	return err
}

func (c *WireClient) dial() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

func (c *WireClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Client routes requests across a cluster by consistent hash of the
// canonical request fingerprint — the same placement every node's
// replication uses, so a routed request lands on the shard whose cache
// owns it. Safe for concurrent use only insofar as each underlying
// WireClient serializes; for full-rate load use one Client per worker.
type Client struct {
	ring  *Ring
	nodes []*WireClient
}

// NewClient builds a routing client over the peer identities (wire
// addresses). vnodes 0 means the ring default.
func NewClient(peers []string, vnodes int) *Client {
	c := &Client{ring: NewRing(peers, vnodes)}
	for i := 0; i < c.ring.Len(); i++ {
		c.nodes = append(c.nodes, NewWireClient(c.ring.ID(i)))
	}
	return c
}

// Route returns the owner shard index for a request.
func (c *Client) Route(req serve.Request) int {
	return c.ring.Owner(serve.Fingerprint(req, 0))
}

// Solve routes the request to its owner shard and solves it there.
func (c *Client) Solve(req serve.Request) (wire.Result, int, error) {
	i := c.Route(req)
	res, err := c.nodes[i].Solve(req)
	return res, i, err
}

// Close closes every per-node connection.
func (c *Client) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
