package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/serve"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

var idealProc = speed.Proc{Model: power.Cubic(), SMax: 1}

// testReq draws a deterministic contested instance as a serve request.
func testReq(t *testing.T, seed int64, n int) serve.Request {
	t.Helper()
	set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
		N:       n,
		Load:    1.2,
		Penalty: gen.PenaltyModel(seed % 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return serve.Request{Tasks: set, Proc: idealProc, Solver: "DP"}
}

func directSolve(t *testing.T, req serve.Request) core.Solution {
	t.Helper()
	s, err := core.NewSolver(req.Solver, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(core.Instance{Tasks: req.Tasks, Proc: req.Proc, FastPow: req.FastPow})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestRingDeterministicAcrossOrderAndProcess(t *testing.T) {
	ids := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"}
	perm := []string{"10.0.0.3:9000", "10.0.0.1:9000", "10.0.0.2:9000"}
	a, b := NewRing(ids, 0), NewRing(perm, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		ao, ar := a.OwnerReplica(key)
		bo, br := b.OwnerReplica(key)
		if a.ID(ao) != b.ID(bo) || a.ID(ar) != b.ID(br) {
			t.Fatalf("key %q: owner/replica differ across id order: %s/%s vs %s/%s",
				key, a.ID(ao), a.ID(ar), b.ID(bo), b.ID(br))
		}
		if ao == ar {
			t.Fatalf("key %q: replica equals owner on a 3-node ring", key)
		}
	}
	// Placement is a pure function of the identity strings, so it must
	// never drift: pin a few points.
	pins := map[string]string{
		"key-0": "10.0.0.2:9000",
		"key-1": "10.0.0.2:9000",
		"key-2": "10.0.0.3:9000",
	}
	for key, want := range pins {
		if got := a.ID(a.Owner(key)); got != want {
			t.Errorf("owner(%q) = %s, want pinned %s", key, got, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	r := NewRing(ids, 0)
	counts := make([]int, len(ids))
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / len(ids)
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d of %d keys, want within [%d, %d]", ids[i], c, keys, want/2, want*2)
		}
	}
}

func TestRingSingleNode(t *testing.T) {
	r := NewRing([]string{"only"}, 0)
	o, rep := r.OwnerReplica("anything")
	if o != 0 || rep != 0 {
		t.Fatalf("single-node ring: owner %d replica %d, want 0/0", o, rep)
	}
	if o, rep := (NewRing(nil, 0)).OwnerReplica("x"); o != -1 || rep != -1 {
		t.Fatalf("empty ring: got %d/%d, want -1/-1", o, rep)
	}
}

// lowPenaltyReq builds a request whose total penalty is pen, with cost
// dominated by the DP estimate for n tasks.
func penaltyReq(n int, pen float64) serve.Request {
	tasks := make([]task.Task, n)
	for i := range tasks {
		tasks[i] = task.Task{ID: i + 1, Cycles: 10, Penalty: pen / float64(n)}
	}
	return serve.Request{
		Tasks:  task.Set{Tasks: tasks, Deadline: 100},
		Proc:   idealProc,
		Solver: "DP",
	}
}

// TestEstimateCostWidthAware pins the cost model's grid awareness: a
// deadline-heavy DP request past the dense wall must charge for its
// sparse breakpoint bound, while the budget-bound approximators stay
// flat in n no matter the width.
func TestEstimateCostWidthAware(t *testing.T) {
	narrow := penaltyReq(100, 1) // width 101: dense regime
	wide := penaltyReq(100, 1)
	wide.Tasks.Deadline = 1 << 26 // 100·2^26 cells: beyond the dense wall
	nc, wc := EstimateCost(narrow), EstimateCost(wide)
	if wc <= 100*nc {
		t.Fatalf("beyond-wall DP cost %.1f not ≫ dense cost %.1f", wc, nc)
	}
	approxNarrow, approxWide := narrow, wide
	approxNarrow.Solver = "APPROX"
	approxWide.Solver = "APPROX"
	an, aw := EstimateCost(approxNarrow), EstimateCost(approxWide)
	if an != aw {
		t.Fatalf("APPROX cost depends on grid width: %.1f vs %.1f", an, aw)
	}
}

func TestAdmissionShedsLowPenaltyFirst(t *testing.T) {
	// Capacity 15 estimated-µs. A DP request with n=100 on a width-101
	// grid costs 5 + 0.0005·100·101 ≈ 10, so one admit nearly fills the
	// gate and the second is over capacity.
	a := NewAdmission(AdmissionConfig{Capacity: 15, Slope: 0.05, Drain: 1})
	filler := penaltyReq(100, 1000)
	if ok, _ := a.Admit(filler); !ok {
		t.Fatal("first request not admitted under empty gate")
	}
	// Second pushes past capacity (≈20 > 15): overload pricing starts,
	// but its penalty is enormous, so it is served anyway.
	rich := penaltyReq(100, 1e6)
	if ok, _ := a.Admit(rich); !ok {
		t.Fatal("high-penalty request shed; it should ride past capacity")
	}
	// Now a near-zero-penalty request must be shed, with a positive
	// Retry-After derived from the backlog.
	poor := penaltyReq(100, 0.001)
	ok, retry := a.Admit(poor)
	if ok {
		t.Fatal("low-penalty request admitted under overload")
	}
	if retry < time.Millisecond || retry > 5*time.Second {
		t.Fatalf("retry-after %v outside [1ms, 5s]", retry)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("stats admitted=%d shed=%d, want 2/1", st.Admitted, st.Shed)
	}
	if st.ShedPenalty == 0 {
		t.Fatal("shed penalty not accumulated")
	}
	// Draining the gate readmits the same poor request.
	a.Release(filler)
	a.Release(rich)
	if ok, _ := a.Admit(poor); !ok {
		t.Fatal("request still shed after the gate drained")
	}
	a.Release(poor)
	if got := a.Stats().InflightCost; got != 0 {
		t.Fatalf("inflight cost %v after full drain, want 0", got)
	}
}

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	var a *Admission // nil gate
	if ok, _ := a.Admit(penaltyReq(10000, 0)); !ok {
		t.Fatal("nil admission shed a request")
	}
	a = NewAdmission(AdmissionConfig{}) // zero capacity = disabled
	for i := 0; i < 100; i++ {
		if ok, _ := a.Admit(penaltyReq(10000, 0)); !ok {
			t.Fatal("disabled admission shed a request")
		}
	}
}

func TestGatedHandlerSheds429(t *testing.T) {
	// Capacity far below one DP n=100 request (cost 55): with zero
	// penalty riding on it, the request is shed immediately.
	node := NewNode(NodeConfig{
		Self:      "self",
		Peers:     []string{"self"},
		Admission: AdmissionConfig{Capacity: 1, Slope: 0.05, Drain: 1},
	})
	defer node.Close()
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()

	var sb strings.Builder
	sb.WriteString(`{"deadline":100,"smax":1,"tasks":[`)
	for i := 1; i <= 100; i++ {
		if i > 1 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id":%d,"cycles":10,"penalty":0.000001}`, i)
	}
	sb.WriteString(`]}`)
	body := sb.String()

	resp, err := http.Post(srv.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if resp.Header.Get("X-Retry-After-Ms") == "" {
		t.Fatal("429 without an X-Retry-After-Ms header")
	}
	var werr serve.WireResponse
	if err := json.NewDecoder(resp.Body).Decode(&werr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(werr.Error, "overloaded") {
		t.Fatalf("shed body %q does not mention overload", werr.Error)
	}
	st := node.Stats()
	if st.Admission.Shed != 1 {
		t.Fatalf("node shed counter %d, want 1", st.Admission.Shed)
	}
}

// startCluster brings up n nodes with real TCP wire listeners and returns
// their addresses plus a stop func.
func startCluster(t *testing.T, n int, admission AdmissionConfig) ([]string, []*Node) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(NodeConfig{
			Self:      addrs[i],
			Peers:     addrs,
			Admission: admission,
		})
		go nodes[i].ServeWire(lns[i])
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return addrs, nodes
}

func TestClusterEndToEndBitIdentical(t *testing.T) {
	addrs, nodes := startCluster(t, 3, AdmissionConfig{})
	client := NewClient(addrs, 0)
	defer client.Close()

	type solved struct {
		req   serve.Request
		owner int
		want  core.Solution
	}
	var cases []solved
	for seed := int64(1); seed <= 8; seed++ {
		req := testReq(t, seed, 60)
		res, owner, err := client.Solve(req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := directSolve(t, req)
		if err := verify.BitIdenticalSolutions(res.Solution, want); err != nil {
			t.Fatalf("seed %d: wire solution differs from direct solve: %v", seed, err)
		}
		if res.CacheHit {
			t.Fatalf("seed %d: cold solve reported as cache hit", seed)
		}
		cases = append(cases, solved{req: req, owner: owner, want: want})
	}

	// Every owner shard solved something (3 nodes, 8 keys — all hit with
	// overwhelming probability for this pinned key set).
	seen := map[int]bool{}
	for _, c := range cases {
		seen[c.owner] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all 8 keys routed to %d shard(s); routing is not spreading", len(seen))
	}

	// A repeat through the router is a cache hit on the owner, still
	// bit-identical.
	for _, c := range cases {
		res, owner, err := client.Solve(c.req)
		if err != nil {
			t.Fatal(err)
		}
		if owner != c.owner {
			t.Fatalf("rerouted: first %d then %d", c.owner, owner)
		}
		if !res.CacheHit {
			t.Fatal("repeat solve missed the owner's cache")
		}
		if err := verify.BitIdenticalSolutions(res.Solution, c.want); err != nil {
			t.Fatalf("cached solution differs: %v", err)
		}
	}

	// Replication: each cold solve was pushed to the key's replica. Wait
	// for the queues to drain, then ask the replica directly (not via the
	// router) and expect a warm hit with the identical solution.
	ring := NewRing(addrs, 0)
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range cases {
		_, replica := ring.OwnerReplica(serve.Fingerprint(c.req, 0))
		for {
			if nodes[replica].Engine().Stats().Warmed > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never warmed (stats %+v)", replica, nodes[replica].Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
		direct := NewWireClient(addrs[replica])
		res, err := direct.Solve(c.req)
		direct.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatalf("replica %d served a replicated key cold", replica)
		}
		if err := verify.BitIdenticalSolutions(res.Solution, c.want); err != nil {
			t.Fatalf("replicated solution differs from direct solve: %v", err)
		}
	}

	var sent, applied uint64
	for _, nd := range nodes {
		st := nd.Stats()
		sent += st.ReplSent
		applied += st.ReplApplied
	}
	if sent == 0 || applied == 0 {
		t.Fatalf("replication counters sent=%d applied=%d, want both > 0", sent, applied)
	}
}

func TestWireShedsOverCapacity(t *testing.T) {
	addrs, _ := startCluster(t, 1, AdmissionConfig{Capacity: 1, Slope: 0.05, Drain: 1})
	c := NewWireClient(addrs[0])
	defer c.Close()
	_, err := c.Solve(penaltyReq(100, 0.001))
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("error %v, want *ShedError", err)
	}
	if shed.RetryAfter < time.Millisecond {
		t.Fatalf("shed retry-after %v, want ≥ 1ms", shed.RetryAfter)
	}
	if !strings.Contains(shed.Msg, "overloaded") {
		t.Fatalf("shed msg %q does not mention overload", shed.Msg)
	}
	// High-penalty request still rides through on the same connection.
	res, err := c.Solve(penaltyReq(100, 1e9))
	if err != nil {
		t.Fatalf("high-penalty request failed: %v", err)
	}
	if len(res.Solution.Accepted)+len(res.Solution.Rejected) != 100 {
		t.Fatal("solution does not cover the instance")
	}
}

func TestWireRemoteSolverError(t *testing.T) {
	addrs, _ := startCluster(t, 1, AdmissionConfig{})
	c := NewWireClient(addrs[0])
	defer c.Close()
	req := testReq(t, 1, 10)
	req.Solver = "NO-SUCH-SOLVER"
	_, err := c.Solve(req)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("error %v, want *RemoteError", err)
	}
	if remote.Code != http.StatusUnprocessableEntity {
		t.Fatalf("remote code %d, want 422", remote.Code)
	}
	// The connection survives an error frame: the next request works.
	req.Solver = "DP"
	if _, err := c.Solve(req); err != nil {
		t.Fatalf("connection unusable after error frame: %v", err)
	}
}

func TestWireClientRedialsAfterNodeRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	node := NewNode(NodeConfig{Self: addr, Peers: []string{addr}})
	go node.ServeWire(ln)

	c := NewWireClient(addr)
	defer c.Close()
	req := testReq(t, 42, 30)
	if _, err := c.Solve(req); err != nil {
		t.Fatal(err)
	}

	node.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	node2 := NewNode(NodeConfig{Self: addr, Peers: []string{addr}})
	defer node2.Close()
	go node2.ServeWire(ln2)

	// The stale connection fails once; the client redials within the same
	// call or the next one.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if _, lastErr = c.Solve(req); lastErr == nil {
			return
		}
	}
	t.Fatalf("client never recovered after restart: %v", lastErr)
}
