package cluster

import (
	"math"
	"runtime"
	"sync"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/serve"
)

// EstimateCost returns the estimated solver microseconds for one request —
// the admission controller's unit of in-flight work. The per-solver
// coefficients are calibrated against the committed BENCH_core.json rows
// on the reference box (dense DP ≈ 0.5 ns/grid cell, sparse DP ≈ 4
// ns/breakpoint, the greedy family ≈ 0.03 µs/task, exhaustive
// exponential); they only need to rank requests and track aggregate
// backlog, not predict wall time precisely.
func EstimateCost(req serve.Request) float64 {
	n := float64(len(req.Tasks.Tasks))
	switch req.Solver {
	case "OPT":
		// 2^n subsets; capped so one absurd request saturates rather than
		// overflows the controller.
		return math.Min(0.05*math.Exp2(n), 1e9)
	case "GREEDY", "S-GREEDY", "ROUNDING", "ACCEPT-ALL", "REJECT-ALL":
		return 2 + 0.03*n
	case "RAND":
		return 2 + 0.1*n
	case "APPROX", "APPROX-V":
		// The approximation scalers shrink any grid to fit their state
		// budget, so work stays linear in n regardless of the deadline.
		return 5 + 0.5*n
	case "ANYTIME":
		// The registry configuration runs Islands·Pop·Generations genome
		// evaluations of n bits each through the batch kernel; at the
		// defaults that is wall-bounded and roughly linear in n.
		return 30 + 10*n
	default:
		// DP, DP-SPARSE and anything unknown: pseudopolynomial row
		// kernels whose work tracks table cells, not task count — a flat
		// per-task rate would let one deadline-heavy grid through as
		// cheap. Charge by the grid the request actually spans.
		cap64 := core.DPGridCapacity(core.Instance{Tasks: req.Tasks, Proc: req.Proc})
		if cap64 < 0 {
			// Unrepresentable grid: the solve fails validation almost
			// immediately, so charge the old flat rate.
			return 5 + 0.5*n
		}
		cells := n * float64(cap64+1)
		if cells <= float64(core.DefaultMaxDPStates) {
			// Dense-admitted: the vectorized row kernel, ≈ 0.5 ns/cell.
			return 5 + 0.0005*cells
		}
		// Beyond the dense wall the auto mode solves sparse rows. True
		// breakpoint counts depend on cycle collisions and dominance, so
		// charge the pessimistic bound — all-distinct subset sums —
		// clipped by the grid and the sparse cell budget, at ≈ 4
		// ns/breakpoint for the scalar merge.
		est := math.Min(math.Exp2(math.Min(n, 40)), cells)
		est = math.Min(est, float64(core.DefaultMaxSparseCells))
		return 5 + 0.004*est
	}
}

// RequestPenalty returns the total rejection penalty riding on a request —
// what is forfeited if the whole instance is shed instead of solved. This
// is the serving-tier analogue of a task's rejection penalty v_i in the
// paper's cost model.
func RequestPenalty(req serve.Request) float64 {
	var sum float64
	for _, t := range req.Tasks.Tasks {
		sum += t.Penalty
	}
	return sum
}

// AdmissionConfig parameterizes the overload controller.
type AdmissionConfig struct {
	// Capacity is the estimated-microsecond budget of concurrently
	// admitted work. ≤ 0 disables admission control entirely (every
	// request admitted).
	Capacity float64
	// Slope is the shedding price in penalty units charged per estimated
	// microsecond of cost per unit of overload. Mirroring the paper's
	// rule — reject a task when its penalty is below the energy saved —
	// a request is shed when its penalty is below Slope·(load−1)·cost:
	// the deeper the overload, the higher the penalty bar. 0 means the
	// default 0.05.
	Slope float64
	// Drain is the backlog drain rate in estimated microseconds of work
	// retired per microsecond of wall time (≈ effective solver
	// parallelism). It converts excess backlog into the Retry-After hint.
	// 0 means GOMAXPROCS.
	Drain float64
}

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	// Admitted counts requests allowed through the gate.
	Admitted uint64 `json:"admitted"`
	// Shed counts requests rejected with 429.
	Shed uint64 `json:"shed"`
	// ShedPenalty accumulates the rejection penalty of shed requests —
	// the serving-tier analogue of the solver's Σ v_i over rejected
	// tasks.
	ShedPenalty float64 `json:"shed_penalty"`
	// InflightCost is the estimated microseconds of admitted work
	// currently in flight.
	InflightCost float64 `json:"inflight_cost"`
}

// Admission is the cost-model overload controller. It implements
// serve.Gate: Admit charges a request's estimated cost against the
// capacity, Release refunds it. Under overload it sheds lowest-penalty
// requests first — exactly the calculus the solvers apply to tasks,
// lifted to the serving tier. A nil *Admission admits everything.
type Admission struct {
	cfg AdmissionConfig

	mu          sync.Mutex
	inflight    float64
	admitted    uint64
	shed        uint64
	shedPenalty float64
}

// NewAdmission builds a controller; nil-safe to use with a zero or
// disabled config.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Slope <= 0 {
		cfg.Slope = 0.05
	}
	if cfg.Drain <= 0 {
		cfg.Drain = float64(runtime.GOMAXPROCS(0))
	}
	return &Admission{cfg: cfg}
}

// Admit implements serve.Gate. It reports whether the request may proceed
// and, when shedding, how long the client should wait for the excess
// backlog to drain.
func (a *Admission) Admit(req serve.Request) (bool, time.Duration) {
	if a == nil || a.cfg.Capacity <= 0 {
		return true, 0
	}
	cost := EstimateCost(req)
	a.mu.Lock()
	defer a.mu.Unlock()
	next := a.inflight + cost
	if next <= a.cfg.Capacity {
		a.inflight = next
		a.admitted++
		return true, 0
	}
	load := next / a.cfg.Capacity
	price := a.cfg.Slope * (load - 1) * cost
	if pen := RequestPenalty(req); pen < price {
		a.shed++
		a.shedPenalty += pen
		// Retry once the backlog above capacity has drained at the
		// configured rate.
		excess := next - a.cfg.Capacity
		retry := time.Duration(excess/a.cfg.Drain) * time.Microsecond
		return false, min(max(retry, time.Millisecond), 5*time.Second)
	}
	// High-penalty request: worth serving even past capacity.
	a.inflight = next
	a.admitted++
	return true, 0
}

// Release implements serve.Gate, refunding the cost charged by Admit.
func (a *Admission) Release(req serve.Request) {
	if a == nil || a.cfg.Capacity <= 0 {
		return
	}
	cost := EstimateCost(req)
	a.mu.Lock()
	a.inflight = max(a.inflight-cost, 0)
	a.mu.Unlock()
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Admitted:     a.admitted,
		Shed:         a.shed,
		ShedPenalty:  a.shedPenalty,
		InflightCost: a.inflight,
	}
}
