// Package cluster turns the single-process serve.Engine into a multi-node
// serving tier:
//
//   - a consistent-hash ring routes each canonical instance fingerprint
//     (serve.Fingerprint) to one owner shard, so every node's plan cache
//     holds a disjoint slice of the key space;
//   - cold solves are replicated — the owner pushes the bit-exact
//     (request, solution) pair over the binary wire protocol to the key's
//     next replica on the ring, which warms its cache without solving;
//   - an admission controller applies the paper's energy-vs-penalty
//     rejection calculus to the serving tier: under overload the node
//     sheds the requests whose rejection penalty is smallest relative to
//     their estimated compute cost, answering 429 with a Retry-After
//     derived from the backlog.
//
// Nodes speak two protocols side by side: the HTTP/JSON surface of
// internal/serve, and the compact binary protocol of internal/wire over
// TCP for cold solves and replication traffic.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node count per physical node. 64 keeps the
// ring balanced within a few percent for small clusters while the build
// stays microseconds.
const defaultVnodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over node identities. The
// identity strings (wire addresses, by convention) are hashed with sha256,
// so every process that builds a ring from the same identity list routes
// every key identically — the property client-side routing and server-side
// replication both rely on.
type Ring struct {
	ids    []string
	points []ringPoint
}

// NewRing builds a ring over ids with vnodes virtual nodes each
// (vnodes ≤ 0 means 64). Order of ids does not affect routing — identity
// strings alone position the virtual nodes.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{
		ids:    append([]string(nil), ids...),
		points: make([]ringPoint, 0, len(ids)*vnodes),
	}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", id, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.ids) }

// ID returns the identity of node i.
func (r *Ring) ID(i int) string { return r.ids[i] }

// Index returns the node index of identity id, or -1.
func (r *Ring) Index(id string) int {
	for i, s := range r.ids {
		if s == id {
			return i
		}
	}
	return -1
}

// Owner returns the node index owning key: the first virtual node at or
// clockwise after the key's position.
func (r *Ring) Owner(key string) int {
	owner, _ := r.OwnerReplica(key)
	return owner
}

// OwnerReplica returns the key's owner and its replica — the next distinct
// node clockwise on the ring, the target of warm-cache pushes. With fewer
// than two nodes the replica equals the owner.
func (r *Ring) OwnerReplica(key string) (owner, replica int) {
	if len(r.ids) == 0 {
		return -1, -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	owner = r.points[i].node
	replica = owner
	for k := 1; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if p.node != owner {
			replica = p.node
			break
		}
	}
	return owner, replica
}

// ringHash positions a string on the ring. sha256 (not maphash) so the
// placement is identical in every process.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}
