package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"dvsreject/internal/core"
	"dvsreject/internal/serve"
	"dvsreject/internal/wire"
)

// NodeConfig parameterizes one cluster node.
type NodeConfig struct {
	// Engine configures the node's serve.Engine. Its OnColdSolve hook is
	// owned by the node (warm-cache replication) and must be left nil.
	Engine serve.Config
	// Self is this node's ring identity — by convention its wire address.
	Self string
	// Peers lists every node identity on the ring, including Self. Empty
	// (or Self-only) runs a standalone node: no routing, no replication.
	Peers []string
	// Vnodes is the virtual-node count per peer (0 = 64).
	Vnodes int
	// Admission configures the overload controller. Zero Capacity disables
	// shedding.
	Admission AdmissionConfig
	// ReplicaQueue bounds the replication send queue (0 = 256). When the
	// queue is full pushes are dropped, never blocked on: replication is a
	// warm-cache hint, not durability.
	ReplicaQueue int
}

// NodeStats aggregates one node's counters across its layers.
type NodeStats struct {
	Engine    serve.Stats    `json:"engine"`
	Admission AdmissionStats `json:"admission"`
	// ReplSent counts cache entries pushed to the replica peer.
	ReplSent uint64 `json:"repl_sent"`
	// ReplDropped counts pushes dropped on a full queue or a dead peer.
	ReplDropped uint64 `json:"repl_dropped"`
	// ReplApplied counts pushes received and installed via Engine.Warm
	// (the engine's Warmed counter also ticks for each).
	ReplApplied uint64 `json:"repl_applied"`
	// WireSolves counts solve frames served over the binary protocol.
	WireSolves uint64 `json:"wire_solves"`
	// WireErrors counts malformed frames and failed reads on wire
	// connections.
	WireErrors uint64 `json:"wire_errors"`
}

// replItem is one queued warm-cache push, pre-encoded on the solving
// goroutine so the sender only does I/O.
type replItem struct {
	target  string
	payload []byte
}

// Node is one shard of the serving cluster: a serve.Engine fronted by the
// admission controller, speaking HTTP/JSON (Handler) and the binary wire
// protocol (ServeWire) side by side, and replicating its cold solves to
// the key's next ring node.
type Node struct {
	cfg    NodeConfig
	engine *serve.Engine
	gate   *Admission
	ring   *Ring
	self   int

	repl chan replItem
	wg   sync.WaitGroup
	done chan struct{}

	mu      sync.Mutex
	clients map[string]*WireClient
	lns     []net.Listener
	conns   map[net.Conn]struct{}
	closed  bool

	replSent    atomic.Uint64
	replDropped atomic.Uint64
	replApplied atomic.Uint64
	wireSolves  atomic.Uint64
	wireErrors  atomic.Uint64
}

// NewNode builds a node. Call Close when done to stop the replication
// sender and any wire listeners.
func NewNode(cfg NodeConfig) *Node {
	if cfg.ReplicaQueue <= 0 {
		cfg.ReplicaQueue = 256
	}
	n := &Node{
		cfg:     cfg,
		gate:    NewAdmission(cfg.Admission),
		ring:    NewRing(cfg.Peers, cfg.Vnodes),
		repl:    make(chan replItem, cfg.ReplicaQueue),
		done:    make(chan struct{}),
		clients: make(map[string]*WireClient),
		conns:   make(map[net.Conn]struct{}),
	}
	n.self = n.ring.Index(cfg.Self)
	ecfg := cfg.Engine
	if n.ring.Len() > 1 {
		ecfg.OnColdSolve = n.enqueueReplica
	}
	n.engine = serve.New(ecfg)
	n.wg.Add(1)
	go n.replicaSender()
	return n
}

// Engine exposes the node's serve engine (tests, benchmarks).
func (n *Node) Engine() *serve.Engine { return n.engine }

// Gate exposes the node's admission controller.
func (n *Node) Gate() *Admission { return n.gate }

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Engine:      n.engine.Stats(),
		Admission:   n.gate.Stats(),
		ReplSent:    n.replSent.Load(),
		ReplDropped: n.replDropped.Load(),
		ReplApplied: n.replApplied.Load(),
		WireSolves:  n.wireSolves.Load(),
		WireErrors:  n.wireErrors.Load(),
	}
}

// Handler returns the node's HTTP surface: the engine's gated mux with
// GET /stats upgraded to the full NodeStats.
func (n *Node) Handler() http.Handler {
	inner := serve.NewGatedHandler(n.engine, n.gate)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Stats())
	})
	mux.Handle("/", inner)
	return mux
}

// Close stops the replication sender, closes peer connections, accepted
// wire connections and any listeners passed to ServeWire, and waits for
// connection handlers.
func (n *Node) Close() {
	close(n.done)
	n.mu.Lock()
	n.closed = true
	for _, c := range n.clients {
		c.Close()
	}
	for conn := range n.conns {
		conn.Close()
	}
	lns := n.lns
	n.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	n.wg.Wait()
}

// enqueueReplica is the engine's OnColdSolve hook: route the solved key to
// its replica on the ring and queue the bit-exact (request, solution) pair
// for the sender. Runs on the solving goroutine, so it only encodes and
// enqueues.
func (n *Node) enqueueReplica(req serve.Request, sol core.Solution) {
	key := serve.Fingerprint(req, 0)
	owner, replica := n.ring.OwnerReplica(key)
	target := replica
	if target == n.self {
		// We are the key's replica (a client routed it here off-owner, or
		// the ring wrapped); push toward the owner instead so two nodes
		// end up warm either way.
		target = owner
	}
	if target < 0 || target == n.self {
		return
	}
	payload := wire.EncodeReplicate(toWireRequest(req), sol)
	select {
	case n.repl <- replItem{target: n.ring.ID(target), payload: payload}:
	default:
		n.replDropped.Add(1)
	}
}

// replicaSender drains the replication queue over persistent wire
// connections, one frame per entry. A send error drops the entry and the
// connection; the next entry redials.
func (n *Node) replicaSender() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case item := <-n.repl:
			c := n.client(item.target)
			if err := c.Push(wire.FrameReplicate, item.payload); err != nil {
				n.replDropped.Add(1)
				continue
			}
			n.replSent.Add(1)
		}
	}
}

// client returns the node's persistent connection to peer, creating it on
// first use.
func (n *Node) client(peer string) *WireClient {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.clients[peer]
	if !ok {
		c = NewWireClient(peer)
		n.clients[peer] = c
	}
	return c
}

// ServeWire accepts binary-protocol connections on ln until Close (or an
// external ln.Close). Each connection carries a sequence of frames:
// FrameSolve is answered with FrameSolution or FrameError in order;
// FrameReplicate is one-way and warms the local cache.
func (n *Node) ServeWire(ln net.Listener) {
	n.mu.Lock()
	n.lns = append(n.lns, ln)
	n.mu.Unlock()
	n.wg.Add(1)
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				conn.Close()
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
			}()
			n.serveConn(conn)
		}()
	}
}

// serveConn handles one wire connection until EOF or a framing error.
func (n *Node) serveConn(conn net.Conn) {
	for {
		select {
		case <-n.done:
			return
		default:
		}
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				n.wireErrors.Add(1)
			}
			return
		}
		switch t {
		case wire.FrameSolve:
			wreq, err := wire.DecodeRequest(payload)
			if err != nil {
				n.wireErrors.Add(1)
				n.reply(conn, wire.FrameError, wire.EncodeError(wire.Error{Code: http.StatusBadRequest, Msg: err.Error()}))
				return
			}
			ft, fp := n.solveFrame(wreq)
			n.reply(conn, ft, fp)
		case wire.FrameReplicate:
			wreq, sol, err := wire.DecodeReplicate(payload)
			if err != nil {
				n.wireErrors.Add(1)
				continue
			}
			if n.engine.Warm(toServeRequest(wreq), sol) {
				n.replApplied.Add(1)
			}
		default:
			n.wireErrors.Add(1)
			n.reply(conn, wire.FrameError, wire.EncodeError(wire.Error{Code: http.StatusBadRequest, Msg: "unexpected frame type"}))
			return
		}
	}
}

// solveFrame runs one wire solve through the gate and the engine,
// returning the response frame.
func (n *Node) solveFrame(wreq wire.Request) (wire.FrameType, []byte) {
	req := toServeRequest(wreq)
	ok, retryAfter := n.gate.Admit(req)
	if !ok {
		return wire.FrameError, wire.EncodeError(wire.Error{
			Code:       http.StatusTooManyRequests,
			RetryAfter: retryAfter,
			Msg:        serve.OverloadedMsg(retryAfter),
		})
	}
	defer n.gate.Release(req)
	resp := n.engine.Solve(context.Background(), req)
	if resp.Err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(resp.Err, context.DeadlineExceeded) || errors.Is(resp.Err, context.Canceled) {
			code = http.StatusGatewayTimeout
		}
		return wire.FrameError, wire.EncodeError(wire.Error{Code: code, Msg: resp.Err.Error()})
	}
	n.wireSolves.Add(1)
	return wire.FrameSolution, wire.EncodeResult(wire.Result{
		Solution:  resp.Solution,
		CacheHit:  resp.CacheHit,
		Coalesced: resp.Coalesced,
	})
}

// reply writes one frame, counting (and swallowing) write errors — the
// client observes them as a broken connection.
func (n *Node) reply(conn net.Conn, t wire.FrameType, payload []byte) {
	if err := wire.WriteFrame(conn, t, payload); err != nil {
		n.wireErrors.Add(1)
	}
}

// toServeRequest maps a wire request onto the engine's request type.
func toServeRequest(w wire.Request) serve.Request {
	return serve.Request{
		Tasks:   w.Tasks,
		Proc:    w.Proc,
		Solver:  w.Solver,
		FastPow: w.FastPow,
		Timeout: w.Timeout,
	}
}

// toWireRequest maps an engine request onto the wire form.
func toWireRequest(r serve.Request) wire.Request {
	return wire.Request{
		Solver:  r.Solver,
		Tasks:   r.Tasks,
		Proc:    r.Proc,
		FastPow: r.FastPow,
		Timeout: r.Timeout,
	}
}
