package reclaim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvsreject/internal/power"
)

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    Task
		wantErr bool
	}{
		{"valid", Task{ID: 1, WCET: 10, Actual: 5}, false},
		{"full usage", Task{ID: 1, WCET: 10, Actual: 10}, false},
		{"zero wcet", Task{ID: 1, WCET: 0, Actual: 0}, true},
		{"zero actual", Task{ID: 1, WCET: 10, Actual: 0}, true},
		{"actual above wcet", Task{ID: 1, WCET: 10, Actual: 11}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.task.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "STATIC" || CycleConserving.String() != "CC-EDF" || Oracle.String() != "ORACLE" {
		t.Error("policy names changed")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy String")
	}
}

func TestRunAllPoliciesEqualAtWorstCase(t *testing.T) {
	// Actual == WCET: no slack, all three policies coincide.
	tasks := []Task{{ID: 1, WCET: 3, Actual: 3}, {ID: 2, WCET: 5, Actual: 5}}
	var energies []float64
	for _, pol := range []Policy{Static, CycleConserving, Oracle} {
		tr, err := Run(tasks, 10, power.Cubic(), 1, pol)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		energies = append(energies, tr.Energy)
		if math.Abs(tr.Finish-10) > 1e-9 {
			t.Errorf("%v: finish = %v, want 10", pol, tr.Finish)
		}
	}
	for i := 1; i < len(energies); i++ {
		if math.Abs(energies[i]-energies[0]) > 1e-9 {
			t.Errorf("energies differ at worst case: %v", energies)
		}
	}
	// Hand value: speed 0.8, E = 0.8²·8 = 5.12.
	if math.Abs(energies[0]-5.12) > 1e-9 {
		t.Errorf("energy = %v, want 5.12", energies[0])
	}
}

func TestRunCycleConservingSavesEnergy(t *testing.T) {
	// Tasks use half their budgets: CC must land between Static and Oracle.
	tasks := []Task{
		{ID: 1, WCET: 4, Actual: 2},
		{ID: 2, WCET: 4, Actual: 2},
	}
	st, err := Run(tasks, 10, power.Cubic(), 1, Static)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := Run(tasks, 10, power.Cubic(), 1, CycleConserving)
	if err != nil {
		t.Fatal(err)
	}
	or, err := Run(tasks, 10, power.Cubic(), 1, Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !(or.Energy < cc.Energy && cc.Energy < st.Energy) {
		t.Errorf("ordering violated: oracle %v, cc %v, static %v", or.Energy, cc.Energy, st.Energy)
	}
	// Static: s = 0.8, E = 0.64·4 = 2.56. Oracle: s = 0.4, E = 0.16·4 = 0.64.
	if math.Abs(st.Energy-2.56) > 1e-9 || math.Abs(or.Energy-0.64) > 1e-9 {
		t.Errorf("static %v (want 2.56), oracle %v (want 0.64)", st.Energy, or.Energy)
	}
	// CC: task 1 at 0.8 (2 cycles, E = 0.64·2), then remWCET 4 over the
	// remaining 7.5 → s₂ = 0.5333…, E = s₂²·2.
	s2 := 4.0 / 7.5
	want := math.Pow(0.8, 2)*2 + math.Pow(s2, 2)*2
	if math.Abs(cc.Energy-want) > 1e-9 {
		t.Errorf("cc energy = %v, want %v", cc.Energy, want)
	}
}

func TestRunSpeedsNonIncreasingUnderCC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		var tasks []Task
		var wcet int64
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			w := 1 + int64(rng.Intn(20))
			a := 1 + rng.Int63n(w)
			tasks = append(tasks, Task{ID: i, WCET: w, Actual: a})
			wcet += w
		}
		d := float64(wcet) * (1 + rng.Float64())
		tr, err := Run(tasks, d, power.Cubic(), 1, CycleConserving)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(tr.Steps); i++ {
			if tr.Steps[i].Speed > tr.Steps[i-1].Speed+1e-9 {
				t.Errorf("trial %d: CC speed increased: %+v", trial, tr.Steps)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	good := []Task{{ID: 1, WCET: 5, Actual: 5}}
	if _, err := Run(good, 0, power.Cubic(), 1, Static); err == nil {
		t.Error("zero frame accepted")
	}
	if _, err := Run(good, 4, power.Cubic(), 1, Static); err == nil {
		t.Error("over-capacity worst case accepted")
	}
	if _, err := Run([]Task{{ID: 1, WCET: 5, Actual: 9}}, 10, power.Cubic(), 1, Static); err == nil {
		t.Error("actual > WCET accepted")
	}
	if _, err := Run(good, 10, power.Polynomial{}, 1, Static); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Run(good, 10, power.Cubic(), 1, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Property: oracle ≤ CC ≤ static energy, every policy meets the frame.
func TestQuickPolicyOrdering(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nn%10)
		var tasks []Task
		var wcet int64
		for i := 0; i < n; i++ {
			w := 1 + int64(rng.Intn(30))
			tasks = append(tasks, Task{ID: i, WCET: w, Actual: 1 + rng.Int63n(w)})
			wcet += w
		}
		d := float64(wcet) * (1 + 2*rng.Float64())
		var e [3]float64
		for i, pol := range []Policy{Oracle, CycleConserving, Static} {
			tr, err := Run(tasks, d, power.Cubic(), 1, pol)
			if err != nil || tr.Finish > d*(1+1e-9) {
				return false
			}
			e[i] = tr.Energy
		}
		return e[0] <= e[1]+1e-9 && e[1] <= e[2]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
