// Package reclaim implements run-time slack reclamation for frame-based
// schedules: tasks usually finish below their worst-case execution cycles,
// and the unspent budget can be reinvested as lower speed for the tasks
// still pending — the cycle-conserving DVS idea (Pillai & Shin; Zhu,
// Melhem & Childers, cited by the paper family as the online reclamation
// line).
//
// The package executes an admitted task sequence within one frame under
// three policies:
//
//   - Static: the offline speed W_wcet/D for the whole frame, slack
//     wasted as idle time (the admission-time plan, unchanged);
//   - CycleConserving: before each task starts, re-divide the remaining
//     time by the remaining worst-case work — speeds only ever decrease as
//     slack accrues;
//   - Oracle: the clairvoyant lower bound that knows actual cycles
//     up front and runs at ΣActual/D throughout.
//
// All three are deadline-safe by construction: they never budget less
// than the worst case for unfinished work.
package reclaim

import (
	"fmt"
	"math"

	"dvsreject/internal/power"
)

// Step is one executed task in the frame trace.
type Step struct {
	TaskID int
	Start  float64
	Speed  float64
	Time   float64 // execution time at Speed
	Energy float64
}

// Trace is a frame execution under one policy.
type Trace struct {
	Steps  []Step
	Energy float64 // Σ step energies (dynamic only)
	Finish float64 // completion time of the last task, ≤ D
}

// Task pairs the worst-case budget with what the task actually used.
type Task struct {
	ID     int
	WCET   int64 // worst-case execution cycles, > 0
	Actual int64 // actual cycles, 0 < Actual ≤ WCET
}

// Validate reports whether the pair is legal.
func (t Task) Validate() error {
	if t.WCET <= 0 {
		return fmt.Errorf("reclaim: task %d: WCET = %d, want > 0", t.ID, t.WCET)
	}
	if t.Actual <= 0 || t.Actual > t.WCET {
		return fmt.Errorf("reclaim: task %d: actual = %d, want in (0, %d]", t.ID, t.Actual, t.WCET)
	}
	return nil
}

// Policy selects the speed for the next task given the remaining
// worst-case work and remaining time.
type Policy int

const (
	// Static runs the whole frame at the admission-time speed ΣWCET/D.
	Static Policy = iota
	// CycleConserving re-plans speed = remaining WCET / remaining time
	// before each task.
	CycleConserving
	// Oracle knows the actual cycles and runs at ΣActual/D.
	Oracle
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Static:
		return "STATIC"
	case CycleConserving:
		return "CC-EDF"
	case Oracle:
		return "ORACLE"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Run executes the tasks in the given order within a frame of length d on
// an ideal leakage-free processor with model m and top speed smax, under
// the policy. It errors when even the worst case cannot fit.
func Run(tasks []Task, d float64, m power.Polynomial, smax float64, pol Policy) (Trace, error) {
	if err := m.Validate(); err != nil {
		return Trace{}, err
	}
	if d <= 0 || math.IsNaN(d) {
		return Trace{}, fmt.Errorf("reclaim: frame length = %v, want > 0", d)
	}
	var wcet, actual int64
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return Trace{}, err
		}
		wcet += t.WCET
		actual += t.Actual
	}
	if float64(wcet) > smax*d*(1+1e-9) {
		return Trace{}, fmt.Errorf("reclaim: worst-case workload %d exceeds capacity %g", wcet, smax*d)
	}

	var tr Trace
	now := 0.0
	remWCET := wcet
	for _, t := range tasks {
		var s float64
		switch pol {
		case Static:
			s = float64(wcet) / d
		case CycleConserving:
			s = float64(remWCET) / (d - now)
		case Oracle:
			s = float64(actual) / d
		default:
			return Trace{}, fmt.Errorf("reclaim: unknown policy %d", int(pol))
		}
		if s <= 0 {
			return Trace{}, fmt.Errorf("reclaim: non-positive speed for task %d", t.ID)
		}
		s = math.Min(math.Max(s, 0), smax)
		exec := float64(t.Actual) / s
		step := Step{
			TaskID: t.ID,
			Start:  now,
			Speed:  s,
			Time:   exec,
			Energy: m.Dynamic(s) * exec,
		}
		tr.Steps = append(tr.Steps, step)
		tr.Energy += step.Energy
		now += exec
		remWCET -= t.WCET
	}
	tr.Finish = now
	if now > d*(1+1e-9) {
		return Trace{}, fmt.Errorf("reclaim: frame overrun: finish %g > D %g", now, d)
	}
	return tr, nil
}
