package reclaim

import (
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

// replayProfile converts a frame trace into the piecewise-constant speed
// profile the EDF oracle understands. A top-speed tail segment past the
// last step absorbs floating-point cycle residue so the replay cannot
// manufacture a spurious miss; a genuinely late schedule still misses,
// because the miss check compares completion times against the deadline.
func replayProfile(tr Trace, d, smax float64) speed.Profile {
	var pr speed.Profile
	for _, s := range tr.Steps {
		pr = append(pr, speed.Segment{Start: s.Start, End: s.Start + s.Time, Speed: s.Speed})
	}
	end := 0.0
	if len(pr) > 0 {
		end = pr[len(pr)-1].End
	}
	return append(pr, speed.Segment{Start: end, End: d + 1, Speed: smax})
}

// TestReclaimEDFOracleReplay is the independent safety check for every
// reclamation policy: random frames (including tight fits with zero
// headroom) are executed under each policy, the resulting speed trace is
// replayed through the preemptive EDF simulator, and every actual job must
// complete by the frame deadline. On top of the replay it asserts the
// energy ordering the policies promise: reclaimed (CC) never exceeds the
// static baseline, and the clairvoyant oracle never exceeds CC.
func TestReclaimEDFOracleReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		tasks := make([]Task, 0, n)
		var wcet int64
		for i := 0; i < n; i++ {
			w := 1 + int64(rng.Intn(40))
			tasks = append(tasks, Task{ID: i + 1, WCET: w, Actual: 1 + rng.Int63n(w)})
			wcet += w
		}
		smax := 0.5 + 1.5*rng.Float64()
		slack := 1 + 3*rng.Float64()
		if trial%7 == 0 {
			slack = 1 // tight fit: ΣWCET exactly fills smax·d
		}
		d := float64(wcet) / smax * slack

		energy := make(map[Policy]float64)
		for _, pol := range []Policy{Static, CycleConserving, Oracle} {
			tr, err := Run(tasks, d, power.Cubic(), smax, pol)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, pol, err)
			}
			if tr.Finish > d*(1+1e-9) {
				t.Fatalf("trial %d %v: finish %v past frame %v", trial, pol, tr.Finish, d)
			}
			energy[pol] = tr.Energy

			jobs := make([]edf.Job, len(tasks))
			for i, tk := range tasks {
				jobs[i] = edf.Job{TaskID: tk.ID, Release: 0, Deadline: d, Cycles: float64(tk.Actual)}
			}
			res, err := edf.Simulate(jobs, replayProfile(tr, d, smax))
			if err != nil {
				t.Fatalf("trial %d %v: replay: %v", trial, pol, err)
			}
			if res.Misses != 0 {
				t.Fatalf("trial %d %v: EDF replay missed %d deadlines", trial, pol, res.Misses)
			}
		}
		if energy[CycleConserving] > energy[Static]*(1+1e-9) {
			t.Fatalf("trial %d: reclaimed energy %v above static baseline %v",
				trial, energy[CycleConserving], energy[Static])
		}
		if energy[Oracle] > energy[CycleConserving]*(1+1e-9) {
			t.Fatalf("trial %d: oracle energy %v above CC %v",
				trial, energy[Oracle], energy[CycleConserving])
		}
	}
}

// TestReclaimEmptySlack pins the empty-slack edge: when every task uses
// its full budget there is nothing to reclaim, and cycle-conserving must
// degenerate to the static plan — same per-step speeds, times and
// energies, same finish.
func TestReclaimEmptySlack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		tasks := make([]Task, 0, n)
		var wcet int64
		for i := 0; i < n; i++ {
			w := 1 + int64(rng.Intn(25))
			tasks = append(tasks, Task{ID: i + 1, WCET: w, Actual: w})
			wcet += w
		}
		smax := 0.5 + rng.Float64()
		d := float64(wcet) / smax * (1 + rng.Float64())
		st, err := Run(tasks, d, power.Cubic(), smax, Static)
		if err != nil {
			t.Fatalf("trial %d: static: %v", trial, err)
		}
		cc, err := Run(tasks, d, power.Cubic(), smax, CycleConserving)
		if err != nil {
			t.Fatalf("trial %d: cc: %v", trial, err)
		}
		if len(st.Steps) != len(cc.Steps) {
			t.Fatalf("trial %d: step counts differ: %d vs %d", trial, len(st.Steps), len(cc.Steps))
		}
		for i := range st.Steps {
			a, b := st.Steps[i], cc.Steps[i]
			if !close(a.Speed, b.Speed) || !close(a.Time, b.Time) || !close(a.Energy, b.Energy) {
				t.Fatalf("trial %d step %d: static %+v, cc %+v", trial, i, a, b)
			}
		}
		if !close(st.Energy, cc.Energy) || !close(st.Finish, cc.Finish) {
			t.Fatalf("trial %d: static E=%v F=%v, cc E=%v F=%v",
				trial, st.Energy, st.Finish, cc.Energy, cc.Finish)
		}
	}
}
