package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvsreject/internal/core"
)

// wireInstance builds a WireRequest from the same generator the engine
// tests use, so HTTP results can be checked against direct solves.
func wireInstance(seed int64, n int) WireRequest {
	set := mustSet(seed, n)
	w := WireRequest{Deadline: set.Deadline, SMax: 1, Solver: "DP"}
	for _, tk := range set.Tasks {
		w.Tasks = append(w.Tasks, WireTask{ID: tk.ID, Cycles: tk.Cycles, Penalty: tk.Penalty, Rho: tk.Rho})
	}
	return w
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHandlerSolve(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	wreq := wireInstance(20, 12)
	resp, body := postJSON(t, srv.URL+"/solve", wreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got WireResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	req, err := wreq.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := directSolve(t, req, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) ||
		math.Float64bits(got.Energy) != math.Float64bits(want.Energy) ||
		math.Float64bits(got.Penalty) != math.Float64bits(want.Penalty) {
		t.Errorf("wire solution diverged: got %+v want %+v", got, want)
	}
	if len(got.Accepted) != len(want.Accepted) || len(got.Rejected) != len(want.Rejected) {
		t.Errorf("admission sets diverged: got %+v want %+v", got, want)
	}
	if got.CacheHit {
		t.Error("first solve reported cache_hit")
	}

	resp2, body2 := postJSON(t, srv.URL+"/solve", wreq)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp2.StatusCode)
	}
	var warm WireResponse
	if err := json.Unmarshal(body2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("second identical solve did not report cache_hit")
	}
	if math.Float64bits(warm.Cost) != math.Float64bits(want.Cost) {
		t.Error("cached wire solution diverged")
	}
}

func TestHandlerErrors(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Unknown field.
	resp, err = http.Post(srv.URL+"/solve", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// Unknown power model.
	w := wireInstance(21, 5)
	w.Model = "pentium"
	resp, _ = postJSON(t, srv.URL+"/solve", w)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400", resp.StatusCode)
	}

	// Discrete without xscale.
	w = wireInstance(21, 5)
	w.Discrete = true
	resp, _ = postJSON(t, srv.URL+"/solve", w)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("discrete cubic: status %d, want 400", resp.StatusCode)
	}

	// Unknown solver: reaches the engine, 422.
	w = wireInstance(21, 5)
	w.Solver = "NOPE"
	resp, _ = postJSON(t, srv.URL+"/solve", w)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown solver: status %d, want 422", resp.StatusCode)
	}

	// Invalid instance (no tasks is fine, but smax = 0 is not).
	w = wireInstance(21, 5)
	w.SMax = 0
	resp, _ = postJSON(t, srv.URL+"/solve", w)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid processor: status %d, want 422", resp.StatusCode)
	}

	// Wrong method.
	getResp, err := http.Get(srv.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", getResp.StatusCode)
	}
}

func TestHandlerBatch(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	a := wireInstance(22, 10)
	bad := wireInstance(23, 10)
	bad.Model = "pentium"
	b := wireInstance(24, 10)
	b.Model = "xscale"
	b.Discrete = true

	resp, body := postJSON(t, srv.URL+"/batch", WireBatch{Requests: []WireRequest{a, bad, a, b}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out WireBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 4 {
		t.Fatalf("got %d responses, want 4", len(out.Responses))
	}
	if out.Responses[0].Error != "" || out.Responses[2].Error != "" || out.Responses[3].Error != "" {
		t.Errorf("valid batch items errored: %+v", out.Responses)
	}
	if out.Responses[1].Error == "" {
		t.Error("invalid batch item did not error")
	}
	if !out.Responses[2].Coalesced {
		t.Error("duplicate batch item not coalesced")
	}
	if math.Float64bits(out.Responses[0].Cost) != math.Float64bits(out.Responses[2].Cost) {
		t.Error("duplicate batch items disagree")
	}
}

func TestHandlerStatsAndHealth(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	postJSON(t, srv.URL+"/solve", wireInstance(25, 8))
	postJSON(t, srv.URL+"/solve", wireInstance(25, 8))

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 2 || st.Cache.Hits != 1 {
		t.Errorf("stats = %+v, want 2 requests / 1 hit", st)
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", h.StatusCode)
	}
}

func TestWireRequestEsw(t *testing.T) {
	w := wireInstance(26, 5)
	esw := 0.4
	w.Esw = &esw
	req, err := w.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if !req.Proc.DormantEnable || req.Proc.Esw != 0.4 {
		t.Errorf("esw pointer not honoured: %+v", req.Proc)
	}
	w.Esw = nil
	req, err = w.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Proc.DormantEnable {
		t.Error("omitted esw enabled the dormant mode")
	}
}

// TestHandlerSolveHetero: a wire request with a processor vector routes
// to the heterogeneous tier and the response carries the HeteroInfo
// extension with a certified gap.
func TestHandlerSolveHetero(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	wreq := wireInstance(21, 10)
	wreq.SMax = 0
	wreq.Procs = []WireProc{{SMax: 1}, {SMax: 0.5}}
	resp, body := postJSON(t, srv.URL+"/solve", wreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got WireResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Hetero == nil {
		t.Fatal("hetero wire response missing its extension")
	}
	if len(got.Hetero.PerProc) != 2 || len(got.Hetero.Energies) != 2 {
		t.Fatalf("hetero extension shape %d/%d procs, want 2/2",
			len(got.Hetero.PerProc), len(got.Hetero.Energies))
	}
	if got.Hetero.Gap < 0 {
		t.Errorf("convex vector reported uncertified gap %g", got.Hetero.Gap)
	}
	if math.Abs(got.Cost-(got.Energy+got.Penalty)) > 1e-9*(1+got.Cost) {
		t.Errorf("cost %g does not decompose into energy %g + penalty %g", got.Cost, got.Energy, got.Penalty)
	}
	if e.Stats().HeteroSolves != 1 {
		t.Errorf("HeteroSolves = %d, want 1", e.Stats().HeteroSolves)
	}

	// A bad per-processor model is a 400 naming the offending slot.
	wreq.Procs[1].Model = "warp"
	resp, body = postJSON(t, srv.URL+"/solve", wreq)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad proc model: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "procs[1]") {
		t.Errorf("error %s does not name the offending processor", body)
	}
}
