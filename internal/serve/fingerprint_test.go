package serve

import (
	"math"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

func fpReq(tasks []task.Task) Request {
	return Request{
		Tasks:  task.Set{Deadline: 100, Tasks: tasks},
		Proc:   speed.Proc{Model: power.Cubic(), SMax: 1},
		Solver: "DP",
	}
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	a := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1}, {ID: 2, Cycles: 20, Penalty: 2}})
	b := fpReq([]task.Task{{ID: 2, Cycles: 20, Penalty: 2}, {ID: 1, Cycles: 10, Penalty: 1}})
	if Fingerprint(a, 0) != Fingerprint(b, 0) {
		t.Error("permuted task sets should share a fingerprint slot")
	}
	if requestsEqual(a, b) {
		t.Error("permuted task sets must not compare bit-equal (summation order matters)")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1}, {ID: 2, Cycles: 20, Penalty: 2}})
	fp := Fingerprint(base, 0)

	mutations := map[string]func(*Request){
		"solver":   func(r *Request) { r.Solver = "GREEDY" },
		"deadline": func(r *Request) { r.Tasks.Deadline = 101 },
		"cycles":   func(r *Request) { r.Tasks.Tasks[0].Cycles = 11 },
		"penalty":  func(r *Request) { r.Tasks.Tasks[0].Penalty = 1.5 },
		"rho":      func(r *Request) { r.Tasks.Tasks[0].Rho = 2 },
		"id":       func(r *Request) { r.Tasks.Tasks[0].ID = 3 },
		"smax":     func(r *Request) { r.Proc.SMax = 2 },
		"smin":     func(r *Request) { r.Proc.SMin = 0.1 },
		"alpha":    func(r *Request) { r.Proc.Model.Alpha = 2 },
		"pind":     func(r *Request) { r.Proc.Model.Pind = 0.1 },
		"dormant":  func(r *Request) { r.Proc.DormantEnable = true },
		"esw":      func(r *Request) { r.Proc.Esw = 1 },
		"levels":   func(r *Request) { r.Proc.Levels = power.LevelSet{0.5, 1} },
	}
	for name, mutate := range mutations {
		r := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1}, {ID: 2, Cycles: 20, Penalty: 2}})
		mutate(&r)
		if Fingerprint(r, 0) == fp {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
		if requestsEqual(base, r) {
			t.Errorf("%s mutation still compares equal", name)
		}
	}
}

func TestFingerprintTimeoutIgnored(t *testing.T) {
	a := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1}})
	b := a
	b.Timeout = 1e9
	if Fingerprint(a, 0) != Fingerprint(b, 0) {
		t.Error("timeout must not affect the fingerprint")
	}
	if !requestsEqual(a, b) {
		t.Error("timeout must not affect request equality")
	}
}

func TestFingerprintQuantum(t *testing.T) {
	a := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1.0}})
	b := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 1.0 + 1e-12}})
	if Fingerprint(a, 0) == Fingerprint(b, 0) {
		t.Error("exact-bits fingerprints of near-equal penalties should differ")
	}
	if Fingerprint(a, 1e-6) != Fingerprint(b, 1e-6) {
		t.Error("quantized fingerprints of near-equal penalties should collide")
	}
	if requestsEqual(a, b) {
		t.Error("near-equal penalties must never compare bit-equal")
	}
}

func TestFingerprintNegativeZero(t *testing.T) {
	a := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: 0}})
	b := fpReq([]task.Task{{ID: 1, Cycles: 10, Penalty: math.Copysign(0, -1)}})
	if requestsEqual(a, b) {
		t.Error("-0.0 and +0.0 must not compare bit-equal")
	}
}

func TestSortedTasksNoCopyWhenSorted(t *testing.T) {
	ts := []task.Task{{ID: 1}, {ID: 2}, {ID: 3}}
	if got := sortedTasks(ts); &got[0] != &ts[0] {
		t.Error("already-sorted input should be returned without copying")
	}
	rev := []task.Task{{ID: 3}, {ID: 1}, {ID: 2}}
	got := sortedTasks(rev)
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Errorf("sortedTasks returned %v", got)
	}
	if rev[0].ID != 3 {
		t.Error("sortedTasks mutated its input")
	}
}
