package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"slices"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// fingerprintVersion is folded into every digest so a future change to the
// encoding can never alias keys produced by an older layout. Version 2
// added the FastPow flag: a FastPow solve is a distinct cached artifact
// from the exact solve of the same instance. Version 3 added the
// heterogeneous processor vector: a profile-vector solve can never alias
// a single-processor key.
const fingerprintVersion = 3

// Fingerprint returns the canonical cache key of a request: a sha256 digest
// over the solver name, the processor description and the task set with
// tasks sorted by ID. Sorting makes the key order-insensitive, so permuted
// task sets land in the same cache slot; the engine then verifies exact
// equality (including order) before reusing a stored solution, because
// float summation order is observable in the solved Penalty.
//
// quantum > 0 buckets every float to the nearest multiple before hashing —
// near-identical instances then share a slot and the exact-match check
// decides whether the stored solution may be served. quantum = 0 hashes
// exact bit patterns.
//
// The digest is returned as a raw 32-byte string usable as a map key.
func Fingerprint(req Request, quantum float64) string {
	// One exact-size allocation: the encoding is fixed-width per field
	// (8 bytes per float/int, 1 byte per bool), so the length is known up
	// front. This is the hot path of every cache hit.
	procSize := 7*8 + 1 + 8*len(req.Proc.Levels)
	for _, p := range req.Procs {
		procSize += 7*8 + 1 + 8*len(p.Levels)
	}
	size := 8 + 8 + len(req.Solver) + 1 + // version, solver, fastpow
		8 + procSize + // vector length, processor(s)
		8 + 8 + 32*len(req.Tasks.Tasks) // deadline, count, tasks
	buf := make([]byte, 0, size)

	buf = binary.LittleEndian.AppendUint64(buf, fingerprintVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(req.Solver)))
	buf = append(buf, req.Solver...)
	if req.FastPow {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	buf = appendProcs(buf, req, quantum)

	buf = appendFloat(buf, req.Tasks.Deadline, quantum)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(req.Tasks.Tasks)))
	for _, t := range sortedTasks(req.Tasks.Tasks) {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Cycles))
		buf = appendFloat(buf, t.Penalty, quantum)
		buf = appendFloat(buf, t.Rho, quantum)
	}

	sum := sha256.Sum256(buf)
	return string(sum[:])
}

// procKey is the exact-bits digest of the processor description alone —
// the whole profile vector for heterogeneous requests. The batch planner
// uses it to build one ProcProfile per distinct single processor.
func procKey(req Request) string {
	var buf []byte
	buf = appendProcs(buf, req, 0)
	sum := sha256.Sum256(buf)
	return string(sum[:])
}

// appendProcs encodes the request's processor description: a vector-length
// prefix (0 for the single-processor form) followed by each processor.
// The prefix keeps an M=1 heterogeneous request from aliasing the
// single-processor encoding of the same profile.
func appendProcs(buf []byte, req Request, quantum float64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(req.Procs)))
	if len(req.Procs) == 0 {
		return appendProc(buf, req.Proc, quantum)
	}
	for _, p := range req.Procs {
		buf = appendProc(buf, p, quantum)
	}
	return buf
}

// appendProc encodes one processor description (model, speed range,
// levels, dormant mode) into buf.
func appendProc(buf []byte, p speed.Proc, quantum float64) []byte {
	buf = appendFloat(buf, p.Model.Pind, quantum)
	buf = appendFloat(buf, p.Model.Coeff, quantum)
	buf = appendFloat(buf, p.Model.Alpha, quantum)
	buf = appendFloat(buf, p.SMin, quantum)
	buf = appendFloat(buf, p.SMax, quantum)
	if p.DormantEnable {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendFloat(buf, p.Esw, quantum)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(p.Levels)))
	for _, l := range p.Levels {
		buf = appendFloat(buf, l, quantum)
	}
	return buf
}

// appendFloat encodes x's bit pattern, optionally bucketed to the nearest
// multiple of quantum. Quantization only widens cache slots; the exact-match
// verification keeps results bit-faithful.
func appendFloat(buf []byte, x, quantum float64) []byte {
	if quantum > 0 {
		x = math.Round(x/quantum) * quantum
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

// sortedTasks returns the tasks in ascending ID order (stable on duplicate
// IDs, which validation later rejects anyway). The common already-sorted
// case returns the input slice without copying.
func sortedTasks(ts []task.Task) []task.Task {
	sorted := true
	for i := 1; i < len(ts); i++ {
		if ts[i].ID < ts[i-1].ID {
			sorted = false
			break
		}
	}
	if sorted {
		return ts
	}
	c := slices.Clone(ts)
	slices.SortStableFunc(c, func(a, b task.Task) int { return a.ID - b.ID })
	return c
}

// requestsEqual reports bit-exact equality of two requests, including task
// order. This is the gate between "same cache slot" and "may reuse the
// stored solution": only a bit-identical input is guaranteed a bit-identical
// output.
func requestsEqual(a, b Request) bool {
	bits := math.Float64bits
	if a.Solver != b.Solver || a.FastPow != b.FastPow ||
		bits(a.Tasks.Deadline) != bits(b.Tasks.Deadline) ||
		len(a.Tasks.Tasks) != len(b.Tasks.Tasks) {
		return false
	}
	for i, t := range a.Tasks.Tasks {
		u := b.Tasks.Tasks[i]
		if t.ID != u.ID || t.Cycles != u.Cycles ||
			bits(t.Penalty) != bits(u.Penalty) || bits(t.Rho) != bits(u.Rho) {
			return false
		}
	}
	if !procBitsEqual(a.Proc, b.Proc) || len(a.Procs) != len(b.Procs) {
		return false
	}
	for i := range a.Procs {
		if !procBitsEqual(a.Procs[i], b.Procs[i]) {
			return false
		}
	}
	return true
}

// procBitsEqual is the bit-exact processor comparison behind requestsEqual.
func procBitsEqual(p, q speed.Proc) bool {
	bits := math.Float64bits
	if bits(p.Model.Pind) != bits(q.Model.Pind) ||
		bits(p.Model.Coeff) != bits(q.Model.Coeff) ||
		bits(p.Model.Alpha) != bits(q.Model.Alpha) ||
		bits(p.SMin) != bits(q.SMin) || bits(p.SMax) != bits(q.SMax) ||
		p.DormantEnable != q.DormantEnable || bits(p.Esw) != bits(q.Esw) ||
		len(p.Levels) != len(q.Levels) {
		return false
	}
	for i := range p.Levels {
		if bits(p.Levels[i]) != bits(q.Levels[i]) {
			return false
		}
	}
	return true
}
