// The delta path: when a request misses the fingerprint cache, a second,
// structural index can still locate a solved near-duplicate — a parent
// whose task prefix matches the newcomer bit-for-bit — and warm-start the
// DP from its checkpointed row state instead of cold-solving.
//
// The index key is a sorted-prefix hash chain: a rolling 64-bit hash of
// the (cycles, penalty) bit patterns of tasks 1..r, seeded with the DP
// grid capacity. A parent registers its chain value at every checkpointed
// row; a miss probes its own chain from the full length downward and
// warm-starts from the deepest parent found. Hash collisions are
// harmless: core.DP.SolveFrom re-verifies the prefix exactly and either
// restarts earlier or declines, so the index is purely an accelerator —
// served solutions stay bit-identical to cold solves.
package serve

import (
	"container/list"
	"math"
	"sync"

	"dvsreject/internal/core"
	"dvsreject/internal/task"
)

const (
	defaultDeltaParents = 16
	defaultDeltaBytes   = 64 << 20
	// jumboTasks is the request size past which the engine purges the
	// core solver pools after solving: one n≥10⁴ request grows the pooled
	// DP rows and eval contexts to megabytes, and without the purge every
	// later small solve drags them through GC cycles.
	jumboTasks = 10000
)

// chainKey addresses one (grid capacity, prefix length, prefix hash)
// point of the similarity index.
type chainKey struct {
	cap int64
	row int
	h   uint64
}

// deltaParent is one registered DPState with the keys it is filed under.
type deltaParent struct {
	st    *core.DPState
	keys  []chainKey
	elem  *list.Element
	bytes int64
}

// deltaIndex is the LRU of warm parents. Lookups share parents across
// goroutines — SolveFrom with evolve=false never writes the state — so
// the mutex guards only the map and recency list.
type deltaIndex struct {
	mu         sync.Mutex
	maxParents int
	maxBytes   int64
	bytes      int64
	lru        *list.List // *deltaParent; front = most recent
	byKey      map[chainKey]*deltaParent
}

func newDeltaIndex(maxParents int, maxBytes int64) *deltaIndex {
	if maxParents <= 0 {
		maxParents = defaultDeltaParents
	}
	if maxBytes <= 0 {
		maxBytes = defaultDeltaBytes
	}
	return &deltaIndex{
		maxParents: maxParents,
		maxBytes:   maxBytes,
		lru:        list.New(),
		byKey:      make(map[chainKey]*deltaParent),
	}
}

// deltaMix folds one 64-bit word into the rolling hash: FNV-style prime
// multiply followed by an xor-shift finisher so consecutive rows spread
// across the key map even when the folded words differ in few bits.
func deltaMix(h, x uint64) uint64 {
	h ^= x
	h *= 1099511628211
	h ^= h >> 29
	return h
}

// deltaChain fills buf with the prefix hash chain of the task list:
// buf[r-1] covers tasks[0:r]. Only the fields that steer DP rows
// participate — cycles and penalty bit patterns, plus the grid capacity
// as the seed. IDs, the power model and FastPow are excluded on purpose:
// row state is independent of them (see core.DPState).
func deltaChain(buf []uint64, tasks []task.Task, cap64 int64) []uint64 {
	h := deltaMix(14695981039346656037, uint64(cap64))
	buf = buf[:0]
	for _, t := range tasks {
		h = deltaMix(h, uint64(t.Cycles))
		h = deltaMix(h, math.Float64bits(t.Penalty))
		buf = append(buf, h)
	}
	return buf
}

// lookup returns the warm parent with the deepest registered prefix of
// chain, or nil. It probes every row in the window (n-stride, n] — where
// an append/remove/modify-tail parent's final row lands — then walks the
// checkpoint grid downward a bounded number of steps.
func (di *deltaIndex) lookup(cap64 int64, chain []uint64, stride int) *core.DPState {
	if di == nil || len(chain) == 0 {
		return nil
	}
	n := len(chain)
	probe := func(row int) *core.DPState {
		di.mu.Lock()
		defer di.mu.Unlock()
		p, ok := di.byKey[chainKey{cap: cap64, row: row, h: chain[row-1]}]
		if !ok {
			return nil
		}
		di.lru.MoveToFront(p.elem)
		return p.st
	}
	lo := n - stride
	if lo < 0 {
		lo = 0
	}
	for row := n; row > lo; row-- {
		if st := probe(row); st != nil {
			return st
		}
	}
	// Deeper mutations: only grid rows are registered, so step by stride.
	row := lo / stride * stride
	for steps := 0; row >= 1 && steps < 16; row, steps = row-stride, steps+1 {
		if st := probe(row); st != nil {
			return st
		}
	}
	return nil
}

// register files a freshly recorded state under its checkpoint rows'
// chain values, evicting least-recently-used parents past the budgets.
func (di *deltaIndex) register(st *core.DPState, cap64 int64, chain []uint64) {
	if di == nil || !st.Valid() {
		return
	}
	rows := st.AppendSnapshotRows(nil)
	p := &deltaParent{st: st, bytes: st.MemoryBytes()}
	for _, r := range rows {
		if r < 1 || r > len(chain) {
			continue
		}
		p.keys = append(p.keys, chainKey{cap: cap64, row: r, h: chain[r-1]})
	}
	if len(p.keys) == 0 {
		return
	}

	di.mu.Lock()
	defer di.mu.Unlock()
	p.elem = di.lru.PushFront(p)
	di.bytes += p.bytes
	for _, k := range p.keys {
		di.byKey[k] = p
	}
	for (di.lru.Len() > di.maxParents || di.bytes > di.maxBytes) && di.lru.Len() > 1 {
		back := di.lru.Back()
		old := back.Value.(*deltaParent)
		di.lru.Remove(back)
		di.bytes -= old.bytes
		for _, k := range old.keys {
			if di.byKey[k] == old {
				delete(di.byKey, k)
			}
		}
	}
}

// clear empties the index (Engine.Reset — benchmarks measuring cold
// solves must not be warm-started behind their back).
func (di *deltaIndex) clear() {
	if di == nil {
		return
	}
	di.mu.Lock()
	defer di.mu.Unlock()
	di.lru.Init()
	di.byKey = make(map[chainKey]*deltaParent)
	di.bytes = 0
}

// parents returns the resident parent count.
func (di *deltaIndex) parents() int {
	if di == nil {
		return 0
	}
	di.mu.Lock()
	defer di.mu.Unlock()
	return di.lru.Len()
}
