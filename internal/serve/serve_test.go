package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// mustSet draws a deterministic contested instance.
func mustSet(seed int64, n int) task.Set {
	set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
		N:       n,
		Load:    1.2,
		Penalty: gen.PenaltyModel(seed % 3),
	})
	if err != nil {
		panic(err)
	}
	return set
}

func testSet(t *testing.T, seed int64, n int) task.Set {
	t.Helper()
	return mustSet(seed, n)
}

// directSolve is the reference the engine must reproduce bit for bit.
func directSolve(t *testing.T, req Request, spec core.SolverSpec) (core.Solution, error) {
	t.Helper()
	name := req.Solver
	if name == "" {
		name = "DP"
	}
	s, err := core.NewSolver(name, spec)
	if err != nil {
		return core.Solution{}, err
	}
	return s.Solve(core.Instance{Tasks: req.Tasks, Proc: req.Proc})
}

// solutionsBitEqual defers to the shared verification library's
// bit-identity oracle (the serve contract: a cache hit or coalesced
// response is indistinguishable from a cold solve).
func solutionsBitEqual(a, b core.Solution) bool {
	return verify.BitIdenticalSolutions(a, b) == nil
}

var testProcs = map[string]speed.Proc{
	"ideal":    {Model: power.Cubic(), SMax: 1},
	"xscale":   {Model: power.XScale(), SMax: 1},
	"discrete": {Model: power.XScale(), SMax: 1, Levels: power.XScaleLevels()},
	"dormant":  {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4},
}

func TestSolveMatchesDirectAndCaches(t *testing.T) {
	for pname, proc := range testProcs {
		t.Run(pname, func(t *testing.T) {
			e := New(Config{})
			for _, solver := range []string{"DP", "GREEDY", "S-GREEDY", "APPROX", "OPT"} {
				for seed := int64(0); seed < 3; seed++ {
					req := Request{Tasks: testSet(t, seed, 12), Proc: proc, Solver: solver}
					want, wantErr := directSolve(t, req, core.SolverSpec{})

					cold := e.Solve(context.Background(), req)
					if (cold.Err == nil) != (wantErr == nil) {
						t.Fatalf("%s seed %d: error divergence: %v vs %v", solver, seed, cold.Err, wantErr)
					}
					if wantErr != nil {
						continue
					}
					if cold.CacheHit {
						t.Errorf("%s seed %d: first solve reported a cache hit", solver, seed)
					}
					if !solutionsBitEqual(cold.Solution, want) {
						t.Errorf("%s seed %d: cold solve diverged from direct", solver, seed)
					}

					warm := e.Solve(context.Background(), req)
					if !warm.CacheHit {
						t.Errorf("%s seed %d: second identical solve missed the cache", solver, seed)
					}
					if !solutionsBitEqual(warm.Solution, want) {
						t.Errorf("%s seed %d: cached solve diverged from direct", solver, seed)
					}
				}
			}
		})
	}
}

func TestDefaultSolver(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 1, 10), Proc: testProcs["ideal"]}
	got := e.Solve(context.Background(), req)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want, err := directSolve(t, Request{Tasks: req.Tasks, Proc: req.Proc, Solver: "DP"}, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsBitEqual(got.Solution, want) {
		t.Error("empty solver name did not resolve to the DP default")
	}
}

func TestErrorsNotCached(t *testing.T) {
	e := New(Config{})
	set := testSet(t, 2, 8)
	set.Tasks[1].ID = set.Tasks[0].ID // duplicate ID: invalid
	req := Request{Tasks: set, Proc: testProcs["ideal"], Solver: "DP"}
	for i := 0; i < 2; i++ {
		r := e.Solve(context.Background(), req)
		if r.Err == nil {
			t.Fatal("invalid instance solved successfully")
		}
		if r.CacheHit {
			t.Error("error response served from cache")
		}
	}
	if st := e.Stats(); st.Cache.Entries != 0 {
		t.Errorf("failed solve left %d cache entries", st.Cache.Entries)
	}

	if r := e.Solve(context.Background(), Request{Tasks: testSet(t, 2, 8), Proc: testProcs["ideal"], Solver: "NOPE"}); r.Err == nil {
		t.Error("unknown solver did not error")
	}
}

func TestPermutedRequestBypassesCache(t *testing.T) {
	e := New(Config{})
	set := testSet(t, 3, 15)
	req := Request{Tasks: set, Proc: testProcs["ideal"], Solver: "GREEDY"}
	if r := e.Solve(context.Background(), req); r.Err != nil {
		t.Fatal(r.Err)
	}

	perm := cloneRequest(req)
	for i, j := 0, len(perm.Tasks.Tasks)-1; i < j; i, j = i+1, j-1 {
		perm.Tasks.Tasks[i], perm.Tasks.Tasks[j] = perm.Tasks.Tasks[j], perm.Tasks.Tasks[i]
	}
	if Fingerprint(req, 0) != Fingerprint(perm, 0) {
		t.Fatal("permutation changed the fingerprint; bypass path not exercised")
	}
	got := e.Solve(context.Background(), perm)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.CacheHit || got.Coalesced {
		t.Error("permuted request was served a cached solution")
	}
	want, err := directSolve(t, perm, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsBitEqual(got.Solution, want) {
		t.Error("bypass solve diverged from the direct solve of the permuted order")
	}
	if st := e.Stats(); st.Bypasses == 0 {
		t.Error("bypass counter did not move")
	}
}

func TestCancelledContext(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := e.Solve(ctx, Request{Tasks: testSet(t, 4, 10), Proc: testProcs["ideal"], Solver: "DP"})
	if r.Err != context.Canceled {
		t.Errorf("cancelled context returned %v, want context.Canceled", r.Err)
	}
}

func TestSolveBatch(t *testing.T) {
	e := New(Config{Workers: 4})
	a := Request{Tasks: testSet(t, 5, 12), Proc: testProcs["ideal"], Solver: "DP"}
	b := Request{Tasks: testSet(t, 6, 12), Proc: testProcs["xscale"], Solver: "DP"}
	bad := a
	bad.Solver = "NOPE"
	perm := cloneRequest(a)
	perm.Tasks.Tasks[0], perm.Tasks.Tasks[1] = perm.Tasks.Tasks[1], perm.Tasks.Tasks[0]

	reqs := []Request{a, b, a, bad, perm, a}
	out := e.SolveBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(out), len(reqs))
	}

	wantA, _ := directSolve(t, a, core.SolverSpec{})
	wantB, _ := directSolve(t, b, core.SolverSpec{})
	wantPerm, _ := directSolve(t, perm, core.SolverSpec{})

	for _, i := range []int{0, 2, 5} {
		if out[i].Err != nil {
			t.Fatalf("response %d errored: %v", i, out[i].Err)
		}
		if !solutionsBitEqual(out[i].Solution, wantA) {
			t.Errorf("response %d diverged from direct solve", i)
		}
	}
	if out[0].Coalesced {
		t.Error("batch leader marked coalesced")
	}
	if !out[2].Coalesced || !out[5].Coalesced {
		t.Error("batch duplicates not marked coalesced")
	}
	if out[1].Err != nil || !solutionsBitEqual(out[1].Solution, wantB) {
		t.Errorf("distinct request diverged: %v", out[1].Err)
	}
	if out[3].Err == nil {
		t.Error("unknown solver in batch did not error")
	}
	if out[4].Err != nil || !solutionsBitEqual(out[4].Solution, wantPerm) {
		t.Errorf("permuted request in batch diverged: %v", out[4].Err)
	}
	if out[4].Coalesced {
		t.Error("permuted request wrongly coalesced with its anagram")
	}

	// Responses own their slices.
	out[0].Solution.Accepted[0] = -1
	again := e.Solve(context.Background(), a)
	if !solutionsBitEqual(again.Solution, wantA) {
		t.Error("mutating a batch response corrupted the cache")
	}
}

func TestReset(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 7, 10), Proc: testProcs["ideal"], Solver: "DP"}
	e.Solve(context.Background(), req)
	e.Reset()
	if r := e.Solve(context.Background(), req); r.CacheHit {
		t.Error("cache hit after Reset")
	}
}

// TestHammerBitIdentical is the serving layer's correctness stress test:
// many goroutines fire equal, permuted and near-equal (±1 ulp-ish penalty)
// requests at one engine — with quantization on, so the near-equal variants
// collide into the same cache slot — and every single response must be
// bit-identical to a direct solve of that exact request. Run with -race.
func TestHammerBitIdentical(t *testing.T) {
	base := Request{Tasks: testSet(t, 8, 20), Proc: testProcs["ideal"], Solver: "DP"}

	perm := cloneRequest(base)
	for i, j := 0, len(perm.Tasks.Tasks)-1; i < j; i, j = i+1, j-1 {
		perm.Tasks.Tasks[i], perm.Tasks.Tasks[j] = perm.Tasks.Tasks[j], perm.Tasks.Tasks[i]
	}
	near := cloneRequest(base)
	near.Tasks.Tasks[0].Penalty += 1e-12
	nearPerm := cloneRequest(perm)
	nearPerm.Tasks.Tasks[0].Penalty += 1e-12
	other := Request{Tasks: testSet(t, 9, 20), Proc: testProcs["xscale"], Solver: "GREEDY"}
	discrete := Request{Tasks: testSet(t, 10, 20), Proc: testProcs["discrete"], Solver: "DP"}

	pool := []Request{base, perm, near, nearPerm, other, discrete}
	want := make([]core.Solution, len(pool))
	for i, req := range pool {
		sol, err := directSolve(t, req, core.SolverSpec{})
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		want[i] = sol
	}
	if Fingerprint(base, 1e-6) != Fingerprint(near, 1e-6) {
		t.Fatal("near-equal request does not collide under quantization; hammer would not cover the bypass path")
	}

	// Tiny quantized cache: slot collisions, evictions and singleflight
	// all under fire at once.
	e := New(Config{Shards: 2, EntriesPerShard: 2, Quantum: 1e-6})

	const goroutines = 8
	const iters = 150
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				if i%10 == 9 {
					// Batch round: random multiset of the pool.
					idx := make([]int, 4)
					reqs := make([]Request, 4)
					for k := range idx {
						idx[k] = rng.Intn(len(pool))
						reqs[k] = pool[idx[k]]
					}
					for k, resp := range e.SolveBatch(context.Background(), reqs) {
						if resp.Err != nil {
							errs <- "batch error: " + resp.Err.Error()
							return
						}
						if !solutionsBitEqual(resp.Solution, want[idx[k]]) {
							errs <- "batch response diverged from direct solve"
							return
						}
					}
					continue
				}
				j := rng.Intn(len(pool))
				resp := e.Solve(context.Background(), pool[j])
				if resp.Err != nil {
					errs <- "solve error: " + resp.Err.Error()
					return
				}
				if !solutionsBitEqual(resp.Solution, want[j]) {
					errs <- "response diverged from direct solve"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	st := e.Stats()
	if st.Cache.Hits == 0 {
		t.Error("hammer produced no cache hits")
	}
	if st.Bypasses == 0 {
		t.Error("hammer produced no bypasses; slot-collision path untested")
	}
}

func TestStatsCount(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 11, 10), Proc: testProcs["ideal"], Solver: "DP"}
	e.Solve(context.Background(), req)
	e.Solve(context.Background(), req)
	st := e.Stats()
	if st.Requests != 2 {
		t.Errorf("Requests = %d, want 2", st.Requests)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.SparseSolves != 0 || st.SparseCells != 0 {
		t.Errorf("dense-regime solve bumped sparse counters: %d solves / %d cells",
			st.SparseSolves, st.SparseCells)
	}
}

// TestStatsSparseSolves pins the sparse counters: a beyond-the-dense-wall
// instance must route through the sparse kernel (cold and delta-warmed)
// and report its breakpoint footprint.
func TestStatsSparseSolves(t *testing.T) {
	set, err := gen.Sparse(rand.New(rand.NewSource(3)), gen.SparseConfig{N: 18, Deadline: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{})
	ctx := context.Background()
	if resp := e.Solve(ctx, Request{Tasks: set, Proc: testProcs["ideal"], Solver: "DP"}); resp.Err != nil {
		t.Fatalf("cold sparse solve: %v", resp.Err)
	}
	st := e.Stats()
	if st.SparseSolves != 1 || st.SparseCells == 0 {
		t.Fatalf("after cold solve: SparseSolves=%d SparseCells=%d, want 1 solve with cells",
			st.SparseSolves, st.SparseCells)
	}
	// A tail-append near-miss warms from the recorded sparse parent and
	// counts as a second sparse solve.
	mut := set
	mut.Tasks = append(append([]task.Task(nil), set.Tasks...),
		task.Task{ID: 1000, Cycles: 12345, Penalty: 2})
	if resp := e.Solve(ctx, Request{Tasks: mut, Proc: testProcs["ideal"], Solver: "DP"}); resp.Err != nil {
		t.Fatalf("warm sparse solve: %v", resp.Err)
	}
	st = e.Stats()
	if st.DeltaSolves != 1 {
		t.Fatalf("DeltaSolves = %d, want 1", st.DeltaSolves)
	}
	if st.SparseSolves != 2 {
		t.Fatalf("SparseSolves = %d, want 2 (cold + warm)", st.SparseSolves)
	}
}

// TestStatsReadersRaceSolvers hammers Stats() — the GET /stats path — from
// dedicated reader goroutines while writers solve, batch and reset
// concurrently. It exists to run under -race: every counter on the stats
// path must be mutex-guarded (LRU shards) or atomic (engine counters), so
// a snapshot taken mid-solve is merely slightly stale, never torn. Readers
// also check per-goroutine monotonicity of the cumulative counters, which
// a torn or unsynchronized read would eventually violate.
func TestStatsReadersRaceSolvers(t *testing.T) {
	e := New(Config{Shards: 4, EntriesPerShard: 8})
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Tasks: testSet(t, int64(20+i), 12), Proc: testProcs["ideal"], Solver: "DP"}
	}
	ctx := context.Background()
	done := make(chan struct{})

	var readers, writers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev Stats
			for {
				select {
				case <-done:
					return
				default:
				}
				st := e.Stats()
				if st.Requests < prev.Requests || st.Cache.Hits < prev.Cache.Hits ||
					st.Cache.Misses < prev.Cache.Misses || st.Coalesced < prev.Coalesced {
					t.Errorf("stats went backwards: %+v after %+v", st, prev)
					return
				}
				prev = st
			}
		}()
	}

	var issued uint64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for iter := 0; iter < 30; iter++ {
				n := uint64(0)
				switch iter % 3 {
				case 0:
					e.Solve(ctx, reqs[(w+iter)%len(reqs)])
					n = 1
				case 1:
					e.SolveBatch(ctx, reqs[:3])
					n = 3
				default:
					e.Solve(ctx, reqs[(w*2+iter)%len(reqs)])
					e.Reset()
					n = 1
				}
				mu.Lock()
				issued += n
				mu.Unlock()
			}
		}(w)
	}

	// Readers stay live for the writers' whole run, then drain before the
	// quiescent final snapshot.
	writers.Wait()
	close(done)
	readers.Wait()

	st := e.Stats()
	if st.Requests != issued {
		t.Errorf("Requests = %d, want %d", st.Requests, issued)
	}
}
