// Package serve is the batched, cache-fronted solve engine behind the
// rejectschedd daemon. It fronts the internal/core solvers with
//
//   - a sharded LRU plan cache keyed by a canonical instance fingerprint
//     (tasks sorted by ID, floats optionally quantized, solver and
//     processor folded in);
//   - singleflight collapsing of concurrent identical solves, so a
//     thundering herd of the same instance costs one solver run;
//   - a batch API that groups same-processor requests behind one shared
//     core.ProcProfile and fans distinct instances across a bounded
//     worker pool.
//
// The engine never changes results: a cached or coalesced response is
// served only after verifying the stored request is bit-identical to the
// incoming one (including task order — float summation order is observable
// in Penalty). Anything else bypasses the cache and solves directly.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"dvsreject/internal/anytime"
	"dvsreject/internal/cache"
	"dvsreject/internal/conc"
	"dvsreject/internal/core"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Config parameterizes an Engine. The zero value is usable: 16 shards of
// 256 entries, exact-bits fingerprints, GOMAXPROCS batch workers, DP as the
// default solver.
type Config struct {
	// Shards is the plan-cache shard count, rounded up to a power of two.
	// 0 means 16.
	Shards int
	// EntriesPerShard bounds each shard's LRU. 0 means 256.
	EntriesPerShard int
	// Workers bounds the batch fan-out. 0 means GOMAXPROCS.
	Workers int
	// Quantum buckets fingerprint floats to its nearest multiple, letting
	// near-identical instances share a cache slot. 0 hashes exact bits.
	// Results are never affected; only slot sharing is.
	Quantum float64
	// DefaultSolver resolves requests with an empty Solver field.
	// "" means "DP".
	DefaultSolver string
	// Spec configures solver construction (ε, seed, per-solver workers).
	Spec core.SolverSpec
	// OnColdSolve, when non-nil, observes every successful cold solve just
	// after its entry is cached: the cluster layer hooks warm-cache
	// replication here. The request passed is the engine's private clone,
	// so the callback may retain it. It runs on the solving goroutine —
	// keep it cheap (enqueue, don't send).
	OnColdSolve func(req Request, sol core.Solution)
	// DisableDelta turns off the structural similarity index (delta.go):
	// every cache miss cold-solves. Results are never affected either
	// way — the delta path is bit-identical by construction.
	DisableDelta bool
	// DeltaParents bounds the similarity index's resident DPState count;
	// 0 means 16.
	DeltaParents int
	// DeltaBytes bounds the index's retained state memory; 0 means 64 MiB.
	DeltaBytes int64
	// DeltaStride is the DP checkpoint interval recorded for warm starts;
	// 0 means core.DefaultCheckpointStride.
	DeltaStride int
	// AnytimeBudget, when > 0, arms the anytime Pareto fallback tier for
	// exact-DP requests: a solve whose predicted cost exceeds its Timeout
	// (see EstimateCost), or that dies on the DP state budget, is answered
	// by internal/anytime within min(AnytimeBudget, Timeout) instead of
	// timing out or erroring. Anytime responses are flagged
	// (Response.Anytime) and never cached — they are budget-dependent, not
	// bit-reproducible. 0 disables the tier entirely.
	AnytimeBudget time.Duration
	// EstimateCost predicts a request's solve cost in microseconds (the
	// cluster layer plugs in its admission cost model). Only consulted for
	// deadline pricing when AnytimeBudget > 0; nil disables the priced
	// route, leaving just the state-budget fallback.
	EstimateCost func(req Request) float64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.EntriesPerShard <= 0 {
		c.EntriesPerShard = 256
	}
	if c.DefaultSolver == "" {
		c.DefaultSolver = "DP"
	}
	return c
}

// Request is one solve: an instance plus the solver name and an optional
// per-request deadline. Timeout does not participate in caching — it bounds
// this call, not the solution.
type Request struct {
	Tasks task.Set
	Proc  speed.Proc
	// Procs, when non-empty, makes this a heterogeneous M-processor solve
	// over the profile vector (Proc is then ignored): the engine routes it
	// to the internal/multiproc hetero tier and the response carries a
	// HeteroInfo with the partition and its certified optimality gap.
	// Hetero responses cache normally — the solvers are deterministic —
	// but never replicate to peers (the wire codec is single-processor).
	Procs  []speed.Proc
	Solver string // experiment-table name; "" = engine default
	// FastPow opts this solve into the integer-exponent fast paths (see
	// core.Instance.FastPow). It participates in caching: a FastPow solve
	// and an exact solve of the same instance are distinct cache entries,
	// because their results need not be bit-identical.
	FastPow bool
	// Timeout, when > 0, bounds this request even inside a batch.
	Timeout time.Duration
}

// Response is the outcome of one request.
type Response struct {
	Solution core.Solution
	Err      error
	// CacheHit marks a response served from the plan cache.
	CacheHit bool
	// Coalesced marks a response shared with a concurrent or same-batch
	// identical request (singleflight or batch dedup).
	Coalesced bool
	// Anytime marks a response served by the anytime Pareto tier instead
	// of the requested exact solver — either deadline-priced routing or a
	// DP state-budget fallback. Anytime responses are never cached.
	Anytime bool
	// Gap is the certified optimality-gap bound of an anytime response:
	// (cost − lower bound) / cost, so 0 means proven optimal. Negative
	// when no lower bound was available for the instance.
	Gap float64
	// Hetero carries the heterogeneous extension of a profile-vector
	// solve: per-processor placement and the certified gap against
	// multiproc.HeteroLowerBound. Nil on single-processor responses.
	Hetero *HeteroInfo
}

// HeteroInfo is the heterogeneous extension of a response.
type HeteroInfo struct {
	// PerProc[m] lists the task IDs accepted on processor m, ascending.
	PerProc [][]int `json:"per_proc"`
	// Energies[m] is processor m's frame energy.
	Energies []float64 `json:"energies"`
	// LowerBound is the certified multiproc.HeteroLowerBound; only
	// meaningful when Gap ≥ 0.
	LowerBound float64 `json:"lower_bound"`
	// Gap is (cost − LowerBound)/cost clamped at 0, so 0 means proven
	// optimal; negative when the bound declined the processor flavours.
	Gap float64 `json:"gap"`
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Requests counts every request seen by Solve and SolveBatch.
	Requests uint64 `json:"requests"`
	// Coalesced counts responses shared via singleflight or batch dedup.
	Coalesced uint64 `json:"coalesced"`
	// Bypasses counts requests that landed in an occupied cache slot but
	// failed the bit-exact verification (permuted tasks, quantum
	// collisions) and were solved directly.
	Bypasses uint64 `json:"bypasses"`
	// Warmed counts cache entries installed by Warm — solutions pushed in
	// from a peer's cold solve rather than computed here.
	Warmed uint64 `json:"warmed"`
	// DeltaSolves counts cache misses served by a warm-start delta solve
	// from a structurally similar parent instead of a cold DP run.
	DeltaSolves uint64 `json:"delta_solves"`
	// DeltaParents is the similarity index's resident parent-state count.
	DeltaParents int `json:"delta_parents"`
	// SparseSolves counts DP runs (cold, checkpointed, or warm) that used
	// the sparse row representation for at least one row.
	SparseSolves uint64 `json:"sparse_solves"`
	// SparseCells totals the breakpoints stored across those sparse rows —
	// the sparse analogue of dense grid cells, for capacity planning.
	SparseCells uint64 `json:"sparse_cells"`
	// AnytimeSolves counts responses served by the anytime Pareto tier
	// (deadline-priced routing plus state-budget fallbacks).
	AnytimeSolves uint64 `json:"anytime_solves"`
	// HeteroSolves counts cold solves routed to the heterogeneous
	// profile-vector tier (cache hits of hetero entries don't re-count).
	HeteroSolves uint64 `json:"hetero_solves"`
	// Cache aggregates the plan-cache shard counters.
	Cache cache.Stats `json:"cache"`
}

// entry is one cached plan: the solution plus a private snapshot of the
// exact request that produced it, for bit-exact hit verification. Anytime
// entries only live inside a singleflight group — they are never Put.
type entry struct {
	req     Request
	sol     core.Solution
	anytime bool
	gap     float64
	hetero  *HeteroInfo
}

// anytimeNote rides alongside a solution through run/runSolver so the
// caching layer knows an anytime answer must not be cached.
type anytimeNote struct {
	used bool
	gap  float64
}

// Engine is the cache-fronted solve engine. Safe for concurrent use.
type Engine struct {
	cfg   Config
	cache *cache.Sharded[entry]
	group cache.Group[entry]
	delta *deltaIndex // nil when DisableDelta

	requests    atomic.Uint64
	coalesced   atomic.Uint64
	bypasses    atomic.Uint64
	warmed      atomic.Uint64
	deltaSolves atomic.Uint64

	sparseSolves  atomic.Uint64
	sparseCells   atomic.Uint64
	anytimeSolves atomic.Uint64
	heteroSolves  atomic.Uint64
}

// New builds an engine from cfg (zero value fine, see Config).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		cache: cache.NewSharded[entry](cfg.Shards, cfg.EntriesPerShard),
	}
	if !cfg.DisableDelta {
		e.delta = newDeltaIndex(cfg.DeltaParents, cfg.DeltaBytes)
	}
	return e
}

// Solve answers one request, consulting the plan cache and collapsing
// concurrent identical solves. The response is always bit-identical to a
// direct solver run on the same request.
func (e *Engine) Solve(ctx context.Context, req Request) Response {
	e.requests.Add(1)
	if req.Solver == "" {
		req.Solver = e.cfg.DefaultSolver
	}
	return e.solveOne(ctx, req, nil, Fingerprint(req, e.cfg.Quantum))
}

// SolveBatch answers a batch of requests. Identical requests within the
// batch are solved once and shared (marked Coalesced); distinct instances
// fan out across the engine's worker pool; requests sharing a processor
// share one precomputed core.ProcProfile. Responses are positionally
// aligned with reqs and each is bit-identical to a direct solve.
func (e *Engine) SolveBatch(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	e.requests.Add(uint64(len(reqs)))

	creqs := slices.Clone(reqs)
	for i := range creqs {
		if creqs[i].Solver == "" {
			creqs[i].Solver = e.cfg.DefaultSolver
		}
	}

	// One ProcProfile per distinct processor: same-processor requests
	// share the validated, precomputed processor derivation. An invalid
	// processor yields a nil profile and the solver reports the error.
	profiles := make(map[string]*core.ProcProfile)
	ppOf := make([]*core.ProcProfile, len(creqs))
	for i, r := range creqs {
		if len(r.Procs) > 0 {
			continue // hetero solves don't use a single-processor profile
		}
		pk := procKey(r)
		pp, ok := profiles[pk]
		if !ok {
			pp, _ = core.NewProcProfile(r.Proc)
			profiles[pk] = pp
		}
		ppOf[i] = pp
	}

	// Dedup bit-identical requests: the first occurrence leads, the rest
	// share its response. Fingerprint slots may collide (permutations,
	// quantization), so each slot keeps a list of distinct leaders.
	type dupGroup struct {
		leader int
		dups   []int
	}
	bySlot := make(map[string][]*dupGroup)
	fps := make([]string, len(creqs))
	var leaders []int
next:
	for i, r := range creqs {
		fp := Fingerprint(r, e.cfg.Quantum)
		fps[i] = fp
		for _, g := range bySlot[fp] {
			if requestsEqual(creqs[g.leader], r) {
				g.dups = append(g.dups, i)
				continue next
			}
		}
		g := &dupGroup{leader: i}
		bySlot[fp] = append(bySlot[fp], g)
		leaders = append(leaders, i)
	}

	conc.ForEach(len(leaders), e.cfg.Workers, func(j int) (struct{}, error) {
		i := leaders[j]
		out[i] = e.solveOne(ctx, creqs[i], ppOf[i], fps[i])
		return struct{}{}, nil
	})

	for _, groups := range bySlot {
		for _, g := range groups {
			lead := out[g.leader]
			for _, i := range g.dups {
				r := lead
				r.Solution = cloneSolution(r.Solution)
				if r.Err == nil {
					r.Coalesced = true
				}
				out[i] = r
			}
			if len(g.dups) > 0 && lead.Err == nil {
				e.coalesced.Add(uint64(len(g.dups)))
			}
		}
	}
	return out
}

// solveOne is the shared single-request path: per-request deadline, cache
// lookup with bit-exact verification, singleflight, direct-solve bypass.
func (e *Engine) solveOne(ctx context.Context, req Request, pp *core.ProcProfile, fp string) Response {
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return Response{Err: err}
	}

	if ent, ok := e.cache.Get(fp); ok {
		if requestsEqual(ent.req, req) {
			return Response{Solution: cloneSolution(ent.sol), CacheHit: true, Hetero: cloneHetero(ent.hetero)}
		}
		// Slot collision: same fingerprint, different bits. Solve
		// directly — storing would evict the slot's owner on every
		// alternation, and correctness forbids serving its solution.
		e.bypasses.Add(1)
		sol, an, hi, err := e.run(req, pp)
		return Response{Solution: sol, Err: err, Anytime: an.used, Gap: an.gap, Hetero: hi}
	}

	ent, err, shared := e.group.Do(ctx, fp, func() (entry, error) {
		creq := cloneRequest(req)
		sol, an, hi, solveErr := e.run(creq, pp)
		if solveErr != nil {
			return entry{}, solveErr
		}
		ent := entry{req: creq, sol: sol, anytime: an.used, gap: an.gap, hetero: hi}
		if !an.used {
			// Anytime answers are budget-dependent, not bit-reproducible:
			// caching (or replicating) one would let it shadow a later
			// exact solve of the same instance. Hetero entries cache — the
			// tier is deterministic — but never replicate: the peer wire
			// codec is single-processor.
			e.cache.Put(fp, ent)
			if e.cfg.OnColdSolve != nil && hi == nil {
				e.cfg.OnColdSolve(creq, sol)
			}
		}
		return ent, nil
	})
	if err != nil {
		return Response{Err: err}
	}
	if shared && !requestsEqual(ent.req, req) {
		// Joined a flight for a colliding request: its solution is not
		// ours. Solve directly.
		e.bypasses.Add(1)
		sol, an, hi, err := e.run(req, pp)
		return Response{Solution: sol, Err: err, Anytime: an.used, Gap: an.gap, Hetero: hi}
	}
	if shared {
		e.coalesced.Add(1)
	}
	return Response{Solution: cloneSolution(ent.sol), Coalesced: shared, Anytime: ent.anytime, Gap: ent.gap, Hetero: cloneHetero(ent.hetero)}
}

// run resolves the solver and executes it, attaching the precomputed
// processor profile when one is available. DP solves route through the
// delta path; jumbo requests purge the core scratch pools afterwards so
// one huge solve stops taxing the small ones that follow.
func (e *Engine) run(req Request, pp *core.ProcProfile) (core.Solution, anytimeNote, *HeteroInfo, error) {
	sol, an, hi, err := e.runSolver(req, pp)
	if len(req.Tasks.Tasks) >= jumboTasks {
		core.PurgeSolverScratch()
	}
	return sol, an, hi, err
}

func (e *Engine) runSolver(req Request, pp *core.ProcProfile) (core.Solution, anytimeNote, *HeteroInfo, error) {
	if len(req.Procs) > 0 {
		sol, hi, err := e.runHetero(req)
		return sol, anytimeNote{}, hi, err
	}
	in := core.Instance{Tasks: req.Tasks, Proc: req.Proc, FastPow: req.FastPow}
	if pp != nil {
		in = in.WithProcProfile(pp)
	}
	if e.anytimePriced(req) {
		if sol, an, aerr := e.anytimeSolve(req, in); aerr == nil {
			return sol, an, nil, nil
		}
		// The tier declined the instance (e.g. heterogeneous rho) — let
		// the exact solver have it after all.
	}
	solver, err := core.NewSolver(req.Solver, e.cfg.Spec)
	if err != nil {
		return core.Solution{}, anytimeNote{}, nil, err
	}
	if dp, ok := solver.(core.DP); ok {
		var sol core.Solution
		if e.delta != nil {
			sol, err = e.deltaSolve(dp, req, in)
		} else {
			var stats core.DPStats
			sol, stats, err = dp.SolveStats(in)
			if err == nil {
				e.noteDPStats(stats)
			}
		}
		if err != nil && e.anytimeFallback(req, err) {
			if asol, an, aerr := e.anytimeSolve(req, in); aerr == nil {
				return asol, an, nil, nil
			}
			// Tier declined too: report the original DP failure.
		}
		return sol, anytimeNote{}, nil, err
	}
	sol, err := solver.Solve(in)
	return sol, anytimeNote{}, nil, err
}

// runHetero answers a heterogeneous profile-vector request on the
// internal/multiproc tier: the requested hetero solver (the exact-DP
// names route to HETERO-PART, the default) plus the certified
// optimality gap from multiproc.HeteroLowerBound.
func (e *Engine) runHetero(req Request) (core.Solution, *HeteroInfo, error) {
	hs, ok := multiproc.HeteroSolverByName(req.Solver)
	if !ok {
		if req.Solver != "DP" && req.Solver != "DP-SPARSE" {
			return core.Solution{}, nil, fmt.Errorf("serve: solver %q cannot solve a heterogeneous processor vector", req.Solver)
		}
		hs = multiproc.HeteroPartition{}
	}
	in := multiproc.HeteroInstance{Tasks: req.Tasks, Procs: req.Procs}
	res, err := multiproc.SolveHeteroCertified(in, hs)
	if err != nil {
		return core.Solution{}, nil, err
	}
	accepted := make([]int, 0, len(req.Tasks.Tasks)-len(res.Rejected))
	for _, ids := range res.PerProc {
		accepted = append(accepted, ids...)
	}
	slices.Sort(accepted)
	sol := core.Solution{
		Accepted: accepted,
		Rejected: res.Rejected,
		Energy:   res.Energy,
		Penalty:  res.Penalty,
		Cost:     res.Cost,
	}
	e.heteroSolves.Add(1)
	return sol, &HeteroInfo{
		PerProc:    res.PerProc,
		Energies:   res.Energies,
		LowerBound: res.LowerBound,
		Gap:        res.Gap,
	}, nil
}

// anytimeEligible limits the anytime tier to the exact DP solvers — the
// heuristics are already fast, and an explicit "ANYTIME" request flows
// the normal registry path (fixed generations, deterministic, cacheable).
func anytimeEligible(solver string) bool {
	return solver == "DP" || solver == "DP-SPARSE"
}

// anytimePriced reports whether a request should skip the exact solver
// outright: the tier is armed, the request carries a deadline, and the
// cost model predicts the exact solve would blow through it.
func (e *Engine) anytimePriced(req Request) bool {
	if e.cfg.AnytimeBudget <= 0 || e.cfg.EstimateCost == nil || req.Timeout <= 0 {
		return false
	}
	if !anytimeEligible(req.Solver) {
		return false
	}
	return e.cfg.EstimateCost(req) > float64(req.Timeout.Microseconds())
}

// anytimeFallback reports whether a failed exact solve should be retried
// on the anytime tier: only state-budget exhaustion qualifies —
// validation errors would fail there identically.
func (e *Engine) anytimeFallback(req Request, err error) bool {
	return e.cfg.AnytimeBudget > 0 && anytimeEligible(req.Solver) && errors.Is(err, core.ErrStateBudget)
}

// anytimeSolve answers a request on the anytime Pareto tier within
// min(AnytimeBudget, Timeout), returning the best feasible front point
// plus its certified optimality-gap bound (negative when the lower-bound
// machinery declined the instance).
func (e *Engine) anytimeSolve(req Request, in core.Instance) (core.Solution, anytimeNote, error) {
	budget := e.cfg.AnytimeBudget
	if req.Timeout > 0 && req.Timeout < budget {
		budget = req.Timeout
	}
	s := anytime.Solver{Seed: e.cfg.Spec.Seed, Workers: e.cfg.Spec.Workers, Budget: budget}
	res, err := s.SolveUntil(context.Background(), in)
	if err != nil {
		return core.Solution{}, anytimeNote{}, err
	}
	gap := res.Gap
	if math.IsNaN(gap) {
		gap = -1
	}
	e.anytimeSolves.Add(1)
	return res.Best, anytimeNote{used: true, gap: gap}, nil
}

// noteDPStats folds one DP run's row statistics into the engine counters.
func (e *Engine) noteDPStats(st core.DPStats) {
	if st.SparseCells > 0 {
		e.sparseSolves.Add(1)
		e.sparseCells.Add(uint64(st.SparseCells))
	}
}

// deltaSolve is the DP route: try a warm start from a structurally
// similar solved parent; otherwise cold-solve with checkpoint recording
// and register the state as a parent for future near-misses.
func (e *Engine) deltaSolve(dp core.DP, req Request, in core.Instance) (core.Solution, error) {
	stride := e.cfg.DeltaStride
	if stride <= 0 {
		stride = core.DefaultCheckpointStride
	}
	dp.CheckpointStride = stride
	cap64 := core.DPGridCapacity(in)
	chain := deltaChain(nil, req.Tasks.Tasks, cap64)
	if parent := e.delta.lookup(cap64, chain, stride); parent != nil {
		sol, stats, ok, err := dp.SolveFrom(parent, in, false)
		if err != nil {
			// The same failure a cold solve reports (validation, hetero,
			// state limit) — don't solve twice to report it twice.
			return core.Solution{}, err
		}
		if ok {
			e.deltaSolves.Add(1)
			e.noteDPStats(stats)
			return sol, nil
		}
	}
	st := &core.DPState{}
	sol, stats, err := dp.SolveCheckpoint(in, st)
	if err != nil {
		return core.Solution{}, err
	}
	e.noteDPStats(stats)
	e.delta.register(st, cap64, chain)
	return sol, nil
}

// Warm installs a solved entry pushed from a peer — the warm-cache
// replication path. The pair must come from a bit-exact solver run (the
// wire codec preserves every bit); the usual requestsEqual verification
// still gates every later hit, so a corrupted push can waste a slot but
// never change a served result. An occupied slot is left alone: the local
// entry is at least as fresh. Reports whether the entry was installed.
func (e *Engine) Warm(req Request, sol core.Solution) bool {
	if len(req.Procs) > 0 {
		// Hetero entries never replicate: the wire codec is
		// single-processor, and a pushed entry would lack its HeteroInfo.
		return false
	}
	if req.Solver == "" {
		req.Solver = e.cfg.DefaultSolver
	}
	fp := Fingerprint(req, e.cfg.Quantum)
	if e.cache.Contains(fp) {
		return false
	}
	e.cache.Put(fp, entry{req: cloneRequest(req), sol: cloneSolution(sol)})
	e.warmed.Add(1)
	return true
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:      e.requests.Load(),
		Coalesced:     e.coalesced.Load(),
		Bypasses:      e.bypasses.Load(),
		Warmed:        e.warmed.Load(),
		DeltaSolves:   e.deltaSolves.Load(),
		DeltaParents:  e.delta.parents(),
		SparseSolves:  e.sparseSolves.Load(),
		SparseCells:   e.sparseCells.Load(),
		AnytimeSolves: e.anytimeSolves.Load(),
		HeteroSolves:  e.heteroSolves.Load(),
		Cache:         e.cache.Stats(),
	}
}

// Reset empties the plan cache and the similarity index (counters are
// preserved). Benchmarks use it to measure cold solves — clearing the
// index too keeps them honest, or a "cold" run would be delta-warmed.
func (e *Engine) Reset() {
	e.cache.Clear()
	e.delta.clear()
}

// cloneRequest deep-copies the request's slices so cache entries never
// alias caller memory.
func cloneRequest(req Request) Request {
	req.Tasks.Tasks = slices.Clone(req.Tasks.Tasks)
	req.Proc.Levels = slices.Clone(req.Proc.Levels)
	if req.Procs != nil {
		procs := slices.Clone(req.Procs)
		for i := range procs {
			procs[i].Levels = slices.Clone(procs[i].Levels)
		}
		req.Procs = procs
	}
	return req
}

// cloneHetero deep-copies a response's hetero extension so callers may
// mutate their response without corrupting the cache.
func cloneHetero(h *HeteroInfo) *HeteroInfo {
	if h == nil {
		return nil
	}
	c := *h
	c.PerProc = make([][]int, len(h.PerProc))
	for i, ids := range h.PerProc {
		c.PerProc[i] = slices.Clone(ids)
	}
	c.Energies = slices.Clone(h.Energies)
	return &c
}

// cloneSolution deep-copies the solution's slices so callers may mutate
// their response without corrupting the cache.
func cloneSolution(s core.Solution) core.Solution {
	s.Accepted = slices.Clone(s.Accepted)
	s.Rejected = slices.Clone(s.Rejected)
	s.PerTaskSpeeds = slices.Clone(s.PerTaskSpeeds)
	return s
}
