package serve

import (
	"context"
	"sync"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify"
)

// TestConcurrentIdenticalMissesCoalesce pins the singleflight contract the
// load generator's burst mode exercises: concurrent identical requests
// against a cold cache share one solver run. The instance is big enough
// that the leader is still solving when the followers arrive, so at least
// one follower must join its flight; every response, shared or not, stays
// bit-identical to a direct solve.
func TestConcurrentIdenticalMissesCoalesce(t *testing.T) {
	const (
		workers = 8
		// n is sized so one DP solve outlasts a scheduler preemption
		// quantum (~10 ms): on one CPU the leader's flight must still be
		// in progress when the follower goroutines get scheduled, or they
		// would find a finished cache entry instead of joining. ~20 ms at
		// the committed DP throughput.
		n      = 40000
		rounds = 10
	)
	e := New(Config{DefaultSolver: "DP"})

	for round := 0; round < rounds; round++ {
		req := Request{
			Tasks: mustSet(int64(round), n),
			Proc:  speed.Proc{Model: power.Cubic(), SMax: 1},
		}
		want, err := core.DP{}.Solve(core.Instance{Tasks: req.Tasks, Proc: req.Proc})
		if err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		resps := make([]Response, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				resps[i] = e.Solve(context.Background(), req)
			}(i)
		}
		close(start)
		wg.Wait()

		for i, r := range resps {
			if r.Err != nil {
				t.Fatalf("round %d worker %d: %v", round, i, r.Err)
			}
			if err := verify.BitIdenticalSolutions(r.Solution, want); err != nil {
				t.Fatalf("round %d worker %d: response differs from direct solve: %v", round, i, err)
			}
		}
		st := e.Stats()
		// Every worker that raced the leader misses the cache first, so
		// Misses counts concurrency, not solver runs; Entries counts
		// solves — exactly one Put per round's flight.
		if st.Cache.Entries != round+1 {
			t.Fatalf("round %d: cache entries = %d, want %d (one solve per flight)", round, st.Cache.Entries, round+1)
		}
		if st.Coalesced > 0 {
			return // followers joined a live flight — the property holds
		}
	}
	t.Fatalf("no coalescing in %d rounds of %d concurrent identical cold misses", rounds, workers)
}

// TestWarmInstallsReplicatedEntry pins the replication seam: a Warm'd
// (request, solution) pair serves later identical requests as cache hits,
// bit-identically, and never clobbers an occupied slot.
func TestWarmInstallsReplicatedEntry(t *testing.T) {
	e := New(Config{DefaultSolver: "DP"})
	req := Request{
		Solver: "DP",
		Tasks:  mustSet(7, 40),
		Proc:   speed.Proc{Model: power.Cubic(), SMax: 1},
	}
	sol, err := core.DP{}.Solve(core.Instance{Tasks: req.Tasks, Proc: req.Proc})
	if err != nil {
		t.Fatal(err)
	}

	if !e.Warm(req, sol) {
		t.Fatal("Warm into an empty slot reported not installed")
	}
	if e.Warm(req, sol) {
		t.Error("Warm clobbered an occupied slot")
	}
	if got := e.Stats().Warmed; got != 1 {
		t.Errorf("Warmed = %d, want 1", got)
	}

	resp := e.Solve(context.Background(), req)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.CacheHit {
		t.Error("request after Warm was not a cache hit")
	}
	if err := verify.BitIdenticalSolutions(resp.Solution, sol); err != nil {
		t.Errorf("warmed hit differs from pushed solution: %v", err)
	}
}
