package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// maxBodyBytes bounds a request body; a 100k-task instance is ~5 MB.
const maxBodyBytes = 16 << 20

// WireTask is one task on the wire, mirroring the CLI instance format.
type WireTask struct {
	ID      int     `json:"id"`
	Cycles  int64   `json:"cycles"`
	Penalty float64 `json:"penalty"`
	Rho     float64 `json:"rho,omitempty"`
}

// WireRequest is one solve request on the wire. Model defaults to "cubic";
// esw omitted (or null) leaves the dormant mode disabled, matching the
// CLI's esw < 0 convention.
type WireRequest struct {
	Solver    string   `json:"solver,omitempty"` // "" = daemon default
	Model     string   `json:"model,omitempty"`  // cubic | xscale
	Discrete  bool     `json:"discrete,omitempty"`
	Esw       *float64 `json:"esw,omitempty"`
	Deadline  float64  `json:"deadline"`
	SMin      float64  `json:"smin,omitempty"`
	SMax      float64  `json:"smax"`
	FastPow   bool     `json:"fastpow,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
	// Procs, when non-empty, makes this a heterogeneous M-processor solve
	// over the listed profiles; the top-level model/smin/smax/discrete/esw
	// fields are then ignored. The response carries per-processor placement
	// and the certified optimality gap.
	Procs []WireProc `json:"procs,omitempty"`
	Tasks []WireTask `json:"tasks"`
}

// WireProc is one processor profile of a heterogeneous request, with the
// same model conventions as the top-level WireRequest fields.
type WireProc struct {
	Model    string   `json:"model,omitempty"` // cubic | xscale
	Discrete bool     `json:"discrete,omitempty"`
	Esw      *float64 `json:"esw,omitempty"`
	SMin     float64  `json:"smin,omitempty"`
	SMax     float64  `json:"smax"`
}

// WireResponse is one solve result on the wire.
type WireResponse struct {
	Accepted  []int   `json:"accepted"`
	Rejected  []int   `json:"rejected"`
	Energy    float64 `json:"energy"`
	Penalty   float64 `json:"penalty"`
	Cost      float64 `json:"cost"`
	CacheHit  bool    `json:"cache_hit,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	// Anytime marks an answer from the anytime Pareto tier; Gap is its
	// certified optimality bound ((cost − LB)/cost, 0 = proven optimal).
	// Gap is omitted when no lower bound was available.
	Anytime bool    `json:"anytime,omitempty"`
	Gap     float64 `json:"gap,omitempty"`
	// Hetero carries the heterogeneous extension of a profile-vector solve:
	// per-processor placement and the certified gap against the pooled
	// lower bound. Omitted on single-processor responses.
	Hetero *HeteroInfo `json:"hetero,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// WireBatch is the /batch request body.
type WireBatch struct {
	Requests []WireRequest `json:"requests"`
}

// WireBatchResponse is the /batch response body.
type WireBatchResponse struct {
	Responses []WireResponse `json:"responses"`
}

// wireProc builds one processor from the shared wire conventions.
func wireProc(model string, discrete bool, esw *float64, smin, smax float64) (speed.Proc, error) {
	e := -1.0
	if esw != nil {
		e = *esw
	}
	var proc speed.Proc
	switch model {
	case "", "cubic":
		if discrete {
			return speed.Proc{}, fmt.Errorf(`"discrete" requires "model": "xscale"`)
		}
		proc = speed.Proc{Model: power.Cubic(), SMin: smin, SMax: smax}
	case "xscale":
		proc = speed.Proc{Model: power.XScale(), SMax: 1}
		if discrete {
			proc.Levels = power.XScaleLevels()
		} else {
			proc.SMin = smin
			proc.SMax = smax
		}
	default:
		return speed.Proc{}, fmt.Errorf("unknown power model %q", model)
	}
	if e >= 0 {
		proc.DormantEnable = true
		proc.Esw = e
	}
	return proc, nil
}

// ToRequest converts the wire form to an engine request.
func (w WireRequest) ToRequest() (Request, error) {
	var proc speed.Proc
	var procs []speed.Proc
	if len(w.Procs) > 0 {
		procs = make([]speed.Proc, 0, len(w.Procs))
		for i, wp := range w.Procs {
			p, err := wireProc(wp.Model, wp.Discrete, wp.Esw, wp.SMin, wp.SMax)
			if err != nil {
				return Request{}, fmt.Errorf("procs[%d]: %w", i, err)
			}
			procs = append(procs, p)
		}
	} else {
		var err error
		proc, err = wireProc(w.Model, w.Discrete, w.Esw, w.SMin, w.SMax)
		if err != nil {
			return Request{}, err
		}
	}
	set := task.Set{Deadline: w.Deadline, Tasks: make([]task.Task, 0, len(w.Tasks))}
	for _, t := range w.Tasks {
		set.Tasks = append(set.Tasks, task.Task{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
	}
	return Request{
		Tasks:   set,
		Proc:    proc,
		Procs:   procs,
		Solver:  w.Solver,
		FastPow: w.FastPow,
		Timeout: time.Duration(w.TimeoutMS) * time.Millisecond,
	}, nil
}

// toWire flattens an engine response for the wire.
func toWire(r Response) WireResponse {
	if r.Err != nil {
		return WireResponse{Error: r.Err.Error()}
	}
	w := WireResponse{
		Accepted:  r.Solution.Accepted,
		Rejected:  r.Solution.Rejected,
		Energy:    r.Solution.Energy,
		Penalty:   r.Solution.Penalty,
		Cost:      r.Solution.Cost,
		CacheHit:  r.CacheHit,
		Coalesced: r.Coalesced,
		Anytime:   r.Anytime,
	}
	if r.Anytime && r.Gap >= 0 {
		w.Gap = r.Gap
	}
	w.Hetero = r.Hetero
	if w.Accepted == nil {
		w.Accepted = []int{}
	}
	if w.Rejected == nil {
		w.Rejected = []int{}
	}
	return w
}

// Gate is the admission hook consulted before a request reaches the
// engine. Admit reports whether the request may proceed and, when it may
// not, how long the client should back off; every admitted request gets
// exactly one Release once its response is ready. The cluster layer
// implements Gate with a cost-model admission controller; a nil Gate
// admits everything.
type Gate interface {
	Admit(req Request) (ok bool, retryAfter time.Duration)
	Release(req Request)
}

// NewHandler wires the engine's HTTP surface with no admission gate.
func NewHandler(e *Engine) http.Handler { return NewGatedHandler(e, nil) }

// NewGatedHandler wires the engine's HTTP surface:
//
//	POST /solve   one WireRequest  → WireResponse
//	POST /batch   WireBatch        → WireBatchResponse (positional)
//	GET  /stats   engine counters
//	GET  /healthz liveness probe
//
// /solve distinguishes client errors (400), overload shedding (429 with a
// Retry-After header), solver/timeout errors (422/504) and success (200).
// /batch returns 200 with per-item errors inline; gating is per item, so
// an overloaded node sheds the low-penalty fraction of a batch rather than
// the whole call.
func NewGatedHandler(e *Engine, gate Gate) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /solve", func(w http.ResponseWriter, r *http.Request) {
		var wreq WireRequest
		if err := decodeBody(w, r, &wreq); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req, err := wreq.ToRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if gate != nil {
			ok, retryAfter := gate.Admit(req)
			if !ok {
				writeOverloaded(w, retryAfter)
				return
			}
			defer gate.Release(req)
		}
		resp := e.Solve(r.Context(), req)
		writeJSON(w, solveStatus(resp.Err), toWire(resp))
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var batch WireBatch
		if err := decodeBody(w, r, &batch); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out := WireBatchResponse{Responses: make([]WireResponse, len(batch.Requests))}
		reqs := make([]Request, 0, len(batch.Requests))
		idx := make([]int, 0, len(batch.Requests))
		admitted := make([]Request, 0, len(batch.Requests))
		for i, wreq := range batch.Requests {
			req, err := wreq.ToRequest()
			if err != nil {
				out.Responses[i] = WireResponse{Error: err.Error()}
				continue
			}
			if gate != nil {
				ok, retryAfter := gate.Admit(req)
				if !ok {
					out.Responses[i] = WireResponse{Error: OverloadedMsg(retryAfter)}
					continue
				}
				admitted = append(admitted, req)
			}
			reqs = append(reqs, req)
			idx = append(idx, i)
		}
		for j, resp := range e.SolveBatch(r.Context(), reqs) {
			out.Responses[idx[j]] = toWire(resp)
		}
		if gate != nil {
			for _, req := range admitted {
				gate.Release(req)
			}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	return mux
}

// solveStatus maps a solve outcome to an HTTP status: deadline/cancel →
// 504, solver rejection (invalid instance, unknown solver) → 422, success
// → 200.
func solveStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, WireResponse{Error: err.Error()})
}

// writeOverloaded sheds a request: 429 plus a Retry-After header. The
// header only speaks whole seconds, so the precise backoff also rides in
// the body (and in an X-Retry-After-Ms header for clients that parse it).
func writeOverloaded(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if retryAfter%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	w.Header().Set("X-Retry-After-Ms", fmt.Sprint(retryAfter.Milliseconds()))
	writeJSON(w, http.StatusTooManyRequests, WireResponse{Error: OverloadedMsg(retryAfter)})
}

// OverloadedMsg is the shed-request error text, shared by /solve, /batch
// items and the wire protocol's error frames.
func OverloadedMsg(retryAfter time.Duration) string {
	return fmt.Sprintf("overloaded: low-penalty request shed, retry after %dms", retryAfter.Milliseconds())
}
