package serve

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// hardSparseSet builds an instance whose subset sums are all distinct and
// all Pareto-surviving (penalty ∝ cycles), so both the dense grid and the
// sparse dominance-pruned rows blow their state budgets — the shape the
// anytime fallback exists for.
func hardSparseSet(n int) task.Set {
	rng := rand.New(rand.NewSource(7))
	set := task.Set{}
	var sum int64
	for i := 0; i < n; i++ {
		c := (int64(1) << 28) + rng.Int63n(1<<28)
		set.Tasks = append(set.Tasks, task.Task{ID: i + 1, Cycles: c, Penalty: float64(c) * (1 + float64(i)*1e-7)})
		sum += c
	}
	set.Deadline = float64(sum)
	return set
}

func checkAnytimeResponse(t *testing.T, req Request, resp Response) {
	t.Helper()
	if resp.Err != nil {
		t.Fatalf("anytime response errored: %v", resp.Err)
	}
	if !resp.Anytime {
		t.Fatal("response not flagged Anytime")
	}
	if resp.CacheHit {
		t.Fatal("anytime response claimed a cache hit")
	}
	in := core.Instance{Tasks: req.Tasks, Proc: req.Proc, FastPow: req.FastPow}
	if err := verify.CheckSolution(in, resp.Solution); err != nil {
		t.Fatalf("anytime solution infeasible: %v", err)
	}
}

// TestAnytimePricedRoute: a DP request whose estimated cost exceeds its
// deadline is answered by the anytime tier — feasible, never cached, and
// at least as good as the exact optimum permits.
func TestAnytimePricedRoute(t *testing.T) {
	e := New(Config{
		AnytimeBudget: 50 * time.Millisecond,
		EstimateCost:  func(Request) float64 { return 1e12 }, // everything "too slow"
	})
	req := Request{Tasks: testSet(t, 1, 30), Proc: testProcs["ideal"], Solver: "DP", Timeout: 200 * time.Millisecond}
	want, err := directSolve(t, req, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		resp := e.Solve(context.Background(), req)
		checkAnytimeResponse(t, req, resp)
		if resp.Gap < 0 {
			t.Fatalf("solve %d: no certified gap on a monotone instance (gap %v)", i, resp.Gap)
		}
		if resp.Solution.Cost > want.Cost*(1+1e-9) {
			t.Fatalf("solve %d: anytime cost %v worse than exact %v", i, resp.Solution.Cost, want.Cost)
		}
	}
	if st := e.Stats(); st.AnytimeSolves != 2 {
		t.Fatalf("AnytimeSolves = %d, want 2 (anytime answers must not be cached)", st.AnytimeSolves)
	}

	// Without a deadline the priced route is disarmed: exact solve, cached.
	noDL := req
	noDL.Timeout = 0
	if resp := e.Solve(context.Background(), noDL); resp.Anytime || resp.Err != nil {
		t.Fatalf("deadline-free request routed anytime (err %v)", resp.Err)
	}
}

// TestAnytimeCacheHitPrecedence: an exact entry already in the cache wins
// over deadline pricing — the whole point of caching is that hits cost
// nothing, so there is nothing to price.
func TestAnytimeCacheHitPrecedence(t *testing.T) {
	e := New(Config{
		AnytimeBudget: 50 * time.Millisecond,
		EstimateCost:  func(Request) float64 { return 1e12 },
	})
	req := Request{Tasks: testSet(t, 2, 20), Proc: testProcs["ideal"], Solver: "DP"}
	if resp := e.Solve(context.Background(), req); resp.Err != nil || resp.Anytime {
		t.Fatalf("warming solve: err %v, anytime %v", resp.Err, resp.Anytime)
	}
	req.Timeout = time.Millisecond // now deadline-priced, but already cached
	resp := e.Solve(context.Background(), req)
	if resp.Err != nil || !resp.CacheHit || resp.Anytime {
		t.Fatalf("cached exact entry not served: err %v, hit %v, anytime %v", resp.Err, resp.CacheHit, resp.Anytime)
	}
}

// TestAnytimeStateBudgetFallback: an instance that exhausts both DP state
// budgets errors on a plain engine but gets a feasible, gap-certified
// answer once the anytime tier is armed.
func TestAnytimeStateBudgetFallback(t *testing.T) {
	set := hardSparseSet(26)
	req := Request{Tasks: set, Proc: testProcs["ideal"], Solver: "DP"}

	// DisableDelta keeps the exact attempts cheap — the budget error is
	// the same either way, and the armed engine retries it once.
	plain := New(Config{DisableDelta: true})
	if resp := plain.Solve(context.Background(), req); !errors.Is(resp.Err, core.ErrStateBudget) {
		t.Fatalf("plain engine: want ErrStateBudget, got %v", resp.Err)
	}

	armed := New(Config{DisableDelta: true, AnytimeBudget: 50 * time.Millisecond})
	resp := armed.Solve(context.Background(), req)
	checkAnytimeResponse(t, req, resp)
	if resp.Gap < 0 || resp.Gap > 0.5 {
		t.Fatalf("fallback gap bound out of range: %v", resp.Gap)
	}
	if st := armed.Stats(); st.AnytimeSolves != 1 {
		t.Fatalf("AnytimeSolves = %d, want 1", st.AnytimeSolves)
	}
}

// TestAnytimeExplicitSolverCached: an explicit "ANYTIME" request flows
// the normal registry path — fixed generations, deterministic, cacheable.
func TestAnytimeExplicitSolverCached(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 3, 24), Proc: testProcs["ideal"], Solver: "ANYTIME"}
	cold := e.Solve(context.Background(), req)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.Anytime || cold.CacheHit {
		t.Fatalf("explicit ANYTIME request mis-flagged: anytime %v, hit %v", cold.Anytime, cold.CacheHit)
	}
	in := core.Instance{Tasks: req.Tasks, Proc: req.Proc}
	if err := verify.CheckSolution(in, cold.Solution); err != nil {
		t.Fatal(err)
	}
	warm := e.Solve(context.Background(), req)
	if !warm.CacheHit {
		t.Fatal("second explicit ANYTIME solve missed the cache")
	}
	if !solutionsBitEqual(warm.Solution, cold.Solution) {
		t.Fatal("cached ANYTIME solution diverged")
	}
}
