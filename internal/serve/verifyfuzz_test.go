package serve

import (
	"context"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/verify"
)

// FuzzServeFingerprint holds the serving layer to its central promise on
// arbitrary instances: a cache hit, a batch-deduplicated response and a
// quantized-fingerprint engine all return solutions bit-identical to the
// cold solve, the cold solve itself passes the frame oracles, and the
// engine counters reconcile with the request history.
func FuzzServeFingerprint(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		solver := "DP"
		if in.Heterogeneous() {
			solver = "OPT" // DP is homogeneous-only; instances are ≤ 12 tasks
		}
		ctx := context.Background()
		req := Request{Tasks: in.Tasks, Proc: in.Proc, Solver: solver}

		e := New(Config{Spec: core.SolverSpec{Workers: 1}})
		cold := e.Solve(ctx, req)
		if cold.Err != nil {
			t.Fatalf("cold solve: %v", cold.Err)
		}
		if err := verify.CheckSolution(core.Instance{Tasks: in.Tasks, Proc: in.Proc}, cold.Solution); err != nil {
			t.Fatalf("cold solution fails oracles: %v", err)
		}

		warm := e.Solve(ctx, req)
		if warm.Err != nil {
			t.Fatalf("warm solve: %v", warm.Err)
		}
		if !warm.CacheHit {
			t.Fatal("second identical solve did not hit the plan cache")
		}
		if err := verify.BitIdenticalSolutions(warm.Solution, cold.Solution); err != nil {
			t.Fatalf("cache hit diverges from cold solve: %v", err)
		}

		for i, r := range e.SolveBatch(ctx, []Request{req, req}) {
			if r.Err != nil {
				t.Fatalf("batch[%d]: %v", i, r.Err)
			}
			if err := verify.BitIdenticalSolutions(r.Solution, cold.Solution); err != nil {
				t.Fatalf("batch[%d] diverges from cold solve: %v", i, err)
			}
		}

		st := e.Stats()
		if st.Requests != 4 {
			t.Fatalf("stats: %d requests recorded, want 4", st.Requests)
		}
		if st.Cache.Misses < 1 || st.Cache.Hits < 1 {
			t.Fatalf("stats do not reconcile: %+v", st)
		}

		// Quantized fingerprints may share cache slots but must never
		// change results: the bit-exact hit verification either confirms
		// the stored request or bypasses to a direct solve.
		qe := New(Config{Quantum: 0.25, Spec: core.SolverSpec{Workers: 1}})
		for i := 0; i < 2; i++ {
			r := qe.Solve(ctx, req)
			if r.Err != nil {
				t.Fatalf("quantized solve %d: %v", i, r.Err)
			}
			if err := verify.BitIdenticalSolutions(r.Solution, cold.Solution); err != nil {
				t.Fatalf("quantized solve %d diverges: %v", i, err)
			}
		}
	})
}
