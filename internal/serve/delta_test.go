package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// deltaReq builds a DP request over the shared generator.
func deltaReq(seed int64, n int) Request {
	return Request{
		Tasks:  mustSet(seed, n),
		Proc:   speed.Proc{Model: power.Cubic(), SMax: 1},
		Solver: "DP",
	}
}

// mutateTail returns req with one near-tail task's penalty changed — the
// Zipf-trafficked "near miss" shape the delta path exists for.
func mutateTail(req Request, back int, bump float64) Request {
	ts := append([]task.Task(nil), req.Tasks.Tasks...)
	i := len(ts) - 1 - back
	ts[i].Penalty += bump
	req.Tasks.Tasks = ts
	return req
}

// TestDeltaSolveBitIdentical drives a stream of near-miss mutants through
// the engine and pins every response to a direct cold solve, bit for bit,
// across every request flavour the delta path sees.
func TestDeltaSolveBitIdentical(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	base := deltaReq(7, 120)
	if r := e.Solve(ctx, base); r.Err != nil {
		t.Fatal(r.Err)
	}
	for i := 0; i < 24; i++ {
		mut := mutateTail(base, i%8, 0.01*float64(i+1))
		if i%3 == 1 {
			// Appends must warm too.
			ts := append([]task.Task(nil), mut.Tasks.Tasks...)
			mut.Tasks.Tasks = append(ts, task.Task{ID: 100000 + i, Cycles: 5, Penalty: 1})
		}
		got := e.Solve(ctx, mut)
		if got.Err != nil {
			t.Fatalf("mutant %d: %v", i, got.Err)
		}
		if got.CacheHit {
			t.Fatalf("mutant %d unexpectedly hit the exact cache", i)
		}
		want, err := directSolve(t, mut, core.SolverSpec{})
		if err != nil {
			t.Fatalf("mutant %d: direct: %v", i, err)
		}
		if err := verify.BitIdenticalSolutions(got.Solution, want); err != nil {
			t.Fatalf("mutant %d: %v", i, err)
		}
		in := core.Instance{Tasks: mut.Tasks, Proc: mut.Proc}
		if err := verify.CheckSolution(in, got.Solution); err != nil {
			t.Fatalf("mutant %d: oracle: %v", i, err)
		}
	}
	st := e.Stats()
	if st.DeltaSolves == 0 {
		t.Fatal("no mutant took the delta path")
	}
	if st.DeltaParents == 0 {
		t.Fatal("no parent states registered")
	}
	t.Logf("delta solves: %d of 24 misses, parents resident: %d", st.DeltaSolves, st.DeltaParents)
}

// TestDeltaDisabled checks the opt-out leaves results identical and the
// counters at zero.
func TestDeltaDisabled(t *testing.T) {
	ctx := context.Background()
	e := New(Config{DisableDelta: true})
	base := deltaReq(9, 60)
	if r := e.Solve(ctx, base); r.Err != nil {
		t.Fatal(r.Err)
	}
	mut := mutateTail(base, 0, 0.25)
	got := e.Solve(ctx, mut)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want, err := directSolve(t, mut, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.BitIdenticalSolutions(got.Solution, want); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.DeltaSolves != 0 || st.DeltaParents != 0 {
		t.Fatalf("disabled engine counted delta work: %+v", st)
	}
}

// TestDeltaReset checks Reset clears the similarity index so cold
// benchmarks stay cold.
func TestDeltaReset(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	base := deltaReq(11, 80)
	if r := e.Solve(ctx, base); r.Err != nil {
		t.Fatal(r.Err)
	}
	if e.Stats().DeltaParents == 0 {
		t.Fatal("no parent registered before reset")
	}
	e.Reset()
	if got := e.Stats().DeltaParents; got != 0 {
		t.Fatalf("reset left %d parents resident", got)
	}
	mut := mutateTail(base, 0, 0.5)
	if r := e.Solve(ctx, mut); r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := e.Stats().DeltaSolves; got != 0 {
		t.Fatalf("post-reset miss was delta-warmed (%d)", got)
	}
}

// TestDeltaEviction checks the parent LRU respects its count budget.
func TestDeltaEviction(t *testing.T) {
	ctx := context.Background()
	e := New(Config{DeltaParents: 2})
	for seed := int64(0); seed < 6; seed++ {
		if r := e.Solve(ctx, deltaReq(100+seed, 40)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := e.Stats().DeltaParents; got > 2 {
		t.Fatalf("budget 2, %d parents resident", got)
	}
}

// TestDeltaConcurrentSharedParent hammers one parent with concurrent
// near-miss mutants: evolve=false warm starts are read-only, so every
// response must still be bit-identical to a direct solve (run with
// -race).
func TestDeltaConcurrentSharedParent(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	base := deltaReq(13, 100)
	if r := e.Solve(ctx, base); r.Err != nil {
		t.Fatal(r.Err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mut := mutateTail(base, g%4, 0.001*float64(g+1))
			got := e.Solve(ctx, mut)
			if got.Err != nil {
				errs <- got.Err
				return
			}
			want, err := directSolve(t, mut, core.SolverSpec{})
			if err != nil {
				errs <- err
				return
			}
			if err := verify.BitIdenticalSolutions(got.Solution, want); err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestJumboPurge checks a jumbo request solves correctly and survives the
// post-solve scratch purge (the purge itself is a heap-size heuristic; the
// contract here is correctness before and after).
func TestJumboPurge(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	// 10⁴ unit tasks against a tight capacity keep the DP table narrow,
	// so the jumbo threshold is crossed without a jumbo-sized test bill.
	ts := make([]task.Task, jumboTasks)
	for i := range ts {
		ts[i] = task.Task{ID: i + 1, Cycles: 1 + int64(i%3), Penalty: float64(i%7) + 0.5}
	}
	jumbo := Request{
		Tasks:  task.Set{Tasks: ts, Deadline: 100},
		Proc:   speed.Proc{Model: power.Cubic(), SMax: 1},
		Solver: "DP",
	}
	if r := e.Solve(ctx, jumbo); r.Err != nil {
		t.Fatal(r.Err)
	}
	small := deltaReq(17, 30)
	got := e.Solve(ctx, small)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want, err := directSolve(t, small, core.SolverSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.BitIdenticalSolutions(got.Solution, want); err != nil {
		t.Fatal(err)
	}
}
