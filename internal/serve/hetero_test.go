package serve

// Tests for the heterogeneous profile-vector route: a Request with a
// non-empty Procs vector lands on the internal/multiproc tier, the
// response carries the certified HeteroInfo extension, cache hits return
// bit-identical solutions with a cloned extension, and an M=1 hetero
// request can never alias the single-processor encoding of the same
// profile.

import (
	"context"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

func heteroTestProcs() []speed.Proc {
	return []speed.Proc{
		{Model: power.Cubic(), SMax: 1},
		{Model: power.Cubic(), SMax: 0.5},
	}
}

func TestSolveHeteroMatchesDirect(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 3, 10), Procs: heteroTestProcs()}

	want, err := multiproc.SolveHeteroCertified(
		multiproc.HeteroInstance{Tasks: req.Tasks, Procs: req.Procs},
		multiproc.HeteroPartition{})
	if err != nil {
		t.Fatal(err)
	}

	cold := e.Solve(context.Background(), req)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.CacheHit {
		t.Error("first hetero solve reported a cache hit")
	}
	if cold.Hetero == nil {
		t.Fatal("hetero response missing its HeteroInfo extension")
	}
	if cold.Solution.Cost != want.Cost || cold.Solution.Energy != want.Energy {
		t.Errorf("cold solve cost %g/%g, direct %g/%g",
			cold.Solution.Cost, cold.Solution.Energy, want.Cost, want.Energy)
	}
	if cold.Hetero.LowerBound != want.LowerBound || cold.Hetero.Gap != want.Gap {
		t.Errorf("cold solve bound %g gap %g, direct %g gap %g",
			cold.Hetero.LowerBound, cold.Hetero.Gap, want.LowerBound, want.Gap)
	}
	if got := e.Stats().HeteroSolves; got != 1 {
		t.Errorf("HeteroSolves = %d after one cold solve, want 1", got)
	}

	warm := e.Solve(context.Background(), req)
	if !warm.CacheHit {
		t.Error("second identical hetero solve missed the cache")
	}
	if !solutionsBitEqual(warm.Solution, cold.Solution) {
		t.Error("cache hit diverged from the cold hetero solve")
	}
	if warm.Hetero == nil {
		t.Fatal("cache hit dropped the HeteroInfo extension")
	}
	if warm.Hetero == cold.Hetero {
		t.Error("cache hit returned the cached HeteroInfo without cloning")
	}
	if len(warm.Hetero.PerProc) != len(cold.Hetero.PerProc) ||
		warm.Hetero.LowerBound != cold.Hetero.LowerBound ||
		warm.Hetero.Gap != cold.Hetero.Gap {
		t.Error("cache hit HeteroInfo diverged from the cold solve")
	}
	if got := e.Stats().HeteroSolves; got != 1 {
		t.Errorf("HeteroSolves = %d after a cache hit, want 1", got)
	}
}

// TestHeteroNamedSolvers: the registry names route to their multiproc
// solvers, and a single-processor solver name refuses the vector.
func TestHeteroNamedSolvers(t *testing.T) {
	e := New(Config{})
	set := testSet(t, 5, 9)
	for _, name := range multiproc.HeteroSolverNames() {
		req := Request{Tasks: set, Procs: heteroTestProcs(), Solver: name}
		resp := e.Solve(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", name, resp.Err)
		}
		hs, _ := multiproc.HeteroSolverByName(name)
		want, err := multiproc.SolveHeteroCertified(
			multiproc.HeteroInstance{Tasks: set, Procs: req.Procs}, hs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Solution.Cost != want.Cost {
			t.Errorf("%s: cost %g, direct %g", name, resp.Solution.Cost, want.Cost)
		}
	}
	bad := e.Solve(context.Background(), Request{Tasks: set, Procs: heteroTestProcs(), Solver: "GREEDY"})
	if bad.Err == nil {
		t.Error("single-processor solver name accepted a processor vector")
	}
}

// TestHeteroFingerprintDistinctFromSingle: an M=1 hetero request and the
// single-processor request over the same profile are different artifacts
// (the hetero one reports a certified gap) and must key separately.
func TestHeteroFingerprintDistinctFromSingle(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	set := testSet(t, 2, 8)
	single := Request{Tasks: set, Proc: proc, Solver: "DP"}
	hetero := Request{Tasks: set, Procs: []speed.Proc{proc}, Solver: "DP"}
	if Fingerprint(single, 0) == Fingerprint(hetero, 0) {
		t.Fatal("M=1 hetero request aliased the single-processor fingerprint")
	}
	if requestsEqual(single, hetero) {
		t.Fatal("requestsEqual conflated the single and M=1 hetero forms")
	}

	e := New(Config{})
	a := e.Solve(context.Background(), single)
	b := e.Solve(context.Background(), hetero)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Hetero != nil {
		t.Error("single-processor response grew a HeteroInfo")
	}
	if b.Hetero == nil {
		t.Error("M=1 hetero response missing its HeteroInfo")
	}
	if b.CacheHit {
		t.Error("M=1 hetero solve was served from the single-processor entry")
	}
}

func TestHeteroBatchDedup(t *testing.T) {
	e := New(Config{})
	set := testSet(t, 7, 10)
	hreq := Request{Tasks: set, Procs: heteroTestProcs()}
	sreq := Request{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
	out := e.SolveBatch(context.Background(), []Request{hreq, sreq, hreq})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if out[0].Hetero == nil || out[2].Hetero == nil {
		t.Fatal("hetero batch responses missing their HeteroInfo")
	}
	if out[1].Hetero != nil {
		t.Error("single-processor batch response grew a HeteroInfo")
	}
	if !out[2].Coalesced {
		t.Error("duplicate hetero request was not coalesced")
	}
	if !solutionsBitEqual(out[0].Solution, out[2].Solution) {
		t.Error("coalesced hetero response diverged from its leader")
	}
	if got := e.Stats().HeteroSolves; got != 1 {
		t.Errorf("HeteroSolves = %d after a deduped batch, want 1", got)
	}
}

// TestHeteroWarmRefused: hetero entries never install via the replication
// path — the wire codec is single-processor and a pushed entry would lack
// its HeteroInfo.
func TestHeteroWarmRefused(t *testing.T) {
	e := New(Config{})
	req := Request{Tasks: testSet(t, 9, 8), Procs: heteroTestProcs()}
	if e.Warm(req, core.Solution{}) {
		t.Fatal("Warm installed a heterogeneous entry")
	}
	if got := e.Stats().Warmed; got != 0 {
		t.Errorf("Warmed = %d, want 0", got)
	}
}
