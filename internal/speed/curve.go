package speed

import "math"

// Curve is the energy curve E(w) of one processor over a fixed frame
// length, precomputed for repeated probing. Solvers that evaluate many
// candidate workloads against the same processor (the multiprocessor
// local search probes O(n²·M) of them per iteration) build one Curve per
// solve instead of paying Proc.Assign's validation and candidate
// enumeration on every probe.
//
// Exactness contract: Energy(w) reproduces Proc.Energy(w, d) bit for bit.
// On continuous-speed dormant-disable processors it mirrors the float
// operation sequence of Proc.assignContinuous exactly (same checks, same
// clamping, same order of arithmetic); every other flavour falls back to
// Proc.Energy itself. The zero Curve is not usable; construct with
// NewCurve.
type Curve struct {
	proc     Proc
	deadline float64

	fast       bool    // closed continuous-speed form applies
	capSlack   float64 // capacity·(1+feasibilitySlack)
	smin, smax float64
	pind       float64 // static power Pind
	coeff      float64 // dynamic power coefficient
	alpha      float64 // dynamic power exponent
	idleTotal  float64 // energy of an entirely idle frame, Pind·d
}

// NewCurve builds the curve for workloads executed within a frame of
// length d on p. The processor and frame length must already be valid (as
// Proc.Energy assumes); invalid workloads still price to +Inf.
func NewCurve(p Proc, d float64) Curve {
	m := p.Model
	return Curve{
		proc:      p,
		deadline:  d,
		fast:      p.Levels == nil && !p.DormantEnable,
		capSlack:  p.Capacity(d) * (1 + feasibilitySlack),
		smin:      p.SMin,
		smax:      p.SMax,
		pind:      m.Static(),
		coeff:     m.Coeff,
		alpha:     m.Alpha,
		idleTotal: m.Static() * d,
	}
}

// Capacity returns the largest schedulable workload smax·d.
func (c *Curve) Capacity() float64 { return c.proc.Capacity(c.deadline) }

// Fits reports whether a workload of w cycles is schedulable, with the
// same float slack Proc.Assign applies.
func (c *Curve) Fits(w float64) bool { return w <= c.capSlack }

// Energy returns E(w) = Proc.Energy(w, deadline), +Inf when infeasible.
func (c *Curve) Energy(w float64) float64 {
	if !c.fast {
		return c.proc.Energy(w, c.deadline)
	}
	// w != w catches NaN, w < 0 catches -Inf, the capacity check catches
	// +Inf — the same rejections Proc.Assign makes.
	if w < 0 || w != w {
		return math.Inf(1)
	}
	if w > c.capSlack {
		return math.Inf(1)
	}
	if w == 0 {
		return c.idleTotal
	}
	// Proc.assignContinuous, dormant-disable branch: run at the slowest
	// deadline- and hardware-feasible speed. The branches compute the same
	// values as the math.Min(math.Max(·)) clamp there — the operands are
	// never NaN and never signed zeros of opposite sign.
	s := w / c.deadline
	if s < c.smin {
		s = c.smin
	}
	if s > c.smax {
		s = c.smax
	}
	exec := w / s
	var dyn float64
	if s > 0 {
		dyn = c.coeff * math.Pow(s, c.alpha)
	}
	return (c.pind+dyn)*exec + c.pind*(c.deadline-exec)
}
