package speed

import (
	"math"

	"dvsreject/internal/power"
)

// Curve is the energy curve E(w) of one processor over a fixed frame
// length, precomputed for repeated probing. Solvers that evaluate many
// candidate workloads against the same processor (the multiprocessor
// local search probes O(n²·M) of them per iteration; the rejection DP's
// final scan probes one per frontier level) build one Curve per solve
// instead of paying Proc.Assign's validation and candidate enumeration on
// every probe.
//
// Exactness contract: Energy(w) reproduces Proc.Energy(w, d) bit for bit.
// On continuous-speed dormant-disable processors it mirrors the float
// operation sequence of Proc.assignContinuous exactly (same checks, same
// clamping, same order of arithmetic). On discrete-ladder processors it
// mirrors Proc.assignDiscrete with the per-level power draws memoized in
// a power.PdTable — each level's P(s) is computed once through the same
// Pind + Pd(s) sum and reused, so every probe returns the identical bits
// without the per-level math.Pow. Every other flavour falls back to
// Proc.Energy itself. The zero Curve is not usable; construct with
// NewCurve.
type Curve struct {
	proc     Proc
	deadline float64

	fast       bool    // closed continuous-speed form applies
	capSlack   float64 // capacity·(1+feasibilitySlack)
	smin, smax float64
	pind       float64 // static power Pind
	coeff      float64 // dynamic power coefficient
	alpha      float64 // dynamic power exponent
	idleTotal  float64 // energy of an entirely idle frame, Pind·d

	fastDiscrete bool // memoized discrete-ladder form applies
	levels       power.LevelSet
	pd           power.PdTable // Pd(s) per level, seeded once
	dormant      bool
	esw          float64
	idleFrame    float64 // energy of an entirely idle frame, idleCost(d)
}

// NewCurve builds the curve for workloads executed within a frame of
// length d on p. The processor and frame length must already be valid (as
// Proc.Energy assumes); invalid workloads still price to +Inf. Discrete
// processors seed a fresh Pd table; batch callers sharing one processor
// across many solves can reuse a prebuilt table via NewCurveWithPd.
func NewCurve(p Proc, d float64) Curve {
	var pd power.PdTable
	if p.Levels != nil {
		pd = power.NewPdTable(p.Model, p.Levels)
	}
	return NewCurveWithPd(p, d, pd)
}

// NewCurveWithPd is NewCurve reusing a memo table built by
// power.NewPdTable(p.Model, p.Levels); the table is ignored on
// continuous-speed processors.
func NewCurveWithPd(p Proc, d float64, pd power.PdTable) Curve {
	m := p.Model
	c := Curve{
		proc:      p,
		deadline:  d,
		fast:      p.Levels == nil && !p.DormantEnable,
		capSlack:  p.Capacity(d) * (1 + feasibilitySlack),
		smin:      p.SMin,
		smax:      p.SMax,
		pind:      m.Static(),
		coeff:     m.Coeff,
		alpha:     m.Alpha,
		idleTotal: m.Static() * d,
	}
	if p.Levels != nil {
		c.fastDiscrete = true
		c.levels = p.Levels
		c.pd = pd
		c.dormant = p.DormantEnable
		c.esw = p.Esw
		c.idleFrame, _ = p.idleCost(d)
	}
	return c
}

// Capacity returns the largest schedulable workload smax·d.
func (c *Curve) Capacity() float64 { return c.proc.Capacity(c.deadline) }

// Fits reports whether a workload of w cycles is schedulable, with the
// same float slack Proc.Assign applies.
func (c *Curve) Fits(w float64) bool { return w <= c.capSlack }

// Energy returns E(w) = Proc.Energy(w, deadline), +Inf when infeasible.
func (c *Curve) Energy(w float64) float64 {
	if c.fast {
		// w != w catches NaN, w < 0 catches -Inf, the capacity check catches
		// +Inf — the same rejections Proc.Assign makes.
		if w < 0 || w != w {
			return math.Inf(1)
		}
		if w > c.capSlack {
			return math.Inf(1)
		}
		if w == 0 {
			return c.idleTotal
		}
		// Proc.assignContinuous, dormant-disable branch: run at the slowest
		// deadline- and hardware-feasible speed. The branches compute the same
		// values as the math.Min(math.Max(·)) clamp there — the operands are
		// never NaN and never signed zeros of opposite sign.
		s := w / c.deadline
		if s < c.smin {
			s = c.smin
		}
		if s > c.smax {
			s = c.smax
		}
		exec := w / s
		var dyn float64
		if s > 0 {
			dyn = c.coeff * math.Pow(s, c.alpha)
		}
		return (c.pind+dyn)*exec + c.pind*(c.deadline-exec)
	}
	if c.fastDiscrete {
		return c.energyDiscrete(w)
	}
	return c.proc.Energy(w, c.deadline)
}

// energyDiscrete mirrors Proc.assignDiscrete (and Assign's surrounding
// checks) with the per-level powers read from the memo table: the same
// candidates in the same order, the same slack comparisons, the same
// ExecEnergy + IdleEnergy summation order, so the minimum and its
// tie-breaks are bit-identical to Proc.Energy.
func (c *Curve) energyDiscrete(w float64) float64 {
	if w < 0 || w != w {
		return math.Inf(1)
	}
	if w > c.capSlack {
		return math.Inf(1)
	}
	if w == 0 {
		return c.idleFrame
	}
	d := c.deadline
	best := math.Inf(1)

	ideal := w / d
	if lo, hi, ok := c.levels.Bracket(ideal); ok && lo != hi {
		// Split: tLo·lo + tHi·hi = w, tLo + tHi = d; no idle time.
		tHi := (w - lo*d) / (hi - lo)
		tLo := d - tHi
		if tHi >= -feasibilitySlack && tLo >= -feasibilitySlack {
			tHi = math.Max(tHi, 0)
			tLo = math.Max(tLo, 0)
			if total := (c.levelPower(lo)*tLo + c.levelPower(hi)*tHi) + 0; total < best {
				best = total
			}
		}
	}

	for i, s := range c.levels {
		if s*d < w*(1-feasibilitySlack) {
			continue // level alone cannot meet the deadline
		}
		exec := w / s
		if exec > d {
			exec = d
		}
		total := (c.pind + c.pd.At(i)) * exec
		total += c.idleCost(d - exec)
		if total < best {
			best = total
		}
	}
	return best
}

// levelPower returns P(s) = Pind + Pd(s) for a grid speed, from the memo
// table — the same sum Model.Power computes, with Pd read instead of
// recomputed. Off-grid speeds cannot occur (Bracket returns grid values);
// the fallback keeps the function total.
func (c *Curve) levelPower(s float64) float64 {
	if pd, ok := c.pd.Lookup(s); ok {
		return c.pind + pd
	}
	return c.proc.Model.Power(s)
}

// idleCost mirrors Proc.idleCost on the cached scalars.
func (c *Curve) idleCost(dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	awake := c.pind * dur
	if c.dormant && c.esw < awake {
		return c.esw
	}
	return awake
}
