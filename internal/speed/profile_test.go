package speed

import (
	"math"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name    string
		pr      Profile
		wantErr bool
	}{
		{"empty", Profile{}, false},
		{"single", Constant(0.5, 0, 10), false},
		{"two contiguous", Profile{{0, 5, 0.5}, {5, 10, 1}}, false},
		{"gap allowed", Profile{{0, 5, 0.5}, {7, 10, 1}}, false},
		{"overlap", Profile{{0, 5, 0.5}, {4, 10, 1}}, true},
		{"empty interval", Profile{{5, 5, 0.5}}, true},
		{"reversed interval", Profile{{5, 2, 0.5}}, true},
		{"negative speed", Profile{{0, 5, -0.5}}, true},
		{"nan speed", Profile{{0, 5, math.NaN()}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.pr.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestProfileSpeedAt(t *testing.T) {
	pr := Profile{{0, 5, 0.5}, {5, 10, 1}}
	tests := []struct{ t, want float64 }{
		{-1, 0}, {0, 0.5}, {4.99, 0.5}, {5, 1}, {9.99, 1}, {10, 0}, {11, 0},
	}
	for _, tt := range tests {
		if got := pr.SpeedAt(tt.t); got != tt.want {
			t.Errorf("SpeedAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestProfileCycles(t *testing.T) {
	pr := Profile{{0, 5, 0.5}, {5, 10, 1}}
	tests := []struct{ from, to, want float64 }{
		{0, 10, 7.5},
		{0, 5, 2.5},
		{5, 10, 5},
		{2.5, 7.5, 3.75},
		{10, 20, 0},
		{-5, 0, 0},
	}
	for _, tt := range tests {
		if got := pr.Cycles(tt.from, tt.to); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Cycles(%v, %v) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestProfileEnd(t *testing.T) {
	if got := (Profile{}).End(); got != 0 {
		t.Errorf("empty End() = %v, want 0", got)
	}
	if got := (Profile{{0, 5, 1}, {5, 8, 0.5}}).End(); got != 8 {
		t.Errorf("End() = %v, want 8", got)
	}
}

func TestAssignmentProfile(t *testing.T) {
	a := Assignment{LoSpeed: 0.5, LoTime: 5, HiSpeed: 1, HiTime: 3}
	pr := a.Profile(2)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pr) != 2 {
		t.Fatalf("len(profile) = %d, want 2", len(pr))
	}
	if pr[0] != (Segment{2, 7, 0.5}) || pr[1] != (Segment{7, 10, 1}) {
		t.Errorf("profile = %+v", pr)
	}
	// Cycles delivered must match the assignment's workload.
	want := a.LoSpeed*a.LoTime + a.HiSpeed*a.HiTime
	if got := pr.Cycles(0, 20); math.Abs(got-want) > 1e-12 {
		t.Errorf("profile cycles = %v, want %v", got, want)
	}
	// Single-segment assignment renders one segment.
	single := Assignment{LoSpeed: 0.7, LoTime: 4}
	if got := single.Profile(0); len(got) != 1 {
		t.Errorf("single profile = %+v", got)
	}
}
