package speed

import (
	"fmt"
	"math"
)

// Segment is one constant-speed interval of a processor schedule.
type Segment struct {
	Start, End float64 // half-open interval [Start, End)
	Speed      float64 // processor speed during the interval, ≥ 0
}

// Duration returns End − Start.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Profile is a piecewise-constant processor speed schedule: a sequence of
// contiguous segments in ascending time order. Time outside all segments is
// speed 0 (idle).
type Profile []Segment

// Validate reports whether segments are well-formed, non-overlapping and
// ascending.
func (pr Profile) Validate() error {
	prev := math.Inf(-1)
	for i, seg := range pr {
		if math.IsNaN(seg.Start) || math.IsNaN(seg.End) || seg.End <= seg.Start {
			return fmt.Errorf("speed: profile segment %d has interval [%v, %v)", i, seg.Start, seg.End)
		}
		if seg.Speed < 0 || math.IsNaN(seg.Speed) {
			return fmt.Errorf("speed: profile segment %d has speed %v", i, seg.Speed)
		}
		if seg.Start < prev {
			return fmt.Errorf("speed: profile segment %d starts at %v before previous end %v", i, seg.Start, prev)
		}
		prev = seg.End
	}
	return nil
}

// SpeedAt returns the processor speed at time t.
func (pr Profile) SpeedAt(t float64) float64 {
	for _, seg := range pr {
		if t >= seg.Start && t < seg.End {
			return seg.Speed
		}
	}
	return 0
}

// Cycles returns the number of cycles the processor delivers in [from, to).
func (pr Profile) Cycles(from, to float64) float64 {
	var c float64
	for _, seg := range pr {
		lo := math.Max(from, seg.Start)
		hi := math.Min(to, seg.End)
		if hi > lo {
			c += (hi - lo) * seg.Speed
		}
	}
	return c
}

// End returns the end time of the last segment, or 0 for an empty profile.
func (pr Profile) End() float64 {
	if len(pr) == 0 {
		return 0
	}
	return pr[len(pr)-1].End
}

// Constant returns a single-segment profile at the given speed.
func Constant(speed, start, end float64) Profile {
	return Profile{{Start: start, End: end, Speed: speed}}
}

// Profile renders the assignment as a speed schedule beginning at start:
// first the low-speed segment, then the high-speed segment (if any). Idle
// time is simply not covered by any segment.
func (a Assignment) Profile(start float64) Profile {
	var pr Profile
	t := start
	if a.LoTime > 0 {
		pr = append(pr, Segment{Start: t, End: t + a.LoTime, Speed: a.LoSpeed})
		t += a.LoTime
	}
	if a.HiTime > 0 {
		pr = append(pr, Segment{Start: t, End: t + a.HiTime, Speed: a.HiSpeed})
	}
	return pr
}
