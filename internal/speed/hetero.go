package speed

import (
	"fmt"
	"math"

	"dvsreject/internal/power"
)

// EffectiveCycles returns the effective workload W̃ = Σ ci·ρi^(1/α) of tasks
// with heterogeneous dynamic power coefficients ρi under the polynomial
// model exponent α. Minimizing Σ ρi·c·si^(α−1)·ci subject to Σ ci/si = D by
// the Lagrange multiplier method yields per-task speeds si ∝ ρi^(−1/α) and
// total dynamic energy Coeff·W̃^α / D^(α−1) — exactly the homogeneous energy
// of a workload of W̃ cycles. The rejection solvers therefore treat
// heterogeneous instances by substituting effective cycles.
func EffectiveCycles(cycles []int64, rho []float64, alpha float64) float64 {
	var w float64
	for i, c := range cycles {
		r := 1.0
		if i < len(rho) && rho[i] > 0 {
			r = rho[i]
		}
		w += float64(c) * math.Pow(r, 1/alpha)
	}
	return w
}

// HeteroAssignment is the per-task optimal speed assignment for tasks with
// heterogeneous power coefficients executed back-to-back within one frame.
type HeteroAssignment struct {
	Speeds []float64 // execution speed of each task
	Times  []float64 // execution time of each task (Σ ≤ D)
	Energy float64   // total dynamic energy
}

// AssignHeterogeneous computes the minimum-dynamic-energy per-task speeds
// for executing all tasks sequentially within a frame of length d, subject
// to si ≤ smax. Tasks whose unconstrained optimal speed exceeds smax are
// clamped to smax and the remaining slack is redistributed (KKT active-set
// iteration). It returns ErrInfeasible when even smax cannot fit the total
// workload.
//
// The model's Pind is ignored here: the heterogeneous analysis of the paper
// family (the LEET/LEUF line) targets dormant-disable processors whose
// static energy is an additive constant.
func AssignHeterogeneous(m power.Polynomial, cycles []int64, rho []float64, d, smax float64) (HeteroAssignment, error) {
	n := len(cycles)
	if n == 0 {
		return HeteroAssignment{}, nil
	}
	if d <= 0 {
		return HeteroAssignment{}, fmt.Errorf("speed: frame length = %v, want > 0", d)
	}
	var total float64
	for _, c := range cycles {
		if c <= 0 {
			return HeteroAssignment{}, fmt.Errorf("speed: cycles = %d, want > 0", c)
		}
		total += float64(c)
	}
	if total > smax*d*(1+feasibilitySlack) {
		return HeteroAssignment{}, fmt.Errorf("%w: W = %g, capacity = %g", ErrInfeasible, total, smax*d)
	}

	coeff := func(i int) float64 {
		if i < len(rho) && rho[i] > 0 {
			return rho[i]
		}
		return 1
	}

	clamped := make([]bool, n)
	speeds := make([]float64, n)
	for iter := 0; iter <= n; iter++ {
		// Time left after clamped tasks run at smax.
		slack := d
		var wEff float64
		for i := 0; i < n; i++ {
			if clamped[i] {
				slack -= float64(cycles[i]) / smax
			} else {
				wEff += float64(cycles[i]) * math.Pow(coeff(i), 1/m.Alpha)
			}
		}
		if wEff == 0 {
			break // everything clamped
		}
		if slack <= 0 {
			return HeteroAssignment{}, fmt.Errorf("%w: clamped workload fills the frame", ErrInfeasible)
		}
		k := wEff / slack
		violated := false
		for i := 0; i < n; i++ {
			if clamped[i] {
				continue
			}
			speeds[i] = k * math.Pow(coeff(i), -1/m.Alpha)
			if speeds[i] > smax*(1+feasibilitySlack) {
				clamped[i] = true
				violated = true
			}
		}
		if !violated {
			break
		}
	}

	a := HeteroAssignment{Speeds: speeds, Times: make([]float64, n)}
	for i := 0; i < n; i++ {
		if clamped[i] {
			speeds[i] = smax
		}
		speeds[i] = math.Min(speeds[i], smax)
		a.Times[i] = float64(cycles[i]) / speeds[i]
		// Dynamic power of task i at speed s is ρi·Coeff·s^α, so its
		// energy for ci cycles is ρi·Coeff·s^(α−1)·ci.
		a.Energy += coeff(i) * m.Coeff * math.Pow(speeds[i], m.Alpha-1) * float64(cycles[i])
	}
	return a, nil
}
