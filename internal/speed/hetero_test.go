package speed

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/power"
)

func TestEffectiveCyclesHomogeneous(t *testing.T) {
	// With all ρ = 1 (or unset), effective cycles equal plain cycles.
	got := EffectiveCycles([]int64{3, 4, 5}, nil, 3)
	if math.Abs(got-12) > 1e-12 {
		t.Errorf("EffectiveCycles = %v, want 12", got)
	}
	got = EffectiveCycles([]int64{3, 4, 5}, []float64{1, 1, 1}, 3)
	if math.Abs(got-12) > 1e-12 {
		t.Errorf("EffectiveCycles = %v, want 12", got)
	}
}

func TestEffectiveCyclesWeighted(t *testing.T) {
	// ρ = 8, α = 3 → weight 8^(1/3) = 2.
	got := EffectiveCycles([]int64{5}, []float64{8}, 3)
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("EffectiveCycles = %v, want 10", got)
	}
}

func TestAssignHeterogeneousMatchesClosedForm(t *testing.T) {
	// Unconstrained regime: energy = Coeff·W̃^α / D^(α−1).
	m := power.Cubic()
	cycles := []int64{3, 4, 5}
	rho := []float64{1, 2, 0.5}
	d := 20.0
	a, err := AssignHeterogeneous(m, cycles, rho, d, 10 /* generous smax */)
	if err != nil {
		t.Fatal(err)
	}
	wEff := EffectiveCycles(cycles, rho, m.Alpha)
	want := m.Coeff * math.Pow(wEff, m.Alpha) / math.Pow(d, m.Alpha-1)
	if math.Abs(a.Energy-want) > 1e-9 {
		t.Errorf("energy = %v, closed form %v", a.Energy, want)
	}
	// The frame must be exactly filled at the optimum.
	var busy float64
	for _, tt := range a.Times {
		busy += tt
	}
	if math.Abs(busy-d) > 1e-9 {
		t.Errorf("busy time = %v, want %v", busy, d)
	}
	// Speeds follow si ∝ ρi^(−1/α): the higher the coefficient, the slower.
	if !(a.Speeds[1] < a.Speeds[0] && a.Speeds[0] < a.Speeds[2]) {
		t.Errorf("speed ordering violated: %v", a.Speeds)
	}
}

func TestAssignHeterogeneousHomogeneousReduces(t *testing.T) {
	// All ρ equal: every task runs at the common speed W/D.
	m := power.Cubic()
	cycles := []int64{2, 3, 5}
	a, err := AssignHeterogeneous(m, cycles, nil, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range a.Speeds {
		if math.Abs(s-1.0) > 1e-9 { // W/D = 10/10 = 1
			t.Errorf("speed[%d] = %v, want 1.0", i, s)
		}
	}
}

func TestAssignHeterogeneousClamping(t *testing.T) {
	// One task with a tiny coefficient wants to sprint beyond smax; it must
	// be clamped and the others redistributed.
	m := power.Cubic()
	cycles := []int64{5, 5}
	rho := []float64{0.001, 1}
	d := 12.0
	smax := 1.0
	a, err := AssignHeterogeneous(m, cycles, rho, d, smax)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speeds[0] > smax+1e-9 || a.Speeds[1] > smax+1e-9 {
		t.Fatalf("speeds exceed smax: %v", a.Speeds)
	}
	// Compare against a brute-force search over the time split.
	brute := math.Inf(1)
	for t1 := 5.0; t1 <= d-5.0+1e-9; t1 += 0.0005 {
		t2 := d - t1
		s1, s2 := 5/t1, 5/t2
		if s1 > smax || s2 > smax {
			continue
		}
		e := rho[0]*m.Coeff*math.Pow(s1, m.Alpha-1)*5 + rho[1]*m.Coeff*math.Pow(s2, m.Alpha-1)*5
		if e < brute {
			brute = e
		}
	}
	if a.Energy > brute*(1+1e-3) {
		t.Errorf("KKT energy = %v worse than brute force %v", a.Energy, brute)
	}
}

func TestAssignHeterogeneousInfeasible(t *testing.T) {
	m := power.Cubic()
	_, err := AssignHeterogeneous(m, []int64{20}, nil, 10, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestAssignHeterogeneousBadArgs(t *testing.T) {
	m := power.Cubic()
	if _, err := AssignHeterogeneous(m, []int64{1}, nil, 0, 1); err == nil {
		t.Error("zero frame length accepted")
	}
	if _, err := AssignHeterogeneous(m, []int64{0}, nil, 10, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	if a, err := AssignHeterogeneous(m, nil, nil, 10, 1); err != nil || a.Energy != 0 {
		t.Errorf("empty set = (%+v, %v), want zero assignment", a, err)
	}
}
