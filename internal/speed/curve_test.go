package speed

import (
	"math"
	"testing"

	"dvsreject/internal/power"
)

// TestCurveMatchesProcEnergy pins the Curve's exactness contract: over
// every processor flavour and a dense workload grid (including the
// capacity edge, zero, and invalid inputs), Curve.Energy must reproduce
// Proc.Energy bit for bit.
func TestCurveMatchesProcEnergy(t *testing.T) {
	procs := map[string]Proc{
		"cubic-ideal":    {Model: power.Cubic(), SMax: 1},
		"xscale-leaky":   {Model: power.XScale(), SMin: 0.15, SMax: 1},
		"xscale-smin0":   {Model: power.XScale(), SMax: 0.8},
		"discrete":       {Model: power.XScale(), Levels: power.XScaleLevels()},
		"dormant":        {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.3},
		"dormant-costly": {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 1e6},
	}
	for name, p := range procs {
		for _, d := range []float64{1, 37.5, 1000} {
			c := NewCurve(p, d)
			cap := p.Capacity(d)
			ws := []float64{0, 1e-9, 0.1, 1, d / 3, cap / 2, cap * 0.999,
				cap, cap * (1 + 1e-10), cap * (1 + 1e-9), cap * 1.01,
				-1, math.NaN(), math.Inf(1)}
			for _, w := range ws {
				got := c.Energy(w)
				want := p.Energy(w, d)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%s d=%g: Curve.Energy(%g) = %v, Proc.Energy = %v", name, d, w, got, want)
				}
			}
			if c.Capacity() != cap {
				t.Errorf("%s d=%g: Capacity = %v, want %v", name, d, c.Capacity(), cap)
			}
			if !c.Fits(cap) || c.Fits(cap*1.01) {
				t.Errorf("%s d=%g: Fits thresholds off", name, d)
			}
		}
	}
}
