package speed

import (
	"math"
	"testing"
	"testing/quick"

	"dvsreject/internal/power"
)

// Property: E(W) is non-decreasing in W for every processor flavour.
func TestQuickEnergyMonotone(t *testing.T) {
	procs := []Proc{
		{Model: power.Cubic(), SMax: 1},
		{Model: power.XScale(), SMax: 1},
		{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.2},
		{Model: power.XScale(), Levels: power.XScaleLevels()},
		{Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 0.2},
	}
	f := func(wa, wb uint16) bool {
		d := 100.0
		lo := float64(wa%10000) / 100 // [0, 100)
		hi := lo + float64(wb%1000)/100 + 1e-6
		if hi > d {
			return true
		}
		for _, p := range procs {
			if p.Energy(lo, d) > p.Energy(hi, d)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: E(W) is convex on the leakage-free continuous processor
// (midpoint below chord).
func TestQuickContinuousEnergyConvex(t *testing.T) {
	p := Proc{Model: power.Cubic(), SMax: 1}
	d := 50.0
	f := func(wa, wb uint16) bool {
		a := float64(wa%5000) / 100
		b := float64(wb%5000) / 100
		mid := (a + b) / 2
		return p.Energy(mid, d) <= (p.Energy(a, d)+p.Energy(b, d))/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the closed form E(W) = W³/D² holds on the leakage-free cubic
// continuous processor with smin = 0.
func TestQuickCubicClosedForm(t *testing.T) {
	p := Proc{Model: power.Cubic(), SMax: 1}
	f := func(w, dd uint16) bool {
		d := 10 + float64(dd%1000)
		W := math.Mod(float64(w), d) // keep feasible
		got := p.Energy(W, d)
		want := math.Pow(W, 3) / (d * d)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the discrete assignment delivers exactly W cycles and fits in
// the frame.
func TestQuickDiscreteDeliversWorkload(t *testing.T) {
	p := Proc{Model: power.XScale(), Levels: power.XScaleLevels()}
	d := 25.0
	f := func(w uint16) bool {
		W := float64(w%250) / 10 // [0, 25): feasible at smax = 1
		a, err := p.Assign(W, d)
		if err != nil {
			return false
		}
		delivered := a.LoSpeed*a.LoTime + a.HiSpeed*a.HiTime
		return math.Abs(delivered-W) <= 1e-6 && a.BusyTime() <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: free shutdown is never worse than costly shutdown, which is
// never worse than no dormant mode at all.
func TestQuickDormantOrdering(t *testing.T) {
	m := power.XScale()
	f := func(w, e uint16) bool {
		d := 20.0
		W := float64(w%200) / 10
		esw := float64(e%400) / 100
		free := Proc{Model: m, SMax: 1, DormantEnable: true, Esw: 0}
		some := Proc{Model: m, SMax: 1, DormantEnable: true, Esw: esw}
		none := Proc{Model: m, SMax: 1}
		ef, es, en := free.Energy(W, d), some.Energy(W, d), none.Energy(W, d)
		return ef <= es+1e-9 && es <= en+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the heterogeneous KKT solution is never beaten by a uniform
// common-speed schedule of the same tasks.
func TestQuickHeteroBeatsCommonSpeed(t *testing.T) {
	m := power.Cubic()
	f := func(c1, c2, c3 uint8, r1, r2, r3 uint8) bool {
		cycles := []int64{int64(c1%50) + 1, int64(c2%50) + 1, int64(c3%50) + 1}
		rho := []float64{
			0.25 + float64(r1%16)/4,
			0.25 + float64(r2%16)/4,
			0.25 + float64(r3%16)/4,
		}
		var w float64
		for _, c := range cycles {
			w += float64(c)
		}
		d := w * 1.5 // comfortably feasible at smax = 1... need s = 2/3
		a, err := AssignHeterogeneous(m, cycles, rho, d, 1)
		if err != nil {
			return false
		}
		s := w / d
		var common float64
		for i, c := range cycles {
			common += rho[i] * m.Coeff * math.Pow(s, m.Alpha-1) * float64(c)
		}
		return a.Energy <= common+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
