// Package speed computes optimal speed assignments and their energy for
// executing a workload of W cycles within a frame of length D on a DVS
// processor.
//
// It implements the three classical regimes of the DATE-era literature:
//
//   - ideal (continuous-speed) processors without leakage: run as slowly as
//     the deadline allows;
//   - leakage-aware dormant-enable processors: never execute below the
//     critical speed, and account idle intervals as min(Pind·Δ, Esw)
//     (stay idle vs. shut down, break-even time Esw/Pind);
//   - non-ideal (discrete-speed) processors: the Ishihara–Yasuura two-level
//     theorem — the optimal schedule uses at most the two available speeds
//     adjacent to the ideal one.
//
// All results are returned as an Assignment, which both reports the energy
// breakdown and can be rendered into a Profile for the EDF simulator.
package speed

import (
	"errors"
	"fmt"
	"math"

	"dvsreject/internal/power"
)

// ErrInfeasible reports that the workload cannot complete by the deadline
// even at the maximum speed.
var ErrInfeasible = errors.New("speed: workload exceeds smax·D, no feasible assignment")

// feasibilitySlack absorbs floating-point error when checking W ≤ smax·D.
const feasibilitySlack = 1e-9

// Proc describes one DVS processor.
type Proc struct {
	Model  power.Polynomial
	SMin   float64        // slowest available speed (ideal processors), ≥ 0
	SMax   float64        // fastest available speed, > 0
	Levels power.LevelSet // non-nil for non-ideal processors; bounds SMin/SMax are then ignored

	// DormantEnable marks a processor that can be shut down while idle.
	// A dormant-disable processor pays Pind for the whole frame.
	DormantEnable bool
	// Esw is the energy overhead of one shutdown/wakeup cycle
	// (dormant-enable processors only).
	Esw float64
}

// Validate reports whether the processor description is consistent.
func (p Proc) Validate() error {
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if p.Levels != nil {
		if err := p.Levels.Validate(); err != nil {
			return err
		}
	} else {
		if p.SMax <= 0 || math.IsNaN(p.SMax) || math.IsInf(p.SMax, 0) {
			return fmt.Errorf("speed: smax = %v, want finite > 0", p.SMax)
		}
		if p.SMin < 0 || p.SMin > p.SMax || math.IsNaN(p.SMin) {
			return fmt.Errorf("speed: smin = %v, want 0 ≤ smin ≤ smax", p.SMin)
		}
	}
	if p.Esw < 0 || math.IsNaN(p.Esw) {
		return fmt.Errorf("speed: Esw = %v, want ≥ 0", p.Esw)
	}
	return nil
}

// MaxSpeed returns the fastest speed the processor offers.
func (p Proc) MaxSpeed() float64 {
	if p.Levels != nil {
		return p.Levels.Max()
	}
	return p.SMax
}

// Capacity returns the largest workload schedulable within a frame of
// length d: MaxSpeed()·d.
func (p Proc) Capacity(d float64) float64 { return p.MaxSpeed() * d }

// Assignment is an optimal speed assignment for one frame together with its
// energy breakdown.
type Assignment struct {
	// Segments of execution: either one constant speed, or the two-level
	// split on a discrete processor. LoTime may be zero.
	LoSpeed, HiSpeed float64
	LoTime, HiTime   float64

	ExecEnergy float64 // energy consumed while executing (includes Pind during execution)
	IdleEnergy float64 // energy consumed while idle within the frame (Pind·Δ, or Esw if shut down)
	Shutdown   bool    // true when the idle interval is spent in the dormant mode

	Total float64 // ExecEnergy + IdleEnergy
}

// BusyTime returns the total execution time LoTime + HiTime.
func (a Assignment) BusyTime() float64 { return a.LoTime + a.HiTime }

// Assign computes the minimum-energy speed assignment executing W cycles
// within a frame of length d on processor p. W = 0 yields the idle frame
// (idle energy only, no shutdown overhead since the processor never wakes).
// It returns ErrInfeasible when W exceeds the frame capacity.
func (p Proc) Assign(w, d float64) (Assignment, error) {
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return Assignment{}, fmt.Errorf("speed: frame length = %v, want finite > 0", d)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Assignment{}, fmt.Errorf("speed: workload = %v, want finite ≥ 0", w)
	}
	if w > p.Capacity(d)*(1+feasibilitySlack) {
		return Assignment{}, fmt.Errorf("%w: W = %g, capacity = %g", ErrInfeasible, w, p.Capacity(d))
	}
	if w == 0 {
		return p.idleFrame(d), nil
	}
	if p.Levels != nil {
		return p.assignDiscrete(w, d), nil
	}
	return p.assignContinuous(w, d), nil
}

// idleFrame charges an entirely idle frame: min(Pind·d, Esw) on a
// dormant-enable processor, Pind·d otherwise.
func (p Proc) idleFrame(d float64) Assignment {
	var a Assignment
	a.IdleEnergy, a.Shutdown = p.idleCost(d)
	a.Total = a.IdleEnergy
	return a
}

// assignContinuous handles ideal processors.
func (p Proc) assignContinuous(w, d float64) Assignment {
	// The slowest deadline- and hardware-feasible speed.
	sMinFeasible := math.Max(w/d, p.SMin)
	sMinFeasible = math.Min(sMinFeasible, p.SMax) // guard FP slack at full load

	if !p.DormantEnable {
		// Pind is paid for the whole frame regardless, so minimizing
		// Pd(s)·W/s means running as slowly as possible.
		s := sMinFeasible
		exec := w / s
		return p.finish(Assignment{
			LoSpeed:    s,
			LoTime:     exec,
			ExecEnergy: p.Model.Power(s) * exec,
			IdleEnergy: p.Model.Static() * (d - exec),
		})
	}

	// Dormant-enable: compare the "stretch" strategy (run at the slowest
	// feasible speed, idle awake for the remainder) with the "sprint and
	// sleep" strategy (run at the critical-speed-clamped speed, shut down).
	best := Assignment{Total: math.Inf(1)}
	candidates := []float64{sMinFeasible}
	if star := p.Model.CriticalSpeed(); star > sMinFeasible && star <= p.SMax {
		candidates = append(candidates, star)
	} else if star > p.SMax {
		candidates = append(candidates, p.SMax)
	}
	for _, s := range candidates {
		exec := w / s
		idleDur := d - exec
		if idleDur < 0 {
			idleDur = 0
		}
		a := Assignment{
			LoSpeed:    s,
			LoTime:     exec,
			ExecEnergy: p.Model.Power(s) * exec,
		}
		a.IdleEnergy, a.Shutdown = p.idleCost(idleDur)
		a = p.finish(a)
		if a.Total < best.Total {
			best = a
		}
	}
	return best
}

// idleCost charges an idle interval of the given duration: the cheaper of
// staying awake (Pind·Δ) and shutting down (Esw). Zero-length intervals
// cost nothing.
func (p Proc) idleCost(dur float64) (energy float64, shutdown bool) {
	if dur <= 0 {
		return 0, false
	}
	awake := p.Model.Static() * dur
	if p.DormantEnable && p.Esw < awake {
		return p.Esw, true
	}
	return awake, false
}

// assignDiscrete handles non-ideal processors. Two families of candidates
// are exact for convex power functions:
//
//  1. the Ishihara–Yasuura split between the two levels adjacent to W/d,
//     which fills the frame with no idle time;
//  2. running entirely at one level s ≥ W/d and idling (or sleeping) for
//     the remainder — the winner when the critical speed exceeds W/d.
func (p Proc) assignDiscrete(w, d float64) Assignment {
	best := Assignment{Total: math.Inf(1)}

	ideal := w / d
	if lo, hi, ok := p.Levels.Bracket(ideal); ok && lo != hi {
		// Split: tLo·lo + tHi·hi = w, tLo + tHi = d.
		tHi := (w - lo*d) / (hi - lo)
		tLo := d - tHi
		if tHi >= -feasibilitySlack && tLo >= -feasibilitySlack {
			tHi = math.Max(tHi, 0)
			tLo = math.Max(tLo, 0)
			a := p.finish(Assignment{
				LoSpeed:    lo,
				HiSpeed:    hi,
				LoTime:     tLo,
				HiTime:     tHi,
				ExecEnergy: p.Model.Power(lo)*tLo + p.Model.Power(hi)*tHi,
			})
			if a.Total < best.Total {
				best = a
			}
		}
	}

	for _, s := range p.Levels {
		if s*d < w*(1-feasibilitySlack) {
			continue // level alone cannot meet the deadline
		}
		exec := w / s
		if exec > d {
			exec = d
		}
		a := Assignment{
			LoSpeed:    s,
			LoTime:     exec,
			ExecEnergy: p.Model.Power(s) * exec,
		}
		a.IdleEnergy, a.Shutdown = p.idleCost(d - exec)
		a = p.finish(a)
		if a.Total < best.Total {
			best = a
		}
	}
	return best
}

// finish fills in the Total field.
func (p Proc) finish(a Assignment) Assignment {
	a.Total = a.ExecEnergy + a.IdleEnergy
	return a
}

// Energy is shorthand for Assign(w, d).Total; it returns +Inf for
// infeasible workloads, making it directly usable as the convex cost curve
// E(W) by the rejection solvers.
func (p Proc) Energy(w, d float64) float64 {
	a, err := p.Assign(w, d)
	if err != nil {
		return math.Inf(1)
	}
	return a.Total
}
