package speed

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/power"
)

func idealCubic() Proc {
	return Proc{Model: power.Cubic(), SMin: 0, SMax: 1}
}

func TestProcValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Proc
		wantErr bool
	}{
		{"ideal cubic", idealCubic(), false},
		{"discrete xscale", Proc{Model: power.XScale(), Levels: power.XScaleLevels()}, false},
		{"bad model", Proc{Model: power.Polynomial{}, SMax: 1}, true},
		{"zero smax", Proc{Model: power.Cubic(), SMax: 0}, true},
		{"smin above smax", Proc{Model: power.Cubic(), SMin: 2, SMax: 1}, true},
		{"bad levels", Proc{Model: power.Cubic(), Levels: power.LevelSet{1, 0.5}}, true},
		{"negative esw", Proc{Model: power.Cubic(), SMax: 1, Esw: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAssignContinuousNoLeakage(t *testing.T) {
	p := idealCubic()
	// W = 5 cycles, D = 10: run at s = 0.5 for 10 time units.
	// E = s³·(W/s) = s²·W = 0.25·5 = 1.25.
	a, err := p.Assign(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LoSpeed-0.5) > 1e-12 {
		t.Errorf("speed = %v, want 0.5", a.LoSpeed)
	}
	if math.Abs(a.Total-1.25) > 1e-12 {
		t.Errorf("energy = %v, want 1.25", a.Total)
	}
	if a.IdleEnergy != 0 || a.Shutdown {
		t.Errorf("no-leakage frame must have zero idle energy, got %+v", a)
	}
}

func TestAssignRespectsSMin(t *testing.T) {
	p := Proc{Model: power.Cubic(), SMin: 0.4, SMax: 1}
	a, err := p.Assign(1, 10) // W/D = 0.1 < smin
	if err != nil {
		t.Fatal(err)
	}
	if a.LoSpeed != 0.4 {
		t.Errorf("speed = %v, want smin = 0.4", a.LoSpeed)
	}
	if math.Abs(a.BusyTime()-2.5) > 1e-12 {
		t.Errorf("busy time = %v, want 2.5", a.BusyTime())
	}
}

func TestAssignInfeasible(t *testing.T) {
	p := idealCubic()
	if _, err := p.Assign(11, 10); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Assign(11, 10) error = %v, want ErrInfeasible", err)
	}
	// Exactly at capacity is feasible.
	a, err := p.Assign(10, 10)
	if err != nil {
		t.Fatalf("Assign at capacity: %v", err)
	}
	if math.Abs(a.LoSpeed-1) > 1e-9 {
		t.Errorf("speed at capacity = %v, want 1", a.LoSpeed)
	}
}

func TestAssignRejectsBadArgs(t *testing.T) {
	p := idealCubic()
	for _, tc := range []struct{ w, d float64 }{
		{-1, 10}, {math.NaN(), 10}, {math.Inf(1), 10},
		{1, 0}, {1, -1}, {1, math.NaN()}, {1, math.Inf(1)},
	} {
		if _, err := p.Assign(tc.w, tc.d); err == nil {
			t.Errorf("Assign(%v, %v) accepted invalid arguments", tc.w, tc.d)
		}
	}
}

func TestAssignZeroWorkload(t *testing.T) {
	// Dormant-disable leaky processor: idle frame costs Pind·D.
	p := Proc{Model: power.XScale(), SMax: 1}
	a, err := p.Assign(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Total-0.8) > 1e-12 {
		t.Errorf("idle frame energy = %v, want Pind·D = 0.8", a.Total)
	}
	// Dormant-enable with cheap shutdown: idle frame costs Esw.
	pe := Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.1}
	a, err = pe.Assign(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 0.1 || !a.Shutdown {
		t.Errorf("dormant idle frame = %+v, want Esw = 0.1 with shutdown", a)
	}
	// Dormant-enable with expensive shutdown: stay awake.
	pa := Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 5}
	a, err = pa.Assign(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Total-0.8) > 1e-12 || a.Shutdown {
		t.Errorf("awake idle frame = %+v, want 0.8 without shutdown", a)
	}
}

func TestCriticalSpeedClamping(t *testing.T) {
	// Dormant-enable XScale with free shutdown: tiny workloads should run
	// at the critical speed (≈ 0.297), not stretched to the deadline.
	p := Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0}
	star := power.XScale().CriticalSpeed()
	a, err := p.Assign(0.1, 10) // W/D = 0.01 « s*
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LoSpeed-star) > 1e-9 {
		t.Errorf("speed = %v, want critical speed %v", a.LoSpeed, star)
	}
	if !a.Shutdown && a.IdleEnergy != 0 {
		t.Errorf("free shutdown must zero the idle energy, got %+v", a)
	}
	// With workload already demanding s > s*, run at W/D.
	a, err = p.Assign(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LoSpeed-0.8) > 1e-9 {
		t.Errorf("speed = %v, want 0.8", a.LoSpeed)
	}
}

func TestDormantDisableStretches(t *testing.T) {
	// Dormant-disable: Pind is sunk, so stretch to the deadline even below
	// the critical speed.
	p := Proc{Model: power.XScale(), SMax: 1}
	a, err := p.Assign(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LoSpeed-0.1) > 1e-12 {
		t.Errorf("speed = %v, want W/D = 0.1", a.LoSpeed)
	}
	// Total must include the full frame's static energy.
	wantExec := power.XScale().Power(0.1) * 10 // busy the whole frame
	if math.Abs(a.Total-wantExec) > 1e-12 {
		t.Errorf("energy = %v, want %v", a.Total, wantExec)
	}
}

func TestDormantEnableEswTradeoff(t *testing.T) {
	m := power.XScale()
	// Workload small enough that sprint-and-sleep at s* creates idle time.
	w, d := 1.0, 10.0
	free := Proc{Model: m, SMax: 1, DormantEnable: true, Esw: 0}
	costly := Proc{Model: m, SMax: 1, DormantEnable: true, Esw: 100}
	aFree, err := free.Assign(w, d)
	if err != nil {
		t.Fatal(err)
	}
	aCostly, err := costly.Assign(w, d)
	if err != nil {
		t.Fatal(err)
	}
	if aFree.Total >= aCostly.Total {
		t.Errorf("free shutdown (%v) must beat costly shutdown (%v)", aFree.Total, aCostly.Total)
	}
	// With prohibitive Esw the processor stays awake; its best strategy is
	// then to stretch (same as dormant-disable).
	disable := Proc{Model: m, SMax: 1}
	aDisable, err := disable.Assign(w, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aCostly.Total-aDisable.Total) > 1e-9 {
		t.Errorf("costly-shutdown total = %v, want dormant-disable total %v", aCostly.Total, aDisable.Total)
	}
}

func TestAssignDiscreteTwoLevel(t *testing.T) {
	// Levels {0.5, 1.0}, cubic, no leakage. W = 7.5, D = 10 → ideal speed
	// 0.75. Split: tHi·1 + tLo·0.5 = 7.5, tLo + tHi = 10 → tHi = 5, tLo = 5.
	// E = 5·0.125 + 5·1 = 5.625. Single level 1.0: 7.5·1 = 7.5. Split wins.
	p := Proc{Model: power.Cubic(), Levels: power.LevelSet{0.5, 1.0}}
	a, err := p.Assign(7.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.LoSpeed != 0.5 || a.HiSpeed != 1.0 {
		t.Fatalf("levels = (%v, %v), want (0.5, 1.0)", a.LoSpeed, a.HiSpeed)
	}
	if math.Abs(a.LoTime-5) > 1e-9 || math.Abs(a.HiTime-5) > 1e-9 {
		t.Errorf("times = (%v, %v), want (5, 5)", a.LoTime, a.HiTime)
	}
	if math.Abs(a.Total-5.625) > 1e-9 {
		t.Errorf("energy = %v, want 5.625", a.Total)
	}
}

func TestAssignDiscreteBelowLowestLevel(t *testing.T) {
	// W/D below the lowest level: run at the lowest level and idle.
	p := Proc{Model: power.Cubic(), Levels: power.LevelSet{0.5, 1.0}}
	a, err := p.Assign(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.LoSpeed != 0.5 || a.HiTime != 0 {
		t.Errorf("assignment = %+v, want single segment at 0.5", a)
	}
	if math.Abs(a.BusyTime()-2) > 1e-9 {
		t.Errorf("busy time = %v, want 2", a.BusyTime())
	}
	if math.Abs(a.Total-0.25) > 1e-9 { // 0.5³·2 = 0.25
		t.Errorf("energy = %v, want 0.25", a.Total)
	}
}

func TestAssignDiscreteExactLevel(t *testing.T) {
	p := Proc{Model: power.Cubic(), Levels: power.XScaleLevels()}
	// W/D exactly 0.6: single level, full frame.
	a, err := p.Assign(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Total-0.6*0.6*6) > 1e-9 { // s²·W
		t.Errorf("energy = %v, want %v", a.Total, 0.6*0.6*6)
	}
}

func TestAssignDiscreteInfeasible(t *testing.T) {
	p := Proc{Model: power.Cubic(), Levels: power.XScaleLevels()}
	if _, err := p.Assign(10.2, 10); !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestDiscreteAtLeastContinuous(t *testing.T) {
	// Discrete energy must never beat the continuous optimum (both
	// leakage-free).
	cont := idealCubic()
	disc := Proc{Model: power.Cubic(), Levels: power.XScaleLevels()}
	for w := 0.5; w <= 10; w += 0.5 {
		ec := cont.Energy(w, 10)
		ed := disc.Energy(w, 10)
		if ed < ec-1e-9 {
			t.Errorf("W = %v: discrete %v < continuous %v", w, ed, ec)
		}
	}
}

func TestEnergyInfeasibleIsInf(t *testing.T) {
	p := idealCubic()
	if got := p.Energy(100, 1); !math.IsInf(got, 1) {
		t.Errorf("Energy(100, 1) = %v, want +Inf", got)
	}
}

func TestCapacity(t *testing.T) {
	if got := idealCubic().Capacity(10); got != 10 {
		t.Errorf("Capacity(10) = %v, want 10", got)
	}
	disc := Proc{Model: power.Cubic(), Levels: power.XScaleLevels()}
	if got := disc.Capacity(8); got != 8 {
		t.Errorf("discrete Capacity(8) = %v, want 8", got)
	}
}
