package trace

import (
	"strings"
	"testing"

	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

func TestGanttBasic(t *testing.T) {
	jobs := []edf.Job{
		{TaskID: 1, Release: 0, Deadline: 10, Cycles: 5},
		{TaskID: 2, Release: 0, Deadline: 20, Cycles: 5},
	}
	pr := speed.Constant(1, 0, 20)
	r, err := edf.Simulate(jobs, pr)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(r, pr, 20, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 task rows + speed lane.
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[2], "#") {
		t.Errorf("missing execution marks:\n%s", out)
	}
	// Task 1 runs first (earlier deadline): its marks start at column 0.
	if !strings.HasPrefix(strings.TrimPrefix(lines[1], "   1 "), "#") {
		t.Errorf("task 1 does not start executing at t=0:\n%s", out)
	}
	if !strings.Contains(lines[3], "9") {
		t.Errorf("speed lane missing full-speed marks:\n%s", out)
	}
}

func TestGanttMissMark(t *testing.T) {
	jobs := []edf.Job{{TaskID: 7, Release: 0, Deadline: 4, Cycles: 10}}
	pr := speed.Constant(1, 0, 20)
	r, err := edf.Simulate(jobs, pr)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(r, pr, 20, 40)
	if !strings.Contains(out, "x") {
		t.Errorf("missed deadline not marked:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	out := Gantt(edf.Result{}, nil, 0, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("empty rendering = %q", out)
	}
}

func TestGanttIdleLane(t *testing.T) {
	jobs := []edf.Job{{TaskID: 1, Release: 0, Deadline: 5, Cycles: 2}}
	pr := speed.Constant(1, 0, 2) // processor stops at t=2
	r, err := edf.Simulate(jobs, pr)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(r, pr, 10, 20)
	if !strings.Contains(out, "_") {
		t.Errorf("idle speed not rendered as '_':\n%s", out)
	}
}

func TestSlicesRecorded(t *testing.T) {
	// Preemption produces three slices: task1, task2, task1 again.
	jobs := []edf.Job{
		{TaskID: 1, Release: 0, Deadline: 20, Cycles: 10},
		{TaskID: 2, Release: 2, Deadline: 5, Cycles: 2},
	}
	r, err := edf.Simulate(jobs, speed.Constant(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Slices) != 3 {
		t.Fatalf("slices = %+v, want 3", r.Slices)
	}
	ids := []int{r.Slices[0].TaskID, r.Slices[1].TaskID, r.Slices[2].TaskID}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 1 {
		t.Errorf("slice order = %v, want [1 2 1]", ids)
	}
	// Slices must be disjoint and time-ordered.
	for i := 1; i < len(r.Slices); i++ {
		if r.Slices[i].Start < r.Slices[i-1].End-1e-9 {
			t.Errorf("slices overlap: %+v", r.Slices)
		}
	}
	// Total sliced time equals total work at speed 1.
	var busy float64
	for _, s := range r.Slices {
		busy += s.End - s.Start
	}
	if busy < 12-1e-9 || busy > 12+1e-9 {
		t.Errorf("busy time = %v, want 12", busy)
	}
}
