// Package trace renders EDF simulation results as ASCII Gantt charts —
// the debugging view of a schedule: one row per task showing when it
// executes, plus the processor speed lane underneath.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

// Gantt renders the result over [0, horizon) at the given width in
// characters. Rows are sorted by task ID. Legend: '█' executing, '·' idle
// within the window, '×' marks the deadline column of a missed job. The
// final lane shows the speed profile quantized to 0–9 (relative to its
// maximum).
func Gantt(r edf.Result, pr speed.Profile, horizon float64, width int) string {
	if width < 10 {
		width = 10
	}
	if horizon <= 0 {
		horizon = pr.End()
		for _, j := range r.Jobs {
			if j.Deadline > horizon {
				horizon = j.Deadline
			}
		}
	}
	if horizon <= 0 {
		return "(empty schedule)\n"
	}
	col := func(t float64) int {
		c := int(t / horizon * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Collect task IDs.
	ids := map[int]bool{}
	for _, j := range r.Jobs {
		ids[j.TaskID] = true
	}
	order := make([]int, 0, len(ids))
	for id := range ids {
		order = append(order, id)
	}
	sort.Ints(order)

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.4g\n", strings.Repeat(" ", width-8), horizon)
	for _, id := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Window dots.
		for _, j := range r.Jobs {
			if j.TaskID != id {
				continue
			}
			for c := col(j.Release); c <= col(j.Deadline-1e-12); c++ {
				if row[c] == ' ' {
					row[c] = '.'
				}
			}
		}
		// Execution.
		for _, s := range r.Slices {
			if s.TaskID != id {
				continue
			}
			lo, hi := col(s.Start), col(s.End-1e-12)
			for c := lo; c <= hi; c++ {
				row[c] = '#'
			}
		}
		// Misses.
		for _, j := range r.Jobs {
			if j.TaskID == id && j.Missed {
				row[col(j.Deadline-1e-12)] = 'x'
			}
		}
		fmt.Fprintf(&b, "%4d %s\n", id, string(row))
	}

	// Speed lane.
	maxS := 0.0
	for _, seg := range pr {
		maxS = math.Max(maxS, seg.Speed)
	}
	lane := make([]byte, width)
	for i := range lane {
		mid := (float64(i) + 0.5) / float64(width) * horizon
		s := pr.SpeedAt(mid)
		switch {
		case s <= 0:
			lane[i] = '_'
		case maxS <= 0:
			lane[i] = '_'
		default:
			d := int(math.Round(s / maxS * 9))
			lane[i] = byte('0' + d)
		}
	}
	fmt.Fprintf(&b, "  s  %s  (9 = %.3g)\n", string(lane), maxS)
	return b.String()
}
