// Package power models the power consumption of DVS (dynamic voltage
// scaling) processors.
//
// The model follows the standard decomposition used by the DATE-era
// energy-efficient scheduling literature: the total power drawn at
// normalized speed s is
//
//	P(s) = Pind + Pd(s)
//
// where Pind is speed-independent (dominated by leakage) and Pd is a convex,
// strictly increasing function of s (dominated by CMOS switching power).
// The canonical parametric form is Pd(s) = c·s^α with α ∈ (1, 3].
//
// Speeds are normalized: on a processor whose top frequency is f_max, speed
// s means executing s·f_max cycles per unit time. Executing W cycles at
// constant speed s therefore takes W/s time and consumes P(s)·W/s energy.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Model is the power consumption of a processor (or of one task's execution
// on it, when tasks have heterogeneous power characteristics) as a function
// of the normalized speed.
type Model interface {
	// Power returns the total power P(s) drawn while executing at speed s.
	Power(s float64) float64
	// Dynamic returns the speed-dependent component Pd(s).
	Dynamic(s float64) float64
	// Static returns the speed-independent component Pind.
	Static() float64
}

// Polynomial is the canonical power model P(s) = Pind + Coeff·s^Alpha.
// The zero value is not valid; use Validate or one of the presets.
type Polynomial struct {
	Pind  float64 // speed-independent power (leakage), ≥ 0
	Coeff float64 // dynamic power coefficient, > 0
	Alpha float64 // dynamic power exponent, > 1
}

var _ Model = Polynomial{}

// Validate reports whether the model parameters are in their legal ranges.
func (p Polynomial) Validate() error {
	switch {
	case math.IsNaN(p.Pind) || p.Pind < 0:
		return fmt.Errorf("power: Pind = %v, want ≥ 0", p.Pind)
	case math.IsNaN(p.Coeff) || p.Coeff <= 0:
		return fmt.Errorf("power: Coeff = %v, want > 0", p.Coeff)
	case math.IsNaN(p.Alpha) || p.Alpha <= 1:
		return fmt.Errorf("power: Alpha = %v, want > 1", p.Alpha)
	}
	return nil
}

// Power returns P(s) = Pind + Coeff·s^Alpha.
func (p Polynomial) Power(s float64) float64 {
	return p.Pind + p.Dynamic(s)
}

// Dynamic returns Pd(s) = Coeff·s^Alpha.
func (p Polynomial) Dynamic(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return p.Coeff * math.Pow(s, p.Alpha)
}

// Static returns Pind.
func (p Polynomial) Static() float64 { return p.Pind }

// EnergyPerCycle returns P(s)/s, the energy consumed per executed cycle at
// speed s. It is +Inf at s = 0 when Pind > 0.
func (p Polynomial) EnergyPerCycle(s float64) float64 {
	if s <= 0 {
		if p.Pind > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return p.Power(s) / s
}

// CriticalSpeed returns the speed s* minimizing the energy per cycle
// P(s)/s. Setting d/ds [Pind/s + Coeff·s^(α−1)] = 0 gives
//
//	s* = (Pind / (Coeff·(α−1)))^(1/α).
//
// With no leakage (Pind = 0) the critical speed is 0: the slower, the
// better, and only the deadline bounds the speed from below.
func (p Polynomial) CriticalSpeed() float64 {
	if p.Pind == 0 {
		return 0
	}
	return math.Pow(p.Pind/(p.Coeff*(p.Alpha-1)), 1/p.Alpha)
}

// Scale returns the model with its dynamic coefficient multiplied by rho.
// This expresses per-task power characteristics: a task with coefficient
// rho consumes rho·Coeff·s^Alpha dynamic power while executing.
func (p Polynomial) Scale(rho float64) Polynomial {
	return Polynomial{Pind: p.Pind, Coeff: rho * p.Coeff, Alpha: p.Alpha}
}

// String implements fmt.Stringer.
func (p Polynomial) String() string {
	if p.Pind == 0 {
		return fmt.Sprintf("P(s) = %g·s^%g", p.Coeff, p.Alpha)
	}
	return fmt.Sprintf("P(s) = %g + %g·s^%g", p.Pind, p.Coeff, p.Alpha)
}

// Cubic returns the pure cubic model P(s) = s³ used throughout the paper
// family's homogeneous-processor experiments.
func Cubic() Polynomial { return Polynomial{Pind: 0, Coeff: 1, Alpha: 3} }

// XScale returns the Intel XScale model normalized to its top speed,
// P(s) = 0.08 + 1.52·s³ Watt, as quoted in the paper family.
func XScale() Polynomial { return Polynomial{Pind: 0.08, Coeff: 1.52, Alpha: 3} }

// ErrNoLevels is returned by LevelSet methods when the set is empty.
var ErrNoLevels = errors.New("power: empty speed level set")
