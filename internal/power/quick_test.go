package power

import (
	"math"
	"testing"
	"testing/quick"
)

// clampParams maps arbitrary quick-generated floats into legal model space.
func clampParams(pind, coeff, alpha float64) Polynomial {
	return Polynomial{
		Pind:  math.Abs(math.Mod(pind, 2)),
		Coeff: 0.1 + math.Abs(math.Mod(coeff, 3)),
		Alpha: 1.5 + math.Abs(math.Mod(alpha, 2)),
	}
}

// Property: P is strictly increasing in s on s > 0.
func TestQuickPowerMonotone(t *testing.T) {
	f := func(pind, coeff, alpha, a, b float64) bool {
		p := clampParams(pind, coeff, alpha)
		sa := 0.01 + math.Abs(math.Mod(a, 10))
		sb := sa + 0.01 + math.Abs(math.Mod(b, 10))
		return p.Power(sa) < p.Power(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: P is convex — midpoint value does not exceed the chord.
func TestQuickPowerConvex(t *testing.T) {
	f := func(pind, coeff, alpha, a, b float64) bool {
		p := clampParams(pind, coeff, alpha)
		sa := math.Abs(math.Mod(a, 10))
		sb := math.Abs(math.Mod(b, 10))
		mid := (sa + sb) / 2
		return p.Power(mid) <= (p.Power(sa)+p.Power(sb))/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the critical speed globally minimizes energy per cycle over a
// dense sample of speeds.
func TestQuickCriticalSpeedIsArgmin(t *testing.T) {
	f := func(pind, coeff, alpha float64) bool {
		p := clampParams(pind, coeff, alpha)
		if p.Pind == 0 {
			return true
		}
		star := p.CriticalSpeed()
		best := p.EnergyPerCycle(star)
		for s := 0.05; s <= 4; s += 0.05 {
			if p.EnergyPerCycle(s) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: energy per cycle is increasing for s ≥ s* and decreasing for
// s ≤ s* (unimodality around the critical speed).
func TestQuickEnergyPerCycleUnimodal(t *testing.T) {
	f := func(pind, coeff, alpha float64) bool {
		p := clampParams(pind, coeff, alpha)
		star := p.CriticalSpeed()
		prev := math.Inf(1)
		for s := 0.02; s < star; s += star / 50 {
			e := p.EnergyPerCycle(s)
			if e > prev+1e-9 {
				return false
			}
			prev = e
		}
		prev = 0
		for s := star + 0.01; s < star+3; s += 0.1 {
			e := p.EnergyPerCycle(s)
			if e < prev-1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Bracket always returns levels that actually bracket the query
// and are adjacent in the set.
func TestQuickBracket(t *testing.T) {
	ls := XScaleLevels()
	f := func(raw float64) bool {
		s := math.Abs(math.Mod(raw, 1.0)) // within [0, 1)
		lo, hi, ok := ls.Bracket(s)
		if !ok {
			return false
		}
		if s <= ls.Min() {
			return lo == ls.Min() && hi == ls.Min()
		}
		if lo > s || hi < s {
			return false
		}
		// lo and hi must be adjacent members.
		for i, l := range ls {
			if l == lo {
				return lo == hi || (i+1 < len(ls) && ls[i+1] == hi)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
