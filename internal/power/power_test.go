package power

import (
	"math"
	"testing"
)

func TestPolynomialValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Polynomial
		wantErr bool
	}{
		{"cubic", Cubic(), false},
		{"xscale", XScale(), false},
		{"quadratic with leakage", Polynomial{Pind: 0.2, Coeff: 0.5, Alpha: 2}, false},
		{"negative leakage", Polynomial{Pind: -0.1, Coeff: 1, Alpha: 3}, true},
		{"zero coeff", Polynomial{Pind: 0, Coeff: 0, Alpha: 3}, true},
		{"negative coeff", Polynomial{Pind: 0, Coeff: -1, Alpha: 3}, true},
		{"alpha one", Polynomial{Pind: 0, Coeff: 1, Alpha: 1}, true},
		{"alpha below one", Polynomial{Pind: 0, Coeff: 1, Alpha: 0.5}, true},
		{"nan alpha", Polynomial{Pind: 0, Coeff: 1, Alpha: math.NaN()}, true},
		{"nan pind", Polynomial{Pind: math.NaN(), Coeff: 1, Alpha: 3}, true},
		{"nan coeff", Polynomial{Pind: 0, Coeff: math.NaN(), Alpha: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPolynomialPower(t *testing.T) {
	p := XScale()
	if got := p.Power(1); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("XScale Power(1) = %v, want 1.6", got)
	}
	if got := p.Power(0); got != 0.08 {
		t.Errorf("XScale Power(0) = %v, want 0.08 (leakage only)", got)
	}
	if got := p.Dynamic(0.5); math.Abs(got-1.52*0.125) > 1e-12 {
		t.Errorf("XScale Dynamic(0.5) = %v, want %v", got, 1.52*0.125)
	}
	if got := p.Static(); got != 0.08 {
		t.Errorf("XScale Static() = %v, want 0.08", got)
	}
	// Dynamic power at negative speed clamps to zero rather than producing NaN.
	if got := p.Dynamic(-1); got != 0 {
		t.Errorf("Dynamic(-1) = %v, want 0", got)
	}
}

func TestEnergyPerCycle(t *testing.T) {
	p := Cubic()
	// P(s)/s = s² for the pure cubic.
	for _, s := range []float64{0.1, 0.5, 1, 2} {
		if got, want := p.EnergyPerCycle(s), s*s; math.Abs(got-want) > 1e-12 {
			t.Errorf("EnergyPerCycle(%v) = %v, want %v", s, got, want)
		}
	}
	if got := p.EnergyPerCycle(0); got != 0 {
		t.Errorf("leakage-free EnergyPerCycle(0) = %v, want 0", got)
	}
	if got := XScale().EnergyPerCycle(0); !math.IsInf(got, 1) {
		t.Errorf("leaky EnergyPerCycle(0) = %v, want +Inf", got)
	}
}

func TestCriticalSpeed(t *testing.T) {
	if got := Cubic().CriticalSpeed(); got != 0 {
		t.Errorf("Cubic critical speed = %v, want 0", got)
	}
	// XScale: s* = (0.08/(1.52·2))^(1/3) ≈ 0.2971.
	p := XScale()
	got := p.CriticalSpeed()
	want := math.Pow(0.08/(1.52*2), 1.0/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("XScale critical speed = %v, want %v", got, want)
	}
	// The critical speed is the argmin of P(s)/s: nearby speeds must not be better.
	best := p.EnergyPerCycle(got)
	for _, ds := range []float64{-0.05, -0.01, 0.01, 0.05} {
		if e := p.EnergyPerCycle(got + ds); e < best {
			t.Errorf("EnergyPerCycle(s*%+v) = %v < EnergyPerCycle(s*) = %v", ds, e, best)
		}
	}
}

func TestScale(t *testing.T) {
	base := Cubic()
	s2 := base.Scale(2.5)
	if got, want := s2.Dynamic(0.7), 2.5*base.Dynamic(0.7); math.Abs(got-want) > 1e-12 {
		t.Errorf("Scale(2.5).Dynamic(0.7) = %v, want %v", got, want)
	}
	if s2.Static() != base.Static() {
		t.Errorf("Scale must not alter static power")
	}
}

func TestPolynomialString(t *testing.T) {
	if got := Cubic().String(); got != "P(s) = 1·s^3" {
		t.Errorf("Cubic().String() = %q", got)
	}
	if got := XScale().String(); got != "P(s) = 0.08 + 1.52·s^3" {
		t.Errorf("XScale().String() = %q", got)
	}
}

func TestLevelSetValidate(t *testing.T) {
	tests := []struct {
		name    string
		ls      LevelSet
		wantErr bool
	}{
		{"xscale", XScaleLevels(), false},
		{"single", LevelSet{1}, false},
		{"empty", LevelSet{}, true},
		{"unsorted", LevelSet{0.5, 0.2, 1}, true},
		{"duplicate", LevelSet{0.5, 0.5, 1}, true},
		{"zero level", LevelSet{0, 0.5, 1}, true},
		{"negative level", LevelSet{-0.5, 0.5}, true},
		{"nan level", LevelSet{0.5, math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.ls.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestLevelSetAtLeast(t *testing.T) {
	ls := XScaleLevels()
	tests := []struct {
		s      float64
		want   float64
		wantOK bool
	}{
		{0, 0.15, true},
		{0.15, 0.15, true},
		{0.16, 0.4, true},
		{0.4, 0.4, true},
		{0.99, 1.0, true},
		{1.0, 1.0, true},
		{1.01, 0, false},
	}
	for _, tt := range tests {
		got, ok := ls.AtLeast(tt.s)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("AtLeast(%v) = (%v, %v), want (%v, %v)", tt.s, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestLevelSetBracket(t *testing.T) {
	ls := XScaleLevels()
	tests := []struct {
		s      float64
		lo, hi float64
		ok     bool
	}{
		{0.05, 0.15, 0.15, true}, // below the slowest level
		{0.15, 0.15, 0.15, true},
		{0.3, 0.15, 0.4, true},
		{0.4, 0.4, 0.4, true},
		{0.7, 0.6, 0.8, true},
		{1.0, 1.0, 1.0, true},
		{1.2, 0, 0, false},
	}
	for _, tt := range tests {
		lo, hi, ok := ls.Bracket(tt.s)
		if lo != tt.lo || hi != tt.hi || ok != tt.ok {
			t.Errorf("Bracket(%v) = (%v, %v, %v), want (%v, %v, %v)", tt.s, lo, hi, ok, tt.lo, tt.hi, tt.ok)
		}
	}
}

func TestLevelSetMinMax(t *testing.T) {
	ls := XScaleLevels()
	if ls.Min() != 0.15 || ls.Max() != 1.0 {
		t.Errorf("Min/Max = %v/%v, want 0.15/1.0", ls.Min(), ls.Max())
	}
}
