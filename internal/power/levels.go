package power

import (
	"fmt"
	"math"
	"slices"
)

// LevelSet is the finite, strictly ascending set of speeds available on a
// non-ideal DVS processor. Speeds are normalized to the processor's top
// frequency, so a typical set ends at 1.0.
type LevelSet []float64

// Validate reports whether the level set is non-empty, strictly ascending
// and strictly positive.
func (ls LevelSet) Validate() error {
	if len(ls) == 0 {
		return ErrNoLevels
	}
	prev := 0.0
	for i, s := range ls {
		if math.IsNaN(s) || s <= prev {
			return fmt.Errorf("power: level[%d] = %v, want strictly ascending positive speeds", i, s)
		}
		prev = s
	}
	return nil
}

// Min returns the slowest available speed.
func (ls LevelSet) Min() float64 { return ls[0] }

// Max returns the fastest available speed.
func (ls LevelSet) Max() float64 { return ls[len(ls)-1] }

// AtLeast returns the slowest level ≥ s and true, or 0 and false when even
// the fastest level is below s.
func (ls LevelSet) AtLeast(s float64) (float64, bool) {
	i, _ := slices.BinarySearch(ls, s)
	if i == len(ls) {
		return 0, false
	}
	return ls[i], true
}

// Bracket returns the pair of adjacent levels (lo, hi) with lo ≤ s ≤ hi.
// When s lies below the slowest level both returns equal ls.Min(); when s
// equals a level both returns are that level. ok is false when s exceeds
// the fastest level.
func (ls LevelSet) Bracket(s float64) (lo, hi float64, ok bool) {
	if s > ls.Max() {
		return 0, 0, false
	}
	if s <= ls.Min() {
		return ls.Min(), ls.Min(), true
	}
	i, found := slices.BinarySearch(ls, s)
	if found {
		return ls[i], ls[i], true
	}
	return ls[i-1], ls[i], true
}

// XScaleLevels returns the Intel XScale frequency ladder
// {150, 400, 600, 800, 1000} MHz normalized to the top speed.
func XScaleLevels() LevelSet { return LevelSet{0.15, 0.4, 0.6, 0.8, 1.0} }
