package power

import "slices"

// PdTable memoizes the dynamic power Pd(s) of a model at a fixed,
// ascending grid of candidate speeds — the discrete ladder the DP and YDS
// solvers actually query. Each entry is seeded once through the model's
// own Dynamic (one math.Pow per grid speed), so a table hit returns the
// exact float the direct evaluation would have produced: memoization is
// bit-identical by construction, never an approximation.
type PdTable struct {
	speeds []float64
	pd     []float64
}

// NewPdTable builds the memo table over the given grid. Speeds must be
// sorted ascending (LevelSet order); the grid is cloned.
func NewPdTable(m Model, speeds []float64) PdTable {
	t := PdTable{
		speeds: slices.Clone(speeds),
		pd:     make([]float64, len(speeds)),
	}
	for i, s := range t.speeds {
		t.pd[i] = m.Dynamic(s)
	}
	return t
}

// Len returns the grid size.
func (t PdTable) Len() int { return len(t.speeds) }

// Speed returns grid speed i.
func (t PdTable) Speed(i int) float64 { return t.speeds[i] }

// At returns Pd(Speed(i)).
func (t PdTable) At(i int) float64 { return t.pd[i] }

// Lookup returns the memoized Pd(s) for a speed on the grid, matching by
// exact float bits (any other policy could change solver arithmetic).
func (t PdTable) Lookup(s float64) (float64, bool) {
	i, ok := slices.BinarySearch(t.speeds, s)
	if !ok {
		return 0, false
	}
	return t.pd[i], true
}
