package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Request is one solve on the wire: the full instance space (any finite
// float64 deadline/penalty/rho, any processor description), the solver
// name, the FastPow opt-in and an optional client deadline. Unlike the
// HTTP/JSON path there is no model vocabulary — the processor ships as its
// raw parameters, so anything core.Instance can express rides the wire.
type Request struct {
	Solver  string
	Tasks   task.Set
	Proc    speed.Proc
	FastPow bool
	Timeout time.Duration
}

// Result is a successful solve outcome plus the serving-layer flags.
type Result struct {
	Solution  core.Solution
	CacheHit  bool
	Coalesced bool
}

// Error is the wire form of a failed solve: an HTTP-aligned status code, a
// Retry-After hint (429 overload rejections only, 0 otherwise) and the
// error text.
type Error struct {
	Code       int
	RetryAfter time.Duration
	Msg        string
}

// EncodeRequest renders req into its canonical payload for a FrameSolve.
func EncodeRequest(req Request) []byte {
	buf := make([]byte, 0, 64+len(req.Solver)+8*len(req.Proc.Levels)+32*len(req.Tasks.Tasks))
	return appendRequest(buf, req)
}

// DecodeRequest parses a FrameSolve payload. It rejects trailing bytes and
// non-canonical encodings, so Encode(Decode(p)) == p for every accepted p.
func DecodeRequest(payload []byte) (Request, error) {
	r := reader{b: payload}
	req := readRequest(&r)
	return req, r.finish("request")
}

// EncodeResult renders a solve outcome into its FrameSolution payload.
func EncodeResult(res Result) []byte {
	s := res.Solution
	buf := make([]byte, 0, 96+8*(len(s.Accepted)+len(s.Rejected)+len(s.PerTaskSpeeds)))
	var flags byte
	if res.CacheHit {
		flags |= 1
	}
	if res.Coalesced {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = appendIntSlice(buf, s.Accepted)
	buf = appendIntSlice(buf, s.Rejected)
	buf = appendFloatSlice(buf, s.PerTaskSpeeds)
	a := s.Assignment
	buf = appendF64(buf, a.LoSpeed)
	buf = appendF64(buf, a.HiSpeed)
	buf = appendF64(buf, a.LoTime)
	buf = appendF64(buf, a.HiTime)
	buf = appendF64(buf, a.ExecEnergy)
	buf = appendF64(buf, a.IdleEnergy)
	buf = appendBool(buf, a.Shutdown)
	buf = appendF64(buf, a.Total)
	buf = appendF64(buf, s.Energy)
	buf = appendF64(buf, s.Penalty)
	buf = appendF64(buf, s.Cost)
	return buf
}

// DecodeResult parses a FrameSolution payload.
func DecodeResult(payload []byte) (Result, error) {
	r := reader{b: payload}
	flags := r.u8()
	if flags&^byte(3) != 0 {
		r.fail(fmt.Errorf("wire: unknown result flags %#x", flags))
	}
	var res Result
	res.CacheHit = flags&1 != 0
	res.Coalesced = flags&2 != 0
	s := &res.Solution
	s.Accepted = readIntSlice(&r)
	s.Rejected = readIntSlice(&r)
	s.PerTaskSpeeds = readFloatSlice(&r)
	a := &s.Assignment
	a.LoSpeed = r.f64()
	a.HiSpeed = r.f64()
	a.LoTime = r.f64()
	a.HiTime = r.f64()
	a.ExecEnergy = r.f64()
	a.IdleEnergy = r.f64()
	a.Shutdown = r.bool()
	a.Total = r.f64()
	s.Energy = r.f64()
	s.Penalty = r.f64()
	s.Cost = r.f64()
	return res, r.finish("result")
}

// EncodeError renders e into its FrameError payload.
func EncodeError(e Error) []byte {
	buf := make([]byte, 0, 16+len(e.Msg))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Code))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.RetryAfter.Nanoseconds()))
	buf = appendString(buf, e.Msg)
	return buf
}

// DecodeError parses a FrameError payload.
func DecodeError(payload []byte) (Error, error) {
	r := reader{b: payload}
	var e Error
	e.Code = int(r.u32())
	e.RetryAfter = time.Duration(r.u64())
	e.Msg = r.str()
	return e, r.finish("error")
}

// EncodeReplicate renders a solved cache entry — the exact request and its
// bit-exact solution — into a FrameReplicate payload. The receiver recomputes
// the fingerprint itself, so only the pair ships.
func EncodeReplicate(req Request, sol core.Solution) []byte {
	buf := appendRequest(nil, req)
	return append(buf, EncodeResult(Result{Solution: sol})...)
}

// DecodeReplicate parses a FrameReplicate payload.
func DecodeReplicate(payload []byte) (Request, core.Solution, error) {
	r := reader{b: payload}
	req := readRequest(&r)
	if r.err != nil {
		return Request{}, core.Solution{}, r.finish("replicate")
	}
	res, err := DecodeResult(payload[r.off:])
	if err != nil {
		return Request{}, core.Solution{}, err
	}
	return req, res.Solution, nil
}

// appendRequest encodes the request body shared by FrameSolve and
// FrameReplicate.
func appendRequest(buf []byte, req Request) []byte {
	buf = appendString(buf, req.Solver)
	buf = appendBool(buf, req.FastPow)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(req.Timeout.Nanoseconds()))
	buf = appendF64(buf, req.Tasks.Deadline)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Tasks.Tasks)))
	for _, t := range req.Tasks.Tasks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t.ID)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Cycles))
		buf = appendF64(buf, t.Penalty)
		buf = appendF64(buf, t.Rho)
	}
	p := req.Proc
	buf = appendF64(buf, p.Model.Pind)
	buf = appendF64(buf, p.Model.Coeff)
	buf = appendF64(buf, p.Model.Alpha)
	buf = appendF64(buf, p.SMin)
	buf = appendF64(buf, p.SMax)
	buf = appendBool(buf, p.DormantEnable)
	buf = appendF64(buf, p.Esw)
	if p.Levels == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = appendFloatSlice(buf, p.Levels)
	}
	return buf
}

// readRequest decodes the request body, leaving r positioned after it.
func readRequest(r *reader) Request {
	var req Request
	req.Solver = r.str()
	req.FastPow = r.bool()
	req.Timeout = time.Duration(r.u64())
	req.Tasks.Deadline = r.f64()
	n := r.count(32)
	if r.err == nil && n > 0 {
		req.Tasks.Tasks = make([]task.Task, n)
		for i := range req.Tasks.Tasks {
			t := &req.Tasks.Tasks[i]
			t.ID = int(int64(r.u64()))
			t.Cycles = int64(r.u64())
			t.Penalty = r.f64()
			t.Rho = r.f64()
		}
	}
	p := &req.Proc
	p.Model.Pind = r.f64()
	p.Model.Coeff = r.f64()
	p.Model.Alpha = r.f64()
	p.SMin = r.f64()
	p.SMax = r.f64()
	p.DormantEnable = r.bool()
	p.Esw = r.f64()
	switch have := r.u8(); have {
	case 0:
	case 1:
		p.Levels = readFloatSlice(r)
		if p.Levels == nil && r.err == nil {
			p.Levels = []float64{}
		}
	default:
		r.fail(fmt.Errorf("wire: levels presence byte %d, want 0 or 1", have))
	}
	return req
}

func appendF64(buf []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendIntSlice(buf []byte, xs []int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(x)))
	}
	return buf
}

func appendFloatSlice(buf []byte, xs []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	for _, x := range xs {
		buf = appendF64(buf, x)
	}
	return buf
}

func readIntSlice(r *reader) []int {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(int64(r.u64()))
	}
	return xs
}

func readFloatSlice(r *reader) []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.f64()
	}
	return xs
}

// reader is a sticky-error cursor over a payload. After the first failure
// every accessor returns zero values, so decoders read straight through and
// check once.
type reader struct {
	b   []byte
	off int
	err error
}

var errShort = errors.New("wire: truncated payload")

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail(errShort)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	switch b := r.u8(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("wire: bool byte %d, want 0 or 1", b))
		return false
	}
}

func (r *reader) str() string {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a u32 element count and bounds it by the bytes remaining at
// elemSize each, so a hostile count can never force a huge allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err == nil && n*elemSize > len(r.b)-r.off {
		r.fail(errShort)
		return 0
	}
	return n
}

// finish reports the sticky error, or rejects trailing bytes — canonical
// payloads parse exactly.
func (r *reader) finish(what string) error {
	if r.err != nil {
		return fmt.Errorf("wire: decoding %s: %w", what, r.err)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: decoding %s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}
