// Package wire is the binary protocol shared by the serving cluster: a
// length-prefixed, versioned frame layer over TCP plus canonical codecs
// for the full instance space (raw float64 bit patterns, so off-grid
// deadlines, penalties and rho coefficients round-trip exactly).
//
// Frame layout (all integers little-endian):
//
//	u32 length   — byte count of everything after the length word (≥ 2)
//	u8  version  — Version; a reader rejects frames from a future layout
//	u8  type     — one of the Frame* constants
//	...payload   — type-specific, see codec.go
//
// Payload codecs are canonical: every value has exactly one encoding,
// decoders reject trailing bytes, and re-encoding a decoded payload
// reproduces the input byte for byte (FuzzWireFrame pins this). That makes
// replicated cache entries bit-exact by construction — a solution pushed to
// a warm replica is indistinguishable from the local solve that produced
// it.
//
// The package also hosts the compact fuzz codec promoted from
// internal/verify: a grid projection of the instance space onto a small
// byte alphabet, used by the native Go fuzz targets (see fuzzcodec.go).
package wire

// Version is the wire-format version byte carried by every frame. Bump it
// on any change to the frame or payload layouts; readers reject frames
// whose version they do not speak, so mixed-version clusters fail loudly
// instead of mis-decoding.
const Version = 1

// FrameType discriminates frame payloads.
type FrameType byte

const (
	// FrameSolve carries an encoded Request; the peer answers with a
	// FrameSolution or FrameError.
	FrameSolve FrameType = 1
	// FrameSolution carries an encoded solved Request outcome.
	FrameSolution FrameType = 2
	// FrameError carries a status code, a Retry-After hint and a message.
	FrameError FrameType = 3
	// FrameReplicate carries a (request, solution) pair pushed to the next
	// replica on the ring after a cold solve. It is one-way: the receiver
	// warms its cache and sends nothing back.
	FrameReplicate FrameType = 4
)

// MaxFrame bounds a single frame. A 100k-task request is ~3.2 MB; 64 MB
// leaves room for the largest instances the HTTP path accepts while keeping
// a malicious length word from allocating unbounded memory.
const MaxFrame = 64 << 20
