package wire

import (
	"dvsreject/internal/core"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// The fuzz codec maps arbitrary bytes onto valid instances so the native
// Go fuzzers explore the instance space instead of the JSON parser:
//
//	header:  [flavour] [n] [deadline] [flags]
//	per task (4 bytes): [cycles-1] [penaltyHi] [penaltyLo] [rho]
//
// flavour indexes the caller's flavour table mod its length; n is
// 1 + b mod MaxFuzzTasks (capped by the bytes actually supplied); deadline
// indexes FuzzDeadlines; flags bit 0 is FastPow. Cycles span [1, 256] so
// tiny deadlines force rejection and large ones fit everything. Penalties
// are (hi·256+lo)/64 — a /64 fixed-point grid chosen so the adversarial
// penalty structures from the regression corpus (100, 12, …) encode
// exactly. Rho bytes only matter on heterogeneous flavours and map onto
// [0.5, 2.0].
//
// This is deliberately NOT the serving codec: it projects onto a small
// grid so every byte string is near a valid instance. The full-space
// request codec lives in codec.go. It was promoted here from
// internal/verify so both codecs share one package; internal/verify keeps
// thin wrappers bound to its flavour table.

// Flavour couples a processor flavour with whether its tasks draw
// heterogeneous power coefficients. internal/verify aliases this type and
// owns the canonical table; the codec only indexes whatever table it is
// handed.
type Flavour struct {
	Name   string
	Proc   speed.Proc
	Hetero bool
}

// FuzzDeadlines is the deadline grid of the fuzz codec.
var FuzzDeadlines = []float64{10, 50, 100, 200, 400}

// MaxFuzzTasks bounds decoded instances so the exact solvers stay fast.
const MaxFuzzTasks = 12

// DecodeFuzzInstance decodes fuzz bytes into a valid instance drawn from
// flavours. ok is false when the data is too short to describe at least
// one task, or when the decoded instance fails validation.
func DecodeFuzzInstance(data []byte, flavours []Flavour) (core.Instance, bool) {
	if len(data) < 8 || len(flavours) == 0 {
		return core.Instance{}, false
	}
	f := flavours[int(data[0])%len(flavours)]
	n := 1 + int(data[1])%MaxFuzzTasks
	deadline := FuzzDeadlines[int(data[2])%len(FuzzDeadlines)]
	fastPow := data[3]&1 == 1
	body := data[4:]
	if avail := len(body) / 4; n > avail {
		n = avail
	}
	tasks := make([]task.Task, n)
	for i := range tasks {
		b := body[4*i : 4*i+4]
		t := task.Task{
			ID:      i + 1,
			Cycles:  1 + int64(b[0]),
			Penalty: float64(uint16(b[1])<<8|uint16(b[2])) / 64,
		}
		if f.Hetero {
			t.Rho = 0.5 + 1.5*float64(b[3])/255
		}
		tasks[i] = t
	}
	in := core.Instance{
		Tasks:   task.Set{Tasks: tasks, Deadline: deadline},
		Proc:    f.Proc,
		FastPow: fastPow,
	}
	if in.Validate() != nil {
		return core.Instance{}, false
	}
	return in, true
}

// EncodeFuzzInstance is the inverse for authoring seed corpora: it returns
// the byte form of an instance, or ok=false when the instance is outside
// the codec's grid (unknown flavour, off-grid deadline/penalty/rho, more
// than MaxFuzzTasks tasks, or IDs not 1..n in order).
func EncodeFuzzInstance(in core.Instance, flavours []Flavour) ([]byte, bool) {
	fi := -1
	for i, f := range flavours {
		if ProcEqual(in.Proc, f.Proc) && f.Hetero == anyRho(in.Tasks.Tasks) {
			fi = i
			break
		}
	}
	di := -1
	for i, d := range FuzzDeadlines {
		if in.Tasks.Deadline == d {
			di = i
			break
		}
	}
	n := len(in.Tasks.Tasks)
	if fi < 0 || di < 0 || n < 1 || n > MaxFuzzTasks {
		return nil, false
	}
	data := make([]byte, 4, 4+4*n)
	data[0], data[1], data[2] = byte(fi), byte(n-1), byte(di)
	if in.FastPow {
		data[3] = 1
	}
	for i, t := range in.Tasks.Tasks {
		p64 := t.Penalty * 64
		pi := uint16(p64)
		var rho byte
		if flavours[fi].Hetero {
			r := (t.Rho - 0.5) / 1.5 * 255
			rho = byte(r + 0.5)
			if 0.5+1.5*float64(rho)/255 != t.Rho {
				return nil, false
			}
		} else if t.Rho != 0 {
			return nil, false
		}
		if t.ID != i+1 || t.Cycles < 1 || t.Cycles > 256 ||
			float64(pi) != p64 {
			return nil, false
		}
		data = append(data, byte(t.Cycles-1), byte(pi>>8), byte(pi), rho)
	}
	return data, true
}

// ProcEqual reports bit-exact equality of two processor descriptions.
func ProcEqual(a, b speed.Proc) bool {
	if a.Model != b.Model || a.SMin != b.SMin || a.SMax != b.SMax ||
		a.DormantEnable != b.DormantEnable || a.Esw != b.Esw ||
		len(a.Levels) != len(b.Levels) {
		return false
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			return false
		}
	}
	return true
}

func anyRho(tasks []task.Task) bool {
	for _, t := range tasks {
		if t.Rho != 0 {
			return true
		}
	}
	return false
}
