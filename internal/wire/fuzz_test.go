package wire_test

import (
	"bytes"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/verify"
	"dvsreject/internal/wire"
)

// FuzzWireFrame hammers the frame reader and every payload decoder with
// arbitrary bytes and pins the canonical-codec property: any payload a
// decoder accepts must re-encode to exactly the input bytes. A frame that
// parses is also re-framed and re-read to pin the frame layer itself.
func FuzzWireFrame(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		req := wire.Request{Solver: "DP", Tasks: s.In.Tasks, Proc: s.In.Proc, FastPow: s.In.FastPow}
		var buf bytes.Buffer
		wire.WriteFrame(&buf, wire.FrameSolve, wire.EncodeRequest(req))
		f.Add(buf.Bytes())

		sol := core.Solution{Accepted: []int{1}, Rejected: []int{2}, Energy: 1, Cost: 1}
		buf.Reset()
		wire.WriteFrame(&buf, wire.FrameReplicate, wire.EncodeReplicate(req, sol))
		f.Add(buf.Bytes())
	}
	var ebuf bytes.Buffer
	wire.WriteFrame(&ebuf, wire.FrameError, wire.EncodeError(wire.Error{Code: 429, Msg: "x"}))
	f.Add(ebuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := wire.ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Re-frame and re-read: the frame layer must be a clean bijection
		// on whatever it accepts.
		var buf bytes.Buffer
		if err := wire.WriteFrame(&buf, ft, payload); err != nil {
			t.Fatalf("re-frame: %v", err)
		}
		ft2, p2, err := wire.ReadFrame(&buf)
		if err != nil || ft2 != ft || !bytes.Equal(p2, payload) {
			t.Fatalf("frame round-trip mangled: %v", err)
		}

		switch ft {
		case wire.FrameSolve:
			if req, err := wire.DecodeRequest(payload); err == nil {
				if !bytes.Equal(wire.EncodeRequest(req), payload) {
					t.Fatal("accepted request payload is not canonical")
				}
			}
		case wire.FrameSolution:
			if res, err := wire.DecodeResult(payload); err == nil {
				if !bytes.Equal(wire.EncodeResult(res), payload) {
					t.Fatal("accepted result payload is not canonical")
				}
			}
		case wire.FrameError:
			if e, err := wire.DecodeError(payload); err == nil {
				if !bytes.Equal(wire.EncodeError(e), payload) {
					t.Fatal("accepted error payload is not canonical")
				}
			}
		case wire.FrameReplicate:
			if req, sol, err := wire.DecodeReplicate(payload); err == nil {
				if !bytes.Equal(wire.EncodeReplicate(req, sol), payload) {
					t.Fatal("accepted replicate payload is not canonical")
				}
			}
		}
	})
}
