package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge reports a length word exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ErrVersion reports a frame from an unknown wire-format version.
var ErrVersion = errors.New("wire: unsupported frame version")

// WriteFrame writes one frame: length word, version byte, type byte,
// payload. It performs a single Write so frames interleave safely on a
// shared buffered writer guarded by the caller.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	n := 2 + len(payload)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 0, 4+n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, Version, byte(t))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame and returns its type and payload. It returns
// io.EOF only on a clean boundary (no bytes read); a frame truncated
// mid-body surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if n < 2 {
		return 0, nil, fmt.Errorf("wire: frame length %d, want ≥ 2", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if body[0] != Version {
		return 0, nil, fmt.Errorf("%w: got %d, speak %d", ErrVersion, body[0], Version)
	}
	return FrameType(body[1]), body[2:], nil
}
