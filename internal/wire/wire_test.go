package wire_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/serve"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
	"dvsreject/internal/wire"
)

// reqPool spans the full instance space the codec must carry exactly:
// off-grid floats, heterogeneous rho, discrete ladders, dormant modes,
// FastPow, empty task lists and odd IDs.
func reqPool() []wire.Request {
	offGrid := []task.Task{
		{ID: 7, Cycles: 13, Penalty: math.Pi},
		{ID: 3, Cycles: 1 << 40, Penalty: 1e-300, Rho: 0.7071067811865476},
		{ID: -2, Cycles: 1, Penalty: math.MaxFloat64, Rho: 1.0000000000000002},
	}
	return []wire.Request{
		{},
		{Solver: "DP", Tasks: task.Set{Deadline: 123.45678901234567, Tasks: offGrid},
			Proc: speed.Proc{Model: power.Cubic(), SMin: 0.1234567, SMax: 0.9999999999}},
		{Solver: "S-GREEDY", FastPow: true, Timeout: 1500 * time.Millisecond,
			Tasks: task.Set{Deadline: 1e-12, Tasks: offGrid[:1]},
			Proc: speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels(),
				DormantEnable: true, Esw: 2.00000001}},
		{Solver: "OPT", Tasks: task.Set{Deadline: math.Inf(1)},
			Proc: speed.Proc{Levels: []float64{}}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for i, req := range reqPool() {
		enc := wire.EncodeRequest(req)
		dec, err := wire.DecodeRequest(enc)
		if err != nil {
			t.Fatalf("request %d: decode: %v", i, err)
		}
		// Canonical codec: re-encoding the decoded value must reproduce
		// the bytes exactly — this is the bit-exactness the replication
		// path leans on.
		if !bytes.Equal(wire.EncodeRequest(dec), enc) {
			t.Fatalf("request %d: re-encode differs", i)
		}
		if dec.Solver != req.Solver || dec.FastPow != req.FastPow || dec.Timeout != req.Timeout {
			t.Fatalf("request %d: header fields mangled: %+v", i, dec)
		}
		if math.Float64bits(dec.Tasks.Deadline) != math.Float64bits(req.Tasks.Deadline) {
			t.Fatalf("request %d: deadline bits changed", i)
		}
		if (dec.Proc.Levels == nil) != (req.Proc.Levels == nil) {
			t.Fatalf("request %d: levels nilness changed (discrete vs continuous)", i)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := wire.Result{
		Solution: core.Solution{
			Accepted:      []int{1, 3, 9},
			Rejected:      []int{2},
			PerTaskSpeeds: []float64{0.25, math.Pi / 4, 1},
			Assignment: speed.Assignment{
				LoSpeed: 0.6000000000000001, HiSpeed: 0.8, LoTime: 3.3, HiTime: 1.1,
				ExecEnergy: 2.5e-3, IdleEnergy: 1e-9, Shutdown: true, Total: 2.500001e-3,
			},
			Energy: 2.500001e-3, Penalty: 12.000000000000002, Cost: 12.002500001,
		},
		CacheHit:  true,
		Coalesced: true,
	}
	enc := wire.EncodeResult(res)
	dec, err := wire.DecodeResult(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(wire.EncodeResult(dec), enc) {
		t.Fatal("re-encode differs")
	}
	if err := verify.BitIdenticalSolutions(dec.Solution, res.Solution); err != nil {
		t.Fatalf("solution not bit-identical after round-trip: %v", err)
	}
	if !dec.CacheHit || !dec.Coalesced {
		t.Fatalf("flags lost: %+v", dec)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := wire.Error{Code: 429, RetryAfter: 87 * time.Millisecond, Msg: "overloaded: shed low-penalty request"}
	dec, err := wire.DecodeError(wire.EncodeError(e))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec != e {
		t.Fatalf("got %+v, want %+v", dec, e)
	}
}

func TestReplicateRoundTrip(t *testing.T) {
	req := reqPool()[1]
	sol := core.Solution{Accepted: []int{3, 7}, Rejected: []int{-2}, Energy: 1.25, Cost: 1.25}
	breq, bsol, err := wire.DecodeReplicate(wire.EncodeReplicate(req, sol))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(wire.EncodeRequest(breq), wire.EncodeRequest(req)) {
		t.Fatal("replicated request differs")
	}
	if err := verify.BitIdenticalSolutions(bsol, sol); err != nil {
		t.Fatalf("replicated solution differs: %v", err)
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	enc := wire.EncodeRequest(reqPool()[1])
	if _, err := wire.DecodeRequest(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := wire.DecodeRequest(enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := bytes.Clone(enc)
	// Offset 4+len(solver) is the FastPow bool byte.
	bad[4+len("DP")] = 2
	if _, err := wire.DecodeRequest(bad); err == nil {
		t.Error("bool byte 2 accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{wire.EncodeRequest(reqPool()[1]), wire.EncodeError(wire.Error{Code: 504}), {}}
	types := []wire.FrameType{wire.FrameSolve, wire.FrameError, wire.FrameReplicate}
	for i := range payloads {
		if err := wire.WriteFrame(&buf, types[i], payloads[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := range payloads {
		ft, p, err := wire.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ft != types[i] || !bytes.Equal(p, payloads[i]) {
			t.Fatalf("frame %d mangled: type %d len %d", i, ft, len(p))
		}
	}
	if _, _, err := wire.ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Truncated mid-body.
	var buf bytes.Buffer
	wire.WriteFrame(&buf, wire.FrameSolve, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := wire.ReadFrame(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame: got %v, want ErrUnexpectedEOF", err)
	}
	// Future version byte.
	vbuf := []byte{2, 0, 0, 0, wire.Version + 1, byte(wire.FrameSolve)}
	if _, _, err := wire.ReadFrame(bytes.NewReader(vbuf)); err == nil {
		t.Error("future version accepted")
	}
	// Hostile length word.
	big := []byte{0xff, 0xff, 0xff, 0xff, wire.Version, 1}
	if _, _, err := wire.ReadFrame(bytes.NewReader(big)); err == nil {
		t.Error("oversized length accepted")
	}
}

// TestWireSolveBitIdenticalToJSON pins the tentpole contract: decoding an
// instance from the binary wire form and solving it yields bit-identical
// solutions to decoding the same instance from HTTP/JSON and solving, and
// both match solving the original in-memory instance.
func TestWireSolveBitIdenticalToJSON(t *testing.T) {
	sizes := []struct {
		n      int
		solver string
	}{{1, "DP"}, {13, "DP"}, {200, "S-GREEDY"}, {100000, "GREEDY"}}
	for _, sz := range sizes {
		if testing.Short() && sz.n > 1000 {
			continue
		}
		rng := rand.New(rand.NewSource(int64(sz.n)))
		set, err := gen.Frame(rng, gen.Config{N: sz.n, Load: 1.3, Penalty: gen.PenaltyModel(sz.n % 3)})
		if err != nil {
			t.Fatal(err)
		}
		in := core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}

		solver, err := core.NewSolver(sz.solver, core.SolverSpec{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve(in)
		if err != nil {
			t.Fatalf("n=%d: direct solve: %v", sz.n, err)
		}

		// Wire path: encode → decode → solve.
		wreq := wire.Request{Solver: sz.solver, Tasks: set, Proc: in.Proc}
		dec, err := wire.DecodeRequest(wire.EncodeRequest(wreq))
		if err != nil {
			t.Fatalf("n=%d: wire decode: %v", sz.n, err)
		}
		gotWire, err := solver.Solve(core.Instance{Tasks: dec.Tasks, Proc: dec.Proc, FastPow: dec.FastPow})
		if err != nil {
			t.Fatalf("n=%d: wire solve: %v", sz.n, err)
		}
		if err := verify.BitIdenticalSolutions(gotWire, want); err != nil {
			t.Errorf("n=%d: wire decode → solve differs from direct solve: %v", sz.n, err)
		}

		// JSON path: the daemon's HTTP body → serve request → solve.
		hreq := serve.WireRequest{Deadline: set.Deadline, SMax: 1, Solver: sz.solver}
		for _, tk := range set.Tasks {
			hreq.Tasks = append(hreq.Tasks, serve.WireTask{ID: tk.ID, Cycles: tk.Cycles, Penalty: tk.Penalty, Rho: tk.Rho})
		}
		body, err := json.Marshal(hreq)
		if err != nil {
			t.Fatal(err)
		}
		var back serve.WireRequest
		if err := json.Unmarshal(body, &back); err != nil {
			t.Fatal(err)
		}
		sreq, err := back.ToRequest()
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := solver.Solve(core.Instance{Tasks: sreq.Tasks, Proc: sreq.Proc})
		if err != nil {
			t.Fatalf("n=%d: json solve: %v", sz.n, err)
		}
		if err := verify.BitIdenticalSolutions(gotWire, gotJSON); err != nil {
			t.Errorf("n=%d: wire and JSON decode paths disagree: %v", sz.n, err)
		}
	}
}

// TestWireSolveFastPow pins that the FastPow opt-in (inexpressible in the
// HTTP/JSON body) survives the wire and reproduces the direct FastPow solve
// bit for bit.
func TestWireSolveFastPow(t *testing.T) {
	for _, s := range verify.SeedInstances() {
		in := s.In
		in.FastPow = true
		solver, err := core.NewSolver("DP", core.SolverSpec{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve(in)
		if err != nil {
			continue // some seeds are infeasible for DP; the codec pin needs solvable ones
		}
		dec, err := wire.DecodeRequest(wire.EncodeRequest(wire.Request{
			Solver: "DP", Tasks: in.Tasks, Proc: in.Proc, FastPow: in.FastPow,
		}))
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		got, err := solver.Solve(core.Instance{Tasks: dec.Tasks, Proc: dec.Proc, FastPow: dec.FastPow})
		if err != nil {
			t.Fatalf("%s: solve: %v", s.Name, err)
		}
		if err := verify.BitIdenticalSolutions(got, want); err != nil {
			t.Errorf("%s: FastPow wire round-trip drifted: %v", s.Name, err)
		}
	}
}

// TestFuzzCodecAliases pins that the promoted grid codec still speaks the
// byte format of the committed corpora via verify's wrappers.
func TestFuzzCodecAliases(t *testing.T) {
	for _, s := range verify.SeedInstances() {
		data, ok := verify.EncodeInstance(s.In)
		if !ok {
			t.Fatalf("%s: seed no longer encodes", s.Name)
		}
		data2, ok := wire.EncodeFuzzInstance(s.In, verify.Flavours)
		if !ok || !bytes.Equal(data, data2) {
			t.Fatalf("%s: wrapper and wire codec bytes differ", s.Name)
		}
		in, ok := wire.DecodeFuzzInstance(data, verify.Flavours)
		if !ok {
			t.Fatalf("%s: decode failed", s.Name)
		}
		if len(in.Tasks.Tasks) != len(s.In.Tasks.Tasks) {
			t.Fatalf("%s: decode changed shape", s.Name)
		}
	}
}
