package cache

import (
	"context"
	"sync"
)

// call is one in-flight computation waiters rendezvous on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group collapses concurrent computations for the same key into a single
// execution: the first caller becomes the leader and runs fn, later callers
// for the same key wait for the leader's result instead of recomputing it.
// A stampede of identical requests therefore costs one computation.
//
// The computation runs on its own goroutine and is never abandoned:
// cancelling a waiter's context releases only that waiter (it gets
// ctx.Err()), while fn runs to completion so its result can still populate
// caches. The zero Group is ready to use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do returns the result of fn for key, sharing one execution among all
// concurrent callers with the same key. shared reports whether this caller
// joined an execution started by another (false for the leader). When ctx
// is cancelled before the result is ready, Do returns ctx.Err() but the
// computation keeps running for the remaining waiters.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &call[V]{done: make(chan struct{})}
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		c.val, c.err = fn()
		// Deregister before publishing: a caller arriving after close(done)
		// must start a fresh computation, never join a finished one.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.val, c.err, false
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err(), false
	}
}
