// Package cache provides the keyed-cache primitives shared by the serving
// layer (internal/serve) and the online simulator (internal/online): a
// mutex-guarded LRU with hit/miss/eviction counters, a sharded string-keyed
// variant for concurrent workloads, and a context-aware singleflight group
// that collapses concurrent identical computations into one.
//
// All caches here memoize pure functions (a solver or YDS plan is a
// function of its canonical input), so entries never need invalidation: a
// stale entry simply never matches again and eventually falls off the LRU
// tail.
package cache

import (
	"hash/maphash"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`      // lookups answered from the cache
	Misses    uint64 `json:"misses"`    // lookups that found nothing
	Evictions uint64 `json:"evictions"` // entries displaced by capacity pressure
	Entries   int    `json:"entries"`   // live entries at snapshot time
}

// Add accumulates o into s, for aggregating per-shard snapshots.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// node is one LRU entry on the intrusive recency list.
type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// LRU is a fixed-capacity least-recently-used cache. All methods are safe
// for concurrent use; for highly contended workloads prefer Sharded, which
// splits the key space over independent LRUs.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*node[K, V]
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *node[K, V]

	hits, misses, evictions uint64
}

// NewLRU returns an empty cache holding at most capacity entries;
// capacity < 1 is treated as 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*node[K, V], capacity),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(n)
	return n.val, true
}

// Put inserts or replaces the value for key, evicting the least recently
// used entry when the cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok {
		n.val = val
		c.moveToFront(n)
		return
	}
	if len(c.entries) >= c.capacity {
		c.evict()
	}
	n := &node[K, V]{key: key, val: val}
	c.entries[key] = n
	c.pushFront(n)
}

// Contains reports whether key is cached, without touching the hit/miss
// counters or the recency order. Replication uses it to probe for occupied
// slots without skewing the stats a benchmark reads.
func (c *LRU[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of live entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry. Counters are preserved: Clear models emptying
// the cache (e.g. for a cold benchmark pass), not forgetting its history.
func (c *LRU[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	c.head, c.tail = nil, nil
}

// Stats returns a snapshot of the counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// moveToFront makes n the most recently used entry. Callers hold mu.
func (c *LRU[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *LRU[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// evict removes the least recently used entry. Callers hold mu and have
// checked the cache is non-empty.
func (c *LRU[K, V]) evict() {
	victim := c.tail
	c.unlink(victim)
	delete(c.entries, victim.key)
	c.evictions++
}

// Sharded splits a string-keyed LRU over independently locked shards so
// concurrent readers and writers rarely contend. The shard of a key is a
// fixed hash of its bytes, so lookups for one key always land on one shard.
type Sharded[V any] struct {
	shards []*LRU[string, V]
	mask   uint64
	seed   maphash.Seed
}

// NewSharded returns a sharded cache with shards rounded up to a power of
// two (minimum 1) and entriesPerShard capacity in each shard.
func NewSharded[V any](shards, entriesPerShard int) *Sharded[V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded[V]{
		shards: make([]*LRU[string, V], n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range s.shards {
		s.shards[i] = NewLRU[string, V](entriesPerShard)
	}
	return s
}

// shard returns the LRU responsible for key.
func (s *Sharded[V]) shard(key string) *LRU[string, V] {
	return s.shards[maphash.String(s.seed, key)&s.mask]
}

// Get returns the cached value for key.
func (s *Sharded[V]) Get(key string) (V, bool) { return s.shard(key).Get(key) }

// Put inserts or replaces the value for key.
func (s *Sharded[V]) Put(key string, val V) { s.shard(key).Put(key, val) }

// Contains reports whether key is cached, without touching counters or
// recency.
func (s *Sharded[V]) Contains(key string) bool { return s.shard(key).Contains(key) }

// Clear drops every entry in every shard.
func (s *Sharded[V]) Clear() {
	for _, sh := range s.shards {
		sh.Clear()
	}
}

// Len returns the total number of live entries across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Stats returns the counters aggregated over all shards.
func (s *Sharded[V]) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		st.Add(sh.Stats())
	}
	return st
}
