package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestShardedEvictionPressure drives a sharded LRU far past capacity and
// pins the two properties the serving tier leans on under churn:
//
//  1. correctness — a hit NEVER resurrects stale bytes: every value read
//     back is exactly the value last stored under that key, no matter how
//     many evictions have cycled the shard;
//  2. bounded degradation — a hot working set that fits comfortably in
//     capacity keeps a high hit rate even while a long tail of cold keys
//     churns every shard past its capacity many times over.
func TestShardedEvictionPressure(t *testing.T) {
	const (
		shards     = 8
		perShard   = 32
		capacity   = shards * perShard // 256
		hotKeys    = capacity / 4      // 64 — fits with lots of slack
		coldKeys   = capacity * 8      // 2048 — 8× capacity of churn
		iterations = 50000
	)
	c := NewSharded[string](shards, perShard)
	rng := rand.New(rand.NewSource(1))

	// stored mirrors the last value written per key — the ground truth a
	// hit must reproduce.
	stored := make(map[string]string)
	put := func(key string, version int) {
		val := fmt.Sprintf("%s#v%d", key, version)
		c.Put(key, val)
		stored[key] = val
	}

	var hotLookups, hotHits int
	for i := 0; i < iterations; i++ {
		if rng.Intn(4) == 0 {
			// Cold-tail churn: a rarely-repeated key, occasionally
			// re-stored under a new version so a stale resurrect would
			// be visible as a version mismatch.
			key := fmt.Sprintf("cold-%d", rng.Intn(coldKeys))
			if v, ok := c.Get(key); ok {
				if v != stored[key] {
					t.Fatalf("iteration %d: key %q resurrected stale value %q, want %q", i, key, v, stored[key])
				}
			}
			put(key, i)
			continue
		}
		key := fmt.Sprintf("hot-%d", rng.Intn(hotKeys))
		hotLookups++
		if v, ok := c.Get(key); ok {
			hotHits++
			if v != stored[key] {
				t.Fatalf("iteration %d: hot key %q resurrected stale value %q, want %q", i, key, v, stored[key])
			}
		} else {
			put(key, i)
		}
	}

	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d inserts into capacity %d — pressure never materialized", iterations, capacity)
	}
	if st.Entries > capacity {
		t.Fatalf("live entries %d exceed capacity %d", st.Entries, capacity)
	}
	// The hot set is a quarter of capacity; even with the cold tail
	// churning every shard, LRU recency must keep most of it resident.
	// The bound is deliberately loose — it catches an eviction policy
	// that collapses under churn (e.g. evicting MRU or ignoring recency),
	// not percent-level drift.
	hitRate := float64(hotHits) / float64(hotLookups)
	if hitRate < 0.80 {
		t.Errorf("hot-set hit rate %.3f under eviction pressure, want ≥ 0.80 (%d/%d, %d evictions)",
			hitRate, hotHits, hotLookups, st.Evictions)
	}
}

// TestLRUNoStaleResurrectionAcrossReinsert pins the single-shard version
// of the resurrection property: evict a key, re-insert it with new bytes,
// and the old bytes must be unreachable forever.
func TestLRUNoStaleResurrectionAcrossReinsert(t *testing.T) {
	c := NewLRU[string, string](2)
	c.Put("a", "a-old")
	c.Put("b", "b1")
	c.Put("c", "c1") // evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted key still readable")
	}
	c.Put("a", "a-new") // evicts "b" (LRU after the failed Get counted a miss)
	for i := 0; i < 10; i++ {
		if v, ok := c.Get("a"); !ok || v != "a-new" {
			t.Fatalf("got %q, %v; want re-inserted value", v, ok)
		}
	}
}

func TestContains(t *testing.T) {
	c := NewSharded[int](4, 2)
	c.Put("k", 7)
	before := c.Stats()
	if !c.Contains("k") || c.Contains("missing") {
		t.Fatal("Contains answered wrong")
	}
	after := c.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Errorf("Contains moved the counters: %+v → %+v", before, after)
	}
}
