package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v, want 1, true", v, ok)
	}
	// a is now most recent; inserting c must evict b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction, want LRU eviction of b")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost after eviction: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c missing: %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 3 hits, 2 misses", st)
	}
}

func TestLRUReplace(t *testing.T) {
	c := NewLRU[int, string](2)
	c.Put(1, "x")
	c.Put(1, "y")
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing one key, want 1", c.Len())
	}
	if v, _ := c.Get(1); v != "y" {
		t.Fatalf("Get(1) = %q, want replaced value \"y\"", v)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("replacement counted as eviction: %d", ev)
	}
}

func TestLRUClear(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Clear")
	}
	// The list must be consistent after Clear: refilling past capacity
	// exercises pushFront/evict on the reset list.
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after refill, want capacity 4", c.Len())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("capacity-0 cache holds %d entries, want clamp to 1", c.Len())
	}
}

func TestShardedBasic(t *testing.T) {
	s := NewSharded[int](3, 8) // rounds up to 4 shards
	if len(s.shards) != 4 {
		t.Fatalf("shard count = %d, want power-of-two round-up 4", len(s.shards))
	}
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprint(i), i)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if v, ok := s.Get(fmt.Sprint(i)); ok {
			if v != i {
				t.Fatalf("Get(%d) = %d", i, v)
			}
			hits++
		}
	}
	// 4 shards × 8 entries = 32 capacity: most lookups miss, survivors are
	// exact.
	if hits == 0 || hits > 32 {
		t.Errorf("hits = %d, want 1..32 under capacity 32", hits)
	}
	st := s.Stats()
	if st.Entries != s.Len() {
		t.Errorf("Stats.Entries = %d, Len = %d", st.Entries, s.Len())
	}
	if st.Evictions != 100-uint64(s.Len()) {
		t.Errorf("evictions = %d, want %d", st.Evictions, 100-s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len = %d after Clear", s.Len())
	}
}

func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[int](8, 64)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprint(i % 100)
				s.Put(k, i)
				if v, ok := s.Get(k); ok && v < 0 {
					t.Error("impossible value")
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 100 {
		t.Errorf("Len = %d, want ≤ 100 distinct keys", s.Len())
	}
}

func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	results := make([]int, waiters)
	shared := make([]bool, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do(context.Background(), "k", func() (int, error) {
				close(started)
				runs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shared[i] = v, sh
		}(i)
		if i == 0 {
			<-started // ensure the leader is in flight before followers join
		}
	}
	// Give the followers time to reach Do and join the in-flight call; a
	// follower scheduled only after the leader finished would (correctly)
	// start a fresh computation and break the exactly-once assertion.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", n, waiters)
	}
	sharedCount := 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, results[i])
		}
		if shared[i] {
			sharedCount++
		}
	}
	if sharedCount != waiters-1 {
		t.Errorf("%d callers reported shared, want %d followers", sharedCount, waiters-1)
	}
}

func TestGroupSequentialCallsRunSeparately(t *testing.T) {
	var g Group[int]
	runs := 0
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do(context.Background(), "k", func() (int, error) {
			runs++
			return runs, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if v != i+1 {
			t.Fatalf("call %d returned %d, want fresh run %d", i, v, i+1)
		}
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group[int]
	want := errors.New("boom")
	_, err, _ := g.Do(context.Background(), "k", func() (int, error) { return 0, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestGroupContextCancellation(t *testing.T) {
	var g Group[int]
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, _ := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader got %d, %v", v, err)
		}
	}()
	<-started // the blocking call must own the key before the follower joins

	// A follower with an already-expired context must not block.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	deadline := time.After(5 * time.Second)
	got := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func() (int, error) { return 0, nil })
		got <- err
	}()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-deadline:
		t.Fatal("cancelled follower blocked")
	}

	close(release)
	<-leaderDone
}
