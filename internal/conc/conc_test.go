package conc

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachResultsInOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 16} {
		got, err := ForEach(10, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	if _, err := ForEach(n, 8, func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachFirstErrorByIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := ForEach(20, workers, func(i int) (int, error) {
			if i == 3 || i == 17 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	got, err := ForEach(0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("n=0: got %v, %v", got, err)
	}
}
