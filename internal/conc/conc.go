// Package conc provides the small deterministic-concurrency primitive
// shared by the solver layer (internal/core) and the experiment harness
// (internal/exper): a bounded worker pool whose results come back in index
// order, so downstream aggregation is bit-for-bit identical to a serial
// run regardless of scheduling.
package conc

import (
	"runtime"
	"sync"
)

// ForEach runs fn for indices 0..n−1 on a bounded worker pool and returns
// the per-index results in index order. workers ≤ 0 means GOMAXPROCS; the
// pool never exceeds n. Every index is attempted even after a failure; the
// first error (by index, not by completion time) wins, matching what a
// plain serial loop that collects all errors would report.
func ForEach[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	if workers == 1 {
		// Serial fast path: no goroutine or channel traffic.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
