package online

import (
	"fmt"

	"dvsreject/internal/core"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Replanner maintains a frame instance under a stream of events — task
// arrivals, cancellations and revisions — and keeps the exact rejection-DP
// plan current after each one. Instead of the replan-from-scratch path
// (one full DP table per event), it evolves a single checkpointed
// core.DPState: each event re-runs only the DP rows at or after the first
// task the event touched, which for the dominant arrival case is the new
// tail alone. Every plan is bit-identical to a cold core.DP solve of the
// same task set — the replan tests pin this per event.
//
// The frame deadline and the processor are fixed at construction: they
// determine the DP's grid capacity, and a capacity change invalidates
// every recorded row. Not safe for concurrent use.
type Replanner struct {
	// DP configures the solver (workers, state limit, checkpoint stride).
	// Set before the first event; the zero value is the standard DP.
	DP core.DP
	// Cold disables warm-starting: every event re-solves from scratch.
	// It exists as the baseline the benchmarks and tests compare against.
	Cold bool
	// FastPow opts every replan into the integer-exponent fast paths (see
	// core.Instance.FastPow). Set before the first event; warm and cold
	// solves of the same stream see the same flag, so plans stay
	// bit-identical either way.
	FastPow bool

	proc     speed.Proc
	deadline float64
	tasks    []task.Task
	byID     map[int]int
	st       core.DPState
	warm     bool
	last     core.Solution
	stats    ReplanStats
}

// ReplanStats counts the incremental work across a Replanner's lifetime.
type ReplanStats struct {
	Events     int
	WarmSolves int   // events served by an incremental re-solve
	ColdSolves int   // events that rebuilt the table (first event, early-row edits)
	RowsRerun  int64 // DP rows actually evaluated
	RowsFull   int64 // rows a from-scratch policy would have evaluated
}

// NewReplanner builds an empty replanner for one frame.
func NewReplanner(proc speed.Proc, deadline float64) *Replanner {
	return &Replanner{
		proc:     proc,
		deadline: deadline,
		byID:     make(map[int]int),
	}
}

// Len returns the current task count.
func (r *Replanner) Len() int { return len(r.tasks) }

// Plan returns the solution of the last event. The slices alias the
// replanner's copy; callers that retain them across events must clone.
func (r *Replanner) Plan() core.Solution { return r.last }

// Stats snapshots the work counters.
func (r *Replanner) Stats() ReplanStats { return r.stats }

// Snapshot returns the current frame instance with a private task-list
// copy — what the last plan was solved against.
func (r *Replanner) Snapshot() core.Instance {
	ts := make([]task.Task, len(r.tasks))
	copy(ts, r.tasks)
	return core.Instance{
		Tasks:   task.Set{Tasks: ts, Deadline: r.deadline},
		Proc:    r.proc,
		FastPow: r.FastPow,
	}
}

// Arrive appends a new task and replans. Divergence is at the old tail,
// so the incremental path re-runs one row plus the final scan.
func (r *Replanner) Arrive(t task.Task) (core.Solution, error) {
	if _, dup := r.byID[t.ID]; dup {
		return core.Solution{}, fmt.Errorf("online: replan: duplicate task ID %d", t.ID)
	}
	r.tasks = append(r.tasks, t)
	r.byID[t.ID] = len(r.tasks) - 1
	return r.replan()
}

// Withdraw removes a task (a cancellation) and replans over the surviving
// suffix: rows before the removed index are reused verbatim.
func (r *Replanner) Withdraw(id int) (core.Solution, error) {
	i, ok := r.byID[id]
	if !ok {
		return core.Solution{}, fmt.Errorf("online: replan: unknown task ID %d", id)
	}
	r.tasks = append(r.tasks[:i], r.tasks[i+1:]...)
	delete(r.byID, id)
	for j := i; j < len(r.tasks); j++ {
		r.byID[r.tasks[j].ID] = j
	}
	return r.replan()
}

// Revise replaces the task with t's ID in place and replans.
func (r *Replanner) Revise(t task.Task) (core.Solution, error) {
	i, ok := r.byID[t.ID]
	if !ok {
		return core.Solution{}, fmt.Errorf("online: replan: unknown task ID %d", t.ID)
	}
	r.tasks[i] = t
	return r.replan()
}

// replan brings the plan current after a task-list edit.
func (r *Replanner) replan() (core.Solution, error) {
	r.stats.Events++
	n := len(r.tasks)
	r.stats.RowsFull += int64(n)
	if n == 0 {
		r.warm = false
		r.last = core.Solution{}
		return r.last, nil
	}
	in := core.Instance{
		Tasks:   task.Set{Tasks: r.tasks, Deadline: r.deadline},
		Proc:    r.proc,
		FastPow: r.FastPow,
	}
	if !r.Cold && r.warm {
		sol, stats, ok, err := r.DP.SolveFrom(&r.st, in, true)
		if err != nil {
			r.warm = false
			return core.Solution{}, err
		}
		if ok {
			r.stats.WarmSolves++
			r.stats.RowsRerun += stats.Rows
			r.last = sol
			return sol, nil
		}
		// Divergence before the first checkpoint (or an invalidated
		// state): rebuild below.
	}
	var (
		sol core.Solution
		err error
	)
	if r.Cold {
		sol, err = r.DP.Solve(in)
	} else {
		sol, _, err = r.DP.SolveCheckpoint(in, &r.st)
	}
	if err != nil {
		r.warm = false
		return core.Solution{}, err
	}
	r.warm = !r.Cold
	r.stats.ColdSolves++
	r.stats.RowsRerun += int64(n)
	r.last = sol
	return sol, nil
}
