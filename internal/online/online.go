// Package online extends task rejection to jobs that arrive over time: at
// each arrival the controller must irrevocably admit the job (guaranteeing
// its deadline) or reject it (paying its penalty), without knowledge of
// future arrivals.
//
// The execution substrate is the Optimal Available policy of Yao, Demers
// and Shenker: whenever the job pool changes, the processor re-plans the
// minimum-energy speed schedule (internal/sched/yds) for the remaining
// work and follows it until the next event. Admission policies price a
// candidate against that plan: the marginal-cost policy accepts a job iff
// the increase in planned YDS energy is below the job's penalty and the
// augmented plan stays within smax.
//
// The offline clairvoyant reference (exhaustive over subsets, YDS-costed)
// bounds how much the lack of future knowledge costs; experiment E11
// measures the empirical competitive ratio.
package online

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"

	"dvsreject/internal/cache"
	"dvsreject/internal/conc"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/sched/yds"
	"dvsreject/internal/speed"
)

// Job is one aperiodic job.
type Job struct {
	ID       int
	Arrival  float64 // release time, ≥ 0
	Deadline float64 // absolute deadline, > Arrival
	Cycles   float64 // execution requirement, > 0
	Penalty  float64 // rejection penalty, ≥ 0
}

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	switch {
	case math.IsNaN(j.Arrival) || j.Arrival < 0:
		return fmt.Errorf("online: job %d: arrival = %v, want ≥ 0", j.ID, j.Arrival)
	case math.IsNaN(j.Deadline) || j.Deadline <= j.Arrival:
		return fmt.Errorf("online: job %d: deadline = %v, want > arrival %v", j.ID, j.Deadline, j.Arrival)
	case math.IsNaN(j.Cycles) || j.Cycles <= 0:
		return fmt.Errorf("online: job %d: cycles = %v, want > 0", j.ID, j.Cycles)
	case math.IsNaN(j.Penalty) || math.IsInf(j.Penalty, 0) || j.Penalty < 0:
		return fmt.Errorf("online: job %d: penalty = %v, want finite ≥ 0", j.ID, j.Penalty)
	}
	return nil
}

// State is what a policy sees at an admission decision.
type State struct {
	Now  float64
	Pool []PoolJob // admitted, unfinished jobs
	Proc speed.Proc

	// plans, when non-nil, memoizes YDS plans by their exact job list, so
	// the plan a policy prices an admission against is handed to the
	// executor (and to later identical probes) instead of being recomputed.
	// A YDS schedule is a pure function of its job list, so entries never
	// need invalidation: a stale entry simply never matches again.
	plans *planCache
}

// planCache holds the most recent YDS plans keyed by their job list. It is
// a thin wrapper over the repository-wide cache.LRU: two entries suffice
// because the simulator alternates between "pool" and "pool + candidate"
// plans at each arrival. Keys are the exact bit patterns of the job list,
// so a hit is only ever served for a bit-identical replan.
type planCache struct {
	lru *cache.LRU[string, yds.Schedule]
	key []byte // encoding scratch, reused across plans
}

func newPlanCache() *planCache {
	return &planCache{lru: cache.NewLRU[string, yds.Schedule](2)}
}

// appendJobKey encodes the job list into buf; 32 bytes per job, so the key
// length disambiguates list lengths without explicit framing.
func appendJobKey(buf []byte, jobs []edf.Job) []byte {
	for _, j := range jobs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(j.TaskID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.Release))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.Deadline))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.Cycles))
	}
	return buf
}

// plan returns the YDS schedule for the job list, from the cache when the
// exact list was planned before. A nil receiver computes without caching.
func (pc *planCache) plan(jobs []edf.Job) (yds.Schedule, error) {
	if pc == nil {
		return yds.Compute(jobs)
	}
	pc.key = appendJobKey(pc.key[:0], jobs)
	k := string(pc.key)
	if s, ok := pc.lru.Get(k); ok {
		return s, nil
	}
	s, err := yds.Compute(jobs)
	if err != nil {
		return yds.Schedule{}, err
	}
	pc.lru.Put(k, s)
	return s, nil
}

// PoolJob is an admitted job's remaining obligation.
type PoolJob struct {
	ID        int
	Deadline  float64
	Remaining float64
}

// Policy decides admissions.
type Policy interface {
	Name() string
	// Admit is called once per arriving job, with the pool already
	// advanced to the arrival instant.
	Admit(st State, j Job) bool
}

// planEnergy computes the YDS plan for the pool (optionally with an extra
// job) from time now: its dynamic energy and its maximum speed. An empty
// pool plans zero. The plan's job windows are [now, deadline) for pool
// jobs and [arrival, deadline) for the candidate (identical at admission
// time).
func planEnergy(st State, extra *Job) (energy, maxSpeed float64, err error) {
	var jobs []edf.Job
	for _, p := range st.Pool {
		if p.Remaining <= 0 {
			continue
		}
		jobs = append(jobs, edf.Job{
			TaskID: p.ID, Release: st.Now, Deadline: p.Deadline, Cycles: p.Remaining,
		})
	}
	if extra != nil {
		jobs = append(jobs, edf.Job{
			TaskID: extra.ID, Release: math.Max(st.Now, extra.Arrival),
			Deadline: extra.Deadline, Cycles: extra.Cycles,
		})
	}
	if len(jobs) == 0 {
		return 0, 0, nil
	}
	s, err := st.plans.plan(jobs)
	if err != nil {
		return 0, 0, err
	}
	return s.Energy(st.Proc.Model), s.MaxSpeed, nil
}

// MarginalCost admits a job iff the YDS-planned energy increase is below
// the job's penalty and the augmented plan respects smax — the online
// analogue of the offline greedy's marginal test.
type MarginalCost struct{}

// Name implements Policy.
func (MarginalCost) Name() string { return "ONLINE-MARGINAL" }

// Admit implements Policy.
func (MarginalCost) Admit(st State, j Job) bool {
	before, _, err := planEnergy(st, nil)
	if err != nil {
		return false
	}
	after, maxS, err := planEnergy(st, &j)
	if err != nil {
		return false
	}
	if maxS > st.Proc.SMax*(1+1e-9) {
		return false
	}
	return after-before < j.Penalty
}

// AdmitFeasible admits whenever the augmented plan fits smax — the
// energy-oblivious online baseline.
type AdmitFeasible struct{}

// Name implements Policy.
func (AdmitFeasible) Name() string { return "ONLINE-FEASIBLE" }

// Admit implements Policy.
func (AdmitFeasible) Admit(st State, j Job) bool {
	_, maxS, err := planEnergy(st, &j)
	return err == nil && maxS <= st.Proc.SMax*(1+1e-9)
}

// RejectEverything is the degenerate anchor.
type RejectEverything struct{}

// Name implements Policy.
func (RejectEverything) Name() string { return "ONLINE-REJECT-ALL" }

// Admit implements Policy.
func (RejectEverything) Admit(State, Job) bool { return false }

// Result is the outcome of an online run.
type Result struct {
	Accepted []int
	Rejected []int
	Energy   float64
	Penalty  float64
	Cost     float64
	Misses   int // deadline violations among admitted jobs (0 for sound policies)
}

// Simulate runs the event loop: arrivals in time order, pool execution
// under the recomputed YDS plan between events, policy consulted at each
// arrival. The processor must be ideal (continuous, leakage-free).
func Simulate(jobs []Job, proc speed.Proc, pol Policy) (Result, error) {
	if err := proc.Validate(); err != nil {
		return Result{}, err
	}
	if proc.Levels != nil || proc.Model.Static() != 0 {
		return Result{}, fmt.Errorf("online: requires an ideal leakage-free processor")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })

	var res Result
	var pool []PoolJob
	now := 0.0
	// One cache shared by the policy's pricing probes and the executor: the
	// plan the policy computed for the chosen outcome (pool plus job when
	// admitted, pool alone when rejected) has exactly the job list the next
	// execute builds — same pool order, same Release = now — so the executor
	// finds it by content instead of re-running YDS.
	plans := newPlanCache()

	advance := func(to float64) error {
		e, misses, err := execute(&pool, proc, now, to, plans)
		if err != nil {
			return err
		}
		res.Energy += e
		res.Misses += misses
		now = to
		return nil
	}

	for _, oi := range order {
		j := jobs[oi]
		if err := advance(j.Arrival); err != nil {
			return Result{}, err
		}
		st := State{Now: now, Pool: slices.Clone(pool), Proc: proc, plans: plans}
		if pol.Admit(st, j) {
			res.Accepted = append(res.Accepted, j.ID)
			pool = append(pool, PoolJob{ID: j.ID, Deadline: j.Deadline, Remaining: j.Cycles})
		} else {
			res.Rejected = append(res.Rejected, j.ID)
			res.Penalty += j.Penalty
		}
	}
	// Drain the pool.
	horizon := now
	for _, p := range pool {
		if p.Deadline > horizon {
			horizon = p.Deadline
		}
	}
	if err := advance(horizon); err != nil {
		return Result{}, err
	}

	slices.Sort(res.Accepted)
	slices.Sort(res.Rejected)
	res.Cost = res.Energy + res.Penalty
	return res, nil
}

// execute advances the pool from `from` to `to` under the YDS plan for the
// current pool, consuming remaining work in EDF order and accumulating
// dynamic energy. Jobs whose deadline passes with work left are counted as
// misses and dropped (cannot happen under sound admission).
func execute(pool *[]PoolJob, proc speed.Proc, from, to float64, plans *planCache) (energy float64, misses int, err error) {
	if to <= from || len(*pool) == 0 {
		compact(pool, from, &misses)
		return 0, misses, nil
	}
	var jobs []edf.Job
	for _, p := range *pool {
		if p.Remaining <= 0 {
			continue
		}
		jobs = append(jobs, edf.Job{TaskID: p.ID, Release: from, Deadline: p.Deadline, Cycles: p.Remaining})
	}
	if len(jobs) == 0 {
		compact(pool, to, &misses)
		return 0, 0, nil
	}
	plan, err := plans.plan(jobs)
	if err != nil {
		return 0, 0, err
	}
	profile := plan.Profile()

	// Consume the profile in [from, to): within each segment the
	// earliest-deadline unfinished job runs. Every pool job is released at
	// `from` and Remaining only ever decreases here, so the unfinished job
	// with the earliest deadline (first pool index on ties, as in the former
	// per-piece scan) is always the cursor position in this deadline-stable
	// order.
	ord := make([]int, 0, len(*pool))
	for i := range *pool {
		if (*pool)[i].Remaining > 0 {
			ord = append(ord, i)
		}
	}
	sort.SliceStable(ord, func(a, b int) bool { return (*pool)[ord[a]].Deadline < (*pool)[ord[b]].Deadline })
	cursor := 0
	nextJob := func() *PoolJob {
		for cursor < len(ord) {
			p := &(*pool)[ord[cursor]]
			if p.Remaining > 0 {
				return p
			}
			cursor++
		}
		return nil
	}
	for _, seg := range profile {
		lo := math.Max(seg.Start, from)
		hi := math.Min(seg.End, to)
		for lo < hi-1e-12 {
			cur := nextJob()
			if cur == nil {
				break
			}
			dur := hi - lo
			finish := cur.Remaining / seg.Speed
			if finish < dur {
				dur = finish
			}
			energy += proc.Model.Dynamic(seg.Speed) * dur
			cur.Remaining -= seg.Speed * dur
			if cur.Remaining < 1e-9 {
				cur.Remaining = 0
			}
			lo += dur
		}
	}
	compact(pool, to, &misses)
	return energy, misses, nil
}

// compact removes finished jobs and counts deadline misses at time now.
func compact(pool *[]PoolJob, now float64, misses *int) {
	out := (*pool)[:0]
	for _, p := range *pool {
		switch {
		case p.Remaining <= 0:
			// finished
		case p.Deadline <= now+1e-9:
			*misses++
		default:
			out = append(out, p)
		}
	}
	*pool = out
}

// OfflineOptimal is the clairvoyant reference: the best admission subset
// under full knowledge, costed by the YDS optimal schedule, found by
// exhaustive enumeration (n ≤ maxOfflineJobs).
func OfflineOptimal(jobs []Job, proc speed.Proc) (Result, error) {
	const maxOfflineJobs = 20
	if len(jobs) > maxOfflineJobs {
		return Result{}, fmt.Errorf("online: offline reference limited to %d jobs, got %d", maxOfflineJobs, len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	n := len(jobs)
	total := 1 << n

	// Fan contiguous mask ranges over the worker pool. Each chunk keeps its
	// first strict-improvement winner in ascending mask order, and the fold
	// below walks chunks in that same order with the same strict <, so the
	// overall winner — including exact-cost tie-breaks — is the one the
	// serial ascending-mask loop would pick.
	chunks := runtime.GOMAXPROCS(0) * 4
	if chunks > total {
		chunks = total
	}
	per := (total + chunks - 1) / chunks
	wins, err := conc.ForEach(chunks, 0, func(ci int) (offlineBest, error) {
		start := ci * per
		end := start + per
		if end > total {
			end = total
		}
		bc := offlineBest{cost: math.Inf(1)}
		sel := make([]edf.Job, 0, n)
		for mask := start; mask < end; mask++ {
			sel = sel[:0]
			var penalty float64
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					j := jobs[b]
					sel = append(sel, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
				} else {
					penalty += jobs[b].Penalty
				}
			}
			var energy float64
			if len(sel) > 0 {
				s, err := yds.Compute(sel)
				if err != nil {
					return offlineBest{}, err
				}
				if s.MaxSpeed > proc.SMax*(1+1e-9) {
					continue
				}
				energy = s.Energy(proc.Model)
			}
			if cost := energy + penalty; cost < bc.cost {
				bc = offlineBest{mask: mask, energy: energy, penalty: penalty, cost: cost, found: true}
			}
		}
		return bc, nil
	})
	if err != nil {
		return Result{}, err
	}

	best := Result{Cost: math.Inf(1)}
	winner := offlineBest{cost: math.Inf(1)}
	for _, w := range wins {
		if w.found && w.cost < winner.cost {
			winner = w
		}
	}
	if winner.found {
		best = Result{Energy: winner.energy, Penalty: winner.penalty, Cost: winner.cost}
		for b := 0; b < n; b++ {
			if winner.mask&(1<<b) != 0 {
				best.Accepted = append(best.Accepted, jobs[b].ID)
			} else {
				best.Rejected = append(best.Rejected, jobs[b].ID)
			}
		}
	}
	slices.Sort(best.Accepted)
	slices.Sort(best.Rejected)
	return best, nil
}

// offlineBest is one chunk's incumbent in the offline mask sweep.
type offlineBest struct {
	mask    int
	energy  float64
	penalty float64
	cost    float64
	found   bool
}
