package online

// Differential corpus pinning the plan-cache, EDF-cursor and parallel
// offline-sweep optimizations to the seed code shape: the ref* functions
// below are the seed implementations (direct yds.Compute at every probe,
// per-piece earliest-deadline scans, serial ascending-mask offline loop),
// and the optimized package must reproduce their Results bit for bit.
// The corpus deliberately includes simultaneous arrivals (zero-width
// execute windows, where the cached plan must be skipped, not misused)
// and zero penalties (exact-cost ties in the offline sweep).

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/sched/yds"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// refPlanEnergy is the seed planEnergy: an uncached yds.Compute per probe.
func refPlanEnergy(now float64, pool []PoolJob, proc speed.Proc, extra *Job) (energy, maxSpeed float64, err error) {
	var jobs []edf.Job
	for _, p := range pool {
		if p.Remaining <= 0 {
			continue
		}
		jobs = append(jobs, edf.Job{
			TaskID: p.ID, Release: now, Deadline: p.Deadline, Cycles: p.Remaining,
		})
	}
	if extra != nil {
		jobs = append(jobs, edf.Job{
			TaskID: extra.ID, Release: math.Max(now, extra.Arrival),
			Deadline: extra.Deadline, Cycles: extra.Cycles,
		})
	}
	if len(jobs) == 0 {
		return 0, 0, nil
	}
	s, err := yds.Compute(jobs)
	if err != nil {
		return 0, 0, err
	}
	return s.Energy(proc.Model), s.MaxSpeed, nil
}

// refAdmit mirrors the seed policies on top of refPlanEnergy.
func refAdmit(policy string, now float64, pool []PoolJob, proc speed.Proc, j Job) bool {
	switch policy {
	case "marginal":
		before, _, err := refPlanEnergy(now, pool, proc, nil)
		if err != nil {
			return false
		}
		after, maxS, err := refPlanEnergy(now, pool, proc, &j)
		if err != nil {
			return false
		}
		if maxS > proc.SMax*(1+1e-9) {
			return false
		}
		return after-before < j.Penalty
	case "feasible":
		_, maxS, err := refPlanEnergy(now, pool, proc, &j)
		return err == nil && maxS <= proc.SMax*(1+1e-9)
	default: // reject-all
		return false
	}
}

// refEarliestDeadline is the seed per-piece pool scan.
func refEarliestDeadline(pool []PoolJob) *PoolJob {
	var best *PoolJob
	for i := range pool {
		if pool[i].Remaining <= 0 {
			continue
		}
		if best == nil || pool[i].Deadline < best.Deadline {
			best = &pool[i]
		}
	}
	return best
}

// refExecute is the seed execute: a fresh yds.Compute per window and an
// earliest-deadline scan per profile piece.
func refExecute(pool *[]PoolJob, proc speed.Proc, from, to float64) (energy float64, misses int, err error) {
	if to <= from || len(*pool) == 0 {
		compact(pool, from, &misses)
		return 0, misses, nil
	}
	var jobs []edf.Job
	for _, p := range *pool {
		if p.Remaining <= 0 {
			continue
		}
		jobs = append(jobs, edf.Job{TaskID: p.ID, Release: from, Deadline: p.Deadline, Cycles: p.Remaining})
	}
	if len(jobs) == 0 {
		compact(pool, to, &misses)
		return 0, 0, nil
	}
	plan, err := yds.Compute(jobs)
	if err != nil {
		return 0, 0, err
	}
	profile := plan.Profile()

	for _, seg := range profile {
		lo := math.Max(seg.Start, from)
		hi := math.Min(seg.End, to)
		for lo < hi-1e-12 {
			cur := refEarliestDeadline(*pool)
			if cur == nil {
				break
			}
			dur := hi - lo
			finish := cur.Remaining / seg.Speed
			if finish < dur {
				dur = finish
			}
			energy += proc.Model.Dynamic(seg.Speed) * dur
			cur.Remaining -= seg.Speed * dur
			if cur.Remaining < 1e-9 {
				cur.Remaining = 0
			}
			lo += dur
		}
	}
	compact(pool, to, &misses)
	return energy, misses, nil
}

// refSimulate is the seed event loop over refExecute/refAdmit.
func refSimulate(jobs []Job, proc speed.Proc, policy string) (Result, error) {
	if err := proc.Validate(); err != nil {
		return Result{}, err
	}
	if proc.Levels != nil || proc.Model.Static() != 0 {
		return Result{}, fmt.Errorf("online: requires an ideal leakage-free processor")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })

	var res Result
	var pool []PoolJob
	now := 0.0

	advance := func(to float64) error {
		e, misses, err := refExecute(&pool, proc, now, to)
		if err != nil {
			return err
		}
		res.Energy += e
		res.Misses += misses
		now = to
		return nil
	}

	for _, oi := range order {
		j := jobs[oi]
		if err := advance(j.Arrival); err != nil {
			return Result{}, err
		}
		if refAdmit(policy, now, slices.Clone(pool), proc, j) {
			res.Accepted = append(res.Accepted, j.ID)
			pool = append(pool, PoolJob{ID: j.ID, Deadline: j.Deadline, Remaining: j.Cycles})
		} else {
			res.Rejected = append(res.Rejected, j.ID)
			res.Penalty += j.Penalty
		}
	}
	horizon := now
	for _, p := range pool {
		if p.Deadline > horizon {
			horizon = p.Deadline
		}
	}
	if err := advance(horizon); err != nil {
		return Result{}, err
	}

	slices.Sort(res.Accepted)
	slices.Sort(res.Rejected)
	res.Cost = res.Energy + res.Penalty
	return res, nil
}

// refOfflineOptimal is the seed serial ascending-mask sweep.
func refOfflineOptimal(jobs []Job, proc speed.Proc) (Result, error) {
	const maxOfflineJobs = 20
	if len(jobs) > maxOfflineJobs {
		return Result{}, fmt.Errorf("online: offline reference limited to %d jobs, got %d", maxOfflineJobs, len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	n := len(jobs)
	best := Result{Cost: math.Inf(1)}
	for mask := 0; mask < 1<<n; mask++ {
		var sel []edf.Job
		var penalty float64
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				j := jobs[b]
				sel = append(sel, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
			} else {
				penalty += jobs[b].Penalty
			}
		}
		var energy float64
		if len(sel) > 0 {
			s, err := yds.Compute(sel)
			if err != nil {
				return Result{}, err
			}
			if s.MaxSpeed > proc.SMax*(1+1e-9) {
				continue
			}
			energy = s.Energy(proc.Model)
		}
		if cost := energy + penalty; cost < best.Cost {
			best = Result{Energy: energy, Penalty: penalty, Cost: cost}
			best.Accepted, best.Rejected = nil, nil
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					best.Accepted = append(best.Accepted, jobs[b].ID)
				} else {
					best.Rejected = append(best.Rejected, jobs[b].ID)
				}
			}
		}
	}
	slices.Sort(best.Accepted)
	slices.Sort(best.Rejected)
	return best, nil
}

// onlineCorpus builds job storms across the shapes the optimizations must
// survive: bursty real-valued arrivals, integer-grid arrivals full of
// simultaneous releases, tight overloaded storms that force rejections,
// and zero-penalty jobs that create exact-cost ties offline.
func onlineCorpus() []struct {
	label string
	jobs  []Job
	proc  speed.Proc
} {
	var corpus []struct {
		label string
		jobs  []Job
		proc  speed.Proc
	}
	add := func(label string, jobs []Job, smax float64) {
		corpus = append(corpus, struct {
			label string
			jobs  []Job
			proc  speed.Proc
		}{label, jobs, speed.Proc{Model: power.Cubic(), SMax: smax}})
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + int(seed)%5

		var storm []Job
		for i := 0; i < n; i++ {
			a := rng.Float64() * 30
			storm = append(storm, Job{
				ID: i, Arrival: a, Deadline: a + 1 + rng.Float64()*15,
				Cycles: 0.5 + rng.Float64()*4, Penalty: rng.Float64() * 3,
			})
		}
		add(fmt.Sprintf("storm/%d", seed), storm, 1)

		var grid []Job
		for i := 0; i < n; i++ {
			a := float64(rng.Intn(4)) // many exact simultaneous arrivals
			grid = append(grid, Job{
				ID: i, Arrival: a, Deadline: a + float64(1+rng.Intn(8)),
				Cycles: float64(1+rng.Intn(3)) / 2, Penalty: float64(rng.Intn(3)), // zero penalties included
			})
		}
		add(fmt.Sprintf("grid/%d", seed), grid, 0.8)

		var tight []Job
		for i := 0; i < n; i++ {
			a := rng.Float64() * 5
			tight = append(tight, Job{
				ID: i, Arrival: a, Deadline: a + 0.5 + rng.Float64()*2,
				Cycles: 1 + rng.Float64()*3, Penalty: 0.5 + rng.Float64()*5,
			})
		}
		add(fmt.Sprintf("tight/%d", seed), tight, 1.2)
	}
	return corpus
}

// admissionOf adapts Result to the shared oracle's mirror struct.
func admissionOf(r Result) oracle.AdmissionResult {
	return oracle.AdmissionResult{
		Accepted: r.Accepted, Rejected: r.Rejected,
		Energy: r.Energy, Penalty: r.Penalty, Cost: r.Cost, Misses: r.Misses,
	}
}

func admissionJobs(jobs []Job) []oracle.AdmissionJob {
	out := make([]oracle.AdmissionJob, len(jobs))
	for i, j := range jobs {
		out[i] = oracle.AdmissionJob{ID: j.ID, Arrival: j.Arrival, Penalty: j.Penalty}
	}
	return out
}

func mustEqualResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if err := oracle.EqualAdmissionResults(admissionOf(got), admissionOf(want)); err != nil {
		t.Errorf("%s: results diverge: %v\n got %+v\nwant %+v", label, err, got, want)
	}
}

func TestDifferentialSimulate(t *testing.T) {
	policies := []struct {
		key string
		pol Policy
	}{
		{"marginal", MarginalCost{}},
		{"feasible", AdmitFeasible{}},
		{"reject-all", RejectEverything{}},
	}
	for _, c := range onlineCorpus() {
		for _, p := range policies {
			want, wantErr := refSimulate(c.jobs, c.proc, p.key)
			got, gotErr := Simulate(c.jobs, c.proc, p.pol)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%s: error mismatch: %v vs %v", c.label, p.key, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			mustEqualResults(t, c.label+"/"+p.key, got, want)
			if err := oracle.CheckAdmission(admissionJobs(c.jobs), admissionOf(got), false); err != nil {
				t.Errorf("%s/%s: %v", c.label, p.key, err)
			}
		}
	}
}

func TestDifferentialOfflineOptimal(t *testing.T) {
	for _, c := range onlineCorpus() {
		jobs := c.jobs
		if len(jobs) > 9 { // keep the 2^n sweep fast
			jobs = jobs[:9]
		}
		want, wantErr := refOfflineOptimal(jobs, c.proc)
		got, gotErr := OfflineOptimal(jobs, c.proc)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", c.label, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		mustEqualResults(t, c.label, got, want)
	}
}
