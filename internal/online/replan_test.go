package online

import (
	"math/rand"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// TestReplannerMatchesColdSolve drives a mixed arrival/cancel/revise
// stream and pins every incremental plan to a from-scratch core.DP solve
// of the same task set, bit for bit.
func TestReplannerMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	const deadline = 120
	r := NewReplanner(proc, deadline)
	r.DP = core.DP{CheckpointStride: 8}

	var live []int // IDs currently in the frame
	for ev := 0; ev < 80; ev++ {
		var (
			got core.Solution
			err error
		)
		switch {
		case len(live) > 5 && ev%9 == 4:
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			got, err = r.Withdraw(id)
		case len(live) > 3 && ev%5 == 2:
			id := live[rng.Intn(len(live))]
			got, err = r.Revise(task.Task{ID: id, Cycles: 1 + rng.Int63n(20), Penalty: rng.Float64() * 5})
		default:
			id := ev + 1
			live = append(live, id)
			got, err = r.Arrive(task.Task{ID: id, Cycles: 1 + rng.Int63n(20), Penalty: rng.Float64() * 5})
		}
		if err != nil {
			t.Fatalf("event %d: %v", ev, err)
		}
		in := core.Instance{Tasks: task.Set{Tasks: currentTasks(r), Deadline: deadline}, Proc: proc}
		want, err := (core.DP{}).Solve(in)
		if err != nil {
			t.Fatalf("event %d: cold ref: %v", ev, err)
		}
		if err := verify.BitIdenticalSolutions(got, want); err != nil {
			t.Fatalf("event %d (n=%d): %v", ev, r.Len(), err)
		}
		if err := verify.CheckSolution(in, got); err != nil {
			t.Fatalf("event %d: oracle: %v", ev, err)
		}
	}
	st := r.Stats()
	if st.WarmSolves == 0 {
		t.Fatal("stream never took the incremental path")
	}
	if st.RowsRerun >= st.RowsFull {
		t.Fatalf("incremental replan saved nothing: reran %d of %d rows", st.RowsRerun, st.RowsFull)
	}
	t.Logf("events=%d warm=%d cold=%d rows %d/%d (%.1f%%)",
		st.Events, st.WarmSolves, st.ColdSolves, st.RowsRerun, st.RowsFull,
		100*float64(st.RowsRerun)/float64(st.RowsFull))
}

// currentTasks snapshots the replanner's task list via its public events
// API surface (the tasks slice itself is private).
func currentTasks(r *Replanner) []task.Task {
	in := r.Snapshot()
	return in.Tasks.Tasks
}

// TestReplannerArrivalsMostlyWarm asserts the headline case — a pure
// arrival stream — stays on the incremental path after the first event.
func TestReplannerArrivalsMostlyWarm(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	r := NewReplanner(proc, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if _, err := r.Arrive(task.Task{ID: i + 1, Cycles: 1 + rng.Int63n(10), Penalty: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.ColdSolves != 1 || st.WarmSolves != 49 {
		t.Fatalf("arrival stream: cold=%d warm=%d, want 1/49", st.ColdSolves, st.WarmSolves)
	}
}

// TestReplannerEdgeCases covers duplicate arrivals, unknown withdrawals
// and draining the frame back to empty.
func TestReplannerEdgeCases(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	r := NewReplanner(proc, 50)
	if _, err := r.Arrive(task.Task{ID: 1, Cycles: 5, Penalty: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Arrive(task.Task{ID: 1, Cycles: 3, Penalty: 1}); err == nil {
		t.Fatal("duplicate arrival accepted")
	}
	if _, err := r.Withdraw(99); err == nil {
		t.Fatal("unknown withdrawal accepted")
	}
	sol, err := r.Withdraw(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || len(sol.Accepted) != 0 || sol.Cost != 0 {
		t.Fatalf("drained frame: len=%d sol=%+v", r.Len(), sol)
	}
	// The frame keeps working after draining.
	if _, err := r.Arrive(task.Task{ID: 2, Cycles: 4, Penalty: 2}); err != nil {
		t.Fatal(err)
	}
}
