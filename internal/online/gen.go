package online

import "math/rand"

// StormConfig describes a random arrival storm.
type StormConfig struct {
	N    int     // number of jobs
	Load float64 // long-run offered load relative to smax = 1
	Span float64 // arrival window length; 0 means 100
	// PenaltyScale multiplies penalties relative to the contested
	// calibration (≈ the energy of one mean job); 0 means 1.
	PenaltyScale float64
}

// RandomStorm draws an arrival storm: Poisson-ish arrivals over the span,
// windows of 5–35 time units, per-job work sized to hit the long-run load,
// penalties calibrated to the marginal energy scale so admissions are
// genuinely contested. Individual jobs stay feasible at smax = 1.
func RandomStorm(rng *rand.Rand, c StormConfig) []Job {
	span := c.Span
	if span == 0 {
		span = 100
	}
	scale := c.PenaltyScale
	if scale == 0 {
		scale = 1
	}
	meanWork := c.Load * span / float64(c.N)
	jobs := make([]Job, 0, c.N)
	for i := 0; i < c.N; i++ {
		a := rng.Float64() * span
		window := 5 + rng.Float64()*30
		work := meanWork * (0.3 + 1.4*rng.Float64())
		if work > window*0.9 {
			work = window * 0.9
		}
		jobs = append(jobs, Job{
			ID:       i,
			Arrival:  a,
			Deadline: a + window,
			Cycles:   work,
			Penalty:  rng.Float64() * meanWork * 1.5 * scale,
		})
	}
	return jobs
}
