package online

import (
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

func idealProc() speed.Proc {
	return speed.Proc{Model: power.Cubic(), SMax: 1}
}

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name    string
		j       Job
		wantErr bool
	}{
		{"valid", Job{ID: 1, Arrival: 0, Deadline: 10, Cycles: 5, Penalty: 1}, false},
		{"negative arrival", Job{Arrival: -1, Deadline: 10, Cycles: 5}, true},
		{"deadline at arrival", Job{Arrival: 5, Deadline: 5, Cycles: 5}, true},
		{"zero cycles", Job{Arrival: 0, Deadline: 10, Cycles: 0}, true},
		{"negative penalty", Job{Arrival: 0, Deadline: 10, Cycles: 5, Penalty: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.j.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSimulateSingleWorthwhileJob(t *testing.T) {
	// One job, marginal energy 0.5²·5 = 1.25 < penalty 2: accept, run at
	// its density 0.5.
	jobs := []Job{{ID: 1, Arrival: 0, Deadline: 10, Cycles: 5, Penalty: 2}}
	r, err := Simulate(jobs, idealProc(), MarginalCost{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 1 || r.Misses != 0 {
		t.Fatalf("result = %+v, want accepted", r)
	}
	if math.Abs(r.Energy-1.25) > 1e-9 {
		t.Errorf("energy = %v, want 1.25", r.Energy)
	}
	if r.Penalty != 0 || math.Abs(r.Cost-1.25) > 1e-9 {
		t.Errorf("cost = %v, want 1.25", r.Cost)
	}
}

func TestSimulateRejectsWorthlessJob(t *testing.T) {
	jobs := []Job{{ID: 1, Arrival: 0, Deadline: 10, Cycles: 5, Penalty: 0.1}}
	r, err := Simulate(jobs, idealProc(), MarginalCost{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 0 || math.Abs(r.Cost-0.1) > 1e-12 {
		t.Errorf("result = %+v, want rejection at cost 0.1", r)
	}
}

func TestSimulateRejectsInfeasibleJob(t *testing.T) {
	// Even an infinite penalty cannot buy an infeasible admission.
	jobs := []Job{{ID: 1, Arrival: 0, Deadline: 10, Cycles: 15, Penalty: 1e9}}
	r, err := Simulate(jobs, idealProc(), MarginalCost{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 0 {
		t.Errorf("infeasible job admitted: %+v", r)
	}
	// The feasibility baseline must refuse it too.
	r, err = Simulate(jobs, idealProc(), AdmitFeasible{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 0 {
		t.Errorf("AdmitFeasible admitted an infeasible job: %+v", r)
	}
}

func TestAdmittedWorkAlwaysCompletes(t *testing.T) {
	// Soundness: no admitted job ever misses, across random arrival storms
	// and all policies.
	for _, pol := range []Policy{MarginalCost{}, AdmitFeasible{}, RejectEverything{}} {
		for seed := int64(0); seed < 15; seed++ {
			jobs := randomJobs(rand.New(rand.NewSource(seed)), 12, 1.5)
			r, err := Simulate(jobs, idealProc(), pol)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pol.Name(), seed, err)
			}
			if r.Misses != 0 {
				t.Errorf("%s seed %d: %d admitted jobs missed", pol.Name(), seed, r.Misses)
			}
			if len(r.Accepted)+len(r.Rejected) != len(jobs) {
				t.Errorf("%s seed %d: decisions don't partition the jobs", pol.Name(), seed)
			}
		}
	}
}

func TestRejectEverything(t *testing.T) {
	jobs := randomJobs(rand.New(rand.NewSource(1)), 5, 1)
	r, err := Simulate(jobs, idealProc(), RejectEverything{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, j := range jobs {
		want += j.Penalty
	}
	if len(r.Accepted) != 0 || math.Abs(r.Cost-want) > 1e-9 {
		t.Errorf("cost = %v, want all penalties %v", r.Cost, want)
	}
}

func TestOnlineNeverBeatsOffline(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		jobs := randomJobs(rand.New(rand.NewSource(seed)), 10, 1.8)
		off, err := OfflineOptimal(jobs, idealProc())
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{MarginalCost{}, AdmitFeasible{}} {
			on, err := Simulate(jobs, idealProc(), pol)
			if err != nil {
				t.Fatal(err)
			}
			if on.Cost < off.Cost-1e-6*(1+off.Cost) {
				t.Errorf("seed %d: %s cost %v beats clairvoyant %v", seed, pol.Name(), on.Cost, off.Cost)
			}
		}
	}
}

func TestMarginalBeatsBaselinesOnAverage(t *testing.T) {
	var mc, af, re float64
	for seed := int64(0); seed < 20; seed++ {
		jobs := randomJobs(rand.New(rand.NewSource(seed)), 12, 2.0)
		a, err := Simulate(jobs, idealProc(), MarginalCost{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(jobs, idealProc(), AdmitFeasible{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Simulate(jobs, idealProc(), RejectEverything{})
		if err != nil {
			t.Fatal(err)
		}
		mc += a.Cost
		af += b.Cost
		re += c.Cost
	}
	if !(mc < af && mc < re) {
		t.Errorf("marginal-cost (%v) must beat feasible (%v) and reject-all (%v) on average", mc, af, re)
	}
}

func TestOfflineOptimalKnownInstance(t *testing.T) {
	// Two overlapping jobs, capacity for one: the offline optimum keeps
	// the one with the better penalty-to-energy trade.
	jobs := []Job{
		{ID: 1, Arrival: 0, Deadline: 10, Cycles: 8, Penalty: 3},
		{ID: 2, Arrival: 0, Deadline: 10, Cycles: 8, Penalty: 5},
	}
	off, err := OfflineOptimal(jobs, idealProc())
	if err != nil {
		t.Fatal(err)
	}
	// Both: 16 cycles in 10 → speed 1.6 > smax: infeasible. Keep job 2:
	// E = 0.8²·8 = 5.12, + penalty 3 = 8.12; keep job 1: 5.12 + 5 = 10.12;
	// none: 8. Optimum: keep job 2 at 8.12... no: none costs 8 < 8.12!
	if len(off.Accepted) != 0 || math.Abs(off.Cost-8) > 1e-9 {
		t.Errorf("offline = %+v, want reject both at cost 8", off)
	}
}

func TestOfflineOptimalLimit(t *testing.T) {
	jobs := randomJobs(rand.New(rand.NewSource(2)), 21, 1)
	if _, err := OfflineOptimal(jobs, idealProc()); err == nil {
		t.Error("21 jobs accepted by the exhaustive offline reference")
	}
}

func TestSimulateRejectsNonIdealProcessor(t *testing.T) {
	jobs := []Job{{ID: 1, Arrival: 0, Deadline: 10, Cycles: 5, Penalty: 1}}
	leaky := speed.Proc{Model: power.XScale(), SMax: 1}
	if _, err := Simulate(jobs, leaky, MarginalCost{}); err == nil {
		t.Error("leaky processor accepted")
	}
	disc := speed.Proc{Model: power.Cubic(), Levels: power.XScaleLevels()}
	if _, err := Simulate(jobs, disc, MarginalCost{}); err == nil {
		t.Error("discrete processor accepted")
	}
}

// randomJobs draws an arrival storm with roughly the given long-run load.
func randomJobs(rng *rand.Rand, n int, load float64) []Job {
	return RandomStorm(rng, StormConfig{N: n, Load: load})
}

func TestRandomStormValid(t *testing.T) {
	jobs := RandomStorm(rand.New(rand.NewSource(3)), StormConfig{N: 40, Load: 2})
	if len(jobs) != 40 {
		t.Fatalf("len = %d, want 40", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("invalid storm job: %v", err)
		}
		// Individually feasible at smax = 1.
		if j.Cycles > (j.Deadline-j.Arrival)+1e-9 {
			t.Errorf("job %d infeasible alone: %+v", j.ID, j)
		}
	}
}
