package core

// BatchEval exposes the per-solve evaluation context to solver tiers that
// live outside this package (internal/anytime's population-fitness
// kernel): the struct-of-arrays evaluation columns, the cached capacity
// test, the closed-form energy curve, and exact Solution construction.
// It wraps the same pooled evalCtx every in-package solver builds, so all
// probes are bit-identical to the corresponding Instance methods — an
// external tier scoring workloads through BatchEval reproduces the exact
// costs DP or Exhaustive would assign.
//
// The wrapper is immutable after construction and safe for concurrent
// readers; the column slices are views into pooled context state and must
// be treated as read-only, never retained past Release.
type BatchEval struct {
	ctx *evalCtx
}

// NewBatchEval validates the instance and builds its evaluation context
// from the solver scratch pool. The caller must Release it after the last
// use; the columns alias pooled memory.
func NewBatchEval(in Instance) (*BatchEval, error) {
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return nil, err
	}
	return &BatchEval{ctx: ctx}, nil
}

// Release returns the underlying context to the pool. The BatchEval and
// every slice obtained from it must not be used afterwards.
func (b *BatchEval) Release() {
	b.ctx.release()
	b.ctx = nil
}

// Len returns the task count; columns and bit positions index [0, Len).
func (b *BatchEval) Len() int { return len(b.ctx.items) }

// Hetero reports a heterogeneous instance (per-task power coefficients),
// on which total-workload fitness is not a valid cost model.
func (b *BatchEval) Hetero() bool { return b.ctx.hetero }

// Columns returns the true-cycle and rejection-penalty columns in
// instance order — the same task.Columns mirror the DP final scans and
// greedy move loops walk. Read-only views into pooled memory.
func (b *BatchEval) Columns() (cycles []int64, penalties []float64) {
	return b.ctx.colC, b.ctx.colV
}

// ID maps a column position to its task ID.
func (b *BatchEval) ID(i int) int { return b.ctx.items[i].id }

// Capacity returns the frame capacity smax·D in true cycles.
func (b *BatchEval) Capacity() float64 { return b.ctx.capacity }

// Fits reports whether a workload of w true cycles is schedulable —
// identical to Instance.Fits with the capacity cached.
func (b *BatchEval) Fits(w float64) bool { return b.ctx.fits(w) }

// Energy returns E(w), the minimum energy of executing a homogeneous
// workload of w true cycles in one frame (+Inf when infeasible),
// bit-identical to the probes the in-package solvers make.
func (b *BatchEval) Energy(w float64) float64 { return b.ctx.energy(w) }

// EnergyMonotone reports whether E(w) is non-decreasing in w — true on
// the closed-form continuous curve, not guaranteed on discrete ladders or
// dormant-enable break-even plateaus.
func (b *BatchEval) EnergyMonotone() bool { return b.ctx.fastEnergy }

// TotalPenalty returns Σ v_i over all tasks, summed in column order.
func (b *BatchEval) TotalPenalty() float64 {
	var sum float64
	for _, v := range b.ctx.colV {
		sum += v
	}
	return sum
}

// Evaluate builds the full exact Solution for an accepted ID set, exactly
// as the package-level Evaluate does (same speed assignment, same float
// summation order for Penalty).
func (b *BatchEval) Evaluate(accepted []int) (Solution, error) {
	return b.ctx.evaluate(accepted)
}
