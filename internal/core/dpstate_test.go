package core

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify/oracle"
)

// This file pins the warm-start contract of DPState/SolveFrom: a warm
// delta solve is bit-identical to a cold solve of the same instance, on
// every homogeneous corpus flavour, every delta shape (append, remove,
// modify, identical, front mutation), serial and row-parallel, read-only
// and evolving. Heterogeneous instances must fail identically to cold.

// warmVsCold cold-solves mutant and checks SolveFrom from st against it,
// bit for bit. wantWarm asserts whether the state had to be usable.
func warmVsCold(t *testing.T, name string, d DP, st *DPState, mutant Instance, wantWarm bool) {
	t.Helper()
	cold, coldStats, coldErr := DP{Workers: d.Workers}.SolveStats(mutant)
	warm, warmStats, ok, warmErr := d.SolveFrom(st, mutant, false)
	if (coldErr != nil) != (warmErr != nil && ok) || (!ok && warmErr == nil && coldErr != nil && wantWarm) {
		t.Fatalf("%s: error mismatch: cold %v, warm %v (ok=%v)", name, coldErr, warmErr, ok)
	}
	if warmErr != nil {
		if coldErr == nil {
			t.Fatalf("%s: warm failed where cold succeeded: %v", name, warmErr)
		}
		return
	}
	if !ok {
		if wantWarm {
			t.Fatalf("%s: expected a warm start, state declined", name)
		}
		return
	}
	if coldErr != nil {
		t.Fatalf("%s: warm succeeded where cold failed: %v", name, coldErr)
	}
	if err := oracle.BitIdenticalFrame(frameOf(warm), frameOf(cold)); err != nil {
		t.Fatalf("%s: warm vs cold: %v", name, err)
	}
	if warmStats.Rows > coldStats.Rows {
		t.Fatalf("%s: warm re-ran %d rows, cold ran %d", name, warmStats.Rows, coldStats.Rows)
	}
}

// mutateTasks returns a deep copy of in with its task list replaced.
func withTasks(in Instance, ts []task.Task) Instance {
	in.Tasks.Tasks = ts
	return in
}

func cloneTasks(in Instance) []task.Task {
	return slices.Clone(in.Tasks.Tasks)
}

func maxTaskID(ts []task.Task) int {
	m := 0
	for _, t := range ts {
		if t.ID > m {
			m = t.ID
		}
	}
	return m
}

// TestDPStateDifferentialCorpus sweeps the delta shapes over the shared
// differential corpus, for serial and row-parallel solvers, two
// checkpoint strides, and both row representations (the cold reference
// stays dense, so sparse warm starts are pinned across representations).
func TestDPStateDifferentialCorpus(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, stride := range []int{3, 64} {
			for _, mode := range []SparseMode{SparseOff, SparseOn} {
				d := DP{Workers: workers, CheckpointStride: stride, Sparse: mode}
				t.Run(fmt.Sprintf("workers=%d/stride=%d/sparse=%d", workers, stride, mode), func(t *testing.T) {
					for _, c := range diffCorpus(t) {
						var st DPState
						parent, _, err := d.SolveCheckpoint(c.in, &st)
						if c.in.Heterogeneous() {
							if err != ErrHeterogeneous {
								t.Fatalf("%s: hetero parent: got %v, want ErrHeterogeneous", c.name, err)
							}
							if _, _, ok, ferr := d.SolveFrom(&st, c.in, false); ok || ferr != nil {
								t.Fatalf("%s: invalid state warmed: ok=%v err=%v", c.name, ok, ferr)
							}
							continue
						}
						if err != nil {
							t.Fatalf("%s: parent solve: %v", c.name, err)
						}
						coldRef, err := DP{Workers: workers}.Solve(c.in)
						if err != nil {
							t.Fatalf("%s: cold ref: %v", c.name, err)
						}
						if err := oracle.BitIdenticalFrame(frameOf(parent), frameOf(coldRef)); err != nil {
							t.Fatalf("%s: SolveCheckpoint vs Solve: %v", c.name, err)
						}

						ts := c.in.Tasks.Tasks
						n := len(ts)
						nextID := maxTaskID(ts) + 1
						rng := rand.New(rand.NewSource(int64(n)))

						// Identical re-solve: zero rows re-run.
						warmVsCold(t, c.name+"/identical", d, &st, c.in, true)

						// Append one and three tasks.
						app := cloneTasks(c.in)
						app = append(app, task.Task{ID: nextID, Cycles: 1 + rng.Int63n(30), Penalty: rng.Float64() * 5})
						warmVsCold(t, c.name+"/append1", d, &st, withTasks(c.in, app), true)
						for k := 0; k < 2; k++ {
							app = append(app, task.Task{ID: nextID + 1 + k, Cycles: 1 + rng.Int63n(30), Penalty: rng.Float64() * 5})
						}
						warmVsCold(t, c.name+"/append3", d, &st, withTasks(c.in, app), true)

						// Remove the tail task (divergence at n-1). Warmable
						// only when a checkpoint exists at or before row n-1 —
						// i.e. the stride fits inside the instance.
						tailWarm := stride <= n-1
						warmVsCold(t, c.name+"/remove-tail", d, &st, withTasks(c.in, cloneTasks(c.in)[:n-1]), tailWarm)

						// Modify the last task's penalty, then its cycles.
						mod := cloneTasks(c.in)
						mod[n-1].Penalty *= 1.75
						warmVsCold(t, c.name+"/modify-penalty", d, &st, withTasks(c.in, mod), tailWarm)
						mod = cloneTasks(c.in)
						mod[n-1].Cycles += 7
						warmVsCold(t, c.name+"/modify-cycles", d, &st, withTasks(c.in, mod), tailWarm)

						// Mutate the first task: divergence at row 0 precedes
						// every checkpoint, so the state must decline (the
						// caller cold-solves; nothing would be saved anyway).
						front := cloneTasks(c.in)
						front[0].Penalty += 0.5
						warmVsCold(t, c.name+"/modify-front", d, &st, withTasks(c.in, front), false)

						// A different deadline changes the grid capacity: the
						// state must decline, never serve stale rows.
						shrunk := c.in
						shrunk.Tasks.Tasks = cloneTasks(c.in)
						shrunk.Tasks.Deadline *= 0.5
						if _, _, ok, err := d.SolveFrom(&st, shrunk, false); ok && err == nil {
							if cap64 := DPGridCapacity(shrunk); cap64 != st.GridCapacity() {
								t.Fatalf("%s: warmed across capacity change", c.name)
							}
						}
					}
				})
			}
		}
	}
}

// TestDPStateEvolveStream drives one exclusively-owned state through an
// arrival/cancel/revise stream, checking every step against a cold solve.
func TestDPStateEvolveStream(t *testing.T) {
	procs := []struct {
		name string
		proc speed.Proc
	}{
		{"ideal-cubic", speed.Proc{Model: power.Cubic(), SMax: 1}},
		{"discrete-dormant", speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2}},
	}
	for _, pc := range procs {
		for _, mode := range []SparseMode{SparseOff, SparseOn} {
			t.Run(fmt.Sprintf("%s/sparse=%d", pc.name, mode), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				d := DP{CheckpointStride: 8, Sparse: mode}
				var st DPState
				var ts []task.Task
				const deadline = 150
				for ev := 0; ev < 60; ev++ {
					switch {
					case len(ts) > 4 && ev%11 == 5:
						// Cancel a random task (divergence at its index).
						i := rng.Intn(len(ts))
						ts = append(ts[:i], ts[i+1:]...)
					case len(ts) > 2 && ev%7 == 3:
						// Revise a random task's penalty.
						i := rng.Intn(len(ts))
						ts[i].Penalty = rng.Float64() * 8
					default:
						ts = append(ts, task.Task{ID: ev + 1, Cycles: 1 + rng.Int63n(25), Penalty: rng.Float64() * 6})
					}
					in := Instance{Tasks: task.Set{Tasks: slices.Clone(ts), Deadline: deadline}, Proc: pc.proc}
					cold, err := DP{}.Solve(in)
					if err != nil {
						t.Fatalf("event %d: cold: %v", ev, err)
					}
					var warm Solution
					if st.Valid() {
						var ok bool
						warm, _, ok, err = d.SolveFrom(&st, in, true)
						if err == nil && !ok {
							warm, _, err = d.SolveCheckpoint(in, &st)
						}
					} else {
						warm, _, err = d.SolveCheckpoint(in, &st)
					}
					if err != nil {
						t.Fatalf("event %d: warm: %v", ev, err)
					}
					if err := oracle.BitIdenticalFrame(frameOf(warm), frameOf(cold)); err != nil {
						t.Fatalf("event %d (n=%d): %v", ev, len(ts), err)
					}
				}
			})
		}
	}
}

// TestDPStateRejectOnlyRows pins the stale-take-bit hazard: rows whose
// cycles exceed the grid capacity write no take bits, so a warm re-run
// over a previously-taken row must see cleared words, not the parent's.
func TestDPStateRejectOnlyRows(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	base := Instance{Tasks: task.Set{Tasks: []task.Task{
		{ID: 1, Cycles: 10, Penalty: 3},
		{ID: 2, Cycles: 12, Penalty: 4},
		{ID: 3, Cycles: 9, Penalty: 2.5},
		{ID: 4, Cycles: 11, Penalty: 5},
	}, Deadline: 40}, Proc: proc}
	d := DP{CheckpointStride: 2}
	var st DPState
	if _, _, err := d.SolveCheckpoint(base, &st); err != nil {
		t.Fatal(err)
	}
	// The mutant's task 3 can never fit: its row is reject-only where the
	// parent's row had take bits set.
	mut := cloneTasks(base)
	mut[2].Cycles = 1000
	warmVsCold(t, "reject-only-row", d, &st, withTasks(base, mut), true)
}

// TestDPStateStatsSavings asserts the point of the exercise: a tail
// mutation re-runs a small row suffix, not the whole table.
func TestDPStateStatsSavings(t *testing.T) {
	in := diffInstance(t, 42, 200, 1.5, speed.Proc{Model: power.Cubic(), SMax: 1}, false)
	d := DP{CheckpointStride: 16}
	var st DPState
	if _, _, err := d.SolveCheckpoint(in, &st); err != nil {
		t.Fatal(err)
	}
	mut := cloneTasks(in)
	mut[len(mut)-1].Penalty *= 2
	_, stats, ok, err := d.SolveFrom(&st, withTasks(in, mut), false)
	if err != nil || !ok {
		t.Fatalf("warm solve: ok=%v err=%v", ok, err)
	}
	if stats.Rows > 16 {
		t.Fatalf("tail mutation re-ran %d rows, want ≤ stride 16", stats.Rows)
	}
}

// TestPurgeSolverScratch checks solves stay correct across a pool purge
// (in-flight buffers returned to the fresh pools are simply adopted).
func TestPurgeSolverScratch(t *testing.T) {
	in := diffInstance(t, 5, 40, 1.4, speed.Proc{Model: power.Cubic(), SMax: 1}, false)
	before, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	PurgeSolverScratch()
	after, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.BitIdenticalFrame(frameOf(after), frameOf(before)); err != nil {
		t.Fatalf("solve changed across purge: %v", err)
	}
}
