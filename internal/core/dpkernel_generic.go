//go:build !amd64 || purego

package core

// dpUseAVX2 is false off amd64 (or under the purego tag); the word-blocked
// scalar kernel serves every platform identically.
const dpUseAVX2 = false

// dpBlocksAVX2 is never reached when dpUseAVX2 is false.
func dpBlocksAVX2(prevW, prevA, cur *float64, bits *uint64, nb int64, v float64) {
	panic("core: AVX2 DP kernel called on a platform without it")
}
