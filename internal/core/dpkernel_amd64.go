//go:build amd64 && !purego

package core

// dpUseAVX2 routes the 64-cell DP blocks through the AVX2 kernel when the
// CPU and OS support it. The vector kernel is bit-identical to the scalar
// one: VADDPD/VMINPD/VCMPPD on non-negative doubles and +Inf follow the
// same IEEE-754 semantics as the scalar ops (no NaNs ever enter the
// table, and equal values have equal bits, so VMINPD's tie choice is
// unobservable; the strict VCMPPD less-than matches the scalar take rule).
var dpUseAVX2 = cpuHasAVX2()

// cpuHasAVX2 reports AVX2 support with OS-enabled YMM state (CPUID +
// XGETBV). Implemented in dpkernel_amd64.s.
func cpuHasAVX2() bool

// dpBlocksAVX2 processes nb full 64-cell blocks:
//
//	cur[i] = min(prevW[i] + v, prevA[i])
//	bit i of the block's word = prevA[i] < prevW[i] + v
//
// prevW, prevA and cur point at the first cell of the first block; bits at
// its take word. Implemented in dpkernel_amd64.s.
func dpBlocksAVX2(prevW, prevA, cur *float64, bits *uint64, nb int64, v float64)
