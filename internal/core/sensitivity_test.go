package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

func TestBreakEvenSingleTask(t *testing.T) {
	// One task c = 4, D = 10: marginal energy E(4) = 0.64, so the
	// threshold must be 0.64 — below it rejection wins, above acceptance.
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 0.1})
	v, err := BreakEven(in, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.64) > 1e-6 {
		t.Errorf("threshold = %v, want 0.64", v)
	}
}

func TestBreakEvenAlreadyFree(t *testing.T) {
	// A task whose admission costs nothing extra relative to rejection
	// has threshold ≈ 0... with positive cycles the marginal energy is
	// positive, so use a huge-penalty neighbour to check the "accepted at
	// zero" path never triggers spuriously: here it must NOT be zero.
	in := cubicInstance(task.Task{ID: 1, Cycles: 1, Penalty: 5})
	v, err := BreakEven(in, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 0.011 { // E(1) = 0.01
		t.Errorf("threshold = %v, want ≈ 0.01", v)
	}
}

func TestBreakEvenInfeasibleTask(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 50, Penalty: 1},
		task.Task{ID: 2, Cycles: 2, Penalty: 1},
	)
	v, err := BreakEven(in, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Errorf("threshold of an infeasible task = %v, want +Inf", v)
	}
}

func TestBreakEvenFlipsDecision(t *testing.T) {
	// On random instances, re-solving with the task's penalty just below
	// (above) the threshold must reject (accept) it.
	for seed := int64(0); seed < 8; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{N: 10, Load: 1.6, Deadline: 100})
		if err != nil {
			t.Fatal(err)
		}
		in := Instance{Tasks: set, Proc: testProcs["ideal-cubic"]}
		id := set.Tasks[int(seed)%len(set.Tasks)].ID
		v, err := BreakEven(in, id, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(v, 1) || v == 0 {
			continue
		}
		check := func(penalty float64) bool {
			probe := in
			probe.Tasks.Tasks = append([]task.Task(nil), in.Tasks.Tasks...)
			for i := range probe.Tasks.Tasks {
				if probe.Tasks.Tasks[i].ID == id {
					probe.Tasks.Tasks[i].Penalty = penalty
				}
			}
			sol, err := (DP{}).Solve(probe)
			if err != nil {
				t.Fatal(err)
			}
			return sol.AcceptedSet()[id]
		}
		delta := math.Max(1e-6, v*1e-6) * 4
		if check(v - delta) {
			t.Errorf("seed %d task %d: accepted just below threshold %v", seed, id, v)
		}
		if !check(v + delta) {
			t.Errorf("seed %d task %d: rejected just above threshold %v", seed, id, v)
		}
	}
}

func TestBreakEvenMonotoneAcceptance(t *testing.T) {
	// The property the search relies on: acceptance is monotone in the
	// task's own penalty.
	set, err := gen.Frame(rand.New(rand.NewSource(5)), gen.Config{N: 8, Load: 1.8, Deadline: 60})
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{Tasks: set, Proc: testProcs["ideal-cubic"]}
	id := set.Tasks[0].ID
	prev := false
	for _, v := range []float64{0, 0.5, 1, 2, 5, 10, 50, 200, 1000} {
		probe := in
		probe.Tasks.Tasks = append([]task.Task(nil), in.Tasks.Tasks...)
		for i := range probe.Tasks.Tasks {
			if probe.Tasks.Tasks[i].ID == id {
				probe.Tasks.Tasks[i].Penalty = v
			}
		}
		sol, err := (DP{}).Solve(probe)
		if err != nil {
			t.Fatal(err)
		}
		acc := sol.AcceptedSet()[id]
		if prev && !acc {
			t.Fatalf("acceptance not monotone: accepted below %v but rejected at it", v)
		}
		prev = acc
	}
}

func TestBreakEvenErrors(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	if _, err := BreakEven(in, 99, 0); err == nil {
		t.Error("unknown ID accepted")
	}
	het := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1, Rho: 2})
	if _, err := BreakEven(het, 1, 0); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("error = %v, want ErrHeterogeneous", err)
	}
}
