package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

// poolTestInstances builds instances of interleaved sizes so pooled
// buffers are reused both grown and shrunk between solves.
func poolTestInstances(t *testing.T) []Instance {
	t.Helper()
	var ins []Instance
	for seed, n := range map[int64]int{1: 12, 2: 40, 3: 7, 4: 25} {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
			N: n, Load: 1.5, Deadline: 120,
		})
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}})
		ins = append(ins, Instance{Tasks: set, Proc: speed.Proc{Model: power.XScale(), SMin: 0.15, SMax: 1}})
	}
	return ins
}

var pooledSolvers = []Solver{DP{}, ApproxDP{Eps: 0.1}, ApproxDPPenalty{Eps: 0.1}}

// TestPooledSolversDeterministic pins that buffer recycling is
// observationally identical to fresh allocation: repeated interleaved
// solves over differently-sized instances must reproduce the first pass's
// solutions exactly.
func TestPooledSolversDeterministic(t *testing.T) {
	ins := poolTestInstances(t)
	var first []Solution
	for pass := 0; pass < 4; pass++ {
		var got []Solution
		for _, in := range ins {
			for _, s := range pooledSolvers {
				sol, err := s.Solve(in)
				if err != nil {
					t.Fatalf("pass %d: %s: %v", pass, s.Name(), err)
				}
				got = append(got, sol)
			}
		}
		if pass == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("pass %d solutions diverge from pass 0", pass)
		}
	}
}

// TestPooledSolversConcurrent hammers the pooled solvers from many
// goroutines (run under -race in CI) and checks every result against the
// serial answer.
func TestPooledSolversConcurrent(t *testing.T) {
	ins := poolTestInstances(t)
	want := make(map[string]Solution)
	for i, in := range ins {
		for _, s := range pooledSolvers {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%d/%s", i, s.Name())] = sol
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % len(ins)
				for _, s := range pooledSolvers {
					sol, err := s.Solve(ins[i])
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(sol, want[fmt.Sprintf("%d/%s", i, s.Name())]) {
						errs <- fmt.Errorf("goroutine %d: %s on instance %d diverged", g, s.Name(), i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
