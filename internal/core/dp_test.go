package core

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/task"
)

func TestDPHandComputed(t *testing.T) {
	// D = 10, smax = 1, cubic. Three equal tasks c = 4, v = 1:
	//   accept 0: cost 3; accept 1: 0.64/…  E(4) = 64/100 = 0.64 → 2.64;
	//   accept 2: E(8) = 5.12 → 6.12. Optimum: accept exactly one.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 1},
		task.Task{ID: 3, Cycles: 4, Penalty: 1},
	)
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 1 {
		t.Errorf("accepted = %v, want exactly one task", sol.Accepted)
	}
	if math.Abs(sol.Cost-2.64) > 1e-9 {
		t.Errorf("cost = %v, want 2.64", sol.Cost)
	}
}

func TestDPPrefersSmallerTaskUnderOverload(t *testing.T) {
	// c = {6, 5}, v = {3, 3}, capacity 10: both together infeasible.
	// accept 6: 2.16+3 = 5.16; accept 5: 1.25+3 = 4.25; none: 6.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 6, Penalty: 3},
		task.Task{ID: 2, Cycles: 5, Penalty: 3},
	)
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 1 || sol.Accepted[0] != 2 {
		t.Errorf("accepted = %v, want [2]", sol.Accepted)
	}
	if math.Abs(sol.Cost-4.25) > 1e-9 {
		t.Errorf("cost = %v, want 4.25", sol.Cost)
	}
}

func TestDPHighPenaltiesAcceptEverythingFeasible(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 3, Penalty: 100},
		task.Task{ID: 2, Cycles: 3, Penalty: 100},
		task.Task{ID: 3, Cycles: 3, Penalty: 100},
	)
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 3 {
		t.Errorf("accepted = %v, want all three", sol.Accepted)
	}
	// W = 9 → E = 9³/100 = 7.29.
	if math.Abs(sol.Cost-7.29) > 1e-9 {
		t.Errorf("cost = %v, want 7.29", sol.Cost)
	}
}

func TestDPZeroPenaltiesRejectEverything(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 3, Penalty: 0},
		task.Task{ID: 2, Cycles: 3, Penalty: 0},
	)
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 0 || sol.Cost != 0 {
		t.Errorf("solution = %+v, want empty at zero cost", sol)
	}
}

func TestDPTaskLargerThanCapacity(t *testing.T) {
	// A task that can never fit must be rejected, not break the DP.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 50, Penalty: 100},
		task.Task{ID: 2, Cycles: 4, Penalty: 5},
	)
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.AcceptedSet(); got[1] || !got[2] {
		t.Errorf("accepted = %v, want only task 2", sol.Accepted)
	}
	// Cost = E(4) + v1 = 0.64 + 100.
	if math.Abs(sol.Cost-100.64) > 1e-9 {
		t.Errorf("cost = %v, want 100.64", sol.Cost)
	}
}

func TestDPRejectsHeterogeneous(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1, Rho: 2})
	if _, err := (DP{}).Solve(in); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("error = %v, want ErrHeterogeneous", err)
	}
}

func TestDPStateLimit(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 1},
	)
	if _, err := (&DP{MaxStates: 10, Sparse: SparseOff}).Solve(in); err == nil {
		t.Error("dense state limit not enforced")
	}
	// The auto mode routes the over-budget grid to the sparse kernel
	// instead of failing: 10 breakpoints cover this instance's rows.
	if _, err := (&DP{MaxStates: 10}).Solve(in); err != nil {
		t.Errorf("auto mode did not fall back to sparse rows: %v", err)
	}
}

func TestDPOnDiscreteProcessor(t *testing.T) {
	// The DP optimizes against any single-workload energy curve, including
	// the two-level discrete one.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 2},
		task.Task{ID: 2, Cycles: 5, Penalty: 2},
	)
	in.Proc.Levels = power.XScaleLevels()
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against exhaustive enumeration of all 4 subsets.
	best := math.Inf(1)
	for _, ids := range [][]int{nil, {1}, {2}, {1, 2}} {
		if s, err := Evaluate(in, ids); err == nil && s.Cost < best {
			best = s.Cost
		}
	}
	if math.Abs(sol.Cost-best) > 1e-9 {
		t.Errorf("DP cost = %v, enumeration optimum = %v", sol.Cost, best)
	}
}

func TestDPOnLeakyDormantProcessor(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 2, Penalty: 0.5},
		task.Task{ID: 2, Cycles: 3, Penalty: 0.7},
		task.Task{ID: 3, Cycles: 4, Penalty: 0.2},
	)
	in.Proc.Model = power.XScale()
	in.Proc.DormantEnable = true
	in.Proc.Esw = 0.1
	sol, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for mask := 0; mask < 8; mask++ {
		var ids []int
		for b := 0; b < 3; b++ {
			if mask&(1<<b) != 0 {
				ids = append(ids, b+1)
			}
		}
		if s, err := Evaluate(in, ids); err == nil && s.Cost < best {
			best = s.Cost
		}
	}
	if math.Abs(sol.Cost-best) > 1e-9 {
		t.Errorf("DP cost = %v, enumeration optimum = %v", sol.Cost, best)
	}
}
