package core

import (
	"math"
	"testing"

	"dvsreject/internal/gen"
)

// probeWorkloads spans the interesting regions of the energy curve for an
// instance: zero, the smin plateau, mid-range, the capacity boundary with
// and without slack, infeasible, and non-finite inputs.
func probeWorkloads(in Instance) []float64 {
	capTrue := in.Capacity()
	fracs := []float64{-0.5, 0, 1e-12, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999,
		1, 1 + 1e-10, 1 + 1e-8, 1.1, 2}
	ws := make([]float64, 0, len(fracs)+3)
	for _, f := range fracs {
		ws = append(ws, capTrue*f)
	}
	return append(ws, math.NaN(), math.Inf(1), math.Inf(-1))
}

// TestEvalCtxBitIdentity is the exactness contract of the evaluation
// context: every cached or closed-form quantity must reproduce the
// corresponding Instance method bit for bit, on every processor flavour.
// Solver decisions, tie-breaks and branch-and-bound node counts depend on
// this being exact, not merely close.
func TestEvalCtxBitIdentity(t *testing.T) {
	for name, proc := range testProcs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				in := randomInstance(t, seed, 12, 0.5+0.4*float64(seed), proc, gen.PenaltyModel(seed%3))
				ctx, err := newEvalCtx(in)
				if err != nil {
					t.Fatal(err)
				}
				if ctx.capacity != in.Capacity() {
					t.Fatalf("capacity %v != %v", ctx.capacity, in.Capacity())
				}
				if ctx.hetero != in.Heterogeneous() || ctx.convex != in.convexEnergy() {
					t.Fatalf("flag mismatch: hetero %v/%v convex %v/%v",
						ctx.hetero, in.Heterogeneous(), ctx.convex, in.convexEnergy())
				}
				for _, w := range probeWorkloads(in) {
					if got, want := ctx.fits(w), in.Fits(w); got != want {
						t.Errorf("fits(%v) = %v, Instance.Fits = %v", w, got, want)
					}
					got, want := ctx.energy(w), in.energyOf(w)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("energy(%v) = %v (bits %x), energyOf = %v (bits %x)",
							w, got, math.Float64bits(got), want, math.Float64bits(want))
					}
					gotS, wantS := ctx.surrogate(w), in.surrogateEnergy(w)
					if math.Float64bits(gotS) != math.Float64bits(wantS) {
						t.Errorf("surrogate(%v) = %v, surrogateEnergy = %v", w, gotS, wantS)
					}
				}
			}
		})
	}
}

// TestEvalCtxBitIdentityHetero covers the heterogeneous surrogate closed
// form, which the homogeneous testProcs sweep cannot reach.
func TestEvalCtxBitIdentityHetero(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := diffInstance(t, seed, 12, 1.2, testProcs["ideal-cubic"], true)
		if !in.Heterogeneous() {
			t.Fatalf("seed %d: expected a heterogeneous instance", seed)
		}
		ctx, err := newEvalCtx(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range probeWorkloads(in) {
			got, want := ctx.surrogate(w), in.surrogateEnergy(w)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("seed %d: surrogate(%v) = %v, surrogateEnergy = %v", seed, w, got, want)
			}
		}
	}
}

// TestEvalCtxItemsMatch pins the cached items slice and id→index map to
// their Instance counterparts.
func TestEvalCtxItemsMatch(t *testing.T) {
	in := randomInstance(t, 7, 20, 1.3, testProcs["ideal-cubic"], gen.PenaltyUniform)
	ctx, err := newEvalCtx(in)
	if err != nil {
		t.Fatal(err)
	}
	want := in.items()
	if len(ctx.items) != len(want) {
		t.Fatalf("items length %d != %d", len(ctx.items), len(want))
	}
	for i := range want {
		if ctx.items[i] != want[i] {
			t.Errorf("items[%d] = %+v, want %+v", i, ctx.items[i], want[i])
		}
	}
	for i, task := range in.Tasks.Tasks {
		if ctx.idx[task.ID] != i {
			t.Errorf("idx[%d] = %d, want %d", task.ID, ctx.idx[task.ID], i)
		}
	}
}

// TestMinCostWorkloadMatchesFullScan checks the pruned final scan against
// the exhaustive reference on adversarial penalty shapes: the same argmin
// (including first-strict-improvement tie-breaking) must come back whether
// or not the monotone prunings are enabled.
func TestMinCostWorkloadMatchesFullScan(t *testing.T) {
	in := randomInstance(t, 3, 10, 1.4, testProcs["ideal-cubic"], gen.PenaltyUniform)
	ctx, err := newEvalCtx(in)
	if err != nil {
		t.Fatal(err)
	}
	width := int64(math.Floor(ctx.capacity*(1+1e-12))) + 1

	cases := map[string]func(w int64) float64{
		"strictly-decreasing": func(w int64) float64 { return float64(width - w) },
		"constant":            func(w int64) float64 { return 5 },
		"zigzag":              func(w int64) float64 { return float64((w*7919)%13) + float64(width-w)/float64(width) },
		"sparse": func(w int64) float64 {
			if w%17 != 0 {
				return math.Inf(1)
			}
			return float64(width - w)
		},
		"all-infeasible": func(w int64) float64 { return math.Inf(1) },
		"zero-tail": func(w int64) float64 {
			if w > width/2 {
				return 0
			}
			return float64(width - w)
		},
	}
	for name, shape := range cases {
		pen := make([]float64, width)
		for w := int64(0); w < width; w++ {
			pen[w] = shape(w)
		}
		// Reference: the seed code's full-width scan.
		refW, refCost := int64(-1), math.Inf(1)
		for w := int64(0); w < width; w++ {
			if math.IsInf(pen[w], 1) {
				continue
			}
			if c := ctx.energy(float64(w)) + pen[w]; c < refCost {
				refCost, refW = c, w
			}
		}
		gotW, gotCost := minCostWorkload(pen, ctx.energy, 1, true)
		if gotW != refW || math.Float64bits(gotCost) != math.Float64bits(refCost) {
			t.Errorf("%s: minCostWorkload = (%d, %v), full scan = (%d, %v)", name, gotW, gotCost, refW, refCost)
		}
		gotW, gotCost = minCostWorkload(pen, ctx.energy, 1, false)
		if gotW != refW || math.Float64bits(gotCost) != math.Float64bits(refCost) {
			t.Errorf("%s (non-monotone path): minCostWorkload = (%d, %v), full scan = (%d, %v)", name, gotW, gotCost, refW, refCost)
		}
	}
}
