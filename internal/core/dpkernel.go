package core

import "math"

// This file holds the rejection-DP row kernel: the innermost loop of the
// DP-family solvers, which accounts for essentially all of their time on
// large instances. The kernel computes one item row of the table in
// double-buffered form,
//
//	cur[w] = min(prev[w] + v, prev[w-c])     for w in [lo, hi),
//
// recording a take bit whenever the accept arm wins strictly. It replaces
// the seed's in-place descending update. The two are bit-identical: the
// in-place loop descends precisely so that every read of f[w-c] still sees
// the previous row, which is exactly what reading from a separate prev
// buffer guarantees at any w order — and that freedom is what makes
// word-blocked vectorized processing and row-chunk parallelism possible.
//
// Three further transformations, each exactly value-preserving on the DP's
// float domain (task penalties are validated finite ≥ 0, so every cell is
// a non-negative finite penalty sum or +Inf):
//
//   - the seed's IsInf guards are dropped: +Inf + v == +Inf exactly, so
//     the guarded and unguarded updates produce the same bits;
//   - the float comparison accept < reject is performed on the IEEE-754
//     bit patterns as unsigned integers — equivalent on non-negative
//     floats and +Inf (the representations are monotone there), and free
//     of the FP-to-branch round trip;
//   - take bits accumulate in a register and store once per 64 cells.
//
// On amd64 with AVX2 the 64-cell inner blocks run 4 cells per vector op
// (dpBlocksAVX2); elsewhere an unrolled scalar loop (dpBlocksGeneric)
// serves. Both produce the same bytes as the seed loop; the differential
// and kernel tests pin this.

// dpRejectRange applies the reject-only update cur[w] = prev[w] + v over
// [lo, hi) — the whole row of an item too large to ever be accepted. Take
// bits stay zero (the table is cleared up front).
func dpRejectRange(prev, cur []float64, v float64, lo, hi int64) {
	for w := lo; w < hi; w++ {
		cur[w] = prev[w] + v
	}
}

// dpRowRange computes cells [lo, hi) of one row. bits is the row's take
// bitset, indexed by cell (bit w lives in bits[w>>6]); lo must be a
// multiple of 64 so concurrent chunks of one row own disjoint words. Cells
// below c take the reject-only arm.
func dpRowRange(prev, cur []float64, bits []uint64, c int64, v float64, lo, hi int64) {
	w := lo
	// Reject-only prefix: cells below c cannot fit the item.
	for stop := min(c, hi); w < stop; w++ {
		cur[w] = prev[w] + v
	}
	if w >= hi {
		return
	}
	// Scalar head up to the next word boundary. The store rewrites the
	// whole word; bits below w within it are reject cells, correctly zero.
	if rem := w & 63; rem != 0 {
		stop := min(w-rem+64, hi)
		var word uint64
		for ; w < stop; w++ {
			word |= dpCell(prev, cur, c, v, w) << uint(w&63)
		}
		bits[(w-1)>>6] = word
	}
	// Full 64-cell blocks.
	if nb := (hi - w) >> 6; nb > 0 {
		if dpUseAVX2 {
			dpBlocksAVX2(&prev[w], &prev[w-c], &cur[w], &bits[w>>6], nb, v)
		} else {
			dpBlocksGeneric(prev, cur, bits, c, v, w, nb)
		}
		w += nb << 6
	}
	// Scalar tail.
	if w < hi {
		var word uint64
		for ; w < hi; w++ {
			word |= dpCell(prev, cur, c, v, w) << uint(w&63)
		}
		bits[(hi-1)>>6] = word
	}
}

// dpCell computes one cell and returns its take bit (0 or 1).
func dpCell(prev, cur []float64, c int64, v float64, w int64) uint64 {
	rb := math.Float64bits(prev[w] + v)
	ab := math.Float64bits(prev[w-c])
	// Both operands are < 2^63 (non-negative floats up to +Inf), so the
	// wrapped difference carries the comparison in its sign bit.
	t := (ab - rb) >> 63
	m := rb
	if ab < rb {
		m = ab
	}
	cur[w] = math.Float64frombits(m)
	return t
}

// dpBlocksGeneric is the portable word-blocked kernel: nb full 64-cell
// blocks starting at the word-aligned cell w0, four cells per unrolled
// step, with the three active slices pre-sliced per block so the compiler
// drops the per-cell bounds checks.
func dpBlocksGeneric(prev, cur []float64, bits []uint64, c int64, v float64, w0, nb int64) {
	for w := w0; nb > 0; nb-- {
		pw := prev[w : w+64 : w+64]
		pa := prev[w-c : w-c+64 : w-c+64]
		cw := cur[w : w+64 : w+64]
		var word uint64
		for j := 0; j < 64; j += 4 {
			r0 := math.Float64bits(pw[j] + v)
			a0 := math.Float64bits(pa[j])
			m0 := r0
			if a0 < r0 {
				m0 = a0
			}
			cw[j] = math.Float64frombits(m0)
			word |= ((a0 - r0) >> 63) << uint(j)

			r1 := math.Float64bits(pw[j+1] + v)
			a1 := math.Float64bits(pa[j+1])
			m1 := r1
			if a1 < r1 {
				m1 = a1
			}
			cw[j+1] = math.Float64frombits(m1)
			word |= ((a1 - r1) >> 63) << uint(j+1)

			r2 := math.Float64bits(pw[j+2] + v)
			a2 := math.Float64bits(pa[j+2])
			m2 := r2
			if a2 < r2 {
				m2 = a2
			}
			cw[j+2] = math.Float64frombits(m2)
			word |= ((a2 - r2) >> 63) << uint(j+2)

			r3 := math.Float64bits(pw[j+3] + v)
			a3 := math.Float64bits(pa[j+3])
			m3 := r3
			if a3 < r3 {
				m3 = a3
			}
			cw[j+3] = math.Float64frombits(m3)
			word |= ((a3 - r3) >> 63) << uint(j+3)
		}
		bits[w>>6] = word
		w += 64
	}
}
