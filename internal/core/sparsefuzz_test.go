// Fuzz target for the sparse dominance-pruned DP rows: arbitrary
// instances are solved by the dense and sparse kernels under a shared
// state budget. Wherever the dense grid is admitted, the sparse result
// must be bit-identical (and its breakpoint spend bounded by the dense
// cell spend); where only the sparse rows fit the budget, the EDF oracle
// must accept the sparse answer. A sparse-recorded checkpoint state is
// then pushed through the warm-start mutation battery against cold
// sparse solves.
package core_test

import (
	"fmt"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/verify"
)

// sparseFuzzBudget is deliberately tiny: the fuzz codec's grid tops out
// at 12 tasks × 401 workload levels ≈ 4.8k dense cells, so a 2k budget
// puts wide instances beyond the dense wall while most sparse row sets
// still fit — both sides of the switch get fuzzed.
const sparseFuzzBudget = 2048

func checkSparseDense(in core.Instance) error {
	// Unlimited budget: both kernels must solve and agree bit for bit.
	dense := core.DP{Sparse: core.SparseOff}
	sparse := core.DP{Sparse: core.SparseOn}
	dsol, dstats, derr := dense.SolveStats(in)
	ssol, sstats, serr := sparse.SolveStats(in)
	if (derr == nil) != (serr == nil) {
		return fmt.Errorf("sparse/dense error mismatch: dense %v, sparse %v", derr, serr)
	}
	if derr == nil {
		if err := verify.BitIdenticalSolutions(ssol, dsol); err != nil {
			return fmt.Errorf("sparse vs dense: %w", err)
		}
		if sstats.SparseCells+sstats.Cells > dstats.Cells {
			return fmt.Errorf("sparse spent %d breakpoints + %d dense cells, dense spent %d cells",
				sstats.SparseCells, sstats.Cells, dstats.Cells)
		}
	}

	// Tight shared budget: sparse work is bounded by dense work, so a
	// dense-admitted instance must also solve sparsely (bit-identically);
	// a dense-rejected one may still fit the sparse budget, in which case
	// the oracle is the only reference.
	denseT := core.DP{Sparse: core.SparseOff, MaxStates: sparseFuzzBudget}
	sparseT := core.DP{Sparse: core.SparseOn, MaxStates: sparseFuzzBudget}
	dsolT, derrT := denseT.Solve(in)
	ssolT, serrT := sparseT.Solve(in)
	switch {
	case derrT == nil:
		if serrT != nil {
			return fmt.Errorf("budget %d: sparse failed (%v) where dense solved", sparseFuzzBudget, serrT)
		}
		if err := verify.BitIdenticalSolutions(ssolT, dsolT); err != nil {
			return fmt.Errorf("budget %d: sparse vs dense: %w", sparseFuzzBudget, err)
		}
	case serrT == nil:
		if err := verify.CheckSolution(in, ssolT); err != nil {
			return fmt.Errorf("budget %d: beyond-wall sparse solve: %w", sparseFuzzBudget, err)
		}
	}

	// Warm-start battery over a sparse-recorded state: every accepted
	// warm result must match a cold sparse solve bit for bit.
	if serr != nil {
		return nil
	}
	d := core.DP{CheckpointStride: 4, Sparse: core.SparseOn}
	var st core.DPState
	if _, _, err := d.SolveCheckpoint(in, &st); err != nil {
		if st.Valid() {
			return fmt.Errorf("sparse: cold solve failed (%v) but left a valid state", err)
		}
		return nil
	}
	for _, m := range deltaMutants(in) {
		want, errC := sparse.Solve(m.in)
		sol, _, ok, errW := d.SolveFrom(&st, m.in, false)
		if (errC == nil) != (errW == nil) {
			return fmt.Errorf("sparse warm %s: cold err=%v, warm err=%v", m.name, errC, errW)
		}
		if errC != nil || !ok {
			continue
		}
		if err := verify.BitIdenticalSolutions(sol, want); err != nil {
			return fmt.Errorf("sparse warm %s: %w", m.name, err)
		}
		if err := verify.CheckSolution(m.in, sol); err != nil {
			return fmt.Errorf("sparse warm %s: oracle: %w", m.name, err)
		}
	}
	return nil
}

// FuzzSparseDense decodes arbitrary bytes into an instance and pins the
// sparse row kernel against the dense reference: bit-identity wherever
// both are admitted, oracle validity beyond the dense budget wall, and
// warm-start correctness over sparse-recorded states.
func FuzzSparseDense(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		if err := checkSparseDense(in); err != nil {
			failShrunk(t, in, err, checkSparseDense)
		}
	})
}
