package core

import (
	"fmt"
	"math"
	"sort"

	"dvsreject/internal/conc"
)

// SparseMode selects the DP row representation.
type SparseMode uint8

const (
	// SparseAuto (the zero value) keeps the dense kernel whenever the
	// dense grid fits the state budget and switches to sparse rows only
	// for instances the dense admission check would reject — existing
	// dense-regime callers keep today's kernels, bit for bit.
	SparseAuto SparseMode = iota
	// SparseOff forces the dense kernel; over-budget grids error.
	SparseOff
	// SparseOn forces sparse rows (with the adaptive dense switchover).
	SparseOn
)

// DefaultMaxSparseCells is the sparse solver's work limit — row
// breakpoints summed across all rows — when MaxStates is 0. A sparse
// breakpoint retains ~17 bytes (workload, take bit, transient value)
// against the dense cell's single bit, so the default budget is smaller
// than DefaultMaxDPStates while still covering grids the dense kernel
// could never admit.
const DefaultMaxSparseCells = int64(1) << 24

// sparseRows is the reconstruction record of a sparse solve: one arena of
// ascending workload breakpoints holding every row back to back, plus a
// per-row packed take bitset indexed by cell position (not workload — the
// whole point is that workloads are too wide to index by). It replaces the
// dense takeTable and doubles as the row state of a sparse DPState.
type sparseRows struct {
	ws     []int64  // kept workloads, row-major
	off    []int64  // len rows+1; row i occupies ws[off[i]:off[i+1]]
	bits   []uint64 // take bits, word-aligned per row
	bitOff []int64  // len rows+1; row i's words at bits[bitOff[i]:bitOff[i+1]]
}

// begin truncates the record to its first keep rows (0 starts fresh),
// retaining the arenas for reuse.
func (r *sparseRows) begin(keep int) {
	if keep <= 0 || len(r.off) == 0 {
		if cap(r.off) == 0 {
			r.off = make([]int64, 1, 16)
			r.bitOff = make([]int64, 1, 16)
		} else {
			r.off = r.off[:1]
			r.bitOff = r.bitOff[:1]
			r.off[0], r.bitOff[0] = 0, 0
		}
		r.ws = r.ws[:0]
		r.bits = r.bits[:0]
		return
	}
	r.off = r.off[:keep+1]
	r.bitOff = r.bitOff[:keep+1]
	r.ws = r.ws[:r.off[keep]]
	r.bits = r.bits[:r.bitOff[keep]]
}

// grow extends the arenas for one row of at most maxLen cells, returning
// the row's workload slice and zeroed take words; commit fixes the actual
// length. Growth doubles, so an append-per-row run copies amortized O(1)
// words per cell.
func (r *sparseRows) grow(maxLen int) ([]int64, []uint64) {
	base := r.off[len(r.off)-1]
	need := base + int64(maxLen)
	if int64(cap(r.ws)) < need {
		nw := make([]int64, need, max(need, 2*int64(cap(r.ws))))
		copy(nw, r.ws)
		r.ws = nw
	} else {
		r.ws = r.ws[:need]
	}
	wbase := r.bitOff[len(r.bitOff)-1]
	wneed := wbase + int64(maxLen+63)/64
	if int64(cap(r.bits)) < wneed {
		nb := make([]uint64, wneed, max(wneed, 2*int64(cap(r.bits))))
		copy(nb, r.bits)
		r.bits = nb
	} else {
		r.bits = r.bits[:wneed]
	}
	bits := r.bits[wbase:wneed]
	clear(bits)
	return r.ws[base:need], bits
}

// commit appends the row grown last at its actual cell count.
func (r *sparseRows) commit(n int) {
	base := r.off[len(r.off)-1]
	r.off = append(r.off, base+int64(n))
	r.ws = r.ws[:base+int64(n)]
	wbase := r.bitOff[len(r.bitOff)-1]
	r.bitOff = append(r.bitOff, wbase+int64(n+63)/64)
	r.bits = r.bits[:wbase+int64(n+63)/64]
}

// row returns row i's kept workloads, ascending.
func (r *sparseRows) row(i int) []int64 { return r.ws[r.off[i]:r.off[i+1]] }

// take reports row i's take bit at cell index k.
func (r *sparseRows) take(i, k int) bool {
	return r.bits[r.bitOff[i]+int64(k>>6)]&(1<<uint(k&63)) != 0
}

// memoryBytes is the record's retained heap.
func (r *sparseRows) memoryBytes() int64 {
	return int64(len(r.ws))*8 + int64(len(r.bits))*8 + int64(len(r.off))*8 + int64(len(r.bitOff))*8
}

// sparseStep folds one item into the sparse row (prevW, prevF), appending
// the produced row to rows with buf as the value buffer. It returns the
// new row views, the (possibly regrown) buffer, and the cell count — -1
// when the row overflows the remaining breakpoint budget.
func sparseStep(rows *sparseRows, prevW []int64, prevF []float64, buf []float64, it item, cap64 int64, prune bool, budget int64) ([]int64, []float64, []float64, int) {
	if it.c > cap64 {
		// Never acceptable: every path pays the penalty. The add runs cell
		// by cell so the float summation order matches dpRejectRange — an
		// accumulated offset would reassociate the sums.
		k := len(prevW)
		outW, _ := rows.grow(k)
		buf = growF64(buf, k)
		for j, w := range prevW {
			outW[j] = w
			buf[j] = prevF[j] + it.v
		}
		rows.commit(k)
		return outW, buf[:k], buf, k
	}
	maxOut := 2 * len(prevW)
	if m := budget + 1; int64(maxOut) > m {
		maxOut = int(m)
	}
	outW, bits := rows.grow(maxOut)
	buf = growF64(buf, maxOut)
	k := sparseMergeRow(prevW, prevF, it.c, it.v, cap64, prune, outW, buf[:maxOut], bits)
	if k < 0 {
		return nil, nil, buf, -1
	}
	rows.commit(k)
	return outW[:k], buf[:k], buf, k
}

func sparseBudgetErr(limit int64, row, n int) error {
	return fmt.Errorf("core: sparse DP passed %d row breakpoints by row %d/%d (%w); raise MaxStates or use ApproxDP", limit, row, n, ErrStateBudget)
}

// solveSparse is the sparse-row counterpart of the dense rejectionDP path
// of DP.solve: rows carry only finite cells (only the dominance frontier
// when the energy curve is monotone), MaxStates budgets actual breakpoints
// instead of grid area, and reconstruction walks per-row breakpoint lists
// instead of the packed dense take table. Results are bit-identical to
// the dense kernel on every instance both can solve — the differential
// corpus and FuzzSparseDense pin this.
func (d DP) solveSparse(ctx *evalCtx, cap64 int64, rec *DPState) (Solution, DPStats, error) {
	var stats DPStats
	if cap64 < 0 {
		return Solution{}, stats, fmt.Errorf("core: negative DP capacity %d", cap64)
	}
	its := ctx.items
	n := len(its)
	prune := ctx.fastEnergy
	limit := d.MaxStates
	if limit == 0 {
		limit = DefaultMaxSparseCells
	}
	denseLimit := d.MaxStates
	if denseLimit == 0 {
		denseLimit = DefaultMaxDPStates
	}
	width := cap64 + 1

	sc := getDPScratch()
	defer putDPScratch(sc)
	rows := &sc.spRec
	var snap func(int, []int64, []float64)
	if rec != nil {
		rec.beginSparse(cap64, d.checkpointStride(), n, prune)
		rows = &rec.sp
		snap = rec.noteSparseRow
	}
	rows.begin(0)

	// Row 0: the empty prefix reaches only workload 0 at zero penalty.
	w0 := [1]int64{0}
	f0 := [1]float64{0}
	prevW, prevF := w0[:], f0[:]
	bufA, bufB := sc.spF, sc.spF2
	defer func() { sc.spF, sc.spF2 = bufA, bufB }()
	var spent int64

	for i := 0; i < n; i++ {
		stats.Rows++
		var wrote []float64
		var k int
		prevW, prevF, wrote, k = sparseStep(rows, prevW, prevF, bufA, its[i], cap64, prune, limit-spent)
		bufA, bufB = bufB, wrote
		if k >= 0 {
			spent += int64(k)
			stats.SparseCells += int64(k)
		}
		if k < 0 || spent > limit {
			return Solution{}, stats, sparseBudgetErr(limit, i+1, n)
		}
		if snap != nil {
			snap(i+1, prevW, prevF)
		}
		// Adaptive switchover: once row occupancy crosses 1/8 of the grid
		// the dense kernel's branch-free cells are cheaper than merge
		// breakpoints, and the remaining dense table fits the state budget.
		// Recorded solves never switch — a DPState keeps one representation.
		if rec == nil && i+1 < n && int64(len(prevW))*8 > width {
			if rem := int64(n-i-1) * width; rem <= denseLimit {
				return d.finishSparseDense(ctx, cap64, i+1, prevW, prevF, rows, sc, stats)
			}
		}
	}

	bestW, _ := minCostWorkloadSparse(prevW, prevF, ctx.energy, 1, ctx.fastEnergy)
	if bestW < 0 {
		return Solution{}, stats, fmt.Errorf("core: DP found no feasible workload")
	}

	// Reconstruct along the breakpoint rows: the path cell is located by
	// binary search, its take bit by cell index.
	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= 0; i-- {
		rw := rows.row(i)
		j := sort.Search(len(rw), func(x int) bool { return rw[x] >= w })
		if j == len(rw) || rw[j] != w {
			return Solution{}, stats, fmt.Errorf("core: DP reconstruction lost workload %d at row %d", w, i)
		}
		if rows.take(i, j) {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		return Solution{}, stats, fmt.Errorf("core: DP reconstruction left workload %d", w)
	}
	if rec != nil {
		rec.finishSparse(its)
	}
	sol, err := ctx.evaluate(ids)
	return sol, stats, err
}

// finishSparseDense continues a sparse solve on the dense kernels from row
// start: the sparse row is scattered into an Inf-filled dense row (pruned
// holes read +Inf — a dominated cell's descendants are themselves
// dominated, so the final scan's frontier filter drops every cell the
// holes could distort before it is ever costed) and the remaining rows run
// through dpRowRange/dpRejectRange exactly as rejectionDP would, AVX2 and
// row-parallel chunking included. Reconstruction stitches the dense take
// window onto the sparse prefix record.
func (d DP) finishSparseDense(ctx *evalCtx, cap64 int64, start int, prevW []int64, prevF []float64, spRows *sparseRows, sc *dpScratch, stats DPStats) (Solution, DPStats, error) {
	its := ctx.items
	n := len(its)
	width := cap64 + 1
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}

	prev := growF64(sc.f, int(width))
	sc.f = prev
	cur := growF64(sc.f2, int(width))
	sc.f2 = cur
	for w := range prev {
		prev[w] = math.Inf(1)
	}
	for w := range cur {
		cur[w] = math.Inf(1)
	}
	for j, w := range prevW {
		prev[w] = prevF[j]
	}
	reach := prevW[len(prevW)-1]

	perRow := (width + 63) / 64
	words := growU64(sc.words, int(int64(n-start)*perRow))
	sc.words = words
	clear(words)

	for i := start; i < n; i++ {
		stats.Rows++
		stats.DenseRows++
		c, v := its[i].c, its[i].v
		if c > cap64 {
			hi := reach + 1
			dpRejectRange(prev, cur, v, 0, hi)
			stats.Cells += hi
			prev, cur = cur, prev
			continue
		}
		reach = min(reach+c, cap64)
		hi := reach + 1
		rowBits := words[int64(i-start)*perRow : int64(i-start+1)*perRow]
		if workers > 1 && hi >= int64(64*workers) {
			chunk := (hi + int64(workers) - 1) / int64(workers)
			chunk = (chunk + 63) &^ 63
			nch := int((hi + chunk - 1) / chunk)
			conc.ForEach(nch, workers, func(k int) (struct{}, error) {
				lo := int64(k) * chunk
				dpRowRange(prev, cur, rowBits, c, v, lo, min(lo+chunk, hi))
				return struct{}{}, nil
			})
		} else {
			dpRowRange(prev, cur, rowBits, c, v, 0, hi)
		}
		stats.Cells += hi
		prev, cur = cur, prev
	}
	f := prev

	var bestW int64
	if workers > 1 && ctx.fastEnergy {
		bestW, _ = minCostWorkloadParallel(f, ctx.energy, 1, workers)
	} else {
		bestW, _ = minCostWorkload(f, ctx.energy, 1, ctx.fastEnergy)
	}
	if bestW < 0 {
		return Solution{}, stats, fmt.Errorf("core: DP found no feasible workload")
	}

	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= start; i-- {
		if words[int64(i-start)*perRow+w/64]&(1<<uint(w%64)) != 0 {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	for i := start - 1; i >= 0; i-- {
		rw := spRows.row(i)
		j := sort.Search(len(rw), func(x int) bool { return rw[x] >= w })
		if j == len(rw) || rw[j] != w {
			return Solution{}, stats, fmt.Errorf("core: DP reconstruction lost workload %d at row %d", w, i)
		}
		if spRows.take(i, j) {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		return Solution{}, stats, fmt.Errorf("core: DP reconstruction left workload %d", w)
	}
	sol, err := ctx.evaluate(ids)
	return sol, stats, err
}

// solveFromSparse is the SolveFrom warm path over a sparse DPState: the
// divergence scan and checkpoint selection mirror the dense path, the
// re-run rows use the sparse merge kernel with the recording's own pruning
// decision, and the budget counts the retained prefix breakpoints plus the
// re-run rows — what a cold sparse solve of the mutant would have spent.
func (d DP) solveFromSparse(ctx *evalCtx, st *DPState, cap64 int64, evolve bool) (sol Solution, stats DPStats, ok bool, err error) {
	// Pruned rows carry only the dominance frontier, which is exact only
	// under a monotone final scan; a non-monotone instance must cold-solve.
	if st.pruned && !ctx.fastEnergy {
		return Solution{}, stats, false, nil
	}
	items := ctx.items
	n := len(items)
	div := 0
	for lim := min(n, st.n); div < lim; div++ {
		a, b := items[div], st.items[div]
		if a.c != b.c || math.Float64bits(a.v) != math.Float64bits(b.v) {
			break
		}
	}
	si := -1
	for i := len(st.spSnaps) - 1; i >= 0; i-- {
		if st.spSnaps[i].row <= div {
			si = i
			break
		}
	}
	if si < 0 {
		return Solution{}, stats, false, nil
	}
	snap := st.spSnaps[si]
	start := snap.row
	prune := st.pruned
	limit := d.MaxStates
	if limit == 0 {
		limit = DefaultMaxSparseCells
	}
	spent := st.sp.off[start] // prefix breakpoints the warm state retains

	fail := func(e error) (Solution, DPStats, bool, error) {
		if evolve {
			st.valid = false
		}
		return Solution{}, stats, true, e
	}

	sc := getDPScratch()
	defer putDPScratch(sc)
	rows := &sc.spRec
	if evolve {
		st.stride = d.checkpointStride()
		st.spSnaps = st.spSnaps[:si+1]
		rows = &st.sp
		rows.begin(start)
	} else {
		rows.begin(0)
	}

	// The snapshot is read-only on both paths (evolve truncates the row
	// arena, never the snapshot buffers), so it serves as row "start"
	// directly.
	prevW, prevF := snap.ws, snap.fs
	bufA, bufB := sc.spF, sc.spF2
	defer func() { sc.spF, sc.spF2 = bufA, bufB }()

	for i := start; i < n; i++ {
		stats.Rows++
		var wrote []float64
		var k int
		prevW, prevF, wrote, k = sparseStep(rows, prevW, prevF, bufA, items[i], cap64, prune, limit-spent)
		bufA, bufB = bufB, wrote
		if k >= 0 {
			spent += int64(k)
			stats.SparseCells += int64(k)
		}
		if k < 0 || spent > limit {
			return fail(sparseBudgetErr(limit, i+1, n))
		}
		if evolve {
			st.noteEvolvedSparseRow(i+1, n, prevW, prevF)
		}
	}
	if evolve {
		st.items = append(st.items[:0], items...)
		st.n = n
	}

	bestW, _ := minCostWorkloadSparse(prevW, prevF, ctx.energy, 1, ctx.fastEnergy)
	if bestW < 0 {
		return fail(fmt.Errorf("core: DP found no feasible workload"))
	}

	// Reconstruct: re-run rows from the fresh window (in place on the
	// evolve path), untouched prefix rows from the recorded arena.
	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= 0; i-- {
		src, j := &st.sp, i
		if !evolve && i >= start {
			src, j = rows, i-start
		}
		rw := src.row(j)
		x := sort.Search(len(rw), func(y int) bool { return rw[y] >= w })
		if x == len(rw) || rw[x] != w {
			return fail(fmt.Errorf("core: DP reconstruction lost workload %d at row %d", w, i))
		}
		if src.take(j, x) {
			ids = append(ids, items[i].id)
			w -= items[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		return fail(fmt.Errorf("core: DP reconstruction left workload %d", w))
	}
	sol, err = ctx.evaluate(ids)
	return sol, stats, true, err
}
