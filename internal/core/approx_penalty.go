package core

import (
	"fmt"
	"math"
)

// ApproxDPPenalty is the penalty-axis scaling scheme, the classical
// complement of ApproxDP's capacity rounding: dynamic programming over the
// *rejected penalty* instead of the accepted workload.
//
// With K = ε·UB/n (UB = the density-greedy upper bound) and rounded
// penalties ⌊vᵢ/K⌋, state g[p] is the minimum accepted true cycles over
// decisions whose rounded rejected penalty is exactly p; the grid is
// clamped at n/ε + n cells because any rounded penalty above UB/K cannot
// beat UB. The table is O(n²/ε) cells *independent of cycle and penalty
// magnitudes* — the textbook FPTAS shape, where ApproxDP's table still
// scales with smax·D.
//
// Guarantee (proof in the comment of Solve): the returned cost is at most
// OPT + ε·UB ≤ (1+ε)·UB, hence at most (1+ε·UB/OPT)·OPT; the test suite
// enforces cost ≤ OPT + ε·UB on randomized instances. As ε → 0 the scheme
// converges to the exact optimum.
type ApproxDPPenalty struct {
	Eps       float64
	MaxStates int64 // as in DP; 0 means the default
}

// Name implements Solver.
func (a ApproxDPPenalty) Name() string { return fmt.Sprintf("ApproxDP-V(ε=%g)", a.Eps) }

// Solve implements Solver. Heterogeneous instances are rejected, as in DP.
//
// Correctness sketch: let S* be an optimal set with workload w*, penalty
// V*, and rounded penalty p* = Σ_{i∉S*} ⌊vᵢ/K⌋ ≤ V*/K. Then g[p*] ≤ w*
// (S* is one candidate at that level) and the rounded objective of the
// chosen level p̂ satisfies E(g[p̂]) + p̂·K ≤ E(g[p*]) + p*·K ≤ E(w*) + V*
// = OPT (E monotone). The true penalty of the reconstructed set exceeds
// its rounded value by < n·K = ε·UB, so cost ≤ OPT + ε·UB.
func (a ApproxDPPenalty) Solve(in Instance) (Solution, error) {
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	defer ctx.release()
	if ctx.hetero {
		return Solution{}, ErrHeterogeneous
	}
	if a.Eps <= 0 || math.IsNaN(a.Eps) {
		return Solution{}, fmt.Errorf("core: ApproxDPPenalty ε = %v, want > 0", a.Eps)
	}

	ub, err := greedyDensity(ctx)
	if err != nil {
		return Solution{}, err
	}
	if ub.Cost <= 0 {
		// Zero-cost upper bound: the greedy solution is already optimal
		// (cost is non-negative).
		return ub, nil
	}
	// Tasks that cannot fit the capacity alone are rejected on every path;
	// their penalties are a constant offset outside the DP (leaving them
	// in would make acceptance — which the grid forces for huge penalties
	// — infeasible everywhere).
	all := ctx.items
	its := all[:0:0]
	for _, it := range all {
		if ctx.fits(float64(it.c)) {
			its = append(its, it)
		}
	}
	n := len(its)
	if n == 0 {
		return ctx.evaluate(nil)
	}
	k := a.Eps * ub.Cost / float64(n)

	// Grid cap: levels beyond UB/K lose to the greedy bound outright.
	pMax := int64(math.Ceil(float64(n)/a.Eps)) + int64(n) + 1
	limit := a.MaxStates
	if limit == 0 {
		limit = DefaultMaxDPStates
	}
	if work := int64(n) * (pMax + 1); work > limit {
		return Solution{}, fmt.Errorf("core: ApproxDPPenalty needs %d states, over the limit %d (raise ε)", work, limit)
	}

	const inf = math.MaxInt64 / 4
	// Table state comes from the scratch pool; the stride-flattened take
	// table replaces the seed's [][]bool row-per-task layout cell for cell.
	sc := getDPScratch()
	defer putDPScratch(sc)
	stride := pMax + 1
	g := growI64(sc.g, int(stride)) // min accepted true cycles per rounded penalty level
	sc.g = g
	for p := range g {
		g[p] = inf
	}
	g[0] = 0
	take := growBool(sc.take, n*int(stride))
	sc.take = take
	clear(take)
	for i, it := range its {
		row := take[int64(i)*stride : int64(i+1)*stride]
		vp := int64(math.Floor(it.v / k))
		if vp > pMax {
			// Rejecting this task alone exceeds the useful grid: it is
			// always accepted if it fits at all; model by making reject
			// unreachable within the grid.
			vp = pMax + 1
		}
		for p := pMax; p >= 0; p-- {
			// Reject: arrive at p from p−vp.
			rejectW := int64(inf)
			if vp <= p && g[p-vp] < inf {
				rejectW = g[p-vp]
			}
			// Accept: stay at level p, add cycles.
			acceptW := int64(inf)
			if g[p] < inf {
				acceptW = g[p] + it.c
			}
			if acceptW < rejectW {
				g[p] = acceptW
				row[p] = true
			} else if rejectW < inf {
				g[p] = rejectW
			} else {
				g[p] = inf
			}
		}
	}

	// Pick the best rounded objective among capacity-feasible levels.
	bestP, bestObj := int64(-1), math.Inf(1)
	for p := int64(0); p <= pMax; p++ {
		if g[p] >= inf || !ctx.fits(float64(g[p])) {
			continue
		}
		if obj := ctx.energy(float64(g[p])) + float64(p)*k; obj < bestObj {
			bestObj, bestP = obj, p
		}
	}
	if bestP < 0 {
		return ub, nil // grid exhausted: fall back to the greedy bound
	}

	// Reconstruct.
	ids := sc.ids[:0]
	p := bestP
	for i := n - 1; i >= 0; i-- {
		if take[int64(i)*stride+p] {
			ids = append(ids, its[i].id)
		} else {
			vp := int64(math.Floor(its[i].v / k))
			p -= vp
		}
	}
	sc.ids = ids
	if p != 0 {
		return Solution{}, fmt.Errorf("core: ApproxDPPenalty reconstruction left level %d", p)
	}
	sol, err := ctx.evaluate(ids)
	if err != nil {
		return Solution{}, err
	}
	// Never return worse than the greedy upper bound.
	if ub.Cost < sol.Cost {
		return ub, nil
	}
	return sol, nil
}
