package core

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"

	"dvsreject/internal/conc"
)

// Exhaustive is the exact reference solver: a depth-first branch-and-bound
// over all 2ⁿ admission decisions. It is exact for every instance flavour
// (including heterogeneous power characteristics, discrete speeds and
// leakage) because leaves are costed by Evaluate. Intended for n ≲ 24 —
// the role the paper family's "optimal task assignment by exhaustive
// search" plays in their figures.
type Exhaustive struct {
	// MaxTasks bounds the instance size; 0 means the default of 28.
	MaxTasks int
	// WeakBoundOnly disables the convex marginal-cost pruning term,
	// falling back to the always-valid E(w)+V bound. Exposed for the
	// pruning ablation (experiment E12); results are identical, only the
	// explored node count changes.
	WeakBoundOnly bool
	// Workers sets the parallel fan-out of Solve: the top of the search
	// tree is split into prefix subtrees that a worker pool explores
	// concurrently against a shared atomic incumbent bound. 0 means
	// GOMAXPROCS, 1 forces the serial search. The returned solution is
	// identical either way; SolveStats always searches serially so its
	// node counts stay deterministic.
	Workers int
}

// Name implements Solver.
func (Exhaustive) Name() string { return "OPT" }

// DefaultMaxExhaustiveTasks is the instance size limit of Exhaustive.
const DefaultMaxExhaustiveTasks = 28

// Solve implements Solver.
func (e Exhaustive) Solve(in Instance) (Solution, error) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return e.solveParallel(in, workers)
	}
	sol, _, err := e.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the number of search nodes explored — the
// instrumentation the pruning ablation reads. The search is always serial
// here, keeping the node counts deterministic and comparable across runs.
func (e Exhaustive) SolveStats(in Instance) (Solution, int64, error) {
	ctx, its, seed, err := e.prepare(in)
	if err != nil {
		return Solution{}, 0, err
	}

	s := newSearcher(ctx, its, ctx.convex && !e.WeakBoundOnly)
	if seed != nil {
		s.bestCost = seed.Cost
		s.best = append([]int(nil), seed.Accepted...)
		s.haveBest = true
	}
	s.dfs(0, 0, 0, 0)

	if !s.haveBest {
		return Solution{}, s.nodes, fmt.Errorf("core: exhaustive search found no feasible solution")
	}
	sol, err := ctx.evaluate(s.best)
	return sol, s.nodes, err
}

// prepare validates the instance, orders the branching items and seeds the
// incumbent — the work shared by the serial and parallel drivers.
func (e Exhaustive) prepare(in Instance) (*evalCtx, []item, *Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return nil, nil, nil, err
	}
	limit := e.MaxTasks
	if limit == 0 {
		limit = DefaultMaxExhaustiveTasks
	}
	if n := len(ctx.items); n > limit {
		return nil, nil, nil, fmt.Errorf("core: exhaustive search over %d tasks exceeds the limit %d", n, limit)
	}

	its := slices.Clone(ctx.items)
	// Branch on large, expensive tasks first: their decisions move the
	// bound the most.
	sort.Slice(its, func(a, b int) bool { return its[a].ce > its[b].ce })

	// Seed the incumbent with the density greedy so pruning bites early.
	if seed, err := greedyDensity(ctx); err == nil {
		return ctx, its, &seed, nil
	}
	return ctx, its, nil, nil
}

// solveParallel fans the top of the search tree out to a worker pool: the
// first splitDepth admission decisions enumerate prefix subtrees in serial
// DFS visit order, workers explore them concurrently sharing an atomic
// incumbent cost for pruning, and the per-subtree winners are folded back
// in DFS order under the serial update rule — so the returned solution
// matches the serial search.
func (e Exhaustive) solveParallel(in Instance, workers int) (Solution, error) {
	ctx, its, seed, err := e.prepare(in)
	if err != nil {
		return Solution{}, err
	}
	n := len(its)
	convex := ctx.convex && !e.WeakBoundOnly

	seedCost := math.Inf(1)
	if seed != nil {
		seedCost = seed.Cost
	}

	// Split deep enough to keep every worker busy (≥4 subtrees each), but
	// never past the tree itself.
	splitDepth := 0
	for splitDepth < n && splitDepth < 10 && 1<<splitDepth < 4*workers {
		splitDepth++
	}

	type prefix struct {
		accepted []bool
		wTrue    int64
		wEff     float64
		vRej     float64
	}
	var prefixes []prefix
	var enumerate func(idx int, acc []bool, wTrue int64, wEff, vRej float64)
	enumerate = func(idx int, acc []bool, wTrue int64, wEff, vRej float64) {
		if idx == splitDepth {
			prefixes = append(prefixes, prefix{accepted: slices.Clone(acc), wTrue: wTrue, wEff: wEff, vRej: vRej})
			return
		}
		it := its[idx]
		if ctx.fits(float64(wTrue + it.c)) { // accept first, as the serial DFS does
			acc[idx] = true
			enumerate(idx+1, acc, wTrue+it.c, wEff+it.ce, vRej)
			acc[idx] = false
		}
		enumerate(idx+1, acc, wTrue, wEff, vRej+it.v)
	}
	enumerate(0, make([]bool, n), 0, 0, 0)

	// The shared incumbent: the best cost any worker has proven so far,
	// maintained with a CAS-min over its float bits.
	var shared atomic.Uint64
	shared.Store(math.Float64bits(seedCost))

	type subtreeBest struct {
		ids  []int
		cost float64
		ok   bool
	}
	results, err := conc.ForEach(len(prefixes), workers, func(i int) (subtreeBest, error) {
		p := prefixes[i]
		s := newSearcher(ctx, its, convex)
		s.bestCost = seedCost
		s.shared = &shared
		copy(s.accepted, p.accepted)
		s.dfs(splitDepth, p.wTrue, p.wEff, p.vRej)
		return subtreeBest{ids: s.best, cost: s.bestCost, ok: s.haveBest}, nil
	})
	if err != nil {
		return Solution{}, err
	}

	// Fold the subtree winners in DFS order with the serial update rule.
	bestCost := seedCost
	var best []int
	haveBest := seed != nil
	if haveBest {
		best = append([]int(nil), seed.Accepted...)
	}
	for _, r := range results {
		if r.ok && r.cost < bestCost-costEps {
			bestCost, best, haveBest = r.cost, r.ids, true
		}
	}
	if !haveBest {
		return Solution{}, fmt.Errorf("core: exhaustive search found no feasible solution")
	}
	sol, err := ctx.evaluate(best)
	return sol, err
}

type searcher struct {
	ctx    *evalCtx
	items  []item
	convex bool

	accepted []bool
	best     []int
	bestCost float64
	haveBest bool
	nodes    int64

	// shared, when non-nil (parallel mode), is the cross-worker incumbent
	// cost as float bits; workers prune against it and publish their own
	// improvements into it.
	shared *atomic.Uint64

	// Marginal-energy cache for the convex bound: surrogate(wEff+ce_i) per
	// item, valid for one wEff at a time. Reject edges keep wEff unchanged,
	// so chains of rejections — the bulk of the tree under strong pruning —
	// reuse the same energies instead of recomputing a math.Pow per item
	// per node.
	cacheEff   float64
	cacheBase  float64
	cacheValid bool
	cacheE     []float64
	cacheSet   []bool

	// ceCol/vCol mirror items' ce and v fields in branch order: the
	// lowerBound suffix sweep runs once per node over n−idx entries, and
	// two packed float columns keep it streaming cache lines instead of
	// striding 32-byte item structs.
	ceCol []float64
	vCol  []float64
}

func newSearcher(ctx *evalCtx, its []item, convex bool) *searcher {
	s := &searcher{
		ctx:      ctx,
		items:    its,
		convex:   convex,
		bestCost: math.Inf(1),
		accepted: make([]bool, len(its)),
		cacheE:   make([]float64, len(its)),
		cacheSet: make([]bool, len(its)),
		ceCol:    make([]float64, len(its)),
		vCol:     make([]float64, len(its)),
	}
	for i, it := range its {
		s.ceCol[i] = it.ce
		s.vCol[i] = it.v
	}
	return s
}

// costEps breaks ties in favour of the incumbent to keep results stable.
const costEps = 1e-9

// bound returns the tightest incumbent cost visible to this searcher: its
// own, and in parallel mode the shared cross-worker incumbent.
func (s *searcher) bound() float64 {
	if s.shared == nil {
		return s.bestCost
	}
	return math.Min(s.bestCost, math.Float64frombits(s.shared.Load()))
}

// publish records an improved incumbent, CAS-minning it into the shared
// bound in parallel mode.
func (s *searcher) publish(cost float64) {
	if s.shared == nil {
		return
	}
	for {
		old := s.shared.Load()
		if math.Float64frombits(old) <= cost {
			return
		}
		if s.shared.CompareAndSwap(old, math.Float64bits(cost)) {
			return
		}
	}
}

// dfs explores admission decisions for items[idx:], with wTrue/wEff the
// accepted workloads so far and vRej the accumulated rejection penalty.
func (s *searcher) dfs(idx int, wTrue int64, wEff, vRej float64) {
	s.nodes++
	if lb := s.lowerBound(idx, wEff, vRej); lb >= s.bound()-costEps {
		return
	}
	if idx == len(s.items) {
		s.leaf(wEff, vRej)
		return
	}
	it := s.items[idx]

	// Accept, when capacity allows.
	if s.ctx.fits(float64(wTrue + it.c)) {
		childEff := wEff + it.ce
		// The parent's cached marginal surrogate(wEff+ce_idx) IS the
		// child's base energy — hand it down instead of recomputing the
		// Pow. Same float input, same float output: bit-identical.
		if s.convex && s.cacheValid && s.cacheEff == wEff && s.cacheSet[idx] {
			s.cacheEff = childEff
			s.cacheBase = s.cacheE[idx]
			for i := range s.cacheSet {
				s.cacheSet[i] = false
			}
		}
		s.accepted[idx] = true
		s.dfs(idx+1, wTrue+it.c, childEff, vRej)
		s.accepted[idx] = false
	}
	// Reject.
	s.dfs(idx+1, wTrue, wEff, vRej+it.v)
}

// lowerBound computes a valid optimistic cost for any completion of the
// current partial decision. The surrogate energy is monotone in the
// accepted workload, so E(wEff) + vRej is always valid; with a convex
// curve every remaining task additionally costs at least
// min(vi, E(w+ci)−E(w)) because convex increments are superadditive.
func (s *searcher) lowerBound(idx int, wEff, vRej float64) float64 {
	if !s.cacheValid || s.cacheEff != wEff {
		s.cacheEff = wEff
		s.cacheBase = s.ctx.surrogate(wEff)
		s.cacheValid = true
		if s.convex {
			for i := range s.cacheSet {
				s.cacheSet[i] = false
			}
		}
	}
	base := s.cacheBase
	lb := base + vRej
	if !s.convex || math.IsInf(base, 1) {
		return lb
	}
	for i := idx; i < len(s.items); i++ {
		if !s.cacheSet[i] {
			s.cacheE[i] = s.ctx.surrogate(wEff + s.ceCol[i])
			s.cacheSet[i] = true
		}
		// min(v, marginal) by branch: v is finite ≥ 0 and marginal is
		// finite or +Inf, so this equals math.Min without the call.
		m := s.cacheE[i] - base
		if v := s.vCol[i]; v < m {
			m = v
		}
		lb += m
	}
	return lb
}

// leaf costs a complete decision exactly and updates the incumbent.
func (s *searcher) leaf(wEff, vRej float64) {
	var ids []int
	for i, acc := range s.accepted {
		if acc {
			ids = append(ids, s.items[i].id)
		}
	}
	// The preceding lowerBound call left cacheBase = surrogate(wEff).
	cost := s.cacheBase + vRej
	if s.ctx.hetero {
		// The surrogate underestimates when speed clamping binds; re-cost
		// exactly before comparing.
		sol, err := s.ctx.evaluate(ids)
		if err != nil {
			return
		}
		cost = sol.Cost
	}
	if cost < s.bestCost-costEps {
		s.bestCost = cost
		s.best = ids
		s.haveBest = true
		s.publish(cost)
	}
}
