package core

import (
	"fmt"
	"math"
	"sort"
)

// Exhaustive is the exact reference solver: a depth-first branch-and-bound
// over all 2ⁿ admission decisions. It is exact for every instance flavour
// (including heterogeneous power characteristics, discrete speeds and
// leakage) because leaves are costed by Evaluate. Intended for n ≲ 24 —
// the role the paper family's "optimal task assignment by exhaustive
// search" plays in their figures.
type Exhaustive struct {
	// MaxTasks bounds the instance size; 0 means the default of 28.
	MaxTasks int
	// WeakBoundOnly disables the convex marginal-cost pruning term,
	// falling back to the always-valid E(w)+V bound. Exposed for the
	// pruning ablation (experiment E12); results are identical, only the
	// explored node count changes.
	WeakBoundOnly bool
}

// Name implements Solver.
func (Exhaustive) Name() string { return "OPT" }

// DefaultMaxExhaustiveTasks is the instance size limit of Exhaustive.
const DefaultMaxExhaustiveTasks = 28

// Solve implements Solver.
func (e Exhaustive) Solve(in Instance) (Solution, error) {
	sol, _, err := e.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the number of search nodes explored — the
// instrumentation the pruning ablation reads.
func (e Exhaustive) SolveStats(in Instance) (Solution, int64, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, 0, err
	}
	limit := e.MaxTasks
	if limit == 0 {
		limit = DefaultMaxExhaustiveTasks
	}
	if n := len(in.Tasks.Tasks); n > limit {
		return Solution{}, 0, fmt.Errorf("core: exhaustive search over %d tasks exceeds the limit %d", n, limit)
	}

	its := in.items()
	// Branch on large, expensive tasks first: their decisions move the
	// bound the most.
	sort.Slice(its, func(a, b int) bool { return its[a].ce > its[b].ce })

	s := &searcher{in: in, items: its, convex: in.convexEnergy() && !e.WeakBoundOnly}
	// Seed the incumbent with the density greedy so pruning bites early.
	if seed, err := (GreedyDensity{}).Solve(in); err == nil {
		s.bestCost = seed.Cost
		s.best = append([]int(nil), seed.Accepted...)
		s.haveBest = true
	} else {
		s.bestCost = math.Inf(1)
	}

	s.accepted = make([]bool, len(its))
	s.dfs(0, 0, 0, 0)

	if !s.haveBest {
		return Solution{}, s.nodes, fmt.Errorf("core: exhaustive search found no feasible solution")
	}
	sol, err := Evaluate(in, s.best)
	return sol, s.nodes, err
}

type searcher struct {
	in     Instance
	items  []item
	convex bool

	accepted []bool
	best     []int
	bestCost float64
	haveBest bool
	nodes    int64
}

// costEps breaks ties in favour of the incumbent to keep results stable.
const costEps = 1e-9

// dfs explores admission decisions for items[idx:], with wTrue/wEff the
// accepted workloads so far and vRej the accumulated rejection penalty.
func (s *searcher) dfs(idx int, wTrue int64, wEff, vRej float64) {
	s.nodes++
	if lb := s.lowerBound(idx, wEff, vRej); lb >= s.bestCost-costEps {
		return
	}
	if idx == len(s.items) {
		s.leaf(wEff, vRej)
		return
	}
	it := s.items[idx]

	// Accept, when capacity allows.
	if s.in.Fits(float64(wTrue + it.c)) {
		s.accepted[idx] = true
		s.dfs(idx+1, wTrue+it.c, wEff+it.ce, vRej)
		s.accepted[idx] = false
	}
	// Reject.
	s.dfs(idx+1, wTrue, wEff, vRej+it.v)
}

// lowerBound computes a valid optimistic cost for any completion of the
// current partial decision. The surrogate energy is monotone in the
// accepted workload, so E(wEff) + vRej is always valid; with a convex
// curve every remaining task additionally costs at least
// min(vi, E(w+ci)−E(w)) because convex increments are superadditive.
func (s *searcher) lowerBound(idx int, wEff, vRej float64) float64 {
	base := s.in.surrogateEnergy(wEff)
	lb := base + vRej
	if !s.convex || math.IsInf(base, 1) {
		return lb
	}
	for _, it := range s.items[idx:] {
		marginal := s.in.surrogateEnergy(wEff+it.ce) - base
		lb += math.Min(it.v, marginal)
	}
	return lb
}

// leaf costs a complete decision exactly and updates the incumbent.
func (s *searcher) leaf(wEff, vRej float64) {
	var ids []int
	for i, acc := range s.accepted {
		if acc {
			ids = append(ids, s.items[i].id)
		}
	}
	cost := s.in.surrogateEnergy(wEff) + vRej
	if s.in.Heterogeneous() {
		// The surrogate underestimates when speed clamping binds; re-cost
		// exactly before comparing.
		sol, err := Evaluate(s.in, ids)
		if err != nil {
			return
		}
		cost = sol.Cost
	}
	if cost < s.bestCost-costEps {
		s.bestCost = cost
		s.best = ids
		s.haveBest = true
	}
}
