package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

// randRow draws a DP-domain row: non-negative finite penalty sums with a
// sprinkling of +Inf (unreachable cells), the only values the rejection DP
// ever stores.
func randRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	for i := range row {
		if rng.Intn(4) == 0 {
			row[i] = math.Inf(1)
		} else {
			row[i] = rng.Float64() * 100
		}
	}
	return row
}

// refRowCell is the seed's per-cell update: guarded reject arm, guarded
// accept arm, strict accept-wins comparison.
func refRowCell(prev []float64, c int64, v float64, w int64) (float64, bool) {
	rejectCost := math.Inf(1)
	if !math.IsInf(prev[w], 1) {
		rejectCost = prev[w] + v
	}
	acceptCost := math.Inf(1)
	if w >= c && !math.IsInf(prev[w-c], 1) {
		acceptCost = prev[w-c]
	}
	if acceptCost < rejectCost {
		return acceptCost, true
	}
	return rejectCost, false
}

// TestDPRowRangeMatchesSeed drives the row kernel — scalar head/tail,
// dpBlocksGeneric or dpBlocksAVX2 middle — over random rows and ranges and
// demands bit-identity with the seed's guarded per-cell update, values and
// take bits alike.
func TestDPRowRangeMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		width := int64(1 + rng.Intn(400))
		prev := randRow(rng, int(width))
		c := int64(1 + rng.Intn(int(width)))
		v := rng.Float64() * 10
		// lo must be a multiple of 64 (word ownership); hi any bound above.
		lo := int64(0)
		if nw := int(width / 64); nw > 0 && rng.Intn(2) == 0 {
			lo = int64(rng.Intn(nw+1)) * 64
		}
		hi := lo + int64(rng.Intn(int(width-lo)+1))

		cur := make([]float64, width)
		for i := range cur {
			cur[i] = math.Inf(1)
		}
		bits := make([]uint64, (width+63)/64)
		dpRowRange(prev, cur, bits, c, v, lo, hi)

		for w := lo; w < hi; w++ {
			want, take := refRowCell(prev, c, v, w)
			if math.Float64bits(cur[w]) != math.Float64bits(want) {
				t.Fatalf("trial %d (c=%d lo=%d hi=%d): cur[%d] = %v (bits %x), seed %v (bits %x)",
					trial, c, lo, hi, w, cur[w], math.Float64bits(cur[w]), want, math.Float64bits(want))
			}
			got := bits[w>>6]&(1<<uint(w&63)) != 0
			if got != take {
				t.Fatalf("trial %d (c=%d lo=%d hi=%d): take[%d] = %v, seed %v", trial, c, lo, hi, w, got, take)
			}
		}
	}
}

// TestDPBlocksAVX2MatchesGeneric cross-checks the assembly kernel against
// the portable one on identical inputs. Skipped where AVX2 is unavailable
// (the build then has no assembly path to test).
func TestDPBlocksAVX2MatchesGeneric(t *testing.T) {
	if !dpUseAVX2 {
		t.Skip("AVX2 kernel not in use on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nb := int64(1 + rng.Intn(8))
		c := int64(1 + rng.Intn(200))
		w0 := c + int64(rng.Intn(3))*64 // keep the accept lane in range
		w0 = (w0 + 63) &^ 63
		width := w0 + nb*64
		prev := randRow(rng, int(width))
		v := rng.Float64() * 10

		curG := make([]float64, width)
		curA := make([]float64, width)
		bitsG := make([]uint64, width/64)
		bitsA := make([]uint64, width/64)
		dpBlocksGeneric(prev, curG, bitsG, c, v, w0, nb)
		dpBlocksAVX2(&prev[w0], &prev[w0-c], &curA[w0], &bitsA[w0>>6], nb, v)

		for w := w0; w < width; w++ {
			if math.Float64bits(curG[w]) != math.Float64bits(curA[w]) {
				t.Fatalf("trial %d: cur[%d]: generic %x, avx2 %x", trial, w, math.Float64bits(curG[w]), math.Float64bits(curA[w]))
			}
		}
		if !slices.Equal(bitsG[w0>>6:], bitsA[w0>>6:]) {
			t.Fatalf("trial %d: take words: generic %x, avx2 %x", trial, bitsG[w0>>6:], bitsA[w0>>6:])
		}
	}
}

// dpParallelCorpus is the differential corpus plus instances wide enough
// (capacity ≥ 64·workers) that the row-parallel path actually engages.
func dpParallelCorpus(t *testing.T) []diffCase {
	t.Helper()
	cases := diffCorpus(t)
	for s := int64(0); s < 3; s++ {
		set, err := gen.Frame(rand.New(rand.NewSource(100+s)), gen.Config{
			N: 120, Load: 1.4, Deadline: 2000, Penalty: gen.PenaltyModel(s % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
		cases = append(cases, diffCase{fmt.Sprintf("wide-cubic/seed=%d", s), in})
	}
	return cases
}

// TestDPParallelMatchesSerial pins the row-parallel DP to the serial one:
// identical accepted sets, bit-identical costs, and identical table work
// counters for every worker count.
func TestDPParallelMatchesSerial(t *testing.T) {
	for _, c := range dpParallelCorpus(t) {
		serial, serialStats, serialErr := DP{}.SolveStats(c.in)
		for _, workers := range []int{2, 3} {
			par, parStats, parErr := DP{Workers: workers}.SolveStats(c.in)
			name := fmt.Sprintf("%s/workers=%d", c.name, workers)
			sameSolution(t, name, par, serial, parErr, serialErr)
			if parErr == nil {
				if par.Cost != serial.Cost {
					t.Errorf("%s: cost bits %x != serial %x", name, math.Float64bits(par.Cost), math.Float64bits(serial.Cost))
				}
				if parStats != serialStats {
					t.Errorf("%s: stats %+v != serial %+v", name, parStats, serialStats)
				}
			}
		}
	}
}

// TestApproxDPParallelMatchesSerial is the same contract for the
// capacity-rounded DP.
func TestApproxDPParallelMatchesSerial(t *testing.T) {
	for _, c := range dpParallelCorpus(t) {
		for _, eps := range []float64{0.05, 0.3} {
			serial, serialStats, serialErr := ApproxDP{Eps: eps}.SolveStats(c.in)
			for _, workers := range []int{2, 3} {
				par, parStats, parErr := ApproxDP{Eps: eps, Workers: workers}.SolveStats(c.in)
				name := fmt.Sprintf("%s/eps=%g/workers=%d", c.name, eps, workers)
				sameSolution(t, name, par, serial, parErr, serialErr)
				if parErr == nil {
					if par.Cost != serial.Cost {
						t.Errorf("%s: cost bits %x != serial %x", name, math.Float64bits(par.Cost), math.Float64bits(serial.Cost))
					}
					if parStats != serialStats {
						t.Errorf("%s: stats %+v != serial %+v", name, parStats, serialStats)
					}
				}
			}
		}
	}
}

// TestDifferentialDPLarge is the large-instance differential entry: at
// n = 10000 the serial kernel, the row-parallel kernel and the seed
// reference DP must agree on the accepted set and the cost. This is the
// scale the kernel overhaul targets; the small corpus cannot distinguish a
// blocked-loop bug that only strikes past the first take word.
func TestDifferentialDPLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential corpus skipped in -short mode")
	}
	set, err := gen.Frame(rand.New(rand.NewSource(424242)), gen.Config{
		N: 10000, Load: 1.5, Deadline: 12000, Penalty: gen.PenaltyProportional,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}

	want, wantErr := refDP(in)
	got, gotStats, gotErr := DP{MaxStates: 1 << 30}.SolveStats(in)
	sameSolution(t, "serial", got, want, gotErr, wantErr)

	par, parStats, parErr := DP{MaxStates: 1 << 30, Workers: 3}.SolveStats(in)
	sameSolution(t, "parallel", par, want, parErr, wantErr)
	if gotErr == nil && parErr == nil {
		if got.Cost != par.Cost {
			t.Errorf("parallel cost bits %x != serial %x", math.Float64bits(par.Cost), math.Float64bits(got.Cost))
		}
		if gotStats != parStats {
			t.Errorf("parallel stats %+v != serial %+v", parStats, gotStats)
		}
	}

	for _, eps := range []float64{0.3, 2.5} {
		wantA, wantAErr := refApproxDP(in, eps)
		gotA, _, gotAErr := ApproxDP{Eps: eps, MaxStates: 1 << 30}.SolveStats(in)
		sameSolution(t, fmt.Sprintf("approx/eps=%g", eps), gotA, wantA, gotAErr, wantAErr)
		parA, _, parAErr := ApproxDP{Eps: eps, MaxStates: 1 << 30, Workers: 3}.SolveStats(in)
		sameSolution(t, fmt.Sprintf("approx-parallel/eps=%g", eps), parA, wantA, parAErr, wantAErr)
	}
}

// TestFastPowTolerance bounds the opt-in fast-pow drift: solver costs with
// Instance.FastPow set must stay within 1e-9 relative of the math.Pow
// defaults. FastPow is deliberately excluded from the bit-identity corpus —
// this tolerance bound is its entire contract.
func TestFastPowTolerance(t *testing.T) {
	models := []struct {
		name string
		proc speed.Proc
	}{
		{"cubic", speed.Proc{Model: power.Cubic(), SMax: 1}},
		{"quadratic", speed.Proc{Model: power.Polynomial{Coeff: 1.5, Alpha: 2}, SMax: 1}},
	}
	solvers := []Solver{DP{}, GreedyDensity{}, GreedyMarginal{}, RandomAdmission{Seed: 3, Restarts: 8, Workers: 1}}
	for _, m := range models {
		for s := int64(0); s < 4; s++ {
			in := diffInstance(t, 9000+s, 10+int(s), 0.8+0.3*float64(s), m.proc, false)
			fast := in
			fast.FastPow = true
			for _, solver := range solvers {
				want, wantErr := solver.Solve(in)
				got, gotErr := solver.Solve(fast)
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("%s/seed=%d/%s: error mismatch: %v vs %v", m.name, s, solver.Name(), gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if diff := math.Abs(got.Cost - want.Cost); diff > 1e-9*(1+math.Abs(want.Cost)) {
					t.Errorf("%s/seed=%d/%s: fast-pow cost %v, default %v (diff %g)",
						m.name, s, solver.Name(), got.Cost, want.Cost, diff)
				}
			}
		}
	}
	// On exponents outside {2, 3} the flag must be inert: bit-identical.
	frac := speed.Proc{Model: power.Polynomial{Coeff: 1, Alpha: 2.5}, SMax: 1}
	in := diffInstance(t, 9100, 12, 1.2, frac, false)
	fast := in
	fast.FastPow = true
	want, wantErr := DP{}.Solve(in)
	got, gotErr := DP{}.Solve(fast)
	sameSolution(t, "alpha2.5-inert", got, want, gotErr, wantErr)
	if gotErr == nil && math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
		t.Errorf("alpha2.5-inert: cost bits changed: %x vs %x", math.Float64bits(got.Cost), math.Float64bits(want.Cost))
	}
}
