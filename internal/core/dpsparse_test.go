package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify/oracle"
)

// sparseInstance draws one sparse-regime instance (large pairwise-coprime
// cycles, modest n) on the given processor.
func sparseInstance(t *testing.T, seed int64, n int, deadline float64, proc speed.Proc) Instance {
	t.Helper()
	set, err := gen.Sparse(rand.New(rand.NewSource(seed)), gen.SparseConfig{
		N: n, Deadline: deadline, SMax: proc.MaxSpeed(),
		Penalty: gen.PenaltyModel(seed % 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return Instance{Tasks: set, Proc: proc}
}

// bitIdentical fails the test unless the two solutions match bit for bit —
// accepted sets, assignments, and every float of the cost breakdown.
func bitIdentical(t *testing.T, name string, got, want Solution) {
	t.Helper()
	if err := oracle.BitIdenticalFrame(frameOf(got), frameOf(want)); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// TestSparseDenseDifferentialCorpus pins the sparse kernel to the dense
// one over the full differential corpus — every processor flavour,
// monotone and not — on values, accepted sets and DPStats counts, serial
// and row-parallel.
func TestSparseDenseDifferentialCorpus(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, tc := range diffCorpus(t) {
			name := tc.name
			dense, dst, derr := (DP{Sparse: SparseOff, Workers: workers}).SolveStats(tc.in)
			sparse, sst, serr := (DP{Sparse: SparseOn, Workers: workers}).SolveStats(tc.in)
			if (derr != nil) != (serr != nil) {
				t.Errorf("%s (workers=%d): dense err = %v, sparse err = %v", name, workers, derr, serr)
				continue
			}
			if derr != nil {
				continue // e.g. heterogeneous flavours reject identically
			}
			bitIdentical(t, name, sparse, dense)
			if sst.Rows != dst.Rows {
				t.Errorf("%s: sparse rows = %d, dense rows = %d", name, sst.Rows, dst.Rows)
			}
			if dst.SparseCells != 0 || dst.DenseRows != dst.Rows {
				t.Errorf("%s: dense stats report sparse work: %+v", name, dst)
			}
			if sst.SparseCells == 0 {
				t.Errorf("%s: sparse solve reported no sparse cells: %+v", name, sst)
			}
			if sst.SparseCells+sst.Cells > dst.Cells {
				t.Errorf("%s: sparse work %d+%d exceeds dense %d", name, sst.SparseCells, sst.Cells, dst.Cells)
			}
		}
	}
}

// TestSparseDenseCoprimeFamily compares the kernels on the sparse-regime
// family itself, at a grid width the dense kernel still admits.
func TestSparseDenseCoprimeFamily(t *testing.T) {
	procs := map[string]speed.Proc{
		"ideal-cubic":   {Model: power.Cubic(), SMax: 1},
		"leaky-dormant": {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2},
		"discrete":      {Model: power.XScale(), Levels: power.XScaleLevels()},
	}
	for pname, proc := range procs {
		for seed := int64(0); seed < 6; seed++ {
			in := sparseInstance(t, 100+seed, 10+int(seed), 20000, proc)
			name := fmt.Sprintf("%s/seed=%d", pname, seed)
			dense, _, derr := (DP{Sparse: SparseOff}).SolveStats(in)
			sparse, sst, serr := (DP{Sparse: SparseOn}).SolveStats(in)
			if derr != nil || serr != nil {
				t.Fatalf("%s: dense err = %v, sparse err = %v", name, derr, serr)
			}
			bitIdentical(t, name, sparse, dense)
			if sst.SparseCells == 0 {
				t.Errorf("%s: no sparse cells recorded", name)
			}
		}
	}
}

// TestSparseSwitchoverDense drives the adaptive switchover: a narrow grid
// with many small tasks densifies the rows (no dominance pruning on the
// non-monotone dormant curve), so the solve must hand off to the dense
// kernel mid-run and still match it bit for bit.
func TestSparseSwitchoverDense(t *testing.T) {
	proc := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2}
	set, err := gen.Frame(rand.New(rand.NewSource(7)), gen.Config{
		N: 60, Deadline: 3000, Load: 1.2, SMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{Tasks: set, Proc: proc}
	for _, workers := range []int{1, 4} {
		dense, _, derr := (DP{Sparse: SparseOff, Workers: workers}).SolveStats(in)
		sparse, sst, serr := (DP{Sparse: SparseOn, Workers: workers}).SolveStats(in)
		if derr != nil || serr != nil {
			t.Fatalf("workers=%d: dense err = %v, sparse err = %v", workers, derr, serr)
		}
		bitIdentical(t, "switchover", sparse, dense)
		if sst.DenseRows == 0 {
			t.Errorf("workers=%d: switchover never fired: %+v", workers, sst)
		}
		if sst.SparseCells == 0 || sst.DenseRows >= sst.Rows {
			t.Errorf("workers=%d: expected a sparse prefix before the dense tail: %+v", workers, sst)
		}
	}
}

// TestSparseBeyondDenseWall is the headline capability: an instance whose
// dense grid exceeds DefaultMaxDPStates solves exactly in auto mode, and
// the optimum matches the exhaustive search.
func TestSparseBeyondDenseWall(t *testing.T) {
	in := sparseInstance(t, 42, 18, 1<<24, speed.Proc{Model: power.Cubic(), SMax: 1})
	if work := int64(18) * (DPGridCapacity(in) + 1); work <= DefaultMaxDPStates {
		t.Fatalf("instance unexpectedly inside the dense wall: %d states", work)
	}
	_, derr := (DP{Sparse: SparseOff}).Solve(in)
	if derr == nil {
		t.Fatal("dense kernel admitted a beyond-wall grid")
	}
	for _, want := range []string{"states", "ApproxDP", "DP-SPARSE"} {
		if !strings.Contains(derr.Error(), want) {
			t.Errorf("dense error %q does not mention %q", derr, want)
		}
	}

	sol, st, err := (DP{}).SolveStats(in) // auto mode routes to sparse rows
	if err != nil {
		t.Fatalf("auto mode failed beyond the wall: %v", err)
	}
	if st.SparseCells == 0 {
		t.Errorf("auto mode did not run sparse: %+v", st)
	}
	esol, eerr := (Exhaustive{}).Solve(in)
	if eerr != nil {
		t.Fatalf("exhaustive reference failed: %v", eerr)
	}
	if diff := math.Abs(sol.Cost - esol.Cost); diff > 1e-9*math.Max(1, math.Abs(esol.Cost)) {
		t.Errorf("sparse cost %v != exhaustive cost %v", sol.Cost, esol.Cost)
	}
}

// TestSparseBudgetEnforced pins the sparse admission semantics: MaxStates
// budgets actual breakpoints, and exceeding it reports a targeted error.
func TestSparseBudgetEnforced(t *testing.T) {
	in := sparseInstance(t, 3, 12, 1e6, speed.Proc{Model: power.Cubic(), SMax: 1})
	_, err := (DP{Sparse: SparseOn, MaxStates: 8}).Solve(in)
	if err == nil {
		t.Fatal("breakpoint budget not enforced")
	}
	if !strings.Contains(err.Error(), "breakpoints") {
		t.Errorf("budget error %q does not mention breakpoints", err)
	}
	// Auto mode under the same tiny budget: the dense grid is over it, the
	// sparse fallback is over it too, so the solve must still error.
	if _, err := (DP{MaxStates: 8}).Solve(in); err == nil {
		t.Error("auto mode ignored the budget")
	}
	// The same instance solves with the default budgets.
	if _, err := (DP{Sparse: SparseOn}).Solve(in); err != nil {
		t.Errorf("default sparse budget rejected a small instance: %v", err)
	}
}

// sparseMutants is the warm-start battery over one instance: the shapes
// the serve delta index and the replanner produce.
func sparseMutants(in Instance) map[string]Instance {
	ts := in.Tasks.Tasks
	n := len(ts)
	clone := func() []task.Task { return append([]task.Task(nil), ts...) }
	with := func(mut []task.Task) Instance {
		c := in
		c.Tasks.Tasks = mut
		return c
	}
	out := map[string]Instance{
		"append": with(append(clone(), task.Task{ID: 1000, Cycles: ts[0].Cycles + 1, Penalty: ts[0].Penalty})),
	}
	m := clone()
	m[n-1].Penalty *= 0.5
	out["tail-penalty"] = with(m)
	m = clone()
	m[n-1].Cycles += 3
	out["tail-cycles"] = with(m)
	out["remove-tail"] = with(clone()[:n-1])
	m = clone()
	m[0].Penalty *= 2
	out["front-penalty"] = with(m)
	return out
}

// TestSparseWarmStart pins sparse checkpoints: SolveCheckpoint matches the
// plain solve, read-only SolveFrom matches cold solves of every mutant,
// and an evolving chain stays bit-identical step by step.
func TestSparseWarmStart(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	for seed := int64(0); seed < 4; seed++ {
		in := sparseInstance(t, 200+seed, 16, 1<<22, proc)
		d := DP{Sparse: SparseOn, CheckpointStride: 4}
		var st DPState
		base, _, err := d.SolveCheckpoint(in, &st)
		if err != nil {
			t.Fatalf("seed %d: checkpoint solve: %v", seed, err)
		}
		plain, perr := d.Solve(in)
		if perr != nil {
			t.Fatalf("seed %d: plain solve: %v", seed, perr)
		}
		bitIdentical(t, "checkpoint==plain", base, plain)
		if !st.Valid() {
			t.Fatalf("seed %d: state not valid after checkpoint solve", seed)
		}

		for name, m := range sparseMutants(in) {
			want, errC := d.Solve(m)
			sol, stats, ok, errW := d.SolveFrom(&st, m, false)
			if (errC == nil) != (errW == nil) {
				t.Fatalf("seed %d %s: cold err = %v, warm err = %v", seed, name, errC, errW)
			}
			if errC != nil || !ok {
				continue
			}
			bitIdentical(t, name, sol, want)
			if name == "append" && stats.Rows != 1 {
				t.Errorf("seed %d append: re-ran %d rows, want 1", seed, stats.Rows)
			}
		}

		// Evolving chain: each mutant becomes the next base.
		var est DPState
		if _, _, err := d.SolveCheckpoint(in, &est); err != nil {
			t.Fatal(err)
		}
		cur := in
		for step, name := range []string{"append", "tail-penalty", "remove-tail"} {
			m := sparseMutants(cur)[name]
			want, errC := d.Solve(m)
			sol, _, ok, errW := d.SolveFrom(&est, m, true)
			if (errC == nil) != (errW == nil) {
				t.Fatalf("seed %d evolve step %d: cold err = %v, warm err = %v", seed, step, errC, errW)
			}
			if errC != nil {
				break
			}
			if !ok {
				if _, _, err := d.SolveCheckpoint(m, &est); err != nil {
					t.Fatal(err)
				}
			} else {
				bitIdentical(t, name, sol, want)
			}
			cur = m
		}
	}
}

// TestSparseWarmStartPrunedDecline pins the sparse-specific validity rule:
// a state recorded under a monotone curve holds only the dominance
// frontier and must decline to warm-start a non-monotone instance, while
// an unpruned state may warm a monotone one.
func TestSparseWarmStartPrunedDecline(t *testing.T) {
	cubic := speed.Proc{Model: power.Cubic(), SMax: 1}
	dormant := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2}
	in := sparseInstance(t, 9, 16, 1<<22, cubic)
	d := DP{Sparse: SparseOn, CheckpointStride: 4}

	var pruned DPState
	if _, _, err := d.SolveCheckpoint(in, &pruned); err != nil {
		t.Fatal(err)
	}
	swap := in
	swap.Proc = dormant
	if _, _, ok, err := d.SolveFrom(&pruned, swap, false); ok || err != nil {
		t.Errorf("pruned state warm-started a non-monotone instance: ok=%v err=%v", ok, err)
	}

	var unpruned DPState
	if _, _, err := d.SolveCheckpoint(swap, &unpruned); err != nil {
		t.Fatal(err)
	}
	want, errC := d.Solve(in)
	sol, _, ok, errW := d.SolveFrom(&unpruned, in, false)
	if errC != nil || errW != nil || !ok {
		t.Fatalf("unpruned warm across curves: ok=%v coldErr=%v warmErr=%v", ok, errC, errW)
	}
	bitIdentical(t, "unpruned-to-monotone", sol, want)
}
