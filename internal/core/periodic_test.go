package core

import (
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

func idealProc() speed.Proc {
	return speed.Proc{Model: power.Cubic(), SMax: 1}
}

func TestPeriodicReduce(t *testing.T) {
	// p1 = 2 (5 jobs in L = 10), p2 = 5 (2 jobs).
	pi := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{
			{ID: 1, Cycles: 1, Period: 2, Penalty: 0.3},
			{ID: 2, Cycles: 2, Period: 5, Penalty: 0.7},
		}},
		Proc: idealProc(),
	}
	in, err := pi.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	if in.Tasks.Deadline != 10 {
		t.Errorf("frame deadline = %v, want hyper-period 10", in.Tasks.Deadline)
	}
	t1, _ := in.Tasks.ByID(1)
	t2, _ := in.Tasks.ByID(2)
	if t1.Cycles != 5 || math.Abs(t1.Penalty-1.5) > 1e-12 {
		t.Errorf("task 1 reduced to (%d cycles, %v penalty), want (5, 1.5)", t1.Cycles, t1.Penalty)
	}
	if t2.Cycles != 4 || math.Abs(t2.Penalty-1.4) > 1e-12 {
		t.Errorf("task 2 reduced to (%d cycles, %v penalty), want (4, 1.4)", t2.Cycles, t2.Penalty)
	}
}

func TestPeriodicReduceErrors(t *testing.T) {
	bad := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{{ID: 1, Cycles: 0, Period: 2}}},
		Proc:  idealProc(),
	}
	if _, err := bad.Reduce(); err == nil {
		t.Error("invalid periodic set accepted")
	}
	badProc := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{{ID: 1, Cycles: 1, Period: 2}}},
		Proc:  speed.Proc{Model: power.Cubic(), SMax: -1},
	}
	if _, err := badProc.Reduce(); err == nil {
		t.Error("invalid processor accepted")
	}
}

func TestSolvePeriodicHighPenalty(t *testing.T) {
	// Penalties so high everything feasible is kept: utilization 0.9 fits,
	// so nothing is rejected and the speed is the utilization.
	pi := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{
			{ID: 1, Cycles: 1, Period: 2, Penalty: 100},
			{ID: 2, Cycles: 2, Period: 5, Penalty: 100},
		}},
		Proc: idealProc(),
	}
	sol, err := SolvePeriodic(DP{}, pi)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rejected) != 0 {
		t.Errorf("rejected = %v, want none", sol.Rejected)
	}
	if math.Abs(sol.Speed-0.9) > 1e-9 {
		t.Errorf("speed = %v, want utilization 0.9", sol.Speed)
	}
	// Energy per hyper-period: run at 0.9 for W/s = 9/0.9 = 10 time units:
	// E = 0.9³·10 = 7.29 = W³/L² = 9³/100.
	if math.Abs(sol.Energy-7.29) > 1e-9 {
		t.Errorf("energy = %v, want 7.29", sol.Energy)
	}
}

func TestSolvePeriodicOverloadMustReject(t *testing.T) {
	// Total utilization 1.3 > 1: some task must go even at top speed.
	pi := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{
			{ID: 1, Cycles: 3, Period: 4, Penalty: 10},  // u = 0.75
			{ID: 2, Cycles: 11, Period: 20, Penalty: 5}, // u = 0.55
		}},
		Proc: idealProc(),
	}
	sol, err := SolvePeriodic(DP{}, pi)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rejected) != 1 {
		t.Fatalf("rejected = %v, want exactly one", sol.Rejected)
	}
	if sol.Speed > 1+1e-9 {
		t.Errorf("speed = %v exceeds smax", sol.Speed)
	}
}

func TestSolvePeriodicEDFValidation(t *testing.T) {
	// End-to-end: random periodic instances, solve, replay through EDF at
	// the solution speed over the hyper-period.
	for seed := int64(0); seed < 8; seed++ {
		ps, err := gen.Periodic(rand.New(rand.NewSource(seed)), gen.PeriodicConfig{
			N: 10, Utilization: 1.3, Penalty: gen.PenaltyModel(seed % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		pi := PeriodicInstance{Tasks: ps, Proc: idealProc()}
		sol, err := SolvePeriodic(GreedyMarginal{}, pi)
		if err != nil {
			t.Fatal(err)
		}
		accepted := task.PeriodicSet{}
		accSet := map[int]bool{}
		for _, id := range sol.Accepted {
			accSet[id] = true
		}
		for _, tk := range ps.Tasks {
			if accSet[tk.ID] {
				accepted.Tasks = append(accepted.Tasks, tk)
			}
		}
		if len(accepted.Tasks) == 0 {
			continue
		}
		jobs := edf.PeriodicJobs(accepted, sol.Hyper)
		r, err := edf.Simulate(jobs, speed.Constant(sol.Speed+1e-9, 0, float64(sol.Hyper)))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible() {
			t.Errorf("seed %d: periodic solution missed %d deadlines at speed %v", seed, r.Misses, sol.Speed)
		}
	}
}

func TestSolvePeriodicCostConsistency(t *testing.T) {
	// The periodic cost must equal the reduced frame cost.
	pi := PeriodicInstance{
		Tasks: task.PeriodicSet{Tasks: []task.Periodic{
			{ID: 1, Cycles: 1, Period: 2, Penalty: 0.1},
			{ID: 2, Cycles: 2, Period: 5, Penalty: 0.9},
			{ID: 3, Cycles: 3, Period: 10, Penalty: 0.4},
		}},
		Proc: idealProc(),
	}
	psol, err := SolvePeriodic(DP{}, pi)
	if err != nil {
		t.Fatal(err)
	}
	in, err := pi.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	fsol, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(psol.Cost-fsol.Cost) > 1e-9 {
		t.Errorf("periodic cost %v != frame cost %v", psol.Cost, fsol.Cost)
	}
}
