package core_test

// The soak lives in the external test package so it can drive the shared
// verification library (internal/verify imports core, so an in-package
// test would be an import cycle). The proc table and generator mirror the
// in-package ones in solvers_test.go, which core_test cannot see.

import (
	"math/rand"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify"
)

var soakProcs = map[string]speed.Proc{
	"ideal-cubic":      {Model: power.Cubic(), SMax: 1},
	"leaky-disable":    {Model: power.XScale(), SMax: 1},
	"leaky-dormant":    {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2},
	"discrete-xscale":  {Model: power.XScale(), Levels: power.XScaleLevels()},
	"discrete-dormant": {Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2},
}

// TestSoakExactAgreementAndFeasibility is the heavy randomized
// cross-validation pass: hundreds of instances across every processor
// flavour, penalty structure and load regime, each run through the full
// verify.CheckInstance battery — per-solver frame invariants with EDF
// replay, DP/OPT exact agreement, heuristic-not-below, the APPROX quality
// envelope, Workers bit-identity, and the FastPow drift bound. Skipped
// under -short.
func TestSoakExactAgreementAndFeasibility(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	opt := verify.Options{
		Seed:           3,  // the seed soak's RandomAdmission seed
		MaxExhaustiveN: 13, // keep OPT in the sweep at the soak's n
	}
	count := 0
	for name, proc := range soakProcs {
		for seed := int64(0); seed < 20; seed++ {
			for _, load := range []float64{0.5, 1.0, 1.5, 2.2, 3.0} {
				set, err := gen.Frame(rand.New(rand.NewSource(seed*31+int64(len(name)))), gen.Config{
					N: 13, Load: load, Deadline: 200, SMax: proc.MaxSpeed(),
					Penalty: gen.PenaltyModel(seed % 3),
				})
				if err != nil {
					t.Fatal(err)
				}
				in := core.Instance{Tasks: set, Proc: proc}
				count++
				if err := verify.CheckInstance(in, opt); err != nil {
					t.Errorf("%s seed %d load %v: %v", name, seed, load, err)
				}
			}
		}
	}
	t.Logf("soak: %d instances cross-validated", count)
}
