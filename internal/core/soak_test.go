package core

import (
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/sched/edf"
)

// TestSoakExactAgreementAndFeasibility is the heavy randomized
// cross-validation pass: hundreds of instances across every processor
// flavour, penalty structure and load regime, checking (1) the two exact
// solvers agree, (2) no heuristic beats them, and (3) every solution
// replays cleanly through EDF. Skipped under -short.
func TestSoakExactAgreementAndFeasibility(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	heuristics := []Solver{
		GreedyDensity{}, GreedyMarginal{}, Rounding{},
		ApproxDP{Eps: 0.15}, ApproxDPPenalty{Eps: 0.15},
		AcceptAll{}, RandomAdmission{Seed: 3},
	}
	count := 0
	for name, proc := range testProcs {
		for seed := int64(0); seed < 20; seed++ {
			for _, load := range []float64{0.5, 1.0, 1.5, 2.2, 3.0} {
				in := randomInstance(t, seed*31+int64(len(name)), 13, load, proc, gen.PenaltyModel(seed%3))
				count++
				dp, err := (DP{}).Solve(in)
				if err != nil {
					t.Fatalf("%s seed %d load %v: DP: %v", name, seed, load, err)
				}
				opt, err := (Exhaustive{}).Solve(in)
				if err != nil {
					t.Fatalf("%s seed %d load %v: OPT: %v", name, seed, load, err)
				}
				if math.Abs(dp.Cost-opt.Cost) > 1e-6*(1+opt.Cost) {
					t.Errorf("%s seed %d load %v: DP %v != OPT %v", name, seed, load, dp.Cost, opt.Cost)
				}
				for _, h := range heuristics {
					sol, err := h.Solve(in)
					if err != nil {
						t.Fatalf("%s seed %d: %s: %v", name, seed, h.Name(), err)
					}
					if sol.Cost < opt.Cost-1e-6*(1+opt.Cost) {
						t.Errorf("%s seed %d: %s %v beats OPT %v", name, seed, h.Name(), sol.Cost, opt.Cost)
					}
				}
				// EDF replay of the optimum.
				if len(dp.Accepted) > 0 {
					jobs := edf.FrameJobs(in.Tasks, dp.Accepted)
					r, err := edf.Simulate(jobs, dp.Assignment.Profile(0))
					if err != nil {
						t.Fatalf("%s seed %d: simulate: %v", name, seed, err)
					}
					if !r.Feasible() {
						t.Errorf("%s seed %d: optimum missed %d deadlines", name, seed, r.Misses)
					}
				}
			}
		}
	}
	t.Logf("soak: %d instances cross-validated", count)
}
