package core

import (
	"fmt"
	"math"
)

// FrontierPoint is one Pareto-optimal energy/penalty trade: no admission
// decision achieves both lower energy and lower penalty.
type FrontierPoint struct {
	Workload int64   // accepted cycles
	Energy   float64 // E(Workload)
	Penalty  float64 // minimum rejected penalty at that workload
	Cost     float64 // Energy + Penalty
}

// ParetoFrontier computes the exact energy-versus-penalty Pareto frontier
// of the instance from one DP pass: for every achievable accepted workload
// w the minimum rejected penalty f(w), reduced to the non-dominated points
// (energy strictly increasing, penalty strictly decreasing along the
// curve). The overall optimum is the frontier point with minimum Cost.
//
// This is the curve a deployer inspects to price SLAs: it answers "how
// much energy does the next unit of admitted work cost, and what penalty
// does it save" without committing to a single trade-off. Homogeneous
// instances only (as with DP).
func ParetoFrontier(in Instance) ([]FrontierPoint, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return nil, err
	}
	if ctx.hetero {
		return nil, ErrHeterogeneous
	}
	its := ctx.items
	cap64 := int64(math.Floor(ctx.capacity * (1 + 1e-12)))
	if work := int64(len(its)) * (cap64 + 1); work > DefaultMaxDPStates {
		return nil, fmt.Errorf("core: frontier needs %d states, over the limit %d", work, DefaultMaxDPStates)
	}
	width := cap64 + 1

	// The rows run through the shared double-buffered kernel (dpkernel.go);
	// its per-cell select equals the seed's math.Min(reject, accept) bit
	// for bit (no NaNs enter the table and tied values share their bits).
	// The take bits it records go to a single reused row, ignored here.
	prev := make([]float64, width)
	cur := make([]float64, width)
	for w := range prev {
		prev[w] = math.Inf(1)
		cur[w] = math.Inf(1)
	}
	prev[0] = 0
	bits := make([]uint64, (width+63)/64)
	var reach int64
	for _, it := range its {
		if it.c > cap64 {
			dpRejectRange(prev, cur, it.v, 0, reach+1)
			prev, cur = cur, prev
			continue
		}
		reach = min(reach+it.c, cap64)
		dpRowRange(prev, cur, bits, it.c, it.v, 0, reach+1)
		prev, cur = cur, prev
	}
	f := prev

	// Non-dominated sweep: walk w upward (energy non-decreasing) and keep
	// points that strictly lower the penalty.
	var frontier []FrontierPoint
	bestPenalty := math.Inf(1)
	for w := int64(0); w < width; w++ {
		if math.IsInf(f[w], 1) || f[w] >= bestPenalty-costEps {
			continue
		}
		e := ctx.energy(float64(w))
		if math.IsInf(e, 1) {
			continue
		}
		bestPenalty = f[w]
		frontier = append(frontier, FrontierPoint{
			Workload: w,
			Energy:   e,
			Penalty:  f[w],
			Cost:     e + f[w],
		})
	}

	// E(w) can plateau (e.g. dormant-mode break-even regions): collapse
	// runs of equal energy to their lowest-penalty point, so every kept
	// point is strictly non-dominated.
	out := frontier[:0]
	for _, p := range frontier {
		if n := len(out); n > 0 && p.Energy <= out[n-1].Energy+costEps {
			out[n-1] = p // same energy, strictly lower penalty: replace
			continue
		}
		out = append(out, p)
	}
	return out, nil
}
