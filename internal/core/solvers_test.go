package core

import (
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// randomInstance draws a contested random instance on the given processor.
func randomInstance(t *testing.T, seed int64, n int, load float64, proc speed.Proc, pm gen.PenaltyModel) Instance {
	t.Helper()
	set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
		N: n, Load: load, Deadline: 200, SMax: proc.MaxSpeed(), Penalty: pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Instance{Tasks: set, Proc: proc}
}

var testProcs = map[string]speed.Proc{
	"ideal-cubic":      {Model: power.Cubic(), SMax: 1},
	"leaky-disable":    {Model: power.XScale(), SMax: 1},
	"leaky-dormant":    {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2},
	"discrete-xscale":  {Model: power.XScale(), Levels: power.XScaleLevels()},
	"discrete-dormant": {Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2},
}

// TestDPMatchesExhaustive is the central cross-validation: two independent
// exact algorithms must agree on every instance flavour.
func TestDPMatchesExhaustive(t *testing.T) {
	for name, proc := range testProcs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				for _, load := range []float64{0.6, 1.2, 2.0} {
					in := randomInstance(t, seed, 10, load, proc, gen.PenaltyModel(seed%3))
					dp, err := DP{}.Solve(in)
					if err != nil {
						t.Fatalf("seed %d load %v: DP: %v", seed, load, err)
					}
					opt, err := Exhaustive{}.Solve(in)
					if err != nil {
						t.Fatalf("seed %d load %v: OPT: %v", seed, load, err)
					}
					if math.Abs(dp.Cost-opt.Cost) > 1e-6*(1+opt.Cost) {
						t.Errorf("seed %d load %v: DP cost %v != OPT cost %v", seed, load, dp.Cost, opt.Cost)
					}
				}
			}
		})
	}
}

// TestHeuristicsNeverBeatDP: no heuristic may report a cost below the
// exact optimum, and all must stay feasible.
func TestHeuristicsNeverBeatDP(t *testing.T) {
	solvers := []Solver{
		GreedyDensity{},
		GreedyMarginal{},
		AcceptAll{},
		RejectAll{},
		RandomAdmission{Seed: 1},
		ApproxDP{Eps: 0.2},
	}
	for name, proc := range testProcs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				in := randomInstance(t, seed, 14, 1.0+float64(seed)*0.2, proc, gen.PenaltyUniform)
				opt, err := DP{}.Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range solvers {
					sol, err := s.Solve(in)
					if err != nil {
						t.Fatalf("seed %d: %s: %v", seed, s.Name(), err)
					}
					if sol.Cost < opt.Cost-1e-6*(1+opt.Cost) {
						t.Errorf("seed %d: %s cost %v beats OPT %v", seed, s.Name(), sol.Cost, opt.Cost)
					}
				}
			}
		})
	}
}

// TestSolutionsAreEDFFeasible replays every solver's accepted set through
// the EDF oracle at the solution's speed assignment.
func TestSolutionsAreEDFFeasible(t *testing.T) {
	solvers := []Solver{
		DP{}, GreedyDensity{}, GreedyMarginal{}, AcceptAll{},
		RandomAdmission{Seed: 7}, ApproxDP{Eps: 0.3}, Exhaustive{},
	}
	for _, seed := range []int64{3, 17, 99} {
		in := randomInstance(t, seed, 12, 1.6, testProcs["ideal-cubic"], gen.PenaltyProportional)
		for _, s := range solvers {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if len(sol.Accepted) == 0 {
				continue
			}
			jobs := edf.FrameJobs(in.Tasks, sol.Accepted)
			profile := sol.Assignment.Profile(0)
			r, err := edf.Simulate(jobs, profile)
			if err != nil {
				t.Fatalf("%s: simulate: %v", s.Name(), err)
			}
			if !r.Feasible() {
				t.Errorf("%s: solution missed %d deadlines (accepted %v)", s.Name(), r.Misses, sol.Accepted)
			}
		}
	}
}

// TestSolverNames pins the table labels the experiment harness prints.
func TestSolverNames(t *testing.T) {
	want := map[string]Solver{
		"OPT":             Exhaustive{},
		"DP":              DP{},
		"GREEDY":          GreedyDensity{},
		"S-GREEDY":        GreedyMarginal{},
		"ACCEPT-ALL":      AcceptAll{},
		"REJECT-ALL":      RejectAll{},
		"RAND":            RandomAdmission{},
		"ApproxDP(ε=0.5)": ApproxDP{Eps: 0.5},
	}
	for name, s := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

// TestExhaustiveHeterogeneousExact: on small heterogeneous instances the
// branch-and-bound must match plain enumeration via Evaluate.
func TestExhaustiveHeterogeneousExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := cubicInstance()
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{
				ID:      i,
				Cycles:  1 + int64(rng.Intn(4)),
				Penalty: rng.Float64() * 2,
				Rho:     0.5 + rng.Float64()*2,
			})
		}
		opt, err := Exhaustive{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var ids []int
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					ids = append(ids, b)
				}
			}
			if s, err := Evaluate(in, ids); err == nil && s.Cost < best {
				best = s.Cost
			}
		}
		if math.Abs(opt.Cost-best) > 1e-6*(1+best) {
			t.Errorf("trial %d: OPT %v != enumeration %v", trial, opt.Cost, best)
		}
	}
}
