package core

import (
	"fmt"
	"math"

	"dvsreject/internal/conc"
)

// DefaultCheckpointStride is the row-snapshot interval of SolveCheckpoint
// when DP.CheckpointStride is 0.
const DefaultCheckpointStride = 64

// DPState is the checkpointed row state of one rejection-DP solve: the
// packed take-bit table of every row (the dpkernel layout, shared with the
// cold solver) plus f-row snapshots every CheckpointStride rows and at the
// final row. SolveFrom warm-starts a later solve from it, re-running only
// the rows at or after the first task where the two instances diverge.
//
// The key validity fact: a DP row depends only on the (cycles, penalty)
// bit patterns of the item prefix and on the integer grid capacity — not
// on the energy curve, the processor's power model, task IDs or FastPow,
// all of which enter only the final workload scan and the solution
// evaluation, which SolveFrom performs fresh against its own instance.
// Two instances sharing the grid capacity and an item prefix therefore
// share those rows bit-for-bit.
//
// A state records either dense or sparse rows, matching the kernel that
// produced it (DP.Sparse), never a mix: dense states hold the packed take
// table plus f-row snapshots, sparse states hold the breakpoint arenas of
// dpsparse.go plus (workload, value) breakpoint snapshots. One extra
// validity caveat applies to sparse states whose rows were dominance-
// pruned (recorded under a monotone energy curve): such rows carry only
// the penalty frontier, which is exact only for monotone final scans, so
// SolveFrom declines non-monotone instances instead of warm-starting them.
//
// The zero value is ready for SolveCheckpoint. A state being read by
// SolveFrom(..., evolve=false) is never written and may serve any number
// of concurrent readers; evolve=true mutates the state in place and
// requires exclusive ownership.
type DPState struct {
	valid  bool
	n      int   // item rows recorded
	cap64  int64 // integer grid capacity the table was built on
	stride int
	perRow int64 // take-table words per row, (cap64+1+63)/64
	items  []item
	words  []uint64 // packed take bits, rows 0..n-1
	snaps  []dpSnap // ascending by row; last row always snapshotted

	sparse  bool // rows recorded by the sparse kernel
	pruned  bool // sparse rows carry only the dominance frontier
	sp      sparseRows
	spSnaps []sparseSnap // ascending by row; last row always snapshotted
}

// sparseSnap is one sparse row snapshot: the kept (workload, value)
// breakpoints after `row` items have been folded in.
type sparseSnap struct {
	row int
	ws  []int64
	fs  []float64
}

// dpSnap is one f-row snapshot: the finite prefix after `row` items have
// been folded in. Cells above reach were never written and are +Inf.
type dpSnap struct {
	row   int
	reach int64
	f     []float64 // length reach+1
}

// Valid reports whether the state holds a completed recorded solve.
func (st *DPState) Valid() bool { return st != nil && st.valid }

// Rows returns the number of item rows recorded.
func (st *DPState) Rows() int { return st.n }

// GridCapacity returns the integer workload capacity the table was built
// on — the warm-start compatibility key (see DPGridCapacity).
func (st *DPState) GridCapacity() int64 { return st.cap64 }

// Reset invalidates the state, keeping its buffers for reuse.
func (st *DPState) Reset() { st.valid = false }

// AppendSnapshotRows appends the checkpointed row numbers in ascending
// order — the prefix lengths a warm solve can restart from with zero
// replay. The serve-layer similarity index registers its hash-chain keys
// at exactly these rows.
func (st *DPState) AppendSnapshotRows(buf []int) []int {
	if st.sparse {
		for _, s := range st.spSnaps {
			buf = append(buf, s.row)
		}
		return buf
	}
	for _, s := range st.snaps {
		buf = append(buf, s.row)
	}
	return buf
}

// MemoryBytes estimates the state's retained heap: the take table, the
// snapshots and the item copy. Cache budgets evict on it.
func (st *DPState) MemoryBytes() int64 {
	if st.sparse {
		b := st.sp.memoryBytes()
		for _, s := range st.spSnaps {
			b += int64(len(s.ws))*8 + int64(len(s.fs))*8
		}
		return b + int64(len(st.items))*32
	}
	b := int64(len(st.words)) * 8
	for _, s := range st.snaps {
		b += int64(len(s.f)) * 8
	}
	b += int64(len(st.items)) * 32
	return b
}

// begin resets the state for a fresh dense recording, keeping backing
// arrays.
func (st *DPState) begin(cap64 int64, stride, n int) {
	st.valid = false
	st.sparse = false
	st.cap64 = cap64
	st.stride = stride
	st.n = n
	st.perRow = (cap64 + 1 + 63) / 64
	st.snaps = st.snaps[:0]
	st.spSnaps = st.spSnaps[:0]
}

// beginSparse resets the state for a fresh sparse recording; the solver
// writes the row arenas (st.sp) in place as it runs.
func (st *DPState) beginSparse(cap64 int64, stride, n int, pruned bool) {
	st.valid = false
	st.sparse = true
	st.pruned = pruned
	st.cap64 = cap64
	st.stride = stride
	st.n = n
	st.perRow = 0
	st.snaps = st.snaps[:0]
	st.spSnaps = st.spSnaps[:0]
}

// noteSparseRow is the sparse recording hook: snapshot breakpoints on the
// stride grid and at the final row.
func (st *DPState) noteSparseRow(rows int, ws []int64, fs []float64) {
	if rows%st.stride != 0 && rows != st.n {
		return
	}
	st.addSparseSnap(rows, ws, fs)
}

// noteEvolvedSparseRow is noteSparseRow against the evolving target row
// count, matching what a cold sparse recording of the evolved instance
// would have snapshotted from this row on.
func (st *DPState) noteEvolvedSparseRow(rows, n int, ws []int64, fs []float64) {
	if rows%st.stride != 0 && rows != n {
		return
	}
	st.addSparseSnap(rows, ws, fs)
}

// addSparseSnap appends a breakpoint snapshot, reusing the buffers of a
// previously truncated snapshot slot when one is available.
func (st *DPState) addSparseSnap(row int, ws []int64, fs []float64) {
	if k := len(st.spSnaps); k > 0 && st.spSnaps[k-1].row == row {
		return
	}
	var s sparseSnap
	if len(st.spSnaps) < cap(st.spSnaps) {
		s = st.spSnaps[:len(st.spSnaps)+1][len(st.spSnaps)]
	}
	s.row = row
	s.ws = append(s.ws[:0], ws...)
	s.fs = append(s.fs[:0], fs...)
	st.spSnaps = append(st.spSnaps, s)
}

// finishSparse copies the item prefix and marks the state valid; the row
// arenas were written in place by the solver.
func (st *DPState) finishSparse(items []item) {
	st.items = append(st.items[:0], items...)
	st.valid = true
}

// noteRow is the rejectionDP onRow hook: snapshot on the stride grid and
// at the final row.
func (st *DPState) noteRow(rows int, f []float64, reach int64) {
	if rows%st.stride != 0 && rows != st.n {
		return
	}
	st.addSnap(rows, reach, f)
}

// addSnap appends a snapshot of f[0:reach+1], reusing the float buffer of
// a previously truncated snapshot slot when one is available.
func (st *DPState) addSnap(row int, reach int64, f []float64) {
	if k := len(st.snaps); k > 0 && st.snaps[k-1].row == row {
		return
	}
	var buf []float64
	if len(st.snaps) < cap(st.snaps) {
		buf = st.snaps[:len(st.snaps)+1][len(st.snaps)].f
	}
	buf = growF64(buf, int(reach+1))
	copy(buf, f[:reach+1])
	st.snaps = append(st.snaps, dpSnap{row: row, reach: reach, f: buf})
}

// finish copies the item prefix and the completed take table into the
// state and marks it valid.
func (st *DPState) finish(items []item, words []uint64) {
	st.items = append(st.items[:0], items...)
	need := int64(st.n) * st.perRow
	st.words = growU64(st.words, int(need))
	copy(st.words, words[:need])
	st.valid = true
}

// ensureRows grows the take table to hold n rows, preserving the first
// keep rows. Growth doubles so an append-per-event stream stays amortized
// O(1) words copied per row.
func (st *DPState) ensureRows(n, keep int) {
	need := int64(n) * st.perRow
	if int64(cap(st.words)) < need {
		newCap := need
		if c := 2 * int64(cap(st.words)); c > newCap {
			newCap = c
		}
		nw := make([]uint64, need, newCap)
		copy(nw, st.words[:int64(keep)*st.perRow])
		st.words = nw
		return
	}
	st.words = st.words[:need]
}

// take reports row i's take bit at workload w against the state's table.
func (st *DPState) take(i int, w int64) bool {
	return st.words[int64(i)*st.perRow+w/64]&(1<<uint(w%64)) != 0
}

// DPGridCapacity returns the integer workload capacity DP grids the
// instance on — two instances can share checkpointed row state only when
// this value (and the item prefix) matches. Returns -1 when the capacity
// is not a representable grid (such instances fail validation in any
// solve); -1 never equals a recorded state's capacity.
func DPGridCapacity(in Instance) int64 {
	c := math.Floor(in.Capacity() * (1 + 1e-12))
	if math.IsNaN(c) || c < 0 || c >= float64(math.MaxInt64) {
		return -1
	}
	return int64(c)
}

// SolveCheckpoint is SolveStats recording the run's checkpointed row state
// into st for later SolveFrom warm starts. The solution is bit-identical
// to Solve; on error st is left invalid.
func (d DP) SolveCheckpoint(in Instance, st *DPState) (Solution, DPStats, error) {
	return d.solve(in, st)
}

// SolveFrom solves in warm-started from the recorded state of a previous
// solve: it finds the first task where in diverges from the recorded item
// prefix (comparing cycles and penalty bit patterns; IDs and the
// processor's power model don't enter the table), restores the last
// checkpoint at or before it, and re-runs only the remaining rows. The
// final workload scan and the solution evaluation always use in's own
// energy curve, so the result is bit-identical to a cold d.Solve(in) —
// the differential corpus and FuzzDeltaSolve pin this.
//
// ok=false means the state cannot warm this instance (invalid state,
// different grid capacity, or divergence before the first checkpoint);
// the caller should cold-solve. A non-nil error is the same failure a
// cold solve would report. The returned DPStats counts only the re-run
// rows — the measure of work saved.
//
// evolve=false treats st as read-only (safe for concurrent SolveFrom
// calls sharing one parent); evolve=true requires exclusive ownership and
// advances st in place to describe in, appending fresh checkpoints, so an
// event stream pays only its divergence suffix per step.
func (d DP) SolveFrom(st *DPState, in Instance, evolve bool) (sol Solution, stats DPStats, ok bool, err error) {
	if !st.Valid() {
		return Solution{}, stats, false, nil
	}
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return Solution{}, stats, false, err
	}
	defer ctx.release()
	if ctx.hetero {
		return Solution{}, stats, false, ErrHeterogeneous
	}
	cap64 := int64(math.Floor(ctx.capacity * (1 + 1e-12)))
	if cap64 != st.cap64 {
		return Solution{}, stats, false, nil
	}
	if st.sparse {
		// Sparse states re-run on the sparse kernel under the breakpoint
		// budget; the dense grid-area admission below does not apply.
		return d.solveFromSparse(ctx, st, cap64, evolve)
	}
	limit := d.MaxStates
	if limit == 0 {
		limit = DefaultMaxDPStates
	}
	if work := int64(len(ctx.items)) * (cap64 + 1); work > limit {
		return Solution{}, stats, false, denseStatesErr(work, len(ctx.items), cap64, limit)
	}

	items := ctx.items
	n := len(items)
	// First divergent row. Only the (c, v) bit patterns participate: IDs
	// label the reconstruction but never steer the table.
	div := 0
	for lim := min(n, st.n); div < lim; div++ {
		a, b := items[div], st.items[div]
		if a.c != b.c || math.Float64bits(a.v) != math.Float64bits(b.v) {
			break
		}
	}
	// Latest checkpoint at or before the divergence.
	si := -1
	for i := len(st.snaps) - 1; i >= 0; i-- {
		if st.snaps[i].row <= div {
			si = i
			break
		}
	}
	if si < 0 {
		return Solution{}, stats, false, nil
	}
	snap := st.snaps[si]
	start := snap.row
	width := cap64 + 1
	perRow := st.perRow
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}

	// Restore the checkpoint into fresh Inf-filled buffers — cells beyond
	// the snapshot's reach must read +Inf exactly as they did mid-cold-run.
	sc := getDPScratch()
	defer putDPScratch(sc)
	prev := growF64(sc.f, int(width))
	sc.f = prev
	cur := growF64(sc.f2, int(width))
	sc.f2 = cur
	for w := range prev {
		prev[w] = math.Inf(1)
	}
	for w := range cur {
		cur[w] = math.Inf(1)
	}
	reach := snap.reach
	copy(prev[:reach+1], snap.f)

	// Take bits for the re-run rows. The kernels only guarantee full
	// rewrites of the words covering reachable cells, so stale rows are
	// cleared up front — exactly the state newTakeTable hands a cold run.
	var words []uint64
	if evolve {
		st.stride = d.checkpointStride()
		st.snaps = st.snaps[:si+1]
		st.ensureRows(n, start)
		words = st.words
		clear(words[int64(start)*perRow : int64(n)*perRow])
	} else {
		words = growU64(sc.words, int(int64(n-start)*perRow))
		sc.words = words
		clear(words)
	}
	// rowBase translates absolute row i into words: in-place rows on the
	// evolve path, a compact [start, n) window on the read-only path.
	rowBase := func(i int) int64 {
		if evolve {
			return int64(i) * perRow
		}
		return int64(i-start) * perRow
	}

	// Re-run rows start..n-1, mirroring rejectionDP operation for
	// operation (same kernels, same parallel chunking condition).
	for i := start; i < n; i++ {
		stats.Rows++
		c, v := items[i].c, items[i].v
		if c > cap64 {
			hi := reach + 1
			dpRejectRange(prev, cur, v, 0, hi)
			stats.Cells += hi
			prev, cur = cur, prev
			if evolve {
				st.noteEvolvedRow(i+1, n, prev, reach)
			}
			continue
		}
		reach = min(reach+c, cap64)
		hi := reach + 1
		rowBits := words[rowBase(i) : rowBase(i)+perRow]
		if workers > 1 && hi >= int64(64*workers) {
			chunk := (hi + int64(workers) - 1) / int64(workers)
			chunk = (chunk + 63) &^ 63
			nch := int((hi + chunk - 1) / chunk)
			conc.ForEach(nch, workers, func(k int) (struct{}, error) {
				lo := int64(k) * chunk
				dpRowRange(prev, cur, rowBits, c, v, lo, min(lo+chunk, hi))
				return struct{}{}, nil
			})
		} else {
			dpRowRange(prev, cur, rowBits, c, v, 0, hi)
		}
		stats.Cells += hi
		prev, cur = cur, prev
		if evolve {
			st.noteEvolvedRow(i+1, n, prev, reach)
		}
	}
	f := prev
	if evolve {
		st.items = append(st.items[:0], items...)
		st.n = n
	}

	// The final scan and the evaluation run against in's own energy curve
	// — this is where instances sharing rows but differing in processor
	// model, FastPow or dormant mode part ways, each exactly.
	var bestW int64
	if workers > 1 && ctx.fastEnergy {
		bestW, _ = minCostWorkloadParallel(f, ctx.energy, 1, workers)
	} else {
		bestW, _ = minCostWorkload(f, ctx.energy, 1, ctx.fastEnergy)
	}
	if bestW < 0 {
		if evolve {
			st.valid = false
		}
		return Solution{}, stats, true, fmt.Errorf("core: DP found no feasible workload")
	}

	// Reconstruct: re-run rows from the fresh window, untouched prefix
	// rows from the recorded table.
	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= 0; i-- {
		var taken bool
		if i >= start {
			taken = words[rowBase(i)+w/64]&(1<<uint(w%64)) != 0
		} else {
			taken = st.take(i, w)
		}
		if taken {
			ids = append(ids, items[i].id)
			w -= items[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		if evolve {
			st.valid = false
		}
		return Solution{}, stats, true, fmt.Errorf("core: DP reconstruction left workload %d", w)
	}
	sol, err = ctx.evaluate(ids)
	return sol, stats, true, err
}

// noteEvolvedRow records checkpoints during an evolve re-run: the stride
// grid plus the new final row, matching what a cold SolveCheckpoint of
// the evolved instance would have recorded from this row on.
func (st *DPState) noteEvolvedRow(rows, n int, f []float64, reach int64) {
	if rows%st.stride != 0 && rows != n {
		return
	}
	st.addSnap(rows, reach, f)
}
