package core

import (
	"math/rand"
	"testing"
)

// subsetSumBrute answers the question by enumeration (n ≤ 20).
func subsetSumBrute(ss SubsetSum) bool {
	n := len(ss.Items)
	for mask := 0; mask < 1<<n; mask++ {
		var sum int64
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sum += ss.Items[b]
			}
		}
		if sum == ss.Target {
			return true
		}
	}
	return false
}

func TestSubsetSumValidate(t *testing.T) {
	tests := []struct {
		name    string
		ss      SubsetSum
		wantErr bool
	}{
		{"valid", SubsetSum{Items: []int64{3, 5, 7}, Target: 8}, false},
		{"empty", SubsetSum{Target: 1}, true},
		{"zero item", SubsetSum{Items: []int64{0, 3}, Target: 3}, true},
		{"negative item", SubsetSum{Items: []int64{-2, 3}, Target: 1}, true},
		{"zero target", SubsetSum{Items: []int64{3}, Target: 0}, true},
		{"target too large", SubsetSum{Items: []int64{3}, Target: 4}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.ss.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestHardnessGadgetKnownInstances(t *testing.T) {
	tests := []struct {
		name string
		ss   SubsetSum
		want bool
	}{
		{"yes: 3+5", SubsetSum{Items: []int64{3, 5, 7}, Target: 8}, true},
		{"no: nothing sums to 4", SubsetSum{Items: []int64{3, 5, 7}, Target: 4}, false},
		{"yes: singleton", SubsetSum{Items: []int64{9}, Target: 9}, true},
		{"yes: full set", SubsetSum{Items: []int64{2, 4, 6}, Target: 12}, true},
		{"no: parity", SubsetSum{Items: []int64{2, 4, 6}, Target: 5}, false},
		{"yes: classic", SubsetSum{Items: []int64{1, 5, 11, 5}, Target: 11}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in, err := tt.ss.Reduce()
			if err != nil {
				t.Fatal(err)
			}
			opt, err := (DP{}).Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if got := tt.ss.Decode(opt); got != tt.want {
				t.Errorf("Decode = %v, want %v (opt cost %v)", got, tt.want, opt.Cost)
			}
		})
	}
}

func TestHardnessGadgetRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		ss := SubsetSum{}
		var total int64
		for i := 0; i < n; i++ {
			a := int64(1 + rng.Intn(25))
			ss.Items = append(ss.Items, a)
			total += a
		}
		ss.Target = 1 + rng.Int63n(total)
		in, err := ss.Reduce()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := (DP{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ss.Decode(opt), subsetSumBrute(ss); got != want {
			t.Errorf("trial %d: %+v: Decode = %v, brute force = %v", trial, ss, got, want)
		}
	}
}

func TestHardnessGadgetViaExhaustive(t *testing.T) {
	// The decoder must work with either exact solver.
	ss := SubsetSum{Items: []int64{4, 6, 9}, Target: 13}
	in, err := ss.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Exhaustive{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Decode(opt) {
		t.Error("4+9 = 13 not decoded as yes")
	}
}
