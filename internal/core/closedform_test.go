package core

import (
	"math"
	"testing"
	"testing/quick"

	"dvsreject/internal/task"
)

// For n identical tasks (c, v) on the ideal cubic processor the optimum is
// a pure count: accept k* = argmin_k E(k·c) + (n−k)·v over feasible k.
// This closed form cross-checks the DP (and through earlier tests, every
// other solver) on a family where the answer is computable independently.
func identicalOptimum(n int, c int64, v, d, smax float64) (bestK int, bestCost float64) {
	bestCost = math.Inf(1)
	for k := 0; k <= n; k++ {
		w := float64(k) * float64(c)
		if w > smax*d {
			break
		}
		e := math.Pow(w, 3) / (d * d)
		if cost := e + float64(n-k)*v; cost < bestCost {
			bestCost, bestK = cost, k
		}
	}
	return bestK, bestCost
}

func TestDPMatchesIdenticalClosedForm(t *testing.T) {
	cases := []struct {
		n int
		c int64
		v float64
		d float64
	}{
		{5, 4, 1, 10},
		{10, 3, 0.5, 20},
		{8, 7, 10, 25},
		{20, 2, 0.05, 15},
		{12, 5, 2.4, 30},
		{30, 1, 0.0009, 12},
	}
	for _, tc := range cases {
		in := Instance{Tasks: task.Set{Deadline: tc.d}, Proc: testProcs["ideal-cubic"]}
		for i := 0; i < tc.n; i++ {
			in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{ID: i, Cycles: tc.c, Penalty: tc.v})
		}
		wantK, wantCost := identicalOptimum(tc.n, tc.c, tc.v, tc.d, 1)
		sol, err := (DP{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(sol.Accepted) != wantK {
			t.Errorf("n=%d c=%d v=%v: accepted %d, closed form %d", tc.n, tc.c, tc.v, len(sol.Accepted), wantK)
		}
		if math.Abs(sol.Cost-wantCost) > 1e-9*(1+wantCost) {
			t.Errorf("n=%d c=%d v=%v: cost %v, closed form %v", tc.n, tc.c, tc.v, sol.Cost, wantCost)
		}
	}
}

// Property: the closed form holds for arbitrary identical-task families,
// and the continuous relaxation's interior optimum k ≈ D/c·√(v/(3c)) (from
// d/dk [k³c³/D² + (n−k)v] = 0) brackets the discrete optimum.
func TestQuickIdenticalClosedForm(t *testing.T) {
	f := func(nn, cc uint8, vv uint16) bool {
		n := 2 + int(nn%20)
		c := 1 + int64(cc%9)
		v := 0.01 + float64(vv)/500
		d := 40.0
		in := Instance{Tasks: task.Set{Deadline: d}, Proc: testProcs["ideal-cubic"]}
		for i := 0; i < n; i++ {
			in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{ID: i, Cycles: c, Penalty: v})
		}
		wantK, wantCost := identicalOptimum(n, c, v, d, 1)
		sol, err := (DP{}).Solve(in)
		if err != nil {
			return false
		}
		if math.Abs(sol.Cost-wantCost) > 1e-9*(1+wantCost) {
			return false
		}
		// The discrete optimum sits within one task of the unconstrained
		// continuous stationary point k = (D/c)·√(v/(3c)) (from
		// d/dk [(kc)³/D² + (n−k)v] = 0), clamped to [0, min(n, D/c)].
		kCont := d * math.Sqrt(v/(3*float64(c))) / float64(c)
		kStar := math.Min(math.Max(kCont, 0), math.Min(float64(n), d/float64(c)))
		return math.Abs(float64(wantK)-kStar) <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
