package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// This file pins the optimized solver hot paths to reference
// implementations that follow the pre-optimization code shape: every
// energy probe goes through the Instance methods (surrogateEnergy, Fits,
// energyOf, Evaluate) with no caching, no closed forms, no pruned scans
// and no parallelism. On a corpus of random instances spanning every
// flavour — homogeneous, heterogeneous, leakage, discrete speeds, dormant
// mode — the production solvers must return the same accepted set and the
// same cost, and the branch-and-bound must explore the same node count.

// diffInstance draws one corpus instance; hetero toggles per-task power
// coefficients.
func diffInstance(t *testing.T, seed int64, n int, load float64, proc speed.Proc, hetero bool) Instance {
	t.Helper()
	set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
		N: n, Load: load, Deadline: 200, SMax: proc.MaxSpeed(),
		Penalty: gen.PenaltyModel(seed % 3), HeteroRho: hetero,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Instance{Tasks: set, Proc: proc}
}

type diffCase struct {
	name string
	in   Instance
}

// diffCorpus builds the ~50-instance differential corpus: six processor
// flavours × nine seeds, sizes 6–14, loads 0.6–2.0.
func diffCorpus(t *testing.T) []diffCase {
	t.Helper()
	flavors := []struct {
		name   string
		proc   speed.Proc
		hetero bool
	}{
		{"ideal-cubic", speed.Proc{Model: power.Cubic(), SMax: 1}, false},
		{"leaky-disable", speed.Proc{Model: power.XScale(), SMax: 1}, false},
		{"leaky-dormant", speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2}, false},
		{"discrete-xscale", speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels()}, false},
		{"discrete-dormant", speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2}, false},
		{"hetero-cubic", speed.Proc{Model: power.Cubic(), SMax: 1}, true},
	}
	var cases []diffCase
	for fi, f := range flavors {
		for s := int64(0); s < 9; s++ {
			n := 6 + int(s)
			load := 0.6 + 0.2*float64((int64(fi)+s)%8)
			in := diffInstance(t, 1000*int64(fi)+s, n, load, f.proc, f.hetero)
			cases = append(cases, diffCase{fmt.Sprintf("%s/seed=%d", f.name, s), in})
		}
	}
	return cases
}

// frameOf adapts Solution to the shared oracle's mirror struct. (This test
// file is in package core, so it reaches the oracle leaf directly; the
// verify layer above would be an import cycle from here.)
func frameOf(s Solution) oracle.FrameSolution {
	return oracle.FrameSolution{
		Accepted: s.Accepted, Rejected: s.Rejected,
		Assignment: s.Assignment, PerTaskSpeeds: s.PerTaskSpeeds,
		Energy: s.Energy, Penalty: s.Penalty, Cost: s.Cost,
	}
}

// sameSolution asserts an identical accepted set and a cost within 1e-9
// relative tolerance (in practice the costs are bit-equal; the tolerance
// absorbs nothing more than documentation).
func sameSolution(t *testing.T, name string, got, want Solution, gotErr, wantErr error) {
	t.Helper()
	if (gotErr != nil) != (wantErr != nil) {
		t.Errorf("%s: error mismatch: got %v, want %v", name, gotErr, wantErr)
		return
	}
	if gotErr != nil {
		return
	}
	if err := oracle.SameFrameDecision(frameOf(got), frameOf(want), 1e-9); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// ---- reference implementations (pre-optimization code shape) ----

func refGreedyDensity(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	its := in.items()
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*float64(its[b].c) > its[b].v*float64(its[a].c)
	})
	var accepted []int
	var wTrue int64
	var wEff float64
	for _, it := range its {
		if !in.Fits(float64(wTrue + it.c)) {
			continue
		}
		marginal := in.surrogateEnergy(wEff+it.ce) - in.surrogateEnergy(wEff)
		if marginal < it.v {
			accepted = append(accepted, it.id)
			wTrue += it.c
			wEff += it.ce
		}
	}
	return Evaluate(in, accepted)
}

func refGreedyMarginal(in Instance, disableSwaps bool) (Solution, error) {
	seed, err := refGreedyDensity(in)
	if err != nil {
		return Solution{}, err
	}
	its := in.items()
	n := len(its)
	limit := 10 * n

	acc := seed.AcceptedSet()
	var wTrue int64
	var wEff float64
	for _, it := range its {
		if acc[it.id] {
			wTrue += it.c
			wEff += it.ce
		}
	}
	for iter := 0; iter < limit; iter++ {
		bestGain := costEps
		bestOut, bestIn := -1, -1
		base := in.surrogateEnergy(wEff)
		for i, it := range its {
			if acc[it.id] {
				gain := base - in.surrogateEnergy(wEff-it.ce) - it.v
				if gain > bestGain {
					bestGain, bestOut, bestIn = gain, i, -1
				}
			} else {
				if in.Fits(float64(wTrue + it.c)) {
					gain := it.v - (in.surrogateEnergy(wEff+it.ce) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, -1, i
					}
				}
				if disableSwaps {
					continue
				}
				for j, jt := range its {
					if !acc[jt.id] {
						continue
					}
					if !in.Fits(float64(wTrue - jt.c + it.c)) {
						continue
					}
					newEff := wEff - jt.ce + it.ce
					gain := it.v - jt.v - (in.surrogateEnergy(newEff) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, j, i
					}
				}
			}
		}
		if bestOut < 0 && bestIn < 0 {
			break
		}
		if bestOut >= 0 {
			it := its[bestOut]
			delete(acc, it.id)
			wTrue -= it.c
			wEff -= it.ce
		}
		if bestIn >= 0 {
			it := its[bestIn]
			acc[it.id] = true
			wTrue += it.c
			wEff += it.ce
		}
	}
	ids := make([]int, 0, len(acc))
	for id := range acc {
		ids = append(ids, id)
	}
	return Evaluate(in, ids)
}

type refSearcher struct {
	in       Instance
	items    []item
	convex   bool
	accepted []bool
	best     []int
	bestCost float64
	haveBest bool
	nodes    int64
}

func refExhaustive(in Instance, weakOnly bool) (Solution, int64, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, 0, err
	}
	its := in.items()
	sort.Slice(its, func(a, b int) bool { return its[a].ce > its[b].ce })
	s := &refSearcher{
		in: in, items: its,
		convex:   in.convexEnergy() && !weakOnly,
		bestCost: math.Inf(1),
		accepted: make([]bool, len(its)),
	}
	if seed, err := refGreedyDensity(in); err == nil {
		s.bestCost = seed.Cost
		s.best = append([]int(nil), seed.Accepted...)
		s.haveBest = true
	}
	s.dfs(0, 0, 0, 0)
	if !s.haveBest {
		return Solution{}, s.nodes, fmt.Errorf("no feasible solution")
	}
	sol, err := Evaluate(in, s.best)
	return sol, s.nodes, err
}

func (s *refSearcher) dfs(idx int, wTrue int64, wEff, vRej float64) {
	s.nodes++
	if lb := s.lowerBound(idx, wEff, vRej); lb >= s.bestCost-costEps {
		return
	}
	if idx == len(s.items) {
		s.leaf(wEff, vRej)
		return
	}
	it := s.items[idx]
	if s.in.Fits(float64(wTrue + it.c)) {
		s.accepted[idx] = true
		s.dfs(idx+1, wTrue+it.c, wEff+it.ce, vRej)
		s.accepted[idx] = false
	}
	s.dfs(idx+1, wTrue, wEff, vRej+it.v)
}

func (s *refSearcher) lowerBound(idx int, wEff, vRej float64) float64 {
	base := s.in.surrogateEnergy(wEff)
	lb := base + vRej
	if !s.convex || math.IsInf(base, 1) {
		return lb
	}
	for i := idx; i < len(s.items); i++ {
		marginal := s.in.surrogateEnergy(wEff+s.items[i].ce) - base
		lb += math.Min(s.items[i].v, marginal)
	}
	return lb
}

func (s *refSearcher) leaf(wEff, vRej float64) {
	var ids []int
	for i, acc := range s.accepted {
		if acc {
			ids = append(ids, s.items[i].id)
		}
	}
	cost := s.in.surrogateEnergy(wEff) + vRej
	if s.in.Heterogeneous() {
		sol, err := Evaluate(s.in, ids)
		if err != nil {
			return
		}
		cost = sol.Cost
	}
	if cost < s.bestCost-costEps {
		s.bestCost = cost
		s.best = ids
		s.haveBest = true
	}
}

// refRejectionDP is the seed rejection DP with the full-width final scan.
func refRejectionDP(its []item, cap64 int64, energy func(float64) float64, scale float64) ([]int, error) {
	n := len(its)
	width := cap64 + 1
	f := make([]float64, width)
	for w := range f {
		f[w] = math.Inf(1)
	}
	f[0] = 0
	take := newTakeTable(nil, n, width)
	for i, it := range its {
		c := it.c
		if c > cap64 {
			for w := int64(0); w < width; w++ {
				if !math.IsInf(f[w], 1) {
					f[w] += it.v
				}
			}
			continue
		}
		for w := cap64; w >= 0; w-- {
			rejectCost := math.Inf(1)
			if !math.IsInf(f[w], 1) {
				rejectCost = f[w] + it.v
			}
			acceptCost := math.Inf(1)
			if w >= c && !math.IsInf(f[w-c], 1) {
				acceptCost = f[w-c]
			}
			if acceptCost < rejectCost {
				f[w] = acceptCost
				take.set(i, w)
			} else {
				f[w] = rejectCost
			}
		}
	}
	bestW, bestCost := int64(-1), math.Inf(1)
	for w := int64(0); w < width; w++ {
		if math.IsInf(f[w], 1) {
			continue
		}
		if c := energy(float64(w)*scale) + f[w]; c < bestCost {
			bestCost, bestW = c, w
		}
	}
	if bestW < 0 {
		return nil, fmt.Errorf("no feasible workload")
	}
	var ids []int
	w := bestW
	for i := n - 1; i >= 0; i-- {
		if take.get(i, w) {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	return ids, nil
}

func refDP(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if in.Heterogeneous() {
		return Solution{}, ErrHeterogeneous
	}
	its := in.items()
	cap64 := int64(math.Floor(in.Capacity() * (1 + 1e-12)))
	accepted, err := refRejectionDP(its, cap64, in.energyOf, 1)
	if err != nil {
		return Solution{}, err
	}
	return Evaluate(in, accepted)
}

func refApproxDP(in Instance, eps float64) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if in.Heterogeneous() {
		return Solution{}, ErrHeterogeneous
	}
	its := in.items()
	n := len(its)
	capTrue := in.Capacity()
	k := int64(math.Floor(eps * capTrue / float64(n+1)))
	if k < 1 {
		k = 1
	}
	scaled := make([]item, n)
	for i, it := range its {
		scaled[i] = item{id: it.id, c: (it.c + k - 1) / k, v: it.v}
	}
	capScaled := int64(math.Floor(capTrue * (1 + 1e-12) / float64(k)))
	accepted, err := refRejectionDP(scaled, capScaled, in.energyOf, float64(k))
	if err != nil {
		return Solution{}, err
	}
	return Evaluate(in, accepted)
}

// refRandomAdmission evaluates every trial with the full Evaluate and
// keeps the lowest-numbered strictly-cheapest trial — the selection the
// surrogate-costed production RAND must reproduce.
func refRandomAdmission(t *testing.T, in Instance, seed int64, restarts int) Solution {
	t.Helper()
	its := in.items()
	n := len(its)
	best := Solution{Cost: math.Inf(1)}
	for trial := 0; trial < restarts; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)))
		perm := rng.Perm(n)
		var ids []int
		var wTrue int64
		var wEff float64
		for _, pi := range perm {
			it := its[pi]
			if !in.Fits(float64(wTrue + it.c)) {
				continue
			}
			marginal := in.surrogateEnergy(wEff+it.ce) - in.surrogateEnergy(wEff)
			if marginal < it.v {
				ids = append(ids, it.id)
				wTrue += it.c
				wEff += it.ce
			}
		}
		sol, err := Evaluate(in, ids)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Cost < best.Cost {
			best = sol
		}
	}
	return best
}

// ---- the differential assertions ----

func TestDifferentialGreedyDensity(t *testing.T) {
	for _, c := range diffCorpus(t) {
		got, gotErr := GreedyDensity{}.Solve(c.in)
		want, wantErr := refGreedyDensity(c.in)
		sameSolution(t, c.name, got, want, gotErr, wantErr)
	}
}

func TestDifferentialGreedyMarginal(t *testing.T) {
	for _, c := range diffCorpus(t) {
		for _, disableSwaps := range []bool{false, true} {
			got, gotErr := GreedyMarginal{DisableSwaps: disableSwaps}.Solve(c.in)
			want, wantErr := refGreedyMarginal(c.in, disableSwaps)
			sameSolution(t, fmt.Sprintf("%s/swaps=%v", c.name, !disableSwaps), got, want, gotErr, wantErr)
		}
	}
}

func TestDifferentialExhaustive(t *testing.T) {
	for _, c := range diffCorpus(t) {
		for _, weak := range []bool{false, true} {
			got, gotNodes, gotErr := Exhaustive{WeakBoundOnly: weak}.SolveStats(c.in)
			want, wantNodes, wantErr := refExhaustive(c.in, weak)
			name := fmt.Sprintf("%s/weak=%v", c.name, weak)
			sameSolution(t, name, got, want, gotErr, wantErr)
			if gotErr == nil && gotNodes != wantNodes {
				t.Errorf("%s: explored %d nodes, reference explored %d", name, gotNodes, wantNodes)
			}
		}
	}
}

func TestDifferentialDP(t *testing.T) {
	for _, c := range diffCorpus(t) {
		got, gotErr := DP{}.Solve(c.in)
		want, wantErr := refDP(c.in)
		sameSolution(t, c.name, got, want, gotErr, wantErr)
	}
}

func TestDifferentialApproxDP(t *testing.T) {
	for _, c := range diffCorpus(t) {
		for _, eps := range []float64{0.05, 0.3} {
			got, gotErr := ApproxDP{Eps: eps}.Solve(c.in)
			want, wantErr := refApproxDP(c.in, eps)
			sameSolution(t, fmt.Sprintf("%s/eps=%g", c.name, eps), got, want, gotErr, wantErr)
		}
	}
}

func TestDifferentialRandomAdmission(t *testing.T) {
	for _, c := range diffCorpus(t) {
		got, err := RandomAdmission{Seed: 42, Restarts: 12, Workers: 1}.Solve(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := refRandomAdmission(t, c.in, 42, 12)
		sameSolution(t, c.name, got, want, nil, nil)
	}
}

// TestExhaustiveParallelMatchesSerial pins the parallel branch-and-bound
// to the serial result, accepted IDs and cost alike.
func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	for _, c := range diffCorpus(t) {
		serial, serialErr := Exhaustive{Workers: 1}.Solve(c.in)
		for _, workers := range []int{2, 4, 7} {
			par, parErr := Exhaustive{Workers: workers}.Solve(c.in)
			sameSolution(t, fmt.Sprintf("%s/workers=%d", c.name, workers), par, serial, parErr, serialErr)
			if parErr == nil && par.Cost != serial.Cost {
				t.Errorf("%s/workers=%d: cost %v != serial %v", c.name, workers, par.Cost, serial.Cost)
			}
		}
	}
}

// TestRandomAdmissionParallelMatchesSerial: identical trials, identical
// winner, for every worker count, run after run.
func TestRandomAdmissionParallelMatchesSerial(t *testing.T) {
	for _, c := range diffCorpus(t) {
		serial, err := RandomAdmission{Seed: 7, Restarts: 16, Workers: 1}.Solve(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, workers := range []int{2, 4} {
			par, err := RandomAdmission{Seed: 7, Restarts: 16, Workers: workers}.Solve(c.in)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", c.name, workers, err)
			}
			if !slices.Equal(par.Accepted, serial.Accepted) || par.Cost != serial.Cost {
				t.Errorf("%s/workers=%d: got %v cost %v, serial %v cost %v",
					c.name, workers, par.Accepted, par.Cost, serial.Accepted, serial.Cost)
			}
		}
	}
}
