package core

import (
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

func TestGreedyDensityAcceptsWorthwhileTask(t *testing.T) {
	// Marginal energy of the single task is 0.64 < penalty 1: accept.
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	sol, err := (GreedyDensity{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 1 {
		t.Errorf("accepted = %v, want [1]", sol.Accepted)
	}
}

func TestGreedyDensityRejectsWorthlessTask(t *testing.T) {
	// Marginal energy 0.64 > penalty 0.1: reject.
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 0.1})
	sol, err := (GreedyDensity{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 0 {
		t.Errorf("accepted = %v, want none", sol.Accepted)
	}
	if math.Abs(sol.Cost-0.1) > 1e-12 {
		t.Errorf("cost = %v, want 0.1", sol.Cost)
	}
}

func TestGreedyDensityHonorsCapacityUnderOverload(t *testing.T) {
	// Load 2: roughly half the work must be turned away no matter what.
	in := randomInstance(t, 1, 30, 2.0, testProcs["ideal-cubic"], gen.PenaltyProportional)
	sol, err := (GreedyDensity{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var w int64
	acc := sol.AcceptedSet()
	for _, tk := range in.Tasks.Tasks {
		if acc[tk.ID] {
			w += tk.Cycles
		}
	}
	if !in.Fits(float64(w)) {
		t.Errorf("accepted workload %d exceeds capacity %v", w, in.Capacity())
	}
	if len(sol.Rejected) == 0 {
		t.Error("overloaded instance rejected nothing")
	}
}

func TestGreedyDensityOrderMatters(t *testing.T) {
	// Two tasks, capacity for one: the denser penalty must win the slot.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 8, Penalty: 4},  // density 0.5
		task.Task{ID: 2, Cycles: 8, Penalty: 40}, // density 5
	)
	sol, err := (GreedyDensity{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.AcceptedSet(); !got[2] || got[1] {
		t.Errorf("accepted = %v, want [2]", sol.Accepted)
	}
}

func TestGreedyMarginalImprovesOnGreedy(t *testing.T) {
	// Local search must never be worse than its greedy seed, and on some
	// adversarial instances strictly better somewhere across seeds.
	improved := false
	for seed := int64(0); seed < 20; seed++ {
		in := randomInstance(t, seed, 16, 1.5, testProcs["ideal-cubic"], gen.PenaltyProportional)
		g, err := (GreedyDensity{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		m, err := (GreedyMarginal{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cost > g.Cost+1e-9 {
			t.Errorf("seed %d: local search worsened greedy: %v > %v", seed, m.Cost, g.Cost)
		}
		if m.Cost < g.Cost-1e-9 {
			improved = true
		}
	}
	if !improved {
		t.Error("local search never improved the greedy seed across 20 instances")
	}
}

func TestGreedyMarginalIterationCap(t *testing.T) {
	in := randomInstance(t, 5, 12, 1.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
	if _, err := (GreedyMarginal{MaxIterations: 1}).Solve(in); err != nil {
		t.Errorf("capped local search failed: %v", err)
	}
}

func TestAcceptAllFeasibleLoad(t *testing.T) {
	// Under load < 1, AcceptAll accepts everything.
	in := randomInstance(t, 2, 15, 0.7, testProcs["ideal-cubic"], gen.PenaltyUniform)
	sol, err := (AcceptAll{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rejected) != 0 {
		t.Errorf("rejected = %v, want none under load 0.7", sol.Rejected)
	}
	if sol.Penalty != 0 {
		t.Errorf("penalty = %v, want 0", sol.Penalty)
	}
}

func TestAcceptAllShedsToFeasibility(t *testing.T) {
	in := randomInstance(t, 3, 15, 2.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
	sol, err := (AcceptAll{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var w int64
	acc := sol.AcceptedSet()
	for _, tk := range in.Tasks.Tasks {
		if acc[tk.ID] {
			w += tk.Cycles
		}
	}
	if !in.Fits(float64(w)) {
		t.Errorf("accepted workload %d exceeds capacity %v", w, in.Capacity())
	}
	if len(sol.Rejected) == 0 {
		t.Error("load 2.5 shed nothing")
	}
}

func TestRejectAll(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 2},
	)
	sol, err := (RejectAll{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Accepted) != 0 || sol.Cost != 3 {
		t.Errorf("solution = %+v, want empty with cost 3", sol)
	}
}

func TestRandomAdmissionDeterministic(t *testing.T) {
	in := randomInstance(t, 4, 20, 1.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
	a, err := (RandomAdmission{Seed: 42}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (RandomAdmission{Seed: 42}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || len(a.Accepted) != len(b.Accepted) {
		t.Errorf("same seed, different results: %v vs %v", a.Cost, b.Cost)
	}
}

func TestRandomAdmissionMoreRestartsNoWorse(t *testing.T) {
	in := randomInstance(t, 6, 20, 1.5, testProcs["ideal-cubic"], gen.PenaltyInverse)
	one, err := (RandomAdmission{Seed: 9, Restarts: 1}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	many, err := (RandomAdmission{Seed: 9, Restarts: 32}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if many.Cost > one.Cost+1e-9 {
		t.Errorf("32 restarts (%v) worse than 1 restart (%v)", many.Cost, one.Cost)
	}
}

func TestGreedySolversValidateInstance(t *testing.T) {
	bad := cubicInstance(task.Task{ID: 1, Cycles: -1, Penalty: 1})
	for _, s := range []Solver{GreedyDensity{}, GreedyMarginal{}, AcceptAll{}, RejectAll{}, RandomAdmission{}} {
		if _, err := s.Solve(bad); err == nil {
			t.Errorf("%s accepted an invalid instance", s.Name())
		}
	}
}

func TestGreedyHeterogeneousWorks(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 3, Penalty: 1, Rho: 2},
		task.Task{ID: 2, Cycles: 5, Penalty: 0.2, Rho: 0.5},
	)
	for _, s := range []Solver{GreedyDensity{}, GreedyMarginal{}, RandomAdmission{Seed: 1}} {
		sol, err := s.Solve(in)
		if err != nil {
			t.Errorf("%s on heterogeneous instance: %v", s.Name(), err)
			continue
		}
		// Whatever the admission, the cost must be what Evaluate reports.
		check, err := Evaluate(in, sol.Accepted)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(check.Cost-sol.Cost) > 1e-9 {
			t.Errorf("%s: reported cost %v != evaluated cost %v", s.Name(), sol.Cost, check.Cost)
		}
	}
}
