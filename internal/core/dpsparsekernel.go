package core

import "math"

// sparseMergeRow folds item (c, v) into the sparse row (prevW, prevF) —
// ascending workload breakpoints paired with their cell values — writing
// the merged row into outW/outF and its packed take bits into bits
// (cell-indexed, pre-zeroed). It returns the number of cells produced, or
// -1 when the row would not fit outW (the caller's remaining breakpoint
// budget).
//
// A sparse row is everything the dense row knows minus the +Inf gaps the
// final scan would skip anyway, so the transition is a linear merge of two
// sorted streams derived from the previous row:
//
//	skip: (w,     f[w] + v)   reject item i on every path
//	take: (w + c, f[w])       accept item i where w + c still fits
//
// Where the streams collide the dense cell rule applies: the accept arm
// wins only strictly (ties reject, exactly dpCell's bit-trick tie-break),
// and the float arithmetic uses the same operands as the dense kernel, so
// every produced cell is bit-identical to its dense counterpart.
//
// When prune is true (monotone energy curve) cells are additionally
// filtered to the strictly-decreasing penalty frontier — the same
// dominance rule minCostWorkload applies to the final row. A dominated
// cell can never be selected by the monotone final scan, and the cells on
// the selected workload's reconstruction path are always strictly
// non-dominated in their rows (a dominated path cell would place an
// equal-or-cheaper final cell at a strictly smaller workload, which the
// scan's first-wins tie-break would have preferred over the one actually
// chosen), so pruning changes no observable output. Non-monotone curves
// (dormant break-evens, discrete ladders) keep every finite cell.
func sparseMergeRow(prevW []int64, prevF []float64, c int64, v float64, cap64 int64, prune bool, outW []int64, outF []float64, bits []uint64) int {
	np := len(prevW)
	lim := cap64 - c // take arm admits previous workloads ≤ lim
	frontier := math.Inf(1)
	si, ti, k := 0, 0, 0
	for {
		haveS := si < np
		haveT := ti < np && prevW[ti] <= lim
		var w int64
		var f float64
		var take uint64
		switch {
		case haveS && haveT && prevW[si] == prevW[ti]+c:
			rb := prevF[si] + v
			ab := prevF[ti]
			if ab < rb {
				f, take = ab, 1
			} else {
				f = rb
			}
			w = prevW[si]
			si++
			ti++
		case haveS && (!haveT || prevW[si] < prevW[ti]+c):
			w, f = prevW[si], prevF[si]+v
			si++
		case haveT:
			w, f, take = prevW[ti]+c, prevF[ti], 1
			ti++
		default:
			return k
		}
		if prune {
			if f >= frontier {
				continue // dominated by a cheaper cell at smaller workload
			}
			frontier = f
		}
		if k == len(outW) {
			return -1
		}
		outW[k] = w
		outF[k] = f
		bits[k>>6] |= take << uint(k&63)
		k++
	}
}

// minCostWorkloadSparse is minCostWorkload over a sparse final row: the
// same frontier filter, energy costing, first-wins incumbent update and
// monotone cut-off, walked over the row's breakpoints instead of the full
// grid. Sparse cells are finite by construction, so the dense scan's +Inf
// skip has no counterpart; every other operation runs on the identical
// (w, f) sequence the dense scan would cost, keeping the selected
// workload bit-identical.
func minCostWorkloadSparse(ws []int64, fs []float64, energy func(float64) float64, scale float64, monotone bool) (int64, float64) {
	bestW, bestCost := int64(-1), math.Inf(1)
	frontier := math.Inf(1)
	for k, w := range ws {
		fw := fs[k]
		if monotone && fw >= frontier {
			continue
		}
		frontier = fw
		e := energy(float64(w) * scale)
		if c := e + fw; c < bestCost {
			bestCost, bestW = c, w
		}
		if monotone && e >= bestCost && bestW >= 0 {
			break
		}
	}
	return bestW, bestCost
}
