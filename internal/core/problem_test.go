package core

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// cubicInstance builds the standard test bed: cubic power, smax = 1,
// deadline 10.
func cubicInstance(tasks ...task.Task) Instance {
	return Instance{
		Tasks: task.Set{Deadline: 10, Tasks: tasks},
		Proc:  speed.Proc{Model: power.Cubic(), SMax: 1},
	}
}

func TestInstanceValidate(t *testing.T) {
	ok := cubicInstance(task.Task{ID: 1, Cycles: 5, Penalty: 1})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := ok
	bad.Tasks.Deadline = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero deadline accepted")
	}

	bad = ok
	bad.Proc.SMax = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero smax accepted")
	}
}

func TestInstanceValidateHeterogeneousRules(t *testing.T) {
	het := task.Task{ID: 1, Cycles: 5, Penalty: 1, Rho: 2}

	// Continuous leakage-free: fine.
	in := cubicInstance(het)
	if err := in.Validate(); err != nil {
		t.Errorf("hetero on ideal processor rejected: %v", err)
	}

	// Discrete processor: rejected.
	in = cubicInstance(het)
	in.Proc.Levels = power.XScaleLevels()
	if err := in.Validate(); err == nil {
		t.Error("hetero on discrete processor accepted")
	}

	// Leaky processor: rejected.
	in = cubicInstance(het)
	in.Proc.Model = power.XScale()
	if err := in.Validate(); err == nil {
		t.Error("hetero on leaky processor accepted")
	}

	// Dormant-enable: rejected.
	in = cubicInstance(het)
	in.Proc.DormantEnable = true
	if err := in.Validate(); err == nil {
		t.Error("hetero on dormant-enable processor accepted")
	}
}

func TestHeterogeneous(t *testing.T) {
	if cubicInstance(task.Task{ID: 1, Cycles: 5}).Heterogeneous() {
		t.Error("unset rho counted as heterogeneous")
	}
	if cubicInstance(task.Task{ID: 1, Cycles: 5, Rho: 1}).Heterogeneous() {
		t.Error("rho = 1 counted as heterogeneous")
	}
	if !cubicInstance(task.Task{ID: 1, Cycles: 5, Rho: 2}).Heterogeneous() {
		t.Error("rho = 2 not counted as heterogeneous")
	}
}

func TestEvaluateBasic(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 2},
		task.Task{ID: 3, Cycles: 4, Penalty: 3},
	)
	sol, err := Evaluate(in, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// W = 8, D = 10 → s = 0.8, E = 0.8²·8 = 5.12; penalty = 2.
	if math.Abs(sol.Energy-5.12) > 1e-9 {
		t.Errorf("energy = %v, want 5.12", sol.Energy)
	}
	if sol.Penalty != 2 {
		t.Errorf("penalty = %v, want 2", sol.Penalty)
	}
	if math.Abs(sol.Cost-7.12) > 1e-9 {
		t.Errorf("cost = %v, want 7.12", sol.Cost)
	}
	if len(sol.Accepted) != 2 || sol.Accepted[0] != 1 || sol.Accepted[1] != 3 {
		t.Errorf("accepted = %v, want [1 3]", sol.Accepted)
	}
	if len(sol.Rejected) != 1 || sol.Rejected[0] != 2 {
		t.Errorf("rejected = %v, want [2]", sol.Rejected)
	}
}

func TestEvaluateEmptyAccepted(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1.5})
	sol, err := Evaluate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != 0 || sol.Penalty != 1.5 || sol.Cost != 1.5 {
		t.Errorf("reject-all solution = %+v", sol)
	}
}

func TestEvaluateErrors(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	if _, err := Evaluate(in, []int{9}); err == nil {
		t.Error("unknown ID accepted")
	}
	if _, err := Evaluate(in, []int{1, 1}); err == nil {
		t.Error("duplicate ID accepted")
	}
	over := cubicInstance(
		task.Task{ID: 1, Cycles: 8, Penalty: 1},
		task.Task{ID: 2, Cycles: 8, Penalty: 1},
	)
	if _, err := Evaluate(over, []int{1, 2}); !errors.Is(err, speed.ErrInfeasible) {
		t.Errorf("over-capacity evaluation error = %v, want ErrInfeasible", err)
	}
}

func TestEvaluateHeterogeneous(t *testing.T) {
	// ρ = 8, α = 3 → effective cycles 2·c. One task c = 3, D = 10:
	// unconstrained speed W̃/D = 0.6, energy = 8·0.6²·3 = 8.64? No:
	// per-task speed si = K·ρ^(−1/α) with K = W̃/D = 0.6, ρ^(−1/3) = 0.5
	// → s1 = 0.3, E = ρ·s²·c = 8·0.09·3 = 2.16 = W̃³/D² = 6³/100.
	in := cubicInstance(task.Task{ID: 1, Cycles: 3, Penalty: 10, Rho: 8})
	sol, err := Evaluate(in, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Energy-2.16) > 1e-9 {
		t.Errorf("hetero energy = %v, want 2.16", sol.Energy)
	}
	if len(sol.PerTaskSpeeds) != 1 || math.Abs(sol.PerTaskSpeeds[0]-0.3) > 1e-9 {
		t.Errorf("per-task speeds = %v, want [0.3]", sol.PerTaskSpeeds)
	}
}

func TestAcceptedSet(t *testing.T) {
	s := Solution{Accepted: []int{2, 5}}
	m := s.AcceptedSet()
	if !m[2] || !m[5] || m[3] {
		t.Errorf("AcceptedSet() = %v", m)
	}
}

func TestSurrogateEnergyHomogeneousExact(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	for w := 0.0; w <= 10; w += 1.5 {
		if got, want := in.surrogateEnergy(w), in.energyOf(w); got != want {
			t.Errorf("surrogate(%v) = %v, energyOf = %v", w, got, want)
		}
	}
}

func TestSurrogateEnergyHeteroLowerBound(t *testing.T) {
	// The closed form must lower-bound the exact clamped energy.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 5, Penalty: 1, Rho: 0.01},
		task.Task{ID: 2, Cycles: 4, Penalty: 1, Rho: 3},
	)
	sol, err := Evaluate(in, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	wEff := 5*math.Pow(0.01, 1.0/3) + 4*math.Pow(3, 1.0/3)
	if lb := in.surrogateEnergy(wEff); lb > sol.Cost-sol.Penalty+1e-9 {
		t.Errorf("surrogate %v exceeds exact energy %v", lb, sol.Energy)
	}
}

func TestConvexEnergyFlag(t *testing.T) {
	if !cubicInstance().convexEnergy() {
		t.Error("ideal cubic not flagged convex")
	}
	leaky := cubicInstance()
	leaky.Proc.Model = power.XScale()
	if leaky.convexEnergy() {
		t.Error("leaky processor flagged convex")
	}
	disc := cubicInstance()
	disc.Proc.Levels = power.XScaleLevels()
	if disc.convexEnergy() {
		t.Error("discrete processor flagged convex")
	}
}

func TestRejectAllCost(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 2.5},
	)
	if got := in.rejectAllCost(); got != 3.5 {
		t.Errorf("rejectAllCost = %v, want 3.5", got)
	}
	// Leaky dormant-disable: idle frame adds Pind·D.
	leaky := in
	leaky.Proc.Model = power.XScale()
	if got, want := leaky.rejectAllCost(), 3.5+0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("leaky rejectAllCost = %v, want %v", got, want)
	}
}
