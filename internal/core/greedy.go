package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GreedyDensity is the single-pass admission heuristic: consider tasks in
// non-increasing order of penalty density vi/c̃i (the most expensive tasks
// to turn away, per cycle, first) and accept a task when it fits the
// remaining capacity AND the marginal energy of running it is below its
// penalty. O(n log n) plus n energy evaluations.
type GreedyDensity struct{}

// Name implements Solver.
func (GreedyDensity) Name() string { return "GREEDY" }

// Solve implements Solver.
func (GreedyDensity) Solve(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	its := in.items()
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*float64(its[b].c) > its[b].v*float64(its[a].c)
	})

	var accepted []int
	var wTrue int64
	var wEff float64
	for _, it := range its {
		if !in.Fits(float64(wTrue + it.c)) {
			continue
		}
		marginal := in.surrogateEnergy(wEff+it.ce) - in.surrogateEnergy(wEff)
		if marginal < it.v {
			accepted = append(accepted, it.id)
			wTrue += it.c
			wEff += it.ce
		}
	}
	return Evaluate(in, accepted)
}

// GreedyMarginal refines an initial admission by steepest-descent local
// search over single-task toggles and pairwise swaps: repeatedly apply the
// accept/reject flip — or the (evict one, admit one) swap — with the
// largest cost improvement until none improves. Swaps are what escape the
// capacity-bound local optima the single-pass greedy gets trapped in. Each
// move is costed with the surrogate energy curve; the final solution is
// re-costed exactly.
type GreedyMarginal struct {
	// MaxIterations bounds the move count; 0 means 10·n.
	MaxIterations int
	// DisableSwaps restricts the neighbourhood to single-task toggles.
	// Exposed for the move-set ablation (experiment E12).
	DisableSwaps bool
}

// Name implements Solver.
func (GreedyMarginal) Name() string { return "S-GREEDY" }

// Solve implements Solver.
func (g GreedyMarginal) Solve(in Instance) (Solution, error) {
	seed, err := GreedyDensity{}.Solve(in)
	if err != nil {
		return Solution{}, err
	}
	its := in.items()
	n := len(its)
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * n
	}

	acc := seed.AcceptedSet()
	var wTrue int64
	var wEff float64
	for _, it := range its {
		if acc[it.id] {
			wTrue += it.c
			wEff += it.ce
		}
	}

	for iter := 0; iter < limit; iter++ {
		bestGain := costEps
		bestOut, bestIn := -1, -1 // indices to evict / admit (-1 = none)
		base := in.surrogateEnergy(wEff)

		for i, it := range its {
			var gain float64
			if acc[it.id] {
				// Reject it: save its energy share, pay its penalty.
				gain = base - in.surrogateEnergy(wEff-it.ce) - it.v
				if gain > bestGain {
					bestGain, bestOut, bestIn = gain, i, -1
				}
			} else {
				if in.Fits(float64(wTrue + it.c)) {
					// Accept it: save its penalty, pay marginal energy.
					gain = it.v - (in.surrogateEnergy(wEff+it.ce) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, -1, i
					}
				}
				if g.DisableSwaps {
					continue
				}
				// Swap it in for each currently accepted task.
				for j, jt := range its {
					if !acc[jt.id] {
						continue
					}
					if !in.Fits(float64(wTrue - jt.c + it.c)) {
						continue
					}
					newEff := wEff - jt.ce + it.ce
					gain = it.v - jt.v - (in.surrogateEnergy(newEff) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, j, i
					}
				}
			}
		}
		if bestOut < 0 && bestIn < 0 {
			break
		}
		if bestOut >= 0 {
			it := its[bestOut]
			delete(acc, it.id)
			wTrue -= it.c
			wEff -= it.ce
		}
		if bestIn >= 0 {
			it := its[bestIn]
			acc[it.id] = true
			wTrue += it.c
			wEff += it.ce
		}
	}

	ids := make([]int, 0, len(acc))
	for id := range acc {
		ids = append(ids, id)
	}
	return Evaluate(in, ids)
}

// AcceptAll is the energy-oblivious baseline: admit every task, and only
// when the set exceeds capacity shed tasks in increasing penalty density
// until it fits. It models a scheduler that rejects solely for
// feasibility, never to save energy.
type AcceptAll struct{}

// Name implements Solver.
func (AcceptAll) Name() string { return "ACCEPT-ALL" }

// Solve implements Solver.
func (AcceptAll) Solve(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	its := in.items()
	// Shed the cheapest penalty per freed cycle first.
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*float64(its[b].c) < its[b].v*float64(its[a].c)
	})
	wTrue := int64(0)
	for _, it := range its {
		wTrue += it.c
	}
	acc := make(map[int]bool, len(its))
	for _, it := range its {
		acc[it.id] = true
	}
	for _, it := range its {
		if in.Fits(float64(wTrue)) {
			break
		}
		delete(acc, it.id)
		wTrue -= it.c
	}
	if !in.Fits(float64(wTrue)) {
		return Solution{}, fmt.Errorf("core: AcceptAll could not shed to feasibility")
	}
	ids := make([]int, 0, len(acc))
	for id := range acc {
		ids = append(ids, id)
	}
	return Evaluate(in, ids)
}

// RejectAll is the degenerate anchor: admit nothing, pay every penalty.
type RejectAll struct{}

// Name implements Solver.
func (RejectAll) Name() string { return "REJECT-ALL" }

// Solve implements Solver.
func (RejectAll) Solve(in Instance) (Solution, error) {
	return Evaluate(in, nil)
}

// RandomAdmission mirrors the RAND reference of the paper family's plots:
// admit a random permutation greedily under the capacity constraint,
// repeat for Restarts trials, keep the best. Deterministic for a fixed
// Seed.
type RandomAdmission struct {
	Seed     int64
	Restarts int // 0 means 8
}

// Name implements Solver.
func (RandomAdmission) Name() string { return "RAND" }

// Solve implements Solver.
func (r RandomAdmission) Solve(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	restarts := r.Restarts
	if restarts == 0 {
		restarts = 8
	}
	rng := rand.New(rand.NewSource(r.Seed))
	its := in.items()

	best := Solution{Cost: math.Inf(1)}
	found := false
	for trial := 0; trial < restarts; trial++ {
		perm := rng.Perm(len(its))
		var wTrue int64
		var wEff float64
		var ids []int
		for _, pi := range perm {
			it := its[pi]
			if !in.Fits(float64(wTrue + it.c)) {
				continue
			}
			marginal := in.surrogateEnergy(wEff+it.ce) - in.surrogateEnergy(wEff)
			if marginal < it.v {
				ids = append(ids, it.id)
				wTrue += it.c
				wEff += it.ce
			}
		}
		sol, err := Evaluate(in, ids)
		if err != nil {
			return Solution{}, err
		}
		if sol.Cost < best.Cost {
			best = sol
			found = true
		}
	}
	if !found {
		return Solution{}, fmt.Errorf("core: RandomAdmission produced no solution")
	}
	return best, nil
}
