package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"dvsreject/internal/conc"
)

// GreedyDensity is the single-pass admission heuristic: consider tasks in
// non-increasing order of penalty density vi/c̃i (the most expensive tasks
// to turn away, per cycle, first) and accept a task when it fits the
// remaining capacity AND the marginal energy of running it is below its
// penalty. O(n log n) plus n energy evaluations.
type GreedyDensity struct{}

// Name implements Solver.
func (GreedyDensity) Name() string { return "GREEDY" }

// Solve implements Solver.
func (GreedyDensity) Solve(in Instance) (Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	return greedyDensity(ctx)
}

// greedyDensity is GreedyDensity on a prebuilt context, so callers that
// seed other searches with it (GreedyMarginal, Exhaustive) share one
// context per solve.
func greedyDensity(ctx *evalCtx) (Solution, error) {
	its := slices.Clone(ctx.items)
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*float64(its[b].c) > its[b].v*float64(its[a].c)
	})

	var accepted []int
	var wTrue int64
	var wEff float64
	base := ctx.surrogate(wEff)
	for _, it := range its {
		if !ctx.fits(float64(wTrue + it.c)) {
			continue
		}
		marginal := ctx.surrogate(wEff+it.ce) - base
		if marginal < it.v {
			accepted = append(accepted, it.id)
			wTrue += it.c
			wEff += it.ce
			base = ctx.surrogate(wEff)
		}
	}
	return ctx.evaluate(accepted)
}

// GreedyMarginal refines an initial admission by steepest-descent local
// search over single-task toggles and pairwise swaps: repeatedly apply the
// accept/reject flip — or the (evict one, admit one) swap — with the
// largest cost improvement until none improves. Swaps are what escape the
// capacity-bound local optima the single-pass greedy gets trapped in. Each
// move is costed with the surrogate energy curve; the final solution is
// re-costed exactly.
type GreedyMarginal struct {
	// MaxIterations bounds the move count; 0 means 10·n.
	MaxIterations int
	// DisableSwaps restricts the neighbourhood to single-task toggles.
	// Exposed for the move-set ablation (experiment E12).
	DisableSwaps bool
}

// Name implements Solver.
func (GreedyMarginal) Name() string { return "S-GREEDY" }

// Solve implements Solver.
func (g GreedyMarginal) Solve(in Instance) (Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	seed, err := greedyDensity(ctx)
	if err != nil {
		return Solution{}, err
	}
	its := ctx.items
	n := len(its)
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * n
	}

	// The move loops walk the context's struct-of-arrays columns with
	// position-indexed admission flags: the same floats in the same order
	// as the seed's item structs and id-keyed map, laid out so the O(n²)
	// swap scan streams two contiguous float columns per candidate instead
	// of striding item structs and hashing IDs.
	colC, colCE, colV := ctx.colC, ctx.colCE, ctx.colV
	acc := make([]bool, n)
	for _, id := range seed.Accepted {
		acc[ctx.idx[id]] = true
	}
	var wTrue int64
	var wEff float64
	for i, a := range acc {
		if a {
			wTrue += colC[i]
			wEff += colCE[i]
		}
	}

	for iter := 0; iter < limit; iter++ {
		bestGain := costEps
		bestOut, bestIn := -1, -1 // indices to evict / admit (-1 = none)
		base := ctx.surrogate(wEff)

		for i := 0; i < n; i++ {
			var gain float64
			if acc[i] {
				// Reject it: save its energy share, pay its penalty.
				gain = base - ctx.surrogate(wEff-colCE[i]) - colV[i]
				if gain > bestGain {
					bestGain, bestOut, bestIn = gain, i, -1
				}
			} else {
				if ctx.fits(float64(wTrue + colC[i])) {
					// Accept it: save its penalty, pay marginal energy.
					gain = colV[i] - (ctx.surrogate(wEff+colCE[i]) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, -1, i
					}
				}
				if g.DisableSwaps {
					continue
				}
				// Swap it in for each currently accepted task.
				for j := 0; j < n; j++ {
					if !acc[j] {
						continue
					}
					if !ctx.fits(float64(wTrue - colC[j] + colC[i])) {
						continue
					}
					newEff := wEff - colCE[j] + colCE[i]
					gain = colV[i] - colV[j] - (ctx.surrogate(newEff) - base)
					if gain > bestGain {
						bestGain, bestOut, bestIn = gain, j, i
					}
				}
			}
		}
		if bestOut < 0 && bestIn < 0 {
			break
		}
		if bestOut >= 0 {
			acc[bestOut] = false
			wTrue -= colC[bestOut]
			wEff -= colCE[bestOut]
		}
		if bestIn >= 0 {
			acc[bestIn] = true
			wTrue += colC[bestIn]
			wEff += colCE[bestIn]
		}
	}

	ids := make([]int, 0, n)
	for i, a := range acc {
		if a {
			ids = append(ids, its[i].id)
		}
	}
	return ctx.evaluate(ids)
}

// AcceptAll is the energy-oblivious baseline: admit every task, and only
// when the set exceeds capacity shed tasks in increasing penalty density
// until it fits. It models a scheduler that rejects solely for
// feasibility, never to save energy.
type AcceptAll struct{}

// Name implements Solver.
func (AcceptAll) Name() string { return "ACCEPT-ALL" }

// Solve implements Solver.
func (AcceptAll) Solve(in Instance) (Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	its := slices.Clone(ctx.items)
	// Shed the cheapest penalty per freed cycle first.
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*float64(its[b].c) < its[b].v*float64(its[a].c)
	})
	wTrue := int64(0)
	for _, it := range its {
		wTrue += it.c
	}
	acc := make(map[int]bool, len(its))
	for _, it := range its {
		acc[it.id] = true
	}
	for _, it := range its {
		if ctx.fits(float64(wTrue)) {
			break
		}
		delete(acc, it.id)
		wTrue -= it.c
	}
	if !ctx.fits(float64(wTrue)) {
		return Solution{}, fmt.Errorf("core: AcceptAll could not shed to feasibility")
	}
	ids := make([]int, 0, len(acc))
	for id := range acc {
		ids = append(ids, id)
	}
	return ctx.evaluate(ids)
}

// RejectAll is the degenerate anchor: admit nothing, pay every penalty.
type RejectAll struct{}

// Name implements Solver.
func (RejectAll) Name() string { return "REJECT-ALL" }

// Solve implements Solver.
func (RejectAll) Solve(in Instance) (Solution, error) {
	return Evaluate(in, nil)
}

// RandomAdmission mirrors the RAND reference of the paper family's plots:
// admit a random permutation greedily under the capacity constraint,
// repeat for Restarts trials, keep the best. Deterministic for a fixed
// Seed regardless of Workers: every trial draws from its own RNG seeded
// Seed+trial, and the winner is the lowest-numbered trial with the
// strictly smallest cost.
type RandomAdmission struct {
	Seed     int64
	Restarts int // 0 means 8
	// Workers bounds the trial worker pool; 0 means GOMAXPROCS, 1 forces
	// a serial run. Results are identical for every setting.
	Workers int
}

// Name implements Solver.
func (RandomAdmission) Name() string { return "RAND" }

// Solve implements Solver. Losing trials are costed with the surrogate
// energy curve (exact for homogeneous instances, where the effective and
// true workloads coincide) and only the winning trial is expanded into a
// full Solution by Evaluate; heterogeneous trials, whose surrogate
// underestimates the clamped true energy, are each costed exactly so the
// winner matches a trial-by-trial Evaluate selection.
func (r RandomAdmission) Solve(in Instance) (Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	restarts := r.Restarts
	if restarts == 0 {
		restarts = 8
	}
	its := ctx.items
	n := len(its)

	type trialResult struct {
		ids  []int
		cost float64
	}
	trials, err := conc.ForEach(restarts, r.Workers, func(trial int) (trialResult, error) {
		rng := rand.New(rand.NewSource(r.Seed + int64(trial)))
		perm := rng.Perm(n)
		accepted := make([]bool, n)
		var wTrue int64
		var wEff float64
		var ids []int
		base := ctx.surrogate(wEff)
		for _, pi := range perm {
			it := its[pi]
			if !ctx.fits(float64(wTrue + it.c)) {
				continue
			}
			marginal := ctx.surrogate(wEff+it.ce) - base
			if marginal < it.v {
				ids = append(ids, it.id)
				accepted[pi] = true
				wTrue += it.c
				wEff += it.ce
				base = ctx.surrogate(wEff)
			}
		}
		if ctx.hetero {
			sol, err := ctx.evaluate(ids)
			if err != nil {
				return trialResult{}, err
			}
			return trialResult{ids: ids, cost: sol.Cost}, nil
		}
		// Homogeneous: energy is a function of the true workload alone and
		// the penalty sum below accumulates in task order, exactly as
		// Evaluate would — the trial cost equals the evaluated cost.
		var penalty float64
		for i, it := range its {
			if !accepted[i] {
				penalty += it.v
			}
		}
		return trialResult{ids: ids, cost: ctx.energy(float64(wTrue)) + penalty}, nil
	})
	if err != nil {
		return Solution{}, err
	}

	bestTrial, bestCost := -1, math.Inf(1)
	for i, t := range trials {
		if t.cost < bestCost {
			bestTrial, bestCost = i, t.cost
		}
	}
	if bestTrial < 0 {
		return Solution{}, fmt.Errorf("core: RandomAdmission produced no solution")
	}
	return ctx.evaluate(trials[bestTrial].ids)
}
