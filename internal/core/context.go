package core

import (
	"fmt"
	"math"
	"slices"

	"dvsreject/internal/conc"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// evalCtx is the per-instance evaluation context every solver builds once
// per Solve and threads through its hot loops. It precomputes everything
// that is constant for the lifetime of one solve but that the Instance
// methods recompute per call:
//
//   - the capacity smax·D (Instance.Fits recomputes it on every
//     feasibility probe);
//   - the Heterogeneous() flag (an O(n) scan the seed code performed
//     inside every surrogateEnergy call, which made S-GREEDY's swap loop
//     O(n³) per iteration);
//   - the flattened items slice and an id→index map shared with Evaluate;
//   - the closed-form coefficients of the energy curve, so E(W) probes on
//     continuous-speed processors are a single math.Pow instead of a full
//     speed.Proc.Assign with its per-call validation and candidate
//     enumeration.
//
// Exactness contract: every ctx method reproduces the corresponding
// Instance method bit for bit (the fast energy path mirrors the float
// operation sequence of speed.Proc.Assign exactly), so solver decisions,
// tie-breaks and branch-and-bound node counts are unchanged by the
// caching. The context is immutable after construction and safe for
// concurrent use by parallel search workers; callers must not mutate
// items (sorting solvers clone it first).
type evalCtx struct {
	in       Instance
	items    []item      // instance order; treat as read-only
	idx      map[int]int // task ID → position in in.Tasks.Tasks
	idxGrown int         // largest instance idx has served (see init)

	// Struct-of-arrays mirror of items (same order, same values):
	// contiguous columns for the scan-heavy solver loops — penalty sums,
	// marginal-energy sweeps, per-trial admission passes — which walk one
	// or two of the three fields at a time and waste two thirds of every
	// cache line on the array-of-structs layout at n = 10⁴–10⁵. The
	// columns carry the identical floats; nothing arithmetic changes.
	colC  []int64   // true cycles (task.Columns)
	colCE []float64 // effective cycles ci·ρi^(1/α)
	colV  []float64 // rejection penalties (task.Columns)

	deadline float64
	capacity float64 // smax·D in true cycles
	capSlack float64 // capacity·(1+1e-9), the Fits acceptance threshold

	hetero bool // any task with a non-trivial power coefficient
	convex bool // surrogate energy curve is convex (strong B&B pruning)

	// fastEnergy marks instances whose energy curve has the closed
	// continuous-speed form below (Levels == nil, dormant disabled —
	// leakage is fine). Discrete-speed and dormant-enable processors fall
	// back to speed.Proc.Energy, still skipping the per-call capacity and
	// heterogeneity recomputation.
	fastEnergy bool
	smin, smax float64
	pind       float64 // static power Pind
	coeff      float64 // dynamic power coefficient
	alpha      float64 // dynamic power exponent
	idleTotal  float64 // energy of an entirely idle frame, Pind·D
	hetDenom   float64 // D^(α−1), the heterogeneous surrogate denominator

	// fastPow routes the α ∈ {2, 3} dynamic-power exponentiations through
	// integer multiplies instead of math.Pow. Opt-in via Instance.FastPow
	// only: the products differ from math.Pow in the last ulp on some
	// inputs, so the default path never takes it (a tolerance test, not
	// the bit-identity corpus, covers it).
	fastPow bool

	// discreteFast marks instances on discrete-ladder processors, whose
	// E(w) probes go through curve — the assignDiscrete mirror with the
	// per-level powers memoized (bit-identical on every probe). The memo
	// table comes from the ProcProfile when one is attached, otherwise it
	// is seeded per solve.
	discreteFast bool
	curve        speed.Curve
}

// newEvalCtx validates the instance and builds its evaluation context.
func newEvalCtx(in Instance) (*evalCtx, error) {
	c := &evalCtx{}
	if err := c.init(in); err != nil {
		return nil, err
	}
	return c, nil
}

// newPooledEvalCtx is newEvalCtx drawing the context (and its items slice
// and id→index map) from ctxPool; the caller must release() it after the
// Solution has been built, and must not let the Solution alias context
// state (evaluate never does).
func newPooledEvalCtx(in Instance) (*evalCtx, error) {
	c := ctxPool.Load().Get().(*evalCtx)
	if err := c.init(in); err != nil {
		ctxPool.Load().Put(c)
		return nil, err
	}
	return c, nil
}

// release returns a pooled context; c must not be used afterwards.
func (c *evalCtx) release() { ctxPool.Load().Put(c) }

// init validates the instance and (re)builds the context in place, reusing
// the items backing array and the id→index map across pool generations.
// Every field is assigned unconditionally, so a recycled context is
// indistinguishable from a fresh one. When the instance carries a matching
// ProcProfile, the processor re-validation and the processor-level
// derivation are taken from the profile; both paths assign bit-identical
// values.
func (c *evalCtx) init(in Instance) error {
	pp := in.procProfile
	if pp != nil && !pp.matches(in.Proc) {
		pp = nil
	}
	if err := in.Tasks.Validate(); err != nil {
		return err
	}
	if pp == nil {
		if err := in.Proc.Validate(); err != nil {
			return err
		}
	}
	hetero := in.Heterogeneous()
	if err := in.checkCombination(hetero); err != nil {
		return err
	}
	m := in.Proc.Model

	items := c.items[:0]
	alpha := m.Alpha
	cols := in.Tasks.AppendColumns(task.Columns{
		Cycles:    growI64(c.colC, len(in.Tasks.Tasks))[:0],
		Penalties: growF64(c.colV, len(in.Tasks.Tasks))[:0],
	})
	c.colC, c.colV = cols.Cycles, cols.Penalties
	colCE := growF64(c.colCE, len(in.Tasks.Tasks))[:0]
	for _, t := range in.Tasks.Tasks {
		it := item{id: t.ID, c: t.Cycles, v: t.Penalty}
		// math.Pow(1, y) is exactly 1 and x·1 is exactly x, so homogeneous
		// tasks skip the Pow call without changing a single bit.
		if pc := t.PowerCoeff(); pc == 1 {
			it.ce = float64(t.Cycles)
		} else {
			it.ce = float64(t.Cycles) * math.Pow(pc, 1/alpha)
		}
		items = append(items, it)
		colCE = append(colCE, it.ce)
	}
	c.colCE = colCE
	// Reuse the pooled index map only while its high-water size stays
	// near the current instance: clear() walks the whole bucket array, so
	// a map grown by one 100k-task solve would cost every later small
	// solve an O(100k) clear.
	if n := len(in.Tasks.Tasks); c.idx == nil || c.idxGrown > 4*n+1024 {
		c.idx = make(map[int]int, n)
		c.idxGrown = n
	} else {
		clear(c.idx)
		if n > c.idxGrown {
			c.idxGrown = n
		}
	}
	for i, t := range in.Tasks.Tasks {
		c.idx[t.ID] = i
	}

	c.in = in
	c.items = items
	c.deadline = in.Tasks.Deadline
	c.hetero = hetero
	if pp != nil {
		c.capacity = pp.maxSpeed * in.Tasks.Deadline // == in.Capacity()
		c.convex = pp.convex
		c.fastEnergy = pp.fastEnergy
		c.smin = pp.smin
		c.smax = pp.smax
		c.pind = pp.pind
		c.coeff = pp.coeff
		c.alpha = pp.alpha
	} else {
		c.capacity = in.Capacity()
		c.convex = in.convexEnergy()
		c.fastEnergy = in.Proc.Levels == nil && !in.Proc.DormantEnable
		c.smin = in.Proc.SMin
		c.smax = in.Proc.SMax
		c.pind = m.Static()
		c.coeff = m.Coeff
		c.alpha = m.Alpha
	}
	c.capSlack = c.capacity * (1 + 1e-9)
	c.idleTotal = c.pind * c.deadline
	c.hetDenom = math.Pow(c.deadline, c.alpha-1)
	c.fastPow = in.FastPow && (c.alpha == 2 || c.alpha == 3)
	c.discreteFast = in.Proc.Levels != nil
	if c.discreteFast {
		if pp != nil && pp.hasPd {
			c.curve = speed.NewCurveWithPd(in.Proc, c.deadline, pp.pd)
		} else {
			c.curve = speed.NewCurve(in.Proc, c.deadline)
		}
	} else {
		c.curve = speed.Curve{}
	}
	return nil
}

// fits reports whether a workload of w true cycles is schedulable;
// identical to Instance.Fits with the capacity cached.
func (c *evalCtx) fits(w float64) bool {
	return w <= c.capSlack
}

// energy returns E(w), the minimum energy of executing a homogeneous
// workload of w true cycles in one frame, +Inf when infeasible. On the
// fast path it mirrors speed.Proc.Assign's continuous, dormant-disable
// branch operation for operation (same checks, same clamping, same order
// of float arithmetic), so the result is bit-identical to
// Instance.energyOf.
func (c *evalCtx) energy(w float64) float64 {
	if !c.fastEnergy {
		if c.discreteFast {
			return c.curve.Energy(w)
		}
		return c.in.Proc.Energy(w, c.deadline)
	}
	// w != w catches NaN, w < 0 catches -Inf, the capacity check catches
	// +Inf — the same rejections speed.Proc.Assign makes, without the
	// math.IsNaN/IsInf calls.
	if w < 0 || w != w {
		return math.Inf(1)
	}
	if w > c.capSlack {
		return math.Inf(1)
	}
	if w == 0 {
		return c.idleTotal
	}
	// speed.Proc.assignContinuous, dormant-disable branch: run at the
	// slowest deadline- and hardware-feasible speed. The branches compute
	// the same values as the math.Min(math.Max(·)) clamp there — the
	// operands are never NaN and never signed zeros of opposite sign.
	s := w / c.deadline
	if s < c.smin {
		s = c.smin
	}
	if s > c.smax {
		s = c.smax
	}
	exec := w / s
	var dyn float64
	if s > 0 {
		dyn = c.coeff * c.pow(s)
	}
	return (c.pind+dyn)*exec + c.pind*(c.deadline-exec)
}

// pow is s^α — math.Pow on the default path, repeated multiplication when
// the instance opted into FastPow and α is the integer 2 or 3. The fast
// products can differ from math.Pow in the final ulp, which is why they
// are never the default.
func (c *evalCtx) pow(s float64) float64 {
	if c.fastPow {
		if c.alpha == 3 {
			return s * s * s
		}
		return s * s
	}
	return math.Pow(s, c.alpha)
}

// surrogate estimates the energy of an accepted set from its effective
// workload, as Instance.surrogateEnergy does, with the heterogeneity scan
// and the D^(α−1) power precomputed away.
func (c *evalCtx) surrogate(wEff float64) float64 {
	if !c.hetero {
		return c.energy(wEff)
	}
	return c.coeff * c.pow(wEff) / c.hetDenom
}

// evaluate builds the full Solution for an accepted ID set, exactly as the
// package-level Evaluate does, skipping only the instance re-validation
// (done once at context construction) and reusing the cached id→index map
// and heterogeneity flag.
func (c *evalCtx) evaluate(accepted []int) (Solution, error) {
	return evaluateIndexed(c.in, c.idx, c.hetero, accepted)
}

// minCostWorkload scans workloads 0..len(pen)−1 (pen[w] = minimum rejected
// penalty at accepted workload exactly w, +Inf when unreachable) for the
// level minimizing energy(w·scale) + pen[w], returning (-1, +Inf) when no
// level is feasible. It replaces the DP solvers' full-width energy sweep.
//
// When monotone is true (the energy curve is non-decreasing in w — always
// the case on the closed-form continuous curve, convex or not), two exact
// prunings apply without changing the selected argmin or its tie-breaks:
//
//   - dominance: a level whose penalty is no better than an already-scanned
//     cheaper-energy level can never win strictly, so only the strictly
//     decreasing penalty frontier is costed (the same frontier
//     ParetoFrontier keeps);
//   - monotone cut-off: once the energy alone reaches the incumbent cost,
//     no larger workload can strictly improve (penalties are ≥ 0), ending
//     the scan early.
//
// Together with the O(1) closed-form energy evaluation this turns the
// final scan from width × Assign into |frontier| × Pow. Non-monotone
// curves (dormant-enable break-even plateaus, discrete ladders) keep the
// exhaustive scan the seed code performed.
func minCostWorkload(pen []float64, energy func(float64) float64, scale float64, monotone bool) (int64, float64) {
	bestW, bestCost := int64(-1), math.Inf(1)
	frontier := math.Inf(1) // min penalty among costed levels so far
	for w := 0; w < len(pen); w++ {
		fw := pen[w]
		if math.IsInf(fw, 1) {
			continue
		}
		if monotone && fw >= frontier {
			continue // dominated by an earlier, cheaper-energy level
		}
		frontier = fw
		e := energy(float64(w) * scale)
		if c := e + fw; c < bestCost {
			bestCost, bestW = c, int64(w)
		}
		if monotone && e >= bestCost && bestW >= 0 {
			break // energy alone already matches the incumbent
		}
	}
	return bestW, bestCost
}

// minCostWorkloadParallel is minCostWorkload for monotone energy curves
// with the frontier compaction chunked over the conc pool. Each chunk
// collects its local strictly-decreasing penalty frontier — a superset of
// the global frontier restricted to the chunk — without touching the
// energy curve; a serial finishing pass then walks the candidates in
// ascending workload order applying exactly the serial scan's global
// frontier filter, energy costing, incumbent update and monotone cut-off.
// The argmin and its tie-breaks therefore match minCostWorkload exactly;
// only the O(width) penalty-row sweep runs concurrently.
func minCostWorkloadParallel(pen []float64, energy func(float64) float64, scale float64, workers int) (int64, float64) {
	n := len(pen)
	chunk := (n + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	nch := (n + chunk - 1) / chunk
	cands, _ := conc.ForEach(nch, workers, func(k int) ([]int64, error) {
		lo, hi := k*chunk, min((k+1)*chunk, n)
		var out []int64
		frontier := math.Inf(1)
		for w := lo; w < hi; w++ {
			fw := pen[w]
			if math.IsInf(fw, 1) || fw >= frontier {
				continue
			}
			frontier = fw
			out = append(out, int64(w))
		}
		return out, nil
	})

	bestW, bestCost := int64(-1), math.Inf(1)
	frontier := math.Inf(1)
	for _, ws := range cands {
		for _, w := range ws {
			fw := pen[w]
			if fw >= frontier {
				continue
			}
			frontier = fw
			e := energy(float64(w) * scale)
			if c := e + fw; c < bestCost {
				bestCost, bestW = c, w
			}
			if e >= bestCost && bestW >= 0 {
				return bestW, bestCost
			}
		}
	}
	return bestW, bestCost
}

// evaluateIndexed is the shared implementation of Evaluate and
// evalCtx.evaluate: it assumes the instance has been validated and that
// idx maps every task ID to its position in in.Tasks.Tasks.
func evaluateIndexed(in Instance, idx map[int]int, hetero bool, accepted []int) (Solution, error) {
	// The membership set is a pooled position-indexed flag slice instead of
	// the seed's per-call map: idx maps every (unique, validated) task ID to
	// its position, so flags[idx[id]] is the same predicate as the map
	// lookup. Scratch comes from a global pool per call — evaluateIndexed
	// runs concurrently on parallel search workers — and is zeroed before
	// release.
	sc := evalScratchPool.Load().Get().(*evalScratch)
	n := len(in.Tasks.Tasks)
	sc.flags = growBool(sc.flags, n)
	flags := sc.flags
	release := func() {
		clear(flags)
		evalScratchPool.Load().Put(sc)
	}
	for _, id := range accepted {
		p, ok := idx[id]
		if !ok {
			release()
			return Solution{}, fmt.Errorf("core: accepted ID %d not in task set", id)
		}
		if flags[p] {
			release()
			return Solution{}, fmt.Errorf("core: accepted ID %d listed twice", id)
		}
		flags[p] = true
	}

	sol := Solution{}
	// Output slices are right-sized up front (their lengths are implied by
	// the validated accepted set); empty sets keep the seed's nil slices.
	if len(accepted) > 0 {
		sol.Accepted = make([]int, 0, len(accepted))
	}
	if n > len(accepted) {
		sol.Rejected = make([]int, 0, n-len(accepted))
	}
	cycles := growI64(sc.cycles, len(accepted))[:0]
	rhos := growF64(sc.rhos, len(accepted))[:0]
	for i, t := range in.Tasks.Tasks {
		if flags[i] {
			sol.Accepted = append(sol.Accepted, t.ID)
			cycles = append(cycles, t.Cycles)
			rhos = append(rhos, t.PowerCoeff())
		} else {
			sol.Rejected = append(sol.Rejected, t.ID)
			sol.Penalty += t.Penalty
		}
	}
	sc.cycles, sc.rhos = cycles, rhos
	defer release()
	slices.Sort(sol.Accepted)
	slices.Sort(sol.Rejected)

	if hetero {
		h, err := speed.AssignHeterogeneous(in.Proc.Model, cycles, rhos, in.Tasks.Deadline, in.Proc.SMax)
		if err != nil {
			return Solution{}, err
		}
		sol.PerTaskSpeeds = h.Speeds
		sol.Energy = h.Energy
		var busy float64
		for _, t := range h.Times {
			busy += t
		}
		sol.Assignment = speed.Assignment{Total: h.Energy, ExecEnergy: h.Energy}
		if len(h.Times) > 0 {
			sol.Assignment.LoTime = busy
		}
	} else {
		var w int64
		for _, c := range cycles {
			w += c
		}
		a, err := in.Proc.Assign(float64(w), in.Tasks.Deadline)
		if err != nil {
			return Solution{}, err
		}
		sol.Assignment = a
		sol.Energy = a.Total
	}
	sol.Cost = sol.Energy + sol.Penalty
	return sol, nil
}
