// Fuzz target for the warm-start DP: arbitrary instances are solved cold
// with checkpoint recording, then pushed through deterministic near-miss
// mutations (append, tail/mid edits, removal) on both the read-only and
// evolving warm paths. Every warm result must be bit-identical to a cold
// solve of the mutant and pass the EDF oracle replay; a decline (ok=false)
// is always legal — callers fall back to a cold solve — but a wrong answer
// never is.
package core_test

import (
	"fmt"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// deltaMutant is one derived near-miss instance.
type deltaMutant struct {
	name string
	in   core.Instance
}

// deltaMutants derives the mutation battery from an instance: the shapes
// the serve delta index and the online replanner actually produce.
func deltaMutants(in core.Instance) []deltaMutant {
	ts := in.Tasks.Tasks
	n := len(ts)
	if n == 0 {
		return nil
	}
	clone := func() []task.Task { return append([]task.Task(nil), ts...) }
	with := func(name string, mut []task.Task) deltaMutant {
		c := in
		c.Tasks.Tasks = mut
		return deltaMutant{name: name, in: c}
	}
	maxID := 0
	for _, t := range ts {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	out := []deltaMutant{
		with("append", append(clone(), task.Task{ID: maxID + 1, Cycles: ts[0].Cycles, Penalty: ts[0].Penalty})),
	}
	m := clone()
	m[n-1].Penalty = m[n-1].Penalty/2 + 0.25
	out = append(out, with("tail-penalty", m))
	m = clone()
	m[n/2].Cycles++
	out = append(out, with("mid-cycles", m))
	if n > 1 {
		out = append(out, with("remove-tail", clone()[:n-1]))
	}
	return out
}

// checkDeltaSolve records a checkpointed parent solve and pins every
// mutant's warm result — read-only shared-parent first, then a short
// evolving chain — against a from-scratch solve.
func checkDeltaSolve(in core.Instance) error {
	d := core.DP{CheckpointStride: 4}
	var st core.DPState
	base, _, err := d.SolveCheckpoint(in, &st)
	if err != nil {
		if st.Valid() {
			return fmt.Errorf("delta: cold solve failed (%v) but left a valid state", err)
		}
		return nil
	}
	if err := verify.CheckSolution(in, base); err != nil {
		return fmt.Errorf("delta: parent solve: %w", err)
	}

	// Read-only warm starts: each mutant shares the same parent state.
	for _, m := range deltaMutants(in) {
		want, errC := (core.DP{}).Solve(m.in)
		sol, _, ok, errW := d.SolveFrom(&st, m.in, false)
		if (errC == nil) != (errW == nil) {
			return fmt.Errorf("delta %s: cold err=%v, warm err=%v", m.name, errC, errW)
		}
		if errC != nil || !ok {
			continue
		}
		if err := verify.BitIdenticalSolutions(sol, want); err != nil {
			return fmt.Errorf("delta %s: %w", m.name, err)
		}
		if err := verify.CheckSolution(m.in, sol); err != nil {
			return fmt.Errorf("delta %s: oracle: %w", m.name, err)
		}
	}

	// Evolving chain: each accepted mutant becomes the next base, the way
	// the online replanner drives the state.
	var est core.DPState
	if _, _, err := d.SolveCheckpoint(in, &est); err != nil {
		return nil
	}
	cur := in
	for step := 0; step < 3; step++ {
		muts := deltaMutants(cur)
		if len(muts) == 0 {
			break
		}
		m := muts[step%len(muts)]
		want, errC := (core.DP{}).Solve(m.in)
		sol, _, ok, errW := d.SolveFrom(&est, m.in, true)
		if (errC == nil) != (errW == nil) {
			return fmt.Errorf("delta evolve %s: cold err=%v, warm err=%v", m.name, errC, errW)
		}
		if errC != nil {
			return nil
		}
		if !ok {
			if _, _, err := d.SolveCheckpoint(m.in, &est); err != nil {
				return nil
			}
		} else if err := verify.BitIdenticalSolutions(sol, want); err != nil {
			return fmt.Errorf("delta evolve %s: %w", m.name, err)
		}
		cur = m.in
	}
	return nil
}

// FuzzDeltaSolve decodes arbitrary bytes into an instance and checks the
// incremental warm-start battery: warm ≡ cold, bit for bit, under the
// mutation shapes the serve cache and online replanner generate.
func FuzzDeltaSolve(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		if err := checkDeltaSolve(in); err != nil {
			failShrunk(t, in, err, checkDeltaSolve)
		}
	})
}
