package core

import (
	"fmt"
	"math"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Periodic task rejection reduces exactly to the frame-based problem.
//
// Accepting a set A of periodic tasks under EDF on one DVS processor is
// feasible at constant speed s iff Σ_A ci/pi ≤ s (Liu & Layland, scaled by
// the speed). Over the hyper-period L the accepted work is Σ_A ci·L/pi
// cycles and a rejected task τi forfeits its per-job penalty L/pi times.
// Substituting D → L, ci → ci·L/pi and vi → vi·L/pi therefore turns the
// periodic instance into a frame instance with identical cost structure —
// any frame solver applies unchanged. The EDF simulator in
// internal/sched/edf verifies the resulting schedules in tests.

// PeriodicInstance is a periodic rejection problem.
type PeriodicInstance struct {
	Tasks task.PeriodicSet
	Proc  speed.Proc
}

// PeriodicSolution reports a solved periodic instance. Costs are per
// hyper-period.
type PeriodicSolution struct {
	Accepted []int
	Rejected []int
	Speed    float64 // constant EDF execution speed for the accepted set
	Energy   float64 // energy per hyper-period
	Penalty  float64 // rejected-job penalties per hyper-period
	Cost     float64
	Hyper    int64 // hyper-period length
}

// Reduce converts the periodic instance to its equivalent frame instance.
// The frame task IDs coincide with the periodic task IDs.
func (pi PeriodicInstance) Reduce() (Instance, error) {
	if err := pi.Tasks.Validate(); err != nil {
		return Instance{}, err
	}
	if err := pi.Proc.Validate(); err != nil {
		return Instance{}, err
	}
	l, err := pi.Tasks.Hyperperiod()
	if err != nil {
		return Instance{}, err
	}
	in := Instance{
		Tasks: task.Set{Deadline: float64(l)},
		Proc:  pi.Proc,
	}
	for _, t := range pi.Tasks.Tasks {
		jobs := l / t.Period
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{
			ID:      t.ID,
			Cycles:  t.Cycles * jobs,
			Penalty: t.Penalty * float64(jobs),
			Rho:     t.Rho,
		})
	}
	return in, in.Validate()
}

// SolvePeriodic reduces, solves with the given frame solver, and maps the
// solution back to the periodic view.
func SolvePeriodic(s Solver, pi PeriodicInstance) (PeriodicSolution, error) {
	in, err := pi.Reduce()
	if err != nil {
		return PeriodicSolution{}, err
	}
	sol, err := s.Solve(in)
	if err != nil {
		return PeriodicSolution{}, fmt.Errorf("core: periodic solve with %s: %w", s.Name(), err)
	}
	l := int64(in.Tasks.Deadline)

	ps := PeriodicSolution{
		Accepted: sol.Accepted,
		Rejected: sol.Rejected,
		Energy:   sol.Energy,
		Penalty:  sol.Penalty,
		Cost:     sol.Cost,
		Hyper:    l,
	}
	// The constant EDF speed is the accepted cycle utilization, clamped to
	// the assignment's execution speed when the critical speed or smin
	// forces faster-than-utilization execution.
	var u float64
	accSet := sol.AcceptedSet()
	for _, t := range pi.Tasks.Tasks {
		if accSet[t.ID] {
			u += t.Utilization()
		}
	}
	ps.Speed = math.Max(u, sol.Assignment.LoSpeed)
	return ps, nil
}
