package core

import (
	"errors"
	"fmt"
	"math"

	"dvsreject/internal/conc"
)

// DP is the exact pseudo-polynomial solver: dynamic programming over the
// integer accepted workload. State f[w] is the minimum rejection penalty
// over decisions for the first i tasks whose accepted cycles total exactly
// w; the answer is min over w ≤ smax·D of E(w) + f[w]. Exact for every
// homogeneous instance flavour (the energy curve may be non-convex), in
// O(n·smax·D) time and O(n·smax·D) bits for reconstruction.
//
// The table is evaluated by the double-buffered row kernel (dpkernel.go)
// over only the reachable prefix of each row — at row i no workload above
// min(smax·D, Σ_{j≤i} c_j) is attainable, so the cells beyond it stay +Inf
// untouched. Both are exact reformulations of the seed's in-place
// descending update; outputs are byte-identical.
type DP struct {
	// MaxStates bounds the table work: dense solves count n·(capacity+1)
	// grid cells (0 means DefaultMaxDPStates), sparse solves count actual
	// row breakpoints (0 means DefaultMaxSparseCells).
	MaxStates int64
	// Workers > 1 chunks each table row (and the monotone final scan)
	// across that many goroutines on the shared conc pool, with
	// word-aligned chunks and a deterministic reduction, so results stay
	// byte-identical to the serial evaluation. 0 or 1 keeps the serial
	// kernel — the default, since the rows are memory-bound and only
	// very wide tables amortize the per-row fan-out.
	Workers int
	// CheckpointStride is the row-snapshot interval of SolveCheckpoint:
	// a warm re-solve restarts at the last checkpoint at or before the
	// first divergent task, so smaller strides cut the warm-up replay at
	// the price of stride-proportional snapshot memory in the DPState.
	// 0 means DefaultCheckpointStride. Solve results never depend on it.
	CheckpointStride int
	// Sparse selects the row representation (dpsparse.go): SparseAuto
	// (the default) keeps the dense kernel for every grid the state
	// budget admits and switches to sparse dominance-pruned rows beyond
	// it; SparseOn forces sparse rows; SparseOff forces dense. All modes
	// return bit-identical solutions on instances they can solve.
	Sparse SparseMode
}

func (d DP) checkpointStride() int {
	if d.CheckpointStride > 0 {
		return d.CheckpointStride
	}
	return DefaultCheckpointStride
}

// Name implements Solver.
func (d DP) Name() string {
	if d.Sparse == SparseOn {
		return "DP-SPARSE"
	}
	return "DP"
}

// DefaultMaxDPStates is DP's work limit (n·capacity table cells).
const DefaultMaxDPStates = int64(1) << 28

// DPStats reports the table work of one rejection-DP run. Serial and
// row-parallel evaluations of the same instance report identical counts
// (the differential tests pin this alongside byte-identical outputs).
type DPStats struct {
	Rows  int64 // item rows processed
	Cells int64 // reachable dense table cells evaluated across all rows
	// SparseCells counts the breakpoints kept across sparse rows; zero on
	// a pure dense solve. DenseRows counts the rows the dense kernel
	// evaluated — equal to Rows on a dense solve, zero on a pure sparse
	// one, and in between when the adaptive switchover fired mid-run.
	SparseCells int64
	DenseRows   int64
}

// Solve implements Solver. It returns ErrHeterogeneous for instances with
// per-task power coefficients: their energy is not a function of a single
// integer workload.
func (d DP) Solve(in Instance) (Solution, error) {
	sol, _, err := d.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the table work counters.
func (d DP) SolveStats(in Instance) (Solution, DPStats, error) {
	return d.solve(in, nil)
}

// solve is the shared implementation of SolveStats and SolveCheckpoint:
// rec, when non-nil, records the checkpointed row state of the run (see
// dpstate.go). Recording never changes a bit of the solution — it only
// copies row snapshots and the finished take table out of the solve.
func (d DP) solve(in Instance, rec *DPState) (Solution, DPStats, error) {
	if rec != nil {
		rec.valid = false
	}
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return Solution{}, DPStats{}, err
	}
	defer ctx.release()
	if ctx.hetero {
		return Solution{}, DPStats{}, ErrHeterogeneous
	}
	cap64 := int64(math.Floor(ctx.capacity * (1 + 1e-12)))
	limit := d.MaxStates
	if limit == 0 {
		limit = DefaultMaxDPStates
	}
	if d.Sparse == SparseOn || (d.Sparse == SparseAuto && len(ctx.items) > 0 && cap64 >= 0 &&
		(cap64 >= limit || int64(len(ctx.items))*(cap64+1) > limit)) {
		return d.solveSparse(ctx, cap64, rec)
	}
	if work := int64(len(ctx.items)) * (cap64 + 1); work > limit {
		return Solution{}, DPStats{}, denseStatesErr(work, len(ctx.items), cap64, limit)
	}

	var onRow func(rows int, f []float64, reach int64)
	if rec != nil {
		rec.begin(cap64, d.checkpointStride(), len(ctx.items))
		onRow = rec.noteRow
	}
	sc := getDPScratch()
	defer putDPScratch(sc)
	accepted, st, err := rejectionDP(ctx.items, cap64, ctx.energy, 1, ctx.fastEnergy, d.Workers, sc, onRow)
	if err != nil {
		return Solution{}, st, err
	}
	if rec != nil {
		rec.finish(ctx.items, sc.words)
	}
	sol, err := ctx.evaluate(accepted)
	return sol, st, err
}

// ErrStateBudget is wrapped by every DP refusal caused by the state
// budget — a dense grid over MaxStates or a sparse row set past its
// breakpoint limit. Callers with a fallback tier (the serve engine's
// anytime route) match it with errors.Is; the full message still carries
// the numbers that produced the refusal.
var ErrStateBudget = errors.New("state budget exceeded")

// denseStatesErr reports a dense grid over the state budget with the
// numbers that produced it and the ways out.
func denseStatesErr(work int64, n int, cap64, limit int64) error {
	return fmt.Errorf("core: DP needs %d states (%d tasks × %d workload levels), over the limit %d (%w): use ApproxDP for an approximate solve, or sparse rows (DP.Sparse = SparseOn, solver %q) for an exact one", work, n, cap64+1, limit, ErrStateBudget, "DP-SPARSE")
}

// takeTable is the reconstruction bitset: one bit per (task, workload)
// cell, 8× smaller than a [][]bool and friendlier to the cache on large
// grids.
type takeTable struct {
	words []uint64
	width int64 // words per task row
}

func newTakeTable(words []uint64, n int, width int64) takeTable {
	perRow := (width + 63) / 64
	need := int64(n) * perRow
	if words == nil || int64(cap(words)) < need {
		words = make([]uint64, need)
	} else {
		words = words[:need]
		clear(words)
	}
	return takeTable{words: words, width: perRow}
}

func (t takeTable) set(i int, w int64) {
	t.words[int64(i)*t.width+w/64] |= 1 << uint(w%64)
}

func (t takeTable) get(i int, w int64) bool {
	return t.words[int64(i)*t.width+w/64]&(1<<uint(w%64)) != 0
}

// row returns task i's word slice, cell-indexed by w>>6.
func (t takeTable) row(i int) []uint64 {
	return t.words[int64(i)*t.width : (int64(i)+1)*t.width]
}

// rejectionDP solves min energy(scale·w) + Σ rejected v over subsets with
// Σ item.c ≤ cap64. Callers pass items whose c field is already expressed
// in DP grid units; scale converts grid units back to true cycles for the
// energy evaluation (1 for the exact DP). monotone declares the energy
// curve non-decreasing in w, unlocking the pruned final scan of
// minCostWorkload; pass false for curves with dormant break-evens or
// discrete ladders. workers > 1 chunks rows and the monotone final scan;
// any setting returns byte-identical results. It returns the accepted IDs.
//
// onRow, when non-nil, observes the finished row buffer after each item:
// rows is the number of items folded in so far and f[0:reach+1] holds the
// finite prefix (cells above reach are untouched +Inf). The checkpoint
// recorder (dpstate.go) snapshots here; f must not be retained.
func rejectionDP(its []item, cap64 int64, energy func(float64) float64, scale float64, monotone bool, workers int, sc *dpScratch, onRow func(rows int, f []float64, reach int64)) ([]int, DPStats, error) {
	var st DPStats
	if cap64 < 0 {
		return nil, st, fmt.Errorf("core: negative DP capacity %d", cap64)
	}
	n := len(its)
	width := cap64 + 1
	if workers < 1 {
		workers = 1
	}

	// Double-buffered rows from the caller's scratch; the Inf refill and
	// the zeroed bitset put reused buffers in exactly the state fresh
	// make() calls had them. Cells at or above a row's reachable bound are
	// never written in either buffer, so they keep this +Inf for the final
	// scan.
	prev := growF64(sc.f, int(width))
	sc.f = prev
	cur := growF64(sc.f2, int(width))
	sc.f2 = cur
	for w := range prev {
		prev[w] = math.Inf(1)
	}
	for w := range cur {
		cur[w] = math.Inf(1)
	}
	prev[0] = 0

	// take records, per reachable workload, whether task i is accepted on
	// the optimal path reaching it.
	take := newTakeTable(sc.words, n, width)
	sc.words = take.words

	var reach int64 // largest attainable workload after the rows so far
	for i, it := range its {
		st.Rows++
		st.DenseRows++
		c, v := it.c, it.v
		if c > cap64 {
			// Can never be accepted: pay the penalty on every path.
			hi := reach + 1
			dpRejectRange(prev, cur, v, 0, hi)
			st.Cells += hi
			prev, cur = cur, prev
			if onRow != nil {
				onRow(i+1, prev, reach)
			}
			continue
		}
		reach = min(reach+c, cap64)
		hi := reach + 1
		rowBits := take.row(i)
		if workers > 1 && hi >= int64(64*workers) {
			// Word-aligned chunks own disjoint take words and disjoint cur
			// cells; every read is from prev, so chunk order is
			// unobservable and the row equals its serial evaluation.
			chunk := (hi + int64(workers) - 1) / int64(workers)
			chunk = (chunk + 63) &^ 63
			nch := int((hi + chunk - 1) / chunk)
			conc.ForEach(nch, workers, func(k int) (struct{}, error) {
				lo := int64(k) * chunk
				dpRowRange(prev, cur, rowBits, c, v, lo, min(lo+chunk, hi))
				return struct{}{}, nil
			})
		} else {
			dpRowRange(prev, cur, rowBits, c, v, 0, hi)
		}
		st.Cells += hi
		prev, cur = cur, prev
		if onRow != nil {
			onRow(i+1, prev, reach)
		}
	}
	f := prev

	// Pick the best workload level.
	var bestW int64
	if workers > 1 && monotone {
		bestW, _ = minCostWorkloadParallel(f, energy, scale, workers)
	} else {
		bestW, _ = minCostWorkload(f, energy, scale, monotone)
	}
	if bestW < 0 {
		return nil, st, fmt.Errorf("core: DP found no feasible workload")
	}

	// Reconstruct.
	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= 0; i-- {
		if take.get(i, w) {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		return nil, st, fmt.Errorf("core: DP reconstruction left workload %d", w)
	}
	return ids, st, nil
}
