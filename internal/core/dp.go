package core

import (
	"fmt"
	"math"
)

// DP is the exact pseudo-polynomial solver: dynamic programming over the
// integer accepted workload. State f[w] is the minimum rejection penalty
// over decisions for the first i tasks whose accepted cycles total exactly
// w; the answer is min over w ≤ smax·D of E(w) + f[w]. Exact for every
// homogeneous instance flavour (the energy curve may be non-convex), in
// O(n·smax·D) time and O(n·smax·D) bits for reconstruction.
type DP struct {
	// MaxStates bounds n·(capacity+1); 0 means the default of 2^28.
	MaxStates int64
}

// Name implements Solver.
func (DP) Name() string { return "DP" }

// DefaultMaxDPStates is DP's work limit (n·capacity table cells).
const DefaultMaxDPStates = int64(1) << 28

// Solve implements Solver. It returns ErrHeterogeneous for instances with
// per-task power coefficients: their energy is not a function of a single
// integer workload.
func (d DP) Solve(in Instance) (Solution, error) {
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	defer ctx.release()
	if ctx.hetero {
		return Solution{}, ErrHeterogeneous
	}
	cap64 := int64(math.Floor(ctx.capacity * (1 + 1e-12)))
	limit := d.MaxStates
	if limit == 0 {
		limit = DefaultMaxDPStates
	}
	if work := int64(len(ctx.items)) * (cap64 + 1); work > limit {
		return Solution{}, fmt.Errorf("core: DP needs %d states, over the limit %d (use ApproxDP)", work, limit)
	}

	sc := getDPScratch()
	defer putDPScratch(sc)
	accepted, err := rejectionDP(ctx.items, cap64, ctx.energy, 1, ctx.fastEnergy, sc)
	if err != nil {
		return Solution{}, err
	}
	return ctx.evaluate(accepted)
}

// takeTable is the reconstruction bitset: one bit per (task, workload)
// cell, 8× smaller than a [][]bool and friendlier to the cache on large
// grids.
type takeTable struct {
	words []uint64
	width int64 // cells per task row
}

func newTakeTable(words []uint64, n int, width int64) takeTable {
	perRow := (width + 63) / 64
	need := int64(n) * perRow
	if words == nil || int64(cap(words)) < need {
		words = make([]uint64, need)
	} else {
		words = words[:need]
		clear(words)
	}
	return takeTable{words: words, width: perRow}
}

func (t takeTable) set(i int, w int64) {
	t.words[int64(i)*t.width+w/64] |= 1 << uint(w%64)
}

func (t takeTable) get(i int, w int64) bool {
	return t.words[int64(i)*t.width+w/64]&(1<<uint(w%64)) != 0
}

// rejectionDP solves min energy(scale·w) + Σ rejected v over subsets with
// Σ item.c ≤ cap64. Callers pass items whose c field is already expressed
// in DP grid units; scale converts grid units back to true cycles for the
// energy evaluation (1 for the exact DP). monotone declares the energy
// curve non-decreasing in w, unlocking the pruned final scan of
// minCostWorkload; pass false for curves with dormant break-evens or
// discrete ladders. It returns the accepted IDs.
func rejectionDP(its []item, cap64 int64, energy func(float64) float64, scale float64, monotone bool, sc *dpScratch) ([]int, error) {
	if cap64 < 0 {
		return nil, fmt.Errorf("core: negative DP capacity %d", cap64)
	}
	n := len(its)
	width := cap64 + 1

	// Table state comes from the caller's scratch; the Inf refill and the
	// zeroed bitset put reused buffers in exactly the state fresh make()
	// calls had them.
	f := growF64(sc.f, int(width))
	sc.f = f
	for w := range f {
		f[w] = math.Inf(1)
	}
	f[0] = 0

	// take records, per reachable workload, whether task i is accepted on
	// the optimal path reaching it.
	take := newTakeTable(sc.words, n, width)
	sc.words = take.words

	for i, it := range its {
		c := it.c
		if c > cap64 {
			// Can never be accepted: pay the penalty on every path.
			for w := int64(0); w < width; w++ {
				if !math.IsInf(f[w], 1) {
					f[w] += it.v
				}
			}
			continue
		}
		// Descend so each task is used at most once.
		for w := cap64; w >= 0; w-- {
			rejectCost := math.Inf(1)
			if !math.IsInf(f[w], 1) {
				rejectCost = f[w] + it.v
			}
			acceptCost := math.Inf(1)
			if w >= c && !math.IsInf(f[w-c], 1) {
				acceptCost = f[w-c]
			}
			if acceptCost < rejectCost {
				f[w] = acceptCost
				take.set(i, w)
			} else {
				f[w] = rejectCost
			}
		}
	}

	// Pick the best workload level.
	bestW, _ := minCostWorkload(f, energy, scale, monotone)
	if bestW < 0 {
		return nil, fmt.Errorf("core: DP found no feasible workload")
	}

	// Reconstruct.
	ids := sc.ids[:0]
	w := bestW
	for i := n - 1; i >= 0; i-- {
		if take.get(i, w) {
			ids = append(ids, its[i].id)
			w -= its[i].c
		}
	}
	sc.ids = ids
	if w != 0 {
		return nil, fmt.Errorf("core: DP reconstruction left workload %d", w)
	}
	return ids, nil
}
