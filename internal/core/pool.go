package core

import (
	"sync"
	"sync/atomic"
)

// This file holds the sync.Pools behind the DP-family solvers' steady-state
// allocation behavior. One DP solve is a handful of large, short-lived
// buffers (the f row, the reconstruction bitset, the evaluation context's
// items slice and id→index map, the Solution-building scratch); pooling
// them makes repeated solves — the shape every experiment sweep has —
// amortized allocation-free without changing a single float operation.
//
// Two rules keep the pooling exact and race-free:
//
//   - buffers are acquired per call and released before the Solution is
//     returned, never stored on shared structures: evalCtx is read
//     concurrently by parallel search workers, so evaluate scratch comes
//     from the global pools, not from the context;
//   - every buffer is re-initialized to the state the seed code's fresh
//     make() gave it (Inf-filled, zeroed, or length-reset) before use, so
//     reuse is observationally identical to allocation.

// dpScratch bundles the table state of one rejection-DP solve.
type dpScratch struct {
	f      []float64  // DP row buffer, one cell per workload level
	f2     []float64  // second row buffer (the kernel double-buffers rows)
	words  []uint64   // takeTable backing
	ids    []int      // reconstruction output
	scaled []item     // ApproxDP's rounded item view
	g      []int64    // ApproxDPPenalty's row, one cell per penalty level
	take   []bool     // ApproxDPPenalty's reconstruction table, flattened
	spRec  sparseRows // sparse per-row breakpoint record (unrecorded sparse solves)
	spF    []float64  // sparse row value buffers (the merge double-buffers values;
	spF2   []float64  // workloads live in the spRec arenas)
}

// The pools sit behind atomic pointers so PurgeSolverScratch can swap in
// empty replacements: a pool itself has no "drop everything now" operation,
// but an unreferenced pool is collected — buffers and all — at the next GC.
var dpScratchPool = newPoolPtr(func() any { return &dpScratch{} })

func getDPScratch() *dpScratch   { return dpScratchPool.Load().Get().(*dpScratch) }
func putDPScratch(sc *dpScratch) { dpScratchPool.Load().Put(sc) }

// evalScratch is the per-call working set of evaluateIndexed.
type evalScratch struct {
	flags  []bool // accepted marker per task position
	cycles []int64
	rhos   []float64
}

var evalScratchPool = newPoolPtr(func() any { return &evalScratch{} })

// ctxPool recycles evaluation contexts (their items slice and id→index
// map) for the solvers that release them.
var ctxPool = newPoolPtr(func() any { return &evalCtx{} })

func newPoolPtr(newFn func() any) *atomic.Pointer[sync.Pool] {
	p := &atomic.Pointer[sync.Pool]{}
	p.Store(&sync.Pool{New: newFn})
	return p
}

// PurgeSolverScratch detaches every pooled solver buffer — DP rows and
// bitsets, evaluation contexts, evaluate scratch — so the next GC frees
// them. One n=10⁵ solve grows the pooled buffers to match and they stay
// that size for every later solve; long-lived callers (the serve engine
// after a jumbo request) purge so one large instance stops taxing the
// small ones that follow. In-flight solves keep working: a buffer checked
// out before the purge is simply returned to the fresh pool afterwards.
func PurgeSolverScratch() {
	dpScratchPool.Store(&sync.Pool{New: func() any { return &dpScratch{} }})
	evalScratchPool.Store(&sync.Pool{New: func() any { return &evalScratch{} }})
	ctxPool.Store(&sync.Pool{New: func() any { return &evalCtx{} }})
}

// growF64 returns a length-n slice reusing buf's backing when it is large
// enough. Contents are unspecified; callers re-initialize.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growItems(buf []item, n int) []item {
	if cap(buf) < n {
		return make([]item, n)
	}
	return buf[:n]
}
