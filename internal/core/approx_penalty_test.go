package core

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

func TestApproxDPPenaltyInvalidEps(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	for _, eps := range []float64{0, -1, math.NaN()} {
		if _, err := (ApproxDPPenalty{Eps: eps}).Solve(in); err == nil {
			t.Errorf("ε = %v accepted", eps)
		}
	}
}

func TestApproxDPPenaltyRejectsHeterogeneous(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1, Rho: 2})
	if _, err := (ApproxDPPenalty{Eps: 0.1}).Solve(in); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("error = %v, want ErrHeterogeneous", err)
	}
}

func TestApproxDPPenaltyGuarantee(t *testing.T) {
	// cost ≤ OPT + ε·UB on randomized instances, never below OPT.
	for _, eps := range []float64{0.05, 0.1, 0.3, 0.7} {
		for seed := int64(0); seed < 10; seed++ {
			for _, load := range []float64{0.8, 1.5, 2.5} {
				in := randomInstance(t, seed, 20, load, testProcs["ideal-cubic"], gen.PenaltyModel(seed%3))
				opt, err := (DP{}).Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				ub, err := (GreedyDensity{}).Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				sol, err := (ApproxDPPenalty{Eps: eps}).Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				if sol.Cost < opt.Cost-1e-6*(1+opt.Cost) {
					t.Errorf("ε=%v seed=%d: %v beats OPT %v", eps, seed, sol.Cost, opt.Cost)
				}
				if bound := opt.Cost + eps*ub.Cost; sol.Cost > bound+1e-6*(1+bound) {
					t.Errorf("ε=%v seed=%d load=%v: cost %v breaches OPT+ε·UB = %v", eps, seed, load, sol.Cost, bound)
				}
			}
		}
	}
}

func TestApproxDPPenaltySmallEpsNearExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(t, seed, 14, 1.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
		opt, err := (DP{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := (ApproxDPPenalty{Eps: 0.001}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if rel := (sol.Cost - opt.Cost) / (1 + opt.Cost); rel > 0.002 {
			t.Errorf("seed %d: ε=0.001 cost %v too far from OPT %v", seed, sol.Cost, opt.Cost)
		}
	}
}

func TestApproxDPPenaltyMagnitudeIndependence(t *testing.T) {
	// The table size is O(n²/ε) regardless of cycle magnitudes — an
	// instance whose capacity DP would need billions of cells must still
	// solve under a modest state budget.
	in := Instance{
		Tasks: task.Set{Deadline: 1e8},
		Proc:  testProcs["ideal-cubic"],
	}
	for i := 0; i < 12; i++ {
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{
			ID: i, Cycles: 9_000_000 + int64(i)*1_000_003, Penalty: float64(1+i) * 1e10,
		})
	}
	budget := int64(100_000)
	if _, err := (DP{MaxStates: budget, Sparse: SparseOff}).Solve(in); err == nil {
		t.Fatal("capacity DP unexpectedly fit the budget")
	}
	sol, err := (ApproxDPPenalty{Eps: 0.2, MaxStates: budget}).Solve(in)
	if err != nil {
		t.Fatalf("penalty-axis scheme failed under the same budget: %v", err)
	}
	// Huge penalties: everything feasible should be accepted.
	if len(sol.Accepted) == 0 {
		t.Error("no tasks accepted despite huge penalties")
	}
}

func TestApproxDPPenaltyZeroPenalties(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 3, Penalty: 0},
		task.Task{ID: 2, Cycles: 3, Penalty: 0},
	)
	sol, err := (ApproxDPPenalty{Eps: 0.1}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Errorf("cost = %v, want 0 (reject everything free)", sol.Cost)
	}
}

func TestApproxDPPenaltyStateLimit(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 1},
	)
	if _, err := (ApproxDPPenalty{Eps: 0.0001, MaxStates: 100}).Solve(in); err == nil {
		t.Error("state limit not enforced")
	}
}

func TestApproxDPPenaltyUnfittableHugePenaltyTask(t *testing.T) {
	// Regression: a task larger than the capacity with an enormous penalty
	// must not collapse the scheme to its fallback — the other tasks still
	// deserve an (essentially) exact decision.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 50, Penalty: 1e6}, // cannot fit, huge penalty
		task.Task{ID: 2, Cycles: 4, Penalty: 1},    // worth accepting: E(4) = 0.64 < 1
		task.Task{ID: 3, Cycles: 4, Penalty: 0.1},  // worth rejecting
	)
	opt, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (ApproxDPPenalty{Eps: 0.05}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// ε·UB here is dominated by the 1e6 penalty, so the raw envelope is
	// loose; the point of the regression is that the DECISION structure
	// matches the optimum exactly.
	if got, want := sol.AcceptedSet(), opt.AcceptedSet(); got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Errorf("accepted %v, optimum accepted %v", sol.Accepted, opt.Accepted)
	}
	if math.Abs(sol.Cost-opt.Cost) > 1e-9*(1+opt.Cost) {
		t.Errorf("cost %v != OPT %v", sol.Cost, opt.Cost)
	}
}
