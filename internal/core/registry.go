package core

import (
	"fmt"
	"sync"
)

// SolverSpec parameterizes solver construction by experiment-table name.
// The zero value reproduces the historical defaults of the package facade's
// SolverByName: ε = 0.1, seed = 1, and the solver's own worker default
// (GOMAXPROCS for the parallel searchers).
type SolverSpec struct {
	// Eps is the approximation accuracy knob for APPROX/APPROX-V;
	// 0 means 0.1.
	Eps float64
	// Seed seeds the randomized baseline; 0 means 1.
	Seed int64
	// Workers bounds the parallel fan-out of the solvers that search
	// concurrently (OPT's subtree pool, RAND's restart pool). 0 keeps the
	// solver default (GOMAXPROCS); 1 forces serial search.
	Workers int
}

// withDefaults fills zero fields with the documented defaults.
func (sp SolverSpec) withDefaults() SolverSpec {
	if sp.Eps == 0 {
		sp.Eps = 0.1
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// extSolvers holds solver constructors registered from outside the
// package (see RegisterSolver). Registration happens in init functions,
// but the mutex keeps the map safe against late registrations racing
// concurrent NewSolver calls.
var (
	extMu      sync.RWMutex
	extSolvers map[string]func(SolverSpec) (Solver, error)
)

// RegisterSolver adds a named constructor to the NewSolver registry, for
// solver tiers that live outside this package but must resolve through
// the same name table the facade, the CLIs and the serving layer share
// (internal/anytime registers "ANYTIME" this way — core cannot import it
// without a cycle). Registering a name the built-in switch already owns
// has no effect: built-ins win. Meant to be called from init.
func RegisterSolver(name string, ctor func(SolverSpec) (Solver, error)) {
	extMu.Lock()
	defer extMu.Unlock()
	if extSolvers == nil {
		extSolvers = make(map[string]func(SolverSpec) (Solver, error))
	}
	extSolvers[name] = ctor
}

// NewSolver resolves the experiment-table names ("DP", "DP-SPARSE",
// "OPT", "GREEDY", "S-GREEDY", "ROUNDING", "ACCEPT-ALL", "REJECT-ALL",
// "RAND", "APPROX", "APPROX-V", plus registered extensions such as
// "ANYTIME") to a solver configured by spec. It is the single registry
// the package facade, the CLIs and the serving layer share.
func NewSolver(name string, spec SolverSpec) (Solver, error) {
	spec = spec.withDefaults()
	switch name {
	case "DP":
		return DP{}, nil
	case "DP-SPARSE":
		return DP{Sparse: SparseOn}, nil
	case "OPT":
		return Exhaustive{Workers: spec.Workers}, nil
	case "GREEDY":
		return GreedyDensity{}, nil
	case "S-GREEDY":
		return GreedyMarginal{}, nil
	case "ACCEPT-ALL":
		return AcceptAll{}, nil
	case "REJECT-ALL":
		return RejectAll{}, nil
	case "RAND":
		return RandomAdmission{Seed: spec.Seed, Workers: spec.Workers}, nil
	case "APPROX":
		return ApproxDP{Eps: spec.Eps}, nil
	case "ROUNDING":
		return Rounding{}, nil
	case "APPROX-V":
		return ApproxDPPenalty{Eps: spec.Eps}, nil
	default:
		extMu.RLock()
		ctor := extSolvers[name]
		extMu.RUnlock()
		if ctor != nil {
			return ctor(spec)
		}
		return nil, fmt.Errorf("core: unknown solver %q", name)
	}
}
