package core

import "fmt"

// SolverSpec parameterizes solver construction by experiment-table name.
// The zero value reproduces the historical defaults of the package facade's
// SolverByName: ε = 0.1, seed = 1, and the solver's own worker default
// (GOMAXPROCS for the parallel searchers).
type SolverSpec struct {
	// Eps is the approximation accuracy knob for APPROX/APPROX-V;
	// 0 means 0.1.
	Eps float64
	// Seed seeds the randomized baseline; 0 means 1.
	Seed int64
	// Workers bounds the parallel fan-out of the solvers that search
	// concurrently (OPT's subtree pool, RAND's restart pool). 0 keeps the
	// solver default (GOMAXPROCS); 1 forces serial search.
	Workers int
}

// withDefaults fills zero fields with the documented defaults.
func (sp SolverSpec) withDefaults() SolverSpec {
	if sp.Eps == 0 {
		sp.Eps = 0.1
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// NewSolver resolves the experiment-table names ("DP", "DP-SPARSE",
// "OPT", "GREEDY", "S-GREEDY", "ROUNDING", "ACCEPT-ALL", "REJECT-ALL",
// "RAND", "APPROX", "APPROX-V") to a solver configured by spec. It is the
// single registry the package facade, the CLIs and the serving layer
// share.
func NewSolver(name string, spec SolverSpec) (Solver, error) {
	spec = spec.withDefaults()
	switch name {
	case "DP":
		return DP{}, nil
	case "DP-SPARSE":
		return DP{Sparse: SparseOn}, nil
	case "OPT":
		return Exhaustive{Workers: spec.Workers}, nil
	case "GREEDY":
		return GreedyDensity{}, nil
	case "S-GREEDY":
		return GreedyMarginal{}, nil
	case "ACCEPT-ALL":
		return AcceptAll{}, nil
	case "REJECT-ALL":
		return RejectAll{}, nil
	case "RAND":
		return RandomAdmission{Seed: spec.Seed, Workers: spec.Workers}, nil
	case "APPROX":
		return ApproxDP{Eps: spec.Eps}, nil
	case "ROUNDING":
		return Rounding{}, nil
	case "APPROX-V":
		return ApproxDPPenalty{Eps: spec.Eps}, nil
	default:
		return nil, fmt.Errorf("core: unknown solver %q", name)
	}
}
