package core

import (
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

func TestRoundingName(t *testing.T) {
	if (Rounding{}).Name() != "ROUNDING" {
		t.Error("name changed")
	}
}

func TestRoundingNeverBeatsOPTAndStaysClose(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, load := range []float64{0.8, 1.5, 2.5} {
			in := randomInstance(t, seed, 20, load, testProcs["ideal-cubic"], gen.PenaltyModel(seed%3))
			opt, err := (DP{}).Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := (Rounding{}).Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Cost < opt.Cost-1e-6*(1+opt.Cost) {
				t.Errorf("seed %d load %v: ROUNDING %v beats OPT %v", seed, load, sol.Cost, opt.Cost)
			}
			if sol.Cost > 1.5*opt.Cost+1e-9 {
				t.Errorf("seed %d load %v: ROUNDING %v is > 1.5× OPT %v", seed, load, sol.Cost, opt.Cost)
			}
		}
	}
}

func TestRoundingCeilCandidateWins(t *testing.T) {
	// A huge-penalty task whose marginal energy at its insertion point
	// exceeds its penalty (so the fractional scan breaks on it), yet
	// accepting it fully is still optimal thanks to the anchor/ceil
	// candidates.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 2, Penalty: 10},  // density 5, accepted first
		task.Task{ID: 2, Cycles: 8, Penalty: 20},  // density 2.5; marginal E(10)−E(2) = 9.92 < 20 → accepted
		task.Task{ID: 3, Cycles: 5, Penalty: 0.1}, // never worth it
	)
	sol, err := (Rounding{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-opt.Cost) > 1e-9 {
		t.Errorf("ROUNDING %v != OPT %v", sol.Cost, opt.Cost)
	}
}

func TestRoundingSingleTaskAnchor(t *testing.T) {
	// Adversarial for plain density greedy: many small high-density tasks
	// fill the capacity, but one huge task carries nearly all the penalty.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 9, Penalty: 50}, // the whale: density 5.6
	)
	for i := 2; i <= 6; i++ {
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{ID: i, Cycles: 2, Penalty: 12}) // density 6
	}
	// Density order admits the five small tasks first (w = 10, capacity
	// full), leaving no room for the whale: cost E(10) + 50 = 60. Optimal
	// keeps the whale alone: E(9) + 5·12 = 7.29 + 60 = 67.29? No — E(10) =
	// 10; 10 + 50 = 60 vs 67.29: smalls win here. Make the whale's penalty
	// dominate: 100.
	in.Tasks.Tasks[0].Penalty = 100
	opt, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (Rounding{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-opt.Cost) > 1e-9 {
		t.Errorf("ROUNDING %v != OPT %v on the whale instance", sol.Cost, opt.Cost)
	}
	if got := sol.AcceptedSet(); !got[1] {
		t.Errorf("ROUNDING did not keep the whale: %v", sol.Accepted)
	}
}

func TestExhaustiveWeakBoundSameOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(t, seed, 12, 1.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
		strong, sn, err := (Exhaustive{}).SolveStats(in)
		if err != nil {
			t.Fatal(err)
		}
		weak, wn, err := (Exhaustive{WeakBoundOnly: true}).SolveStats(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(strong.Cost-weak.Cost) > 1e-9 {
			t.Errorf("seed %d: bound ablation changed the optimum: %v vs %v", seed, strong.Cost, weak.Cost)
		}
		if sn > wn {
			t.Errorf("seed %d: strong bound explored MORE nodes (%d > %d)", seed, sn, wn)
		}
	}
}

func TestGreedyMarginalSwapAblation(t *testing.T) {
	// Toggle-only search must never beat the full neighbourhood.
	for seed := int64(0); seed < 10; seed++ {
		in := randomInstance(t, seed, 16, 1.5, testProcs["ideal-cubic"], gen.PenaltyProportional)
		full, err := (GreedyMarginal{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		toggles, err := (GreedyMarginal{DisableSwaps: true}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if full.Cost > toggles.Cost+1e-9 {
			t.Errorf("seed %d: swaps made the search worse: %v > %v", seed, full.Cost, toggles.Cost)
		}
	}
}
