package core

import (
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// solutionsBitEqual compares two solutions field by field, floats by their
// bit patterns: the profile hook promises observationally identical solves,
// not merely numerically close ones.
func solutionsBitEqual(a, b Solution) bool {
	intsEq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	floatsEq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	bits := math.Float64bits
	return intsEq(a.Accepted, b.Accepted) && intsEq(a.Rejected, b.Rejected) &&
		floatsEq(a.PerTaskSpeeds, b.PerTaskSpeeds) &&
		bits(a.Energy) == bits(b.Energy) && bits(a.Penalty) == bits(b.Penalty) &&
		bits(a.Cost) == bits(b.Cost) &&
		a.Assignment == b.Assignment
}

// TestProcProfileBitIdentity solves the same instances with and without an
// attached ProcProfile across every processor flavour and solver family;
// the results must match bit for bit.
func TestProcProfileBitIdentity(t *testing.T) {
	for name, proc := range testProcs {
		t.Run(name, func(t *testing.T) {
			pp, err := NewProcProfile(proc)
			if err != nil {
				t.Fatal(err)
			}
			solvers := []Solver{DP{}, Exhaustive{Workers: 1}, GreedyDensity{}, GreedyMarginal{}, ApproxDP{Eps: 0.2}}
			for seed := int64(0); seed < 6; seed++ {
				in := randomInstance(t, seed, 10, 0.8+0.3*float64(seed), proc, gen.PenaltyModel(seed%3))
				pin := in.WithProcProfile(pp)
				for _, s := range solvers {
					plain, errPlain := s.Solve(in)
					prof, errProf := s.Solve(pin)
					if (errPlain == nil) != (errProf == nil) {
						t.Fatalf("seed %d %s: error divergence: %v vs %v", seed, s.Name(), errPlain, errProf)
					}
					if errPlain != nil {
						continue
					}
					if !solutionsBitEqual(plain, prof) {
						t.Errorf("seed %d %s: profile solve diverged:\nplain %+v\nprof  %+v",
							seed, s.Name(), plain, prof)
					}
				}
			}
		})
	}
}

// TestProcProfileMismatchIgnored attaches a profile built from a different
// processor; the solve must fall back to the full derivation and still be
// identical to the plain solve.
func TestProcProfileMismatchIgnored(t *testing.T) {
	procA := speed.Proc{Model: power.Cubic(), SMax: 1}
	procB := speed.Proc{Model: power.XScale(), SMax: 1}
	ppB, err := NewProcProfile(procB)
	if err != nil {
		t.Fatal(err)
	}
	in := randomInstance(t, 3, 12, 1.5, procA, gen.PenaltyUniform)
	plain, err := DP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := DP{}.Solve(in.WithProcProfile(ppB))
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsBitEqual(plain, mis) {
		t.Errorf("mismatched profile changed the solve:\nplain %+v\nmis   %+v", plain, mis)
	}
}

// TestProcProfileRejectsInvalidProc mirrors speed.Proc.Validate.
func TestProcProfileRejectsInvalidProc(t *testing.T) {
	if _, err := NewProcProfile(speed.Proc{Model: power.Cubic(), SMax: -1}); err == nil {
		t.Fatal("NewProcProfile accepted an invalid processor")
	}
}

// TestProcProfileStillValidatesTasks ensures the profile path keeps the
// per-solve task-set validation.
func TestProcProfileStillValidatesTasks(t *testing.T) {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	pp, err := NewProcProfile(proc)
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{
		Tasks: task.Set{Deadline: 200, Tasks: []task.Task{
			{ID: 1, Cycles: 10, Penalty: 1},
			{ID: 1, Cycles: 20, Penalty: 2}, // duplicate ID
		}},
		Proc: proc,
	}.WithProcProfile(pp)
	if _, err := (DP{}).Solve(in); err == nil {
		t.Fatal("duplicate task IDs passed validation under a profile")
	}
}
