package core

import (
	"fmt"
	"math"
)

// DefaultLowerBoundStates bounds the floor-scaled grid CostLowerBound
// builds: small enough that the bound costs well under a millisecond at
// any capacity width, wide enough that the rounding loss stays a fraction
// of a percent on realistic instances.
const DefaultLowerBoundStates = 1 << 20

// CostLowerBound returns a certified lower bound on the optimal
// MIN-COST-REJECT cost of in, by solving a floor-rounded relaxation
// exactly. Cycles are scaled down by an integer k chosen so the DP grid
// fits maxStates (≤ 0 means DefaultLowerBoundStates); where ApproxDP
// rounds cycles UP to stay feasible (an upper-bound scheme), this rounds
// them DOWN:
//
//	Σᵢ∈A ⌊cᵢ/k⌋ ≤ Σᵢ∈A cᵢ/k ≤ C/k for every truly feasible A,
//
// so every feasible accepted set stays feasible in the scaled grid, and
// with E monotone, E(k·w̃(A)) + Σ_rej v ≤ E(w(A)) + Σ_rej v — the scaled
// optimum never exceeds the true cost of any feasible set, hence is ≤ OPT.
// Tasks whose scaled cycles floor to zero are accepted for free in the
// relaxation (they contribute neither energy nor penalty), which only
// lowers the bound further. With k = 1 the bound equals the exact DP
// optimum.
//
// Monotonicity is required: instances on discrete speed ladders or with
// dormancy enabled (whose E(w) can dip) are refused, as are heterogeneous
// instances.
func CostLowerBound(in Instance, maxStates int64) (float64, error) {
	if maxStates <= 0 {
		maxStates = DefaultLowerBoundStates
	}
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return 0, err
	}
	defer ctx.release()
	if ctx.hetero {
		return 0, ErrHeterogeneous
	}
	if !ctx.fastEnergy {
		return 0, fmt.Errorf("core: cost lower bound needs a monotone energy curve (continuous speeds, dormancy disabled)")
	}
	cap64 := int64(math.Floor(ctx.capacity * (1 + 1e-12)))
	if cap64 < 0 {
		return 0, fmt.Errorf("core: negative DP capacity %d", cap64)
	}
	n := int64(len(ctx.items))
	if n == 0 {
		return ctx.energy(0), nil
	}
	per := maxStates/n - 1
	if per < 1 {
		return 0, fmt.Errorf("core: lower-bound state budget %d too small for %d tasks", maxStates, n)
	}
	k := int64(1)
	if cap64 > per {
		k = (cap64 + per - 1) / per
	}

	// Floor-scale the items, dropping the free (⌊c/k⌋ = 0) ones.
	its := make([]item, 0, n)
	for _, it := range ctx.items {
		sc := it.c / k
		if sc == 0 {
			continue
		}
		its = append(its, item{id: it.id, c: sc, ce: float64(sc), v: it.v})
	}
	if len(its) == 0 {
		return ctx.energy(0), nil
	}

	sc := getDPScratch()
	defer putDPScratch(sc)
	accepted, _, err := rejectionDP(its, cap64/k, ctx.energy, float64(k), true, 1, sc, nil)
	if err != nil {
		return 0, err
	}
	acc := make(map[int]bool, len(accepted))
	for _, id := range accepted {
		acc[id] = true
	}
	var wScaled int64
	var pen float64
	for _, it := range its {
		if acc[it.id] {
			wScaled += it.c
		} else {
			pen += it.v
		}
	}
	return ctx.energy(float64(wScaled*k)) + pen, nil
}
