package core

import (
	"slices"
	"sort"
)

// Rounding is the relaxation-and-round solver, the construction style of
// the paper family's E-GREEDY/ROUNDING algorithms.
//
// Relaxation: allow fractional acceptance xᵢ ∈ [0,1]. For the convex
// energy curve the fractional optimum has a water-filling form: process
// tasks in non-increasing penalty density vᵢ/c̃ᵢ and accept fully while the
// density exceeds the marginal energy; the first task whose density falls
// below the marginal energy at its insertion point is accepted
// fractionally, and everything after it is rejected (densities decrease
// while the marginal energy increases).
//
// Rounding: evaluate the integral candidates around the fractional break —
// the floor (fully-accepted prefix), the ceil (prefix plus the whole break
// task, capacity permitting), and the repair (prefix plus the single best
// remaining task that fits) — and return the cheapest, re-costed exactly.
type Rounding struct{}

// Name implements Solver.
func (Rounding) Name() string { return "ROUNDING" }

// Solve implements Solver.
func (Rounding) Solve(in Instance) (Solution, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return Solution{}, err
	}
	its := slices.Clone(ctx.items)
	sort.SliceStable(its, func(a, b int) bool {
		return its[a].v*its[b].ce > its[b].v*its[a].ce
	})

	// Fractional scan.
	var floor []int
	var wTrue int64
	var wEff float64
	breakIdx := -1
	base := ctx.surrogate(wEff)
	for i, it := range its {
		if !ctx.fits(float64(wTrue + it.c)) {
			continue
		}
		marginal := ctx.surrogate(wEff+it.ce) - base
		if marginal < it.v {
			floor = append(floor, it.id)
			wTrue += it.c
			wEff += it.ce
			base = ctx.surrogate(wEff)
			continue
		}
		// First density below the marginal energy: the fractional break.
		breakIdx = i
		break
	}

	best, err := ctx.evaluate(floor)
	if err != nil {
		return Solution{}, err
	}
	try := func(ids []int) error {
		sol, err := ctx.evaluate(ids)
		if err != nil {
			return nil // over-capacity candidate: skip
		}
		if sol.Cost < best.Cost {
			best = sol
		}
		return nil
	}

	if breakIdx >= 0 {
		// Ceil: round the break task up.
		if ctx.fits(float64(wTrue + its[breakIdx].c)) {
			if err := try(append(append([]int{}, floor...), its[breakIdx].id)); err != nil {
				return Solution{}, err
			}
		}
		// Repair: the single best remaining task that fits and pays for
		// itself the most (largest v − marginal).
		repair, gain := -1, 0.0
		for _, it := range its[breakIdx:] {
			if !ctx.fits(float64(wTrue + it.c)) {
				continue
			}
			g := it.v - (ctx.surrogate(wEff+it.ce) - base)
			if g > gain {
				gain, repair = g, it.id
			}
		}
		if repair >= 0 {
			if err := try(append(append([]int{}, floor...), repair)); err != nil {
				return Solution{}, err
			}
		}
	}

	// The min-knapsack-style anchor: each single task alone (cheap, and
	// protects the ratio when one huge-penalty task dominates).
	for _, it := range its {
		if !ctx.fits(float64(it.c)) {
			continue
		}
		if err := try([]int{it.id}); err != nil {
			return Solution{}, err
		}
	}
	return best, nil
}
