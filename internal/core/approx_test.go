package core

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

func TestApproxDPInvalidEps(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	for _, eps := range []float64{0, -0.5, math.NaN()} {
		if _, err := (ApproxDP{Eps: eps}).Solve(in); err == nil {
			t.Errorf("ε = %v accepted", eps)
		}
	}
}

func TestApproxDPRejectsHeterogeneous(t *testing.T) {
	in := cubicInstance(task.Task{ID: 1, Cycles: 4, Penalty: 1, Rho: 2})
	if _, err := (ApproxDP{Eps: 0.1}).Solve(in); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("error = %v, want ErrHeterogeneous", err)
	}
}

func TestApproxDPTinyEpsIsExact(t *testing.T) {
	// With ε small enough that K = 1, the scheme degenerates to the exact
	// DP on every instance.
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(t, seed, 12, 1.5, testProcs["ideal-cubic"], gen.PenaltyUniform)
		exact, err := DP{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := (ApproxDP{Eps: 1e-9}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.Cost-approx.Cost) > 1e-9 {
			t.Errorf("seed %d: ApproxDP(ε→0) cost %v != DP cost %v", seed, approx.Cost, exact.Cost)
		}
	}
}

func TestApproxDPQualityEnvelope(t *testing.T) {
	// The scheme's documented envelope: cost ≤ (1+5ε)·OPT + ε·E(C).
	for _, eps := range []float64{0.05, 0.1, 0.25, 0.5} {
		for seed := int64(0); seed < 10; seed++ {
			for _, load := range []float64{0.8, 1.5, 2.5} {
				in := randomInstance(t, seed, 20, load, testProcs["ideal-cubic"], gen.PenaltyModel(seed%3))
				opt, err := DP{}.Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				approx, err := (ApproxDP{Eps: eps}).Solve(in)
				if err != nil {
					t.Fatal(err)
				}
				bound := (1+5*eps)*opt.Cost + eps*in.energyOf(in.Capacity())
				if approx.Cost > bound+1e-9 {
					t.Errorf("ε=%v seed=%d load=%v: cost %v breaches envelope %v (OPT %v)",
						eps, seed, load, approx.Cost, bound, opt.Cost)
				}
				if approx.Cost < opt.Cost-1e-9 {
					t.Errorf("ε=%v seed=%d: ApproxDP beat the optimum: %v < %v", eps, seed, approx.Cost, opt.Cost)
				}
			}
		}
	}
}

func TestApproxDPFeasibilityConservative(t *testing.T) {
	// Even at coarse ε, the accepted set must fit the true capacity.
	for seed := int64(0); seed < 10; seed++ {
		in := randomInstance(t, seed, 25, 3.0, testProcs["ideal-cubic"], gen.PenaltyProportional)
		sol, err := (ApproxDP{Eps: 0.7}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		var w int64
		acc := sol.AcceptedSet()
		for _, tk := range in.Tasks.Tasks {
			if acc[tk.ID] {
				w += tk.Cycles
			}
		}
		if !in.Fits(float64(w)) {
			t.Errorf("seed %d: accepted workload %d exceeds capacity %v", seed, w, in.Capacity())
		}
	}
}

func TestApproxDPStateLimit(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 1},
	)
	if _, err := (ApproxDP{Eps: 0.01, MaxStates: 4}).Solve(in); err == nil {
		t.Error("state limit not enforced")
	}
}

func TestApproxDPShrinksTable(t *testing.T) {
	// A big-capacity instance that the exact DP would refuse under a tight
	// state budget must still be solvable by ApproxDP under the same
	// budget.
	in := Instance{
		Tasks: task.Set{Deadline: 1e6},
		Proc:  testProcs["ideal-cubic"],
	}
	for i := 0; i < 10; i++ {
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{ID: i, Cycles: 90000, Penalty: 5000})
	}
	budget := int64(100_000)
	if _, err := (DP{MaxStates: budget, Sparse: SparseOff}).Solve(in); err == nil {
		t.Fatal("exact DP unexpectedly fit the state budget")
	}
	if _, err := (ApproxDP{Eps: 0.2, MaxStates: budget}).Solve(in); err != nil {
		t.Errorf("ApproxDP under the same budget failed: %v", err)
	}
}
