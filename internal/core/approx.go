package core

import (
	"fmt"
	"math"
)

// ApproxDP is the capacity-rounding approximation scheme: run the
// rejection DP on cycles rounded up to multiples of K = ⌈ε·C/(n+1)⌉
// (C = smax·D), shrinking the table from O(n·C) to O(n²/ε) cells.
//
// Guarantees:
//
//   - Feasibility is conservative: rounding cycles UP means every set the
//     scheme accepts fits the true capacity.
//   - The reported cost is exact (the chosen set is re-costed by Evaluate),
//     so the scheme never under-reports.
//   - Quality: relative to the exact DP, the scheme loses (a) up to (n+1)K
//     ≤ ε·C of usable capacity, and (b) energy over-estimation of at most
//     E(w+(n+1)K)−E(w) when comparing candidate sets. For the polynomial
//     energy curve both effects vanish linearly in ε; the test suite
//     enforces cost ≤ (1+5ε)·OPT + ε·E(C) on randomized instances and the
//     E4 experiment reports the measured ratio, which is far tighter in
//     practice.
//
// ε must be positive; values small enough that K = 1 reproduce the exact
// DP bit-for-bit.
type ApproxDP struct {
	Eps       float64
	MaxStates int64 // as in DP; 0 means the default
	// Workers chunks the table rows as in DP.Workers; 0 or 1 is serial,
	// any setting returns byte-identical results.
	Workers int
}

// Name implements Solver.
func (a ApproxDP) Name() string { return fmt.Sprintf("ApproxDP(ε=%g)", a.Eps) }

// Solve implements Solver. Heterogeneous instances are rejected, as in DP.
func (a ApproxDP) Solve(in Instance) (Solution, error) {
	sol, _, err := a.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the table work counters.
func (a ApproxDP) SolveStats(in Instance) (Solution, DPStats, error) {
	ctx, err := newPooledEvalCtx(in)
	if err != nil {
		return Solution{}, DPStats{}, err
	}
	defer ctx.release()
	if ctx.hetero {
		return Solution{}, DPStats{}, ErrHeterogeneous
	}
	if a.Eps <= 0 || math.IsNaN(a.Eps) {
		return Solution{}, DPStats{}, fmt.Errorf("core: ApproxDP ε = %v, want > 0", a.Eps)
	}
	its := ctx.items
	n := len(its)
	capTrue := ctx.capacity

	k := int64(math.Floor(a.Eps * capTrue / float64(n+1)))
	if k < 1 {
		k = 1
	}
	sc := getDPScratch()
	defer putDPScratch(sc)
	scaled := growItems(sc.scaled, n)
	sc.scaled = scaled
	for i, it := range its {
		scaled[i] = item{
			id: it.id,
			c:  (it.c + k - 1) / k, // ceil: conservative feasibility
			v:  it.v,
		}
	}
	capScaled := int64(math.Floor(capTrue * (1 + 1e-12) / float64(k)))

	limit := a.MaxStates
	if limit == 0 {
		limit = DefaultMaxDPStates
	}
	if work := int64(n) * (capScaled + 1); work > limit {
		return Solution{}, DPStats{}, fmt.Errorf("core: ApproxDP needs %d states, over the limit %d (raise ε)", work, limit)
	}

	accepted, st, err := rejectionDP(scaled, capScaled, ctx.energy, float64(k), ctx.fastEnergy, a.Workers, sc, nil)
	if err != nil {
		return Solution{}, st, err
	}
	sol, err := ctx.evaluate(accepted)
	return sol, st, err
}
