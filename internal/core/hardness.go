package core

import (
	"fmt"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// This file carries the paper's hardness analysis as executable artifacts:
// the reduction from SUBSET-SUM that makes MIN-COST-REJECT NP-hard, in the
// form of an instance generator plus a decoder. The test suite drives
// known yes/no SUBSET-SUM instances through the exact solvers and checks
// the decoded answers, which pins down that the solvers genuinely optimize
// the NP-hard objective (and documents the reduction far more durably than
// prose).
//
// Reduction. Given positive integers a1..an and a target B, build a frame
// with deadline B on a unit-speed (smax = 1) cubic processor, one task per
// integer with ci = ai, and penalties vi = M·ai for a large common factor
// M. The capacity constraint is Σ accepted ai ≤ B, and because M dominates
// any energy difference, an optimal solution accepts a maximum-weight
// subset under the capacity — i.e. cost = E(w*) + M·(A − w*) where w* is
// the largest subset sum ≤ B and A = Σ ai. The subset sums to B exactly
// iff the optimal cost is at most E(B) + M·(A − B).

// SubsetSum is one SUBSET-SUM instance.
type SubsetSum struct {
	Items  []int64 // positive integers
	Target int64   // target sum B, 0 < B ≤ Σ Items
}

// Validate reports whether the instance is well-formed.
func (ss SubsetSum) Validate() error {
	if len(ss.Items) == 0 {
		return fmt.Errorf("core: subset-sum with no items")
	}
	var sum int64
	for i, a := range ss.Items {
		if a <= 0 {
			return fmt.Errorf("core: subset-sum item %d = %d, want > 0", i, a)
		}
		sum += a
	}
	if ss.Target <= 0 || ss.Target > sum {
		return fmt.Errorf("core: subset-sum target %d, want in (0, %d]", ss.Target, sum)
	}
	return nil
}

// hardnessPenaltyFactor dominates every possible energy difference within
// the gadget: energies live in [0, E(B)] = [0, B] on the cubic model with
// D = B and smax = 1, so M = 4·B per unit of workload is ample.
func (ss SubsetSum) hardnessPenaltyFactor() float64 {
	return 4 * float64(ss.Target)
}

// Reduce builds the MIN-COST-REJECT instance encoding the subset-sum
// question.
func (ss SubsetSum) Reduce() (Instance, error) {
	if err := ss.Validate(); err != nil {
		return Instance{}, err
	}
	m := ss.hardnessPenaltyFactor()
	in := Instance{
		Tasks: task.Set{Deadline: float64(ss.Target)},
		Proc:  speed.Proc{Model: power.Cubic(), SMax: 1},
	}
	for i, a := range ss.Items {
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{
			ID:      i,
			Cycles:  a,
			Penalty: m * float64(a),
		})
	}
	return in, in.Validate()
}

// Decode answers the subset-sum question from an optimal solution of the
// reduced instance: yes iff the optimum packs the capacity exactly.
func (ss SubsetSum) Decode(opt Solution) bool {
	m := ss.hardnessPenaltyFactor()
	var total int64
	for _, a := range ss.Items {
		total += a
	}
	b := float64(ss.Target)
	// E(B) on the cubic with D = B: B³/B² = B.
	threshold := b + m*(float64(total)-b)
	return opt.Cost <= threshold+costEps
}
