// Package core implements the paper's contribution: energy-efficient
// real-time task scheduling with task rejection on a DVS processor.
//
// Problem (MIN-COST-REJECT). Given frame-based tasks τi with worst-case
// execution cycles ci and rejection penalties vi, a common deadline D and a
// DVS processor, choose an accepted subset A and a feasible speed
// assignment minimizing
//
//	cost(A) = E(A) + Σ_{τi ∉ A} vi,
//
// where every accepted task completes by D. Because the minimum-energy
// execution of an accepted set depends only on its total (effective)
// workload W — run at the slowest deadline-feasible, critical-speed-clamped
// speed — the combinatorial core is selecting A under the capacity
// constraint W(A) ≤ smax·D against the convex energy curve E(W). The
// problem is NP-hard (see hardness.go); the package provides exact solvers
// (branch-and-bound, pseudo-polynomial dynamic programming), a
// capacity-rounding approximation scheme, and the greedy heuristics the
// paper family evaluates.
package core

import (
	"errors"
	"fmt"
	"math"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Instance is one solvable problem: a frame-based task set plus the
// processor it is scheduled on.
type Instance struct {
	Tasks task.Set
	Proc  speed.Proc

	// FastPow opts the solvers into integer-exponent fast paths for the
	// dynamic-power exponentiations when α ∈ {2, 3} (s·s·s instead of
	// math.Pow(s, 3)). The products agree with math.Pow to the last ulp
	// or two but are NOT bit-identical on all inputs, so the flag is off
	// by default and excluded from the bit-identity contract; a tolerance
	// test bounds the drift instead.
	FastPow bool

	// procProfile, when non-nil and matching Proc, lets the evaluation
	// context reuse the precomputed processor-level derivation. Attached
	// via WithProcProfile; never affects results.
	procProfile *ProcProfile
}

// ErrHeterogeneous is returned by solvers that require homogeneous power
// characteristics (all task Rho unset or 1).
var ErrHeterogeneous = errors.New("core: solver requires homogeneous power characteristics")

// Validate checks the task set, the processor, and their combination.
// Heterogeneous power coefficients are only supported on ideal
// (continuous-speed) leakage-free processors, matching the scope of the
// effective-cycles analysis.
func (in Instance) Validate() error {
	if err := in.Tasks.Validate(); err != nil {
		return err
	}
	if err := in.Proc.Validate(); err != nil {
		return err
	}
	return in.checkCombination(in.Heterogeneous())
}

// checkCombination enforces the task-set/processor compatibility rules
// given the precomputed heterogeneity flag. Shared by Validate and the
// evaluation-context init (which computes the flag once for both the check
// and the context).
func (in Instance) checkCombination(hetero bool) error {
	if !hetero {
		return nil
	}
	if in.Proc.Levels != nil {
		return fmt.Errorf("core: heterogeneous power characteristics require a continuous-speed processor")
	}
	if in.Proc.Model.Static() != 0 || in.Proc.DormantEnable {
		return fmt.Errorf("core: heterogeneous power characteristics require a leakage-free processor")
	}
	return nil
}

// Heterogeneous reports whether any task carries a non-trivial power
// coefficient.
func (in Instance) Heterogeneous() bool {
	for _, t := range in.Tasks.Tasks {
		if c := t.PowerCoeff(); c != 1 {
			return true
		}
	}
	return false
}

// Capacity returns the largest schedulable workload smax·D in true cycles.
func (in Instance) Capacity() float64 {
	return in.Proc.Capacity(in.Tasks.Deadline)
}

// Solution is a solved instance: the admission decision, the speed
// assignment for the accepted set, and the cost breakdown.
type Solution struct {
	Accepted []int // accepted task IDs, ascending
	Rejected []int // rejected task IDs, ascending

	Assignment speed.Assignment // speed assignment of the accepted workload
	// PerTaskSpeeds is set only for heterogeneous instances: the optimal
	// per-task execution speeds in Accepted order.
	PerTaskSpeeds []float64

	Energy  float64 // energy of executing the accepted set for one frame
	Penalty float64 // Σ penalties of rejected tasks
	Cost    float64 // Energy + Penalty
}

// AcceptedSet reports membership of a task ID in the accepted set.
func (s Solution) AcceptedSet() map[int]bool {
	m := make(map[int]bool, len(s.Accepted))
	for _, id := range s.Accepted {
		m[id] = true
	}
	return m
}

// Solver is one admission/scheduling algorithm.
type Solver interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Solve returns a feasible solution for the instance.
	Solve(in Instance) (Solution, error)
}

// Evaluate builds the full Solution for a given accepted ID set: it
// computes the optimal speed assignment of the accepted workload and the
// cost breakdown. It is the single source of truth all solvers (and tests)
// share. Accepting an over-capacity set returns speed.ErrInfeasible.
// Membership is checked against one O(n) id→index map instead of a linear
// ByID scan per accepted ID; solvers with a live evalCtx use the cached
// map via evalCtx.evaluate.
func Evaluate(in Instance, accepted []int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	return evaluateIndexed(in, in.Tasks.Index(), in.Heterogeneous(), accepted)
}

// energyOf returns the energy of a homogeneous workload of w cycles, +Inf
// when infeasible. It is the E(W) curve the combinatorial solvers optimize
// against.
func (in Instance) energyOf(w float64) float64 {
	return in.Proc.Energy(w, in.Tasks.Deadline)
}

// Fits reports whether a workload of w true cycles is schedulable.
func (in Instance) Fits(w float64) bool {
	return w <= in.Capacity()*(1+1e-9)
}

// Cost of rejecting every task (the RejectAll anchor); useful as an upper
// bound. An empty frame still pays the idle-frame energy.
func (in Instance) rejectAllCost() float64 {
	idle := in.energyOf(0)
	if math.IsInf(idle, 1) {
		idle = 0
	}
	return in.Tasks.TotalPenalty() + idle
}

// item is the compact per-task view the combinatorial solvers work on.
type item struct {
	id int
	c  int64   // true cycles (feasibility)
	ce float64 // effective cycles ci·ρi^(1/α) (energy)
	v  float64 // rejection penalty
}

// items flattens the instance's tasks.
func (in Instance) items() []item {
	its := make([]item, 0, len(in.Tasks.Tasks))
	alpha := in.Proc.Model.Alpha
	for _, t := range in.Tasks.Tasks {
		it := item{id: t.ID, c: t.Cycles, v: t.Penalty}
		it.ce = float64(t.Cycles) * math.Pow(t.PowerCoeff(), 1/alpha)
		its = append(its, it)
	}
	return its
}

// surrogateEnergy estimates the energy of an accepted set from its
// effective workload. For homogeneous instances this is the exact curve
// E(W); for heterogeneous ones it is the unconstrained closed form
// Coeff·W̃^α/D^(α−1), a lower bound on the true (speed-clamped) energy.
// Solvers use it for incremental decisions and pruning; final solutions are
// always re-costed exactly by Evaluate.
func (in Instance) surrogateEnergy(wEff float64) float64 {
	if !in.Heterogeneous() {
		return in.energyOf(wEff)
	}
	d := in.Tasks.Deadline
	return in.Proc.Model.Coeff * math.Pow(wEff, in.Proc.Model.Alpha) / math.Pow(d, in.Proc.Model.Alpha-1)
}

// convexEnergy reports whether the surrogate energy curve is convex, which
// enables the stronger branch-and-bound pruning term. It holds for
// continuous-speed leakage-free processors (E(W) = Coeff·W^α/D^(α−1), plus
// an smin plateau which preserves convexity).
func (in Instance) convexEnergy() bool {
	return in.Proc.Levels == nil && in.Proc.Model.Static() == 0 && !in.Proc.DormantEnable
}
