package core

import (
	"slices"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

// ProcProfile caches the processor-level part of building an evaluation
// context: the validation of the processor description and the derived
// constants (capacity speed, closed-form energy coefficients, convexity and
// fast-energy flags) that depend only on the processor, never on the task
// set. Batch callers solving many instances on one processor — the serving
// layer's Solve([]Request) groups requests exactly this way — build one
// profile per distinct processor and attach it to each Instance with
// WithProcProfile, so every per-request context init skips the repeated
// processor re-validation and re-derivation and pays only the per-task
// work.
//
// Exactness contract: a profile changes nothing observable. Every cached
// value is the same float the per-solve derivation computes (capacity is
// MaxSpeed()·D with the identical multiplication), and a profile that does
// not match the instance's processor is ignored, falling back to the full
// derivation. Profiles are immutable after construction and safe for
// concurrent use.
type ProcProfile struct {
	proc       speed.Proc // snapshot the profile was built from (Levels cloned)
	maxSpeed   float64
	convex     bool
	fastEnergy bool
	smin, smax float64
	pind       float64
	coeff      float64
	alpha      float64

	// pd memoizes the per-level dynamic power of discrete-ladder
	// processors (hasPd marks it built): the grid the DP final scans
	// query, seeded once via math.Pow so table hits are bit-identical.
	pd    power.PdTable
	hasPd bool
}

// NewProcProfile validates p and precomputes its evaluation constants.
func NewProcProfile(p speed.Proc) (*ProcProfile, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Levels = slices.Clone(p.Levels)
	m := p.Model
	pp := &ProcProfile{
		proc:       p,
		maxSpeed:   p.MaxSpeed(),
		convex:     p.Levels == nil && m.Static() == 0 && !p.DormantEnable,
		fastEnergy: p.Levels == nil && !p.DormantEnable,
		smin:       p.SMin,
		smax:       p.SMax,
		pind:       m.Static(),
		coeff:      m.Coeff,
		alpha:      m.Alpha,
	}
	if p.Levels != nil {
		pp.pd = power.NewPdTable(m, p.Levels)
		pp.hasPd = true
	}
	return pp, nil
}

// matches reports whether the profile was built from exactly this processor
// description. Float fields compare with ==, so any bit-level difference
// (which could change solver arithmetic) rejects the profile.
func (pp *ProcProfile) matches(p speed.Proc) bool {
	return pp.proc.Model == p.Model &&
		pp.proc.SMin == p.SMin && pp.proc.SMax == p.SMax &&
		pp.proc.DormantEnable == p.DormantEnable && pp.proc.Esw == p.Esw &&
		slices.Equal(pp.proc.Levels, p.Levels)
}

// WithProcProfile returns the instance carrying pp, so solvers reuse the
// profile's processor-level derivation instead of recomputing it. A profile
// built from a different processor than in.Proc is ignored (never wrong,
// just not faster). The zero-profile instance behaves exactly as before.
func (in Instance) WithProcProfile(pp *ProcProfile) Instance {
	in.procProfile = pp
	return in
}
