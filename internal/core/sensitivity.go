package core

import (
	"fmt"
	"math"

	"dvsreject/internal/task"
)

// BreakEven computes the admission threshold of one task: the penalty
// value at which it enters an optimal solution, everything else held
// fixed. Acceptance is monotone in the task's own penalty (raising vᵢ
// penalizes exactly the solutions that reject τᵢ, so once accepted it
// stays accepted), which makes the threshold well-defined; it is located
// by binary search over DP solves to within tol (default 1e-6 of the
// search range).
//
// The returned threshold prices the task's admission SLA: a penalty above
// it buys the task a slot in the optimal schedule, one below it does not.
// +Inf means the task can never be admitted (it does not fit the capacity
// at all); 0 means it is admitted even for free.
func BreakEven(in Instance, taskID int, tol float64) (float64, error) {
	ctx, err := newEvalCtx(in)
	if err != nil {
		return 0, err
	}
	if ctx.hetero {
		return 0, ErrHeterogeneous
	}
	pos, ok := ctx.idx[taskID]
	if !ok {
		return 0, fmt.Errorf("core: no task with ID %d", taskID)
	}
	target := in.Tasks.Tasks[pos]
	if !ctx.fits(float64(target.Cycles)) {
		return math.Inf(1), nil
	}

	acceptedAt := func(v float64) (bool, error) {
		probe := in
		probe.Tasks.Tasks = append([]task.Task(nil), in.Tasks.Tasks...)
		for i := range probe.Tasks.Tasks {
			if probe.Tasks.Tasks[i].ID == taskID {
				probe.Tasks.Tasks[i].Penalty = v
			}
		}
		sol, err := (DP{}).Solve(probe)
		if err != nil {
			return false, err
		}
		return sol.AcceptedSet()[taskID], nil
	}

	// Bracket: at v = 0 rejection is free; find an upper bound where the
	// task is surely accepted. The marginal energy of squeezing the task
	// in at full capacity bounds any rational threshold.
	lo := 0.0
	hi := ctx.energy(ctx.capacity) + in.Tasks.TotalPenalty() + 1
	if accepted, err := acceptedAt(lo); err != nil {
		return 0, err
	} else if accepted {
		return 0, nil
	}
	if accepted, err := acceptedAt(hi); err != nil {
		return 0, err
	} else if !accepted {
		// Feasible alone but never optimal to accept even at an extreme
		// penalty: only possible when capacity interactions always favour
		// other tasks; report the bracket top as the effective threshold.
		return math.Inf(1), nil
	}

	if tol <= 0 {
		tol = 1e-6 * hi
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		accepted, err := acceptedAt(mid)
		if err != nil {
			return 0, err
		}
		if accepted {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
