//go:build amd64 && !purego

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 requires: CPUID max leaf ≥ 7; leaf 1 ECX bits 27 (OSXSAVE) and 28
// (AVX); XCR0 bits 1–2 (the OS saves XMM and YMM state); leaf 7 EBX bit 5.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   no

	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  no

	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func dpBlocksAVX2(prevW, prevA, cur *float64, bits *uint64, nb int64, v float64)
//
// One 64-cell block per outer iteration: 16 vector groups of 4 doubles.
// Per group:
//
//	Y0 = prevW[j:j+4] + v        (reject arm)
//	Y1 = prevA[j:j+4]            (accept arm)
//	cur[j:j+4] = VMINPD(Y0, Y1)
//	take nibble = VCMPPD LT_OS (Y1 < Y0), packed via VMOVMSKPD
//
// The 16 nibbles assemble the block's 64-bit take word in R8, stored once.
TEXT ·dpBlocksAVX2(SB), NOSPLIT, $0-48
	MOVQ prevW+0(FP), SI
	MOVQ prevA+8(FP), DX
	MOVQ cur+16(FP), DI
	MOVQ bits+24(FP), BX
	MOVQ nb+32(FP), CX
	VBROADCASTSD v+40(FP), Y15

blockloop:
	XORQ R8, R8

#define GROUP(j) \
	VMOVUPD   (j*32)(SI), Y0   \
	VADDPD    Y15, Y0, Y0      \
	VMOVUPD   (j*32)(DX), Y1   \
	VMINPD    Y1, Y0, Y2       \
	VCMPPD    $1, Y0, Y1, Y3   \
	VMOVUPD   Y2, (j*32)(DI)   \
	VMOVMSKPD Y3, AX           \
	SHLQ      $(4*j), AX       \
	ORQ       AX, R8

	GROUP(0)
	GROUP(1)
	GROUP(2)
	GROUP(3)
	GROUP(4)
	GROUP(5)
	GROUP(6)
	GROUP(7)
	GROUP(8)
	GROUP(9)
	GROUP(10)
	GROUP(11)
	GROUP(12)
	GROUP(13)
	GROUP(14)
	GROUP(15)

#undef GROUP

	MOVQ R8, (BX)
	ADDQ $512, SI
	ADDQ $512, DX
	ADDQ $512, DI
	ADDQ $8, BX
	DECQ CX
	JNZ  blockloop
	VZEROUPPER
	RET
