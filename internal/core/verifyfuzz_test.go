// Native fuzz targets wiring the shared verification library onto the
// solver registry. External test package: internal/verify imports core, so
// these cannot live in package core (the in-package tests call
// internal/verify/oracle directly instead).
package core_test

import (
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/verify"
)

// failShrunk minimizes the failing instance while the same (oracle,
// subject) failure reproduces, then reports a paste-ready repro test case.
func failShrunk(t *testing.T, in core.Instance, err error, check func(core.Instance) error) {
	t.Helper()
	small := verify.Shrink(in, func(c core.Instance) bool {
		return verify.SameFailure(check(c), err)
	})
	t.Fatalf("%v\n\nshrunk repro (%d tasks):\n%s",
		err, len(small.Tasks.Tasks), verify.GoTestCase("ShrunkRepro", small))
}

// FuzzSolverInvariants decodes arbitrary bytes into an instance and runs
// the full oracle battery: every registry solver's solution is recomputed
// from scratch and checked for EDF feasibility, exact agreement,
// heuristic-not-below, the APPROX quality bound, Workers bit-identity and
// FastPow drift.
func FuzzSolverInvariants(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		check := func(c core.Instance) error { return verify.CheckInstance(c, verify.Options{}) }
		if err := check(in); err != nil {
			failShrunk(t, in, err, check)
		}
	})
}

// FuzzMetamorphic decodes arbitrary bytes into an instance and checks the
// metamorphic battery: task permutation, penalty scaling, zero-penalty
// duplication and deadline tightening must move the exact optimum only
// within each transform's provable relation.
func FuzzMetamorphic(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		check := func(c core.Instance) error { return verify.CheckMetamorphic(c, verify.Options{}) }
		if err := check(in); err != nil {
			failShrunk(t, in, err, check)
		}
	})
}
