package core

import (
	"errors"
	"math"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/task"
)

func TestParetoFrontierBasic(t *testing.T) {
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 4, Penalty: 2},
	)
	fr, err := ParetoFrontier(in)
	if err != nil {
		t.Fatal(err)
	}
	// Achievable workloads: 0 (penalty 3), 4 (min penalty 1 by accepting
	// task 2... accepting task 2 rejects task 1: penalty 1; accepting
	// task 1 rejects 2: penalty 2 → min 1), 8 (penalty 0).
	want := []FrontierPoint{
		{Workload: 0, Penalty: 3},
		{Workload: 4, Penalty: 1},
		{Workload: 8, Penalty: 0},
	}
	if len(fr) != len(want) {
		t.Fatalf("frontier = %+v, want 3 points", fr)
	}
	for i := range want {
		if fr[i].Workload != want[i].Workload || math.Abs(fr[i].Penalty-want[i].Penalty) > 1e-12 {
			t.Errorf("point %d = %+v, want workload %d penalty %v", i, fr[i], want[i].Workload, want[i].Penalty)
		}
		if wantE := in.energyOf(float64(want[i].Workload)); math.Abs(fr[i].Energy-wantE) > 1e-12 {
			t.Errorf("point %d energy = %v, want %v", i, fr[i].Energy, wantE)
		}
	}
}

func TestParetoFrontierMonotone(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := randomInstance(t, seed, 15, 1.5, testProcs["ideal-cubic"], gen.PenaltyModel(seed%3))
		fr, err := ParetoFrontier(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(fr) == 0 {
			t.Fatal("empty frontier")
		}
		for i := 1; i < len(fr); i++ {
			if !(fr[i].Energy > fr[i-1].Energy) {
				t.Errorf("seed %d: energy not increasing at %d: %+v", seed, i, fr[i-1:i+1])
			}
			if !(fr[i].Penalty < fr[i-1].Penalty) {
				t.Errorf("seed %d: penalty not decreasing at %d: %+v", seed, i, fr[i-1:i+1])
			}
		}
	}
}

func TestParetoFrontierContainsOptimum(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := randomInstance(t, seed, 15, 1.8, testProcs["ideal-cubic"], gen.PenaltyUniform)
		fr, err := ParetoFrontier(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := (DP{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, p := range fr {
			if p.Cost < best {
				best = p.Cost
			}
		}
		if math.Abs(best-opt.Cost) > 1e-6*(1+opt.Cost) {
			t.Errorf("seed %d: frontier minimum %v != DP optimum %v", seed, best, opt.Cost)
		}
	}
}

func TestParetoFrontierPointsAchievable(t *testing.T) {
	// Small n: every frontier point must correspond to a real subset with
	// exactly that workload and rejected penalty.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 2, Penalty: 0.5},
		task.Task{ID: 2, Cycles: 3, Penalty: 1.1},
		task.Task{ID: 3, Cycles: 4, Penalty: 0.3},
		task.Task{ID: 4, Cycles: 5, Penalty: 2.0},
	)
	fr, err := ParetoFrontier(in)
	if err != nil {
		t.Fatal(err)
	}
	n := len(in.Tasks.Tasks)
	for _, p := range fr {
		found := false
		for mask := 0; mask < 1<<n && !found; mask++ {
			var w int64
			var rej float64
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					w += in.Tasks.Tasks[b].Cycles
				} else {
					rej += in.Tasks.Tasks[b].Penalty
				}
			}
			if w == p.Workload && math.Abs(rej-p.Penalty) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Errorf("frontier point %+v is not achievable by any subset", p)
		}
	}
}

func TestParetoFrontierLeakyPlateaus(t *testing.T) {
	// Dormant-enable with large Esw can flatten E(w); the frontier must
	// still be strictly monotone after plateau collapsing.
	in := cubicInstance(
		task.Task{ID: 1, Cycles: 2, Penalty: 0.5},
		task.Task{ID: 2, Cycles: 3, Penalty: 0.8},
		task.Task{ID: 3, Cycles: 5, Penalty: 0.2},
	)
	in.Proc.Model = power.XScale()
	in.Proc.DormantEnable = true
	in.Proc.Esw = 2
	fr, err := ParetoFrontier(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fr); i++ {
		if !(fr[i].Energy > fr[i-1].Energy && fr[i].Penalty < fr[i-1].Penalty) {
			t.Errorf("non-monotone frontier at %d: %+v", i, fr[i-1:i+1])
		}
	}
}

func TestParetoFrontierErrors(t *testing.T) {
	het := cubicInstance(task.Task{ID: 1, Cycles: 2, Penalty: 1, Rho: 2})
	if _, err := ParetoFrontier(het); !errors.Is(err, ErrHeterogeneous) {
		t.Errorf("error = %v, want ErrHeterogeneous", err)
	}
	bad := cubicInstance(task.Task{ID: 1, Cycles: -2, Penalty: 1})
	if _, err := ParetoFrontier(bad); err == nil {
		t.Error("invalid instance accepted")
	}
}
