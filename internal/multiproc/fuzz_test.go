// Fuzz target for the heterogeneous partitioned-rejection tier: arbitrary
// instances are lifted into two-type processor vectors (shape and speed
// ratio fuzzed alongside the bytes) and the tier's contracts are checked —
// every solution survives the heterogeneous partition oracle (including
// per-processor EDF replay), HETERO-PART never costs more than HETERO-LS,
// nothing undercuts the certified HeteroLowerBound or the exhaustive
// optimum, and on an all-equal vector the hetero solvers degenerate bit
// for bit (node counts included) to the identical-processor ones.
package multiproc_test

import (
	"fmt"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify"
	"dvsreject/internal/verify/oracle"
)

// fuzzMaxTasks keeps the exhaustive reference inside its assignment
// budget on every fuzzed shape ((M+1)^n ≤ 5^8 < 600k).
const fuzzMaxTasks = 8

func fuzzPartitionOf(s multiproc.Solution) oracle.PartitionSolution {
	return oracle.PartitionSolution{
		PerProc: s.PerProc, Rejected: s.Rejected,
		Energies: s.Energies, Energy: s.Energy, Penalty: s.Penalty, Cost: s.Cost,
	}
}

// heteroFromFuzz lifts a codec instance into a two-type vector: mCount
// processors, nBig of the decoded flavour and the rest slowed by 1/ratio.
// ok=false when the lift leaves the multiproc domain (heterogeneous rho
// tasks, or a derived processor the validator refuses).
func heteroFromFuzz(ci core.Instance, ratio, mCount, nBig int) (multiproc.HeteroInstance, bool) {
	little := ci.Proc
	little.SMax = ci.Proc.SMax / float64(ratio)
	if little.SMin > little.SMax {
		little.SMin = little.SMax / 2
	}
	if little.Validate() != nil {
		little = ci.Proc // fall back to an all-equal vector
	}
	procs := make([]speed.Proc, 0, mCount)
	for i := 0; i < mCount; i++ {
		if i < nBig {
			procs = append(procs, ci.Proc)
		} else {
			procs = append(procs, little)
		}
	}
	set := ci.Tasks
	if len(set.Tasks) > fuzzMaxTasks {
		set.Tasks = set.Tasks[:fuzzMaxTasks]
	}
	in := multiproc.HeteroInstance{Tasks: set, Procs: procs}
	if in.Validate() != nil {
		return multiproc.HeteroInstance{}, false
	}
	return in, true
}

func checkHeteroFuzz(ratio, mCount, nBig int) func(core.Instance) error {
	return func(ci core.Instance) error {
		in, ok := heteroFromFuzz(ci, ratio, mCount, nBig)
		if !ok {
			return nil
		}
		part, err := (multiproc.HeteroPartition{}).Solve(in)
		if err != nil {
			return fmt.Errorf("HETERO-PART: %w", err)
		}
		ls, err := (multiproc.HeteroLTFRejectLS{}).Solve(in)
		if err != nil {
			return fmt.Errorf("HETERO-LS: %w", err)
		}
		if err := oracle.CheckHeteroPartition(in.Tasks, in.Procs, fuzzPartitionOf(part)); err != nil {
			return fmt.Errorf("HETERO-PART: %w", err)
		}
		if err := oracle.CheckHeteroPartition(in.Tasks, in.Procs, fuzzPartitionOf(ls)); err != nil {
			return fmt.Errorf("HETERO-LS: %w", err)
		}
		if err := oracle.CheckNotAbove("HETERO-PART vs HETERO-LS", part.Cost, ls.Cost, 1e-9); err != nil {
			return err
		}
		lb, lbErr := multiproc.HeteroLowerBound(in, 0)
		if lbErr == nil {
			if err := oracle.CheckNotBelow("HETERO-PART vs HeteroLowerBound", part.Cost, lb, 1e-9); err != nil {
				return err
			}
			if err := oracle.CheckNotBelow("HETERO-LS vs HeteroLowerBound", ls.Cost, lb, 1e-9); err != nil {
				return err
			}
		}
		opt, optNodes, optErr := (multiproc.HeteroExhaustive{MaxAssignments: 600_000}).SolveStats(in)
		if optErr == nil {
			if err := oracle.CheckNotBelow("HETERO-PART vs HETERO-OPT", part.Cost, opt.Cost, 1e-9); err != nil {
				return err
			}
			if err := oracle.CheckNotBelow("HETERO-LS vs HETERO-OPT", ls.Cost, opt.Cost, 1e-9); err != nil {
				return err
			}
			if lbErr == nil {
				if err := oracle.CheckNotBelow("HETERO-OPT vs HeteroLowerBound", opt.Cost, lb, 1e-9); err != nil {
					return err
				}
			}
		}

		// All-equal vector: the hetero path must degenerate bit for bit to
		// the identical-processor solvers, node counts included.
		if ratio == 1 || nBig == mCount {
			ident := multiproc.Instance{Tasks: in.Tasks, Proc: in.Procs[0], M: mCount}
			want, err := (multiproc.LTFRejectLS{}).Solve(ident)
			if err != nil {
				return fmt.Errorf("LTF-REJECT-LS (degenerate): %w", err)
			}
			if err := oracle.EqualPartitionSolutions(fuzzPartitionOf(ls), fuzzPartitionOf(want)); err != nil {
				return fmt.Errorf("degeneracy HETERO-LS vs LTF-REJECT-LS: %w", err)
			}
			if optErr == nil {
				wantOpt, wantNodes, err := (multiproc.Exhaustive{MaxAssignments: 600_000}).SolveStats(ident)
				if err != nil {
					return fmt.Errorf("OPT (degenerate): %w", err)
				}
				if err := oracle.EqualPartitionSolutions(fuzzPartitionOf(opt), fuzzPartitionOf(wantOpt)); err != nil {
					return fmt.Errorf("degeneracy HETERO-OPT vs OPT: %w", err)
				}
				if optNodes != wantNodes {
					return fmt.Errorf("degeneracy node count %d, identical-processor search %d", optNodes, wantNodes)
				}
			}
		}
		return nil
	}
}

// FuzzHeteroPartition decodes arbitrary bytes into an instance, lifts it
// into a fuzzed two-type processor vector, and checks the heterogeneous
// tier's oracle, ordering, lower-bound and degeneracy contracts.
func FuzzHeteroPartition(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data, uint8(2), uint8(3))
			f.Add(data, uint8(0), uint8(1))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, ratioB, shapeB uint8) {
		ci, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		ratio := 1 + int(ratioB)%8
		mCount := 2 + int(shapeB)%3
		nBig := 1 + int(shapeB/8)%(mCount-1)
		check := checkHeteroFuzz(ratio, mCount, nBig)
		if err := check(ci); err != nil {
			small := verify.Shrink(ci, func(c core.Instance) bool {
				return verify.SameFailure(check(c), err)
			})
			t.Fatalf("ratio=%d M=%d nBig=%d: %v\n\nshrunk repro (%d tasks):\n%s",
				ratio, mCount, nBig, err, len(small.Tasks.Tasks), verify.GoTestCase("ShrunkRepro", small))
		}
	})
}
