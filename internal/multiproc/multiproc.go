// Package multiproc extends task rejection to M identical DVS processors
// under partitioned EDF — the composition of the target paper with the
// research group's multiprocessor LTF partitioning line, and the natural
// "future work" direction the overview paper sketches.
//
// A solution now assigns every task to one of the M processors or rejects
// it; each processor independently runs its accepted workload at the
// minimum-energy speed (internal/speed), and the objective remains total
// energy plus total rejection penalty. The single-processor hardness
// trivially carries over (M = 1), and partitioning adds bin-packing
// structure on top.
package multiproc

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Instance is a multiprocessor rejection problem on M identical processors.
type Instance struct {
	Tasks task.Set
	Proc  speed.Proc // every processor is identical
	M     int        // number of processors, ≥ 1
}

// Validate checks the components. Heterogeneous power coefficients are not
// supported in the multiprocessor extension.
func (in Instance) Validate() error {
	if err := in.Tasks.Validate(); err != nil {
		return err
	}
	if err := in.Proc.Validate(); err != nil {
		return err
	}
	if in.M < 1 {
		return fmt.Errorf("multiproc: M = %d, want ≥ 1", in.M)
	}
	for _, t := range in.Tasks.Tasks {
		if t.PowerCoeff() != 1 {
			return fmt.Errorf("multiproc: task %d has heterogeneous power coefficient", t.ID)
		}
	}
	return nil
}

// capacity is the per-processor workload limit.
func (in Instance) capacity() float64 {
	return in.Proc.Capacity(in.Tasks.Deadline)
}

// Solution is a partitioned admission decision with its cost breakdown.
type Solution struct {
	// PerProc[m] lists the task IDs accepted on processor m, ascending.
	PerProc  [][]int
	Rejected []int

	Energies []float64 // per-processor energy (including idle frames)
	Energy   float64   // Σ Energies
	Penalty  float64
	Cost     float64
}

// Assignment maps task ID → processor index, with -1 for rejected tasks.
type Assignment map[int]int

// Evaluate costs a full assignment exactly. Tasks absent from the map are
// rejected. It errors when any processor exceeds capacity.
func Evaluate(in Instance, assign Assignment) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	sol := Solution{
		PerProc:  make([][]int, in.M),
		Energies: make([]float64, in.M),
	}
	loads := make([]int64, in.M)
	for _, t := range in.Tasks.Tasks {
		m, ok := assign[t.ID]
		if !ok || m < 0 {
			sol.Rejected = append(sol.Rejected, t.ID)
			sol.Penalty += t.Penalty
			continue
		}
		if m >= in.M {
			return Solution{}, fmt.Errorf("multiproc: task %d assigned to processor %d of %d", t.ID, m, in.M)
		}
		sol.PerProc[m] = append(sol.PerProc[m], t.ID)
		loads[m] += t.Cycles
	}
	for m := 0; m < in.M; m++ {
		slices.Sort(sol.PerProc[m])
		a, err := in.Proc.Assign(float64(loads[m]), in.Tasks.Deadline)
		if err != nil {
			return Solution{}, fmt.Errorf("multiproc: processor %d: %w", m, err)
		}
		sol.Energies[m] = a.Total
		sol.Energy += a.Total
	}
	slices.Sort(sol.Rejected)
	sol.Cost = sol.Energy + sol.Penalty
	return sol, nil
}

// Solver is one multiprocessor admission/partitioning algorithm.
type Solver interface {
	Name() string
	Solve(in Instance) (Solution, error)
}

// LTFReject is the Largest-Task-First-style constructive heuristic with
// admission control: consider tasks in non-increasing penalty density
// vi/ci, tentatively place each on the least-loaded processor, and accept
// iff it fits there and its marginal energy on that processor is below its
// penalty.
type LTFReject struct{}

// Name implements Solver.
func (LTFReject) Name() string { return "LTF-REJECT" }

// Solve implements Solver.
func (LTFReject) Solve(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	tasks := append([]task.Task(nil), in.Tasks.Tasks...)
	sort.SliceStable(tasks, func(a, b int) bool {
		return tasks[a].Penalty*float64(tasks[b].Cycles) > tasks[b].Penalty*float64(tasks[a].Cycles)
	})
	loads := make([]int64, in.M)
	assign := Assignment{}
	for _, t := range tasks {
		// Least-loaded processor.
		m := 0
		for i := 1; i < in.M; i++ {
			if loads[i] < loads[m] {
				m = i
			}
		}
		w := loads[m]
		if float64(w+t.Cycles) > in.capacity()*(1+1e-9) {
			continue
		}
		marginal := in.Proc.Energy(float64(w+t.Cycles), in.Tasks.Deadline) -
			in.Proc.Energy(float64(w), in.Tasks.Deadline)
		if marginal < t.Penalty {
			assign[t.ID] = m
			loads[m] += t.Cycles
		}
	}
	return Evaluate(in, assign)
}

// LTFRejectLS refines LTFReject with steepest-descent local search over
// four move kinds: reject an accepted task, admit a rejected task onto its
// best processor, migrate an accepted task to another processor, and
// exchange two accepted tasks across processors (the move that repairs the
// load balance convexity rewards but density-ordered placement misses).
type LTFRejectLS struct {
	// MaxIterations bounds the move count; 0 means 10·n.
	MaxIterations int
	// DisableExchange restricts the neighbourhood to single-task moves
	// (the pre-exchange behaviour, kept for ablation).
	DisableExchange bool
}

// Name implements Solver.
func (LTFRejectLS) Name() string { return "LTF-REJECT-LS" }

// Solve implements Solver.
func (g LTFRejectLS) Solve(in Instance) (Solution, error) {
	seed, err := (LTFReject{}).Solve(in)
	if err != nil {
		return Solution{}, err
	}
	assign := Assignment{}
	loads := make([]int64, in.M)
	for m, ids := range seed.PerProc {
		for _, id := range ids {
			assign[id] = m
			t, _ := in.Tasks.ByID(id)
			loads[m] += t.Cycles
		}
	}
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * len(in.Tasks.Tasks)
	}
	d := in.Tasks.Deadline
	energyAt := func(w int64) float64 { return in.Proc.Energy(float64(w), d) }

	for iter := 0; iter < limit; iter++ {
		bestGain := 1e-9
		var apply func()
		for _, t := range in.Tasks.Tasks {
			t := t
			cur, accepted := assign[t.ID]
			if accepted {
				// Reject.
				gain := energyAt(loads[cur]) - energyAt(loads[cur]-t.Cycles) - t.Penalty
				if gain > bestGain {
					bestGain = gain
					m := cur
					apply = func() { delete(assign, t.ID); loads[m] -= t.Cycles }
				}
				// Migrate.
				for m := 0; m < in.M; m++ {
					if m == cur || float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := energyAt(loads[cur]) + energyAt(loads[m]) -
						energyAt(loads[cur]-t.Cycles) - energyAt(loads[m]+t.Cycles)
					if gain > bestGain {
						bestGain = gain
						from, to := cur, m
						apply = func() {
							assign[t.ID] = to
							loads[from] -= t.Cycles
							loads[to] += t.Cycles
						}
					}
				}
			} else {
				// Admit onto the best processor.
				for m := 0; m < in.M; m++ {
					if float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := t.Penalty - (energyAt(loads[m]+t.Cycles) - energyAt(loads[m]))
					if gain > bestGain {
						bestGain = gain
						to := m
						apply = func() { assign[t.ID] = to; loads[to] += t.Cycles }
					}
				}
			}
		}

		// Swap an accepted task out for a rejected one (possibly on a
		// different processor) — the compound admission repair no pair of
		// single moves reaches when both halves are individually losing.
		if !g.DisableExchange {
			for _, out := range in.Tasks.Tasks {
				mo, okOut := assign[out.ID]
				if !okOut {
					continue
				}
				for _, inc := range in.Tasks.Tasks {
					if _, accepted := assign[inc.ID]; accepted {
						continue
					}
					for m := 0; m < in.M; m++ {
						load := loads[m]
						if m == mo {
							load -= out.Cycles
						}
						if float64(load+inc.Cycles) > in.capacity()*(1+1e-9) {
							continue
						}
						gain := inc.Penalty - out.Penalty
						if m == mo {
							gain += energyAt(loads[mo]) - energyAt(load+inc.Cycles)
						} else {
							gain += energyAt(loads[mo]) - energyAt(loads[mo]-out.Cycles)
							gain += energyAt(loads[m]) - energyAt(loads[m]+inc.Cycles)
						}
						if gain > bestGain {
							bestGain = gain
							out, inc, mo, m := out, inc, mo, m
							apply = func() {
								delete(assign, out.ID)
								loads[mo] -= out.Cycles
								assign[inc.ID] = m
								loads[m] += inc.Cycles
							}
						}
					}
				}
			}
		}

		// Exchange two accepted tasks across processors.
		if !g.DisableExchange {
			for _, a := range in.Tasks.Tasks {
				ma, okA := assign[a.ID]
				if !okA {
					continue
				}
				for _, b := range in.Tasks.Tasks {
					mb, okB := assign[b.ID]
					if !okB || a.ID >= b.ID || ma == mb {
						continue
					}
					newA := loads[ma] - a.Cycles + b.Cycles
					newB := loads[mb] - b.Cycles + a.Cycles
					if float64(newA) > in.capacity()*(1+1e-9) || float64(newB) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := energyAt(loads[ma]) + energyAt(loads[mb]) - energyAt(newA) - energyAt(newB)
					if gain > bestGain {
						bestGain = gain
						a, b, ma, mb, newA, newB := a, b, ma, mb, newA, newB
						apply = func() {
							assign[a.ID], assign[b.ID] = mb, ma
							loads[ma], loads[mb] = newA, newB
						}
					}
				}
			}
		}

		if apply == nil {
			break
		}
		apply()
	}
	return Evaluate(in, assign)
}

// Exhaustive enumerates all (M+1)ⁿ assignments with symmetry reduction on
// identical processors; exact for tiny instances (the experiment suite's
// optimum reference).
type Exhaustive struct {
	// MaxAssignments guards the search space; 0 means 5 million.
	MaxAssignments int64
}

// Name implements Solver.
func (Exhaustive) Name() string { return "OPT" }

// Solve implements Solver.
func (e Exhaustive) Solve(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(in.Tasks.Tasks)
	limit := e.MaxAssignments
	if limit == 0 {
		limit = 5_000_000
	}
	total := int64(1)
	for i := 0; i < n; i++ {
		total *= int64(in.M + 1)
		if total > limit {
			return Solution{}, fmt.Errorf("multiproc: exhaustive search needs %d+ assignments, over the limit %d", total, limit)
		}
	}

	d := in.Tasks.Deadline
	loads := make([]int64, in.M)
	choice := make([]int, n) // -1 reject, else processor
	bestCost := math.Inf(1)
	var best Assignment

	var penaltySuffix []float64 // Σ penalties of tasks[i:]
	penaltySuffix = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		penaltySuffix[i] = penaltySuffix[i+1] + in.Tasks.Tasks[i].Penalty
	}

	var dfs func(i int, penalty float64)
	dfs = func(i int, penalty float64) {
		// Bound: current energy + current penalty (both only grow).
		var energy float64
		for _, w := range loads {
			energy += in.Proc.Energy(float64(w), d)
		}
		if energy+penalty >= bestCost-1e-12 {
			return
		}
		if i == n {
			bestCost = energy + penalty
			best = Assignment{}
			for j, c := range choice {
				if c >= 0 {
					best[in.Tasks.Tasks[j].ID] = c
				}
			}
			return
		}
		t := in.Tasks.Tasks[i]
		// Symmetry reduction: only try the first empty processor.
		triedEmpty := false
		for m := 0; m < in.M; m++ {
			if loads[m] == 0 {
				if triedEmpty {
					continue
				}
				triedEmpty = true
			}
			if float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
				continue
			}
			loads[m] += t.Cycles
			choice[i] = m
			dfs(i+1, penalty)
			loads[m] -= t.Cycles
		}
		choice[i] = -1
		dfs(i+1, penalty+t.Penalty)
	}
	dfs(0, 0)

	if best == nil && !math.IsInf(bestCost, 1) {
		best = Assignment{} // everything rejected
	}
	if math.IsInf(bestCost, 1) {
		return Solution{}, fmt.Errorf("multiproc: exhaustive search found no solution")
	}
	return Evaluate(in, best)
}
