// Package multiproc extends task rejection to M identical DVS processors
// under partitioned EDF — the composition of the target paper with the
// research group's multiprocessor LTF partitioning line, and the natural
// "future work" direction the overview paper sketches.
//
// A solution now assigns every task to one of the M processors or rejects
// it; each processor independently runs its accepted workload at the
// minimum-energy speed (internal/speed), and the objective remains total
// energy plus total rejection penalty. The single-processor hardness
// trivially carries over (M = 1), and partitioning adds bin-packing
// structure on top.
package multiproc

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"

	"dvsreject/internal/conc"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Instance is a multiprocessor rejection problem on M identical processors.
type Instance struct {
	Tasks task.Set
	Proc  speed.Proc // every processor is identical
	M     int        // number of processors, ≥ 1
}

// Validate checks the components. Heterogeneous power coefficients are not
// supported in the multiprocessor extension.
func (in Instance) Validate() error {
	if err := in.Tasks.Validate(); err != nil {
		return err
	}
	if err := in.Proc.Validate(); err != nil {
		return err
	}
	if in.M < 1 {
		return fmt.Errorf("multiproc: M = %d, want ≥ 1", in.M)
	}
	for _, t := range in.Tasks.Tasks {
		if t.PowerCoeff() != 1 {
			return fmt.Errorf("multiproc: task %d has heterogeneous power coefficient", t.ID)
		}
	}
	return nil
}

// capacity is the per-processor workload limit.
func (in Instance) capacity() float64 {
	return in.Proc.Capacity(in.Tasks.Deadline)
}

// mpCtx is the per-solve evaluation context: the validated instance plus
// the values every probe recomputed in the seed code — the capacity
// acceptance threshold and the processor's energy curve (a speed.Curve, so
// E(w) probes on continuous-speed processors are one math.Pow instead of a
// full speed.Proc.Assign). Every method reproduces the corresponding
// Instance computation bit for bit, so solver decisions, tie-breaks and
// branch-and-bound node counts are unchanged. Immutable after
// construction; safe for concurrent use by parallel search workers.
type mpCtx struct {
	in       Instance
	capSlack float64 // capacity()·(1+1e-9), the acceptance threshold
	curve    speed.Curve
}

func newMPCtx(in Instance) (*mpCtx, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &mpCtx{
		in:       in,
		capSlack: in.capacity() * (1 + 1e-9),
		curve:    speed.NewCurve(in.Proc, in.Tasks.Deadline),
	}, nil
}

// energyAt returns the per-processor frame energy at an integer workload,
// identical to in.Proc.Energy(float64(w), in.Tasks.Deadline).
func (c *mpCtx) energyAt(w int64) float64 { return c.curve.Energy(float64(w)) }

// overloads reports whether a workload of w cycles exceeds one processor's
// capacity, with the same float slack the seed code applied inline.
func (c *mpCtx) overloads(w int64) bool { return float64(w) > c.capSlack }

// Solution is a partitioned admission decision with its cost breakdown.
type Solution struct {
	// PerProc[m] lists the task IDs accepted on processor m, ascending.
	PerProc  [][]int
	Rejected []int

	Energies []float64 // per-processor energy (including idle frames)
	Energy   float64   // Σ Energies
	Penalty  float64
	Cost     float64
}

// Assignment maps task ID → processor index, with -1 for rejected tasks.
type Assignment map[int]int

// Evaluate costs a full assignment exactly. Tasks absent from the map are
// rejected. It errors when any processor exceeds capacity.
func Evaluate(in Instance, assign Assignment) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	sol := Solution{
		PerProc:  make([][]int, in.M),
		Energies: make([]float64, in.M),
	}
	loads := make([]int64, in.M)
	known := 0
	for _, t := range in.Tasks.Tasks {
		m, ok := assign[t.ID]
		if ok {
			known++
		}
		if !ok || m < 0 {
			sol.Rejected = append(sol.Rejected, t.ID)
			sol.Penalty += t.Penalty
			continue
		}
		if m >= in.M {
			return Solution{}, fmt.Errorf("multiproc: task %d assigned to processor %d of %d", t.ID, m, in.M)
		}
		sol.PerProc[m] = append(sol.PerProc[m], t.ID)
		loads[m] += t.Cycles
	}
	if known != len(assign) {
		return Solution{}, fmt.Errorf("multiproc: assignment references %d unknown task IDs", len(assign)-known)
	}
	for m := 0; m < in.M; m++ {
		slices.Sort(sol.PerProc[m])
		a, err := in.Proc.Assign(float64(loads[m]), in.Tasks.Deadline)
		if err != nil {
			return Solution{}, fmt.Errorf("multiproc: processor %d: %w", m, err)
		}
		sol.Energies[m] = a.Total
		sol.Energy += a.Total
	}
	slices.Sort(sol.Rejected)
	sol.Cost = sol.Energy + sol.Penalty
	return sol, nil
}

// Solver is one multiprocessor admission/partitioning algorithm.
type Solver interface {
	Name() string
	Solve(in Instance) (Solution, error)
}

// LTFReject is the Largest-Task-First-style constructive heuristic with
// admission control: consider tasks in non-increasing penalty density
// vi/ci, tentatively place each on the least-loaded processor, and accept
// iff it fits there and its marginal energy on that processor is below its
// penalty.
type LTFReject struct{}

// Name implements Solver.
func (LTFReject) Name() string { return "LTF-REJECT" }

// Solve implements Solver.
func (LTFReject) Solve(in Instance) (Solution, error) {
	c, err := newMPCtx(in)
	if err != nil {
		return Solution{}, err
	}
	pos, _ := c.ltfReject()
	return Evaluate(in, c.assignment(pos))
}

// ltfReject runs the constructive pass. It returns pos[i] = processor of
// task i (position in in.Tasks.Tasks, -1 when rejected) together with the
// per-processor loads, so the local search can start from both without
// re-deriving them from an evaluated Solution — and without the per-probe
// map lookups an Assignment would cost in the move loops.
func (c *mpCtx) ltfReject() (pos []int, loads []int64) {
	tasks := c.in.Tasks.Tasks
	// Sorting an index permutation with the same stable comparator yields
	// the same visit order as sorting a cloned task slice.
	ord := make([]int, len(tasks))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return tasks[ord[a]].Penalty*float64(tasks[ord[b]].Cycles) >
			tasks[ord[b]].Penalty*float64(tasks[ord[a]].Cycles)
	})
	loads = make([]int64, c.in.M)
	pos = make([]int, len(tasks))
	for i := range pos {
		pos[i] = -1
	}
	for _, ti := range ord {
		t := tasks[ti]
		// Least-loaded processor.
		m := 0
		for i := 1; i < c.in.M; i++ {
			if loads[i] < loads[m] {
				m = i
			}
		}
		w := loads[m]
		if c.overloads(w + t.Cycles) {
			continue
		}
		marginal := c.energyAt(w+t.Cycles) - c.energyAt(w)
		if marginal < t.Penalty {
			pos[ti] = m
			loads[m] += t.Cycles
		}
	}
	return pos, loads
}

// assignment converts a position vector into the public Assignment map.
func (c *mpCtx) assignment(pos []int) Assignment {
	assign := Assignment{}
	for i, m := range pos {
		if m >= 0 {
			assign[c.in.Tasks.Tasks[i].ID] = m
		}
	}
	return assign
}

// LTFRejectLS refines LTFReject with steepest-descent local search over
// four move kinds: reject an accepted task, admit a rejected task onto its
// best processor, migrate an accepted task to another processor, and
// exchange two accepted tasks across processors (the move that repairs the
// load balance convexity rewards but density-ordered placement misses).
type LTFRejectLS struct {
	// MaxIterations bounds the move count; 0 means 10·n.
	MaxIterations int
	// DisableExchange restricts the neighbourhood to single-task moves
	// (the pre-exchange behaviour, kept for ablation).
	DisableExchange bool
}

// Name implements Solver.
func (LTFRejectLS) Name() string { return "LTF-REJECT-LS" }

// Solve implements Solver. Move evaluation is incremental: the energy of
// every processor at its current load is cached across the whole sweep
// (loads only change when a move is applied), so probing a move costs only
// the energies of the one or two touched processors at their changed
// loads — O(1) closed-form probes on continuous-speed processors — instead
// of re-pricing untouched processors. The gain expressions keep the seed
// code's float operation order, so the selected move sequence and the
// final solution are bit-identical.
func (g LTFRejectLS) Solve(in Instance) (Solution, error) {
	c, err := newMPCtx(in)
	if err != nil {
		return Solution{}, err
	}
	pos, loads := c.ltfReject()
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * len(in.Tasks.Tasks)
	}
	tasks := in.Tasks.Tasks

	// procE[m] = energyAt(loads[m]), refreshed after each applied move.
	procE := make([]float64, in.M)
	for m := range procE {
		procE[m] = c.energyAt(loads[m])
	}
	// addE[ti·M+m] memoizes energyAt(loads[m]+cycles(ti)), the "task ti
	// lands on processor m" probe shared by the migrate, admit and
	// cross-processor swap moves. Loads are constant within one sweep, so
	// entries are filled lazily on first use (NaN marks an empty slot —
	// the curve never returns NaN) and reset once per iteration.
	addE := make([]float64, len(tasks)*in.M)
	probeAdd := func(ti, m int) float64 {
		e := addE[ti*in.M+m]
		if e != e {
			e = c.energyAt(loads[m] + tasks[ti].Cycles)
			addE[ti*in.M+m] = e
		}
		return e
	}

	for iter := 0; iter < limit; iter++ {
		for i := range addE {
			addE[i] = math.NaN()
		}
		bestGain := 1e-9
		var apply func()
		for ti := range tasks {
			t := tasks[ti]
			ti := ti
			cur := pos[ti]
			if cur >= 0 {
				// Reject.
				removed := c.energyAt(loads[cur] - t.Cycles)
				gain := procE[cur] - removed - t.Penalty
				if gain > bestGain {
					bestGain = gain
					m := cur
					apply = func() { pos[ti] = -1; loads[m] -= t.Cycles }
				}
				// Migrate.
				for m := 0; m < in.M; m++ {
					if m == cur || c.overloads(loads[m]+t.Cycles) {
						continue
					}
					gain := procE[cur] + procE[m] -
						removed - probeAdd(ti, m)
					if gain > bestGain {
						bestGain = gain
						from, to := cur, m
						apply = func() {
							pos[ti] = to
							loads[from] -= t.Cycles
							loads[to] += t.Cycles
						}
					}
				}
			} else {
				// Admit onto the best processor.
				for m := 0; m < in.M; m++ {
					if c.overloads(loads[m] + t.Cycles) {
						continue
					}
					gain := t.Penalty - (probeAdd(ti, m) - procE[m])
					if gain > bestGain {
						bestGain = gain
						to := m
						apply = func() { pos[ti] = to; loads[to] += t.Cycles }
					}
				}
			}
		}

		// Swap an accepted task out for a rejected one (possibly on a
		// different processor) — the compound admission repair no pair of
		// single moves reaches when both halves are individually losing.
		if !g.DisableExchange {
			for oi := range tasks {
				mo := pos[oi]
				if mo < 0 {
					continue
				}
				out := tasks[oi]
				oi := oi
				// Both terms of the out-processor's energy delta are
				// invariant across the inner loops.
				outDelta := procE[mo] - c.energyAt(loads[mo]-out.Cycles)
				for ii := range tasks {
					if pos[ii] >= 0 {
						continue
					}
					inc := tasks[ii]
					ii := ii
					for m := 0; m < in.M; m++ {
						load := loads[m]
						if m == mo {
							load -= out.Cycles
						}
						if c.overloads(load + inc.Cycles) {
							continue
						}
						gain := inc.Penalty - out.Penalty
						if m == mo {
							gain += procE[mo] - c.energyAt(load+inc.Cycles)
						} else {
							gain += outDelta
							gain += procE[m] - probeAdd(ii, m)
						}
						if gain > bestGain {
							bestGain = gain
							mo, m := mo, m
							apply = func() {
								pos[oi] = -1
								loads[mo] -= out.Cycles
								pos[ii] = m
								loads[m] += inc.Cycles
							}
						}
					}
				}
			}
		}

		// Exchange two accepted tasks across processors.
		if !g.DisableExchange {
			for ai := range tasks {
				ma := pos[ai]
				if ma < 0 {
					continue
				}
				a := tasks[ai]
				ai := ai
				for bi := range tasks {
					mb := pos[bi]
					b := tasks[bi]
					if mb < 0 || a.ID >= b.ID || ma == mb {
						continue
					}
					bi := bi
					newA := loads[ma] - a.Cycles + b.Cycles
					newB := loads[mb] - b.Cycles + a.Cycles
					if c.overloads(newA) || c.overloads(newB) {
						continue
					}
					gain := procE[ma] + procE[mb] - c.energyAt(newA) - c.energyAt(newB)
					if gain > bestGain {
						bestGain = gain
						ma, mb, newA, newB := ma, mb, newA, newB
						apply = func() {
							pos[ai], pos[bi] = mb, ma
							loads[ma], loads[mb] = newA, newB
						}
					}
				}
			}
		}

		if apply == nil {
			break
		}
		apply()
		for m := range procE {
			procE[m] = c.energyAt(loads[m])
		}
	}
	return Evaluate(in, c.assignment(pos))
}

// Exhaustive enumerates all (M+1)ⁿ assignments with symmetry reduction on
// identical processors; exact for tiny instances (the experiment suite's
// optimum reference).
type Exhaustive struct {
	// MaxAssignments guards the search space; 0 means 5 million.
	MaxAssignments int64
	// Workers sets the parallel fan-out of Solve: the top of the search
	// tree is split into prefix subtrees that a worker pool explores
	// concurrently against a shared atomic incumbent bound. 0 means
	// GOMAXPROCS, 1 forces the serial search. The returned solution is
	// identical either way; SolveStats always searches serially so its
	// node counts stay deterministic.
	Workers int
}

// Name implements Solver.
func (Exhaustive) Name() string { return "OPT" }

// Solve implements Solver.
func (e Exhaustive) Solve(in Instance) (Solution, error) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return e.solveParallel(in, workers)
	}
	sol, _, err := e.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the number of branch-and-bound nodes entered —
// the instrumentation the search-ablation experiments and the differential
// tests read. The search is always serial here, keeping the node counts
// deterministic and comparable across runs.
func (e Exhaustive) SolveStats(in Instance) (Solution, int64, error) {
	c, n, err := e.prepare(in)
	if err != nil {
		return Solution{}, 0, err
	}
	s := newMPSearcher(c, n)
	s.dfs(0, 0)
	sol, err := s.finish(in)
	return sol, s.nodes, err
}

// prepare validates the instance and checks the assignment-count guard —
// the work shared by the serial and parallel drivers.
func (e Exhaustive) prepare(in Instance) (*mpCtx, int, error) {
	c, err := newMPCtx(in)
	if err != nil {
		return nil, 0, err
	}
	n := len(in.Tasks.Tasks)
	limit := e.MaxAssignments
	if limit == 0 {
		limit = 5_000_000
	}
	total := int64(1)
	for i := 0; i < n; i++ {
		total *= int64(in.M + 1)
		if total > limit {
			return nil, 0, fmt.Errorf("multiproc: exhaustive search needs %d+ assignments, over the limit %d", total, limit)
		}
	}
	return c, n, nil
}

// solveParallel fans the top of the search tree out to a worker pool: the
// first splitDepth placement decisions enumerate prefix subtrees in serial
// DFS visit order (same child order, symmetry reduction and capacity
// filter as the serial search, no bound pruning), workers explore them
// concurrently sharing an atomic incumbent cost, and the per-subtree
// winners are folded back in DFS order under the serial improvement rule —
// so the returned solution matches the serial search.
func (e Exhaustive) solveParallel(in Instance, workers int) (Solution, error) {
	c, n, err := e.prepare(in)
	if err != nil {
		return Solution{}, err
	}

	// Split deep enough to keep every worker busy (≥4 subtrees each), but
	// never to the leaves; each level multiplies the prefix count by up to
	// M+2 (M placements + reject), so a shallow split suffices.
	splitDepth := 0
	count := 1
	for splitDepth < n-1 && splitDepth < 8 && count < 4*workers {
		splitDepth++
		count *= in.M + 1
	}
	if splitDepth == 0 {
		sol, _, err := e.SolveStats(in)
		return sol, err
	}

	type mpPrefix struct {
		loads   []int64
		choice  []int
		penalty float64
	}
	var prefixes []mpPrefix
	loads := make([]int64, in.M)
	choice := make([]int, splitDepth)
	var enumerate func(i int, penalty float64)
	enumerate = func(i int, penalty float64) {
		if i == splitDepth {
			prefixes = append(prefixes, mpPrefix{
				loads: slices.Clone(loads), choice: slices.Clone(choice), penalty: penalty,
			})
			return
		}
		t := in.Tasks.Tasks[i]
		triedEmpty := false
		for m := 0; m < in.M; m++ {
			if loads[m] == 0 {
				if triedEmpty {
					continue
				}
				triedEmpty = true
			}
			if c.overloads(loads[m] + t.Cycles) {
				continue
			}
			loads[m] += t.Cycles
			choice[i] = m
			enumerate(i+1, penalty)
			loads[m] -= t.Cycles
		}
		choice[i] = -1
		enumerate(i+1, penalty+t.Penalty)
	}
	enumerate(0, 0)

	// The shared incumbent: the best cost any worker has proven so far,
	// maintained with a CAS-min over its float bits.
	var shared atomic.Uint64
	shared.Store(math.Float64bits(math.Inf(1)))

	type subtreeBest struct {
		best Assignment
		cost float64
	}
	results, err := conc.ForEach(len(prefixes), workers, func(i int) (subtreeBest, error) {
		p := prefixes[i]
		s := newMPSearcher(c, n)
		s.shared = &shared
		copy(s.loads, p.loads)
		copy(s.choice, p.choice)
		s.dfs(splitDepth, p.penalty)
		return subtreeBest{best: s.best, cost: s.bestCost}, nil
	})
	if err != nil {
		return Solution{}, err
	}

	// Fold the subtree winners in DFS order with the serial improvement
	// rule.
	s := newMPSearcher(c, n)
	for _, r := range results {
		if r.best != nil && r.cost < s.bestCost-1e-12 {
			s.bestCost, s.best = r.cost, r.best
		}
	}
	return s.finish(in)
}

// mpSearcher is one branch-and-bound search state: the serial search uses
// a single instance, the parallel search one per subtree (plus the shared
// incumbent they prune against).
type mpSearcher struct {
	c      *mpCtx
	n      int
	loads  []int64
	choice []int // -1 reject, else processor

	bestCost float64
	best     Assignment
	nodes    int64

	// shared, when non-nil (parallel mode), is the cross-worker incumbent
	// cost as float bits; workers prune against it and publish their own
	// improvements into it.
	shared *atomic.Uint64
}

func newMPSearcher(c *mpCtx, n int) *mpSearcher {
	return &mpSearcher{
		c:        c,
		n:        n,
		loads:    make([]int64, c.in.M),
		choice:   make([]int, n),
		bestCost: math.Inf(1),
	}
}

// pruned reports whether a node whose partial cost is pc (a lower bound on
// every leaf below it) cannot improve the result. The local incumbent uses
// the serial rule (pc within 1e-12 of it never strictly improves). The
// shared cross-worker incumbent is applied with the margin reversed —
// prune only when pc exceeds it by more than 1e-12 — so a subtree whose
// best leaf exactly ties another worker's published cost still finds that
// leaf: subtree winners are then independent of publish timing, and the
// DFS-ordered fold resolves exact ties the way the serial search does.
func (s *mpSearcher) pruned(pc float64) bool {
	if pc >= s.bestCost-1e-12 {
		return true
	}
	return s.shared != nil && pc >= math.Float64frombits(s.shared.Load())+1e-12
}

// publish records an improved incumbent, CAS-minning it into the shared
// bound in parallel mode.
func (s *mpSearcher) publish(cost float64) {
	if s.shared == nil {
		return
	}
	for {
		old := s.shared.Load()
		if math.Float64frombits(old) <= cost {
			return
		}
		if s.shared.CompareAndSwap(old, math.Float64bits(cost)) {
			return
		}
	}
}

// dfs explores placements for tasks[i:], with penalty the accumulated
// rejection penalty of the prefix.
func (s *mpSearcher) dfs(i int, penalty float64) {
	s.nodes++
	// Bound: current energy + current penalty (both only grow).
	var energy float64
	for _, w := range s.loads {
		energy += s.c.energyAt(w)
	}
	if s.pruned(energy + penalty) {
		return
	}
	if i == s.n {
		s.bestCost = energy + penalty
		s.best = Assignment{}
		for j, ch := range s.choice {
			if ch >= 0 {
				s.best[s.c.in.Tasks.Tasks[j].ID] = ch
			}
		}
		s.publish(s.bestCost)
		return
	}
	t := s.c.in.Tasks.Tasks[i]
	// Symmetry reduction: only try the first empty processor.
	triedEmpty := false
	for m := 0; m < s.c.in.M; m++ {
		if s.loads[m] == 0 {
			if triedEmpty {
				continue
			}
			triedEmpty = true
		}
		if s.c.overloads(s.loads[m] + t.Cycles) {
			continue
		}
		s.loads[m] += t.Cycles
		s.choice[i] = m
		s.dfs(i+1, penalty)
		s.loads[m] -= t.Cycles
	}
	s.choice[i] = -1
	s.dfs(i+1, penalty+t.Penalty)
}

// finish converts the incumbent into an evaluated Solution, with the seed
// code's handling of the degenerate cases.
func (s *mpSearcher) finish(in Instance) (Solution, error) {
	if s.best == nil && !math.IsInf(s.bestCost, 1) {
		s.best = Assignment{} // everything rejected
	}
	if math.IsInf(s.bestCost, 1) {
		return Solution{}, fmt.Errorf("multiproc: exhaustive search found no solution")
	}
	return Evaluate(in, s.best)
}
