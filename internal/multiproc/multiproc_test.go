package multiproc

import (
	"math"
	"math/rand"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

func twoProc(tasks ...task.Task) Instance {
	return Instance{
		Tasks: task.Set{Deadline: 10, Tasks: tasks},
		Proc:  speed.Proc{Model: power.Cubic(), SMax: 1},
		M:     2,
	}
}

func TestInstanceValidate(t *testing.T) {
	ok := twoProc(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.M = 0
	if err := bad.Validate(); err == nil {
		t.Error("M = 0 accepted")
	}
	het := twoProc(task.Task{ID: 1, Cycles: 4, Penalty: 1, Rho: 2})
	if err := het.Validate(); err == nil {
		t.Error("heterogeneous task accepted")
	}
}

func TestEvaluateSplitsLoad(t *testing.T) {
	in := twoProc(
		task.Task{ID: 1, Cycles: 4, Penalty: 1},
		task.Task{ID: 2, Cycles: 6, Penalty: 2},
		task.Task{ID: 3, Cycles: 5, Penalty: 3},
	)
	sol, err := Evaluate(in, Assignment{1: 0, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0: W=4 → 0.064·... E = 4³/100 = 0.64; proc 1: 6³/100 = 2.16.
	if math.Abs(sol.Energies[0]-0.64) > 1e-9 || math.Abs(sol.Energies[1]-2.16) > 1e-9 {
		t.Errorf("energies = %v, want [0.64, 2.16]", sol.Energies)
	}
	if sol.Penalty != 3 {
		t.Errorf("penalty = %v, want 3 (task 3 rejected)", sol.Penalty)
	}
	if math.Abs(sol.Cost-(0.64+2.16+3)) > 1e-9 {
		t.Errorf("cost = %v", sol.Cost)
	}
}

func TestEvaluateErrors(t *testing.T) {
	in := twoProc(task.Task{ID: 1, Cycles: 4, Penalty: 1})
	if _, err := Evaluate(in, Assignment{1: 5}); err == nil {
		t.Error("out-of-range processor accepted")
	}
	over := twoProc(
		task.Task{ID: 1, Cycles: 8, Penalty: 1},
		task.Task{ID: 2, Cycles: 8, Penalty: 1},
	)
	if _, err := Evaluate(over, Assignment{1: 0, 2: 0}); err == nil {
		t.Error("over-capacity processor accepted")
	}
}

func TestTwoProcessorsBeatOne(t *testing.T) {
	// The convexity of E makes splitting work across processors cheaper:
	// two tasks of 5 cycles on one processor cost E(10) = 10; split, they
	// cost 2·E(5) = 2.5.
	tasks := []task.Task{
		{ID: 1, Cycles: 5, Penalty: 100},
		{ID: 2, Cycles: 5, Penalty: 100},
	}
	one := Instance{Tasks: task.Set{Deadline: 10, Tasks: tasks}, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 1}
	two := one
	two.M = 2
	s1, err := (Exhaustive{}).Solve(one)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := (Exhaustive{}).Solve(two)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Cost-10) > 1e-9 {
		t.Errorf("M=1 cost = %v, want 10", s1.Cost)
	}
	if math.Abs(s2.Cost-2.5) > 1e-9 {
		t.Errorf("M=2 cost = %v, want 2.5", s2.Cost)
	}
}

func TestSingleProcessorMatchesCoreDP(t *testing.T) {
	// With M = 1 the multiprocessor optimum must equal the core optimum.
	for seed := int64(0); seed < 8; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{N: 9, Load: 1.4, Deadline: 50})
		if err != nil {
			t.Fatal(err)
		}
		proc := speed.Proc{Model: power.Cubic(), SMax: 1}
		mOpt, err := (Exhaustive{}).Solve(Instance{Tasks: set, Proc: proc, M: 1})
		if err != nil {
			t.Fatal(err)
		}
		cOpt, err := (core.DP{}).Solve(core.Instance{Tasks: set, Proc: proc})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mOpt.Cost-cOpt.Cost) > 1e-6*(1+cOpt.Cost) {
			t.Errorf("seed %d: multiproc M=1 cost %v != core DP cost %v", seed, mOpt.Cost, cOpt.Cost)
		}
	}
}

func TestHeuristicsNeverBeatExhaustive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
			N: 8, Load: float64(2 + seed%3), Deadline: 40, Penalty: gen.PenaltyModel(seed % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 3}
		opt, err := (Exhaustive{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Solver{LTFReject{}, LTFRejectLS{}} {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if sol.Cost < opt.Cost-1e-6*(1+opt.Cost) {
				t.Errorf("seed %d: %s cost %v beats OPT %v", seed, s.Name(), sol.Cost, opt.Cost)
			}
			if sol.Cost > 3*opt.Cost+1e-9 {
				t.Errorf("seed %d: %s cost %v is > 3× OPT %v", seed, s.Name(), sol.Cost, opt.Cost)
			}
		}
	}
}

func TestLocalSearchNeverWorseThanConstructive(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
			N: 20, Load: 2.5, Deadline: 100, Penalty: gen.PenaltyProportional,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 4}
		a, err := (LTFReject{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (LTFRejectLS{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cost > a.Cost+1e-9 {
			t.Errorf("seed %d: local search worsened: %v > %v", seed, b.Cost, a.Cost)
		}
	}
}

func TestExhaustiveLimit(t *testing.T) {
	set := task.Set{Deadline: 10}
	for i := 0; i < 20; i++ {
		set.Tasks = append(set.Tasks, task.Task{ID: i, Cycles: 1, Penalty: 1})
	}
	in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 4}
	if _, err := (Exhaustive{}).Solve(in); err == nil {
		t.Error("20 tasks × 5 choices accepted without limit error")
	}
}

func TestOverloadedSystemRejects(t *testing.T) {
	// Load 3 on M = 2: at least a third of the work must be rejected.
	set, err := gen.Frame(rand.New(rand.NewSource(3)), gen.Config{N: 12, Load: 3, Deadline: 30})
	if err != nil {
		t.Fatal(err)
	}
	in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 2}
	sol, err := (LTFRejectLS{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rejected) == 0 {
		t.Error("overloaded multiprocessor rejected nothing")
	}
	for m, ids := range sol.PerProc {
		var w int64
		for _, id := range ids {
			tk, _ := set.ByID(id)
			w += tk.Cycles
		}
		if float64(w) > in.capacity()*(1+1e-9) {
			t.Errorf("processor %d overloaded: %d > %v", m, w, in.capacity())
		}
	}
}

func TestNamesStable(t *testing.T) {
	if (LTFReject{}).Name() != "LTF-REJECT" ||
		(LTFRejectLS{}).Name() != "LTF-REJECT-LS" ||
		(Exhaustive{}).Name() != "OPT" {
		t.Error("solver names changed")
	}
}

func TestExchangeNeighbourhoodNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
			N: 12, Load: 4.5, Deadline: 60, Penalty: gen.PenaltyModel(seed % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: 3}
		basic, err := (LTFRejectLS{DisableExchange: true}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		full, err := (LTFRejectLS{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if full.Cost > basic.Cost+1e-9 {
			t.Errorf("seed %d: exchange neighbourhood worsened: %v > %v", seed, full.Cost, basic.Cost)
		}
	}
}
