// Heterogeneous partitioned rejection: M processors with *distinct*
// speed/power descriptions (the two-type big.LITTLE setting of the
// Thammawichai & Kerrigan line, generalized to arbitrary profile
// vectors). A solution still assigns every task to one processor or
// rejects it; each processor runs its accepted workload at its own
// minimum-energy speed, and the objective remains total energy plus
// total rejection penalty.
//
// Every solver here degenerates bit-exactly to its identical-processor
// counterpart when all profiles are equal: the constructive pass visits
// candidate processors in (load, index) order — which reduces to the
// seed's least-loaded rule — the local-search move loops keep the same
// float expression order with per-processor curves, and the exhaustive
// search restricts its empty-processor symmetry reduction to
// same-profile groups, which collapses to the seed's single "first
// empty" rule. The differential corpus pins all three reductions,
// including branch-and-bound node counts.
package multiproc

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"dvsreject/internal/core"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// HeteroInstance is a rejection problem on M processors with per-processor
// speed/power profiles. M is implicit: len(Procs).
type HeteroInstance struct {
	Tasks task.Set
	Procs []speed.Proc
}

// M returns the processor count.
func (in HeteroInstance) M() int { return len(in.Procs) }

// Validate checks the components. Per-task power coefficients remain
// unsupported in the multiprocessor extension (heterogeneity lives in the
// processor vector here, not the tasks).
func (in HeteroInstance) Validate() error {
	if err := in.Tasks.Validate(); err != nil {
		return err
	}
	if len(in.Procs) == 0 {
		return fmt.Errorf("multiproc: hetero instance has no processors")
	}
	for m, p := range in.Procs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("multiproc: processor %d: %w", m, err)
		}
	}
	for _, t := range in.Tasks.Tasks {
		if t.PowerCoeff() != 1 {
			return fmt.Errorf("multiproc: task %d has heterogeneous power coefficient", t.ID)
		}
	}
	return nil
}

// AsHetero lifts an identical-processor instance into the heterogeneous
// form: M copies of the same profile. Solvers on the lifted instance
// reproduce the identical-processor solvers bit for bit.
func AsHetero(in Instance) HeteroInstance {
	procs := make([]speed.Proc, in.M)
	for m := range procs {
		procs[m] = in.Proc
	}
	return HeteroInstance{Tasks: in.Tasks, Procs: procs}
}

// procsEqual reports bit-level equality of two processor descriptions —
// the grouping relation of the exhaustive search's symmetry reduction.
func procsEqual(a, b speed.Proc) bool {
	return a.Model == b.Model &&
		a.SMin == b.SMin && a.SMax == b.SMax &&
		a.DormantEnable == b.DormantEnable && a.Esw == b.Esw &&
		slices.Equal(a.Levels, b.Levels)
}

// heteroCtx is the per-solve evaluation context: one energy curve and one
// capacity threshold per processor, mirroring mpCtx per profile so that
// on an all-equal vector every probe returns the identical bits.
// Immutable after construction.
type heteroCtx struct {
	in       HeteroInstance
	capSlack []float64 // per-processor capacity·(1+1e-9)
	curves   []speed.Curve
	// typeOf[m] is the index of the first processor bit-equal to m — the
	// symmetry group key (typeOf[m] == m for group leaders).
	typeOf []int
	types  int // number of distinct groups
}

func newHeteroCtx(in HeteroInstance) (*heteroCtx, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	m := in.M()
	c := &heteroCtx{
		in:       in,
		capSlack: make([]float64, m),
		curves:   make([]speed.Curve, m),
		typeOf:   make([]int, m),
	}
	for i, p := range in.Procs {
		c.capSlack[i] = p.Capacity(in.Tasks.Deadline) * (1 + 1e-9)
		c.curves[i] = speed.NewCurve(p, in.Tasks.Deadline)
		c.typeOf[i] = i
		for j := 0; j < i; j++ {
			if procsEqual(in.Procs[j], p) {
				c.typeOf[i] = c.typeOf[j]
				break
			}
		}
		if c.typeOf[i] == i {
			c.types++
		}
	}
	return c, nil
}

// energyAt returns processor m's frame energy at an integer workload,
// identical to in.Procs[m].Energy(float64(w), in.Tasks.Deadline).
func (c *heteroCtx) energyAt(m int, w int64) float64 { return c.curves[m].Energy(float64(w)) }

// overloads reports whether w cycles exceed processor m's capacity, with
// the same float slack the identical-processor context applies.
func (c *heteroCtx) overloads(m int, w int64) bool { return float64(w) > c.capSlack[m] }

// assignment converts a position vector into the public Assignment map.
func (c *heteroCtx) assignment(pos []int) Assignment {
	assign := Assignment{}
	for i, m := range pos {
		if m >= 0 {
			assign[c.in.Tasks.Tasks[i].ID] = m
		}
	}
	return assign
}

// EvaluateHetero costs a full assignment exactly on the heterogeneous
// instance. Tasks absent from the map (or mapped to a negative index) are
// rejected. It errors on out-of-range processor indices, on assignments
// referencing task IDs the instance does not contain, and when any
// processor exceeds its own capacity.
func EvaluateHetero(in HeteroInstance, assign Assignment) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	mCount := in.M()
	sol := Solution{
		PerProc:  make([][]int, mCount),
		Energies: make([]float64, mCount),
	}
	loads := make([]int64, mCount)
	known := 0
	for _, t := range in.Tasks.Tasks {
		m, ok := assign[t.ID]
		if ok {
			known++
		}
		if !ok || m < 0 {
			sol.Rejected = append(sol.Rejected, t.ID)
			sol.Penalty += t.Penalty
			continue
		}
		if m >= mCount {
			return Solution{}, fmt.Errorf("multiproc: task %d assigned to processor %d of %d", t.ID, m, mCount)
		}
		sol.PerProc[m] = append(sol.PerProc[m], t.ID)
		loads[m] += t.Cycles
	}
	if known != len(assign) {
		return Solution{}, fmt.Errorf("multiproc: assignment references %d unknown task IDs", len(assign)-known)
	}
	for m := 0; m < mCount; m++ {
		slices.Sort(sol.PerProc[m])
		a, err := in.Procs[m].Assign(float64(loads[m]), in.Tasks.Deadline)
		if err != nil {
			return Solution{}, fmt.Errorf("multiproc: processor %d: %w", m, err)
		}
		sol.Energies[m] = a.Total
		sol.Energy += a.Total
	}
	slices.Sort(sol.Rejected)
	sol.Cost = sol.Energy + sol.Penalty
	return sol, nil
}

// HeteroSolver is one heterogeneous admission/partitioning algorithm.
type HeteroSolver interface {
	Name() string
	Solve(in HeteroInstance) (Solution, error)
}

// HeteroSolverByName resolves the heterogeneous solver registry. The
// serve engine and the CLI route requests through it.
func HeteroSolverByName(name string) (HeteroSolver, bool) {
	switch name {
	case "HETERO-PART":
		return HeteroPartition{}, true
	case "HETERO-LTF":
		return HeteroLTFReject{}, true
	case "HETERO-LS":
		return HeteroLTFRejectLS{}, true
	case "HETERO-OPT":
		return HeteroExhaustive{}, true
	}
	return nil, false
}

// HeteroSolverNames lists the registry in presentation order.
func HeteroSolverNames() []string {
	return []string{"HETERO-PART", "HETERO-LTF", "HETERO-LS", "HETERO-OPT"}
}

// HeteroLTFReject is the constructive heuristic generalized to distinct
// profiles: tasks in non-increasing penalty density, candidate processors
// in (load ascending, index ascending) order, accept on the first
// candidate that fits iff its marginal energy there is below the task's
// penalty. On an all-equal profile vector the first candidate is exactly
// the seed's least-loaded processor (and if it cannot fit the task,
// neither can any other equal-capacity processor), so the decisions are
// bit-identical to LTFReject.
type HeteroLTFReject struct{}

// Name implements HeteroSolver.
func (HeteroLTFReject) Name() string { return "HETERO-LTF" }

// Solve implements HeteroSolver.
func (HeteroLTFReject) Solve(in HeteroInstance) (Solution, error) {
	c, err := newHeteroCtx(in)
	if err != nil {
		return Solution{}, err
	}
	pos, _ := c.heteroLTFReject()
	return EvaluateHetero(in, c.assignment(pos))
}

// heteroLTFReject runs the constructive pass, returning pos[i] = processor
// of task i (-1 when rejected) and the per-processor loads — the warm
// start of the local search, as in the identical-processor path.
func (c *heteroCtx) heteroLTFReject() (pos []int, loads []int64) {
	tasks := c.in.Tasks.Tasks
	mCount := c.in.M()
	ord := make([]int, len(tasks))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return tasks[ord[a]].Penalty*float64(tasks[ord[b]].Cycles) >
			tasks[ord[b]].Penalty*float64(tasks[ord[a]].Cycles)
	})
	loads = make([]int64, mCount)
	pos = make([]int, len(tasks))
	for i := range pos {
		pos[i] = -1
	}
	cand := make([]int, mCount)
	for _, ti := range ord {
		t := tasks[ti]
		// Candidate processors in (load, index) order; sort.Slice on the
		// integer loads with an index tie-break is fully deterministic.
		for i := range cand {
			cand[i] = i
		}
		sort.Slice(cand, func(a, b int) bool {
			if loads[cand[a]] != loads[cand[b]] {
				return loads[cand[a]] < loads[cand[b]]
			}
			return cand[a] < cand[b]
		})
		for _, m := range cand {
			if c.overloads(m, loads[m]+t.Cycles) {
				continue
			}
			marginal := c.energyAt(m, loads[m]+t.Cycles) - c.energyAt(m, loads[m])
			if marginal < t.Penalty {
				pos[ti] = m
				loads[m] += t.Cycles
			}
			break // decide on the first fitting candidate only
		}
	}
	return pos, loads
}

// HeteroLTFRejectLS refines HeteroLTFReject with the same steepest-descent
// neighbourhood as LTFRejectLS — reject, admit, migrate, swap-in-out and
// cross-processor exchange — with every energy probe going through the
// touched processor's own curve. The gain expressions keep the
// identical-processor code's float operation order, so on an all-equal
// vector the move sequence and final solution are bit-identical to
// LTFRejectLS.
type HeteroLTFRejectLS struct {
	// MaxIterations bounds the move count; 0 means 10·n.
	MaxIterations int
	// DisableExchange restricts the neighbourhood to single-task moves.
	DisableExchange bool
}

// Name implements HeteroSolver.
func (HeteroLTFRejectLS) Name() string { return "HETERO-LS" }

// Solve implements HeteroSolver.
func (g HeteroLTFRejectLS) Solve(in HeteroInstance) (Solution, error) {
	c, err := newHeteroCtx(in)
	if err != nil {
		return Solution{}, err
	}
	pos, loads := c.heteroLTFReject()
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * len(in.Tasks.Tasks)
	}
	tasks := in.Tasks.Tasks
	mCount := in.M()

	procE := make([]float64, mCount)
	for m := range procE {
		procE[m] = c.energyAt(m, loads[m])
	}
	addE := make([]float64, len(tasks)*mCount)
	probeAdd := func(ti, m int) float64 {
		e := addE[ti*mCount+m]
		if e != e {
			e = c.energyAt(m, loads[m]+tasks[ti].Cycles)
			addE[ti*mCount+m] = e
		}
		return e
	}

	for iter := 0; iter < limit; iter++ {
		for i := range addE {
			addE[i] = math.NaN()
		}
		bestGain := 1e-9
		var apply func()
		for ti := range tasks {
			t := tasks[ti]
			ti := ti
			cur := pos[ti]
			if cur >= 0 {
				// Reject.
				removed := c.energyAt(cur, loads[cur]-t.Cycles)
				gain := procE[cur] - removed - t.Penalty
				if gain > bestGain {
					bestGain = gain
					m := cur
					apply = func() { pos[ti] = -1; loads[m] -= t.Cycles }
				}
				// Migrate.
				for m := 0; m < mCount; m++ {
					if m == cur || c.overloads(m, loads[m]+t.Cycles) {
						continue
					}
					gain := procE[cur] + procE[m] -
						removed - probeAdd(ti, m)
					if gain > bestGain {
						bestGain = gain
						from, to := cur, m
						apply = func() {
							pos[ti] = to
							loads[from] -= t.Cycles
							loads[to] += t.Cycles
						}
					}
				}
			} else {
				// Admit onto the best processor.
				for m := 0; m < mCount; m++ {
					if c.overloads(m, loads[m]+t.Cycles) {
						continue
					}
					gain := t.Penalty - (probeAdd(ti, m) - procE[m])
					if gain > bestGain {
						bestGain = gain
						to := m
						apply = func() { pos[ti] = to; loads[to] += t.Cycles }
					}
				}
			}
		}

		// Swap an accepted task out for a rejected one.
		if !g.DisableExchange {
			for oi := range tasks {
				mo := pos[oi]
				if mo < 0 {
					continue
				}
				out := tasks[oi]
				oi := oi
				outDelta := procE[mo] - c.energyAt(mo, loads[mo]-out.Cycles)
				for ii := range tasks {
					if pos[ii] >= 0 {
						continue
					}
					inc := tasks[ii]
					ii := ii
					for m := 0; m < mCount; m++ {
						load := loads[m]
						if m == mo {
							load -= out.Cycles
						}
						if c.overloads(m, load+inc.Cycles) {
							continue
						}
						gain := inc.Penalty - out.Penalty
						if m == mo {
							gain += procE[mo] - c.energyAt(m, load+inc.Cycles)
						} else {
							gain += outDelta
							gain += procE[m] - probeAdd(ii, m)
						}
						if gain > bestGain {
							bestGain = gain
							mo, m := mo, m
							apply = func() {
								pos[oi] = -1
								loads[mo] -= out.Cycles
								pos[ii] = m
								loads[m] += inc.Cycles
							}
						}
					}
				}
			}
		}

		// Exchange two accepted tasks across processors.
		if !g.DisableExchange {
			for ai := range tasks {
				ma := pos[ai]
				if ma < 0 {
					continue
				}
				a := tasks[ai]
				ai := ai
				for bi := range tasks {
					mb := pos[bi]
					b := tasks[bi]
					if mb < 0 || a.ID >= b.ID || ma == mb {
						continue
					}
					bi := bi
					newA := loads[ma] - a.Cycles + b.Cycles
					newB := loads[mb] - b.Cycles + a.Cycles
					if c.overloads(ma, newA) || c.overloads(mb, newB) {
						continue
					}
					gain := procE[ma] + procE[mb] - c.energyAt(ma, newA) - c.energyAt(mb, newB)
					if gain > bestGain {
						bestGain = gain
						ma, mb, newA, newB := ma, mb, newA, newB
						apply = func() {
							pos[ai], pos[bi] = mb, ma
							loads[ma], loads[mb] = newA, newB
						}
					}
				}
			}
		}

		if apply == nil {
			break
		}
		apply()
		for m := range procE {
			procE[m] = c.energyAt(m, loads[m])
		}
	}
	return EvaluateHetero(in, c.assignment(pos))
}

// HeteroExhaustive enumerates all (M+1)ⁿ assignments with the symmetry
// reduction restricted to same-profile groups — only the first *empty
// processor of each distinct profile* is tried, which on an all-equal
// vector collapses to the seed's single "first empty" rule, making the
// search (and its node count) identical to Exhaustive. Exact for tiny
// instances; serial, so SolveStats node counts are deterministic.
type HeteroExhaustive struct {
	// MaxAssignments guards the search space; 0 means 5 million.
	MaxAssignments int64
}

// Name implements HeteroSolver.
func (HeteroExhaustive) Name() string { return "HETERO-OPT" }

// Solve implements HeteroSolver.
func (e HeteroExhaustive) Solve(in HeteroInstance) (Solution, error) {
	sol, _, err := e.SolveStats(in)
	return sol, err
}

// SolveStats is Solve plus the number of branch-and-bound nodes entered —
// the instrumentation the differential corpus compares against the
// identical-processor search on degenerate vectors.
func (e HeteroExhaustive) SolveStats(in HeteroInstance) (Solution, int64, error) {
	c, err := newHeteroCtx(in)
	if err != nil {
		return Solution{}, 0, err
	}
	n := len(in.Tasks.Tasks)
	limit := e.MaxAssignments
	if limit == 0 {
		limit = 5_000_000
	}
	total := int64(1)
	for i := 0; i < n; i++ {
		total *= int64(in.M() + 1)
		if total > limit {
			return Solution{}, 0, fmt.Errorf("multiproc: exhaustive search needs %d+ assignments, over the limit %d", total, limit)
		}
	}
	s := &heteroSearcher{
		c:        c,
		n:        n,
		loads:    make([]int64, in.M()),
		choice:   make([]int, n),
		bestCost: math.Inf(1),
	}
	s.dfs(0, 0)
	if s.best == nil && !math.IsInf(s.bestCost, 1) {
		s.best = Assignment{} // everything rejected
	}
	if math.IsInf(s.bestCost, 1) {
		return Solution{}, s.nodes, fmt.Errorf("multiproc: exhaustive search found no solution")
	}
	sol, err := EvaluateHetero(in, s.best)
	return sol, s.nodes, err
}

// heteroSearcher is the branch-and-bound state of HeteroExhaustive.
type heteroSearcher struct {
	c      *heteroCtx
	n      int
	loads  []int64
	choice []int // -1 reject, else processor

	bestCost float64
	best     Assignment
	nodes    int64
}

// dfs explores placements for tasks[i:], with penalty the accumulated
// rejection penalty of the prefix. Pruning arithmetic (current energy +
// penalty against the incumbent with the 1e-12 margin) matches
// mpSearcher exactly.
func (s *heteroSearcher) dfs(i int, penalty float64) {
	s.nodes++
	var energy float64
	for m, w := range s.loads {
		energy += s.c.energyAt(m, w)
	}
	if energy+penalty >= s.bestCost-1e-12 {
		return
	}
	if i == s.n {
		s.bestCost = energy + penalty
		s.best = Assignment{}
		for j, ch := range s.choice {
			if ch >= 0 {
				s.best[s.c.in.Tasks.Tasks[j].ID] = ch
			}
		}
		return
	}
	t := s.c.in.Tasks.Tasks[i]
	// Symmetry reduction per profile group: among empty processors of one
	// group only the first is tried (placements on the others are
	// permutations of it).
	mCount := s.c.in.M()
	var triedEmpty [64]bool // indexed by group leader; M ≤ 64 in practice
	var triedEmptyBig map[int]bool
	if mCount > len(triedEmpty) {
		triedEmptyBig = make(map[int]bool, s.c.types)
	}
	for m := 0; m < mCount; m++ {
		if s.loads[m] == 0 {
			g := s.c.typeOf[m]
			if triedEmptyBig != nil {
				if triedEmptyBig[g] {
					continue
				}
				triedEmptyBig[g] = true
			} else {
				if triedEmpty[g] {
					continue
				}
				triedEmpty[g] = true
			}
		}
		if s.c.overloads(m, s.loads[m]+t.Cycles) {
			continue
		}
		s.loads[m] += t.Cycles
		s.choice[i] = m
		s.dfs(i+1, penalty)
		s.loads[m] -= t.Cycles
	}
	s.choice[i] = -1
	s.dfs(i+1, penalty+t.Penalty)
}

// HeteroPartition is the partition-then-reject solver: every task gets a
// candidate *owner* processor, the per-processor accept/reject subproblem
// is solved *optimally* by the single-processor rejection DP (dense or
// sparse rows, reusing one core.ProcProfile per distinct profile), and a
// bounded best-improvement move search re-solves the two affected
// processors when migrating a task's ownership lowers the total cost.
// Two ownership seeds are refined and the cheaper result kept: a
// penalty-density/normalized-load constructive pass, and the
// HeteroLTFRejectLS solution — whose accept set each per-processor DP can
// always reproduce, so HETERO-PART never costs more than HETERO-LS.
type HeteroPartition struct {
	// MaxStates bounds each per-processor DP; 0 means the core default.
	MaxStates int64
	// MaxPasses bounds the ownership-move passes per seed; 0 means 4.
	MaxPasses int
}

// heteroSwapLimit caps the task count for HeteroPartition's O(n²)
// pairwise owner-swap pass; larger instances refine with migrations only.
const heteroSwapLimit = 64

// Name implements HeteroSolver.
func (HeteroPartition) Name() string { return "HETERO-PART" }

// Solve implements HeteroSolver.
func (h HeteroPartition) Solve(in HeteroInstance) (Solution, error) {
	c, err := newHeteroCtx(in)
	if err != nil {
		return Solution{}, err
	}
	tasks := in.Tasks.Tasks
	mCount := in.M()

	// One ProcProfile per distinct profile, shared across that group's DP
	// solves.
	profiles := make([]*core.ProcProfile, mCount)
	for m := range profiles {
		if g := c.typeOf[m]; g != m {
			profiles[m] = profiles[g]
			continue
		}
		pp, err := core.NewProcProfile(in.Procs[m])
		if err != nil {
			return Solution{}, err
		}
		profiles[m] = pp
	}

	// Per-processor optimal accept/reject via the rejection DP. Empty
	// ownership short-circuits to the idle-energy solution.
	dp := core.DP{MaxStates: h.MaxStates}
	solveProc := func(m int, owned []int) (core.Solution, error) {
		if len(owned) == 0 {
			idle := c.energyAt(m, 0)
			return core.Solution{Energy: idle, Cost: idle}, nil
		}
		sub := task.Set{Deadline: in.Tasks.Deadline, Tasks: make([]task.Task, 0, len(owned))}
		for _, ti := range owned {
			sub.Tasks = append(sub.Tasks, tasks[ti])
		}
		ci := core.Instance{Tasks: sub, Proc: in.Procs[m]}.WithProcProfile(profiles[m])
		return dp.Solve(ci)
	}

	// refine solves each processor's DP on the seed ownership, then runs
	// bounded best-improvement move passes — migrating one task's ownership
	// re-solves only the two touched processors. On small instances each
	// pass also tries pairwise owner swaps (the coordinated exchanges that
	// single migrations cannot reach); the O(n²) swap scan is skipped past
	// heteroSwapLimit tasks to keep large serve solves at O(n·M) DP calls.
	passes := h.MaxPasses
	if passes == 0 {
		passes = 4
	}
	doSwaps := len(tasks) <= heteroSwapLimit
	refine := func(owner []int) ([]core.Solution, float64, error) {
		owned := make([][]int, mCount)
		for ti, m := range owner {
			owned[m] = append(owned[m], ti)
		}
		procSols := make([]core.Solution, mCount)
		for m := 0; m < mCount; m++ {
			sol, err := solveProc(m, owned[m])
			if err != nil {
				return nil, 0, err
			}
			procSols[m] = sol
		}
		for pass := 0; pass < passes; pass++ {
			improved := false
			for ti := range tasks {
				from := owner[ti]
				fromOwned := slices.DeleteFunc(slices.Clone(owned[from]), func(x int) bool { return x == ti })
				fromSol, err := solveProc(from, fromOwned)
				if err != nil {
					return nil, 0, err
				}
				bestDelta := -1e-9
				bestTo := -1
				var bestToSol core.Solution
				for to := 0; to < mCount; to++ {
					if to == from {
						continue
					}
					toSol, err := solveProc(to, append(slices.Clone(owned[to]), ti))
					if err != nil {
						return nil, 0, err
					}
					delta := (fromSol.Cost + toSol.Cost) - (procSols[from].Cost + procSols[to].Cost)
					if delta < bestDelta {
						bestDelta, bestTo, bestToSol = delta, to, toSol
					}
				}
				if bestTo >= 0 {
					owned[bestTo] = append(owned[bestTo], ti)
					owned[from] = fromOwned
					owner[ti] = bestTo
					procSols[from], procSols[bestTo] = fromSol, bestToSol
					improved = true
				}
			}
			for ti := 0; doSwaps && ti < len(tasks); ti++ {
				for tj := ti + 1; tj < len(tasks); tj++ {
					pa, pb := owner[ti], owner[tj]
					if pa == pb {
						continue
					}
					aOwned := slices.DeleteFunc(slices.Clone(owned[pa]), func(x int) bool { return x == ti })
					aOwned = append(aOwned, tj)
					bOwned := slices.DeleteFunc(slices.Clone(owned[pb]), func(x int) bool { return x == tj })
					bOwned = append(bOwned, ti)
					aSol, err := solveProc(pa, aOwned)
					if err != nil {
						return nil, 0, err
					}
					bSol, err := solveProc(pb, bOwned)
					if err != nil {
						return nil, 0, err
					}
					delta := (aSol.Cost + bSol.Cost) - (procSols[pa].Cost + procSols[pb].Cost)
					if delta < -1e-9 {
						owned[pa], owned[pb] = aOwned, bOwned
						owner[ti], owner[tj] = pb, pa
						procSols[pa], procSols[pb] = aSol, bSol
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		total := 0.0
		for _, s := range procSols {
			total += s.Cost
		}
		return procSols, total, nil
	}

	// Seed A: tasks in non-increasing penalty density, each owned by the
	// processor with the smallest projected normalized load (load+c)/cap —
	// the big.LITTLE generalization of least-loaded. Ownership never
	// rejects; the DP does, so overflow here is fine.
	ord := make([]int, len(tasks))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return tasks[ord[a]].Penalty*float64(tasks[ord[b]].Cycles) >
			tasks[ord[b]].Penalty*float64(tasks[ord[a]].Cycles)
	})
	caps := make([]float64, mCount)
	for m, p := range in.Procs {
		caps[m] = math.Max(p.Capacity(in.Tasks.Deadline), 1)
	}
	normalizedOwner := func(owner []int, loads []int64, ti int) int {
		t := tasks[ti]
		best, bestScore := 0, math.Inf(1)
		for m := 0; m < mCount; m++ {
			score := float64(loads[m]+t.Cycles) / caps[m]
			if score < bestScore {
				best, bestScore = m, score
			}
		}
		owner[ti] = best
		loads[best] += t.Cycles
		return best
	}
	ownerA := make([]int, len(tasks))
	loadsA := make([]int64, mCount)
	for _, ti := range ord {
		normalizedOwner(ownerA, loadsA, ti)
	}
	solsA, costA, err := refine(ownerA)
	if err != nil {
		return Solution{}, err
	}

	// Seed B: ownership from the local-search solution — accepted tasks
	// keep their processor, rejected ones fall back to the normalized-load
	// rule in density order. The per-processor DP can always reproduce the
	// LS accept set, so the refined cost never exceeds HETERO-LS.
	byID := make(map[int]int, len(tasks))
	for i, t := range tasks {
		byID[t.ID] = i
	}
	lsSol, err := (HeteroLTFRejectLS{}).Solve(in)
	if err != nil {
		return Solution{}, err
	}
	ownerB := make([]int, len(tasks))
	for i := range ownerB {
		ownerB[i] = -1
	}
	loadsB := make([]int64, mCount)
	for m, ids := range lsSol.PerProc {
		for _, id := range ids {
			ti := byID[id]
			ownerB[ti] = m
			loadsB[m] += tasks[ti].Cycles
		}
	}
	for _, ti := range ord {
		if ownerB[ti] < 0 {
			normalizedOwner(ownerB, loadsB, ti)
		}
	}
	solsB, costB, err := refine(ownerB)
	if err != nil {
		return Solution{}, err
	}

	// Seed C: sequential DP cascade — processors in descending capacity
	// order each run the rejection DP on the still-unowned tasks and keep
	// what they accept; the leftovers fall back to the normalized-load
	// rule. Finds tight packings the load-balancing seeds miss.
	procOrd := make([]int, mCount)
	for i := range procOrd {
		procOrd[i] = i
	}
	sort.Slice(procOrd, func(a, b int) bool {
		ca, cb := caps[procOrd[a]], caps[procOrd[b]]
		if ca != cb {
			return ca > cb
		}
		return procOrd[a] < procOrd[b]
	})
	ownerC := make([]int, len(tasks))
	for i := range ownerC {
		ownerC[i] = -1
	}
	remaining := make([]int, len(tasks))
	copy(remaining, ord)
	for _, m := range procOrd {
		if len(remaining) == 0 {
			break
		}
		sol, err := solveProc(m, remaining)
		if err != nil {
			return Solution{}, err
		}
		next := remaining[:0]
		accepted := make(map[int]bool, len(sol.Accepted))
		for _, id := range sol.Accepted {
			accepted[id] = true
		}
		for _, ti := range remaining {
			if accepted[tasks[ti].ID] {
				ownerC[ti] = m
			} else {
				next = append(next, ti)
			}
		}
		remaining = next
	}
	loadsC := make([]int64, mCount)
	for ti, m := range ownerC {
		if m >= 0 {
			loadsC[m] += tasks[ti].Cycles
		}
	}
	for _, ti := range ord {
		if ownerC[ti] < 0 {
			normalizedOwner(ownerC, loadsC, ti)
		}
	}
	solsC, costC, err := refine(ownerC)
	if err != nil {
		return Solution{}, err
	}

	procSols, bestCost := solsA, costA
	if costB < bestCost {
		procSols, bestCost = solsB, costB
	}
	if costC < bestCost {
		procSols = solsC
	}

	// Assemble the assignment from each processor's accepted set.
	assign := Assignment{}
	for m := 0; m < mCount; m++ {
		for _, id := range procSols[m].Accepted {
			assign[id] = m
		}
	}
	return EvaluateHetero(in, assign)
}

// DefaultHeteroLowerBoundStates mirrors core.DefaultLowerBoundStates for
// the pooled heterogeneous relaxation.
const DefaultHeteroLowerBoundStates = int64(1) << 20

// HeteroLowerBound returns a certified lower bound on the optimal
// heterogeneous partitioned-rejection cost of in, by solving a pooled
// convex relaxation exactly on a floor-scaled grid:
//
//  1. cycles are floor-scaled by an integer k chosen so the grid fits
//     maxStates (≤ 0 means DefaultHeteroLowerBoundStates), as in
//     core.CostLowerBound — every truly feasible accepted set stays
//     feasible in the scaled grid, and zero-scaled tasks are accepted for
//     free (both only lower the bound);
//  2. the M per-processor energy curves are pooled into one grid curve
//     Φ(t) = min over integer splits Σ_m j_m = t of Σ_m E_m(k·j_m). With
//     each E_m convex and nondecreasing (continuous speeds, dormancy
//     disabled — required, as in core.CostLowerBound), the discrete
//     inf-convolution is the ascending merge of the per-processor
//     marginal increments; a suffix-min pass per processor keeps the
//     merge a certified lower bound even under float jitter in the
//     marginals;
//  3. a real split's per-processor floors each lose strictly less than
//     one grid cell, so the relaxation prices a scaled workload t at
//     Φ(max(t−(M−1), 0)) — the certification offset;
//  4. an accept/reject DP over the scaled cycles against that pooled
//     curve yields the bound.
//
// With M = 1 and k = 1 the bound equals the exact single-processor DP
// optimum. Discrete speed ladders and dormant-enabled processors are
// refused (their E(w) can dip, breaking both monotonicity and the
// marginal merge).
func HeteroLowerBound(in HeteroInstance, maxStates int64) (float64, error) {
	if maxStates <= 0 {
		maxStates = DefaultHeteroLowerBoundStates
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	d := in.Tasks.Deadline
	mCount := in.M()
	for m, p := range in.Procs {
		if p.Levels != nil || p.DormantEnable {
			return 0, fmt.Errorf("multiproc: hetero lower bound needs monotone convex energy curves (continuous speeds, dormancy disabled; processor %d)", m)
		}
	}

	// Integer per-processor capacities, with the evaluator's float slack.
	caps := make([]int64, mCount)
	var capTotal int64
	for m, p := range in.Procs {
		caps[m] = int64(math.Floor(p.Capacity(d) * (1 + 1e-9)))
		if caps[m] < 0 {
			return 0, fmt.Errorf("multiproc: negative capacity on processor %d", m)
		}
		capTotal += caps[m]
	}

	curves := make([]speed.Curve, mCount)
	idle := 0.0
	for m, p := range in.Procs {
		curves[m] = speed.NewCurve(p, d)
		idle += curves[m].Energy(0)
	}

	n := int64(len(in.Tasks.Tasks))
	if n == 0 {
		return idle, nil
	}
	per := maxStates/n - 1
	if per < 1 {
		return 0, fmt.Errorf("multiproc: hetero lower-bound state budget %d too small for %d tasks", maxStates, n)
	}
	k := int64(1)
	if capTotal > per {
		k = (capTotal + per - 1) / per
	}

	// Pooled grid curve: ascending merge of per-processor marginal
	// increments over the scaled grid, suffix-min'd so each stream is
	// genuinely nondecreasing (float jitter can otherwise let the greedy
	// merge pick a non-minimal prefix selection).
	lims := make([]int64, mCount)
	var gridT int64
	for m := range caps {
		lims[m] = caps[m] / k
		gridT += lims[m]
	}
	margs := make([][]float64, mCount)
	for m := range margs {
		mg := make([]float64, lims[m])
		for j := int64(0); j < lims[m]; j++ {
			mg[j] = curves[m].Energy(float64((j+1)*k)) - curves[m].Energy(float64(j*k))
		}
		for j := int64(len(mg)) - 2; j >= 0; j-- {
			if mg[j] > mg[j+1] {
				mg[j] = mg[j+1]
			}
		}
		margs[m] = mg
	}
	phi := make([]float64, gridT+1)
	phi[0] = idle
	heads := make([]int64, mCount)
	for t := int64(1); t <= gridT; t++ {
		best, bestV := -1, math.Inf(1)
		for m := 0; m < mCount; m++ {
			if heads[m] < lims[m] && margs[m][heads[m]] < bestV {
				best, bestV = m, margs[m][heads[m]]
			}
		}
		heads[best]++
		phi[t] = phi[t-1] + bestV
	}

	// Floor-scale the tasks, dropping the free (⌊c/k⌋ = 0) ones.
	type scaled struct {
		c int64
		v float64
	}
	items := make([]scaled, 0, n)
	var sumScaled int64
	for _, t := range in.Tasks.Tasks {
		sc := t.Cycles / k
		if sc == 0 {
			continue
		}
		items = append(items, scaled{c: sc, v: t.Penalty})
		sumScaled += sc
	}
	if len(items) == 0 {
		return idle, nil
	}

	// Accept/reject DP against the pooled curve. The reachable scaled
	// total is bounded by gridT + (M−1): a feasible real split floors to
	// Σ_m j_m ≥ t − (M−1), so any heavier t is infeasible for real too.
	shift := int64(mCount - 1)
	width := sumScaled
	if width > gridT+shift {
		width = gridT + shift
	}
	dp := make([]float64, width+1)
	for t := int64(1); t <= width; t++ {
		dp[t] = math.Inf(1)
	}
	for _, it := range items {
		for t := width; t >= 0; t-- {
			keep := math.Inf(1)
			if t >= it.c && !math.IsInf(dp[t-it.c], 1) {
				keep = dp[t-it.c]
			}
			rej := dp[t] + it.v
			if keep < rej {
				dp[t] = keep
			} else {
				dp[t] = rej
			}
		}
	}
	best := math.Inf(1)
	for t := int64(0); t <= width; t++ {
		if math.IsInf(dp[t], 1) {
			continue
		}
		g := t - shift
		if g < 0 {
			g = 0
		}
		if g > gridT {
			g = gridT
		}
		if v := phi[g] + dp[t]; v < best {
			best = v
		}
	}
	return best, nil
}

// HeteroResult is a heterogeneous solve with its certified optimality
// context, mirroring the anytime tier's gap reporting.
type HeteroResult struct {
	Solution
	// LowerBound is the certified HeteroLowerBound of the instance; only
	// meaningful when Gap ≥ 0.
	LowerBound float64
	// Gap is (Cost − LowerBound)/Cost, clamped at 0 — so 0 means proven
	// optimal. Negative when no lower bound was available (discrete
	// ladders, dormant processors).
	Gap float64
}

// SolveHeteroCertified runs s and attaches the certified optimality gap.
// A declined lower bound (non-convex processor flavours) is not an error:
// the result carries Gap = −1.
func SolveHeteroCertified(in HeteroInstance, s HeteroSolver) (HeteroResult, error) {
	sol, err := s.Solve(in)
	if err != nil {
		return HeteroResult{}, err
	}
	res := HeteroResult{Solution: sol, Gap: -1}
	lb, err := HeteroLowerBound(in, 0)
	if err != nil {
		return res, nil
	}
	res.LowerBound = lb
	switch {
	case sol.Cost <= 0:
		res.Gap = 0
	default:
		res.Gap = math.Max(0, (sol.Cost-lb)/sol.Cost)
	}
	return res, nil
}
