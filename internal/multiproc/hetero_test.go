package multiproc

// Heterogeneous differential corpus: (a) degeneracy — every hetero solver
// on an all-equal profile vector must reproduce its identical-processor
// counterpart bit for bit (the exhaustive search additionally by explored
// node count); (b) small-grid optimality — HeteroPartition against the
// HeteroExhaustive reference on two-type vectors; (c) the certified
// HeteroLowerBound never exceeds the exhaustive optimum and is exact at
// M = 1 on unscaled grids.

import (
	"math/rand"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// mustEqualHetero compares two hetero solutions bitwise and recomputes the
// got solution from scratch through the heterogeneous partition oracle.
func mustEqualHetero(t *testing.T, in HeteroInstance, label string, got, want Solution) {
	t.Helper()
	if err := oracle.EqualPartitionSolutions(partitionOf(got), partitionOf(want)); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if err := oracle.CheckHeteroPartition(in.Tasks, in.Procs, partitionOf(got)); err != nil {
		t.Errorf("%s: %v", label, err)
	}
}

func TestHeteroDegeneracyLTFReject(t *testing.T) {
	for i, in := range diffCorpus(t) {
		want, err := (LTFReject{}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: identical solver: %v", i, err)
		}
		got, err := (HeteroLTFReject{}).Solve(AsHetero(in))
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		mustEqualHetero(t, AsHetero(in), fmtLabel("HeteroLTFReject", i), got, want)
	}
}

func TestHeteroDegeneracyLTFRejectLS(t *testing.T) {
	for i, in := range diffCorpus(t) {
		for _, g := range []LTFRejectLS{{}, {DisableExchange: true}, {MaxIterations: 3}} {
			want, err := g.Solve(in)
			if err != nil {
				t.Fatalf("instance %d: identical solver: %v", i, err)
			}
			h := HeteroLTFRejectLS{MaxIterations: g.MaxIterations, DisableExchange: g.DisableExchange}
			got, err := h.Solve(AsHetero(in))
			if err != nil {
				t.Fatalf("instance %d: %v", i, err)
			}
			mustEqualHetero(t, AsHetero(in), fmtLabel("HeteroLTFRejectLS", i), got, want)
		}
	}
}

func TestHeteroDegeneracyExhaustive(t *testing.T) {
	for i, in := range diffCorpus(t) {
		if len(in.Tasks.Tasks) > 9 && in.M > 2 {
			in.Tasks.Tasks = in.Tasks.Tasks[:9] // keep the search tractable
		}
		want, wantNodes, err := (Exhaustive{}).SolveStats(in)
		if err != nil {
			t.Fatalf("instance %d: identical solver: %v", i, err)
		}
		got, gotNodes, err := (HeteroExhaustive{}).SolveStats(AsHetero(in))
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		mustEqualHetero(t, AsHetero(in), fmtLabel("HeteroExhaustive", i), got, want)
		if gotNodes != wantNodes {
			t.Errorf("instance %d: explored %d nodes, identical-processor search explored %d", i, gotNodes, wantNodes)
		}
	}
}

// bigLittleProcs builds a two-type vector: nBig fast processors and
// nLittle slow ones at the given smax ratio.
func bigLittleProcs(model power.Polynomial, nBig, nLittle int, ratio float64) []speed.Proc {
	procs := make([]speed.Proc, 0, nBig+nLittle)
	for i := 0; i < nBig; i++ {
		procs = append(procs, speed.Proc{Model: model, SMax: 1})
	}
	for i := 0; i < nLittle; i++ {
		procs = append(procs, speed.Proc{Model: model, SMax: 1 / ratio})
	}
	return procs
}

// heteroCorpus builds two-type instances small enough for the exhaustive
// reference: continuous convex processor flavours only, so the certified
// lower bound applies everywhere.
func heteroCorpus(t *testing.T) []HeteroInstance {
	t.Helper()
	vectors := [][]speed.Proc{
		bigLittleProcs(power.Cubic(), 1, 1, 2),
		bigLittleProcs(power.Cubic(), 1, 2, 4),
		bigLittleProcs(power.Cubic(), 2, 2, 2),
		bigLittleProcs(power.XScale(), 1, 1, 2.5),
		{
			{Model: power.Cubic(), SMax: 1},
			{Model: power.XScale(), SMin: 0.15, SMax: 0.6},
		},
	}
	var corpus []HeteroInstance
	for seed := int64(0); seed < 6; seed++ {
		for vi, procs := range vectors {
			smaxTotal := 0.0
			for _, p := range procs {
				smaxTotal += p.SMax
			}
			n := 6 + int(seed)%3
			if len(procs) > 3 {
				n = 6 // (M+1)^n within the exhaustive budget
			}
			set, err := gen.Frame(rand.New(rand.NewSource(seed*53+int64(vi))), gen.Config{
				N: n, Load: (1.2 + float64(seed%3)) * smaxTotal, Deadline: 40,
				Penalty: gen.PenaltyModel(seed % 3),
			})
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, HeteroInstance{Tasks: set, Procs: procs})
		}
	}
	return corpus
}

func TestHeteroPartitionVsExhaustive(t *testing.T) {
	for i, in := range heteroCorpus(t) {
		opt, err := (HeteroExhaustive{}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: exhaustive: %v", i, err)
		}
		ls, err := (HeteroLTFRejectLS{}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: HETERO-LS: %v", i, err)
		}
		for _, s := range []HeteroSolver{HeteroPartition{}, HeteroLTFReject{}, HeteroLTFRejectLS{}} {
			got, err := s.Solve(in)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", i, s.Name(), err)
			}
			if err := oracle.CheckHeteroPartition(in.Tasks, in.Procs, partitionOf(got)); err != nil {
				t.Errorf("instance %d: %s: %v", i, s.Name(), err)
			}
			if err := oracle.CheckNotBelow(s.Name(), got.Cost, opt.Cost, 1e-9); err != nil {
				t.Errorf("instance %d: %v", i, err)
			}
			if s.Name() == "HETERO-PART" {
				if got.Cost > opt.Cost*1.05+1e-9 {
					t.Errorf("instance %d: HETERO-PART cost %g more than 5%% above optimum %g", i, got.Cost, opt.Cost)
				}
				// The LS-seeded refinement guarantees PART ≤ LS.
				if err := oracle.CheckNotAbove("HETERO-PART vs HETERO-LS", got.Cost, ls.Cost, 1e-9); err != nil {
					t.Errorf("instance %d: %v", i, err)
				}
			}
		}
	}
}

func TestHeteroLowerBoundNeverExceedsOptimum(t *testing.T) {
	for i, in := range heteroCorpus(t) {
		opt, err := (HeteroExhaustive{}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: exhaustive: %v", i, err)
		}
		lb, err := HeteroLowerBound(in, 0)
		if err != nil {
			t.Fatalf("instance %d: lower bound: %v", i, err)
		}
		if lb > opt.Cost+1e-9*(1+opt.Cost) {
			t.Errorf("instance %d: lower bound %g exceeds optimum %g", i, lb, opt.Cost)
		}
	}
}

func TestHeteroLowerBoundExactSingleProcessor(t *testing.T) {
	// With M = 1 and an unscaled grid (k = 1) the pooled relaxation *is*
	// the single-processor rejection DP, so the bound is tight.
	for seed := int64(0); seed < 4; seed++ {
		set, err := gen.Frame(rand.New(rand.NewSource(seed)), gen.Config{
			N: 7, Load: 1.8, Deadline: 40, Penalty: gen.PenaltyModel(seed % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := HeteroInstance{Tasks: set, Procs: []speed.Proc{{Model: power.Cubic(), SMax: 1}}}
		opt, err := (HeteroExhaustive{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := HeteroLowerBound(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if diff := opt.Cost - lb; diff > 1e-9*(1+opt.Cost) || diff < -1e-9*(1+opt.Cost) {
			t.Errorf("seed %d: M=1 bound %g not tight against optimum %g", seed, lb, opt.Cost)
		}
	}
}

func TestSolveHeteroCertified(t *testing.T) {
	in := heteroCorpus(t)[0]
	res, err := SolveHeteroCertified(in, HeteroPartition{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap < 0 {
		t.Fatalf("convex instance reported no certified gap")
	}
	if res.LowerBound > res.Cost+1e-9*(1+res.Cost) {
		t.Errorf("lower bound %g exceeds solution cost %g", res.LowerBound, res.Cost)
	}

	// Discrete ladders decline the bound but not the solve.
	in.Procs = []speed.Proc{
		{Model: power.XScale(), Levels: power.XScaleLevels()},
		{Model: power.XScale(), Levels: power.XScaleLevels()},
	}
	res, err = SolveHeteroCertified(in, HeteroPartition{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap != -1 {
		t.Errorf("discrete-ladder instance reported gap %g, want -1", res.Gap)
	}
}

func TestHeteroNamesStable(t *testing.T) {
	names := map[string]string{
		(HeteroPartition{}).Name():   "HETERO-PART",
		(HeteroLTFReject{}).Name():   "HETERO-LTF",
		(HeteroLTFRejectLS{}).Name(): "HETERO-LS",
		(HeteroExhaustive{}).Name():  "HETERO-OPT",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("solver name %q, want %q", got, want)
		}
	}
	for _, name := range HeteroSolverNames() {
		s, ok := HeteroSolverByName(name)
		if !ok || s.Name() != name {
			t.Errorf("HeteroSolverByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := HeteroSolverByName("NOPE"); ok {
		t.Error("HeteroSolverByName accepted an unknown name")
	}
}

func TestEvaluateHeteroErrors(t *testing.T) {
	in := heteroCorpus(t)[0]
	firstID := in.Tasks.Tasks[0].ID

	// Out-of-range processor index.
	if _, err := EvaluateHetero(in, Assignment{firstID: len(in.Procs)}); err == nil {
		t.Error("out-of-range processor index not rejected")
	}
	// Unknown task ID.
	unknown := firstID
	for _, tk := range in.Tasks.Tasks {
		if tk.ID >= unknown {
			unknown = tk.ID + 1
		}
	}
	if _, err := EvaluateHetero(in, Assignment{unknown: 0}); err == nil {
		t.Error("assignment with an unknown task ID not rejected")
	}
	// Overload: everything on the little processor.
	all := Assignment{}
	for _, tk := range in.Tasks.Tasks {
		all[tk.ID] = 1
	}
	if _, err := EvaluateHetero(in, all); err == nil {
		t.Error("per-processor overload not rejected")
	}
	// Invalid instance.
	bad := in
	bad.Procs = nil
	if _, err := EvaluateHetero(bad, Assignment{}); err == nil {
		t.Error("instance without processors not rejected")
	}
}
