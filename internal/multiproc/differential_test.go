package multiproc

// Differential corpus pinning the context/incremental-search overhaul to
// the pre-overhaul code shape: refLTFReject, refLTFRejectLS and
// refExhaustive below are verbatim copies of the seed implementations
// (direct speed.Proc.Energy probes, per-move full re-pricing, serial
// branch-and-bound), and every optimized solver must reproduce their
// solutions bit for bit — checked through the shared verify oracles
// (oracle.EqualPartitionSolutions + oracle.CheckPartition), and the
// exhaustive search additionally by explored node count.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify/oracle"
)

// refLTFReject is the seed LTFReject.Solve.
func refLTFReject(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	tasks := append([]task.Task(nil), in.Tasks.Tasks...)
	sort.SliceStable(tasks, func(a, b int) bool {
		return tasks[a].Penalty*float64(tasks[b].Cycles) > tasks[b].Penalty*float64(tasks[a].Cycles)
	})
	loads := make([]int64, in.M)
	assign := Assignment{}
	for _, t := range tasks {
		m := 0
		for i := 1; i < in.M; i++ {
			if loads[i] < loads[m] {
				m = i
			}
		}
		w := loads[m]
		if float64(w+t.Cycles) > in.capacity()*(1+1e-9) {
			continue
		}
		marginal := in.Proc.Energy(float64(w+t.Cycles), in.Tasks.Deadline) -
			in.Proc.Energy(float64(w), in.Tasks.Deadline)
		if marginal < t.Penalty {
			assign[t.ID] = m
			loads[m] += t.Cycles
		}
	}
	return Evaluate(in, assign)
}

// refLTFRejectLS is the seed LTFRejectLS.Solve: every move probe re-prices
// the touched processors with a full speed.Proc.Energy call.
func refLTFRejectLS(g LTFRejectLS, in Instance) (Solution, error) {
	seed, err := refLTFReject(in)
	if err != nil {
		return Solution{}, err
	}
	assign := Assignment{}
	loads := make([]int64, in.M)
	for m, ids := range seed.PerProc {
		for _, id := range ids {
			assign[id] = m
			t, _ := in.Tasks.ByID(id)
			loads[m] += t.Cycles
		}
	}
	limit := g.MaxIterations
	if limit == 0 {
		limit = 10 * len(in.Tasks.Tasks)
	}
	d := in.Tasks.Deadline
	energyAt := func(w int64) float64 { return in.Proc.Energy(float64(w), d) }

	for iter := 0; iter < limit; iter++ {
		bestGain := 1e-9
		var apply func()
		for _, t := range in.Tasks.Tasks {
			t := t
			cur, accepted := assign[t.ID]
			if accepted {
				gain := energyAt(loads[cur]) - energyAt(loads[cur]-t.Cycles) - t.Penalty
				if gain > bestGain {
					bestGain = gain
					m := cur
					apply = func() { delete(assign, t.ID); loads[m] -= t.Cycles }
				}
				for m := 0; m < in.M; m++ {
					if m == cur || float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := energyAt(loads[cur]) + energyAt(loads[m]) -
						energyAt(loads[cur]-t.Cycles) - energyAt(loads[m]+t.Cycles)
					if gain > bestGain {
						bestGain = gain
						from, to := cur, m
						apply = func() {
							assign[t.ID] = to
							loads[from] -= t.Cycles
							loads[to] += t.Cycles
						}
					}
				}
			} else {
				for m := 0; m < in.M; m++ {
					if float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := t.Penalty - (energyAt(loads[m]+t.Cycles) - energyAt(loads[m]))
					if gain > bestGain {
						bestGain = gain
						to := m
						apply = func() { assign[t.ID] = to; loads[to] += t.Cycles }
					}
				}
			}
		}

		if !g.DisableExchange {
			for _, out := range in.Tasks.Tasks {
				mo, okOut := assign[out.ID]
				if !okOut {
					continue
				}
				for _, inc := range in.Tasks.Tasks {
					if _, accepted := assign[inc.ID]; accepted {
						continue
					}
					for m := 0; m < in.M; m++ {
						load := loads[m]
						if m == mo {
							load -= out.Cycles
						}
						if float64(load+inc.Cycles) > in.capacity()*(1+1e-9) {
							continue
						}
						gain := inc.Penalty - out.Penalty
						if m == mo {
							gain += energyAt(loads[mo]) - energyAt(load+inc.Cycles)
						} else {
							gain += energyAt(loads[mo]) - energyAt(loads[mo]-out.Cycles)
							gain += energyAt(loads[m]) - energyAt(loads[m]+inc.Cycles)
						}
						if gain > bestGain {
							bestGain = gain
							out, inc, mo, m := out, inc, mo, m
							apply = func() {
								delete(assign, out.ID)
								loads[mo] -= out.Cycles
								assign[inc.ID] = m
								loads[m] += inc.Cycles
							}
						}
					}
				}
			}
		}

		if !g.DisableExchange {
			for _, a := range in.Tasks.Tasks {
				ma, okA := assign[a.ID]
				if !okA {
					continue
				}
				for _, b := range in.Tasks.Tasks {
					mb, okB := assign[b.ID]
					if !okB || a.ID >= b.ID || ma == mb {
						continue
					}
					newA := loads[ma] - a.Cycles + b.Cycles
					newB := loads[mb] - b.Cycles + a.Cycles
					if float64(newA) > in.capacity()*(1+1e-9) || float64(newB) > in.capacity()*(1+1e-9) {
						continue
					}
					gain := energyAt(loads[ma]) + energyAt(loads[mb]) - energyAt(newA) - energyAt(newB)
					if gain > bestGain {
						bestGain = gain
						a, b, ma, mb, newA, newB := a, b, ma, mb, newA, newB
						apply = func() {
							assign[a.ID], assign[b.ID] = mb, ma
							loads[ma], loads[mb] = newA, newB
						}
					}
				}
			}
		}

		if apply == nil {
			break
		}
		apply()
	}
	return Evaluate(in, assign)
}

// refExhaustive is the seed Exhaustive.Solve, instrumented with the same
// node counter the optimized SolveStats reports (one count per dfs entry).
func refExhaustive(e Exhaustive, in Instance) (Solution, int64, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, 0, err
	}
	n := len(in.Tasks.Tasks)
	limit := e.MaxAssignments
	if limit == 0 {
		limit = 5_000_000
	}
	total := int64(1)
	for i := 0; i < n; i++ {
		total *= int64(in.M + 1)
		if total > limit {
			return Solution{}, 0, fmt.Errorf("multiproc: exhaustive search needs %d+ assignments, over the limit %d", total, limit)
		}
	}

	d := in.Tasks.Deadline
	loads := make([]int64, in.M)
	choice := make([]int, n)
	bestCost := math.Inf(1)
	var best Assignment
	var nodes int64

	var dfs func(i int, penalty float64)
	dfs = func(i int, penalty float64) {
		nodes++
		var energy float64
		for _, w := range loads {
			energy += in.Proc.Energy(float64(w), d)
		}
		if energy+penalty >= bestCost-1e-12 {
			return
		}
		if i == n {
			bestCost = energy + penalty
			best = Assignment{}
			for j, c := range choice {
				if c >= 0 {
					best[in.Tasks.Tasks[j].ID] = c
				}
			}
			return
		}
		t := in.Tasks.Tasks[i]
		triedEmpty := false
		for m := 0; m < in.M; m++ {
			if loads[m] == 0 {
				if triedEmpty {
					continue
				}
				triedEmpty = true
			}
			if float64(loads[m]+t.Cycles) > in.capacity()*(1+1e-9) {
				continue
			}
			loads[m] += t.Cycles
			choice[i] = m
			dfs(i+1, penalty)
			loads[m] -= t.Cycles
		}
		choice[i] = -1
		dfs(i+1, penalty+t.Penalty)
	}
	dfs(0, 0)

	if best == nil && !math.IsInf(bestCost, 1) {
		best = Assignment{}
	}
	if math.IsInf(bestCost, 1) {
		return Solution{}, nodes, fmt.Errorf("multiproc: exhaustive search found no solution")
	}
	sol, err := Evaluate(in, best)
	return sol, nodes, err
}

// diffCorpus builds the ~30-instance corpus: every processor flavour the
// energy Curve must handle (ideal cubic, leaky continuous, discrete
// levels, dormant-enable) across M ∈ {1..4} and contested loads.
func diffCorpus(t *testing.T) []Instance {
	t.Helper()
	procs := []speed.Proc{
		{Model: power.Cubic(), SMax: 1},
		{Model: power.XScale(), SMin: 0.15, SMax: 1},
		{Model: power.XScale(), Levels: power.XScaleLevels()},
		{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4},
	}
	var corpus []Instance
	for seed := int64(0); seed < 8; seed++ {
		for pi, proc := range procs {
			n := 6 + int(seed)%4 + pi
			set, err := gen.Frame(rand.New(rand.NewSource(seed*37+int64(pi))), gen.Config{
				N: n, Load: 1.5 + float64(seed%4), Deadline: 40,
				Penalty: gen.PenaltyModel(seed % 3),
			})
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, Instance{Tasks: set, Proc: proc, M: 1 + int(seed+int64(pi))%4})
		}
	}
	return corpus
}

// partitionOf adapts Solution to the shared oracle's mirror struct.
func partitionOf(s Solution) oracle.PartitionSolution {
	return oracle.PartitionSolution{
		PerProc: s.PerProc, Rejected: s.Rejected,
		Energies: s.Energies, Energy: s.Energy, Penalty: s.Penalty, Cost: s.Cost,
	}
}

// mustEqualSolutions compares two solutions through the shared verify
// oracles: field-for-field bitwise equality, plus a from-scratch partition
// recompute of the optimized solver's output.
func mustEqualSolutions(t *testing.T, in Instance, label string, got, want Solution) {
	t.Helper()
	if err := oracle.EqualPartitionSolutions(partitionOf(got), partitionOf(want)); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if err := oracle.CheckPartition(in.Tasks, in.Proc, in.M, partitionOf(got)); err != nil {
		t.Errorf("%s: %v", label, err)
	}
}

func TestDifferentialLTFReject(t *testing.T) {
	for i, in := range diffCorpus(t) {
		want, err := refLTFReject(in)
		if err != nil {
			t.Fatalf("instance %d: reference: %v", i, err)
		}
		got, err := (LTFReject{}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		mustEqualSolutions(t, in, fmtLabel("LTFReject", i), got, want)
	}
}

func TestDifferentialLTFRejectLS(t *testing.T) {
	for i, in := range diffCorpus(t) {
		for _, g := range []LTFRejectLS{{}, {DisableExchange: true}, {MaxIterations: 3}} {
			want, err := refLTFRejectLS(g, in)
			if err != nil {
				t.Fatalf("instance %d: reference: %v", i, err)
			}
			got, err := g.Solve(in)
			if err != nil {
				t.Fatalf("instance %d: %v", i, err)
			}
			mustEqualSolutions(t, in, fmtLabel("LTFRejectLS", i), got, want)
		}
	}
}

func TestDifferentialExhaustive(t *testing.T) {
	for i, in := range diffCorpus(t) {
		if len(in.Tasks.Tasks) > 9 && in.M > 2 {
			in.Tasks.Tasks = in.Tasks.Tasks[:9] // keep the search tractable
		}
		want, wantNodes, err := refExhaustive(Exhaustive{}, in)
		if err != nil {
			t.Fatalf("instance %d: reference: %v", i, err)
		}
		got, gotNodes, err := (Exhaustive{}).SolveStats(in)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		mustEqualSolutions(t, in, fmtLabel("Exhaustive", i), got, want)
		if gotNodes != wantNodes {
			t.Errorf("instance %d: explored %d nodes, reference %d", i, gotNodes, wantNodes)
		}

		par, err := (Exhaustive{Workers: 4}).Solve(in)
		if err != nil {
			t.Fatalf("instance %d: parallel: %v", i, err)
		}
		mustEqualSolutions(t, in, fmtLabel("ExhaustiveParallel", i), par, want)
	}
}

func fmtLabel(name string, i int) string { return fmt.Sprintf("%s/%d", name, i) }
