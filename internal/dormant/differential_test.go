package dormant

// Differential corpus pinning the sort-skips in Gaps/mirrorSlices to the
// seed code shape: the ref* functions below are the seed implementations
// (unconditional sorts on forward-built arrays), and the optimized package
// must reproduce their output bit for bit — gap bounds, slice traces, and
// full Compare analyses alike.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// refGaps is the seed Gaps with its unconditional interval sort.
func refGaps(slices []edf.Slice, horizon float64) []Gap {
	intervals := make([][2]float64, 0, len(slices))
	for _, s := range slices {
		if s.End > s.Start {
			intervals = append(intervals, [2]float64{s.Start, s.End})
		}
	}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i][0] < intervals[j][0] })

	var gaps []Gap
	cursor := 0.0
	for _, iv := range intervals {
		if iv[0] > cursor+gapEps {
			gaps = append(gaps, Gap{Start: cursor, End: iv[0]})
		}
		if iv[1] > cursor {
			cursor = iv[1]
		}
	}
	if horizon > cursor+gapEps {
		gaps = append(gaps, Gap{Start: cursor, End: horizon})
	}
	return gaps
}

// refMirrorSlices is the seed mirror: forward build plus sort.
func refMirrorSlices(slices []edf.Slice, horizon float64) []edf.Slice {
	out := make([]edf.Slice, len(slices))
	for i, s := range slices {
		out[i] = edf.Slice{
			TaskID:   s.TaskID,
			JobIndex: s.JobIndex,
			Start:    horizon - s.End,
			End:      horizon - s.Start,
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// refSchedule is the seed Schedule over refMirrorSlices.
func refSchedule(jobs []edf.Job, s, horizon float64, mode Mode) ([]edf.Slice, error) {
	for _, j := range jobs {
		if j.Deadline > horizon+1e-9 {
			return nil, fmt.Errorf("dormant: job of task %d has deadline %g beyond the horizon %g", j.TaskID, j.Deadline, horizon)
		}
	}
	run := jobs
	if mode == ALAP {
		run = mirror(jobs, horizon)
	} else if mode != ASAP {
		return nil, fmt.Errorf("dormant: unknown mode %d", int(mode))
	}
	r, err := edf.Simulate(run, speed.Constant(s, 0, horizon))
	if err != nil {
		return nil, err
	}
	if !r.Feasible() {
		return nil, fmt.Errorf("dormant: %v schedule at speed %g misses %d deadlines", mode, s, r.Misses)
	}
	slices := r.Slices
	if mode == ALAP {
		slices = refMirrorSlices(slices, horizon)
	}
	return slices, nil
}

// refAnalyze is the seed Analyze over refGaps.
func refAnalyze(slices []edf.Slice, horizon float64, proc speed.Proc) Analysis {
	a := Analysis{Gaps: refGaps(slices, horizon)}
	for _, g := range a.Gaps {
		d := g.Duration()
		a.TotalIdle += d
		awake := proc.Model.Static() * d
		if proc.DormantEnable && proc.Esw < awake {
			a.IdleEnergy += proc.Esw
			a.Shutdowns++
		} else {
			a.IdleEnergy += awake
		}
	}
	return a
}

// refCompare is the seed Compare over the seed pieces.
func refCompare(jobs []edf.Job, s, horizon float64, proc speed.Proc) (asap, alap Analysis, err error) {
	sa, err := refSchedule(jobs, s, horizon, ASAP)
	if err != nil {
		return Analysis{}, Analysis{}, err
	}
	sl, err := refSchedule(jobs, s, horizon, ALAP)
	if err != nil {
		return Analysis{}, Analysis{}, err
	}
	asap = refAnalyze(sa, horizon, proc)
	alap = refAnalyze(sl, horizon, proc)
	if d := math.Abs(asap.TotalIdle - alap.TotalIdle); d > 1e-6*(1+horizon) {
		return Analysis{}, Analysis{}, fmt.Errorf("dormant: idle-time mismatch between modes: %g vs %g", asap.TotalIdle, alap.TotalIdle)
	}
	return asap, alap, nil
}

// dormantCorpus builds job sets whose traces exercise merged slices,
// scattered short gaps, integer-grid windows full of endpoint ties, and
// loads from sparse to near-saturating.
func dormantCorpus() []struct {
	label   string
	jobs    []edf.Job
	speed   float64
	horizon float64
} {
	var corpus []struct {
		label   string
		jobs    []edf.Job
		speed   float64
		horizon float64
	}
	add := func(label string, jobs []edf.Job, s, horizon float64) {
		corpus = append(corpus, struct {
			label   string
			jobs    []edf.Job
			speed   float64
			horizon float64
		}{label, jobs, s, horizon})
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(seed)%5
		horizon := 40.0

		var sparse []edf.Job
		for i := 0; i < n; i++ {
			r := rng.Float64() * 25
			sparse = append(sparse, edf.Job{
				TaskID: i, Release: r, Deadline: r + 5 + rng.Float64()*10, Cycles: 0.3 + rng.Float64(),
			})
		}
		add(fmt.Sprintf("sparse/%d", seed), sparse, 0.9, horizon)

		var grid []edf.Job
		for i := 0; i < n; i++ {
			r := float64(rng.Intn(6)) * 5
			grid = append(grid, edf.Job{
				TaskID: i, Release: r, Deadline: r + float64(5+rng.Intn(10)), Cycles: float64(1 + rng.Intn(3)),
			})
		}
		add(fmt.Sprintf("grid/%d", seed), grid, 1, horizon)

		var dense []edf.Job
		for i := 0; i < n; i++ {
			r := rng.Float64() * 10
			dense = append(dense, edf.Job{
				TaskID: i, Release: r, Deadline: r + 10 + rng.Float64()*20, Cycles: 2 + rng.Float64()*3,
			})
		}
		add(fmt.Sprintf("dense/%d", seed), dense, 1, horizon)
	}
	return corpus
}

var dormantProcs = map[string]speed.Proc{
	"leaky":          {Model: power.XScale(), SMax: 1},
	"dormant":        {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4},
	"dormant-costly": {Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 1e6},
}

func mustEqualAnalyses(t *testing.T, label string, got, want Analysis) {
	t.Helper()
	var d oracle.Diff
	d.F64("total idle", got.TotalIdle, want.TotalIdle)
	d.F64("idle energy", got.IdleEnergy, want.IdleEnergy)
	d.Int("shutdowns", got.Shutdowns, want.Shutdowns)
	d.Int("gap count", len(got.Gaps), len(want.Gaps))
	if len(got.Gaps) == len(want.Gaps) {
		for i := range got.Gaps {
			d.F64(fmt.Sprintf("gap %d start", i), got.Gaps[i].Start, want.Gaps[i].Start)
			d.F64(fmt.Sprintf("gap %d end", i), got.Gaps[i].End, want.Gaps[i].End)
		}
	}
	if err := d.Err(); err != nil {
		t.Errorf("%s: analyses diverge: %v", label, err)
	}
}

// mustEqualTraces compares two slice traces exactly: edf.Slice is all
// scalar fields, so == is the full bit-identity check.
func mustEqualTraces(t *testing.T, label string, got, want []edf.Slice) {
	t.Helper()
	var d oracle.Diff
	d.Int("slice count", len(got), len(want))
	if d.Ok() {
		for i := range got {
			if got[i] != want[i] {
				d.Add("slice %d: %+v, want %+v", i, got[i], want[i])
				break
			}
		}
	}
	if err := d.Err(); err != nil {
		t.Errorf("%s: traces diverge: %v", label, err)
	}
}

func TestDifferentialSchedule(t *testing.T) {
	for _, c := range dormantCorpus() {
		for _, mode := range []Mode{ASAP, ALAP} {
			want, wantErr := refSchedule(c.jobs, c.speed, c.horizon, mode)
			got, gotErr := Schedule(c.jobs, c.speed, c.horizon, mode)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%v: error mismatch: %v vs %v", c.label, mode, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			mustEqualTraces(t, fmt.Sprintf("%s/%v", c.label, mode), got, want)
		}
	}
}

func TestDifferentialCompare(t *testing.T) {
	for _, c := range dormantCorpus() {
		for pname, proc := range dormantProcs {
			wantA, wantL, wantErr := refCompare(c.jobs, c.speed, c.horizon, proc)
			gotA, gotL, gotErr := Compare(c.jobs, c.speed, c.horizon, proc)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%s: error mismatch: %v vs %v", c.label, pname, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			mustEqualAnalyses(t, c.label+"/"+pname+"/asap", gotA, wantA)
			mustEqualAnalyses(t, c.label+"/"+pname+"/alap", gotL, wantL)
		}
	}
}
