// Package dormant analyzes idle energy on dormant-enable processors for
// job sets executed at a constant speed: where the idle gaps fall, and how
// much each costs under the stay-awake-vs-shutdown decision.
//
// Scattered short gaps are the enemy: the per-gap cost min(Pind·gap, Esw)
// is subadditive in gap length, so merging gaps (same total idle) never
// costs more and usually costs less. Procrastination scheduling (the
// PROC/Jejurikar line the paper family applies after task assignment)
// exploits exactly this by executing as late as possible: the package
// derives the ALAP schedule from the EDF simulator via time reversal —
// running the time-mirrored job set under EDF and mirroring the resulting
// execution trace back — and compares its idle cost with the eager (ASAP)
// schedule's.
package dormant

import (
	"fmt"
	"math"
	"sort"

	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

// Gap is one idle interval of a schedule.
type Gap struct {
	Start, End float64
}

// Duration returns End − Start.
func (g Gap) Duration() float64 { return g.End - g.Start }

// Analysis is the idle-energy breakdown of one schedule over a horizon.
type Analysis struct {
	Gaps       []Gap
	TotalIdle  float64
	IdleEnergy float64 // Σ per-gap min(Pind·gap, Esw)
	Shutdowns  int     // gaps where sleeping beat staying awake
}

// gapEps ignores sub-nanoscale gaps produced by float noise between
// back-to-back slices.
const gapEps = 1e-7

// Gaps extracts the idle intervals of an execution trace within
// [0, horizon).
func Gaps(slices []edf.Slice, horizon float64) []Gap {
	intervals := make([][2]float64, 0, len(slices))
	for _, s := range slices {
		if s.End > s.Start {
			intervals = append(intervals, [2]float64{s.Start, s.End})
		}
	}
	// Execution traces arrive in time order with strictly increasing starts
	// (edf.Simulate emits chronologically and drops zero-width slices), so
	// the sort is skippable: with all keys distinct the sorted order is
	// unique, making the skip exactly output-preserving. Anything else —
	// equal or descending starts — takes the seed's sort on the same
	// forward-built array, so tie orders are untouched.
	strictlySorted := true
	for i := 1; i < len(intervals); i++ {
		if intervals[i][0] <= intervals[i-1][0] {
			strictlySorted = false
			break
		}
	}
	if !strictlySorted {
		sort.Slice(intervals, func(i, j int) bool { return intervals[i][0] < intervals[j][0] })
	}

	var gaps []Gap
	cursor := 0.0
	for _, iv := range intervals {
		if iv[0] > cursor+gapEps {
			gaps = append(gaps, Gap{Start: cursor, End: iv[0]})
		}
		if iv[1] > cursor {
			cursor = iv[1]
		}
	}
	if horizon > cursor+gapEps {
		gaps = append(gaps, Gap{Start: cursor, End: horizon})
	}
	return gaps
}

// Analyze prices the idle gaps of a trace on the processor: each gap costs
// the cheaper of staying awake (Pind·gap) and one shutdown/wakeup cycle
// (Esw, dormant-enable only).
func Analyze(slices []edf.Slice, horizon float64, proc speed.Proc) Analysis {
	a := Analysis{Gaps: Gaps(slices, horizon)}
	for _, g := range a.Gaps {
		d := g.Duration()
		a.TotalIdle += d
		awake := proc.Model.Static() * d
		if proc.DormantEnable && proc.Esw < awake {
			a.IdleEnergy += proc.Esw
			a.Shutdowns++
		} else {
			a.IdleEnergy += awake
		}
	}
	return a
}

// Schedule runs the job set at constant speed s over [0, horizon) in one
// of two modes and returns the execution trace.
type Mode int

const (
	// ASAP executes eagerly: plain EDF from each release.
	ASAP Mode = iota
	// ALAP executes as late as possible (procrastination): EDF on the
	// time-mirrored job set, mirrored back. Deadline-feasibility is
	// preserved by symmetry — a mirrored deadline is a mirrored release.
	ALAP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ASAP:
		return "ASAP"
	case ALAP:
		return "ALAP(PROC)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Schedule simulates the jobs at constant speed s over [0, horizon) in the
// given mode. The horizon must cover every deadline (the mirror reflects
// around horizon/2). It errors when the schedule is infeasible at that
// speed.
func Schedule(jobs []edf.Job, s, horizon float64, mode Mode) ([]edf.Slice, error) {
	for _, j := range jobs {
		if j.Deadline > horizon+1e-9 {
			return nil, fmt.Errorf("dormant: job of task %d has deadline %g beyond the horizon %g", j.TaskID, j.Deadline, horizon)
		}
	}
	run := jobs
	if mode == ALAP {
		run = mirror(jobs, horizon)
	} else if mode != ASAP {
		return nil, fmt.Errorf("dormant: unknown mode %d", int(mode))
	}
	r, err := edf.Simulate(run, speed.Constant(s, 0, horizon))
	if err != nil {
		return nil, err
	}
	if !r.Feasible() {
		return nil, fmt.Errorf("dormant: %v schedule at speed %g misses %d deadlines", mode, s, r.Misses)
	}
	slices := r.Slices
	if mode == ALAP {
		slices = mirrorSlices(slices, horizon)
	}
	return slices, nil
}

// mirror reflects the job windows around horizon/2: release ↔ deadline.
func mirror(jobs []edf.Job, horizon float64) []edf.Job {
	out := make([]edf.Job, len(jobs))
	for i, j := range jobs {
		out[i] = edf.Job{
			TaskID:   j.TaskID,
			Release:  horizon - j.Deadline,
			Deadline: horizon - j.Release,
			Cycles:   j.Cycles,
		}
	}
	return out
}

// mirrorSlices reflects an execution trace back to original time. A
// simulator trace has strictly increasing, non-overlapping slices, so its
// mirror built in reverse is already strictly sorted by start — the sorted
// order is unique and the seed's sort call is skippable bit-for-bit. A
// trace that mirrors to anything else falls back to the seed code path
// (forward build + sort) so tie orders are untouched.
func mirrorSlices(slices []edf.Slice, horizon float64) []edf.Slice {
	n := len(slices)
	out := make([]edf.Slice, n)
	for i, s := range slices {
		out[n-1-i] = edf.Slice{
			TaskID:   s.TaskID,
			JobIndex: s.JobIndex,
			Start:    horizon - s.End,
			End:      horizon - s.Start,
		}
	}
	strictlySorted := true
	for i := 1; i < n; i++ {
		if out[i].Start <= out[i-1].Start {
			strictlySorted = false
			break
		}
	}
	if strictlySorted {
		return out
	}
	for i, s := range slices {
		out[i] = edf.Slice{
			TaskID:   s.TaskID,
			JobIndex: s.JobIndex,
			Start:    horizon - s.End,
			End:      horizon - s.Start,
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Compare runs both modes and returns their analyses; the caller picks the
// cheaper (a real scheduler would, too — both are feasible).
func Compare(jobs []edf.Job, s, horizon float64, proc speed.Proc) (asap, alap Analysis, err error) {
	sa, err := Schedule(jobs, s, horizon, ASAP)
	if err != nil {
		return Analysis{}, Analysis{}, err
	}
	sl, err := Schedule(jobs, s, horizon, ALAP)
	if err != nil {
		return Analysis{}, Analysis{}, err
	}
	asap = Analyze(sa, horizon, proc)
	alap = Analyze(sl, horizon, proc)
	if d := math.Abs(asap.TotalIdle - alap.TotalIdle); d > 1e-6*(1+horizon) {
		return Analysis{}, Analysis{}, fmt.Errorf("dormant: idle-time mismatch between modes: %g vs %g", asap.TotalIdle, alap.TotalIdle)
	}
	return asap, alap, nil
}
