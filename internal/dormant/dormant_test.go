package dormant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

func dormantProc(esw float64) speed.Proc {
	return speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: esw}
}

func TestGapsBasic(t *testing.T) {
	slices := []edf.Slice{
		{TaskID: 1, Start: 2, End: 4},
		{TaskID: 2, Start: 6, End: 7},
	}
	gaps := Gaps(slices, 10)
	want := []Gap{{0, 2}, {4, 6}, {7, 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %+v, want %+v", gaps, want)
	}
	for i := range want {
		if math.Abs(gaps[i].Start-want[i].Start) > 1e-12 || math.Abs(gaps[i].End-want[i].End) > 1e-12 {
			t.Errorf("gap %d = %+v, want %+v", i, gaps[i], want[i])
		}
	}
}

func TestGapsEdgeCases(t *testing.T) {
	// No slices: one gap covering the horizon.
	gaps := Gaps(nil, 5)
	if len(gaps) != 1 || gaps[0] != (Gap{0, 5}) {
		t.Errorf("empty trace gaps = %+v", gaps)
	}
	// Busy the whole horizon: no gaps.
	gaps = Gaps([]edf.Slice{{Start: 0, End: 5}}, 5)
	if len(gaps) != 0 {
		t.Errorf("fully busy gaps = %+v", gaps)
	}
	// Sub-epsilon gaps ignored.
	gaps = Gaps([]edf.Slice{{Start: 0, End: 2}, {Start: 2 + 1e-12, End: 5}}, 5)
	if len(gaps) != 0 {
		t.Errorf("float-noise gap not ignored: %+v", gaps)
	}
}

func TestAnalyze(t *testing.T) {
	slices := []edf.Slice{{Start: 0, End: 4}} // one 6-unit gap to horizon 10
	// Pind = 0.08: awake costs 0.48; Esw = 0.1 < 0.48 → shutdown.
	a := Analyze(slices, 10, dormantProc(0.1))
	if a.Shutdowns != 1 || math.Abs(a.IdleEnergy-0.1) > 1e-12 {
		t.Errorf("analysis = %+v, want one shutdown at 0.1", a)
	}
	// Esw = 1 > 0.48 → stay awake.
	a = Analyze(slices, 10, dormantProc(1))
	if a.Shutdowns != 0 || math.Abs(a.IdleEnergy-0.48) > 1e-12 {
		t.Errorf("analysis = %+v, want awake at 0.48", a)
	}
	// Dormant-disable: always awake.
	a = Analyze(slices, 10, speed.Proc{Model: power.XScale(), SMax: 1})
	if a.Shutdowns != 0 || math.Abs(a.IdleEnergy-0.48) > 1e-12 {
		t.Errorf("disable analysis = %+v", a)
	}
}

func TestALAPConsolidatesPeriodicIdle(t *testing.T) {
	// Periodic set at utilization 0.5 run at speed 1: ASAP leaves a gap in
	// every period; ALAP pushes work to the deadlines, merging idle time
	// into longer stretches.
	ps := task.PeriodicSet{Tasks: []task.Periodic{
		{ID: 1, Cycles: 5, Period: 10},
	}}
	jobs := edf.PeriodicJobs(ps, 40)
	asap, alap, err := Compare(jobs, 1, 40, dormantProc(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(asap.TotalIdle-alap.TotalIdle) > 1e-9 {
		t.Fatalf("idle mismatch: %v vs %v", asap.TotalIdle, alap.TotalIdle)
	}
	// ASAP: jobs run [0,5), [10,15), … → 4 separate 5-unit gaps.
	if len(asap.Gaps) != 4 {
		t.Errorf("ASAP gaps = %+v, want 4", asap.Gaps)
	}
	// ALAP: jobs run [5,10), [15,20), … → gaps [0,5), [10,15), …: also 4.
	// With this strictly periodic workload gap counts tie; the interesting
	// consolidation cases are aperiodic (see the quick test). Here both
	// modes must at least price identically.
	if math.Abs(asap.IdleEnergy-alap.IdleEnergy) > 1e-9 {
		t.Errorf("strictly periodic idle energies differ: %v vs %v", asap.IdleEnergy, alap.IdleEnergy)
	}
}

func TestALAPMergesStaggeredGaps(t *testing.T) {
	// Two jobs with nested windows: eager execution splits the idle time,
	// lazy execution consolidates it in front.
	jobs := []edf.Job{
		{TaskID: 1, Release: 0, Deadline: 20, Cycles: 4},
		{TaskID: 2, Release: 10, Deadline: 20, Cycles: 4},
	}
	asap, alap, err := Compare(jobs, 1, 20, dormantProc(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// ASAP: busy [0,4) and [10,14) → gaps [4,10) and [14,20): two gaps.
	if len(asap.Gaps) != 2 {
		t.Fatalf("ASAP gaps = %+v, want 2", asap.Gaps)
	}
	// ALAP: busy [12,20) → a single gap [0,12).
	if len(alap.Gaps) != 1 {
		t.Fatalf("ALAP gaps = %+v, want 1", alap.Gaps)
	}
	// One shutdown instead of two: cheaper.
	if !(alap.IdleEnergy < asap.IdleEnergy) {
		t.Errorf("ALAP idle %v not cheaper than ASAP %v", alap.IdleEnergy, asap.IdleEnergy)
	}
}

func TestScheduleErrors(t *testing.T) {
	jobs := []edf.Job{{TaskID: 1, Release: 0, Deadline: 30, Cycles: 5}}
	if _, err := Schedule(jobs, 1, 20, ALAP); err == nil {
		t.Error("deadline beyond horizon accepted")
	}
	if _, err := Schedule(jobs, 0.1, 30, ASAP); err == nil {
		t.Error("infeasible speed accepted")
	}
	if _, err := Schedule(jobs, 1, 30, Mode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if ASAP.String() != "ASAP" || ALAP.String() != "ALAP(PROC)" || Mode(9).String() != "Mode(9)" {
		t.Error("mode names changed")
	}
}

// Property: both modes execute the same total work, leave the same total
// idle, and each slice stays within its job's window.
func TestQuickModesEquivalent(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nn%8)
		horizon := 100.0
		var jobs []edf.Job
		for i := 0; i < n; i++ {
			r := rng.Float64() * 60
			d := r + 10 + rng.Float64()*30
			jobs = append(jobs, edf.Job{
				TaskID: i, Release: r, Deadline: math.Min(d, horizon),
				Cycles: 1 + rng.Float64()*6,
			})
		}
		// Ensure feasibility at speed 1 via YDS-style density check is
		// overkill here: just demand per-window density ≤ 0.8 each.
		for i := range jobs {
			maxW := (jobs[i].Deadline - jobs[i].Release) * 0.5
			if jobs[i].Cycles > maxW {
				jobs[i].Cycles = maxW
			}
		}
		asap, alap, err := Compare(jobs, 1, horizon, dormantProc(0.3))
		if err != nil {
			// Random storms can still be jointly infeasible at speed 1;
			// that is not a property violation.
			return true
		}
		return math.Abs(asap.TotalIdle-alap.TotalIdle) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: slices of an ALAP schedule respect job windows.
func TestQuickALAPWindows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		horizon := 80.0
		var jobs []edf.Job
		for i := 0; i < 5; i++ {
			r := rng.Float64() * 40
			jobs = append(jobs, edf.Job{
				TaskID: i, Release: r, Deadline: r + 20 + rng.Float64()*20,
				Cycles: 1 + rng.Float64()*4,
			})
		}
		slices, err := Schedule(jobs, 1, horizon, ALAP)
		if err != nil {
			return true
		}
		for _, s := range slices {
			j := jobs[s.JobIndex]
			if s.Start < j.Release-1e-6 || s.End > j.Deadline+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
