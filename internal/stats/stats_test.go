package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 {
		t.Errorf("N() = %d, want 0", s.N())
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Var": s.Var(), "Min": s.Min(), "Max": s.Max(), "CI95": s.CI95(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty summary = %v, want NaN", name, v)
		}
	}
	if s.String() != "empty" {
		t.Errorf("String() = %q, want \"empty\"", s.String())
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean() = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got, want := s.Var(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var() = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.N() != 8 {
		t.Errorf("N() = %d, want 8", s.N())
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single-value summary = %v", s.String())
	}
	if !math.IsNaN(s.Var()) {
		t.Errorf("Var() of one value = %v, want NaN", s.Var())
	}
}

func TestSummaryConstantSequence(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Add(1e9) // large constant stresses the sum-of-squares path
	}
	if got := s.Var(); got < 0 || got > 1 {
		t.Errorf("Var() of constants = %v, want ≈ 0 and never negative", got)
	}
	if got := s.Stddev(); math.IsNaN(got) {
		t.Errorf("Stddev() of constants = NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Summary
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if !(large.CI95() < small.CI95()) {
		t.Errorf("CI95 did not shrink: n=10 → %v, n=1000 → %v", small.CI95(), large.CI95())
	}
}

// Property: mean lies within [min, max], and variance is non-negative.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes so the sum of squares cannot overflow.
			s.Add(math.Mod(x, 1e6))
			count++
		}
		if count < 2 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
