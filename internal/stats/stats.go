// Package stats provides the small statistical toolkit the experiment
// harness needs: running summaries with mean, standard deviation and a
// normal-approximation 95% confidence interval.
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates scalar observations. The zero value is ready to use.
type Summary struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sum2 += x * x
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or NaN with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	m := s.Mean()
	v := (s.sum2 - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		v = 0 // numerical noise on constant sequences
	}
	return v
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or NaN with no observations.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with no observations.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (1.96·σ/√n), or NaN with fewer than two
// observations.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// String formats the summary as "mean ± ci95 [min, max] (n)".
func (s *Summary) String() string {
	if s.n == 0 {
		return "empty"
	}
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f] (n=%d)", s.Mean(), s.CI95(), s.Min(), s.Max(), s.n)
}
