package exper

import (
	"fmt"
	"math"
	"math/rand"

	"dvsreject/internal/dormant"
	"dvsreject/internal/online"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/stats"
)

// Exp14 — procrastination scheduling (the PROC direction): idle energy of
// eager (ASAP) versus as-late-as-possible (ALAP) execution on a
// dormant-enable processor, versus the shutdown overhead Esw. ALAP
// consolidates scattered idle gaps into fewer, longer ones; the per-gap
// cost min(Pind·gap, Esw) is subadditive, so consolidation can only help —
// by how much depends on Esw.
//
// The workload is an aperiodic arrival storm: synchronous periodic sets
// are time-reversal symmetric over a hyper-period, so ALAP cannot
// restructure their gaps at all (verified by the dormant package's tests);
// staggered aperiodic windows are where procrastination earns its keep,
// which is also the setting the PROC line targets.
func Exp14(o Options) (Table, error) {
	esws := []float64{0.05, 0.2, 0.5, 1.0, 2.0}
	if o.Quick {
		esws = []float64{0.2, 1.0}
	}
	trials := o.trials(25)
	n := 14
	if o.Quick {
		n = 8
	}

	t := Table{
		ID:     "E14",
		Title:  fmt.Sprintf("procrastination (ALAP) vs eager (ASAP) idle energy, %d-job storms at load 0.4, speed 1", n),
		Header: []string{"Esw", "ASAP-gaps", "ALAP-gaps", "ASAP-idleE", "ALAP-idleE", "ALAP/ASAP", "BEST/ASAP"},
		Notes: []string{
			"XScale leakage Pind = 0.08; idle time identical in both modes, only its fragmentation differs",
			"storms where speed 1 is jointly infeasible are redrawn",
		},
	}
	proc := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true}
	for i, esw := range esws {
		p := proc
		p.Esw = esw
		var ga, gl, ea, el, ratio, best stats.Summary
		type res struct {
			ga, gl, ea, el float64
			ratio, best    float64
			ok             bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*1301 + int64(trial)*1009))
			var asap, alap dormant.Analysis
			for {
				storm := online.RandomStorm(rng, online.StormConfig{N: n, Load: 0.4, Span: 200})
				horizon := 0.0
				jobs := make([]edf.Job, 0, len(storm))
				for _, j := range storm {
					jobs = append(jobs, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
					if j.Deadline > horizon {
						horizon = j.Deadline
					}
				}
				var err error
				asap, alap, err = dormant.Compare(jobs, 1, horizon, p)
				if err == nil {
					break
				}
				// Jointly infeasible at speed 1: redraw.
			}
			r := res{
				ga: float64(len(asap.Gaps)),
				gl: float64(len(alap.Gaps)),
				ea: asap.IdleEnergy,
				el: alap.IdleEnergy,
			}
			if asap.IdleEnergy > 0 {
				r.ok = true
				r.ratio = alap.IdleEnergy / asap.IdleEnergy
				// A scheduler free to pick the cheaper feasible mode:
				r.best = math.Min(alap.IdleEnergy, asap.IdleEnergy) / asap.IdleEnergy
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			ga.Add(r.ga)
			gl.Add(r.gl)
			ea.Add(r.ea)
			el.Add(r.el)
			if r.ok {
				ratio.Add(r.ratio)
				best.Add(r.best)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", esw),
			fmt.Sprintf("%.1f", ga.Mean()),
			fmt.Sprintf("%.1f", gl.Mean()),
			fmt.Sprintf("%.2f", ea.Mean()),
			fmt.Sprintf("%.2f", el.Mean()),
			fmtRatio(ratio.Mean(), ratio.CI95()),
			fmtRatio(best.Mean(), best.CI95()),
		})
	}
	return t, nil
}
