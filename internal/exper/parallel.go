package exper

import "dvsreject/internal/conc"

// forEachTrial runs fn for trials 0..trials−1 on a bounded worker pool and
// returns the per-trial results in index order, so aggregation downstream
// is bit-for-bit identical to a serial run. The first error wins; late
// results are still drained. The pool itself lives in internal/conc, which
// the core solvers share for their parallel search modes.
func forEachTrial[T any](trials int, fn func(trial int) (T, error)) ([]T, error) {
	return conc.ForEach(trials, 0, fn)
}
