package exper

import (
	"runtime"
	"sync"
)

// forEachTrial runs fn for trials 0..trials−1 on a bounded worker pool and
// returns the per-trial results in index order, so aggregation downstream
// is bit-for-bit identical to a serial run. The first error wins; late
// results are still drained.
func forEachTrial[T any](trials int, fn func(trial int) (T, error)) ([]T, error) {
	results := make([]T, trials)
	errs := make([]error, trials)

	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
