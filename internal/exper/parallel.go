package exper

import (
	"fmt"
	"time"

	"dvsreject/internal/conc"
)

// forEachTrial runs fn for trials 0..trials−1 on a bounded worker pool and
// returns the per-trial results in index order, so aggregation downstream
// is bit-for-bit identical to a serial run: every trial draws from its own
// RNG and the summaries are folded in trial order afterwards. The first
// error in trial order wins; late results are still drained. o.Workers
// bounds the pool (0 = GOMAXPROCS, 1 forces a serial run). The pool itself
// lives in internal/conc, which the core solvers share for their parallel
// search modes.
func forEachTrial[T any](o Options, trials int, fn func(trial int) (T, error)) ([]T, error) {
	return conc.ForEach(trials, o.Workers, fn)
}

// SuiteResult is one experiment's table plus how long it took to produce.
type SuiteResult struct {
	Table   Table
	Elapsed time.Duration
}

// RunSuite runs the experiments concurrently on the same bounded pool the
// per-trial loops use and returns the results in input order: printing the
// tables in sequence yields output byte-identical to a serial run for a
// fixed seed, regardless of o.Workers. The first error in input order
// wins, matching the serial harness's fail-on-first-experiment behaviour.
func RunSuite(list []Experiment, o Options) ([]SuiteResult, error) {
	return conc.ForEach(len(list), o.Workers, func(i int) (SuiteResult, error) {
		start := now()
		tab, err := list[i].Run(o)
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s: %w", list[i].ID, err)
		}
		return SuiteResult{Table: tab, Elapsed: since(start)}, nil
	})
}
