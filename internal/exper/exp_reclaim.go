package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/reclaim"
	"dvsreject/internal/stats"
)

// Exp13 — run-time slack reclamation on top of the admission decision:
// the DP optimum admits a set sized for worst-case cycles; at run time
// tasks draw actual cycles uniformly from [bcet·WCET, WCET]. Columns are
// the frame energy of the static plan, the cycle-conserving re-planner and
// the clairvoyant oracle, normalized to the oracle.
func Exp13(o Options) (Table, error) {
	ratios := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if o.Quick {
		ratios = []float64{0.4, 1.0}
	}
	trials := o.trials(25)
	n := 20
	if o.Quick {
		n = 10
	}

	t := Table{
		ID:     "E13",
		Title:  fmt.Sprintf("slack reclamation after admission (n=%d, load 1.5): energy / oracle vs BCET/WCET", n),
		Header: []string{"bcet/wcet", "STATIC", "CC-EDF", "oracle-energy"},
		Notes: []string{
			"accepted set chosen by the exact DP on worst-case cycles; run-time cycles ~ U[bcet·WCET, WCET]",
			"oracle-energy is the clairvoyant frame energy (absolute), for scale",
		},
	}
	for i, ratio := range ratios {
		var st, cc, orAbs stats.Summary
		type res struct {
			st, cc, or float64
			ok         bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*1103 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 200})
			if err != nil {
				return res{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}
			sol, err := (core.DP{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			acc := sol.AcceptedSet()
			var tasks []reclaim.Task
			for _, tk := range set.Tasks {
				if !acc[tk.ID] {
					continue
				}
				lo := int64(float64(tk.Cycles) * ratio)
				if lo < 1 {
					lo = 1
				}
				actual := lo
				if tk.Cycles > lo {
					actual = lo + rng.Int63n(tk.Cycles-lo+1)
				}
				tasks = append(tasks, reclaim.Task{ID: tk.ID, WCET: tk.Cycles, Actual: actual})
			}
			if len(tasks) == 0 {
				return res{}, nil
			}
			var e [3]float64
			for pi, pol := range []reclaim.Policy{reclaim.Static, reclaim.CycleConserving, reclaim.Oracle} {
				tr, err := reclaim.Run(tasks, set.Deadline, in.Proc.Model, in.Proc.SMax, pol)
				if err != nil {
					return res{}, err
				}
				e[pi] = tr.Energy
			}
			if e[2] <= 0 {
				return res{}, nil
			}
			return res{st: e[0] / e[2], cc: e[1] / e[2], or: e[2], ok: true}, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.ok {
				st.Add(r.st)
				cc.Add(r.cc)
				orAbs.Add(r.or)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", ratio),
			fmtRatio(st.Mean(), st.CI95()),
			fmtRatio(cc.Mean(), cc.CI95()),
			fmt.Sprintf("%.2f", orAbs.Mean()),
		})
	}
	return t, nil
}
