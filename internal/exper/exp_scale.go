package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/stats"
)

// Exp8 — runtime scaling of every solver class versus the number of
// tasks: heuristics up to 10⁴ tasks, exact solvers on their natural
// ranges.
func Exp8(o Options) (Table, error) {
	heurNs := []int{10, 100, 1000, 10000}
	exactNs := []int{12, 16, 20}
	if o.Quick {
		heurNs = []int{10, 100}
		exactNs = []int{10}
	}
	trials := o.trials(5)

	t := Table{
		ID:     "E8",
		Title:  "solver runtime (µs, mean) vs number of tasks (load 1.5)",
		Header: []string{"n", "GREEDY", "S-GREEDY", "DP", "ApproxDP(0.1)", "OPT"},
		Notes: []string{
			"deadline 2000, so DP workload capacity is 2000 grid cells",
			"— marks solvers skipped at that size (exact solvers on large n)",
		},
	}

	timeIt := func(s core.Solver, in core.Instance) (float64, error) {
		start := now()
		_, err := s.Solve(in)
		return float64(since(start).Microseconds()), err
	}

	allNs := append(append([]int{}, heurNs...), exactNs...)
	seen := map[int]bool{}
	for _, n := range allNs {
		if seen[n] {
			continue
		}
		seen[n] = true
		row := []string{fmt.Sprintf("%d", n)}
		var tg, ts, td, ta, to stats.Summary
		// E8 measures solver wall-clock runtime, so its trials deliberately
		// stay serial even when Options.Workers allows a pool: concurrent
		// trials would contend for cores and skew every µs column.
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(n)*601 + int64(trial)))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 2000})
			if err != nil {
				return Table{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}

			if us, err := timeIt(core.GreedyDensity{}, in); err == nil {
				tg.Add(us)
			} else {
				return Table{}, err
			}
			// The swap-based local search is O(n²) per move: skip at 10⁴.
			if n <= 1000 {
				if us, err := timeIt(core.GreedyMarginal{}, in); err == nil {
					ts.Add(us)
				} else {
					return Table{}, err
				}
			}
			if us, err := timeIt(core.DP{}, in); err == nil {
				td.Add(us)
			} else {
				return Table{}, err
			}
			if us, err := timeIt(core.ApproxDP{Eps: 0.1}, in); err == nil {
				ta.Add(us)
			} else {
				return Table{}, err
			}
			if n <= 20 {
				if us, err := timeIt(core.Exhaustive{}, in); err == nil {
					to.Add(us)
				} else {
					return Table{}, err
				}
			}
		}
		cell := func(s stats.Summary, used bool) string {
			if !used || s.N() == 0 {
				return "—"
			}
			return fmt.Sprintf("%.0f", s.Mean())
		}
		row = append(row,
			cell(tg, true),
			cell(ts, ts.N() > 0),
			cell(td, true),
			cell(ta, true),
			cell(to, to.N() > 0),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp9 — the multiprocessor extension: constructive LTF-REJECT and its
// local-search refinement versus the exact partitioned optimum on small
// instances, and against each other at scale.
func Exp9(o Options) (Table, error) {
	type cfg struct {
		m, n  int
		exact bool
	}
	cfgs := []cfg{{2, 8, true}, {3, 9, true}, {4, 32, false}, {8, 64, false}}
	if o.Quick {
		cfgs = []cfg{{2, 6, true}, {4, 16, false}}
	}
	trials := o.trials(15)

	t := Table{
		ID:     "E9",
		Title:  "multiprocessor extension: cost ratios vs M (per-processor load 1.5)",
		Header: []string{"M", "n", "reference", "LTF-REJECT", "LS-basic", "LTF-REJECT-LS"},
		Notes: []string{
			"reference = OPT (exhaustive) when tractable, else LTF-REJECT-LS",
			"LS-basic ablates the swap/exchange neighbourhood (single-task moves only)",
			"total load scales with M so each processor sees load 1.5",
		},
	}
	for ci, c := range cfgs {
		var rLTF, rBasic, rLS stats.Summary
		refName := "OPT"
		if !c.exact {
			refName = "LTF-REJECT-LS"
		}
		type res struct {
			ltf, basic, ls float64
			ok             bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(ci)*701 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: c.n, Load: 1.5 * float64(c.m), Deadline: 100})
			if err != nil {
				return res{}, err
			}
			in := multiproc.Instance{Tasks: set, Proc: idealProc(), M: c.m}
			ltf, err := (multiproc.LTFReject{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			basic, err := (multiproc.LTFRejectLS{DisableExchange: true}).Solve(in)
			if err != nil {
				return res{}, err
			}
			ls, err := (multiproc.LTFRejectLS{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			var ref float64
			if c.exact {
				opt, err := (multiproc.Exhaustive{}).Solve(in)
				if err != nil {
					return res{}, err
				}
				ref = opt.Cost
			} else {
				ref = ls.Cost
			}
			if ref <= 0 {
				return res{}, nil
			}
			return res{ltf: ltf.Cost / ref, basic: basic.Cost / ref, ls: ls.Cost / ref, ok: true}, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.ok {
				rLTF.Add(r.ltf)
				rBasic.Add(r.basic)
				rLS.Add(r.ls)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.m),
			fmt.Sprintf("%d", c.n),
			refName,
			fmtRatio(rLTF.Mean(), rLTF.CI95()),
			fmtRatio(rBasic.Mean(), rBasic.CI95()),
			fmtRatio(rLS.Mean(), rLS.CI95()),
		})
	}
	return t, nil
}
