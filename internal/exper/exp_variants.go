package exper

import (
	"fmt"
	"math"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/stats"
)

// Exp4 — the approximation scheme's measured quality (cost/DP-optimum) and
// runtime versus ε. The envelope guarantees degrade linearly in ε; the
// measured ratios are far tighter, which is the practical message.
func Exp4(o Options) (Table, error) {
	epss := []float64{0.01, 0.05, 0.1, 0.2, 0.5, 1.0}
	if o.Quick {
		epss = []float64{0.1, 0.5}
	}
	trials := o.trials(25)
	n := 40
	if o.Quick {
		n = 15
	}

	t := Table{
		ID:     "E4",
		Title:  fmt.Sprintf("approximation schemes: quality and runtime vs ε (n=%d, load 1.5)", n),
		Header: []string{"ε", "W-cost/OPT", "W-worst", "W-time(µs)", "V-cost/OPT", "V-worst", "V-time(µs)", "DP-time(µs)"},
		Notes: []string{
			"W = ApproxDP (capacity/workload rounding); V = ApproxDPPenalty (penalty-axis rounding)",
			"same instances per row; DP column is the exact solver's runtime for scale",
		},
	}
	for i, eps := range epss {
		var ratioW, ratioV stats.Summary
		var tW, tV, tDP stats.Summary
		worstW, worstV := 0.0, 0.0
		type res struct {
			usDP, usW, usV, rw, rv float64
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(trial)*1009 + int64(i)))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 2000})
			if err != nil {
				return res{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}

			var r res
			start := now()
			opt, err := (core.DP{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r.usDP = float64(since(start).Microseconds())

			start = now()
			solW, err := (core.ApproxDP{Eps: eps}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r.usW = float64(since(start).Microseconds())

			start = now()
			solV, err := (core.ApproxDPPenalty{Eps: eps}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r.usV = float64(since(start).Microseconds())

			r.rw, r.rv = 1.0, 1.0
			if opt.Cost > 0 {
				r.rw = solW.Cost / opt.Cost
				r.rv = solV.Cost / opt.Cost
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			tDP.Add(r.usDP)
			tW.Add(r.usW)
			tV.Add(r.usV)
			ratioW.Add(r.rw)
			ratioV.Add(r.rv)
			worstW = math.Max(worstW, r.rw)
			worstV = math.Max(worstV, r.rv)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", eps),
			fmtRatio(ratioW.Mean(), ratioW.CI95()),
			fmt.Sprintf("%.4f", worstW),
			fmt.Sprintf("%.0f", tW.Mean()),
			fmtRatio(ratioV.Mean(), ratioV.CI95()),
			fmt.Sprintf("%.4f", worstV),
			fmt.Sprintf("%.0f", tV.Mean()),
			fmt.Sprintf("%.0f", tDP.Mean()),
		})
	}
	return t, nil
}

// Exp5 — non-ideal processors: solver quality on the discrete XScale
// frequency ladder, plus the intrinsic cost of discreteness (the DP
// optimum on the discrete processor normalized to the DP optimum on the
// continuous processor with the same power model).
func Exp5(o Options) (Table, error) {
	loads := []float64{0.4, 0.8, 1.2, 1.6, 2.0}
	if o.Quick {
		loads = []float64{0.8, 1.6}
	}
	trials := o.trials(25)
	n := 30
	if o.Quick {
		n = 12
	}

	contProc := speed.Proc{Model: power.XScale(), SMax: 1}
	discProc := speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels()}
	solvers := []core.Solver{core.GreedyMarginal{}, core.GreedyDensity{}, core.AcceptAll{}}

	t := Table{
		ID:     "E5",
		Title:  fmt.Sprintf("discrete XScale ladder: heuristics vs DP, and discrete/continuous optimum (n=%d)", n),
		Header: []string{"load"},
		Notes: []string{
			"levels {0.15, 0.4, 0.6, 0.8, 1.0}, two-level (Ishihara–Yasuura) execution",
			"disc/cont = DP optimum on the discrete ladder / DP optimum on the continuous spectrum",
		},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	t.Header = append(t.Header, "disc/cont")

	for i, load := range loads {
		sums := make(map[string]*stats.Summary)
		for _, s := range solvers {
			sums[s.Name()] = &stats.Summary{}
		}
		var gap stats.Summary
		type res struct {
			gap     float64
			gapOK   bool
			ratios  []float64
			discPos bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*307 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: load, Deadline: 200})
			if err != nil {
				return res{}, err
			}
			disc := core.Instance{Tasks: set, Proc: discProc}
			cont := core.Instance{Tasks: set, Proc: contProc}
			dOpt, err := (core.DP{}).Solve(disc)
			if err != nil {
				return res{}, err
			}
			cOpt, err := (core.DP{}).Solve(cont)
			if err != nil {
				return res{}, err
			}
			var r res
			if cOpt.Cost > 0 {
				r.gap, r.gapOK = dOpt.Cost/cOpt.Cost, true
			}
			r.discPos = dOpt.Cost > 0
			r.ratios = make([]float64, len(solvers))
			for si, s := range solvers {
				sol, err := s.Solve(disc)
				if err != nil {
					return res{}, err
				}
				if r.discPos {
					r.ratios[si] = sol.Cost / dOpt.Cost
				}
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.gapOK {
				gap.Add(r.gap)
			}
			if r.discPos {
				for si, s := range solvers {
					sums[s.Name()].Add(r.ratios[si])
				}
			}
		}
		row := []string{fmt.Sprintf("%.1f", load)}
		for _, s := range solvers {
			sum := sums[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		row = append(row, fmt.Sprintf("%.4f", gap.Mean()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp6 — leakage-aware scheduling: the value of the dormant mode and the
// effect of the switching overhead Esw, at light loads where the critical
// speed (≈ 0.297 on XScale) dominates the decision.
func Exp6(o Options) (Table, error) {
	loads := []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.0}
	if o.Quick {
		loads = []float64{0.1, 0.7}
	}
	trials := o.trials(25)
	n := 20
	if o.Quick {
		n = 10
	}

	free := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0}
	cheap := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 4}
	costly := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 12}
	disable := speed.Proc{Model: power.XScale(), SMax: 1}
	flavours := []struct {
		name string
		proc speed.Proc
	}{
		{"Esw=0", free}, {"Esw=4", cheap}, {"Esw=12", costly}, {"no-dormant", disable},
	}

	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("leakage-aware optima normalized to the free-shutdown optimum (n=%d, D=200)", n),
		Header: []string{"load"},
		Notes: []string{
			"XScale model: Pind=0.08, critical speed ≈ 0.297",
			"every column is the DP optimum on that processor flavour / DP optimum with free shutdown",
		},
	}
	for _, f := range flavours {
		t.Header = append(t.Header, f.name)
	}
	for i, load := range loads {
		sums := make([]stats.Summary, len(flavours))
		type res struct {
			ratios []float64
			ok     bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*401 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: load, Deadline: 200})
			if err != nil {
				return res{}, err
			}
			base, err := (core.DP{}).Solve(core.Instance{Tasks: set, Proc: free})
			if err != nil {
				return res{}, err
			}
			r := res{ratios: make([]float64, len(flavours)), ok: base.Cost > 0}
			for fi, f := range flavours {
				sol, err := (core.DP{}).Solve(core.Instance{Tasks: set, Proc: f.proc})
				if err != nil {
					return res{}, err
				}
				if r.ok {
					r.ratios[fi] = sol.Cost / base.Cost
				}
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.ok {
				for fi := range flavours {
					sums[fi].Add(r.ratios[fi])
				}
			}
		}
		row := []string{fmt.Sprintf("%.2f", load)}
		for fi := range flavours {
			row = append(row, fmtRatio(sums[fi].Mean(), sums[fi].CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp7 — periodic tasks: solver quality after the hyper-period reduction,
// versus the total utilization, with the acceptance fraction of the
// optimum as context.
func Exp7(o Options) (Table, error) {
	utils := []float64{0.6, 0.9, 1.2, 1.5, 1.8}
	if o.Quick {
		utils = []float64{0.9, 1.5}
	}
	trials := o.trials(20)
	n := 30
	if o.Quick {
		n = 10
	}
	solvers := []core.Solver{core.GreedyMarginal{}, core.GreedyDensity{}, core.AcceptAll{}}

	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("periodic tasks (UUniFast, n=%d): cost / OPT vs total utilization", n),
		Header: []string{"U"},
		Notes:  []string{"hyper-period reduction to the frame problem; OPT = exact DP on the reduction"},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	t.Header = append(t.Header, "OPT-accept-frac")

	for i, u := range utils {
		sums := make(map[string]*stats.Summary)
		for _, s := range solvers {
			sums[s.Name()] = &stats.Summary{}
		}
		var accFrac stats.Summary
		type res struct {
			acc    float64
			ratios []float64
			ok     bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*509 + int64(trial)*1009))
			ps, err := gen.Periodic(rng, gen.PeriodicConfig{N: n, Utilization: u})
			if err != nil {
				return res{}, err
			}
			pi := core.PeriodicInstance{Tasks: ps, Proc: idealProc()}
			in, err := pi.Reduce()
			if err != nil {
				return res{}, err
			}
			opt, err := (core.DP{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r := res{
				acc:    float64(len(opt.Accepted)) / float64(n),
				ratios: make([]float64, len(solvers)),
				ok:     opt.Cost > 0,
			}
			for si, s := range solvers {
				sol, err := s.Solve(in)
				if err != nil {
					return res{}, err
				}
				if r.ok {
					r.ratios[si] = sol.Cost / opt.Cost
				}
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			accFrac.Add(r.acc)
			if r.ok {
				for si, s := range solvers {
					sums[s.Name()].Add(r.ratios[si])
				}
			}
		}
		row := []string{fmt.Sprintf("%.1f", u)}
		for _, s := range solvers {
			sum := sums[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		row = append(row, fmt.Sprintf("%.3f", accFrac.Mean()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
