// Package exper is the experiment harness: one runner per reconstructed
// table/figure of the paper's evaluation (see DESIGN.md §4 for the index
// and EXPERIMENTS.md for paper-vs-measured). Every experiment is
// deterministic for a fixed seed and prints a plain-text table whose rows
// are the series a figure would plot.
package exper

import (
	"bytes"
	"fmt"
	"strings"
	"text/tabwriter"
)

// Options tunes an experiment run.
type Options struct {
	// Trials is the number of random instances per table cell; 0 means the
	// experiment's default (typically 25).
	Trials int
	// Seed is the base RNG seed; runs with equal seeds are identical.
	Seed int64
	// Quick shrinks sweeps and trial counts for smoke tests and benches.
	Quick bool
	// Workers bounds the worker pool shared by the per-trial loops and
	// RunSuite's experiment-level fan-out: 0 means GOMAXPROCS, 1 forces a
	// fully serial run. Tables are identical for every setting — trials
	// draw from independent per-trial RNGs and results are folded in
	// index order (E8's runtime-measurement trials always run serially).
	Workers int
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return 3
	}
	return def
}

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s — %s\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	sep := make([]string, len(t.Header))
	for i, h := range t.Header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&buf, "note: %s\n", n)
	}
	return buf.String()
}

// Experiment is one entry of the registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (Table, error)
}

// All lists every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "normalized cost vs number of tasks (vs exact optimum)", Exp1},
		{"E2", "normalized cost vs system load", Exp2},
		{"E3", "normalized cost vs penalty scale", Exp3},
		{"E4", "approximation scheme: quality and runtime vs ε", Exp4},
		{"E5", "non-ideal processor: discrete XScale levels vs continuous", Exp5},
		{"E6", "leakage-aware: dormant mode and switching overhead", Exp6},
		{"E7", "periodic tasks: normalized cost vs total utilization", Exp7},
		{"E8", "solver runtime scaling vs number of tasks", Exp8},
		{"E9", "multiprocessor extension: cost vs number of processors", Exp9},
		{"E10", "acceptance ratio and energy vs penalty scale", Exp10},
		{"E11", "online arrivals: empirical competitive ratio vs load", Exp11},
		{"E12", "ablations: B&B pruning term and local-search swap moves", Exp12},
		{"E13", "slack reclamation after admission: energy vs BCET/WCET", Exp13},
		{"E14", "procrastination (ALAP) vs eager idle energy vs Esw", Exp14},
		{"E15", "heterogeneous power characteristics: cost vs OPT", Exp15},
		{"E16", "big.LITTLE heterogeneous processors: cost vs speed ratio", Exp16},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtRatio renders a mean ratio with its 95% CI half-width.
func fmtRatio(mean, ci float64) string {
	return fmt.Sprintf("%.4f±%.4f", mean, ci)
}
