package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/online"
	"dvsreject/internal/stats"
)

// Exp11 — the online extension: empirical competitive ratio of the
// marginal-cost admission policy (and the feasibility-only baseline)
// against the clairvoyant offline optimum, versus offered load. The
// execution substrate is the Optimal Available re-planning policy over
// YDS schedules.
func Exp11(o Options) (Table, error) {
	loads := []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	if o.Quick {
		loads = []float64{1.0, 2.0}
	}
	trials := o.trials(20)
	n := 12
	if o.Quick {
		n = 8
	}

	t := Table{
		ID:     "E11",
		Title:  fmt.Sprintf("online admission: cost / clairvoyant optimum vs load (n=%d jobs per storm)", n),
		Header: []string{"load", "ONLINE-MARGINAL", "ONLINE-FEASIBLE", "OFF-accept-frac", "ON-accept-frac"},
		Notes: []string{
			"offline reference: exhaustive subset search costed by the YDS optimal schedule",
			"online policies re-plan with Optimal Available (YDS on remaining work) at each arrival",
		},
	}
	proc := idealProc()
	for i, load := range loads {
		var rm, rf, offFrac, onFrac stats.Summary
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*811 + int64(trial)*1009))
			jobs := online.RandomStorm(rng, online.StormConfig{N: n, Load: load})
			off, err := online.OfflineOptimal(jobs, proc)
			if err != nil {
				return Table{}, err
			}
			mc, err := online.Simulate(jobs, proc, online.MarginalCost{})
			if err != nil {
				return Table{}, err
			}
			af, err := online.Simulate(jobs, proc, online.AdmitFeasible{})
			if err != nil {
				return Table{}, err
			}
			if off.Cost > 0 {
				rm.Add(mc.Cost / off.Cost)
				rf.Add(af.Cost / off.Cost)
			}
			offFrac.Add(float64(len(off.Accepted)) / float64(n))
			onFrac.Add(float64(len(mc.Accepted)) / float64(n))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", load),
			fmtRatio(rm.Mean(), rm.CI95()),
			fmtRatio(rf.Mean(), rf.CI95()),
			fmt.Sprintf("%.3f", offFrac.Mean()),
			fmt.Sprintf("%.3f", onFrac.Mean()),
		})
	}
	return t, nil
}
