package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/online"
	"dvsreject/internal/stats"
)

// Exp11 — the online extension: empirical competitive ratio of the
// marginal-cost admission policy (and the feasibility-only baseline)
// against the clairvoyant offline optimum, versus offered load. The
// execution substrate is the Optimal Available re-planning policy over
// YDS schedules.
func Exp11(o Options) (Table, error) {
	loads := []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	if o.Quick {
		loads = []float64{1.0, 2.0}
	}
	trials := o.trials(20)
	n := 12
	if o.Quick {
		n = 8
	}

	t := Table{
		ID:     "E11",
		Title:  fmt.Sprintf("online admission: cost / clairvoyant optimum vs load (n=%d jobs per storm)", n),
		Header: []string{"load", "ONLINE-MARGINAL", "ONLINE-FEASIBLE", "OFF-accept-frac", "ON-accept-frac"},
		Notes: []string{
			"offline reference: exhaustive subset search costed by the YDS optimal schedule",
			"online policies re-plan with Optimal Available (YDS on remaining work) at each arrival",
		},
	}
	proc := idealProc()
	for i, load := range loads {
		var rm, rf, offFrac, onFrac stats.Summary
		type res struct {
			rm, rf  float64
			ok      bool
			off, on float64
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*811 + int64(trial)*1009))
			jobs := online.RandomStorm(rng, online.StormConfig{N: n, Load: load})
			off, err := online.OfflineOptimal(jobs, proc)
			if err != nil {
				return res{}, err
			}
			mc, err := online.Simulate(jobs, proc, online.MarginalCost{})
			if err != nil {
				return res{}, err
			}
			af, err := online.Simulate(jobs, proc, online.AdmitFeasible{})
			if err != nil {
				return res{}, err
			}
			r := res{
				off: float64(len(off.Accepted)) / float64(n),
				on:  float64(len(mc.Accepted)) / float64(n),
			}
			if off.Cost > 0 {
				r.rm, r.rf, r.ok = mc.Cost/off.Cost, af.Cost/off.Cost, true
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.ok {
				rm.Add(r.rm)
				rf.Add(r.rf)
			}
			offFrac.Add(r.off)
			onFrac.Add(r.on)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", load),
			fmtRatio(rm.Mean(), rm.CI95()),
			fmtRatio(rf.Mean(), rf.CI95()),
			fmt.Sprintf("%.3f", offFrac.Mean()),
			fmt.Sprintf("%.3f", onFrac.Mean()),
		})
	}
	return t, nil
}
