package exper

import "time"

// now and since are the harness's wall clock, seamed as package variables
// so the serial-vs-parallel golden test can pin them to a fake: the timing
// columns of E4/E8 and RunSuite's per-experiment durations are the only
// non-deterministic output of the harness, and stubbing the clock makes a
// full suite run byte-for-byte reproducible.
var (
	now   = time.Now
	since = time.Since
)
