package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/stats"
)

// idealProc is the evaluation bed of the homogeneous experiments: an ideal
// DVS processor with the cubic power model normalized to smax = 1.
func idealProc() speed.Proc {
	return speed.Proc{Model: power.Cubic(), SMax: 1}
}

// ratioRow measures, for one parameter point, every solver's mean cost
// normalized to the reference solver's cost over `trials` random
// instances. Trials run on a worker pool; aggregation order stays the
// serial one, so tables are deterministic for a fixed seed.
func ratioRow(o Options, seed int64, trials int, mk func(*rand.Rand) (core.Instance, error),
	ref core.Solver, solvers []core.Solver) (map[string]*stats.Summary, error) {

	rows, err := forEachTrial(o, trials, func(trial int) ([]float64, error) {
		rng := rand.New(rand.NewSource(seed + int64(trial)*1009))
		in, err := mk(rng)
		if err != nil {
			return nil, err
		}
		opt, err := ref.Solve(in)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", ref.Name(), err)
		}
		vals := make([]float64, len(solvers))
		for si, s := range solvers {
			sol, err := s.Solve(in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name(), err)
			}
			if opt.Cost <= 0 {
				vals[si] = 1
			} else {
				vals[si] = sol.Cost / opt.Cost
			}
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}

	sums := make(map[string]*stats.Summary, len(solvers))
	for _, s := range solvers {
		sums[s.Name()] = &stats.Summary{}
	}
	for _, vals := range rows {
		for si, s := range solvers {
			sums[s.Name()].Add(vals[si])
		}
	}
	return sums, nil
}

// heuristicLineup is the solver set the cost-ratio figures compare.
func heuristicLineup(seed int64) []core.Solver {
	return []core.Solver{
		core.ApproxDP{Eps: 0.1},
		core.GreedyMarginal{},
		core.GreedyDensity{},
		core.Rounding{},
		core.AcceptAll{},
		core.RandomAdmission{Seed: seed},
	}
}

// Exp1 — average relative cost (normalized to the exact optimum) versus
// the number of tasks, at fixed load 1.5. Mirrors the paper family's
// "relative energy consumption ratio vs number of tasks" figures, with the
// optimum obtained by exhaustive-equivalent DP.
func Exp1(o Options) (Table, error) {
	ns := []int{8, 10, 12, 14, 16}
	if o.Quick {
		ns = []int{8, 10}
	}
	trials := o.trials(25)
	solvers := heuristicLineup(o.Seed)

	t := Table{
		ID:     "E1",
		Title:  "avg cost / OPT vs number of tasks (load 1.5, uniform penalties)",
		Header: []string{"n"},
		Notes: []string{
			fmt.Sprintf("%d random instances per cell, ideal cubic processor, D=200", trials),
			"OPT = exact DP; every ratio ≥ 1 by construction",
		},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	for i, n := range ns {
		mk := func(rng *rand.Rand) (core.Instance, error) {
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 200})
			return core.Instance{Tasks: set, Proc: idealProc()}, err
		}
		sums, err := ratioRow(o, o.Seed+int64(i)*77, trials, mk, core.DP{}, solvers)
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range solvers {
			sum := sums[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp2 — average relative cost versus system load Σci/(smax·D). Below
// load 1 rejection is purely economic; above it rejection becomes
// mandatory and the heuristics' admission order starts to matter.
func Exp2(o Options) (Table, error) {
	loads := []float64{0.4, 0.8, 1.2, 1.6, 2.0, 2.5, 3.0}
	if o.Quick {
		loads = []float64{0.8, 2.0}
	}
	trials := o.trials(25)
	n := 40
	if o.Quick {
		n = 15
	}
	solvers := heuristicLineup(o.Seed)

	t := Table{
		ID:     "E2",
		Title:  fmt.Sprintf("avg cost / OPT vs system load (n=%d, uniform penalties)", n),
		Header: []string{"load"},
		Notes:  []string{fmt.Sprintf("%d random instances per cell; load > 1 forces rejection", trials)},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	for i, load := range loads {
		load := load
		mk := func(rng *rand.Rand) (core.Instance, error) {
			set, err := gen.Frame(rng, gen.Config{N: n, Load: load, Deadline: 200})
			return core.Instance{Tasks: set, Proc: idealProc()}, err
		}
		sums, err := ratioRow(o, o.Seed+int64(i)*131, trials, mk, core.DP{}, solvers)
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%.1f", load)}
		for _, s := range solvers {
			sum := sums[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp3 — average relative cost versus the penalty scale κ. Small κ makes
// rejection cheap (energy-dominated regime); large κ forces near-full
// admission, converging every reasonable heuristic to the optimum.
func Exp3(o Options) (Table, error) {
	scales := []float64{0.1, 0.3, 1, 3, 10}
	if o.Quick {
		scales = []float64{0.3, 3}
	}
	trials := o.trials(25)
	n := 40
	if o.Quick {
		n = 15
	}
	solvers := heuristicLineup(o.Seed)

	t := Table{
		ID:     "E3",
		Title:  fmt.Sprintf("avg cost / OPT vs penalty scale κ (n=%d, load 1.5)", n),
		Header: []string{"κ"},
		Notes:  []string{"κ multiplies every rejection penalty relative to the contested calibration"},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	for i, k := range scales {
		k := k
		mk := func(rng *rand.Rand) (core.Instance, error) {
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 200, PenaltyScale: k})
			return core.Instance{Tasks: set, Proc: idealProc()}, err
		}
		sums, err := ratioRow(o, o.Seed+int64(i)*173, trials, mk, core.DP{}, solvers)
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%g", k)}
		for _, s := range solvers {
			sum := sums[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp10 — the admission-control trade curve: the optimal acceptance ratio
// (fraction of tasks admitted) and the energy/penalty split versus the
// penalty scale κ, at load 1.5. This is the figure a system designer uses
// to pick penalties.
func Exp10(o Options) (Table, error) {
	scales := []float64{0.05, 0.1, 0.3, 1, 3, 10, 30}
	if o.Quick {
		scales = []float64{0.1, 3}
	}
	trials := o.trials(25)
	n := 30
	if o.Quick {
		n = 12
	}

	t := Table{
		ID:     "E10",
		Title:  fmt.Sprintf("optimal acceptance ratio and cost split vs penalty scale (n=%d, load 1.5)", n),
		Header: []string{"κ", "accepted-frac", "accepted-load", "energy-share", "penalty-share"},
		Notes:  []string{"all columns from the exact DP optimum; accepted-load is vs capacity smax·D"},
	}
	for i, k := range scales {
		var fr, ld, es, ps stats.Summary
		type res struct {
			frac, load, eShare, pShare float64
			costPos                    bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*211 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 200, PenaltyScale: k})
			if err != nil {
				return res{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}
			sol, err := (core.DP{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r := res{frac: float64(len(sol.Accepted)) / float64(n)}
			var w int64
			acc := sol.AcceptedSet()
			for _, tk := range set.Tasks {
				if acc[tk.ID] {
					w += tk.Cycles
				}
			}
			r.load = float64(w) / in.Capacity()
			if sol.Cost > 0 {
				r.costPos = true
				r.eShare = sol.Energy / sol.Cost
				r.pShare = sol.Penalty / sol.Cost
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			fr.Add(r.frac)
			ld.Add(r.load)
			if r.costPos {
				es.Add(r.eShare)
				ps.Add(r.pShare)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", k),
			fmt.Sprintf("%.3f", fr.Mean()),
			fmt.Sprintf("%.3f", ld.Mean()),
			fmt.Sprintf("%.3f", es.Mean()),
			fmt.Sprintf("%.3f", ps.Mean()),
		})
	}
	return t, nil
}
