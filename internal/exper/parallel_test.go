package exper

import (
	"errors"
	"testing"
)

func TestForEachTrialOrderAndValues(t *testing.T) {
	got, err := forEachTrial(Options{}, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachTrialError(t *testing.T) {
	want := errors.New("boom")
	_, err := forEachTrial(Options{}, 20, func(i int) (int, error) {
		if i == 13 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestForEachTrialZero(t *testing.T) {
	got, err := forEachTrial(Options{}, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("zero trials = (%v, %v)", got, err)
	}
}

// The parallel harness must not change experiment output: same seed, same
// table, run twice (scheduling differences must be invisible).
func TestParallelDeterminism(t *testing.T) {
	a, err := Exp2(Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exp2(Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Error("parallel trials broke determinism")
	}
}
