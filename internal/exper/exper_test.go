package exper

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID = %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Errorf("%s: row width %d != header width %d", e.ID, len(r), len(tab.Header))
				}
			}
			out := tab.Format()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tab.Header[0]) {
				t.Errorf("%s: Format() output malformed:\n%s", e.ID, out)
			}
		})
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Exp1(Options{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exp1(Options{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Error("same seed produced different tables")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 unexpectedly found")
	}
}

func TestRatiosAtLeastOne(t *testing.T) {
	// Every heuristic ratio in E1 must be ≥ 1 (normalized to the optimum).
	tab, err := Exp1(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			mean, err := meanOfCell(cell)
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if mean < 1-1e-6 {
				t.Errorf("ratio %v < 1 in row %v", mean, row)
			}
		}
	}
}

// meanOfCell parses the leading float of a "mean±ci" cell.
func meanOfCell(cell string) (float64, error) {
	if i := strings.IndexRune(cell, '±'); i >= 0 {
		cell = cell[:i]
	}
	return strconv.ParseFloat(cell, 64)
}
