package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/stats"
)

// Exp15 — heterogeneous power characteristics (the LEET/LEUF line): tasks
// carry per-task dynamic power coefficients ρ ∈ [0.5, 2], folded into
// effective cycles ci·ρi^(1/α). The exact reference is the heterogeneous
// branch-and-bound (which re-costs leaves through the KKT-clamped per-task
// speed assignment); the heuristics decide on the effective-cycles
// surrogate. The homogeneous column re-runs the same instances with ρ ≡ 1
// to isolate what heterogeneity costs the heuristics.
func Exp15(o Options) (Table, error) {
	ns := []int{8, 10, 12}
	if o.Quick {
		ns = []int{8}
	}
	trials := o.trials(20)
	solvers := []core.Solver{core.GreedyMarginal{}, core.GreedyDensity{}, core.RandomAdmission{Seed: o.Seed}}

	t := Table{
		ID:     "E15",
		Title:  "heterogeneous power characteristics: cost / OPT vs n (ρ ∈ [0.5, 2], load 1.5)",
		Header: []string{"n"},
		Notes: []string{
			"OPT = heterogeneous branch-and-bound with exact KKT re-costing",
			"*-hom columns: identical instances with ρ ≡ 1 (heterogeneity cost isolation)",
		},
	}
	for _, s := range solvers {
		t.Header = append(t.Header, s.Name())
	}
	for _, s := range solvers[:2] {
		t.Header = append(t.Header, s.Name()+"-hom")
	}

	for i, n := range ns {
		het := make(map[string]*stats.Summary)
		hom := make(map[string]*stats.Summary)
		for _, s := range solvers {
			het[s.Name()] = &stats.Summary{}
			hom[s.Name()] = &stats.Summary{}
		}
		type res struct {
			het   []float64
			hetOK bool
			hom   []float64
			homOK bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(i)*1409 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: n, Load: 1.5, Deadline: 200, HeteroRho: true})
			if err != nil {
				return res{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}
			opt, err := (core.Exhaustive{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			r := res{het: make([]float64, len(solvers)), hetOK: opt.Cost > 0}
			for si, s := range solvers {
				sol, err := s.Solve(in)
				if err != nil {
					return res{}, err
				}
				if r.hetOK {
					r.het[si] = sol.Cost / opt.Cost
				}
			}

			// Homogeneous twin: strip the coefficients.
			homSet := set
			homSet.Tasks = nil
			for _, tk := range set.Tasks {
				tk.Rho = 0
				homSet.Tasks = append(homSet.Tasks, tk)
			}
			homIn := core.Instance{Tasks: homSet, Proc: idealProc()}
			homOpt, err := (core.DP{}).Solve(homIn)
			if err != nil {
				return res{}, err
			}
			r.hom = make([]float64, 2)
			r.homOK = homOpt.Cost > 0
			for si, s := range solvers[:2] {
				sol, err := s.Solve(homIn)
				if err != nil {
					return res{}, err
				}
				if r.homOK {
					r.hom[si] = sol.Cost / homOpt.Cost
				}
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			if r.hetOK {
				for si, s := range solvers {
					het[s.Name()].Add(r.het[si])
				}
			}
			if r.homOK {
				for si, s := range solvers[:2] {
					hom[s.Name()].Add(r.hom[si])
				}
			}
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range solvers {
			sum := het[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		for _, s := range solvers[:2] {
			sum := hom[s.Name()]
			row = append(row, fmtRatio(sum.Mean(), sum.CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
