package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/stats"
)

// Exp12 — ablations of the two design choices DESIGN.md calls out:
//
//  1. the branch-and-bound's convex marginal-cost pruning term (vs the
//     always-valid weak bound) — measured in explored search nodes;
//  2. the local search's swap moves (vs single-task toggles only) —
//     measured in cost relative to the exact optimum.
func Exp12(o Options) (Table, error) {
	type point struct {
		n    int
		load float64
	}
	points := []point{{12, 1.2}, {16, 1.5}, {20, 1.8}}
	if o.Quick {
		points = []point{{10, 1.5}}
	}
	trials := o.trials(15)

	t := Table{
		ID:     "E12",
		Title:  "ablations: B&B pruning term (nodes) and local-search swap moves (cost/OPT)",
		Header: []string{"n", "load", "nodes-strong", "nodes-weak", "prune-factor", "S-GREEDY/OPT", "toggles-only/OPT"},
		Notes: []string{
			"both bound variants return the identical optimum; only the explored nodes differ",
			"cost columns: mean cost normalized to the exact DP optimum",
		},
	}
	for pi, p := range points {
		var nodesStrong, nodesWeak stats.Summary
		var full, toggles stats.Summary
		type res struct {
			sn, wn    float64
			full, tog float64
			ok        bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(pi)*907 + int64(trial)*1009))
			set, err := gen.Frame(rng, gen.Config{N: p.n, Load: p.load, Deadline: 200, Penalty: gen.PenaltyProportional})
			if err != nil {
				return res{}, err
			}
			in := core.Instance{Tasks: set, Proc: idealProc()}

			_, sn, err := (core.Exhaustive{}).SolveStats(in)
			if err != nil {
				return res{}, err
			}
			_, wn, err := (core.Exhaustive{WeakBoundOnly: true}).SolveStats(in)
			if err != nil {
				return res{}, err
			}
			r := res{sn: float64(sn), wn: float64(wn)}

			opt, err := (core.DP{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			f, err := (core.GreedyMarginal{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			g, err := (core.GreedyMarginal{DisableSwaps: true}).Solve(in)
			if err != nil {
				return res{}, err
			}
			if opt.Cost > 0 {
				r.full, r.tog, r.ok = f.Cost/opt.Cost, g.Cost/opt.Cost, true
			}
			return r, nil
		})
		if err != nil {
			return Table{}, err
		}
		for _, r := range rs {
			nodesStrong.Add(r.sn)
			nodesWeak.Add(r.wn)
			if r.ok {
				full.Add(r.full)
				toggles.Add(r.tog)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.n),
			fmt.Sprintf("%.1f", p.load),
			fmt.Sprintf("%.0f", nodesStrong.Mean()),
			fmt.Sprintf("%.0f", nodesWeak.Mean()),
			fmt.Sprintf("%.1f×", nodesWeak.Mean()/nodesStrong.Mean()),
			fmtRatio(full.Mean(), full.CI95()),
			fmtRatio(toggles.Mean(), toggles.CI95()),
		})
	}
	return t, nil
}
