package exper

import (
	"strings"
	"testing"
	"time"
)

// stubClock pins the harness clock so the wall-clock timing columns of
// E4/E8 (the only non-deterministic table cells) render identically on
// every run, restoring the real clock when the test ends.
func stubClock(t *testing.T) {
	t.Helper()
	saveNow, saveSince := now, since
	now = func() time.Time { return time.Time{} }
	since = func(time.Time) time.Duration { return 0 }
	t.Cleanup(func() { now, since = saveNow, saveSince })
}

func renderSuite(t *testing.T, workers int) string {
	t.Helper()
	results, err := RunSuite(All(), Options{Quick: true, Seed: 1, Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Table.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSuiteSerialParallelByteIdentical is the harness's output-preservation
// pin: the full E1–E15 suite rendered with a serial worker pool must be
// byte-for-byte identical to the same suite rendered on a parallel pool.
// Trials draw from independent per-trial RNGs and all aggregation is folded
// in index order, so any divergence here means a trial picked up shared
// state it should not have.
func TestSuiteSerialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in -short mode")
	}
	stubClock(t)
	serial := renderSuite(t, 1)
	parallel := renderSuite(t, 4)
	if serial != parallel {
		d := diffLine(serial, parallel)
		t.Fatalf("serial and parallel suite output diverge (first differing line %d):\nserial:   %q\nparallel: %q",
			d.line, d.a, d.b)
	}
}

type lineDiff struct {
	line int
	a, b string
}

func diffLine(a, b string) lineDiff {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return lineDiff{i + 1, al[i], bl[i]}
		}
	}
	return lineDiff{len(al), "<end>", "<end>"}
}
