package exper

import (
	"fmt"
	"math/rand"

	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/stats"
)

// Exp16 — heterogeneous big.LITTLE partitioned rejection: the hetero
// solver ladder versus the exhaustive partitioned optimum as the
// big:little speed ratio grows, plus the certified optimality gap that
// the pooled LP-style relaxation (HeteroLowerBound) proves for
// HETERO-PART without any exhaustive reference. Ratio 1 is the
// identical-processor degeneracy row — by the bit-match contract it must
// reproduce E9's solver behaviour exactly.
func Exp16(o Options) (Table, error) {
	ratios := []float64{1, 2, 4}
	if o.Quick {
		ratios = []float64{2}
	}
	trials := o.trials(15)
	const n = 7 // (M+1)^n = 5^7 keeps the exhaustive reference tractable

	t := Table{
		ID:     "E16",
		Title:  "big.LITTLE rejection: cost ratios vs speed ratio (M=4: 2 big + 2 little, n=7)",
		Header: []string{"ratio", "HETERO-LTF", "HETERO-LS", "HETERO-PART", "cert. gap"},
		Notes: []string{
			"ratios are cost/OPT with OPT the exhaustive partitioned optimum",
			"cert. gap = mean certified (cost−LB)/cost of HETERO-PART from the pooled relaxation — proven without the exhaustive reference",
			"load scales with total smax so the platform sees load 1.5",
		},
	}
	for ri, ratio := range ratios {
		procs, err := gen.BigLittle(gen.BigLittleConfig{NBig: 2, NLittle: 2, Ratio: ratio})
		if err != nil {
			return Table{}, err
		}
		smaxTotal := 0.0
		for _, p := range procs {
			smaxTotal += p.SMax
		}
		type res struct {
			ltf, ls, part, gap float64
			ok                 bool
		}
		rs, err := forEachTrial(o, trials, func(trial int) (res, error) {
			rng := rand.New(rand.NewSource(o.Seed + int64(ri)*811 + int64(trial)*1013))
			set, err := gen.Frame(rng, gen.Config{
				N: n, Load: 1.5 * smaxTotal, Deadline: 100,
				Penalty: gen.PenaltyModel(trial % 3),
			})
			if err != nil {
				return res{}, err
			}
			in := multiproc.HeteroInstance{Tasks: set, Procs: procs}
			opt, err := (multiproc.HeteroExhaustive{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			ltf, err := (multiproc.HeteroLTFReject{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			ls, err := (multiproc.HeteroLTFRejectLS{}).Solve(in)
			if err != nil {
				return res{}, err
			}
			cert, err := multiproc.SolveHeteroCertified(in, multiproc.HeteroPartition{})
			if err != nil {
				return res{}, err
			}
			if opt.Cost <= 0 {
				return res{}, nil
			}
			gap := cert.Gap
			if gap < 0 {
				gap = 0 // convex vectors always certify here
			}
			return res{
				ltf: ltf.Cost / opt.Cost, ls: ls.Cost / opt.Cost,
				part: cert.Cost / opt.Cost, gap: gap, ok: true,
			}, nil
		})
		if err != nil {
			return Table{}, err
		}
		var rLTF, rLS, rPart, rGap stats.Summary
		for _, r := range rs {
			if r.ok {
				rLTF.Add(r.ltf)
				rLS.Add(r.ls)
				rPart.Add(r.part)
				rGap.Add(r.gap)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", ratio),
			fmtRatio(rLTF.Mean(), rLTF.CI95()),
			fmtRatio(rLS.Mean(), rLS.CI95()),
			fmtRatio(rPart.Mean(), rPart.CI95()),
			fmt.Sprintf("%.4f", rGap.Mean()),
		})
	}
	return t, nil
}
