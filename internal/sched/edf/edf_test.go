package edf

import (
	"math"
	"testing"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

func full(speedVal, end float64) speed.Profile {
	return speed.Constant(speedVal, 0, end)
}

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name    string
		j       Job
		wantErr bool
	}{
		{"valid", Job{TaskID: 1, Release: 0, Deadline: 10, Cycles: 5}, false},
		{"negative release", Job{Release: -1, Deadline: 10, Cycles: 5}, true},
		{"deadline before release", Job{Release: 5, Deadline: 5, Cycles: 5}, true},
		{"zero cycles", Job{Release: 0, Deadline: 10, Cycles: 0}, true},
		{"nan cycles", Job{Release: 0, Deadline: 10, Cycles: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.j.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSimulateSingleJob(t *testing.T) {
	jobs := []Job{{TaskID: 1, Release: 0, Deadline: 10, Cycles: 5}}
	r, err := Simulate(jobs, full(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatal("single easy job missed")
	}
	if math.Abs(r.Jobs[0].Finish-5) > 1e-9 {
		t.Errorf("finish = %v, want 5", r.Jobs[0].Finish)
	}
}

func TestSimulateMiss(t *testing.T) {
	jobs := []Job{{TaskID: 1, Release: 0, Deadline: 4, Cycles: 5}}
	r, err := Simulate(jobs, full(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible() || r.Misses != 1 || !r.Jobs[0].Missed {
		t.Errorf("result = %+v, want one miss", r)
	}
}

func TestSimulateEDFOrder(t *testing.T) {
	// Two jobs at time 0; the one with the earlier deadline runs first.
	jobs := []Job{
		{TaskID: 1, Release: 0, Deadline: 20, Cycles: 5},
		{TaskID: 2, Release: 0, Deadline: 10, Cycles: 5},
	}
	r, err := Simulate(jobs, full(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatal("feasible set missed")
	}
	if !(r.Jobs[1].Finish < r.Jobs[0].Finish) {
		t.Errorf("EDF order violated: finishes %v, %v", r.Jobs[0].Finish, r.Jobs[1].Finish)
	}
	if math.Abs(r.Jobs[1].Finish-5) > 1e-9 || math.Abs(r.Jobs[0].Finish-10) > 1e-9 {
		t.Errorf("finishes = %v, %v, want 5, 10", r.Jobs[1].Finish, r.Jobs[0].Finish)
	}
}

func TestSimulatePreemption(t *testing.T) {
	// A long job is preempted by a later-arriving urgent job.
	jobs := []Job{
		{TaskID: 1, Release: 0, Deadline: 20, Cycles: 10},
		{TaskID: 2, Release: 2, Deadline: 5, Cycles: 2},
	}
	r, err := Simulate(jobs, full(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatal("feasible set missed")
	}
	// Task 2 runs in [2, 4]; task 1 in [0, 2] ∪ [4, 12].
	if math.Abs(r.Jobs[1].Finish-4) > 1e-9 {
		t.Errorf("urgent finish = %v, want 4", r.Jobs[1].Finish)
	}
	if math.Abs(r.Jobs[0].Finish-12) > 1e-9 {
		t.Errorf("preempted finish = %v, want 12", r.Jobs[0].Finish)
	}
}

func TestSimulateSpeedChange(t *testing.T) {
	// Speed 0.5 for [0, 10), then 1.0: a 10-cycle job starting at 0
	// finishes at 10 + 5 = 15.
	pr := speed.Profile{{Start: 0, End: 10, Speed: 0.5}, {Start: 10, End: 100, Speed: 1}}
	jobs := []Job{{TaskID: 1, Release: 0, Deadline: 20, Cycles: 10}}
	r, err := Simulate(jobs, pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Jobs[0].Finish-15) > 1e-9 {
		t.Errorf("finish = %v, want 15", r.Jobs[0].Finish)
	}
}

func TestSimulateZeroSpeedMiss(t *testing.T) {
	// Profile ends at 3; the job needs 5 cycles and misses at its deadline.
	jobs := []Job{{TaskID: 1, Release: 0, Deadline: 8, Cycles: 5}}
	r, err := Simulate(jobs, full(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Jobs[0].Missed {
		t.Errorf("job must miss when the processor stops, got %+v", r.Jobs[0])
	}
}

func TestSimulateIdleGapBetweenReleases(t *testing.T) {
	jobs := []Job{
		{TaskID: 1, Release: 0, Deadline: 2, Cycles: 1},
		{TaskID: 2, Release: 10, Deadline: 12, Cycles: 1},
	}
	r, err := Simulate(jobs, full(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatal("feasible set missed")
	}
	if math.Abs(r.Jobs[1].Finish-11) > 1e-9 {
		t.Errorf("second finish = %v, want 11", r.Jobs[1].Finish)
	}
}

func TestSimulateInvalidInput(t *testing.T) {
	if _, err := Simulate([]Job{{Cycles: -1, Deadline: 1}}, full(1, 10)); err == nil {
		t.Error("invalid job accepted")
	}
	bad := speed.Profile{{Start: 5, End: 1, Speed: 1}}
	if _, err := Simulate(nil, bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSimulateEmpty(t *testing.T) {
	r, err := Simulate(nil, full(1, 10))
	if err != nil || !r.Feasible() || len(r.Jobs) != 0 {
		t.Errorf("empty simulation = (%+v, %v)", r, err)
	}
}

func TestFrameJobs(t *testing.T) {
	s := task.Set{
		Deadline: 10,
		Tasks: []task.Task{
			{ID: 1, Cycles: 4},
			{ID: 2, Cycles: 6},
			{ID: 3, Cycles: 2},
		},
	}
	all := FrameJobs(s, nil)
	if len(all) != 3 {
		t.Fatalf("len(all) = %d, want 3", len(all))
	}
	some := FrameJobs(s, []int{1, 3})
	if len(some) != 2 || some[0].TaskID != 1 || some[1].TaskID != 3 {
		t.Errorf("FrameJobs subset = %+v", some)
	}
	for _, j := range some {
		if j.Release != 0 || j.Deadline != 10 {
			t.Errorf("frame job window = [%v, %v], want [0, 10]", j.Release, j.Deadline)
		}
	}
	empty := FrameJobs(s, []int{})
	if len(empty) != 0 {
		t.Errorf("empty accepted list produced %d jobs", len(empty))
	}
}

func TestPeriodicJobs(t *testing.T) {
	// The paper's running example: p1 = 2, p2 = 5, hyper-period 10.
	ps := task.PeriodicSet{Tasks: []task.Periodic{
		{ID: 1, Cycles: 1, Period: 2},
		{ID: 2, Cycles: 2, Period: 5},
	}}
	jobs := PeriodicJobs(ps, 10)
	// 5 jobs of task 1 + 2 jobs of task 2.
	if len(jobs) != 7 {
		t.Fatalf("len(jobs) = %d, want 7", len(jobs))
	}
	var t1, t2 int
	for _, j := range jobs {
		switch j.TaskID {
		case 1:
			t1++
		case 2:
			t2++
		}
		if j.Deadline != j.Release+float64(map[int]int64{1: 2, 2: 5}[j.TaskID]) {
			t.Errorf("job %+v has wrong deadline", j)
		}
	}
	if t1 != 5 || t2 != 2 {
		t.Errorf("job counts = (%d, %d), want (5, 2)", t1, t2)
	}
}

func TestPeriodicEDFAtUtilizationSpeed(t *testing.T) {
	// EDF at speed equal to the cycle utilization is exactly feasible
	// (Liu & Layland): utilization 0.9 → speed 0.9 works, 0.85 misses.
	ps := task.PeriodicSet{Tasks: []task.Periodic{
		{ID: 1, Cycles: 1, Period: 2},
		{ID: 2, Cycles: 2, Period: 5},
	}}
	jobs := PeriodicJobs(ps, 10)
	r, err := Simulate(jobs, full(0.9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Errorf("EDF at the utilization speed must be feasible, got %d misses", r.Misses)
	}
	r, err = Simulate(jobs, full(0.85, 10))
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible() {
		t.Error("EDF below the utilization speed must miss")
	}
}

func TestSimulateBoundaryWithinSlack(t *testing.T) {
	// Regression: a job released within float tolerance *before* a speed-up
	// boundary must still be priced at the fast segment, not spuriously
	// missed at the slow one (found via YDS schedules whose collapse/expand
	// arithmetic drifts boundaries by a few ulps).
	pr := speed.Profile{{Start: 0, End: 10, Speed: 0.1}, {Start: 10, End: 20, Speed: 1}}
	jobs := []Job{{TaskID: 1, Release: 10 - 1e-10, Deadline: 20, Cycles: 10 - 1e-6}}
	r, err := Simulate(jobs, pr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 0 {
		t.Fatalf("spurious miss: %+v", r.Jobs[0])
	}
	if math.Abs(r.Jobs[0].Finish-20) > 1e-5 {
		t.Errorf("finish = %v, want ≈ 20", r.Jobs[0].Finish)
	}
}
