// Package edf implements a preemptive earliest-deadline-first scheduler
// simulator for a single DVS processor.
//
// EDF is optimal for independent real-time jobs on one processor (Liu &
// Layland), which is why the whole paper family layers DVS speed selection
// on top of it. The simulator executes a concrete job set against a
// piecewise-constant speed profile and reports completion times and
// deadline misses. The repository uses it as an *oracle*: every solution
// produced by the rejection solvers is replayed here to confirm it is
// actually schedulable.
package edf

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Job is one real-time job instance.
type Job struct {
	TaskID   int
	Release  float64 // arrival time
	Deadline float64 // absolute deadline
	Cycles   float64 // execution requirement in cycles
}

// Validate reports whether the job parameters are sensible.
func (j Job) Validate() error {
	switch {
	case math.IsNaN(j.Release) || j.Release < 0:
		return fmt.Errorf("edf: job of task %d: release = %v, want ≥ 0", j.TaskID, j.Release)
	case math.IsNaN(j.Deadline) || j.Deadline <= j.Release:
		return fmt.Errorf("edf: job of task %d: deadline = %v, want > release %v", j.TaskID, j.Deadline, j.Release)
	case math.IsNaN(j.Cycles) || j.Cycles <= 0:
		return fmt.Errorf("edf: job of task %d: cycles = %v, want > 0", j.TaskID, j.Cycles)
	}
	return nil
}

// JobResult is the outcome of one job in a simulation.
type JobResult struct {
	Job
	Finish float64 // completion time; meaningless when Missed
	Missed bool    // true when the job did not complete by its deadline
}

// Slice is one contiguous stretch of execution of a job.
type Slice struct {
	TaskID     int
	JobIndex   int // index into Result.Jobs
	Start, End float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Jobs   []JobResult
	Misses int     // number of missed deadlines
	Slices []Slice // execution trace in time order
}

// Feasible reports whether no job missed its deadline.
func (r Result) Feasible() bool { return r.Misses == 0 }

// missSlack tolerates floating-point error when comparing completion times
// against deadlines.
const missSlack = 1e-9

// active is the EDF ready queue: a min-heap on absolute deadline.
type active []*running

type running struct {
	job       Job
	remaining float64
	index     int // position in the job list, for stable results
}

func (a active) Len() int { return len(a) }
func (a active) Less(i, j int) bool {
	if a[i].job.Deadline != a[j].job.Deadline {
		return a[i].job.Deadline < a[j].job.Deadline
	}
	return a[i].index < a[j].index // deterministic tie-break
}
func (a active) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *active) Push(x any)   { *a = append(*a, x.(*running)) }
func (a *active) Pop() any {
	old := *a
	n := len(old)
	x := old[n-1]
	*a = old[:n-1]
	return x
}

// Simulate runs preemptive EDF over the jobs with the processor following
// the speed profile. Time outside the profile's segments has speed 0. The
// simulation ends when every job has completed or missed its deadline.
// Results are returned in the order the jobs were supplied.
func Simulate(jobs []Job, profile speed.Profile) (Result, error) {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	if err := profile.Validate(); err != nil {
		return Result{}, err
	}

	results := make([]JobResult, len(jobs))
	for i, j := range jobs {
		results[i] = JobResult{Job: j}
	}
	var slices []Slice
	record := func(idx int, from, to float64) {
		if to <= from {
			return
		}
		// Merge with the previous slice when the same job continues.
		if n := len(slices); n > 0 && slices[n-1].JobIndex == idx && slices[n-1].End >= from-missSlack {
			slices[n-1].End = to
			return
		}
		slices = append(slices, Slice{TaskID: jobs[idx].TaskID, JobIndex: idx, Start: from, End: to})
	}

	// Pending jobs sorted by release time.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Release < jobs[order[b]].Release
	})

	var ready active
	next := 0 // index into order of the next unreleased job
	t := 0.0
	if len(order) > 0 {
		t = jobs[order[0]].Release
	}

	for next < len(order) || ready.Len() > 0 {
		// Release everything that has arrived by t.
		for next < len(order) && jobs[order[next]].Release <= t+missSlack {
			i := order[next]
			heap.Push(&ready, &running{job: jobs[i], remaining: jobs[i].Cycles, index: i})
			next++
		}
		if ready.Len() == 0 {
			// Idle until the next release.
			t = jobs[order[next]].Release
			continue
		}

		cur := ready[0]

		// The next scheduling event: a release, the job's deadline, or a
		// profile speed change.
		horizon := cur.job.Deadline
		if next < len(order) && jobs[order[next]].Release < horizon {
			horizon = jobs[order[next]].Release
		}
		if b, ok := nextBoundary(profile, t); ok && b < horizon {
			horizon = b
		}
		if horizon <= t {
			horizon = t + missSlack // defensive: always make progress
		}

		// Execute the highest-priority job until the horizon or until it
		// completes within the current constant-speed stretch.
		s := profile.SpeedAt(t)
		var finish float64
		if s > 0 {
			finish = t + cur.remaining/s
		} else {
			finish = math.Inf(1)
		}
		switch {
		case finish <= horizon+missSlack && finish <= cur.job.Deadline+missSlack:
			// Job completes.
			heap.Pop(&ready)
			end := math.Min(finish, horizon)
			results[cur.index].Finish = end
			record(cur.index, t, end)
			t = end
		case horizon >= cur.job.Deadline-missSlack && finish > cur.job.Deadline+missSlack:
			// The deadline arrives first: the job misses.
			heap.Pop(&ready)
			results[cur.index].Missed = true
			if s > 0 {
				record(cur.index, t, cur.job.Deadline)
			}
			t = cur.job.Deadline
		default:
			// Run until the event, then re-evaluate.
			cur.remaining -= s * (horizon - t)
			if cur.remaining < 0 {
				cur.remaining = 0
			}
			if s > 0 {
				record(cur.index, t, horizon)
			}
			t = horizon
		}
	}

	r := Result{Jobs: results, Slices: slices}
	for _, jr := range results {
		if jr.Missed {
			r.Misses++
		}
	}
	return r, nil
}

// nextBoundary returns the earliest profile segment start or end strictly
// after t. The comparison is exact (no slack): skipping a boundary that
// lies within float tolerance of t would price the upcoming stretch at the
// wrong speed and can turn an exactly-fitting schedule into a spurious
// miss.
func nextBoundary(pr speed.Profile, t float64) (float64, bool) {
	best := math.Inf(1)
	for _, seg := range pr {
		if seg.Start > t && seg.Start < best {
			best = seg.Start
		}
		if seg.End > t && seg.End < best {
			best = seg.End
		}
	}
	return best, !math.IsInf(best, 1)
}

// FrameJobs converts a frame-based task set restricted to the accepted IDs
// into one job per accepted task (release 0, deadline D). A nil accepted
// slice means "all tasks".
func FrameJobs(s task.Set, accepted []int) []Job {
	want := map[int]bool{}
	for _, id := range accepted {
		want[id] = true
	}
	var jobs []Job
	for _, t := range s.Tasks {
		if accepted != nil && !want[t.ID] {
			continue
		}
		jobs = append(jobs, Job{
			TaskID:   t.ID,
			Release:  0,
			Deadline: s.Deadline,
			Cycles:   float64(t.Cycles),
		})
	}
	return jobs
}

// PeriodicJobs releases all jobs of the periodic tasks within [0, horizon).
// Jobs whose deadline falls beyond the horizon are not released (the
// hyper-period is the natural horizon, where every period divides evenly).
func PeriodicJobs(ps task.PeriodicSet, horizon int64) []Job {
	var jobs []Job
	for _, t := range ps.Tasks {
		for r := int64(0); r+t.Period <= horizon; r += t.Period {
			jobs = append(jobs, Job{
				TaskID:   t.ID,
				Release:  float64(r),
				Deadline: float64(r + t.Period),
				Cycles:   float64(t.Cycles),
			})
		}
	}
	return jobs
}
