package edf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// Property: a frame-based set with total cycles W run at constant speed
// s ≥ W/D is always feasible, and at s < W/D (with one job's worth of
// margin) something misses.
func TestQuickFrameFeasibilityThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		s := task.Set{Deadline: 100}
		for i := 0; i < n; i++ {
			s.Tasks = append(s.Tasks, task.Task{ID: i, Cycles: 1 + int64(rng.Intn(50))})
		}
		w := float64(s.TotalCycles())
		jobs := FrameJobs(s, nil)

		atSpeed := func(sp float64) bool {
			r, err := Simulate(jobs, speed.Constant(sp, 0, s.Deadline))
			return err == nil && r.Feasible()
		}
		exact := w / s.Deadline
		if !atSpeed(exact * 1.0000001) {
			return false
		}
		return !atSpeed(exact * 0.9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: EDF on periodic tasks at the utilization speed over one
// hyper-period is feasible for random harmonic-ish sets.
func TestQuickPeriodicUtilizationFeasible(t *testing.T) {
	periods := []int64{2, 4, 5, 8, 10, 20}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		ps := task.PeriodicSet{}
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			c := 1 + int64(rng.Intn(int(p)))
			ps.Tasks = append(ps.Tasks, task.Periodic{ID: i, Cycles: c, Period: p})
		}
		u := ps.Utilization()
		l, err := ps.Hyperperiod()
		if err != nil {
			return true
		}
		jobs := PeriodicJobs(ps, l)
		r, err := Simulate(jobs, speed.Constant(u+1e-9, 0, float64(l)))
		return err == nil && r.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: completed jobs always finish within their windows, and the
// total executed work never exceeds what the profile can deliver.
func TestQuickSimulationSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		var jobs []Job
		for i := 0; i < n; i++ {
			rel := float64(rng.Intn(50))
			jobs = append(jobs, Job{
				TaskID:   i,
				Release:  rel,
				Deadline: rel + 1 + float64(rng.Intn(30)),
				Cycles:   1 + float64(rng.Intn(20)),
			})
		}
		pr := speed.Constant(0.5+rng.Float64(), 0, 200)
		r, err := Simulate(jobs, pr)
		if err != nil {
			return false
		}
		var done float64
		for _, jr := range r.Jobs {
			if jr.Missed {
				continue
			}
			if jr.Finish < jr.Release-1e-9 || jr.Finish > jr.Deadline+1e-6 {
				return false
			}
			done += jr.Cycles
		}
		// Work conservation: completed cycles cannot exceed the profile's
		// total capacity.
		return done <= pr.Cycles(0, math.Inf(1))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
