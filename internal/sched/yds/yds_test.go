package yds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
)

func TestComputeEmpty(t *testing.T) {
	s, err := Compute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 0 || s.MaxSpeed != 0 {
		t.Errorf("empty schedule = %+v", s)
	}
}

func TestComputeSingleJob(t *testing.T) {
	s, err := Compute([]edf.Job{{TaskID: 0, Release: 2, Deadline: 10, Cycles: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(s.Blocks))
	}
	if math.Abs(s.MaxSpeed-0.5) > 1e-12 { // 4 cycles over [2, 10)
		t.Errorf("speed = %v, want 0.5", s.MaxSpeed)
	}
	if math.Abs(s.EnergyCubic()-0.5*0.5*4) > 1e-12 { // s²·W
		t.Errorf("energy = %v, want 1", s.EnergyCubic())
	}
}

func TestComputeFrameCaseMatchesConstantSpeed(t *testing.T) {
	// All jobs share the window [0, D): YDS must yield the single block at
	// speed W/D — the frame-based special case the core library uses.
	jobs := []edf.Job{
		{TaskID: 0, Release: 0, Deadline: 10, Cycles: 3},
		{TaskID: 1, Release: 0, Deadline: 10, Cycles: 5},
	}
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 1 || math.Abs(s.MaxSpeed-0.8) > 1e-12 {
		t.Fatalf("schedule = %+v, want one block at 0.8", s)
	}
}

func TestComputeTextbookExample(t *testing.T) {
	// Classic two-job nesting: an intense inner job forces a fast block;
	// the outer job runs around it at lower speed.
	jobs := []edf.Job{
		{TaskID: 0, Release: 0, Deadline: 10, Cycles: 4}, // outer
		{TaskID: 1, Release: 4, Deadline: 6, Cycles: 3},  // inner burst
	}
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(s.Blocks))
	}
	// Critical interval [4, 6): intensity 3/2 = 1.5.
	if math.Abs(s.Blocks[0].Speed-1.5) > 1e-12 {
		t.Errorf("first block speed = %v, want 1.5", s.Blocks[0].Speed)
	}
	// Remaining: job 0 in [0, 8) collapsed → 4 cycles over 8 → 0.5; pieces
	// re-expanded around the hole: [0, 4) and [6, 10).
	if math.Abs(s.Blocks[1].Speed-0.5) > 1e-12 {
		t.Errorf("second block speed = %v, want 0.5", s.Blocks[1].Speed)
	}
	p := s.Blocks[1].Pieces
	if len(p) != 2 || p[0].Start != 0 || p[0].End != 4 || p[1].Start != 6 || p[1].End != 10 {
		t.Errorf("outer pieces = %+v, want [0,4) and [6,10)", p)
	}
}

func TestBlocksDescendingSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := randomJobs(rng, 12)
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Blocks); i++ {
		if s.Blocks[i].Speed > s.Blocks[i-1].Speed+1e-9 {
			t.Errorf("block %d speed %v exceeds block %d speed %v",
				i, s.Blocks[i].Speed, i-1, s.Blocks[i-1].Speed)
		}
	}
}

func TestProfileValidAndWorkConserving(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	jobs := randomJobs(rng, 15)
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	pr := s.Profile()
	if err := pr.Validate(); err != nil {
		t.Fatalf("profile invalid: %v\n%+v", err, pr)
	}
	var want float64
	for _, j := range jobs {
		want += j.Cycles
	}
	if got := pr.Cycles(0, math.Inf(1)); math.Abs(got-want) > 1e-6 {
		t.Errorf("profile delivers %v cycles, jobs need %v", got, want)
	}
}

func TestScheduleIsEDFFeasible(t *testing.T) {
	// The YDS profile must let EDF meet every deadline.
	for seed := int64(0); seed < 20; seed++ {
		jobs := randomJobs(rand.New(rand.NewSource(seed)), 10)
		s, err := Compute(jobs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := edf.Simulate(jobs, s.Profile())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible() {
			t.Errorf("seed %d: YDS schedule missed %d deadlines", seed, r.Misses)
		}
	}
}

func TestEnergyMatchesModels(t *testing.T) {
	jobs := []edf.Job{
		{TaskID: 0, Release: 0, Deadline: 10, Cycles: 4},
		{TaskID: 1, Release: 4, Deadline: 6, Cycles: 3},
	}
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Energy(power.Cubic()), s.EnergyCubic(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Energy(cubic) = %v, EnergyCubic = %v", got, want)
	}
	// Hand value: 1.5³·2 + 0.5³·8 = 6.75 + 1 = 7.75.
	if math.Abs(s.EnergyCubic()-7.75) > 1e-12 {
		t.Errorf("energy = %v, want 7.75", s.EnergyCubic())
	}
}

func TestInvalidJobRejected(t *testing.T) {
	if _, err := Compute([]edf.Job{{Release: 5, Deadline: 3, Cycles: 1}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func randomJobs(rng *rand.Rand, n int) []edf.Job {
	jobs := make([]edf.Job, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * 50
		jobs = append(jobs, edf.Job{
			TaskID:   i,
			Release:  r,
			Deadline: r + 1 + rng.Float64()*30,
			Cycles:   0.5 + rng.Float64()*10,
		})
	}
	return jobs
}

// Property: YDS never uses more energy than the single-speed schedule
// that runs everything at the max-density speed across the whole span
// (a feasible alternative), and never less than the zero lower bound of
// the densest interval alone.
func TestQuickEnergyBounds(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := 1 + int(nn%10)
		jobs := randomJobs(rand.New(rand.NewSource(seed)), n)
		s, err := Compute(jobs)
		if err != nil {
			return false
		}
		// Feasible alternative: run at MaxSpeed whenever work is pending
		// across the whole span; its energy ≥ YDS (same work, ≥ speed,
		// convex power): energy_alt = MaxSpeed²·ΣW for cubic.
		var w float64
		for _, j := range jobs {
			w += j.Cycles
		}
		alt := s.MaxSpeed * s.MaxSpeed * w
		return s.EnergyCubic() <= alt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every job is assigned to exactly one block, and the block's
// speed is at least the job's own minimal density cycles/(deadline−release).
func TestQuickJobCoverage(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := 1 + int(nn%12)
		jobs := randomJobs(rand.New(rand.NewSource(seed)), n)
		s, err := Compute(jobs)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for bi, b := range s.Blocks {
			for _, id := range b.JobIDs {
				if _, dup := seen[id]; dup {
					return false
				}
				seen[id] = bi
			}
		}
		if len(seen) != n {
			return false
		}
		for id, bi := range seen {
			j := jobs[id]
			density := j.Cycles / (j.Deadline - j.Release)
			if s.Blocks[bi].Speed < density-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
