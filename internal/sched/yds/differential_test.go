package yds

// Differential corpus pinning the critical-interval scan restriction to
// the seed code shape: refCompute below runs the seed algorithm with its
// all-endpoint-pairs scan, and the optimized Compute must reproduce its
// schedules bit for bit — including first-achiever tie-breaks, which the
// tie-heavy corpora below (integer time grids, duplicated jobs, shared
// frames) exercise deliberately.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// refCriticalInterval is the seed scan over all ordered endpoint pairs.
func refCriticalInterval(live []job) (s, t float64, members []int, g float64) {
	points := make([]float64, 0, 2*len(live))
	for _, j := range live {
		points = append(points, j.release, j.deadline)
	}
	sort.Float64s(points)

	best := -1.0
	for a := 0; a < len(points); a++ {
		for b := a + 1; b < len(points); b++ {
			lo, hi := points[a], points[b]
			if hi <= lo {
				continue
			}
			var work float64
			for _, j := range live {
				if j.release >= lo && j.deadline <= hi {
					work += j.work
				}
			}
			if work == 0 {
				continue
			}
			if inten := work / (hi - lo); inten > best {
				best = inten
				s, t = lo, hi
			}
		}
	}
	if best < 0 {
		return 0, 0, nil, 0
	}
	for i, j := range live {
		if j.release >= s && j.deadline <= t {
			members = append(members, i)
		}
	}
	return s, t, members, best
}

// refCompute is the seed Compute, differing only in the interval scan.
func refCompute(jobs []edf.Job) (Schedule, error) {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Schedule{}, err
		}
	}
	live := make([]job, 0, len(jobs))
	for i, j := range jobs {
		live = append(live, job{id: i, release: j.Release, deadline: j.Deadline, work: j.Cycles})
	}

	var out Schedule
	var holes []speed.Segment
	for len(live) > 0 {
		s, t, members, g := refCriticalInterval(live)
		if !(g > 0) {
			return Schedule{}, fmt.Errorf("yds: no positive-intensity interval over %d jobs", len(live))
		}
		b := Block{Speed: g}
		memberSet := make(map[int]bool, len(members))
		for _, mi := range members {
			b.JobIDs = append(b.JobIDs, live[mi].id)
			memberSet[mi] = true
		}
		sort.Ints(b.JobIDs)
		holes = append(holes, speed.Segment{Start: s, End: t, Speed: g})
		out.Blocks = append(out.Blocks, b)

		next := live[:0]
		width := t - s
		for i := range live {
			if memberSet[i] {
				continue
			}
			j := live[i]
			j.release = collapse(j.release, s, t, width)
			j.deadline = collapse(j.deadline, s, t, width)
			next = append(next, j)
		}
		live = next
	}

	for bi := range out.Blocks {
		pieces := []speed.Segment{holes[bi]}
		for prev := bi - 1; prev >= 0; prev-- {
			pieces = insertHole(pieces, holes[prev])
		}
		out.Blocks[bi].Pieces = pieces
	}

	if len(out.Blocks) > 0 {
		out.MaxSpeed = out.Blocks[0].Speed
	}
	return out, nil
}

// ydsCorpus builds job sets across the shapes the scan restriction must
// survive: general random windows, integer grids full of exact endpoint
// ties, duplicated jobs, shared frames, and online-style common releases.
func ydsCorpus() [][]edf.Job {
	var corpus [][]edf.Job
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(seed)

		// Random real-valued windows.
		var random []edf.Job
		for i := 0; i < n; i++ {
			r := rng.Float64() * 50
			random = append(random, edf.Job{
				Release: r, Deadline: r + 1 + rng.Float64()*30, Cycles: 1 + rng.Float64()*10,
			})
		}
		corpus = append(corpus, random)

		// Integer time grid: endpoint values collide constantly.
		var grid []edf.Job
		for i := 0; i < n; i++ {
			r := float64(rng.Intn(6))
			grid = append(grid, edf.Job{
				Release: r, Deadline: r + float64(1+rng.Intn(5)), Cycles: float64(1 + rng.Intn(4)),
			})
		}
		corpus = append(corpus, grid)

		// Duplicated jobs: exact intensity ties between identical windows.
		dup := append([]edf.Job(nil), grid[:n/2+1]...)
		dup = append(dup, grid[:n/2+1]...)
		corpus = append(corpus, dup)

		// One shared frame (the paper family's base case).
		var frame []edf.Job
		for i := 0; i < n; i++ {
			frame = append(frame, edf.Job{Release: 0, Deadline: 20, Cycles: 1 + rng.Float64()*5})
		}
		corpus = append(corpus, frame)

		// Online-style: every job released "now", deadlines staggered.
		var online []edf.Job
		now := 5.0
		for i := 0; i < n; i++ {
			online = append(online, edf.Job{
				Release: now, Deadline: now + 1 + rng.Float64()*20, Cycles: 1 + rng.Float64()*8,
			})
		}
		corpus = append(corpus, online)
	}
	return corpus
}

// mustEqualSchedules compares two YDS schedules exactly through the shared
// diff collector: block-for-block bitwise speeds, pieces and job IDs.
func mustEqualSchedules(t *testing.T, label string, got, want Schedule) {
	t.Helper()
	var d oracle.Diff
	d.F64("max speed", got.MaxSpeed, want.MaxSpeed)
	d.Int("block count", len(got.Blocks), len(want.Blocks))
	if d.Ok() {
		for i := range got.Blocks {
			gb, wb := got.Blocks[i], want.Blocks[i]
			d.F64(fmt.Sprintf("block %d speed", i), gb.Speed, wb.Speed)
			d.IDs(fmt.Sprintf("block %d job IDs", i), gb.JobIDs, wb.JobIDs)
			if len(gb.Pieces) != len(wb.Pieces) {
				d.Add("block %d: %d pieces, want %d", i, len(gb.Pieces), len(wb.Pieces))
				continue
			}
			for p := range gb.Pieces {
				if gb.Pieces[p] != wb.Pieces[p] {
					d.Add("block %d piece %d: %+v, want %+v", i, p, gb.Pieces[p], wb.Pieces[p])
					break
				}
			}
		}
	}
	if err := d.Err(); err != nil {
		t.Errorf("%s: schedules diverge: %v", label, err)
	}
}

func TestDifferentialCompute(t *testing.T) {
	for i, jobs := range ydsCorpus() {
		want, wantErr := refCompute(jobs)
		got, gotErr := Compute(jobs)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("corpus %d: error mismatch: %v vs %v", i, gotErr, wantErr)
		}
		mustEqualSchedules(t, fmt.Sprintf("corpus %d", i), got, want)
	}
}

func TestDifferentialCriticalInterval(t *testing.T) {
	for i, jobs := range ydsCorpus() {
		live := make([]job, 0, len(jobs))
		for id, j := range jobs {
			live = append(live, job{id: id, release: j.Release, deadline: j.Deadline, work: j.Cycles})
		}
		ws, wt, wm, wg := refCriticalInterval(live)
		gs, gt, gm, gg := criticalInterval(live)
		var d oracle.Diff
		d.F64("interval start", gs, ws)
		d.F64("interval end", gt, wt)
		d.F64("intensity", gg, wg)
		d.IDs("members", gm, wm)
		if err := d.Err(); err != nil {
			t.Errorf("corpus %d: critical interval diverges: %v", i, err)
		}
	}
}
