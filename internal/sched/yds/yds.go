// Package yds implements the Yao–Demers–Shenker algorithm (FOCS 1995): the
// minimum-energy speed schedule for a set of jobs with arbitrary release
// times and deadlines on one ideal DVS processor with a convex power
// function.
//
// The paper family's frame-based analysis is the special case where all
// jobs share one window; YDS is the general substrate the online-arrival
// extension (internal/online) prices admissions against.
//
// The algorithm repeatedly finds the maximum-intensity interval
//
//	g(I) = (Σ work of jobs whose [release, deadline) ⊆ I) / |I|,
//
// commits those jobs to run at speed g(I) inside I (EDF order), removes
// them, and collapses I out of the remaining timeline. The resulting
// speed profile is optimal for any convex power function simultaneously.
// Complexity here is the textbook O(n³), ample for the experiment sizes.
package yds

import (
	"fmt"
	"math"
	"sort"

	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

// Schedule is the output of the algorithm.
type Schedule struct {
	// Blocks are the committed critical intervals in the order found
	// (descending speed).
	Blocks []Block
	// MaxSpeed is the speed of the first (most intense) block; a schedule
	// is feasible on a processor iff MaxSpeed ≤ smax.
	MaxSpeed float64
}

// Block is one critical interval: the named jobs run at Speed within
// [Start, End) of the original timeline. Because later blocks' intervals
// exclude earlier blocks' time, the block intervals of the final schedule
// may be non-contiguous unions; Pieces lists the concrete sub-intervals.
type Block struct {
	Speed  float64
	Pieces []speed.Segment // concrete sub-intervals, each carrying Speed
	JobIDs []int           // indices into the input job slice
}

// Energy returns the schedule's energy under the given power model
// (dynamic part only — YDS targets leakage-free ideal processors).
func (s Schedule) Energy(m power.Polynomial) float64 {
	var e float64
	for _, b := range s.Blocks {
		// One Pow per block, not per piece: every piece of a block runs at
		// the block speed, so the hoisted power is the identical float.
		pd := m.Dynamic(b.Speed)
		for _, p := range b.Pieces {
			e += pd * p.Duration()
		}
	}
	return e
}

// Profile flattens the schedule into a time-sorted speed profile.
// Collapse/expand arithmetic can leave ~1e-14 overlaps between adjacent
// pieces; those are snapped to the previous segment's end.
func (s Schedule) Profile() speed.Profile {
	var pr speed.Profile
	for _, b := range s.Blocks {
		pr = append(pr, b.Pieces...)
	}
	sort.Slice(pr, func(i, j int) bool { return pr[i].Start < pr[j].Start })
	out := pr[:0]
	prevEnd := math.Inf(-1)
	for _, seg := range pr {
		if seg.Start < prevEnd {
			if prevEnd-seg.Start > 1e-7*(1+math.Abs(prevEnd)) {
				// A genuine overlap would be an algorithmic bug; keep it
				// so Validate flags it loudly.
				out = append(out, seg)
				prevEnd = seg.End
				continue
			}
			seg.Start = prevEnd
			if seg.End <= seg.Start {
				continue
			}
		}
		out = append(out, seg)
		prevEnd = seg.End
	}
	return out
}

// interval is a live stretch of the collapsed timeline.
type interval struct{ start, end float64 }

// job is the mutable working copy.
type job struct {
	id       int
	release  float64
	deadline float64
	work     float64
}

// Compute runs the algorithm on the jobs. Jobs must be valid per
// edf.Job.Validate. An empty input yields an empty schedule.
func Compute(jobs []edf.Job) (Schedule, error) {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Schedule{}, err
		}
	}
	live := make([]job, 0, len(jobs))
	for i, j := range jobs {
		live = append(live, job{id: i, release: j.Release, deadline: j.Deadline, work: j.Cycles})
	}

	var out Schedule
	var holes []speed.Segment // committed intervals, each in the collapsed coordinates of its commit time
	for len(live) > 0 {
		s, t, members, g := criticalInterval(live)
		if !(g > 0) {
			return Schedule{}, fmt.Errorf("yds: no positive-intensity interval over %d jobs", len(live))
		}
		b := Block{Speed: g}
		memberSet := make(map[int]bool, len(members))
		for _, mi := range members {
			b.JobIDs = append(b.JobIDs, live[mi].id)
			memberSet[mi] = true
		}
		sort.Ints(b.JobIDs)
		holes = append(holes, speed.Segment{Start: s, End: t, Speed: g})
		out.Blocks = append(out.Blocks, b)

		// Remove members; collapse [s, t) out of the survivors' windows.
		next := live[:0]
		width := t - s
		for i := range live {
			if memberSet[i] {
				continue
			}
			j := live[i]
			j.release = collapse(j.release, s, t, width)
			j.deadline = collapse(j.deadline, s, t, width)
			next = append(next, j)
		}
		live = next
	}

	// Un-collapse: block k's interval lives on the timeline with holes
	// 0..k−1 removed. Re-insert those holes in reverse, splitting pieces
	// that straddle a re-inserted hole.
	for bi := range out.Blocks {
		pieces := []speed.Segment{holes[bi]}
		for prev := bi - 1; prev >= 0; prev-- {
			pieces = insertHole(pieces, holes[prev])
		}
		out.Blocks[bi].Pieces = pieces
	}

	if len(out.Blocks) > 0 {
		out.MaxSpeed = out.Blocks[0].Speed
	}
	return out, nil
}

// collapse maps a time coordinate across the removal of [s, t).
func collapse(x, s, t, width float64) float64 {
	switch {
	case x <= s:
		return x
	case x >= t:
		return x - width
	default:
		return s
	}
}

// insertHole maps pieces from a timeline with hole [h.Start, h.End)
// removed back to the timeline containing it: coordinates at or beyond
// h.Start shift right by the hole's width, and a piece straddling the
// insertion point splits into the parts before and after the hole.
func insertHole(pieces []speed.Segment, h speed.Segment) []speed.Segment {
	w := h.End - h.Start
	out := make([]speed.Segment, 0, len(pieces)+1)
	for _, p := range pieces {
		switch {
		case p.End <= h.Start:
			out = append(out, p)
		case p.Start >= h.Start:
			p.Start += w
			p.End += w
			out = append(out, p)
		default: // straddles the insertion point
			out = append(out,
				speed.Segment{Start: p.Start, End: h.Start, Speed: p.Speed},
				speed.Segment{Start: h.End, End: p.End + w, Speed: p.Speed},
			)
		}
	}
	return out
}

// criticalInterval finds the maximum-intensity interval and returns its
// bounds, the member indices and the intensity.
//
// The seed code scanned every ordered pair of the 2n endpoint values. The
// scan here is restricted to (release value, deadline value) pairs with
// duplicate values skipped, which is exactly output-preserving: for any
// candidate [x, y) with member set S, the interval [min release(S),
// max deadline(S)) ⊆ [x, y) carries the same work over a width that is no
// larger, so a pair that is not value-identical to a release×deadline pair
// is strictly dominated and can never set the maximum; and because the
// update below is strict (>), revisiting an already-seen value pair never
// changed the result, so deduplication drops only no-ops. Both scans visit
// distinct value pairs in (lo, hi) lexicographic order, so first-achiever
// tie-breaks between equal-intensity intervals are preserved too. The
// inner work sum stays in job input order — summation order is part of
// the float contract.
//
// Online-arrival job sets share their release times (every pending job is
// re-released "now"), so the deduplicated release axis collapses to a few
// values and the scan drops from O(n²)·O(n) to nearly O(n)·O(n) there.
func criticalInterval(live []job) (s, t float64, members []int, g float64) {
	rels := make([]float64, 0, len(live))
	dls := make([]float64, 0, len(live))
	for _, j := range live {
		rels = append(rels, j.release)
		dls = append(dls, j.deadline)
	}
	sort.Float64s(rels)
	sort.Float64s(dls)

	best := -1.0
	for a := 0; a < len(rels); a++ {
		lo := rels[a]
		if a > 0 && lo == rels[a-1] {
			continue
		}
		for b := 0; b < len(dls); b++ {
			hi := dls[b]
			if b > 0 && hi == dls[b-1] {
				continue
			}
			if hi <= lo {
				continue
			}
			var work float64
			for _, j := range live {
				if j.release >= lo && j.deadline <= hi {
					work += j.work
				}
			}
			if work == 0 {
				continue
			}
			if inten := work / (hi - lo); inten > best {
				best = inten
				s, t = lo, hi
			}
		}
	}
	if best < 0 {
		return 0, 0, nil, 0
	}
	for i, j := range live {
		if j.release >= s && j.deadline <= t {
			members = append(members, i)
		}
	}
	return s, t, members, best
}

// EnergyCubic is a convenience for the canonical P(s) = s³ model:
// Σ speed³ · duration.
func (s Schedule) EnergyCubic() float64 {
	var e float64
	for _, b := range s.Blocks {
		pd := math.Pow(b.Speed, 3)
		for _, p := range b.Pieces {
			e += pd * p.Duration()
		}
	}
	return e
}
