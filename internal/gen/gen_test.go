package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Config
		wantErr bool
	}{
		{"defaults", Config{N: 10}, false},
		{"explicit", Config{N: 5, Deadline: 100, Load: 1.5, SMax: 1, PenaltyScale: 2}, false},
		{"zero n", Config{N: 0}, true},
		{"negative load", Config{N: 5, Load: -1}, true},
		{"negative deadline", Config{N: 5, Deadline: -1}, true},
		{"negative smax", Config{N: 5, SMax: -1}, true},
		{"negative penalty scale", Config{N: 5, PenaltyScale: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFrameDeterministic(t *testing.T) {
	c := Config{N: 20, Load: 1.5}
	a, err := Frame(rand.New(rand.NewSource(42)), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frame(rand.New(rand.NewSource(42)), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("same seed produced different tasks: %+v vs %+v", a.Tasks[i], b.Tasks[i])
		}
	}
	c2, err := Frame(rand.New(rand.NewSource(43)), c)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != c2.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestFrameHitsLoad(t *testing.T) {
	for _, load := range []float64{0.5, 1.0, 2.0, 3.0} {
		s, err := Frame(rand.New(rand.NewSource(7)), Config{N: 50, Load: load})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Load(1.0)
		if math.Abs(got-load)/load > 0.05 {
			t.Errorf("load = %v, want ≈ %v", got, load)
		}
	}
}

func TestFrameHeteroRho(t *testing.T) {
	s, err := Frame(rand.New(rand.NewSource(3)), Config{N: 30, HeteroRho: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range s.Tasks {
		if tk.Rho < 0.5 || tk.Rho > 2.0 {
			t.Errorf("rho = %v, want in [0.5, 2.0]", tk.Rho)
		}
	}
	// Without the flag, Rho stays zero (treated as 1).
	s, err = Frame(rand.New(rand.NewSource(3)), Config{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range s.Tasks {
		if tk.Rho != 0 {
			t.Errorf("rho = %v, want 0", tk.Rho)
		}
	}
}

func TestFramePenaltyModels(t *testing.T) {
	for _, m := range []PenaltyModel{PenaltyUniform, PenaltyProportional, PenaltyInverse} {
		s, err := Frame(rand.New(rand.NewSource(11)), Config{N: 40, Penalty: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, tk := range s.Tasks {
			if tk.Penalty < 0 || math.IsNaN(tk.Penalty) {
				t.Errorf("%v: penalty = %v", m, tk.Penalty)
			}
		}
	}
	if _, err := Frame(rand.New(rand.NewSource(1)), Config{N: 4, Penalty: PenaltyModel(99)}); err == nil {
		t.Error("unknown penalty model accepted")
	}
}

func TestPenaltyCorrelations(t *testing.T) {
	// Proportional: larger tasks must tend to have larger penalties;
	// inverse: the opposite. Check via rank correlation sign on a big set.
	corr := func(m PenaltyModel) float64 {
		s, err := Frame(rand.New(rand.NewSource(5)), Config{N: 200, Penalty: m})
		if err != nil {
			t.Fatal(err)
		}
		var num float64
		for i, a := range s.Tasks {
			for _, b := range s.Tasks[i+1:] {
				dc := float64(a.Cycles - b.Cycles)
				dv := a.Penalty - b.Penalty
				if dc*dv > 0 {
					num++
				} else if dc*dv < 0 {
					num--
				}
			}
		}
		return num
	}
	if corr(PenaltyProportional) <= 0 {
		t.Error("proportional penalties do not correlate positively with cycles")
	}
	if corr(PenaltyInverse) >= 0 {
		t.Error("inverse penalties do not correlate negatively with cycles")
	}
}

func TestPenaltyScaleScales(t *testing.T) {
	base, err := Frame(rand.New(rand.NewSource(9)), Config{N: 10, PenaltyScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Frame(rand.New(rand.NewSource(9)), Config{N: 10, PenaltyScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Tasks {
		if math.Abs(scaled.Tasks[i].Penalty-4*base.Tasks[i].Penalty) > 1e-9 {
			t.Fatalf("penalty scale broken: %v vs %v", scaled.Tasks[i].Penalty, base.Tasks[i].Penalty)
		}
	}
}

func TestUUniFast(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 5, 20} {
		for _, total := range []float64{0.5, 1.0, 2.5} {
			u := UUniFast(rng, n, total)
			if len(u) != n {
				t.Fatalf("len = %d, want %d", len(u), n)
			}
			var sum float64
			for _, x := range u {
				if x < 0 {
					t.Errorf("negative utilization %v", x)
				}
				sum += x
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Errorf("sum = %v, want %v", sum, total)
			}
		}
	}
	if got := UUniFast(rng, 0, 1); len(got) != 0 {
		t.Errorf("UUniFast(0) = %v, want empty", got)
	}
}

func TestPeriodic(t *testing.T) {
	ps, err := Periodic(rand.New(rand.NewSource(21)), PeriodicConfig{N: 25, Utilization: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Tasks) != 25 {
		t.Fatalf("len = %d, want 25", len(ps.Tasks))
	}
	// Rounding cycles to integers distorts utilization only slightly at
	// this period resolution; allow 2%.
	if got := ps.Utilization(); math.Abs(got-1.4)/1.4 > 0.02 {
		t.Errorf("utilization = %v, want ≈ 1.4", got)
	}
	// Hyper-period must stay bounded by the menu design (all divide 72000).
	l, err := ps.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || l > 72000 {
		t.Errorf("hyperperiod = %d, want ≤ 72000", l)
	}
}

func TestPeriodicErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Periodic(rng, PeriodicConfig{N: 0, Utilization: 1}); err == nil {
		t.Error("N = 0 accepted")
	}
	if _, err := Periodic(rng, PeriodicConfig{N: 5, Utilization: 0}); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := Periodic(rng, PeriodicConfig{N: 5, Utilization: 1, Penalty: PenaltyModel(99)}); err == nil {
		t.Error("unknown penalty model accepted")
	}
}

// Property: every generated frame instance validates and has N tasks.
func TestQuickFrameAlwaysValid(t *testing.T) {
	f := func(seed int64, n, load uint8) bool {
		c := Config{
			N:    1 + int(n%64),
			Load: 0.2 + float64(load%30)/10,
		}
		s, err := Frame(rand.New(rand.NewSource(seed)), c)
		return err == nil && s.Validate() == nil && len(s.Tasks) == c.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: UUniFast marginals stay within [0, total].
func TestQuickUUniFastRange(t *testing.T) {
	f := func(seed int64, n uint8, tot uint8) bool {
		total := 0.1 + float64(tot%40)/10
		u := UUniFast(rand.New(rand.NewSource(seed)), 1+int(n%32), total)
		for _, x := range u {
			if x < -1e-12 || x > total+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPenaltyModelString(t *testing.T) {
	if PenaltyUniform.String() != "uniform" || PenaltyProportional.String() != "proportional" ||
		PenaltyInverse.String() != "inverse" {
		t.Error("PenaltyModel.String() names wrong")
	}
	if PenaltyModel(9).String() != "PenaltyModel(9)" {
		t.Errorf("unknown model String() = %q", PenaltyModel(9).String())
	}
}

func TestBigLittle(t *testing.T) {
	procs, err := BigLittle(BigLittleConfig{NBig: 2, NLittle: 3, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 5 {
		t.Fatalf("got %d processors, want 5", len(procs))
	}
	for i, p := range procs {
		if err := p.Validate(); err != nil {
			t.Errorf("processor %d: %v", i, err)
		}
		want := 1.0
		if i >= 2 {
			want = 0.25
		}
		if p.SMax != want {
			t.Errorf("processor %d: SMax %g, want %g", i, p.SMax, want)
		}
	}
	if _, err := BigLittle(BigLittleConfig{Ratio: 0.5}); err == nil {
		t.Error("sub-unit speed ratio not rejected")
	}
	// Defaults: one of each at ratio 2.
	procs, err = BigLittle(BigLittleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[1].SMax != 0.5 {
		t.Errorf("defaults gave %d procs, little SMax %g", len(procs), procs[1].SMax)
	}
}
