// Package gen produces the synthetic workloads the experiment suite runs
// on. Generators are deterministic given a seed, so every table in
// EXPERIMENTS.md is reproducible bit-for-bit.
//
// The setups mirror the paper family's evaluations: execution cycles drawn
// uniformly (or log-uniformly) and scaled to hit a target system load,
// rejection penalties drawn under three structural models (uniform,
// proportional to the task's energy footprint, inverse to it), per-task
// power exponents drawn from [2.5, 3] for the heterogeneous experiments,
// and UUniFast for periodic utilizations.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"dvsreject/internal/task"
)

// PenaltyModel selects how rejection penalties relate to task sizes.
type PenaltyModel int

const (
	// PenaltyUniform draws penalties independently of task size.
	PenaltyUniform PenaltyModel = iota
	// PenaltyProportional makes large tasks expensive to reject
	// (penalty ∝ cycles, with ±50% jitter).
	PenaltyProportional
	// PenaltyInverse makes large tasks cheap to reject
	// (penalty ∝ 1/cycles, with ±50% jitter) — the adversarial case for
	// greedy heuristics.
	PenaltyInverse
)

// String implements fmt.Stringer.
func (m PenaltyModel) String() string {
	switch m {
	case PenaltyUniform:
		return "uniform"
	case PenaltyProportional:
		return "proportional"
	case PenaltyInverse:
		return "inverse"
	default:
		return fmt.Sprintf("PenaltyModel(%d)", int(m))
	}
}

// Config describes one random frame-based instance family.
type Config struct {
	N        int          // number of tasks, > 0
	Deadline float64      // frame length, > 0 (default 1000)
	Load     float64      // target Σci/(smax·D), > 0 (default 1.0)
	SMax     float64      // top speed (default 1.0)
	Penalty  PenaltyModel // penalty structure
	// PenaltyScale multiplies every penalty. 1.0 calibrates the mean
	// penalty to the mean per-task energy of running the whole set at
	// speed Load (so accept/reject decisions are genuinely contested).
	PenaltyScale float64
	// HeteroRho, when true, draws per-task power coefficients from
	// [0.5, 2.0] (heterogeneous power characteristics).
	HeteroRho bool
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Deadline == 0 {
		c.Deadline = 1000
	}
	if c.Load == 0 {
		c.Load = 1.0
	}
	if c.SMax == 0 {
		c.SMax = 1.0
	}
	if c.PenaltyScale == 0 {
		c.PenaltyScale = 1.0
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.N <= 0:
		return fmt.Errorf("gen: N = %d, want > 0", c.N)
	case c.Deadline <= 0 || math.IsNaN(c.Deadline):
		return fmt.Errorf("gen: Deadline = %v, want > 0", c.Deadline)
	case c.Load <= 0 || math.IsNaN(c.Load):
		return fmt.Errorf("gen: Load = %v, want > 0", c.Load)
	case c.SMax <= 0 || math.IsNaN(c.SMax):
		return fmt.Errorf("gen: SMax = %v, want > 0", c.SMax)
	case c.PenaltyScale <= 0 || math.IsNaN(c.PenaltyScale):
		return fmt.Errorf("gen: PenaltyScale = %v, want > 0", c.PenaltyScale)
	}
	return nil
}

// Frame draws one frame-based instance from the family. The task cycles are
// drawn uniformly from [1, 2·mean] and then rescaled so the realized load
// matches Config.Load exactly (up to integer rounding).
func Frame(rng *rand.Rand, c Config) (task.Set, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return task.Set{}, err
	}

	targetTotal := c.Load * c.SMax * c.Deadline
	raw := make([]float64, c.N)
	var rawSum float64
	for i := range raw {
		raw[i] = rng.Float64() + 0.0001 // avoid zero-size tasks
		rawSum += raw[i]
	}

	s := task.Set{Deadline: c.Deadline, Tasks: make([]task.Task, 0, c.N)}
	for i, r := range raw {
		cycles := int64(math.Max(1, math.Round(r/rawSum*targetTotal)))
		t := task.Task{ID: i, Cycles: cycles}
		if c.HeteroRho {
			t.Rho = 0.5 + 1.5*rng.Float64()
		}
		s.Tasks = append(s.Tasks, t)
	}

	// Calibrate penalties to the energy scale: a task of size ci running as
	// part of the whole set at speed `Load·smax` contributes roughly
	// ci·(Load·smax)² (cubic model) of energy. Using this as the unit makes
	// PenaltyScale ≈ 1 the contested regime.
	unit := math.Pow(c.Load*c.SMax, 2)
	for i := range s.Tasks {
		var v float64
		ci := float64(s.Tasks[i].Cycles)
		switch c.Penalty {
		case PenaltyUniform:
			mean := targetTotal / float64(c.N)
			v = rng.Float64() * 2 * mean * unit
		case PenaltyProportional:
			v = ci * unit * (0.5 + rng.Float64())
		case PenaltyInverse:
			mean := targetTotal / float64(c.N)
			v = mean * mean / ci * unit * (0.5 + rng.Float64())
		default:
			return task.Set{}, fmt.Errorf("gen: unknown penalty model %d", int(c.Penalty))
		}
		s.Tasks[i].Penalty = v * c.PenaltyScale
	}
	if err := s.Validate(); err != nil {
		return task.Set{}, fmt.Errorf("gen: generated invalid set: %w", err)
	}
	return s, nil
}

// SparseConfig describes the sparse-regime frame family: a modest number
// of tasks with large, pairwise-coprime cycle counts. The DP grid width
// is smax·Deadline cycles — with the defaults, beyond the dense kernel's
// state budget from n ≈ 16 on — while pairwise-coprime cycles keep
// accepted-workload subset sums from colliding, so the sparse
// dominance-pruned rows stay tiny where the dense grid would not even be
// admitted.
type SparseConfig struct {
	N        int     // number of tasks, > 0 (modest: tens, not thousands)
	Deadline float64 // frame length, > 0 (default 2^24)
	Load     float64 // target Σci/(smax·D), > 0 (default 1.2, forcing rejection)
	SMax     float64 // top speed (default 1.0)
	Penalty  PenaltyModel
	// PenaltyScale multiplies every penalty (default 1; see Config).
	PenaltyScale float64
}

// withDefaults fills zero fields with the documented defaults.
func (c SparseConfig) withDefaults() SparseConfig {
	if c.Deadline == 0 {
		c.Deadline = 1 << 24
	}
	if c.Load == 0 {
		c.Load = 1.2
	}
	if c.SMax == 0 {
		c.SMax = 1.0
	}
	if c.PenaltyScale == 0 {
		c.PenaltyScale = 1.0
	}
	return c
}

// gcd64 is the Euclidean greatest common divisor.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Sparse draws one sparse-regime instance: cycles uniform in
// [0.5, 1.5]·mean, then nudged upward until pairwise coprime with every
// earlier task (coprime pairs are dense among large integers, so the walk
// is a handful of steps). Penalties use the same energy-unit calibration
// as Frame, keeping accept/reject decisions contested.
func Sparse(rng *rand.Rand, c SparseConfig) (task.Set, error) {
	c = c.withDefaults()
	if err := (Config{N: c.N, Deadline: c.Deadline, Load: c.Load, SMax: c.SMax,
		PenaltyScale: c.PenaltyScale}).Validate(); err != nil {
		return task.Set{}, err
	}

	targetTotal := c.Load * c.SMax * c.Deadline
	mean := targetTotal / float64(c.N)
	s := task.Set{Deadline: c.Deadline, Tasks: make([]task.Task, 0, c.N)}
	for i := 0; i < c.N; i++ {
		cycles := int64(math.Max(1, math.Round(mean*(0.5+rng.Float64()))))
	adjust:
		for {
			for _, prev := range s.Tasks {
				if gcd64(cycles, prev.Cycles) != 1 {
					cycles++
					continue adjust
				}
			}
			break
		}
		s.Tasks = append(s.Tasks, task.Task{ID: i, Cycles: cycles})
	}

	unit := math.Pow(c.Load*c.SMax, 2)
	for i := range s.Tasks {
		var v float64
		ci := float64(s.Tasks[i].Cycles)
		switch c.Penalty {
		case PenaltyUniform:
			v = rng.Float64() * 2 * mean * unit
		case PenaltyProportional:
			v = ci * unit * (0.5 + rng.Float64())
		case PenaltyInverse:
			v = mean * mean / ci * unit * (0.5 + rng.Float64())
		default:
			return task.Set{}, fmt.Errorf("gen: unknown penalty model %d", int(c.Penalty))
		}
		s.Tasks[i].Penalty = v * c.PenaltyScale
	}
	if err := s.Validate(); err != nil {
		return task.Set{}, fmt.Errorf("gen: generated invalid set: %w", err)
	}
	return s, nil
}

// UUniFast draws n utilizations summing exactly to total, uniformly over
// the simplex (Bini & Buttazzo). total may exceed 1 for overloaded systems.
func UUniFast(rng *rand.Rand, n int, total float64) []float64 {
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		u[i] = sum - next
		sum = next
	}
	if n > 0 {
		u[n-1] = sum
	}
	return u
}

// PeriodicConfig describes one random periodic instance family.
type PeriodicConfig struct {
	N           int     // number of tasks, > 0
	Utilization float64 // target Σ ci/pi (may exceed 1), > 0
	Penalty     PenaltyModel
	// PenaltyScale multiplies every per-job penalty (default 1).
	PenaltyScale float64
}

// periodChoices keeps hyper-periods small (all divide 72000) while leaving
// enough cycle resolution that rounding utilizations to integer cycles
// barely distorts them.
var periodChoices = []int64{1000, 2000, 3000, 4000, 6000, 9000, 12000, 18000, 24000, 36000}

// Periodic draws one periodic instance with UUniFast utilizations over a
// harmonic-friendly period menu.
func Periodic(rng *rand.Rand, c PeriodicConfig) (task.PeriodicSet, error) {
	if c.N <= 0 {
		return task.PeriodicSet{}, fmt.Errorf("gen: N = %d, want > 0", c.N)
	}
	if c.Utilization <= 0 || math.IsNaN(c.Utilization) {
		return task.PeriodicSet{}, fmt.Errorf("gen: Utilization = %v, want > 0", c.Utilization)
	}
	if c.PenaltyScale == 0 {
		c.PenaltyScale = 1
	}
	if c.PenaltyScale < 0 || math.IsNaN(c.PenaltyScale) {
		return task.PeriodicSet{}, fmt.Errorf("gen: PenaltyScale = %v, want > 0", c.PenaltyScale)
	}

	utils := UUniFast(rng, c.N, c.Utilization)
	ps := task.PeriodicSet{Tasks: make([]task.Periodic, 0, c.N)}
	// Calibrate per-job penalties to the marginal energy scale: running at
	// speed U on the cubic model, one extra cycle costs ≈ 3U² energy, so a
	// job of ci cycles is "contested" when its penalty is around 3U²·ci.
	unit := 3 * c.Utilization * c.Utilization
	meanU := c.Utilization / float64(c.N)
	for i, u := range utils {
		p := periodChoices[rng.Intn(len(periodChoices))]
		cycles := int64(math.Max(1, math.Round(u*float64(p))))
		t := task.Periodic{ID: i, Cycles: cycles, Period: p}
		ci := float64(cycles)
		switch c.Penalty {
		case PenaltyUniform:
			t.Penalty = rng.Float64() * 2 * ci * unit
		case PenaltyProportional:
			t.Penalty = ci * unit * (0.5 + rng.Float64())
		case PenaltyInverse:
			meanCi := meanU * float64(p)
			t.Penalty = meanCi * meanCi / ci * unit * (0.5 + rng.Float64())
		default:
			return task.PeriodicSet{}, fmt.Errorf("gen: unknown penalty model %d", int(c.Penalty))
		}
		t.Penalty *= c.PenaltyScale
		ps.Tasks = append(ps.Tasks, t)
	}
	if err := ps.Validate(); err != nil {
		return task.PeriodicSet{}, fmt.Errorf("gen: generated invalid periodic set: %w", err)
	}
	return ps, nil
}
