package gen

import (
	"fmt"

	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

// BigLittleConfig describes a two-type heterogeneous processor vector:
// NBig fast cores at SMax 1 and NLittle slow cores at SMax 1/Ratio, all
// sharing one power model. It mirrors the big.LITTLE platforms the
// heterogeneous experiments sweep.
type BigLittleConfig struct {
	// NBig is the fast-core count; 0 means 1.
	NBig int
	// NLittle is the slow-core count; 0 means 1.
	NLittle int
	// Ratio is the big:little maximum-speed ratio; 0 means 2. Ratio 1
	// degenerates to an identical-processor vector.
	Ratio float64
	// XScale selects the XScale-calibrated polynomial instead of the ideal
	// cubic.
	XScale bool
}

func (c BigLittleConfig) withDefaults() BigLittleConfig {
	if c.NBig <= 0 {
		c.NBig = 1
	}
	if c.NLittle <= 0 {
		c.NLittle = 1
	}
	if c.Ratio == 0 {
		c.Ratio = 2
	}
	return c
}

// BigLittle builds the processor vector of a BigLittleConfig: big cores
// first, then little ones, deterministically (no randomness — the vector
// is a platform description, not a draw).
func BigLittle(c BigLittleConfig) ([]speed.Proc, error) {
	c = c.withDefaults()
	if c.Ratio < 1 {
		return nil, fmt.Errorf("gen: big.LITTLE speed ratio %g < 1", c.Ratio)
	}
	model := power.Cubic()
	if c.XScale {
		model = power.XScale()
	}
	procs := make([]speed.Proc, 0, c.NBig+c.NLittle)
	for i := 0; i < c.NBig; i++ {
		procs = append(procs, speed.Proc{Model: model, SMax: 1})
	}
	for i := 0; i < c.NLittle; i++ {
		procs = append(procs, speed.Proc{Model: model, SMax: 1 / c.Ratio})
	}
	return procs, nil
}
