package anytime

// This file holds the population-fitness kernel: the innermost loop of
// the anytime tier, which scores whole populations of packed accept
// bitmasks through the struct-of-arrays evaluation columns. Like the
// rejection-DP row kernel it owes its speed to branch-free select — the
// accept decision is applied with mask arithmetic instead of a branch per
// bit, so the loop pipelines regardless of genome entropy — and to
// writing no per-genome state beyond two output cells. It allocates
// nothing: all five slices are caller-owned scratch.

// EvaluateFitness scores a packed population against the evaluation
// columns. pop holds len(w) genomes of stride words each (genome g's bit
// i — task i accepted — lives at pop[g*stride + i/64] bit i%64); cycles
// and penalties are the instance-order columns from core.BatchEval. For
// each genome it writes the accepted workload in true cycles to w[g] and
// the accepted penalty sum to accPen[g], accumulated in column order.
// The caller turns these into costs as E(w) + (Σv − accPen).
//
// The kernel is pure and allocation-free; disjoint genome ranges may be
// scored concurrently.
func EvaluateFitness(cycles []int64, penalties []float64, pop []uint64, stride int, w []int64, accPen []float64) {
	n := len(cycles)
	for g := range w {
		words := pop[g*stride : g*stride+stride]
		var tw int64
		var pen float64
		i := 0
		for k, word := range words {
			lim := n - k*64
			if lim > 64 {
				lim = 64
			}
			if word == 0 {
				i += lim
				continue
			}
			for j := 0; j < lim; j++ {
				m := int64(word>>uint(j)) & 1
				tw += cycles[i] &^ (m - 1)
				pen += penalties[i] * float64(m)
				i++
			}
		}
		w[g] = tw
		accPen[g] = pen
	}
}

// genomeWords returns the packed word count for n tasks.
func genomeWords(n int) int { return (n + 63) / 64 }

func bitGet(g []uint64, i int) bool { return g[i>>6]>>(uint(i)&63)&1 != 0 }
func bitSet(g []uint64, i int)      { g[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(g []uint64, i int)    { g[i>>6] &^= 1 << (uint(i) & 63) }
func bitFlip(g []uint64, i int)     { g[i>>6] ^= 1 << (uint(i) & 63) }
