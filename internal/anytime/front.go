package anytime

import "sort"

// point is one archived (energy, penalty) trade-off and the genome that
// achieves it. cost = energy + penalty is kernel arithmetic — the final
// front is re-costed exactly through core.Evaluate before it is returned.
type point struct {
	energy  float64
	penalty float64
	cost    float64
	genome  []uint64
}

// archive is the streaming non-dominated store: points sorted by strictly
// ascending energy and, by the dominance invariant, strictly descending
// penalty. Inserts are dominance-filtered in O(log f + removed); when the
// budget overflows, the interior point with the smallest crowding area is
// dropped — never an endpoint and never the current cheapest point, so
// the incumbent best cost is monotone non-increasing for the archive's
// whole lifetime. Genome slabs of evicted points are recycled.
type archive struct {
	pts  []point
	max  int
	free [][]uint64
}

func newArchive(max int) *archive {
	if max < 4 {
		max = 4
	}
	return &archive{max: max}
}

// insert offers one (energy, penalty) point; the genome is copied.
// Reports whether the point entered the archive (it was not dominated).
func (a *archive) insert(energy, penalty, cost float64, genome []uint64) bool {
	i := sort.Search(len(a.pts), func(k int) bool { return a.pts[k].energy >= energy })
	if i > 0 && a.pts[i-1].penalty <= penalty {
		return false // dominated by a cheaper-energy point
	}
	if i < len(a.pts) && a.pts[i].energy == energy && a.pts[i].penalty <= penalty {
		return false // an equal-or-better point already holds this energy
	}
	// Remove the run of now-dominated points (energy ≥ new, penalty ≥ new).
	j := i
	for j < len(a.pts) && a.pts[j].penalty >= penalty {
		a.recycle(a.pts[j].genome)
		j++
	}
	np := point{energy: energy, penalty: penalty, cost: cost, genome: a.clone(genome)}
	if j > i {
		a.pts[i] = np
		a.pts = append(a.pts[:i+1], a.pts[j:]...)
	} else {
		a.pts = append(a.pts, point{})
		copy(a.pts[i+1:], a.pts[i:])
		a.pts[i] = np
	}
	if len(a.pts) > a.max {
		a.thin()
	}
	return true
}

// thin evicts the interior point with the smallest crowding area
// (e[i+1]−e[i−1])·(p[i−1]−p[i+1]), keeping both endpoints and the
// cheapest point. Ties break to the lowest index.
func (a *archive) thin() {
	minCost := 0
	for i := 1; i < len(a.pts); i++ {
		if a.pts[i].cost < a.pts[minCost].cost {
			minCost = i
		}
	}
	victim, best := -1, 0.0
	for i := 1; i < len(a.pts)-1; i++ {
		if i == minCost {
			continue
		}
		area := (a.pts[i+1].energy - a.pts[i-1].energy) * (a.pts[i-1].penalty - a.pts[i+1].penalty)
		if victim < 0 || area < best {
			victim, best = i, area
		}
	}
	if victim < 0 {
		return // max < 3 endpoints-plus-best degenerate case; keep them all
	}
	a.recycle(a.pts[victim].genome)
	a.pts = append(a.pts[:victim], a.pts[victim+1:]...)
}

func (a *archive) clone(g []uint64) []uint64 {
	if n := len(a.free); n > 0 {
		c := a.free[n-1]
		a.free = a.free[:n-1]
		if len(c) == len(g) {
			copy(c, g)
			return c
		}
	}
	c := make([]uint64, len(g))
	copy(c, g)
	return c
}

func (a *archive) recycle(g []uint64) { a.free = append(a.free, g) }
