package anytime_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dvsreject/internal/anytime"
	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

func frameInstance(t testing.TB, n int, load float64) core.Instance {
	t.Helper()
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{N: n, Load: load, Deadline: 1000})
	if err != nil {
		t.Fatalf("gen.Frame: %v", err)
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
}

func beyondWallInstance(t testing.TB) core.Instance {
	t.Helper()
	set, err := gen.Sparse(rand.New(rand.NewSource(42)), gen.SparseConfig{N: 40, Deadline: 1 << 26})
	if err != nil {
		t.Fatalf("gen.Sparse: %v", err)
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
}

func checkFront(t *testing.T, in core.Instance, res anytime.Result) {
	t.Helper()
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	foundBest := false
	for i, sol := range res.Front {
		if err := verify.CheckSolution(in, sol); err != nil {
			t.Fatalf("front[%d] infeasible: %v", i, err)
		}
		if i > 0 {
			prev := res.Front[i-1]
			if !(sol.Energy > prev.Energy && sol.Penalty < prev.Penalty) {
				t.Fatalf("front not mutually non-dominated at %d: (%v,%v) after (%v,%v)",
					i, sol.Energy, sol.Penalty, prev.Energy, prev.Penalty)
			}
		}
		if sol.Cost < res.Best.Cost {
			t.Fatalf("front[%d] cost %v beats Best %v", i, sol.Cost, res.Best.Cost)
		}
		if sol.Cost == res.Best.Cost && sol.Energy == res.Best.Energy {
			foundBest = true
		}
	}
	if !foundBest {
		t.Fatal("Best is not an element of Front")
	}
	if !math.IsNaN(res.LowerBound) && res.Best.Cost < res.LowerBound*(1-1e-9) {
		t.Fatalf("Best %v below certified lower bound %v", res.Best.Cost, res.LowerBound)
	}
}

// TestWorkersDeterminism pins the documented contract: fixed seed and
// generation count give bit-identical results for any worker count.
func TestWorkersDeterminism(t *testing.T) {
	for _, n := range []int{12, 100, 1000} {
		in := frameInstance(t, n, 1.5)
		base, err := anytime.Solver{Seed: 7, Workers: 1}.SolveUntil(context.Background(), in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, w := range []int{4, 8} {
			res, err := anytime.Solver{Seed: 7, Workers: w}.SolveUntil(context.Background(), in)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if res.Generations != base.Generations {
				t.Fatalf("n=%d workers=%d: %d generations vs %d", n, w, res.Generations, base.Generations)
			}
			if len(res.Front) != len(base.Front) {
				t.Fatalf("n=%d workers=%d: front size %d vs %d", n, w, len(res.Front), len(base.Front))
			}
			if err := verify.BitIdenticalSolutions(res.Best, base.Best); err != nil {
				t.Fatalf("n=%d workers=%d: best differs: %v", n, w, err)
			}
			for i := range res.Front {
				if err := verify.BitIdenticalSolutions(res.Front[i], base.Front[i]); err != nil {
					t.Fatalf("n=%d workers=%d: front[%d] differs: %v", n, w, i, err)
				}
			}
		}
	}
}

// TestFrontQuality: the deterministic registry configuration must reach
// ≥99% of the exact DP cost on the benchmark instance, and the 10 ms
// budget mode must do the same.
func TestFrontQuality(t *testing.T) {
	in := frameInstance(t, 1000, 1.5)
	dp, err := core.DP{}.Solve(in)
	if err != nil {
		t.Fatalf("DP: %v", err)
	}
	res, err := anytime.Solver{Seed: 1}.SolveUntil(context.Background(), in)
	if err != nil {
		t.Fatalf("anytime: %v", err)
	}
	checkFront(t, in, res)
	if res.Best.Cost > dp.Cost*1.01 {
		t.Fatalf("fixed-generation quality %.4f%% below 99%%: anytime %v vs DP %v",
			100*dp.Cost/res.Best.Cost, res.Best.Cost, dp.Cost)
	}
	budget, err := anytime.Solver{Seed: 1, Budget: 10 * time.Millisecond}.SolveUntil(context.Background(), in)
	if err != nil {
		t.Fatalf("anytime 10ms: %v", err)
	}
	checkFront(t, in, budget)
	if budget.Best.Cost > dp.Cost*1.01 {
		t.Fatalf("10ms quality %.4f%% below 99%%: anytime %v vs DP %v",
			100*dp.Cost/budget.Best.Cost, budget.Best.Cost, dp.Cost)
	}
}

// TestSeedBattery runs the canonical seed instances: front validity,
// never-worse-than-S-GREEDY, and the lower bound actually bounding.
func TestSeedBattery(t *testing.T) {
	for _, s := range verify.SeedInstances() {
		res, err := anytime.Solver{Seed: 1}.SolveUntil(context.Background(), s.In)
		if errors.Is(err, core.ErrHeterogeneous) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		checkFront(t, s.In, res)
		if sg, err := (core.GreedyMarginal{}).Solve(s.In); err == nil {
			if res.Best.Cost > sg.Cost*(1+1e-6) {
				t.Fatalf("%s: anytime %v worse than S-GREEDY %v", s.Name, res.Best.Cost, sg.Cost)
			}
		}
		if dp, err := (core.DP{}).Solve(s.In); err == nil {
			if !math.IsNaN(res.LowerBound) && res.LowerBound > dp.Cost*(1+1e-9) {
				t.Fatalf("%s: lower bound %v exceeds optimum %v", s.Name, res.LowerBound, dp.Cost)
			}
			if res.Best.Cost < dp.Cost*(1-1e-9) {
				t.Fatalf("%s: anytime %v below optimum %v", s.Name, res.Best.Cost, dp.Cost)
			}
		}
	}
}

// TestBeyondWall: where dense DP refuses on states, the anytime tier must
// return a feasible front point with a finite reported gap bound.
func TestBeyondWall(t *testing.T) {
	in := beyondWallInstance(t)
	if _, err := (core.DP{Sparse: core.SparseOff}).Solve(in); !errors.Is(err, core.ErrStateBudget) {
		t.Fatalf("dense DP past the wall: want ErrStateBudget, got %v", err)
	}
	res, err := anytime.Solver{Seed: 1, Budget: 10 * time.Millisecond}.SolveUntil(context.Background(), in)
	if err != nil {
		t.Fatalf("anytime: %v", err)
	}
	checkFront(t, in, res)
	if math.IsNaN(res.Gap) || res.Gap > 0.05 {
		t.Fatalf("beyond-wall gap bound %v (lower bound %v, best %v)", res.Gap, res.LowerBound, res.Best.Cost)
	}
	// The sparse exact solver still works here — use it to check the gap
	// bound is honest: true suboptimality must be within the reported gap.
	exact, err := (core.DP{Sparse: core.SparseOn}).Solve(in)
	if err != nil {
		t.Fatalf("sparse DP: %v", err)
	}
	if res.Best.Cost > exact.Cost/(1-res.Gap)*(1+1e-9) {
		t.Fatalf("true quality worse than reported gap: best %v, exact %v, gap %v",
			res.Best.Cost, exact.Cost, res.Gap)
	}
}

// TestExpiredBudget: even a pre-expired deadline returns a feasible
// answer — one full evaluation pass always completes.
func TestExpiredBudget(t *testing.T) {
	in := frameInstance(t, 200, 1.5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := anytime.Solver{Seed: 1}.SolveUntil(ctx, in)
	if err != nil {
		t.Fatalf("expired budget: %v", err)
	}
	checkFront(t, in, res)
	if res.Generations != 1 {
		t.Fatalf("expired budget ran %d generations, want exactly 1", res.Generations)
	}
}

// TestRegistry: "ANYTIME" resolves through core.NewSolver and matches a
// direct zero-budget solve bit for bit.
func TestRegistry(t *testing.T) {
	s, err := core.NewSolver("ANYTIME", core.SolverSpec{Seed: 5, Workers: 3})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	in := frameInstance(t, 64, 1.5)
	got, err := s.Solve(in)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	want, err := anytime.Solver{Seed: 5, Workers: 3}.Solve(in)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if err := verify.BitIdenticalSolutions(got, want); err != nil {
		t.Fatalf("registry vs direct: %v", err)
	}
}

// TestHeterogeneousRefused: per-task power coefficients invalidate the
// total-workload fitness model; the solver must say so, not guess.
func TestHeterogeneousRefused(t *testing.T) {
	in := core.Instance{
		Tasks: task.Set{
			Tasks:    []task.Task{{ID: 1, Cycles: 10, Penalty: 1, Rho: 2}, {ID: 2, Cycles: 5, Penalty: 1}},
			Deadline: 100,
		},
		Proc: speed.Proc{Model: power.Cubic(), SMax: 1},
	}
	if _, err := (anytime.Solver{}).Solve(in); !errors.Is(err, core.ErrHeterogeneous) {
		t.Fatalf("want ErrHeterogeneous, got %v", err)
	}
}

// TestEmptyInstance: the degenerate zero-task solve returns the idle
// frame as a one-point front.
func TestEmptyInstance(t *testing.T) {
	in := core.Instance{Tasks: task.Set{Deadline: 100}, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}
	res, err := anytime.Solver{}.SolveUntil(context.Background(), in)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if len(res.Front) != 1 || res.Best.Cost != res.Front[0].Cost {
		t.Fatalf("empty instance front: %+v", res)
	}
}

// TestFitnessKernelAllocs pins the 0 allocs/op steady-state contract of
// the population kernel.
func TestFitnessKernelAllocs(t *testing.T) {
	in := frameInstance(t, 1024, 1.5)
	be, err := core.NewBatchEval(in)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Release()
	colC, colV := be.Columns()
	const genomes = 64
	stride := (be.Len() + 63) / 64
	pop := make([]uint64, genomes*stride)
	rng := rand.New(rand.NewSource(3))
	for i := range pop {
		pop[i] = rng.Uint64()
	}
	w := make([]int64, genomes)
	pen := make([]float64, genomes)
	if avg := testing.AllocsPerRun(100, func() {
		anytime.EvaluateFitness(colC, colV, pop, stride, w, pen)
	}); avg != 0 {
		t.Fatalf("EvaluateFitness allocates %v per run, want 0", avg)
	}
}

// TestFitnessKernelValues cross-checks the kernel against the exact
// evaluator on random genomes.
func TestFitnessKernelValues(t *testing.T) {
	in := frameInstance(t, 130, 1.5) // straddles a word boundary
	be, err := core.NewBatchEval(in)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Release()
	colC, colV := be.Columns()
	n := be.Len()
	stride := (n + 63) / 64
	const genomes = 32
	pop := make([]uint64, genomes*stride)
	rng := rand.New(rand.NewSource(9))
	for i := range pop {
		pop[i] = rng.Uint64()
	}
	w := make([]int64, genomes)
	pen := make([]float64, genomes)
	anytime.EvaluateFitness(colC, colV, pop, stride, w, pen)
	for g := 0; g < genomes; g++ {
		var tw int64
		var tp float64
		for i := 0; i < n; i++ {
			if pop[g*stride+i/64]>>(uint(i)%64)&1 != 0 {
				tw += colC[i]
				tp += colV[i]
			}
		}
		if tw != w[g] {
			t.Fatalf("genome %d: workload %d, want %d", g, w[g], tw)
		}
		if tp != pen[g] {
			t.Fatalf("genome %d: penalty %v, want %v", g, pen[g], tp)
		}
	}
}

// TestCostLowerBound pins the bound against exact optima across the seed
// instances and state budgets.
func TestCostLowerBound(t *testing.T) {
	for _, s := range verify.SeedInstances() {
		dp, err := core.DP{}.Solve(s.In)
		if err != nil {
			continue
		}
		for _, states := range []int64{0, 1 << 10, 1 << 16} {
			lb, err := core.CostLowerBound(s.In, states)
			if err != nil {
				continue // documented scope limits (hetero, non-monotone, tiny budget)
			}
			if lb > dp.Cost*(1+1e-9) {
				t.Fatalf("%s states=%d: lower bound %v exceeds optimum %v", s.Name, states, lb, dp.Cost)
			}
		}
	}
}
