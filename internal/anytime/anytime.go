// Package anytime is the metaheuristic solver tier: an island-parallel
// genetic / large-neighborhood search over packed accept-bitmask genomes
// that streams an improving energy-vs-penalty Pareto front and can be
// stopped at any deadline. It exists for the regime the exact tiers
// refuse — grids past the dense and sparse capacity walls, or solves
// whose estimated cost exceeds a serve SLA — where it returns the best
// feasible front point found so far plus a certified optimality-gap bound
// from core.CostLowerBound.
//
// Fitness is evaluated through core.BatchEval's struct-of-arrays columns
// by the branch-free EvaluateFitness kernel, so population scoring is a
// performance feature of the existing evaluation machinery, not a
// parallel reimplementation of the cost model: every energy probe and
// every final Solution is bit-identical to what the in-package solvers
// would compute for the same accepted set.
//
// Determinism contract (documented alongside DP-SPARSE's): with Budget
// unset and a fixed Seed, results are bit-identical for any Workers
// value. Islands evolve between generation barriers with island-local
// RNGs; migration, archive merges and the early-optimality exit happen
// serially at the barriers in island order; the shared atomic incumbent
// is published concurrently but only read at barriers, after every
// publish of the generation has completed. Budget/deadline runs stop at a
// generation barrier chosen by wall time and are the documented
// exception: anytime by nature, reproducible only in the fixed-generation
// configuration (which is what the "ANYTIME" registry name uses).
package anytime

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"dvsreject/internal/conc"
	"dvsreject/internal/core"
)

// DefaultSGreedySeedMax is the largest instance the S-GREEDY incumbent is
// computed for as a population seed. Beyond it the O(n²) swap scan would
// eat a serve budget whole (≈10 ms at n = 1000), while the density greedy
// seed stays and is almost always as good.
const DefaultSGreedySeedMax = 512

// DefaultGenerations is the fixed-generation default used when neither a
// budget nor an explicit generation count is set — the deterministic
// registry configuration.
const DefaultGenerations = 64

// Solver is the anytime Pareto search. The zero value is usable and
// deterministic; see the package comment for the determinism contract.
type Solver struct {
	// Seed seeds the island RNGs; 0 means 1.
	Seed int64
	// Workers bounds the island fan-out on the conc pool; 0 means
	// GOMAXPROCS, 1 forces serial. Results are identical for any value.
	Workers int
	// Islands is the independent population count; 0 means 4.
	Islands int
	// Pop is the per-island population size; 0 means 64, minimum 4.
	Pop int
	// Generations bounds the generation count. 0 means DefaultGenerations
	// when no deadline applies, unlimited (deadline-terminated) otherwise.
	Generations int
	// Budget, when > 0, stops the search at the first generation barrier
	// past this wall-clock allowance (seeding and the lower bound are
	// inside the allowance). Budget runs are not reproducible.
	Budget time.Duration
	// MaxFront budgets the non-dominated archive; 0 means 48.
	MaxFront int
	// SGreedySeedMax overrides DefaultSGreedySeedMax; < 0 disables the
	// S-GREEDY seed entirely.
	SGreedySeedMax int
	// GapStates budgets the core.CostLowerBound grid; 0 means
	// core.DefaultLowerBoundStates, < 0 skips the bound (LowerBound and
	// Gap come back NaN).
	GapStates int64
	// MigrateEvery is the generation interval of the ring migration;
	// 0 means 8.
	MigrateEvery int
	// LocalMoves bounds the per-generation local-descent moves applied to
	// each island's best genome; 0 means 4, < 0 disables the descent.
	LocalMoves int
}

// Result is the outcome of one anytime solve.
type Result struct {
	// Best is the cheapest front point — the Solution Solve returns. It
	// is always an element of Front.
	Best core.Solution
	// Front is the streamed archive re-costed exactly: mutually
	// non-dominated (energy strictly ascending, penalty strictly
	// descending), every point feasible.
	Front []core.Solution
	// Generations counts the completed generation barriers.
	Generations int
	// LowerBound is the certified lower bound on the optimal cost from
	// core.CostLowerBound; NaN when unavailable (heterogeneous or
	// non-monotone energy instances, or GapStates < 0).
	LowerBound float64
	// Gap bounds the suboptimality: (Best.Cost − LowerBound)/Best.Cost,
	// clamped at 0; NaN when LowerBound is. Gap = 0 certifies optimality.
	Gap float64
}

// Name implements core.Solver.
func (s Solver) Name() string { return "ANYTIME" }

func init() {
	core.RegisterSolver("ANYTIME", func(spec core.SolverSpec) (core.Solver, error) {
		return Solver{Seed: spec.Seed, Workers: spec.Workers}, nil
	})
}

// Solve implements core.Solver, returning the best front point.
func (s Solver) Solve(in core.Instance) (core.Solution, error) {
	res, err := s.SolveUntil(context.Background(), in)
	return res.Best, err
}

// SolveUntil runs the search until the generation bound, the Budget, or
// ctx's deadline/cancellation — whichever stops it first. At least one
// full evaluation pass always completes, so a non-error result carries a
// feasible Best and a non-empty Front even under an expired budget.
func (s Solver) SolveUntil(ctx context.Context, in core.Instance) (Result, error) {
	deadline, hasDL := ctx.Deadline()
	if s.Budget > 0 {
		if bd := time.Now().Add(s.Budget); !hasDL || bd.Before(deadline) {
			deadline, hasDL = bd, true
		}
	}

	be, err := core.NewBatchEval(in)
	if err != nil {
		return Result{}, err
	}
	defer be.Release()
	if be.Hetero() {
		return Result{}, core.ErrHeterogeneous
	}

	e := newEnv(be, s)
	lb := math.NaN()
	if s.GapStates >= 0 {
		if v, lberr := core.CostLowerBound(in, s.GapStates); lberr == nil {
			lb = v
		}
	}

	arch := newArchive(s.MaxFront)
	res := Result{LowerBound: lb}
	if e.n == 0 {
		sol, err := be.Evaluate(nil)
		if err != nil {
			return Result{}, err
		}
		res.Best, res.Front = sol, []core.Solution{sol}
		res.Gap = gapOf(sol.Cost, lb)
		return res, nil
	}

	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	nIslands := s.Islands
	if nIslands <= 0 {
		nIslands = 4
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	migrate := s.MigrateEvery
	if migrate <= 0 {
		migrate = 8
	}
	isl := make([]*island, nIslands)
	seeds := e.seedGenomes(in, s)
	for i := range isl {
		isl[i] = newIsland(e, rand.New(rand.NewSource(seed+int64(i)*1000003)), seeds)
	}

	var inc incumbent
	inc.bits.Store(math.Float64bits(math.Inf(1)))

	gens := s.Generations
	if gens <= 0 {
		if hasDL {
			gens = math.MaxInt
		} else {
			gens = DefaultGenerations
		}
	}
	for gen := 0; gen < gens; gen++ {
		// The first generation runs unconditionally: it is what turns the
		// seeds into an evaluated, repaired, archived front.
		if gen > 0 {
			if ctx.Err() != nil {
				break
			}
			if hasDL && !time.Now().Before(deadline) {
				break
			}
		}
		conc.ForEach(len(isl), workers, func(i int) (struct{}, error) {
			isl[i].step(e, &inc)
			return struct{}{}, nil
		})
		// Barrier: every island's generation is complete. Merge the
		// evaluated generation into the archive and migrate in island
		// order — serial, so results do not depend on worker scheduling.
		for _, is := range isl {
			for g := 0; g < e.pop; g++ {
				arch.insert(is.en[g], e.totalPen-is.pen[g], is.cost[g], is.done[g*e.stride:(g+1)*e.stride])
			}
		}
		if nIslands > 1 && (gen+1)%migrate == 0 {
			for i, is := range isl {
				dst := isl[(i+1)%nIslands]
				copy(dst.cur[(e.pop-1)*e.stride:e.pop*e.stride], is.done[is.bestIdx*e.stride:(is.bestIdx+1)*e.stride])
			}
		}
		res.Generations++
		// Early optimality exit: the merged incumbent has met the
		// certified lower bound.
		if !math.IsNaN(lb) && inc.best() <= lb*(1+1e-9) {
			break
		}
	}

	res.Best, res.Front, err = e.extract(arch)
	if err != nil {
		return Result{}, err
	}
	res.Gap = gapOf(res.Best.Cost, lb)
	return res, nil
}

func gapOf(best, lb float64) float64 {
	if math.IsNaN(lb) {
		return math.NaN()
	}
	if best <= 0 {
		return 0
	}
	return math.Max(0, (best-lb)/best)
}

// incumbent is the shared atomic best cost, CAS-min over the float bit
// pattern (monotone for non-negative floats and +Inf) — the same pattern
// Exhaustive's prefix-parallel search uses. Islands publish concurrently
// during a generation; the solver reads it only at barriers.
type incumbent struct{ bits atomic.Uint64 }

func (inc *incumbent) publish(c float64) {
	nb := math.Float64bits(c)
	for {
		ob := inc.bits.Load()
		if math.Float64frombits(ob) <= c {
			return
		}
		if inc.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

func (inc *incumbent) best() float64 { return math.Float64frombits(inc.bits.Load()) }

// env is the read-only per-solve state shared by every island.
type env struct {
	be       *core.BatchEval
	n        int
	stride   int
	colC     []int64
	colV     []float64
	totalPen float64
	pop      int
	elite    int
	lsMoves  int
	// rejOrder lists column positions by ascending penalty per cycle —
	// the cheapest capacity to free first. Infeasible genomes are
	// repaired by clearing accepted bits in this order.
	rejOrder []int
}

func newEnv(be *core.BatchEval, s Solver) *env {
	colC, colV := be.Columns()
	e := &env{
		be:       be,
		n:        be.Len(),
		stride:   genomeWords(be.Len()),
		colC:     colC,
		colV:     colV,
		totalPen: be.TotalPenalty(),
		pop:      s.Pop,
		elite:    2,
		lsMoves:  s.LocalMoves,
	}
	if e.pop <= 0 {
		e.pop = 64
	}
	if e.pop < 4 {
		e.pop = 4
	}
	if e.lsMoves == 0 {
		e.lsMoves = 4
	}
	e.rejOrder = make([]int, e.n)
	for i := range e.rejOrder {
		e.rejOrder[i] = i
	}
	sort.SliceStable(e.rejOrder, func(a, b int) bool {
		pa, pb := e.rejOrder[a], e.rejOrder[b]
		// v/c ascending without the division: va·cb < vb·ca.
		return e.colV[pa]*float64(e.colC[pb]) < e.colV[pb]*float64(e.colC[pa])
	})
	return e
}

// seedGenomes builds the deterministic seed genomes every island starts
// from: the density greedy incumbent, the S-GREEDY incumbent on small
// instances, accept-all (repaired at first evaluation) and reject-all.
func (e *env) seedGenomes(in core.Instance, s Solver) [][]uint64 {
	idx := make(map[int]int, e.n)
	for i := 0; i < e.n; i++ {
		idx[e.be.ID(i)] = i
	}
	toGenome := func(sol core.Solution, err error) []uint64 {
		if err != nil {
			return nil
		}
		g := make([]uint64, e.stride)
		for _, id := range sol.Accepted {
			bitSet(g, idx[id])
		}
		return g
	}
	var seeds [][]uint64
	if g := toGenome(core.GreedyDensity{}.Solve(in)); g != nil {
		seeds = append(seeds, g)
	}
	sgMax := s.SGreedySeedMax
	if sgMax == 0 {
		sgMax = DefaultSGreedySeedMax
	}
	if sgMax > 0 && e.n <= sgMax {
		if g := toGenome(core.GreedyMarginal{}.Solve(in)); g != nil {
			seeds = append(seeds, g)
		}
	}
	all := make([]uint64, e.stride)
	for i := 0; i < e.n; i++ {
		bitSet(all, i)
	}
	seeds = append(seeds, all, make([]uint64, e.stride))
	return seeds
}

// island is one independent population. Between barriers it touches only
// its own state (and the publish-only incumbent), so islands are safe to
// step concurrently and the result is independent of worker scheduling.
type island struct {
	rng *rand.Rand
	// cur is the generation about to be evaluated; done is the previous
	// fully evaluated generation, whose w/pen/en/cost rows are what the
	// barrier merges into the archive.
	cur, done []uint64
	w         []int64
	pen       []float64 // accepted penalty per genome (kernel order)
	en        []float64 // E(w) per genome
	cost      []float64
	order     []int
	bestIdx   int
}

func newIsland(e *env, rng *rand.Rand, seeds [][]uint64) *island {
	is := &island{
		rng:  rng,
		cur:  make([]uint64, e.pop*e.stride),
		done: make([]uint64, e.pop*e.stride),
		w:    make([]int64, e.pop),
		pen:  make([]float64, e.pop),
		en:   make([]float64, e.pop),
		cost: make([]float64, e.pop),
	}
	is.order = make([]int, e.pop)
	// Tail bits past n stay zero so whole-word crossover never smuggles
	// phantom tasks around.
	tail := uint64(1)<<(uint(e.n)&63) - 1
	if e.n&63 == 0 {
		tail = ^uint64(0)
	}
	for g := 0; g < e.pop; g++ {
		dst := is.cur[g*e.stride : (g+1)*e.stride]
		if g < len(seeds) {
			copy(dst, seeds[g])
			continue
		}
		// Random genomes at five bit densities (1/8 … 7/8), one word per
		// 64 bits instead of a Bernoulli draw per bit — initialization is
		// inside the serve budget.
		for k := range dst {
			r := rng.Uint64()
			switch g % 5 {
			case 1:
				r &= rng.Uint64()
			case 2:
				r |= rng.Uint64()
			case 3:
				r &= rng.Uint64() & rng.Uint64()
			case 4:
				r |= rng.Uint64() | rng.Uint64()
			}
			dst[k] = r
		}
		dst[e.stride-1] &= tail
	}
	return is
}

// step evaluates, repairs, locally improves, and breeds one generation.
func (is *island) step(e *env, inc *incumbent) {
	EvaluateFitness(e.colC, e.colV, is.cur, e.stride, is.w, is.pen)
	for g := 0; g < e.pop; g++ {
		gen := is.cur[g*e.stride : (g+1)*e.stride]
		is.repair(e, gen, g)
		is.en[g] = e.be.Energy(float64(is.w[g]))
		is.cost[g] = is.en[g] + (e.totalPen - is.pen[g])
	}

	// Rank ascending by cost, ties by slot for determinism.
	for i := range is.order {
		is.order[i] = i
	}
	sort.Slice(is.order, func(a, b int) bool {
		oa, ob := is.order[a], is.order[b]
		if is.cost[oa] != is.cost[ob] {
			return is.cost[oa] < is.cost[ob]
		}
		return oa < ob
	})
	best := is.order[0]

	// Memetic descent on the island best: strict single-toggle moves.
	if e.lsMoves > 0 {
		if is.descend(e, best) {
			sort.Slice(is.order, func(a, b int) bool {
				oa, ob := is.order[a], is.order[b]
				if is.cost[oa] != is.cost[ob] {
					return is.cost[oa] < is.cost[ob]
				}
				return oa < ob
			})
			best = is.order[0]
		}
	}
	is.bestIdx = best
	inc.publish(is.cost[best])

	// Breed the next generation into done, then swap: after the swap,
	// done holds this evaluated generation (for the barrier merge) and
	// cur holds the offspring.
	next := is.done
	for s := 0; s < e.elite && s < e.pop; s++ {
		src := is.order[s]
		copy(next[s*e.stride:(s+1)*e.stride], is.cur[src*e.stride:(src+1)*e.stride])
	}
	for s := e.elite; s < e.pop; s++ {
		pa := is.tournament()
		pb := is.tournament()
		child := next[s*e.stride : (s+1)*e.stride]
		ga := is.cur[pa*e.stride : (pa+1)*e.stride]
		gb := is.cur[pb*e.stride : (pb+1)*e.stride]
		for k := range child {
			mask := is.rng.Uint64()
			child[k] = ga[k]&mask | gb[k]&^mask
		}
		for flips := 1 + is.rng.Intn(3); flips > 0; flips-- {
			bitFlip(child, is.rng.Intn(e.n))
		}
	}
	is.cur, is.done = next, is.cur
}

// repair clears accepted bits in rejection order (cheapest penalty per
// cycle first) until genome g fits the capacity, keeping w and pen
// incremental. Clearing everything always fits, so repair terminates.
func (is *island) repair(e *env, gen []uint64, g int) {
	if e.be.Fits(float64(is.w[g])) {
		return
	}
	for _, p := range e.rejOrder {
		if bitGet(gen, p) {
			bitClear(gen, p)
			is.w[g] -= e.colC[p]
			is.pen[g] -= e.colV[p]
			if e.be.Fits(float64(is.w[g])) {
				return
			}
		}
	}
}

// tournament picks the cheaper of two uniformly drawn slots (ties to the
// lower slot).
func (is *island) tournament() int {
	a := is.rng.Intn(len(is.cost))
	b := is.rng.Intn(len(is.cost))
	if is.cost[b] < is.cost[a] || (is.cost[b] == is.cost[a] && b < a) {
		return b
	}
	return a
}

// descend applies up to lsMoves strict best-improvement single toggles to
// genome slot g, updating its fitness rows in place. Each pass scans all
// n toggles through the closed-form energy probes; the scan order makes
// tie-breaks deterministic. Reports whether any move was applied.
func (is *island) descend(e *env, g int) bool {
	gen := is.cur[g*e.stride : (g+1)*e.stride]
	improved := false
	for move := 0; move < e.lsMoves; move++ {
		base := is.en[g]
		bestD, bestI := 0.0, -1
		for i := 0; i < e.n; i++ {
			var d float64
			if bitGet(gen, i) {
				d = e.be.Energy(float64(is.w[g]-e.colC[i])) - base + e.colV[i]
			} else {
				nw := float64(is.w[g] + e.colC[i])
				if !e.be.Fits(nw) {
					continue
				}
				d = e.be.Energy(nw) - base - e.colV[i]
			}
			if d < bestD {
				bestD, bestI = d, i
			}
		}
		if bestI < 0 {
			return improved
		}
		if bitGet(gen, bestI) {
			bitClear(gen, bestI)
			is.w[g] -= e.colC[bestI]
			is.pen[g] -= e.colV[bestI]
		} else {
			bitSet(gen, bestI)
			is.w[g] += e.colC[bestI]
			is.pen[g] += e.colV[bestI]
		}
		is.en[g] = e.be.Energy(float64(is.w[g]))
		is.cost[g] = is.en[g] + (e.totalPen - is.pen[g])
		improved = true
	}
	return improved
}

// extract re-costs the archived genomes exactly through core.Evaluate,
// re-filters dominance on the exact values, and picks the cheapest point
// as Best. The kernel costs steering the search may differ from the exact
// ones by summation-order ulps; the returned front never does.
func (e *env) extract(arch *archive) (core.Solution, []core.Solution, error) {
	ids := make([]int, 0, e.n)
	sols := make([]core.Solution, 0, len(arch.pts))
	for _, pt := range arch.pts {
		ids = ids[:0]
		for i := 0; i < e.n; i++ {
			if bitGet(pt.genome, i) {
				ids = append(ids, e.be.ID(i))
			}
		}
		sol, err := e.be.Evaluate(ids)
		if err != nil {
			return core.Solution{}, nil, err
		}
		sols = append(sols, sol)
	}
	// Exact dominance sweep: energy ascending, then penalty ascending, so
	// the first point of an energy run has the best penalty; keep the
	// strictly descending penalty frontier.
	sort.Slice(sols, func(a, b int) bool {
		if sols[a].Energy != sols[b].Energy {
			return sols[a].Energy < sols[b].Energy
		}
		return sols[a].Penalty < sols[b].Penalty
	})
	front := sols[:0]
	minPen := math.Inf(1)
	for _, sol := range sols {
		if sol.Penalty >= minPen {
			continue
		}
		minPen = sol.Penalty
		front = append(front, sol)
	}
	bi := 0
	for i, sol := range front {
		if sol.Cost < front[bi].Cost {
			bi = i
		}
	}
	return front[bi], front, nil
}
