// Fuzz target for the anytime Pareto tier: arbitrary instances are
// solved at a fuzzed generation budget and worker count, and the
// streamed-front contract is checked — every point feasible under EDF
// replay, mutual non-dominance, Best minimal and never below the
// certified lower bound, and bit-identical results across worker counts
// for the fixed-generation configuration.
package anytime_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dvsreject/internal/anytime"
	"dvsreject/internal/core"
	"dvsreject/internal/verify"
)

func checkAnytimeFuzz(gens, workers int) func(core.Instance) error {
	return func(in core.Instance) error {
		base, err := anytime.Solver{Seed: 1, Workers: 1, Generations: gens}.SolveUntil(context.Background(), in)
		if errors.Is(err, core.ErrHeterogeneous) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("solve (gens=%d): %w", gens, err)
		}
		if err := verify.CheckAnytimeResult(in, base); err != nil {
			return fmt.Errorf("gens=%d: %w", gens, err)
		}
		// The search seeds the S-GREEDY incumbent on every codec-sized
		// instance, so even a one-generation budget must not end worse.
		if sg, err := (core.GreedyMarginal{}).Solve(in); err == nil {
			if base.Best.Cost > sg.Cost*(1+1e-6)+1e-6 {
				return fmt.Errorf("gens=%d: best %v worse than S-GREEDY %v", gens, base.Best.Cost, sg.Cost)
			}
		}
		alt, err := anytime.Solver{Seed: 1, Workers: workers, Generations: gens}.SolveUntil(context.Background(), in)
		if err != nil {
			return fmt.Errorf("solve (gens=%d, workers=%d): %w", gens, workers, err)
		}
		if alt.Generations != base.Generations || len(alt.Front) != len(base.Front) {
			return fmt.Errorf("workers=%d: shape differs (gens %d vs %d, front %d vs %d)",
				workers, alt.Generations, base.Generations, len(alt.Front), len(base.Front))
		}
		if err := verify.BitIdenticalSolutions(alt.Best, base.Best); err != nil {
			return fmt.Errorf("workers=%d: best differs: %w", workers, err)
		}
		for i := range alt.Front {
			if err := verify.BitIdenticalSolutions(alt.Front[i], base.Front[i]); err != nil {
				return fmt.Errorf("workers=%d: front[%d] differs: %w", workers, i, err)
			}
		}
		return nil
	}
}

// FuzzAnytimeFront decodes arbitrary bytes into an instance and fuzzes
// the anytime tier across its budget axis (generation count) and worker
// counts, checking the Pareto-front contract on every combination.
func FuzzAnytimeFront(f *testing.F) {
	for _, s := range verify.SeedInstances() {
		if data, ok := verify.EncodeInstance(s.In); ok {
			f.Add(data, uint8(16), uint8(4))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, gens, workers uint8) {
		in, ok := verify.DecodeInstance(data)
		if !ok {
			t.Skip()
		}
		check := checkAnytimeFuzz(1+int(gens)%24, 1+int(workers)%8)
		if err := check(in); err != nil {
			small := verify.Shrink(in, func(c core.Instance) bool {
				return verify.SameFailure(check(c), err)
			})
			t.Fatalf("%v\n\nshrunk repro (%d tasks):\n%s",
				err, len(small.Tasks.Tasks), verify.GoTestCase("ShrunkRepro", small))
		}
	})
}
