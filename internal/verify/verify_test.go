package verify_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify"
)

// TestCheckInstanceCleanOnRandomInstances is the library's own smoke: the
// full oracle battery must pass on instances drawn from every flavour.
func TestCheckInstanceCleanOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	draws := 40
	if testing.Short() {
		draws = 10
	}
	for i := 0; i < draws; i++ {
		in, f, err := verify.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckInstance(in, verify.Options{}); err != nil {
			t.Errorf("draw %d (%s): %v", i, f.Name, err)
		}
	}
}

// TestCheckMetamorphicCleanOnRandomInstances holds the metamorphic
// relations on random instances.
func TestCheckMetamorphicCleanOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	draws := 30
	if testing.Short() {
		draws = 8
	}
	for i := 0; i < draws; i++ {
		in, f, err := verify.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckMetamorphic(in, verify.Options{}); err != nil {
			t.Errorf("draw %d (%s): %v", i, f.Name, err)
		}
	}
}

// TestCheckSolutionDetectsCorruption is the negative control: a tampered
// solution must trip the oracles.
func TestCheckSolutionDetectsCorruption(t *testing.T) {
	in := cubicInstance()
	sol, err := (core.DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckSolution(in, sol); err != nil {
		t.Fatalf("clean solution rejected: %v", err)
	}

	bad := sol
	bad.Energy += 1e-9
	bad.Cost = bad.Energy + bad.Penalty
	if verify.CheckSolution(in, bad) == nil {
		t.Error("tampered energy not detected")
	}

	bad = sol
	bad.Cost += 1e-9
	if verify.CheckSolution(in, bad) == nil {
		t.Error("broken cost identity not detected")
	}

	bad = sol
	bad.Accepted = append([]int{}, sol.Accepted...)
	bad.Accepted = append(bad.Accepted, 999)
	if verify.CheckSolution(in, bad) == nil {
		t.Error("unknown accepted ID not detected")
	}
}

// TestBitIdenticalSolutions covers the serve-layer identity helper.
func TestBitIdenticalSolutions(t *testing.T) {
	in := cubicInstance()
	a, err := (core.DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (core.DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.BitIdenticalSolutions(a, b); err != nil {
		t.Fatalf("repeated solve not bit-identical: %v", err)
	}
	b.Energy += 1e-12
	if verify.BitIdenticalSolutions(a, b) == nil {
		t.Error("1-ulp drift not detected")
	}
}

// TestCodecRoundTrip pins the fuzz codec: the adversarial whale/shrimp
// penalty structure from TestRoundingSingleTaskAnchor must encode exactly
// and decode back to the same instance.
func TestCodecRoundTrip(t *testing.T) {
	in := core.Instance{
		Tasks: task.Set{
			Deadline: 10,
			Tasks: []task.Task{
				{ID: 1, Cycles: 9, Penalty: 100},
				{ID: 2, Cycles: 2, Penalty: 12},
				{ID: 3, Cycles: 2, Penalty: 12},
				{ID: 4, Cycles: 2, Penalty: 12},
				{ID: 5, Cycles: 2, Penalty: 12},
				{ID: 6, Cycles: 2, Penalty: 12},
			},
		},
		Proc: speed.Proc{Model: power.Cubic(), SMax: 1},
	}
	data, ok := verify.EncodeInstance(in)
	if !ok {
		t.Fatal("whale instance not encodable")
	}
	back, ok := verify.DecodeInstance(data)
	if !ok {
		t.Fatal("encoded bytes not decodable")
	}
	if len(back.Tasks.Tasks) != len(in.Tasks.Tasks) || back.Tasks.Deadline != in.Tasks.Deadline {
		t.Fatalf("round trip changed shape: %+v", back.Tasks)
	}
	for i, got := range back.Tasks.Tasks {
		want := in.Tasks.Tasks[i]
		if got != want {
			t.Errorf("task %d: %+v, want %+v", i, got, want)
		}
	}
	if back.FastPow != in.FastPow {
		t.Error("FastPow flag lost")
	}

	// Arbitrary bytes must decode to valid instances (or be rejected).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		if in, ok := verify.DecodeInstance(buf); ok {
			if err := in.Validate(); err != nil {
				t.Fatalf("decoded instance invalid: %v", err)
			}
		}
	}
}

// TestSeedInstancesRepresentable pins the canonical fuzz seeds to the
// codec grid: every seed must encode, decode back to the identical
// instance, and pass the full oracle sweep (the committed corpus files
// under testdata/fuzz/ are these exact bytes).
func TestSeedInstancesRepresentable(t *testing.T) {
	for _, s := range verify.SeedInstances() {
		data, ok := verify.EncodeInstance(s.In)
		if !ok {
			t.Errorf("seed %q not codec-representable", s.Name)
			continue
		}
		back, ok := verify.DecodeInstance(data)
		if !ok {
			t.Errorf("seed %q does not decode", s.Name)
			continue
		}
		if back.Tasks.Deadline != s.In.Tasks.Deadline || back.FastPow != s.In.FastPow ||
			len(back.Tasks.Tasks) != len(s.In.Tasks.Tasks) {
			t.Errorf("seed %q round trip changed shape", s.Name)
			continue
		}
		for i := range back.Tasks.Tasks {
			if back.Tasks.Tasks[i] != s.In.Tasks.Tasks[i] {
				t.Errorf("seed %q task %d: %+v, want %+v", s.Name, i, back.Tasks.Tasks[i], s.In.Tasks.Tasks[i])
			}
		}
		if err := verify.CheckInstance(back, verify.Options{}); err != nil {
			t.Errorf("seed %q fails oracles: %v", s.Name, err)
		}
	}
}

// TestShrinkerDemoGreedyGap is the acceptance demo: seed an 8-task
// instance where the single-pass greedy pays a capacity-trap premium over
// DP, shrink it under that predicate, and require the minimum to be at
// most 4 tasks, written as a JSON repro under testdata/shrunk/ with a
// ready-to-paste Go test case.
func TestShrinkerDemoGreedyGap(t *testing.T) {
	in := core.Instance{
		Tasks: task.Set{
			Deadline: 10,
			Tasks: []task.Task{
				{ID: 1, Cycles: 10, Penalty: 10.5}, // density 1.05: greedy grabs it, fills the frame
				{ID: 2, Cycles: 5, Penalty: 5},     // density 1.0: the better choice greedy then can't fit
				{ID: 3, Cycles: 3, Penalty: 0},
				{ID: 4, Cycles: 4, Penalty: 0},
				{ID: 5, Cycles: 1, Penalty: 0.5},
				{ID: 6, Cycles: 2, Penalty: 0},
				{ID: 7, Cycles: 6, Penalty: 0},
				{ID: 8, Cycles: 1, Penalty: 0.25},
			},
		},
		Proc: speed.Proc{Model: power.Cubic(), SMax: 1},
	}
	pred := func(c core.Instance) bool {
		if c.Validate() != nil {
			return false
		}
		g, err := (core.GreedyDensity{}).Solve(c)
		if err != nil {
			return false
		}
		d, err := (core.DP{}).Solve(c)
		if err != nil {
			return false
		}
		return g.Cost > 1.2*d.Cost
	}
	if !pred(in) {
		t.Fatal("seeded demo instance does not exhibit the greedy gap")
	}
	small := verify.Shrink(in, pred)
	if n := len(small.Tasks.Tasks); n > 4 {
		t.Fatalf("shrinker left %d tasks, want ≤ 4: %+v", n, small.Tasks.Tasks)
	}
	if !pred(small) {
		t.Fatal("shrunk instance no longer exhibits the failure")
	}

	// JSON repro round trip through the committed example location.
	r := verify.NewRepro(small, nil, "demo: GREEDY exceeds 1.2×DP on a capacity trap (expected heuristic gap, shrinker workflow example)")
	path := filepath.Join("testdata", "shrunk", "greedy-gap-demo.json")
	if err := verify.WriteRepro(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := verify.ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(back.Instance()) {
		t.Fatal("repro read back from JSON no longer exhibits the failure")
	}

	// The emitted Go test case must mention every load-bearing literal.
	src := verify.GoTestCase("ShrunkGreedyGapDemo", small)
	for _, want := range []string{"func TestShrunkGreedyGapDemo", "core.Instance", "verify.CheckInstance", "power.Polynomial"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated test case missing %q:\n%s", want, src)
		}
	}
}

// TestShrinkPredicateRejectsSeed returns the input unchanged.
func TestShrinkPredicateRejectsSeed(t *testing.T) {
	in := cubicInstance()
	out := verify.Shrink(in, func(core.Instance) bool { return false })
	if len(out.Tasks.Tasks) != len(in.Tasks.Tasks) {
		t.Fatal("Shrink modified an instance its predicate rejected")
	}
}

// TestReproSurvivesMissingFile keeps the error path honest.
func TestReproSurvivesMissingFile(t *testing.T) {
	if _, err := verify.ReadRepro(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing repro")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := verify.ReadRepro(bad); err == nil {
		t.Fatal("expected error for malformed repro")
	}
}

func cubicInstance() core.Instance {
	return core.Instance{
		Tasks: task.Set{
			Deadline: 10,
			Tasks: []task.Task{
				{ID: 1, Cycles: 9, Penalty: 100},
				{ID: 2, Cycles: 2, Penalty: 12},
				{ID: 3, Cycles: 2, Penalty: 12},
				{ID: 4, Cycles: 2, Penalty: 12},
				{ID: 5, Cycles: 2, Penalty: 12},
				{ID: 6, Cycles: 2, Penalty: 12},
			},
		},
		Proc: speed.Proc{Model: power.Cubic(), SMax: 1},
	}
}
