package verify

import (
	"dvsreject/internal/core"
	"dvsreject/internal/wire"
)

// The grid fuzz codec was promoted to internal/wire (fuzzcodec.go) so the
// serving cluster's binary protocol and the fuzz projection live in one
// package; these wrappers bind it to verify's canonical Flavours table so
// every existing fuzz target, seed corpus and repro keeps its byte format.

// maxFuzzTasks bounds decoded instances so the exact solvers stay fast.
const maxFuzzTasks = wire.MaxFuzzTasks

// DecodeInstance decodes fuzz bytes into a valid instance. ok is false
// when the data is too short to describe at least one task.
func DecodeInstance(data []byte) (core.Instance, bool) {
	return wire.DecodeFuzzInstance(data, Flavours)
}

// EncodeInstance is the inverse for authoring seed corpora: it returns the
// byte form of an instance, or ok=false when the instance is outside the
// codec's grid (unknown flavour, off-grid deadline/penalty/rho, more than
// maxFuzzTasks tasks, or IDs not 1..n in order).
func EncodeInstance(in core.Instance) ([]byte, bool) {
	return wire.EncodeFuzzInstance(in, Flavours)
}
