package verify

import (
	"math/rand"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/wire"
)

// Flavour couples a processor flavour with whether its tasks draw
// heterogeneous power coefficients. The type lives in internal/wire beside
// the fuzz codec that indexes it; this alias keeps verify's surface intact.
type Flavour = wire.Flavour

// Flavours spans every processor regime the solvers support: ideal and
// speed-floored continuous processors, leaky processors with and without
// the dormant mode, the discrete XScale ladder, and heterogeneous power
// characteristics. The order is load-bearing for the fuzz codec
// (DecodeInstance indexes into it), so append only.
var Flavours = []Flavour{
	{Name: "ideal-cubic", Proc: speed.Proc{Model: power.Cubic(), SMax: 1}},
	{Name: "leaky-disable", Proc: speed.Proc{Model: power.XScale(), SMax: 1}},
	{Name: "leaky-dormant", Proc: speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2}},
	{Name: "discrete-xscale", Proc: speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels()}},
	{Name: "discrete-dormant", Proc: speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2}},
	{Name: "hetero-cubic", Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, Hetero: true},
	{Name: "ideal-smin", Proc: speed.Proc{Model: power.Cubic(), SMin: 0.25, SMax: 1}},
}

// drawLoads spans under-load (everything fits comfortably) through heavy
// over-load (most tasks must be rejected).
var drawLoads = []float64{0.3, 0.6, 1.0, 1.5, 2.2, 3.0}

// RandomInstance draws one instance of the flavour from the shared
// experiment generator.
func RandomInstance(rng *rand.Rand, f Flavour, n int, load float64, pm gen.PenaltyModel) (core.Instance, error) {
	set, err := gen.Frame(rng, gen.Config{
		N: n, Load: load, Deadline: 200, SMax: f.Proc.MaxSpeed(),
		Penalty: pm, HeteroRho: f.Hetero,
	})
	if err != nil {
		return core.Instance{}, err
	}
	return core.Instance{Tasks: set, Proc: f.Proc}, nil
}

// Draw samples one instance across all flavours, sizes, load regimes,
// penalty structures and the FastPow toggle — the randomized soak's unit
// of work. Deterministic given the rng state.
func Draw(rng *rand.Rand) (core.Instance, Flavour, error) {
	f := Flavours[rng.Intn(len(Flavours))]
	n := 1 + rng.Intn(12)
	load := drawLoads[rng.Intn(len(drawLoads))]
	pm := gen.PenaltyModel(rng.Intn(3))
	in, err := RandomInstance(rng, f, n, load, pm)
	if err != nil {
		return core.Instance{}, f, err
	}
	in.FastPow = rng.Intn(2) == 1
	return in, f, nil
}
