package verify

import (
	"math"

	"dvsreject/internal/core"
	"dvsreject/internal/task"
)

// Predicate reports whether an instance still exhibits the failure being
// minimized. Shrink only ever commits candidates the predicate accepts, so
// an expensive predicate (a full CheckInstance) is safe.
type Predicate func(core.Instance) bool

// maxShrinkProbes bounds the total predicate evaluations of one Shrink
// call; the greedy passes converge long before this on realistic failures.
const maxShrinkProbes = 4000

// Shrink greedily minimizes an instance while pred keeps holding: it drops
// task chunks (largest first, ddmin-style), simplifies penalties, cycles
// and power coefficients toward small round values, rounds the deadline,
// and clears FastPow. Passes repeat until a fixed point. The input is
// returned unchanged when pred rejects it outright. Deterministic: same
// instance and predicate, same minimum.
func Shrink(in core.Instance, pred Predicate) core.Instance {
	if !pred(in) {
		return in
	}
	cur := in
	probes := maxShrinkProbes
	try := func(cand core.Instance) bool {
		if probes <= 0 {
			return false
		}
		probes--
		if pred(cand) {
			cur = cand
			return true
		}
		return false
	}

	for changed := true; changed && probes > 0; {
		changed = false

		// Drop contiguous task chunks, halving the chunk size. On a
		// successful drop the same index is retried (the list shifted).
		for size := len(cur.Tasks.Tasks) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(cur.Tasks.Tasks); {
				if try(withoutTasks(cur, i, size)) {
					changed = true
				} else {
					i++
				}
			}
		}

		// Simplify per-task values toward the smallest that still fails.
		for i := 0; i < len(cur.Tasks.Tasks); i++ {
			t := cur.Tasks.Tasks[i]
			for _, p := range []float64{0, 1, math.Floor(t.Penalty)} {
				if p != cur.Tasks.Tasks[i].Penalty && p < cur.Tasks.Tasks[i].Penalty {
					nt := cur.Tasks.Tasks[i]
					nt.Penalty = p
					if try(withTask(cur, i, nt)) {
						changed = true
					}
				}
			}
			for _, c := range []int64{1, t.Cycles / 2} {
				if c >= 1 && c < cur.Tasks.Tasks[i].Cycles {
					nt := cur.Tasks.Tasks[i]
					nt.Cycles = c
					if try(withTask(cur, i, nt)) {
						changed = true
					}
				}
			}
			if cur.Tasks.Tasks[i].Rho != 0 {
				nt := cur.Tasks.Tasks[i]
				nt.Rho = 0
				if try(withTask(cur, i, nt)) {
					changed = true
				}
			}
		}

		// Round or halve the deadline.
		for _, d := range []float64{math.Floor(cur.Tasks.Deadline), cur.Tasks.Deadline / 2} {
			if d > 0 && d < cur.Tasks.Deadline {
				cand := cur
				cand.Tasks.Deadline = d
				if try(cand) {
					changed = true
				}
			}
		}

		if cur.FastPow {
			cand := cur
			cand.FastPow = false
			if try(cand) {
				changed = true
			}
		}
	}
	return cur
}

// withoutTasks returns the instance minus tasks [i, i+size), with a fresh
// backing slice.
func withoutTasks(in core.Instance, i, size int) core.Instance {
	old := in.Tasks.Tasks
	tasks := make([]task.Task, 0, len(old)-size)
	tasks = append(append(tasks, old[:i]...), old[i+size:]...)
	out := in
	out.Tasks.Tasks = tasks
	return out
}

// withTask returns the instance with task i replaced, with a fresh backing
// slice.
func withTask(in core.Instance, i int, t task.Task) core.Instance {
	tasks := make([]task.Task, len(in.Tasks.Tasks))
	copy(tasks, in.Tasks.Tasks)
	tasks[i] = t
	out := in
	out.Tasks.Tasks = tasks
	return out
}
