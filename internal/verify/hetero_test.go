package verify_test

// Property/oracle tests for the heterogeneous partitioned-rejection tier:
// no solver's cost ever undercuts the certified HeteroLowerBound, every
// solution survives the from-scratch heterogeneous partition oracle
// (which includes per-processor EDF replay), and the metamorphic
// processor-permutation relations hold — bit-identical solutions when the
// permutation maps each processor to a bit-equal one (the profile vector
// is unchanged, so determinism is the claim under test), and optimum-cost
// agreement under arbitrary permutations.

import (
	"math/rand"
	"testing"

	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/verify/oracle"
)

// heteroProperty is the corpus: two-type big.LITTLE vectors over the
// continuous convex processor flavours the lower bound certifies.
func heteroProperty(t *testing.T) []multiproc.HeteroInstance {
	t.Helper()
	vectors := [][]speed.Proc{
		{
			{Model: power.Cubic(), SMax: 1},
			{Model: power.Cubic(), SMax: 0.5},
		},
		{
			{Model: power.Cubic(), SMax: 1},
			{Model: power.XScale(), SMin: 0.15, SMax: 0.6},
			{Model: power.Cubic(), SMax: 0.5},
		},
		{
			{Model: power.XScale(), SMax: 1},
			{Model: power.XScale(), SMax: 1},
			{Model: power.XScale(), SMax: 0.4},
			{Model: power.XScale(), SMax: 0.4},
		},
	}
	var corpus []multiproc.HeteroInstance
	for seed := int64(0); seed < 5; seed++ {
		for vi, procs := range vectors {
			smaxTotal := 0.0
			for _, p := range procs {
				smaxTotal += p.SMax
			}
			set, err := gen.Frame(rand.New(rand.NewSource(seed*101+int64(vi))), gen.Config{
				N: 8 + int(seed)%5, Load: (1.1 + float64(seed%3)*0.6) * smaxTotal,
				Deadline: 50, Penalty: gen.PenaltyModel(seed % 3),
			})
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, multiproc.HeteroInstance{Tasks: set, Procs: procs})
		}
	}
	return corpus
}

func heteroSolvers() []multiproc.HeteroSolver {
	return []multiproc.HeteroSolver{
		multiproc.HeteroPartition{},
		multiproc.HeteroLTFReject{},
		multiproc.HeteroLTFRejectLS{},
	}
}

func partitionOf(s multiproc.Solution) oracle.PartitionSolution {
	return oracle.PartitionSolution{
		PerProc: s.PerProc, Rejected: s.Rejected,
		Energies: s.Energies, Energy: s.Energy, Penalty: s.Penalty, Cost: s.Cost,
	}
}

// TestHeteroCostNeverBelowLowerBound: every solver's cost dominates the
// certified pooled-relaxation bound, and every solution recomputes cleanly
// through the heterogeneous partition oracle — including the
// per-processor EDF replay under each processor's own optimal profile.
func TestHeteroCostNeverBelowLowerBound(t *testing.T) {
	for i, in := range heteroProperty(t) {
		lb, err := multiproc.HeteroLowerBound(in, 0)
		if err != nil {
			t.Fatalf("instance %d: lower bound: %v", i, err)
		}
		for _, s := range heteroSolvers() {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", i, s.Name(), err)
			}
			if err := oracle.CheckHeteroPartition(in.Tasks, in.Procs, partitionOf(sol)); err != nil {
				t.Errorf("instance %d: %s: %v", i, s.Name(), err)
			}
			if err := oracle.CheckNotBelow(s.Name()+" vs HeteroLowerBound", sol.Cost, lb, 1e-9); err != nil {
				t.Errorf("instance %d: %v", i, err)
			}
		}
	}
}

// TestHeteroCertifiedGap: the serve-facing certified wrapper reports a
// non-negative gap consistent with its own lower bound on convex vectors.
func TestHeteroCertifiedGap(t *testing.T) {
	for i, in := range heteroProperty(t) {
		res, err := multiproc.SolveHeteroCertified(in, multiproc.HeteroPartition{})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if res.Gap < 0 {
			t.Errorf("instance %d: convex vector reported uncertified gap %g", i, res.Gap)
		}
		if res.Gap > 0 && res.Cost <= res.LowerBound {
			t.Errorf("instance %d: gap %g inconsistent with cost %g ≤ bound %g", i, res.Gap, res.Cost, res.LowerBound)
		}
	}
}

// TestHeteroEqualTypePermutationBitIdentical: a permutation that maps
// every processor to a bit-equal one leaves the profile vector unchanged,
// so each (deterministic) solver must reproduce its solution bit for bit
// — this pins solver determinism, including map-iteration independence.
func TestHeteroEqualTypePermutationBitIdentical(t *testing.T) {
	big := speed.Proc{Model: power.Cubic(), SMax: 1}
	little := speed.Proc{Model: power.XScale(), SMin: 0.15, SMax: 0.5}
	set, err := gen.Frame(rand.New(rand.NewSource(7)), gen.Config{
		N: 10, Load: 3.5, Deadline: 50, Penalty: gen.PenaltyProportional,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := multiproc.HeteroInstance{Tasks: set, Procs: []speed.Proc{big, little, big, little}}
	// Swap positions 0↔2 (both big) and 1↔3 (both little): the vector is
	// bit-unchanged.
	perm := multiproc.HeteroInstance{Tasks: set, Procs: []speed.Proc{
		in.Procs[2], in.Procs[3], in.Procs[0], in.Procs[1],
	}}
	for _, s := range heteroSolvers() {
		a, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Solve(perm)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := oracle.EqualPartitionSolutions(partitionOf(a), partitionOf(b)); err != nil {
			t.Errorf("%s: equal-type permutation changed the solution: %v", s.Name(), err)
		}
	}
}

// TestHeteroArbitraryPermutationOptimum: reordering the whole vector
// cannot change the exhaustive optimum cost (the search order and float
// summation order change, so agreement is up to reassociation tolerance),
// and remapping the optimal solution through the permutation stays valid
// under the oracle.
func TestHeteroArbitraryPermutationOptimum(t *testing.T) {
	set, err := gen.Frame(rand.New(rand.NewSource(11)), gen.Config{
		N: 7, Load: 2.2, Deadline: 40, Penalty: gen.PenaltyUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	procs := []speed.Proc{
		{Model: power.Cubic(), SMax: 1},
		{Model: power.XScale(), SMin: 0.15, SMax: 0.6},
		{Model: power.Cubic(), SMax: 0.5},
	}
	in := multiproc.HeteroInstance{Tasks: set, Procs: procs}
	sigma := []int{2, 0, 1} // position i of the permuted vector holds procs[sigma[i]]
	perm := multiproc.HeteroInstance{Tasks: set, Procs: []speed.Proc{
		procs[sigma[0]], procs[sigma[1]], procs[sigma[2]],
	}}
	a, err := (multiproc.HeteroExhaustive{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (multiproc.HeteroExhaustive{}).Solve(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckExactAgreement("hetero permutation", a.Cost, b.Cost, 1e-12); err != nil {
		t.Error(err)
	}
	// Remap a's per-processor lists through the permutation and re-check.
	remapped := partitionOf(a)
	remapped.PerProc = make([][]int, len(procs))
	remapped.Energies = make([]float64, len(procs))
	for i, src := range sigma {
		remapped.PerProc[i] = a.PerProc[src]
		remapped.Energies[i] = a.Energies[src]
	}
	energy := 0.0
	for _, e := range remapped.Energies {
		energy += e
	}
	remapped.Energy = energy
	remapped.Cost = energy + remapped.Penalty
	if err := oracle.CheckHeteroPartition(perm.Tasks, perm.Procs, remapped); err != nil {
		t.Errorf("remapped optimum rejected by the oracle: %v", err)
	}
}
