package verify

import (
	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// SeedInstance is one canonical fuzz seed: every Fuzz* target f.Adds the
// encoded form, `verifyfuzz -emit-corpus` writes the same bytes under
// testdata/fuzz/, and the verify tests pin that each seed stays encodable.
type SeedInstance struct {
	Name string
	In   core.Instance
}

// SeedInstances returns the canonical corpus:
//
//   - whale-anchor: the adversarial penalty structure from
//     TestRoundingSingleTaskAnchor (one task worth more than the rest of
//     the frame combined) — the shape that historically separated the
//     rounding heuristic from the exact solvers;
//   - high-water: the largest instance the codec can express (12 tasks of
//     256 cycles at the longest deadline) — the shape class of the
//     validation-map high-water regression, where a huge set poisoned
//     pooled state reused by later small solves;
//   - tiny-after-high-water: the 1-task instance that must stay correct
//     when solved after high-water shapes;
//   - hetero-rho: heterogeneous power coefficients across the codec's rho
//     grid, including the exact-1.0 point;
//   - discrete-dormant-fastpow: the discrete ladder with shutdown and the
//     FastPow fast paths on — the most conditional-heavy evaluator path;
//   - leaky-dormant-overload: a leaky shutdown-capable processor at a
//     deadline that forces rejection;
//   - smin-floor: a processor with a speed floor, exercising the energy
//     plateau below smin.
func SeedInstances() []SeedInstance {
	mk := func(proc speed.Proc, deadline float64, fastPow bool, tasks ...task.Task) core.Instance {
		return core.Instance{
			Tasks:   task.Set{Tasks: tasks, Deadline: deadline},
			Proc:    proc,
			FastPow: fastPow,
		}
	}
	idealCubic := speed.Proc{Model: power.Cubic(), SMax: 1}
	highWater := make([]task.Task, maxFuzzTasks)
	for i := range highWater {
		highWater[i] = task.Task{ID: i + 1, Cycles: 256, Penalty: float64(i) + 0.5}
	}
	return []SeedInstance{
		{"whale-anchor", mk(idealCubic, 10, false,
			task.Task{ID: 1, Cycles: 9, Penalty: 100},
			task.Task{ID: 2, Cycles: 2, Penalty: 12},
			task.Task{ID: 3, Cycles: 2, Penalty: 12},
			task.Task{ID: 4, Cycles: 2, Penalty: 12},
			task.Task{ID: 5, Cycles: 2, Penalty: 12},
			task.Task{ID: 6, Cycles: 2, Penalty: 12},
		)},
		{"high-water", core.Instance{
			Tasks: task.Set{Tasks: highWater, Deadline: 400},
			Proc:  idealCubic,
		}},
		{"tiny-after-high-water", mk(idealCubic, 400, false,
			task.Task{ID: 1, Cycles: 1, Penalty: 1},
		)},
		{"hetero-rho", mk(idealCubic, 100, false,
			task.Task{ID: 1, Cycles: 40, Penalty: 8, Rho: 0.5},
			task.Task{ID: 2, Cycles: 30, Penalty: 4, Rho: 1},
			task.Task{ID: 3, Cycles: 20, Penalty: 2, Rho: 2},
			task.Task{ID: 4, Cycles: 25, Penalty: 6, Rho: 1.5},
		)},
		{"discrete-dormant-fastpow", mk(
			speed.Proc{Model: power.XScale(), Levels: power.XScaleLevels(), DormantEnable: true, Esw: 2},
			50, true,
			task.Task{ID: 1, Cycles: 20, Penalty: 3},
			task.Task{ID: 2, Cycles: 15, Penalty: 1.5},
			task.Task{ID: 3, Cycles: 10, Penalty: 0.25},
			task.Task{ID: 4, Cycles: 8, Penalty: 5},
			task.Task{ID: 5, Cycles: 4, Penalty: 0.5},
		)},
		{"leaky-dormant-overload", mk(
			speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 2},
			10, false,
			task.Task{ID: 1, Cycles: 8, Penalty: 2},
			task.Task{ID: 2, Cycles: 6, Penalty: 4},
			task.Task{ID: 3, Cycles: 5, Penalty: 1},
		)},
		{"smin-floor", mk(
			speed.Proc{Model: power.Cubic(), SMin: 0.25, SMax: 1},
			200, false,
			task.Task{ID: 1, Cycles: 10, Penalty: 2},
			task.Task{ID: 2, Cycles: 5, Penalty: 0.125},
		)},
		{"sparse-coprime", mk(idealCubic, 400, false,
			// Pairwise-coprime cycles near the codec's 256-cycle ceiling:
			// the widest accepted-workload spread the grid can express,
			// the shape class the sparse dominance-pruned rows target.
			task.Task{ID: 1, Cycles: 251, Penalty: 9},
			task.Task{ID: 2, Cycles: 241, Penalty: 7.5},
			task.Task{ID: 3, Cycles: 239, Penalty: 6},
			task.Task{ID: 4, Cycles: 233, Penalty: 10},
			task.Task{ID: 5, Cycles: 229, Penalty: 4.25},
			task.Task{ID: 6, Cycles: 227, Penalty: 8},
		)},
	}
}
