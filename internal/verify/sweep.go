package verify

import (
	"errors"
	"math"
	"slices"

	"dvsreject/internal/anytime"
	"dvsreject/internal/core"
	"dvsreject/internal/verify/oracle"
)

// AllSolvers is every registry name, in sweep order. Exact solvers first so
// the relational oracles have their baseline by the time heuristics run.
var AllSolvers = []string{
	"DP", "DP-SPARSE", "OPT", "GREEDY", "S-GREEDY", "ROUNDING",
	"APPROX", "APPROX-V", "RAND", "ACCEPT-ALL", "REJECT-ALL", "ANYTIME",
}

// Options configures the invariant sweeps. The zero value is the standard
// configuration used by the fuzz targets and the soak CLI.
type Options struct {
	// Solvers is the registry-name subset to sweep; nil means AllSolvers.
	Solvers []string
	// Eps is the accuracy knob handed to APPROX/APPROX-V; 0 means 0.15.
	Eps float64
	// Seed seeds RAND; 0 means 1.
	Seed int64
	// Workers is the parallel fan-out cross-checked for bit-identity
	// against the serial run on the solvers that parallelize; 0 means 4.
	Workers int
	// MaxExhaustiveN caps the instance size OPT is asked to solve;
	// 0 means 12.
	MaxExhaustiveN int
	// Tol is the relative tolerance of the cross-solver cost comparisons
	// (exact agreement, heuristic-not-below); 0 means 1e-6.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.Solvers == nil {
		o.Solvers = AllSolvers
	}
	if o.Eps == 0 {
		o.Eps = 0.15
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.MaxExhaustiveN == 0 {
		o.MaxExhaustiveN = 12
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	return o
}

// fastPowTol bounds the cost drift the FastPow fast paths may introduce:
// the per-exponentiation error is an ulp or two, but near-ties in the
// search can flip to a different accepted set whose exact cost differs by
// the tie margin.
const fastPowTol = 1e-9

// CheckInstance runs the whole oracle battery on one instance: every
// requested solver is built through the core.NewSolver registry, solved
// serially, and checked against the frame invariants; then the relational
// oracles (exact agreement, heuristic-not-below, the APPROX quality bound),
// the Workers bit-identity contracts, and the FastPow drift bound. Invalid
// instances are out of scope and return nil. The first violated invariant
// is returned as an *oracle.Failure tagged with the responsible solver.
func CheckInstance(in core.Instance, opt Options) error {
	if in.Validate() != nil {
		return nil
	}
	opt = opt.withDefaults()
	n := len(in.Tasks.Tasks)

	spec := core.SolverSpec{Eps: opt.Eps, Seed: opt.Seed, Workers: 1}
	sols := make(map[string]core.Solution, len(opt.Solvers))
	for _, name := range opt.Solvers {
		if name == "OPT" && n > opt.MaxExhaustiveN {
			continue
		}
		s, err := core.NewSolver(name, spec)
		if err != nil {
			return err
		}
		sol, err := s.Solve(in)
		if errors.Is(err, core.ErrHeterogeneous) {
			continue // documented scope limit, not a failure
		}
		if err != nil {
			return oracle.Fail("solve", name, err)
		}
		if err := CheckSolution(in, sol); err != nil {
			return retag(err, name)
		}
		sols[name] = sol
	}

	// Relational oracles against the exact baseline.
	exact := math.Inf(1)
	haveExact := false
	for _, name := range []string{"DP", "DP-SPARSE", "OPT"} {
		if sol, ok := sols[name]; ok {
			exact = math.Min(exact, sol.Cost)
			haveExact = true
		}
	}
	if dp, ok := sols["DP"]; ok {
		if ex, ok := sols["OPT"]; ok {
			if err := oracle.CheckExactAgreement("DP vs OPT", dp.Cost, ex.Cost, opt.Tol); err != nil {
				return err
			}
		}
		// The sparse rows are documented bit-identical to dense, a far
		// stronger contract than cost agreement — hold them to it.
		if sp, ok := sols["DP-SPARSE"]; ok {
			if err := BitIdenticalSolutions(sp, dp); err != nil {
				return oracle.Fail("sparse-dense-identity", "DP-SPARSE", err)
			}
		}
	}
	if haveExact {
		for _, name := range opt.Solvers {
			sol, ok := sols[name]
			if !ok || name == "DP" || name == "DP-SPARSE" || name == "OPT" {
				continue
			}
			if err := oracle.CheckNotBelow(name, sol.Cost, exact, opt.Tol); err != nil {
				return err
			}
		}
		if sol, ok := sols["APPROX"]; ok {
			if dp, withDP := sols["DP"]; withDP && approxEnvelopeApplies(in, dp, opt.Eps) {
				err := oracle.CheckApproxBound("APPROX", sol.Cost, exact, opt.Eps, in.Proc, in.Tasks.Deadline)
				if err != nil {
					return err
				}
			}
		}
	}

	// Workers bit-identity: the parallel searchers document byte-identical
	// results for any worker count; hold them to it against the serial run.
	parallel := map[string]core.Solver{
		"DP":        core.DP{Workers: opt.Workers},
		"DP-SPARSE": core.DP{Sparse: core.SparseOn, Workers: opt.Workers},
		"OPT":       core.Exhaustive{Workers: opt.Workers},
		"APPROX":    core.ApproxDP{Eps: opt.Eps, Workers: opt.Workers},
		"RAND":      core.RandomAdmission{Seed: opt.Seed, Workers: opt.Workers},
		"ANYTIME":   anytime.Solver{Seed: opt.Seed, Workers: opt.Workers},
	}
	for _, name := range opt.Solvers {
		base, ok := sols[name]
		ps, para := parallel[name]
		if !ok || !para {
			continue
		}
		sol, err := ps.Solve(in)
		if err != nil {
			return oracle.Fail("workers-determinism", name, err)
		}
		if err := BitIdenticalSolutions(sol, base); err != nil {
			return oracle.Fail("workers-determinism", name, err)
		}
	}

	// FastPow drift bound: the fast exponent paths may flip near-ties in
	// the search, but an exact solver's optimum cost must stay within ulp
	// tolerance (the final re-cost is always exact math.Pow arithmetic).
	if !in.FastPow {
		fp := in
		fp.FastPow = true
		for _, name := range []string{"DP", "DP-SPARSE", "OPT"} {
			base, ok := sols[name]
			if !ok {
				continue
			}
			s, err := core.NewSolver(name, spec)
			if err != nil {
				return err
			}
			sol, err := s.Solve(fp)
			if err != nil {
				return oracle.Fail("fastpow-drift", name, err)
			}
			if err := CheckSolution(fp, sol); err != nil {
				return retag(err, name+" (fastpow)")
			}
			var d oracle.Diff
			d.F64Tol("optimum cost under FastPow", sol.Cost, base.Cost, fastPowTol)
			if err := oracle.Fail("fastpow-drift", name, d.Err()); err != nil {
				return err
			}
		}
	}

	// The anytime tier's own contract goes beyond the single-solution
	// invariants above: the whole streamed front must hold up.
	if slices.Contains(opt.Solvers, "ANYTIME") {
		if err := CheckAnytimeFront(in, opt); err != nil {
			return err
		}
	}

	return nil
}

// approxEnvelopeApplies reports whether the (1+5ε)·OPT + ε·E(C) envelope
// is in scope for this instance: the exact optimum's accepted set must
// survive ApproxDP's conservative cycle rounding within the scaled
// capacity. When rounding displaces the optimal set, the scheme is forced
// onto a different admission whose extra cost is penalty-denominated and
// not bounded by any energy term (a task slightly under capacity with an
// enormous penalty makes the ratio arbitrary), so the envelope is only
// checked in the non-displacement regime — the one the scheme's analysis
// and its unit tests cover.
func approxEnvelopeApplies(in core.Instance, dp core.Solution, eps float64) bool {
	capTrue := in.Capacity()
	n := len(in.Tasks.Tasks)
	k := int64(math.Floor(eps * capTrue / float64(n+1)))
	if k < 1 {
		k = 1
	}
	accepted := dp.AcceptedSet()
	var scaled int64
	for _, t := range in.Tasks.Tasks {
		if accepted[t.ID] {
			scaled += (t.Cycles + k - 1) / k
		}
	}
	return scaled <= int64(math.Floor(capTrue*(1+1e-12)/float64(k)))
}
