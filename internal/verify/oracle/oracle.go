// Package oracle holds the pure invariant oracles of the verification
// subsystem: functions over plain task/speed/edf values that recompute a
// solver's claims from scratch and report every divergence.
//
// The package is deliberately a *leaf*: it imports only the model layers
// (task, speed, power, edf) and none of the solver packages, so the
// in-package tests of internal/core, internal/multiproc, internal/online,
// internal/dormant and internal/sched/yds can all call it without import
// cycles. The solver-aware conveniences (running registries, metamorphic
// sweeps, shrinking) live one level up in internal/verify.
//
// Every oracle follows the same contract: nil means "all invariants hold";
// a non-nil error enumerates each violated invariant with the value the
// solver reported and the value the oracle recomputed. Recomputation
// follows the exact arithmetic (summation order, float operations) of the
// production evaluators, so the comparisons are bit-exact, not
// tolerance-based, except where a tolerance is the documented contract
// (heuristic-vs-exact, approximation bounds).
package oracle

import (
	"fmt"
	"math"
	"strings"
)

// Diff accumulates labeled mismatches for multi-field comparisons. The
// zero value is ready to use. Comparisons on float64 fields are bitwise
// (NaN-safe, −0 ≠ +0), matching the repository's bit-identity contracts.
type Diff struct {
	mismatches []string
}

// F64 records a mismatch unless got and want share the same bit pattern.
func (d *Diff) F64(label string, got, want float64) {
	if math.Float64bits(got) != math.Float64bits(want) {
		d.Add("%s: %v (bits %#x), want %v (bits %#x)",
			label, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// F64Tol records a mismatch when |got−want| exceeds tol·(1+|want|).
func (d *Diff) F64Tol(label string, got, want, tol float64) {
	if diff := math.Abs(got - want); !(diff <= tol*(1+math.Abs(want))) {
		d.Add("%s: %v, want %v (diff %g, tol %g)", label, got, want, diff, tol)
	}
}

// Int records a mismatch unless got == want.
func (d *Diff) Int(label string, got, want int) {
	if got != want {
		d.Add("%s: %d, want %d", label, got, want)
	}
}

// Bool records a mismatch unless got == want.
func (d *Diff) Bool(label string, got, want bool) {
	if got != want {
		d.Add("%s: %v, want %v", label, got, want)
	}
}

// IDs records a mismatch unless the two ID slices are element-wise equal
// (nil and empty are interchangeable).
func (d *Diff) IDs(label string, got, want []int) {
	if len(got) != len(want) {
		d.Add("%s: %v, want %v", label, got, want)
		return
	}
	for i := range got {
		if got[i] != want[i] {
			d.Add("%s: %v, want %v", label, got, want)
			return
		}
	}
}

// F64s records a mismatch unless the two slices are element-wise
// bit-identical (nil and empty are interchangeable).
func (d *Diff) F64s(label string, got, want []float64) {
	if len(got) != len(want) {
		d.Add("%s: %v, want %v", label, got, want)
		return
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			d.Add("%s[%d]: %v, want %v", label, i, got[i], want[i])
			return
		}
	}
}

// Add records a preformatted mismatch.
func (d *Diff) Add(format string, args ...any) {
	d.mismatches = append(d.mismatches, fmt.Sprintf(format, args...))
}

// Merge folds another error (typically a nested oracle's result) into the
// diff under a label. A nil err is a no-op.
func (d *Diff) Merge(label string, err error) {
	if err != nil {
		d.Add("%s: %v", label, err)
	}
}

// Ok reports whether no mismatch has been recorded.
func (d *Diff) Ok() bool { return len(d.mismatches) == 0 }

// Err returns nil when no mismatch was recorded, or one error listing all
// of them.
func (d *Diff) Err() error {
	if len(d.mismatches) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(d.mismatches, "; "))
}

// Failure tags an oracle violation with a stable (Oracle, Subject) pair so
// the shrinker can test "does the same failure still reproduce" without
// string-matching detail text.
type Failure struct {
	Oracle  string // which invariant broke, e.g. "cost-recompute"
	Subject string // which solver/transform it broke for, e.g. "DP"
	Detail  error  // the full diff
}

// Error implements error.
func (f *Failure) Error() string {
	return fmt.Sprintf("oracle %s failed for %s: %v", f.Oracle, f.Subject, f.Detail)
}

// Unwrap exposes the detail diff.
func (f *Failure) Unwrap() error { return f.Detail }

// Fail wraps a non-nil diff error into a tagged Failure; nil stays nil.
func Fail(oracle, subject string, err error) error {
	if err == nil {
		return nil
	}
	return &Failure{Oracle: oracle, Subject: subject, Detail: err}
}
