package oracle

import "sort"

// AdmissionJob is the slice of an online job the accounting oracle needs:
// identity, arrival (for the penalty summation order) and penalty.
type AdmissionJob struct {
	ID      int
	Arrival float64
	Penalty float64
}

// AdmissionResult mirrors online.Result without importing online.
type AdmissionResult struct {
	Accepted []int
	Rejected []int
	Energy   float64
	Penalty  float64
	Cost     float64
	Misses   int
}

// CheckAdmission verifies the accounting invariants of an online
// simulation result:
//
//   - accepted and rejected are ascending, disjoint, and together cover
//     exactly the submitted job IDs;
//   - Penalty equals the sum of rejected penalties accumulated in arrival
//     order (stable on ties), bit-exactly — the order the event loop
//     charges them;
//   - Cost = Energy + Penalty, bit-exactly;
//   - a sound policy admitted nothing it then failed to schedule
//     (Misses = 0) unless allowMisses is set.
func CheckAdmission(jobs []AdmissionJob, r AdmissionResult, allowMisses bool) error {
	var d Diff
	known := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		known[j.ID] = true
	}
	seen := make(map[int]string, len(jobs))
	checkList := func(label string, ids []int) {
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				d.Add("%s not strictly ascending at index %d: %v", label, i, ids)
				return
			}
			if !known[id] {
				d.Add("%s contains unknown job ID %d", label, id)
				return
			}
			if prev, dup := seen[id]; dup {
				d.Add("job ID %d appears in both %s and %s", id, prev, label)
				return
			}
			seen[id] = label
		}
	}
	checkList("accepted", r.Accepted)
	checkList("rejected", r.Rejected)
	d.Int("accepted+rejected job count", len(r.Accepted)+len(r.Rejected), len(jobs))
	if !d.Ok() {
		return Fail("admission-invariants", "result", d.Err())
	}

	// Penalty recompute in the event loop's charge order: jobs sorted
	// stably by arrival, rejected ones summed as they are encountered.
	rejected := make(map[int]bool, len(r.Rejected))
	for _, id := range r.Rejected {
		rejected[id] = true
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })
	var penalty float64
	for _, oi := range order {
		if rejected[jobs[oi].ID] {
			penalty += jobs[oi].Penalty
		}
	}
	d.F64("penalty recompute", r.Penalty, penalty)
	d.F64("cost identity energy+penalty", r.Cost, r.Energy+r.Penalty)
	if !allowMisses {
		d.Int("deadline misses among admitted jobs", r.Misses, 0)
	}
	return Fail("admission-invariants", "result", d.Err())
}

// EqualAdmissionResults compares two online simulation results field-for-
// field, floats bitwise — the assertion shape of the online differential
// corpus.
func EqualAdmissionResults(got, want AdmissionResult) error {
	var d Diff
	d.F64("energy", got.Energy, want.Energy)
	d.F64("penalty", got.Penalty, want.Penalty)
	d.F64("cost", got.Cost, want.Cost)
	d.Int("misses", got.Misses, want.Misses)
	d.IDs("accepted", got.Accepted, want.Accepted)
	d.IDs("rejected", got.Rejected, want.Rejected)
	return d.Err()
}
