package oracle

import (
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// PartitionSolution mirrors multiproc.Solution without importing
// multiproc, so the partition oracles remain callable from that package's
// own test files.
type PartitionSolution struct {
	PerProc  [][]int
	Rejected []int

	Energies []float64
	Energy   float64
	Penalty  float64
	Cost     float64
}

// CheckPartition verifies a partitioned-EDF solution on M identical
// processors from scratch:
//
//   - every task ID appears exactly once, on one processor or rejected,
//     and each list is ascending;
//   - every per-processor workload fits the per-processor capacity;
//   - each Energies[m] equals speed.Proc.Assign on that processor's load,
//     bit-exactly, and Energy is their sum in processor order;
//   - Penalty is the task-order sum of rejected penalties, bit-exactly;
//   - Cost = Energy + Penalty, bit-exactly.
//
// The recomputation follows multiproc.Evaluate's arithmetic order exactly,
// so all float comparisons are bitwise.
func CheckPartition(set task.Set, proc speed.Proc, m int, sol PartitionSolution) error {
	procs := make([]speed.Proc, m)
	for i := range procs {
		procs[i] = proc
	}
	return CheckHeteroPartition(set, procs, sol)
}

// CheckHeteroPartition is CheckPartition over a per-processor profile
// vector (the heterogeneous big.LITTLE setting): each processor's load is
// checked against *its own* capacity and each Energies[m] against its own
// speed.Proc.Assign, bit-exactly, following multiproc.EvaluateHetero's
// arithmetic order. Additionally every processor's accepted set replays
// through the EDF simulator under that processor's own optimal profile —
// the mechanical per-processor schedulability check.
func CheckHeteroPartition(set task.Set, procs []speed.Proc, sol PartitionSolution) error {
	m := len(procs)
	var d Diff
	if len(sol.PerProc) != m {
		d.Add("PerProc has %d processors, want %d", len(sol.PerProc), m)
		return Fail("partition-invariants", "solution", d.Err())
	}

	pos := make(map[int]int, len(set.Tasks))
	for i, t := range set.Tasks {
		pos[t.ID] = i
	}
	owner := make(map[int]int, len(set.Tasks)) // id → proc, -1 for rejected
	checkList := func(label string, procIdx int, ids []int) {
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				d.Add("%s not strictly ascending at index %d: %v", label, i, ids)
				return
			}
			if _, ok := pos[id]; !ok {
				d.Add("%s contains unknown task ID %d", label, id)
				return
			}
			if prev, dup := owner[id]; dup {
				d.Add("task ID %d assigned twice (processor %d and %s)", id, prev, label)
				return
			}
			owner[id] = procIdx
		}
	}
	total := 0
	for pi, ids := range sol.PerProc {
		checkList("processor", pi, ids)
		total += len(ids)
	}
	checkList("rejected", -1, sol.Rejected)
	total += len(sol.Rejected)
	d.Int("assigned+rejected task count", total, len(set.Tasks))
	if !d.Ok() {
		return Fail("partition-invariants", "solution", d.Err())
	}

	// From-scratch recomputation in multiproc.Evaluate's order: loads and
	// penalty over the task list in position order, then energies in
	// processor order.
	loads := make([]int64, m)
	var penalty float64
	for _, t := range set.Tasks {
		if p, ok := owner[t.ID]; ok && p >= 0 {
			loads[p] += t.Cycles
		} else {
			penalty += t.Penalty
		}
	}
	d.F64("penalty recompute", sol.Penalty, penalty)

	var energy float64
	for p := 0; p < m; p++ {
		capacity := procs[p].Capacity(set.Deadline)
		if float64(loads[p]) > capacity*(1+feasibilitySlack) {
			d.Add("processor %d load %d exceeds capacity %g", p, loads[p], capacity)
			continue
		}
		a, err := procs[p].Assign(float64(loads[p]), set.Deadline)
		if err != nil {
			d.Add("processor %d recompute: %v", p, err)
			continue
		}
		if p < len(sol.Energies) {
			d.F64("energy recompute (processor)", sol.Energies[p], a.Total)
		}
		energy += a.Total
		// Per-processor EDF replay under this processor's own profile.
		if len(sol.PerProc[p]) > 0 {
			jobs := edf.FrameJobs(set, sol.PerProc[p])
			r, err := edf.Simulate(jobs, a.Profile(0))
			if err != nil {
				d.Add("processor %d EDF replay: %v", p, err)
			} else if !r.Feasible() {
				d.Add("processor %d EDF replay missed %d deadlines", p, r.Misses)
			}
		}
	}
	d.Int("energies length", len(sol.Energies), m)
	d.F64("energy recompute (total)", sol.Energy, energy)
	d.F64("cost identity energy+penalty", sol.Cost, sol.Energy+sol.Penalty)

	return Fail("partition-invariants", "solution", d.Err())
}

// EqualPartitionSolutions compares two partitioned solutions field-for-
// field, floats bitwise — the assertion shape of the multiproc
// differential corpus.
func EqualPartitionSolutions(got, want PartitionSolution) error {
	var d Diff
	d.F64("cost", got.Cost, want.Cost)
	d.F64("energy", got.Energy, want.Energy)
	d.F64("penalty", got.Penalty, want.Penalty)
	d.Int("processors", len(got.PerProc), len(want.PerProc))
	if d.Ok() {
		for p := range got.PerProc {
			d.IDs("processor assignment", got.PerProc[p], want.PerProc[p])
		}
	}
	d.IDs("rejected", got.Rejected, want.Rejected)
	d.F64s("energies", got.Energies, want.Energies)
	return d.Err()
}
