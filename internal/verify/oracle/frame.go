package oracle

import (
	"math"

	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

// FrameSolution mirrors core.Solution field-for-field without importing
// core, so the oracles stay usable from inside the solver packages' own
// test files. internal/verify provides the one-line adapter for callers
// that hold a core.Solution.
type FrameSolution struct {
	Accepted []int
	Rejected []int

	Assignment    speed.Assignment
	PerTaskSpeeds []float64

	Energy  float64
	Penalty float64
	Cost    float64
}

// feasibilitySlack mirrors the float slack the production evaluators apply
// to the capacity comparison.
const feasibilitySlack = 1e-9

// heterogeneous reports whether any task carries a non-trivial power
// coefficient, as core.Instance.Heterogeneous does.
func heterogeneous(set task.Set) bool {
	for _, t := range set.Tasks {
		if t.Rho != 0 && t.Rho != 1 {
			return true
		}
	}
	return false
}

// CheckFrame verifies every paper-level invariant of a single-processor
// frame solution against the instance it claims to solve:
//
//   - the accepted and rejected ID lists are each ascending, disjoint, and
//     together are exactly the instance's ID set;
//   - Penalty equals the from-scratch sum of rejected penalties taken in
//     task order, bit-exactly (the summation order the evaluator uses);
//   - Energy equals the from-scratch minimum-energy assignment of the
//     accepted workload (speed.Proc.Assign for homogeneous instances,
//     speed.AssignHeterogeneous otherwise), bit-exactly, with no solver
//     evaluation context involved;
//   - Cost = Energy + Penalty, bit-exactly;
//   - the accepted workload fits the capacity smax·D;
//   - the accepted set replays cleanly through the EDF simulator under the
//     solution's own speed profile (homogeneous instances), or the
//     per-task speeds are feasible (heterogeneous ones).
func CheckFrame(set task.Set, proc speed.Proc, sol FrameSolution) error {
	var d Diff

	// 1. Partition structure.
	pos := make(map[int]int, len(set.Tasks))
	for i, t := range set.Tasks {
		pos[t.ID] = i
	}
	seen := make(map[int]string, len(set.Tasks))
	checkList := func(label string, ids []int) {
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				d.Add("%s not strictly ascending at index %d: %v", label, i, ids)
				return
			}
			if _, ok := pos[id]; !ok {
				d.Add("%s contains unknown task ID %d", label, id)
				return
			}
			if prev, dup := seen[id]; dup {
				d.Add("task ID %d appears in both %s and %s", id, prev, label)
				return
			}
			seen[id] = label
		}
	}
	checkList("accepted", sol.Accepted)
	checkList("rejected", sol.Rejected)
	d.Int("accepted+rejected task count", len(sol.Accepted)+len(sol.Rejected), len(set.Tasks))
	if !d.Ok() {
		return d.Err() // structure is broken; recomputation would mislead
	}

	// 2–3. From-scratch cost recomputation, following the evaluator's
	// iteration order exactly: walk the task set in position order,
	// splitting by membership.
	accepted := make(map[int]bool, len(sol.Accepted))
	for _, id := range sol.Accepted {
		accepted[id] = true
	}
	var penalty float64
	var w int64
	cycles := make([]int64, 0, len(sol.Accepted))
	rhos := make([]float64, 0, len(sol.Accepted))
	for _, t := range set.Tasks {
		if accepted[t.ID] {
			w += t.Cycles
			cycles = append(cycles, t.Cycles)
			rhos = append(rhos, t.PowerCoeff())
		} else {
			penalty += t.Penalty
		}
	}
	d.F64("penalty recompute", sol.Penalty, penalty)

	if float64(w) > proc.Capacity(set.Deadline)*(1+feasibilitySlack) {
		d.Add("accepted workload %d exceeds capacity %g", w, proc.Capacity(set.Deadline))
	}

	if heterogeneous(set) {
		h, err := speed.AssignHeterogeneous(proc.Model, cycles, rhos, set.Deadline, proc.SMax)
		if err != nil {
			d.Add("heterogeneous recompute: %v", err)
		} else {
			d.F64("energy recompute (heterogeneous)", sol.Energy, h.Energy)
			d.F64s("per-task speeds", sol.PerTaskSpeeds, h.Speeds)
			var busy float64
			for i, s := range h.Speeds {
				if s > proc.SMax*(1+feasibilitySlack) {
					d.Add("per-task speed %d = %g exceeds smax %g", i, s, proc.SMax)
				}
				if s > 0 {
					busy += float64(cycles[i]) / s
				}
			}
			if busy > set.Deadline*(1+feasibilitySlack) {
				d.Add("heterogeneous busy time %g exceeds deadline %g", busy, set.Deadline)
			}
		}
	} else {
		a, err := proc.Assign(float64(w), set.Deadline)
		if err != nil {
			d.Add("assignment recompute: %v", err)
		} else {
			d.F64("energy recompute", sol.Energy, a.Total)
		}
		// 6. EDF replay under the solution's own profile: the single
		// mechanical check that the admission decision is actually
		// schedulable, not just cheap.
		if len(sol.Accepted) > 0 {
			jobs := edf.FrameJobs(set, sol.Accepted)
			r, err := edf.Simulate(jobs, sol.Assignment.Profile(0))
			if err != nil {
				d.Add("EDF replay: %v", err)
			} else if !r.Feasible() {
				d.Add("EDF replay missed %d deadlines", r.Misses)
			}
		}
	}

	// 4. Cost identity.
	d.F64("cost identity energy+penalty", sol.Cost, sol.Energy+sol.Penalty)

	return Fail("frame-invariants", "solution", d.Err())
}

// SameFrameDecision compares two frame solutions the way the differential
// corpora do: identical accepted sets, costs within tol relative tolerance.
func SameFrameDecision(got, want FrameSolution, tol float64) error {
	var d Diff
	d.IDs("accepted", got.Accepted, want.Accepted)
	d.F64Tol("cost", got.Cost, want.Cost, tol)
	return d.Err()
}

// BitIdenticalFrame compares two frame solutions field-for-field with
// bitwise float equality — the serve-layer contract that a cache hit or a
// coalesced response is indistinguishable from a cold solve.
func BitIdenticalFrame(got, want FrameSolution) error {
	var d Diff
	d.IDs("accepted", got.Accepted, want.Accepted)
	d.IDs("rejected", got.Rejected, want.Rejected)
	d.F64("energy", got.Energy, want.Energy)
	d.F64("penalty", got.Penalty, want.Penalty)
	d.F64("cost", got.Cost, want.Cost)
	d.F64("assignment.loSpeed", got.Assignment.LoSpeed, want.Assignment.LoSpeed)
	d.F64("assignment.hiSpeed", got.Assignment.HiSpeed, want.Assignment.HiSpeed)
	d.F64("assignment.loTime", got.Assignment.LoTime, want.Assignment.LoTime)
	d.F64("assignment.hiTime", got.Assignment.HiTime, want.Assignment.HiTime)
	d.F64("assignment.total", got.Assignment.Total, want.Assignment.Total)
	d.Bool("assignment.shutdown", got.Assignment.Shutdown, want.Assignment.Shutdown)
	d.F64s("perTaskSpeeds", got.PerTaskSpeeds, want.PerTaskSpeeds)
	return d.Err()
}

// CheckNotBelow verifies that a heuristic's cost never undercuts an exact
// optimum beyond tol relative tolerance — the central relational claim of
// the paper family (heuristics are upper bounds, exact solvers are tight).
func CheckNotBelow(subject string, heuristicCost, exactCost, tol float64) error {
	if heuristicCost < exactCost-tol*(1+math.Abs(exactCost)) {
		var d Diff
		d.Add("cost %v beats the exact optimum %v", heuristicCost, exactCost)
		return Fail("heuristic-not-below-exact", subject, d.Err())
	}
	return nil
}

// CheckNotAbove verifies a solver's cost never exceeds a baseline it
// documents dominating, beyond tol relative tolerance — the anytime
// tier's claim against S-GREEDY, whose incumbent it seeds.
func CheckNotAbove(subject string, cost, baselineCost, tol float64) error {
	if cost > baselineCost+tol*(1+math.Abs(baselineCost)) {
		var d Diff
		d.Add("cost %v exceeds the dominated baseline %v", cost, baselineCost)
		return Fail("not-above-baseline", subject, d.Err())
	}
	return nil
}

// CheckExactAgreement verifies two independent exact solvers land on the
// same optimum cost within tol relative tolerance (their accepted sets may
// legitimately differ between cost ties).
func CheckExactAgreement(subject string, a, b float64, tol float64) error {
	var d Diff
	d.F64Tol("optimum cost", a, b, tol)
	return Fail("exact-agreement", subject, d.Err())
}

// CheckApproxBound verifies the capacity-rounding scheme's documented
// quality bound against the exact optimum:
//
//	approx ≤ (1+5ε)·exact + ε·E(C)
//
// where E(C) is the full-capacity energy — the bound internal/core's
// ApproxDP promises and its test suite enforces on randomized instances.
func CheckApproxBound(subject string, approxCost, exactCost, eps float64, proc speed.Proc, deadline float64) error {
	capEnergy := proc.Energy(proc.Capacity(deadline), deadline)
	if math.IsInf(capEnergy, 1) {
		capEnergy = 0
	}
	bound := (1+5*eps)*exactCost + eps*capEnergy
	if approxCost > bound*(1+1e-9) {
		var d Diff
		d.Add("cost %v exceeds (1+5ε)·OPT + ε·E(C) = %v (OPT %v, ε %g)", approxCost, bound, exactCost, eps)
		return Fail("approx-bound", subject, d.Err())
	}
	return nil
}
