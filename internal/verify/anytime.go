package verify

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dvsreject/internal/anytime"
	"dvsreject/internal/core"
	"dvsreject/internal/verify/oracle"
)

// anytimeOracleGens is the fixed generation count the Pareto oracle runs
// the anytime solver at — small enough for the fuzz and soak loops, large
// enough that the search has actually moved past its seeds. The contract
// checked is configuration-independent; the early-optimality exit ends
// most tiny instances after one barrier anyway.
const anytimeOracleGens = 16

// CheckAnytimeResult checks one anytime Result against the streamed-front
// contract: every front point EDF-feasible, the points mutually
// non-dominated on their exact energy/penalty values (energy strictly
// ascending, penalty strictly descending), Best a member of and minimal
// over the front, and no point below the certified lower bound when one
// was computed.
func CheckAnytimeResult(in core.Instance, res anytime.Result) error {
	if len(res.Front) == 0 {
		return oracle.Fail("anytime-front", "ANYTIME", errors.New("empty front"))
	}
	foundBest := false
	for i, sol := range res.Front {
		if err := CheckSolution(in, sol); err != nil {
			return retag(err, fmt.Sprintf("ANYTIME front[%d]", i))
		}
		if i > 0 {
			prev := res.Front[i-1]
			if !(sol.Energy > prev.Energy && sol.Penalty < prev.Penalty) {
				return oracle.Fail("anytime-front", "ANYTIME", fmt.Errorf(
					"front not mutually non-dominated at %d: (E=%v, V=%v) after (E=%v, V=%v)",
					i, sol.Energy, sol.Penalty, prev.Energy, prev.Penalty))
			}
		}
		if sol.Cost < res.Best.Cost {
			return oracle.Fail("anytime-front", "ANYTIME", fmt.Errorf(
				"front[%d] cost %v undercuts Best %v", i, sol.Cost, res.Best.Cost))
		}
		if sol.Cost == res.Best.Cost && sol.Energy == res.Best.Energy && sol.Penalty == res.Best.Penalty {
			foundBest = true
		}
	}
	if !foundBest {
		return oracle.Fail("anytime-front", "ANYTIME", errors.New("Best is not an element of Front"))
	}
	if !math.IsNaN(res.LowerBound) && res.Best.Cost < res.LowerBound*(1-1e-9) {
		return oracle.Fail("anytime-front", "ANYTIME", fmt.Errorf(
			"Best %v below the certified lower bound %v", res.Best.Cost, res.LowerBound))
	}
	return nil
}

// CheckAnytimeFront is the Pareto-front oracle for the anytime tier: it
// runs the solver in its deterministic fixed-generation configuration and
// checks CheckAnytimeResult, that the result is never worse than S-GREEDY
// (whose incumbent the search seeds on every instance this size), and the
// Workers bit-identity contract against a parallel re-run. Invalid and
// heterogeneous instances are out of scope and return nil.
func CheckAnytimeFront(in core.Instance, opt Options) error {
	if in.Validate() != nil {
		return nil
	}
	opt = opt.withDefaults()
	s := anytime.Solver{Seed: opt.Seed, Workers: 1, Generations: anytimeOracleGens}
	res, err := s.SolveUntil(context.Background(), in)
	if errors.Is(err, core.ErrHeterogeneous) {
		return nil
	}
	if err != nil {
		return oracle.Fail("anytime-front", "ANYTIME", err)
	}
	if err := CheckAnytimeResult(in, res); err != nil {
		return err
	}
	if sg, err := (core.GreedyMarginal{}).Solve(in); err == nil {
		if err := oracle.CheckNotAbove("ANYTIME vs S-GREEDY", res.Best.Cost, sg.Cost, opt.Tol); err != nil {
			return err
		}
	}
	s.Workers = opt.Workers
	para, err := s.SolveUntil(context.Background(), in)
	if err != nil {
		return oracle.Fail("workers-determinism", "ANYTIME", err)
	}
	if err := sameAnytimeResult(para, res); err != nil {
		return oracle.Fail("workers-determinism", "ANYTIME", err)
	}
	return nil
}

// sameAnytimeResult demands bit-identical fronts from two runs.
func sameAnytimeResult(got, want anytime.Result) error {
	if got.Generations != want.Generations {
		return fmt.Errorf("generations: %d vs %d", got.Generations, want.Generations)
	}
	if len(got.Front) != len(want.Front) {
		return fmt.Errorf("front size: %d vs %d", len(got.Front), len(want.Front))
	}
	if err := BitIdenticalSolutions(got.Best, want.Best); err != nil {
		return fmt.Errorf("best: %w", err)
	}
	for i := range got.Front {
		if err := BitIdenticalSolutions(got.Front[i], want.Front[i]); err != nil {
			return fmt.Errorf("front[%d]: %w", i, err)
		}
	}
	return nil
}
