// Package verify is the solver-aware layer of the verification subsystem:
// it adapts core types onto the pure oracles of internal/verify/oracle and
// adds everything that needs the solver registry — whole-registry invariant
// sweeps (CheckInstance), metamorphic transforms with provable cost
// relations (CheckMetamorphic), a byte codec for native Go fuzz targets
// (DecodeInstance/EncodeInstance), a greedy minimizing shrinker (Shrink),
// and JSON/Go repro emission (Repro, GoTestCase).
//
// Because this package imports internal/core it can only be used from
// external test packages (package core_test) and from packages above core
// (serve, cmd). In-package solver tests call internal/verify/oracle
// directly; the adapters here are one-liners so both layers check the same
// invariants.
package verify

import (
	"errors"

	"dvsreject/internal/core"
	"dvsreject/internal/verify/oracle"
)

// Frame converts a core.Solution to the oracle's mirror struct.
func Frame(s core.Solution) oracle.FrameSolution {
	return oracle.FrameSolution{
		Accepted:      s.Accepted,
		Rejected:      s.Rejected,
		Assignment:    s.Assignment,
		PerTaskSpeeds: s.PerTaskSpeeds,
		Energy:        s.Energy,
		Penalty:       s.Penalty,
		Cost:          s.Cost,
	}
}

// CheckSolution runs the full frame-invariant oracle — partition structure,
// bit-exact cost recompute, capacity fit, EDF replay — on a solved
// instance.
func CheckSolution(in core.Instance, sol core.Solution) error {
	return oracle.CheckFrame(in.Tasks, in.Proc, Frame(sol))
}

// BitIdenticalSolutions compares two solutions field-for-field with bitwise
// float equality — the serve-layer contract that cached and coalesced
// responses are indistinguishable from cold solves, and the determinism
// contract of the Workers knobs.
func BitIdenticalSolutions(got, want core.Solution) error {
	return oracle.BitIdenticalFrame(Frame(got), Frame(want))
}

// SameDecision compares two solutions the way the differential corpora do:
// identical accepted sets, costs within tol relative tolerance.
func SameDecision(got, want core.Solution, tol float64) error {
	return oracle.SameFrameDecision(Frame(got), Frame(want), tol)
}

// SameFailure reports whether two errors are the same oracle violation:
// both wrap an oracle.Failure with equal Oracle and Subject tags. It is the
// equivalence the shrinker preserves, so detail text (which changes as the
// instance shrinks) never matters.
func SameFailure(a, b error) bool {
	var fa, fb *oracle.Failure
	if !errors.As(a, &fa) || !errors.As(b, &fb) {
		return false
	}
	return fa.Oracle == fb.Oracle && fa.Subject == fb.Subject
}

// retag rewrites the Subject of a Failure (oracles tag generically, the
// sweep knows which solver produced the value).
func retag(err error, subject string) error {
	var f *oracle.Failure
	if errors.As(err, &f) {
		return &oracle.Failure{Oracle: f.Oracle, Subject: subject, Detail: f.Detail}
	}
	return oracle.Fail("check", subject, err)
}
