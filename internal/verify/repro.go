package verify

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/verify/oracle"
)

// Repro is the on-disk form of a shrunk failing instance: enough to
// rebuild the exact core.Instance plus the oracle tag that failed, so a
// committed repro documents what it guards against.
type Repro struct {
	Note    string `json:"note,omitempty"`
	Oracle  string `json:"oracle,omitempty"`
	Subject string `json:"subject,omitempty"`
	Failure string `json:"failure,omitempty"`

	Deadline float64     `json:"deadline"`
	FastPow  bool        `json:"fastpow,omitempty"`
	Proc     ReproProc   `json:"proc"`
	Tasks    []ReproTask `json:"tasks"`
}

// ReproProc flattens speed.Proc and its power model into plain JSON.
type ReproProc struct {
	Pind          float64   `json:"pind"`
	Coeff         float64   `json:"coeff"`
	Alpha         float64   `json:"alpha"`
	SMin          float64   `json:"smin,omitempty"`
	SMax          float64   `json:"smax,omitempty"`
	Levels        []float64 `json:"levels,omitempty"`
	DormantEnable bool      `json:"dormant_enable,omitempty"`
	Esw           float64   `json:"esw,omitempty"`
}

// ReproTask is one task of the repro instance.
type ReproTask struct {
	ID      int     `json:"id"`
	Cycles  int64   `json:"cycles"`
	Penalty float64 `json:"penalty"`
	Rho     float64 `json:"rho,omitempty"`
}

// NewRepro captures an instance and the failure it provokes.
func NewRepro(in core.Instance, failure error, note string) Repro {
	r := Repro{
		Note:     note,
		Deadline: in.Tasks.Deadline,
		FastPow:  in.FastPow,
		Proc: ReproProc{
			Pind:          in.Proc.Model.Pind,
			Coeff:         in.Proc.Model.Coeff,
			Alpha:         in.Proc.Model.Alpha,
			SMin:          in.Proc.SMin,
			SMax:          in.Proc.SMax,
			Levels:        in.Proc.Levels,
			DormantEnable: in.Proc.DormantEnable,
			Esw:           in.Proc.Esw,
		},
	}
	for _, t := range in.Tasks.Tasks {
		r.Tasks = append(r.Tasks, ReproTask{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
	}
	if failure != nil {
		r.Failure = failure.Error()
		var f *oracle.Failure
		if errors.As(failure, &f) {
			r.Oracle, r.Subject = f.Oracle, f.Subject
		}
	}
	return r
}

// Instance rebuilds the core.Instance the repro describes.
func (r Repro) Instance() core.Instance {
	in := core.Instance{
		Tasks: task.Set{Deadline: r.Deadline},
		Proc: speed.Proc{
			Model:         power.Polynomial{Pind: r.Proc.Pind, Coeff: r.Proc.Coeff, Alpha: r.Proc.Alpha},
			SMin:          r.Proc.SMin,
			SMax:          r.Proc.SMax,
			Levels:        r.Proc.Levels,
			DormantEnable: r.Proc.DormantEnable,
			Esw:           r.Proc.Esw,
		},
		FastPow: r.FastPow,
	}
	for _, t := range r.Tasks {
		in.Tasks.Tasks = append(in.Tasks.Tasks, task.Task{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
	}
	return in
}

// WriteRepro writes the repro as indented JSON, creating parent
// directories as needed.
func WriteRepro(path string, r Repro) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRepro loads a repro written by WriteRepro.
func ReadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("verify: %s: %w", path, err)
	}
	return r, nil
}

// GoTestCase renders a ready-to-paste Go test that rebuilds the instance
// and re-runs the full oracle sweep on it. Paste into an external test
// package (imports: core, power, speed, task, verify).
func GoTestCase(testName string, in core.Instance) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "func Test%s(t *testing.T) {\n", testName)
	b.WriteString("\tin := core.Instance{\n")
	fmt.Fprintf(&b, "\t\tTasks: task.Set{\n\t\t\tDeadline: %s,\n\t\t\tTasks: []task.Task{\n", g(in.Tasks.Deadline))
	for _, t := range in.Tasks.Tasks {
		fmt.Fprintf(&b, "\t\t\t\t{ID: %d, Cycles: %d, Penalty: %s", t.ID, t.Cycles, g(t.Penalty))
		if t.Rho != 0 {
			fmt.Fprintf(&b, ", Rho: %s", g(t.Rho))
		}
		b.WriteString("},\n")
	}
	b.WriteString("\t\t\t},\n\t\t},\n")
	fmt.Fprintf(&b, "\t\tProc: speed.Proc{\n\t\t\tModel: power.Polynomial{Pind: %s, Coeff: %s, Alpha: %s},\n",
		g(in.Proc.Model.Pind), g(in.Proc.Model.Coeff), g(in.Proc.Model.Alpha))
	if in.Proc.Levels != nil {
		parts := make([]string, len(in.Proc.Levels))
		for i, l := range in.Proc.Levels {
			parts[i] = g(l)
		}
		fmt.Fprintf(&b, "\t\t\tLevels: power.LevelSet{%s},\n", strings.Join(parts, ", "))
	} else {
		if in.Proc.SMin != 0 {
			fmt.Fprintf(&b, "\t\t\tSMin: %s,\n", g(in.Proc.SMin))
		}
		fmt.Fprintf(&b, "\t\t\tSMax: %s,\n", g(in.Proc.SMax))
	}
	if in.Proc.DormantEnable {
		fmt.Fprintf(&b, "\t\t\tDormantEnable: true,\n\t\t\tEsw: %s,\n", g(in.Proc.Esw))
	}
	b.WriteString("\t\t},\n")
	if in.FastPow {
		b.WriteString("\t\tFastPow: true,\n")
	}
	b.WriteString("\t}\n")
	b.WriteString("\tif err := verify.CheckInstance(in, verify.Options{}); err != nil {\n\t\tt.Fatal(err)\n\t}\n}\n")
	return b.String()
}
