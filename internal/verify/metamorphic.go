package verify

import (
	"math"

	"dvsreject/internal/core"
	"dvsreject/internal/task"
	"dvsreject/internal/verify/oracle"
)

// Relation bounds the transformed instance's exact optimum cost c′ against
// the original's c: Lo·c ≤ c′ ≤ Hi·c. Hi may be +Inf (monotone
// non-decreasing, no upper bound).
type Relation struct {
	Lo, Hi float64
}

// Transform is one metamorphic instance rewrite with a provable cost
// relation. Transforms are deterministic so failures shrink and replay
// exactly.
type Transform struct {
	Name string
	// Apply returns the rewritten instance and the relation its optimum
	// provably satisfies; ok is false when the transform does not apply to
	// this instance (the relation would be unsound there).
	Apply func(in core.Instance) (out core.Instance, rel Relation, ok bool)
}

// Transforms is the metamorphic battery:
//
//   - permute-tasks: reversing the task order and relabeling IDs cannot
//     change the optimum (the problem is defined on the multiset of tasks);
//     costs agree up to float reassociation of the penalty sum.
//   - scale-penalties: multiplying every penalty by κ ≥ 1 bounds the new
//     optimum in [c, κ·c]: the original optimal set costs at most κ·c under
//     the new penalties, and any set's new cost dominates its old one.
//   - duplicate-free-task: appending a copy of a task with penalty 0 leaves
//     the optimum unchanged — rejecting the copy is free, and accepting it
//     only adds workload to a non-decreasing energy curve E(W).
//   - tighten-deadline: shrinking D shrinks both the feasible-speed region
//     and the capacity, so the optimum is monotone non-decreasing. Sound
//     only on leakage-free, non-dormant processors: with static power the
//     frame-long Pind·D term *shrinks* with D and the relation flips.
var Transforms = []Transform{
	{Name: "permute-tasks", Apply: permuteTasks},
	{Name: "scale-penalties", Apply: scalePenalties},
	{Name: "duplicate-free-task", Apply: duplicateFreeTask},
	{Name: "tighten-deadline", Apply: tightenDeadline},
}

func permuteTasks(in core.Instance) (core.Instance, Relation, bool) {
	n := len(in.Tasks.Tasks)
	if n == 0 {
		return in, Relation{}, false
	}
	out := in
	out.Tasks.Tasks = make([]task.Task, n)
	for i, t := range in.Tasks.Tasks {
		t.ID = n - i // fresh ascending labels in the reversed order
		out.Tasks.Tasks[n-1-i] = t
	}
	return out, Relation{Lo: 1, Hi: 1}, true
}

func scalePenalties(in core.Instance) (core.Instance, Relation, bool) {
	const kappa = 3
	out := in
	out.Tasks.Tasks = make([]task.Task, len(in.Tasks.Tasks))
	for i, t := range in.Tasks.Tasks {
		if t.Penalty > math.MaxFloat64/kappa {
			return in, Relation{}, false
		}
		t.Penalty *= kappa
		out.Tasks.Tasks[i] = t
	}
	return out, Relation{Lo: 1, Hi: kappa}, true
}

func duplicateFreeTask(in core.Instance) (core.Instance, Relation, bool) {
	n := len(in.Tasks.Tasks)
	if n == 0 {
		return in, Relation{}, false
	}
	maxID := 0
	for _, t := range in.Tasks.Tasks {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	dup := in.Tasks.Tasks[0]
	dup.ID = maxID + 1
	dup.Penalty = 0
	out := in
	out.Tasks.Tasks = append(append(make([]task.Task, 0, n+1), in.Tasks.Tasks...), dup)
	return out, Relation{Lo: 1, Hi: 1}, true
}

func tightenDeadline(in core.Instance) (core.Instance, Relation, bool) {
	if in.Proc.Model.Static() != 0 || in.Proc.DormantEnable {
		return in, Relation{}, false
	}
	out := in
	out.Tasks.Deadline = in.Tasks.Deadline * 0.75
	return out, Relation{Lo: 1, Hi: math.Inf(1)}, true
}

// CheckMetamorphic applies every applicable transform to the instance,
// solves both sides with an exact solver, verifies each solution against
// the frame oracles, and checks the transformed optimum lands inside the
// transform's provable relation. Instances with no available exact solver
// (heterogeneous and larger than Options.MaxExhaustiveN) are skipped.
func CheckMetamorphic(in core.Instance, opt Options) error {
	if in.Validate() != nil {
		return nil
	}
	opt = opt.withDefaults()
	c0, ok, err := exactOptimum(in, opt, "original")
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	for _, tr := range Transforms {
		out, rel, ok := tr.Apply(in)
		if !ok || out.Validate() != nil {
			continue
		}
		c1, ok, err := exactOptimum(out, opt, tr.Name)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		var d oracle.Diff
		lo, hi := rel.Lo*c0, rel.Hi*c0
		if c1 < lo-opt.Tol*(1+math.Abs(lo)) {
			d.Add("optimum %v below relation floor %v (original %v)", c1, lo, c0)
		}
		if !math.IsInf(hi, 1) && c1 > hi+opt.Tol*(1+math.Abs(hi)) {
			d.Add("optimum %v above relation ceiling %v (original %v)", c1, hi, c0)
		}
		if err := oracle.Fail("metamorphic-relation", tr.Name, d.Err()); err != nil {
			return err
		}
	}
	return nil
}

// exactOptimum solves the instance with the cheapest available exact
// solver (DP for homogeneous instances, branch-and-bound for small
// heterogeneous ones), verifies the solution, and returns its cost.
func exactOptimum(in core.Instance, opt Options, subject string) (float64, bool, error) {
	var solver core.Solver = core.DP{}
	if in.Heterogeneous() {
		if len(in.Tasks.Tasks) > opt.MaxExhaustiveN {
			return 0, false, nil
		}
		solver = core.Exhaustive{}
	}
	sol, err := solver.Solve(in)
	if err != nil {
		return 0, false, oracle.Fail("solve", subject, err)
	}
	if err := CheckSolution(in, sol); err != nil {
		return 0, false, retag(err, subject)
	}
	return sol.Cost, true, nil
}
